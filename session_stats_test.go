package livo

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"livo/internal/scene"
	"livo/internal/telemetry"
)

var errPoisoned = errors.New("poisoned socket")

// faultConn wraps a real PacketConn and fails reads/writes on demand, so
// tests can poison a live session's socket mid-stream.
type faultConn struct {
	net.PacketConn
	failWrite atomic.Bool
	failRead  atomic.Bool
}

func (c *faultConn) WriteTo(b []byte, a net.Addr) (int, error) {
	if c.failWrite.Load() {
		return 0, errPoisoned
	}
	return c.PacketConn.WriteTo(b, a)
}

func (c *faultConn) ReadFrom(b []byte) (int, net.Addr, error) {
	if c.failRead.Load() {
		return 0, nil, errPoisoned
	}
	return c.PacketConn.ReadFrom(b)
}

// TestSendSessionErrPoisonedSocket proves a failing socket surfaces through
// Err()/Stats() instead of being silently swallowed by the pacer goroutine.
func TestSendSessionErrPoisonedSocket(t *testing.T) {
	v, err := scene.OpenVideo("office1", testCapture())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	peer, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	conn := &faultConn{PacketConn: raw}
	reg := telemetry.NewRegistry(64)
	reg.SetEnabled(true)
	s, err := NewSendSession(conn, peer.LocalAddr(), SendSessionConfig{
		Sender: SenderConfig{Array: v.Array, ViewParams: DefaultViewParams(), Telemetry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.SendViews(v.Frame(0)); err != nil {
		t.Fatalf("healthy send failed: %v", err)
	}
	st := s.Stats()
	if st.Frames != 1 || st.Packets == 0 || st.Bytes == 0 {
		t.Fatalf("healthy stats wrong: %+v", st)
	}
	if st.Err != nil {
		t.Fatalf("unexpected early error: %v", st.Err)
	}

	conn.failWrite.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for s.Err() == nil && time.Now().Before(deadline) {
		_, _ = s.SendViews(v.Frame(0))
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Err(); !errors.Is(err, errPoisoned) {
		t.Fatalf("Err() = %v, want wrapped %v", err, errPoisoned)
	}
	if err := s.Stats().Err; !errors.Is(err, errPoisoned) {
		t.Fatalf("Stats().Err = %v, want wrapped %v", err, errPoisoned)
	}
	if _, err := s.SendViews(v.Frame(0)); !errors.Is(err, errPoisoned) {
		t.Fatalf("SendViews after poison = %v, want wrapped %v", err, errPoisoned)
	}
}

// TestRecvSessionErrPoisonedSocket proves a failing media socket terminates
// Run and surfaces through Err()/Stats().
func TestRecvSessionErrPoisonedSocket(t *testing.T) {
	v, err := scene.OpenVideo("office1", testCapture())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	peer, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	conn := &faultConn{PacketConn: raw}
	conn.failRead.Store(true)
	reg := telemetry.NewRegistry(64)
	reg.SetEnabled(true)
	r, err := NewRecvSession(conn, peer.LocalAddr(), RecvSessionConfig{
		Receiver: ReceiverConfig{Array: v.Array, Telemetry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	go r.Run()

	deadline := time.Now().Add(5 * time.Second)
	for r.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Err(); !errors.Is(err, errPoisoned) {
		t.Fatalf("Err() = %v, want wrapped %v", err, errPoisoned)
	}
	if err := r.Stats().Err; !errors.Is(err, errPoisoned) {
		t.Fatalf("Stats().Err = %v, want wrapped %v", err, errPoisoned)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
