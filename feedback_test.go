package livo

import (
	"math"
	"testing"
	"testing/quick"

	"livo/internal/geom"
)

func TestPoseFeedbackRoundTrip(t *testing.T) {
	f := func(tm, px, py, pz, ax, ay, az, ang float64) bool {
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return true
		}
		p := geom.Pose{
			Position: geom.V3(clampF(px), clampF(py), clampF(pz)),
			Rotation: geom.QuatFromAxisAngle(geom.V3(ax, ay, az), math.Mod(ang, math.Pi)),
		}
		b := marshalPose(tm, p)
		t2, p2, err := unmarshalPose(b)
		if err != nil || t2 != tm {
			return false
		}
		return p2.Position.AlmostEqual(p.Position, 1e-12) &&
			p.Rotation.AngleTo(p2.Rotation) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestPoseFeedbackErrors(t *testing.T) {
	if _, _, err := unmarshalPose([]byte{fbPose, 1, 2}); err == nil {
		t.Error("short pose accepted")
	}
}

func TestREMBRoundTrip(t *testing.T) {
	b := marshalREMB(123.456e6)
	got, err := unmarshalREMB(b)
	if err != nil || got != 123.456e6 {
		t.Fatalf("remb = %v, %v", got, err)
	}
	if _, err := unmarshalREMB([]byte{fbREMB}); err == nil {
		t.Error("short REMB accepted")
	}
}

func TestNACKRoundTrip(t *testing.T) {
	b := marshalNACK(2, 0xDEADBEEF, 777)
	stream, seq, frag, err := unmarshalNACK(b)
	if err != nil || stream != 2 || seq != 0xDEADBEEF || frag != 777 {
		t.Fatalf("nack = %d %d %d %v", stream, seq, frag, err)
	}
	if _, _, _, err := unmarshalNACK([]byte{fbNACK, 0}); err == nil {
		t.Error("short NACK accepted")
	}
}

func TestPingRoundTrip(t *testing.T) {
	b := marshalPing(3.25, fbPing)
	if b[0] != fbPing {
		t.Error("ping type wrong")
	}
	got, err := unmarshalPing(b)
	if err != nil || got != 3.25 {
		t.Fatalf("ping = %v, %v", got, err)
	}
	if _, err := unmarshalPing([]byte{fbPing}); err == nil {
		t.Error("short ping accepted")
	}
}

func TestFeedbackTypesDistinct(t *testing.T) {
	types := []byte{fbPose, fbREMB, fbNACK, fbPLI, fbPing, fbPong}
	seen := map[byte]bool{}
	for _, ty := range types {
		if seen[ty] {
			t.Fatalf("duplicate feedback type %d", ty)
		}
		if ty == mediaMagic {
			t.Fatalf("feedback type %d collides with media magic", ty)
		}
		seen[ty] = true
	}
}
