package livo

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"livo/internal/scene"
)

// lossyForwarder relays packets between two endpoints, dropping a fraction
// of the media packets in the sender->receiver direction.
type lossyForwarder struct {
	conn     net.PacketConn
	sender   net.Addr
	receiver net.Addr
	rate     float64
	rng      *rand.Rand
	mu       sync.Mutex
	dropped  int
	done     chan struct{}
}

func (f *lossyForwarder) run() {
	buf := make([]byte, 65536)
	for {
		select {
		case <-f.done:
			return
		default:
		}
		_ = f.conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, from, err := f.conn.ReadFrom(buf)
		if err != nil {
			continue
		}
		if from.String() == f.sender.String() {
			f.mu.Lock()
			drop := n > 0 && buf[0] == mediaMagic && f.rng.Float64() < f.rate
			if drop {
				f.dropped++
			}
			f.mu.Unlock()
			if drop {
				continue
			}
			_, _ = f.conn.WriteTo(buf[:n], f.receiver)
		} else {
			_, _ = f.conn.WriteTo(buf[:n], f.sender)
		}
	}
}

// TestSessionSurvivesPacketLoss streams through a 10%-loss middlebox with
// FEC enabled: the receiver must still reconstruct most frames (parity
// repairs single losses; NACKs and PLI cover the rest, §A.1).
func TestSessionSurvivesPacketLoss(t *testing.T) {
	v, err := scene.OpenVideo("office1", testCapture())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() net.PacketConn {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sConn, fConn, rConn := mk(), mk(), mk()
	defer sConn.Close()
	defer fConn.Close()
	defer rConn.Close()

	fwd := &lossyForwarder{
		conn:     fConn,
		sender:   sConn.LocalAddr(),
		receiver: rConn.LocalAddr(),
		rate:     0.10,
		rng:      rand.New(rand.NewSource(42)),
		done:     make(chan struct{}),
	}
	go fwd.run()
	defer close(fwd.done)

	send, err := NewSendSession(sConn, fConn.LocalAddr(), SendSessionConfig{
		Sender:    SenderConfig{Array: v.Array, ViewParams: DefaultViewParams()},
		EnableFEC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	recv, err := NewRecvSession(rConn, fConn.LocalAddr(), RecvSessionConfig{
		Receiver:    ReceiverConfig{Array: v.Array},
		JitterDelay: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var mu sync.Mutex
	clouds := 0
	recv.OnCloud = func(seq uint32, cloud *PointCloud) {
		mu.Lock()
		clouds++
		mu.Unlock()
	}
	viewer := SynthUserTrace("viewer", 5, 60, 30)
	start := time.Now()
	recv.PoseSource = func() Pose { return viewer.At(time.Since(start).Seconds()) }
	go recv.Run()

	const frames = 30
	for i := 0; i < frames; i++ {
		if _, err := send.SendViews(v.Frame(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(33 * time.Millisecond)
	}
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := clouds
		mu.Unlock()
		if n >= frames*2/3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fwd.mu.Lock()
	dropped := fwd.dropped
	fwd.mu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	t.Logf("middlebox dropped %d packets; receiver reconstructed %d/%d frames", dropped, clouds, frames)
	if dropped == 0 {
		t.Fatal("loss injector never fired; test is vacuous")
	}
	if clouds < frames*2/3 {
		t.Fatalf("only %d/%d frames survived 10%% loss", clouds, frames)
	}
}
