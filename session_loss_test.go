package livo

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"livo/internal/scene"
)

// lossyForwarder relays packets between two endpoints, injecting seeded
// faults into the media packets of the sender->receiver direction: drops,
// duplicates, and reordering (a held-back copy delivered after a delay).
// Zero-valued knobs disable their fault.
type lossyForwarder struct {
	conn         net.PacketConn
	sender       net.Addr
	receiver     net.Addr
	rate         float64 // drop probability
	dup          float64 // duplication probability
	reorder      float64 // reorder probability
	reorderDelay time.Duration
	rng          *rand.Rand
	mu           sync.Mutex
	dropped      int
	duplicated   int
	reordered    int
	done         chan struct{}
}

func (f *lossyForwarder) run() {
	buf := make([]byte, 65536)
	for {
		select {
		case <-f.done:
			return
		default:
		}
		_ = f.conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, from, err := f.conn.ReadFrom(buf)
		if err != nil {
			continue
		}
		if from.String() != f.sender.String() {
			_, _ = f.conn.WriteTo(buf[:n], f.sender)
			continue
		}
		media := n > 0 && buf[0] == mediaMagic
		f.mu.Lock()
		drop := media && f.rng.Float64() < f.rate
		duplicate := media && !drop && f.dup > 0 && f.rng.Float64() < f.dup
		delay := media && !drop && f.reorder > 0 && f.rng.Float64() < f.reorder
		switch {
		case drop:
			f.dropped++
		case duplicate:
			f.duplicated++
		}
		if delay {
			f.reordered++
		}
		f.mu.Unlock()
		if drop {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		if delay {
			// Held back past packets sent after it (the timer goroutine may
			// fire after shutdown; the failed write is harmless).
			time.AfterFunc(f.reorderDelay, func() { _, _ = f.conn.WriteTo(pkt, f.receiver) })
			continue
		}
		_, _ = f.conn.WriteTo(pkt, f.receiver)
		if duplicate {
			_, _ = f.conn.WriteTo(pkt, f.receiver)
		}
	}
}

// runFaultySession streams frames through a configured fault-injecting
// middlebox and returns the forwarder (for fault counts) and the number of
// frames the receiver reconstructed.
func runFaultySession(t *testing.T, frames int, fec bool, configure func(*lossyForwarder)) (*lossyForwarder, int) {
	t.Helper()
	v, err := scene.OpenVideo("office1", testCapture())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() net.PacketConn {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sConn, fConn, rConn := mk(), mk(), mk()
	t.Cleanup(func() { sConn.Close(); fConn.Close(); rConn.Close() })

	fwd := &lossyForwarder{
		conn:     fConn,
		sender:   sConn.LocalAddr(),
		receiver: rConn.LocalAddr(),
		done:     make(chan struct{}),
	}
	configure(fwd)
	go fwd.run()
	t.Cleanup(func() { close(fwd.done) })

	send, err := NewSendSession(sConn, fConn.LocalAddr(), SendSessionConfig{
		Sender:    SenderConfig{Array: v.Array, ViewParams: DefaultViewParams()},
		EnableFEC: fec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	recv, err := NewRecvSession(rConn, fConn.LocalAddr(), RecvSessionConfig{
		Receiver:    ReceiverConfig{Array: v.Array},
		JitterDelay: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var mu sync.Mutex
	clouds := 0
	recv.OnCloud = func(seq uint32, cloud *PointCloud) {
		mu.Lock()
		clouds++
		mu.Unlock()
	}
	viewer := SynthUserTrace("viewer", 5, 60, 30)
	start := time.Now()
	recv.PoseSource = func() Pose { return viewer.At(time.Since(start).Seconds()) }
	go recv.Run()

	for i := 0; i < frames; i++ {
		if _, err := send.SendViews(v.Frame(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(33 * time.Millisecond)
	}
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := clouds
		mu.Unlock()
		if n >= frames*2/3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	return fwd, clouds
}

// TestSessionSurvivesPacketLoss streams through a 10%-loss middlebox with
// FEC enabled: the receiver must still reconstruct most frames (parity
// repairs single losses; NACKs and PLI cover the rest, §A.1).
func TestSessionSurvivesPacketLoss(t *testing.T) {
	const frames = 30
	fwd, clouds := runFaultySession(t, frames, true, func(f *lossyForwarder) {
		f.rate = 0.10
		f.rng = rand.New(rand.NewSource(42))
	})
	fwd.mu.Lock()
	dropped := fwd.dropped
	fwd.mu.Unlock()
	t.Logf("middlebox dropped %d packets; receiver reconstructed %d/%d frames", dropped, clouds, frames)
	if dropped == 0 {
		t.Fatal("loss injector never fired; test is vacuous")
	}
	if clouds < frames*2/3 {
		t.Fatalf("only %d/%d frames survived 10%% loss", clouds, frames)
	}
}

// TestSessionSurvivesReorderDup mixes loss with duplication and reordering
// on a seeded schedule, with and without FEC: duplicates must be ignored,
// late packets must land in the jitter buffer or be skipped cleanly, and
// most frames must still reconstruct.
func TestSessionSurvivesReorderDup(t *testing.T) {
	for _, tc := range []struct {
		name string
		fec  bool
		seed int64
	}{
		{"FEC", true, 7},
		{"NoFEC", false, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const frames = 30
			fwd, clouds := runFaultySession(t, frames, tc.fec, func(f *lossyForwarder) {
				f.rate = 0.05
				f.dup = 0.10
				f.reorder = 0.15
				f.reorderDelay = 40 * time.Millisecond
				f.rng = rand.New(rand.NewSource(tc.seed))
			})
			fwd.mu.Lock()
			dropped, duplicated, reordered := fwd.dropped, fwd.duplicated, fwd.reordered
			fwd.mu.Unlock()
			t.Logf("dropped=%d duplicated=%d reordered=%d; reconstructed %d/%d frames",
				dropped, duplicated, reordered, clouds, frames)
			if dropped == 0 || duplicated == 0 || reordered == 0 {
				t.Fatalf("fault schedule vacuous: dropped=%d duplicated=%d reordered=%d",
					dropped, duplicated, reordered)
			}
			if clouds < frames*2/3 {
				t.Fatalf("only %d/%d frames survived reorder/dup schedule", clouds, frames)
			}
		})
	}
}
