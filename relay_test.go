package livo

import (
	"net"
	"sync"
	"testing"
	"time"

	"livo/internal/scene"
)

// TestRelayFanOut runs a sender through a relay to two receivers: both must
// reconstruct clouds, and the sender must adapt to the minimum REMB.
func TestRelayFanOut(t *testing.T) {
	v, err := scene.OpenVideo("toddler4", testCapture())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() net.PacketConn {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sConn, relayConn, r1Conn, r2Conn := mk(), mk(), mk(), mk()
	defer sConn.Close()
	defer relayConn.Close()
	defer r1Conn.Close()
	defer r2Conn.Close()

	relay := NewRelay(relayConn, sConn.LocalAddr())
	relay.Subscribe(r1Conn.LocalAddr())
	relay.Subscribe(r2Conn.LocalAddr())
	go relay.Run()
	defer relay.Close()
	if relay.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", relay.Subscribers())
	}

	send, err := NewSendSession(sConn, relayConn.LocalAddr(), SendSessionConfig{
		Sender: SenderConfig{Array: v.Array, ViewParams: DefaultViewParams()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	var mu sync.Mutex
	counts := map[string]int{}
	mkRecv := func(name string, conn net.PacketConn) *RecvSession {
		rs, err := NewRecvSession(conn, relayConn.LocalAddr(), RecvSessionConfig{
			Receiver:    ReceiverConfig{Array: v.Array},
			JitterDelay: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs.OnCloud = func(seq uint32, cloud *PointCloud) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
		}
		viewer := SynthUserTrace(name, int64(len(name)), 60, 30)
		start := time.Now()
		rs.PoseSource = func() Pose { return viewer.At(time.Since(start).Seconds()) }
		go rs.Run()
		return rs
	}
	r1 := mkRecv("r1", r1Conn)
	r2 := mkRecv("r2", r2Conn)
	defer r1.Close()
	defer r2.Close()

	for i := 0; i < 15; i++ {
		if _, err := send.SendViews(v.Frame(i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(33 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := counts["r1"] >= 8 && counts["r2"] >= 8
		mu.Unlock()
		if ok {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["r1"] < 8 || counts["r2"] < 8 {
		t.Fatalf("fan-out incomplete: %v", counts)
	}
}

// TestRelayUnsubscribe: removing a subscriber tears down its queue, evicts
// its REMB entry, and repoints the primary viewer to the oldest remaining
// subscriber.
func TestRelayUnsubscribe(t *testing.T) {
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sender, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1")
	s1, _ := net.ResolveUDPAddr("udp", "127.0.0.1:2001")
	s2, _ := net.ResolveUDPAddr("udp", "127.0.0.1:2002")
	r := NewRelay(c, sender)
	defer r.Close()

	r.Subscribe(s1)
	r.Subscribe(s2)
	if p := r.Primary(); p == nil || p.String() != s1.String() {
		t.Fatalf("primary = %v, want %v", p, s1)
	}
	if !r.Unsubscribe(s1) {
		t.Fatal("Unsubscribe(s1) = false, want true")
	}
	if r.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", r.Subscribers())
	}
	if p := r.Primary(); p == nil || p.String() != s2.String() {
		t.Fatalf("primary = %v after unsubscribe, want repointed to %v", p, s2)
	}
	if r.Unsubscribe(s1) {
		t.Fatal("second Unsubscribe(s1) = true, want false")
	}
	if st := r.Stats(); st.Subscribers != 1 {
		t.Fatalf("stats subscribers = %d, want 1", st.Subscribers)
	}
}

func TestRelayDoubleClose(t *testing.T) {
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, _ := net.ResolveUDPAddr("udp", "127.0.0.1:1")
	r := NewRelay(c, addr)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close should be an idempotent no-op, got %v", err)
	}
}
