package livo

import (
	"encoding/binary"
	"fmt"
	"math"

	"livo/internal/geom"
)

// Feedback messages ride the reverse path of a live session: viewer poses
// (for frustum prediction, §3.4), receiver bandwidth estimates (REMB-style,
// §3.3), NACKs and PLIs (§A.1), and RTT probes.
const (
	fbPose byte = 1 + iota
	fbREMB
	fbNACK
	fbPLI
	fbPing
	fbPong
)

// marshalPose encodes a timestamped viewer pose.
func marshalPose(t float64, p geom.Pose) []byte {
	out := make([]byte, 1, 1+8*8)
	out[0] = fbPose
	for _, v := range []float64{t, p.Position.X, p.Position.Y, p.Position.Z,
		p.Rotation.W, p.Rotation.X, p.Rotation.Y, p.Rotation.Z} {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func unmarshalPose(b []byte) (t float64, p geom.Pose, err error) {
	if len(b) < 1+8*8 {
		return 0, geom.Pose{}, fmt.Errorf("livo: short pose feedback")
	}
	f := make([]float64, 8)
	for i := range f {
		f[i] = math.Float64frombits(binary.BigEndian.Uint64(b[1+8*i:]))
	}
	return f[0], geom.Pose{
		Position: geom.V3(f[1], f[2], f[3]),
		Rotation: geom.Quat{W: f[4], X: f[5], Y: f[6], Z: f[7]}.Normalize(),
	}, nil
}

// marshalREMB encodes a receiver bandwidth estimate (bits per second).
func marshalREMB(bps float64) []byte {
	out := make([]byte, 1, 9)
	out[0] = fbREMB
	return binary.BigEndian.AppendUint64(out, math.Float64bits(bps))
}

func unmarshalREMB(b []byte) (float64, error) {
	if len(b) < 9 {
		return 0, fmt.Errorf("livo: short REMB")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), nil
}

// marshalNACK encodes a missing-fragment report.
func marshalNACK(stream uint8, frameSeq uint32, frag uint16) []byte {
	out := make([]byte, 8)
	out[0] = fbNACK
	out[1] = stream
	binary.BigEndian.PutUint32(out[2:], frameSeq)
	binary.BigEndian.PutUint16(out[6:], frag)
	return out
}

func unmarshalNACK(b []byte) (stream uint8, frameSeq uint32, frag uint16, err error) {
	if len(b) < 8 {
		return 0, 0, 0, fmt.Errorf("livo: short NACK")
	}
	return b[1], binary.BigEndian.Uint32(b[2:]), binary.BigEndian.Uint16(b[6:]), nil
}

// marshalPing/Pong carry a sender timestamp for application-level RTT.
func marshalPing(t float64, typ byte) []byte {
	out := make([]byte, 1, 9)
	out[0] = typ
	return binary.BigEndian.AppendUint64(out, math.Float64bits(t))
}

func unmarshalPing(b []byte) (float64, error) {
	if len(b) < 9 {
		return 0, fmt.Errorf("livo: short ping")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), nil
}
