package livo

import (
	"encoding/binary"
	"fmt"
	"math"

	"livo/internal/geom"
	"livo/internal/transport"
)

// Feedback messages ride the reverse path of a live session: viewer poses
// (for frustum prediction, §3.4), receiver bandwidth estimates (REMB-style,
// §3.3), NACKs and PLIs (§A.1), and RTT probes. The wire-type values and
// the REMB/NACK codecs live in internal/transport so the relay core can
// aggregate feedback without importing this package.
const (
	fbPose = transport.FBPose
	fbREMB = transport.FBREMB
	fbNACK = transport.FBNACK
	fbPLI  = transport.FBPLI
	fbPing = transport.FBPing
	fbPong = transport.FBPong
)

// marshalPose encodes a timestamped viewer pose.
func marshalPose(t float64, p geom.Pose) []byte {
	out := make([]byte, 1, 1+8*8)
	out[0] = fbPose
	for _, v := range []float64{t, p.Position.X, p.Position.Y, p.Position.Z,
		p.Rotation.W, p.Rotation.X, p.Rotation.Y, p.Rotation.Z} {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func unmarshalPose(b []byte) (t float64, p geom.Pose, err error) {
	if len(b) < 1+8*8 {
		return 0, geom.Pose{}, fmt.Errorf("livo: short pose feedback")
	}
	f := make([]float64, 8)
	for i := range f {
		f[i] = math.Float64frombits(binary.BigEndian.Uint64(b[1+8*i:]))
	}
	return f[0], geom.Pose{
		Position: geom.V3(f[1], f[2], f[3]),
		Rotation: geom.Quat{W: f[4], X: f[5], Y: f[6], Z: f[7]}.Normalize(),
	}, nil
}

// marshalREMB encodes a receiver bandwidth estimate (bits per second).
func marshalREMB(bps float64) []byte {
	return transport.AppendREMB(make([]byte, 0, 9), bps)
}

func unmarshalREMB(b []byte) (float64, error) { return transport.UnmarshalREMB(b) }

// marshalNACK encodes a missing-fragment report.
func marshalNACK(stream uint8, frameSeq uint32, frag uint16) []byte {
	return transport.MarshalNACK(stream, frameSeq, frag)
}

func unmarshalNACK(b []byte) (stream uint8, frameSeq uint32, frag uint16, err error) {
	return transport.UnmarshalNACK(b)
}

// marshalPing/Pong carry a sender timestamp for application-level RTT.
func marshalPing(t float64, typ byte) []byte {
	out := make([]byte, 1, 9)
	out[0] = typ
	return binary.BigEndian.AppendUint64(out, math.Float64bits(t))
}

func unmarshalPing(b []byte) (float64, error) {
	if len(b) < 9 {
		return 0, fmt.Errorf("livo: short ping")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), nil
}
