// Quickstart: encode one captured volumetric frame through the LiVo
// pipeline, decode it, and measure the reconstruction quality — the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"livo"
	"livo/internal/scene"
)

func main() {
	// 1. A capture rig: in a real deployment this is your calibrated
	// RGB-D camera array; here we synthesize a "musical band" scene with
	// 6 virtual cameras in a ring.
	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = 6, 96, 80
	video, err := scene.OpenVideo("band2", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Sender and receiver share the calibration (exchanged at session
	// setup in a live deployment).
	sender, err := livo.NewSender(livo.SenderConfig{
		Array:      video.Array,
		ViewParams: livo.DefaultViewParams(),
	})
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := livo.NewReceiver(livo.ReceiverConfig{Array: video.Array})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Tell the sender where the viewer is (normally fed back over the
	// network) so it can cull content outside their view.
	viewer := livo.LookAt(livo.V3(0.5, 1.6, 1.8), livo.V3(0, 0.9, 0), livo.V3(0, 1, 0))
	sender.ObservePose(0, viewer)

	// 4. Encode a frame at a 60 Mbps bandwidth budget, split adaptively
	// between the depth and color streams.
	views := video.Frame(0)
	enc, err := sender.ProcessFrame(views, 60e6)
	if err != nil {
		log.Fatal(err)
	}
	raw := 0
	for _, v := range views {
		raw += v.SizeBytes()
	}
	fmt.Printf("raw frame: %d KB -> encoded: %d KB (%.0fx), depth split %.2f, culled %.0f%% of pixels\n",
		raw/1024, enc.TotalBytes()/1024, float64(raw)/float64(enc.TotalBytes()),
		enc.Split, 100*(1-enc.CullStats.KeptFraction()))

	// 5. Decode and reconstruct the point cloud at the receiver.
	if _, err := receiver.PushColor(enc.Color); err != nil {
		log.Fatal(err)
	}
	pf, err := receiver.PushDepth(enc.Depth)
	if err != nil {
		log.Fatal(err)
	}
	cloud, err := receiver.Reconstruct(pf, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Objective quality against the ground-truth capture.
	pos, cols, err := video.Array.PointsFromViews(views)
	if err != nil {
		log.Fatal(err)
	}
	gt := &livo.PointCloud{Positions: pos, Colors: cols}
	f := livo.NewFrustum(viewer, livo.DefaultViewParams())
	ps := livo.PointSSIM(gt.CullFrustum(f), cloud.CullFrustum(f))
	fmt.Printf("reconstructed %d points; PointSSIM geometry %.1f, color %.1f (in the viewer's frustum)\n",
		cloud.Len(), ps.Geometry, ps.Color)

	// 7. Render the viewer's perspective and save a snapshot.
	img := livo.Render(cloud, viewer, livo.RenderOptions{Width: 640, Height: 480})
	out, err := os.Create("quickstart.png")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := img.WritePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote quickstart.png (%d points drawn, %.0f%% viewport coverage)\n",
		img.Drawn, 100*img.Coverage())
}
