// Conference: a minimal one-way live session over loopback UDP using the
// public Session API — sender streams a dance scene, receiver reconstructs
// point clouds while its viewer (whose poses drive the sender's culling)
// moves around. See cmd/livo-conference for the two-way version.
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"livo"
	"livo/internal/scene"
)

func main() {
	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = 4, 64, 48
	video, err := scene.OpenVideo("dance5", cfg)
	if err != nil {
		log.Fatal(err)
	}

	sConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sConn.Close()
	rConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rConn.Close()

	send, err := livo.NewSendSession(sConn, rConn.LocalAddr(), livo.SendSessionConfig{
		Sender: livo.SenderConfig{Array: video.Array, ViewParams: livo.DefaultViewParams()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer send.Close()

	recv, err := livo.NewRecvSession(rConn, sConn.LocalAddr(), livo.RecvSessionConfig{
		Receiver:    livo.ReceiverConfig{Array: video.Array},
		JitterDelay: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()

	var clouds atomic.Int64
	recv.OnCloud = func(seq uint32, cloud *livo.PointCloud) { clouds.Add(1) }
	viewer := livo.SynthUserTrace("viewer", 11, 3600, 30)
	start := time.Now()
	recv.PoseSource = func() livo.Pose { return viewer.At(time.Since(start).Seconds()) }
	go recv.Run()

	fmt.Println("streaming dance5 for 5 seconds over loopback UDP...")
	ticker := time.NewTicker(time.Second / 30)
	defer ticker.Stop()
	for i := 0; i < 150; i++ {
		<-ticker.C
		if _, err := send.SendViews(video.Frame(i % video.NumFrames())); err != nil {
			log.Fatal(err)
		}
		if i%30 == 29 {
			fmt.Printf("t=%ds: receiver reconstructed %d clouds, sender rate %.1f Mbps\n",
				(i+1)/30, clouds.Load(), send.Rate()/1e6)
		}
	}
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("done: %d clouds (%.1f fps effective)\n", clouds.Load(), float64(clouds.Load())/5)
}
