// Culling demo: shows LiVo's frustum prediction and view culling (§3.4) in
// isolation — a viewer walks through a party scene while the sender
// predicts their frustum 250 ms ahead and culls the camera views, printing
// prediction accuracy and the bandwidth the culling saves.
package main

import (
	"fmt"
	"log"

	"livo"
	"livo/internal/cull"
	"livo/internal/scene"
)

func main() {
	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = 6, 96, 80
	video, err := scene.OpenVideo("pizza1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	viewer := livo.SynthUserTrace("walker", 7, 20, 30)

	pred := cull.NewFrustumPredictor(livo.DefaultViewParams())
	pred.SetHorizon(0.25) // one-way delay: network + processing + jitter

	fmt.Println("frustum prediction + culling on pizza1 (horizon 250 ms, guard band 20 cm)")
	fmt.Printf("%-6s %-10s %-12s %-12s\n", "t(s)", "recall", "sent frac", "culled px")
	var recallSum, sentSum float64
	n := 0
	for i := 0; i < 20*30; i++ {
		t := float64(i) / 30
		pred.ObservePose(t, viewer.At(t))
		if i < 15 || i%30 != 0 {
			continue
		}
		views := video.Frame(i % video.NumFrames())
		predicted := pred.PredictFrustum()
		actual := livo.NewFrustum(viewer.At(t+0.25), livo.DefaultViewParams())
		acc, err := cull.MeasureAccuracy(video.Array, views, predicted, actual)
		if err != nil {
			log.Fatal(err)
		}
		culled, st, err := cull.Views(video.Array, views, predicted)
		if err != nil {
			log.Fatal(err)
		}
		_ = culled
		fmt.Printf("%-6.1f %-10.3f %-12.2f %d of %d\n",
			t, acc.Recall, acc.SentFraction, st.Total-st.Kept, st.Total)
		recallSum += acc.Recall
		sentSum += acc.SentFraction
		n++
	}
	fmt.Printf("\nmean recall %.3f (fraction of visible content kept)\n", recallSum/float64(n))
	fmt.Printf("mean sent fraction %.2f -> culling saves ~%.0f%% of the pixels before encoding\n",
		sentSum/float64(n), 100*(1-sentSum/float64(n)))
}
