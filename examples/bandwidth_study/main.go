// Bandwidth study: stream the same scene at a range of bandwidth budgets
// and print how reconstruction quality scales — the rate-quality behaviour
// behind the paper's Figs 18/19 and A.2. Also contrasts LiVo's adaptive
// depth/color split against a naive 50/50 split at each rate.
package main

import (
	"fmt"
	"log"

	"livo"
	"livo/internal/scene"
)

func main() {
	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = 6, 96, 80
	video, err := scene.OpenVideo("office1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	viewer := livo.LookAt(livo.V3(0.3, 1.6, 1.9), livo.V3(0, 0.9, 0), livo.V3(0, 1, 0))
	frustum := livo.NewFrustum(viewer, livo.DefaultViewParams())

	gtClouds := make([]*livo.PointCloud, 12)
	for i := range gtClouds {
		pos, cols, err := video.Array.PointsFromViews(video.Frame(i))
		if err != nil {
			log.Fatal(err)
		}
		gtClouds[i] = &livo.PointCloud{Positions: pos, Colors: cols}
	}

	run := func(mbps float64, variant livo.Variant, staticSplit float64) (geo, col float64) {
		sender, err := livo.NewSender(livo.SenderConfig{
			Variant:     variant,
			Array:       video.Array,
			ViewParams:  livo.DefaultViewParams(),
			StaticSplit: staticSplit,
		})
		if err != nil {
			log.Fatal(err)
		}
		receiver, err := livo.NewReceiver(livo.ReceiverConfig{Array: video.Array})
		if err != nil {
			log.Fatal(err)
		}
		sender.ObservePose(0, viewer)
		var n float64
		for i := 0; i < len(gtClouds); i++ {
			enc, err := sender.ProcessFrame(video.Frame(i), mbps*1e6)
			if err != nil {
				log.Fatal(err)
			}
			receiver.PushColor(enc.Color)
			pf, err := receiver.PushDepth(enc.Depth)
			if err != nil || pf == nil {
				log.Fatalf("pairing: %v", err)
			}
			if i < 4 { // rate-control warmup
				continue
			}
			cloud, err := receiver.Reconstruct(pf, nil)
			if err != nil {
				log.Fatal(err)
			}
			ps := livo.PointSSIM(gtClouds[i].CullFrustum(frustum), cloud.CullFrustum(frustum))
			geo += ps.Geometry
			col += ps.Color
			n++
		}
		return geo / n, col / n
	}

	fmt.Println("bandwidth sweep on office1 (PointSSIM in the viewer's frustum)")
	fmt.Printf("%-10s %-22s %-22s\n", "Mbps", "adaptive split (g/c)", "fixed 50/50 (g/c)")
	for _, mbps := range []float64{0.5, 1, 2, 4, 8} {
		ag, ac := run(mbps, livo.VariantLiVo, 0)
		sg, sc := run(mbps, livo.VariantStaticSplit, 0.5)
		fmt.Printf("%-10.1f %8.1f / %-11.1f %8.1f / %-11.1f\n", mbps, ag, ac, sg, sc)
	}
	fmt.Println("\nhigher is better; the adaptive split protects geometry at low rates (§3.3)")
}
