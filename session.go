package livo

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"livo/internal/codec/vcodec"
	"livo/internal/core"
	"livo/internal/frametrace"
	"livo/internal/telemetry"
	"livo/internal/transport"
	"livo/internal/udpio"
)

// mediaMagic distinguishes media packets from feedback on the same socket.
const mediaMagic = transport.MediaMagic

// SendSession streams one direction of a live conference: it encodes camera
// views with the LiVo pipeline and sends them to a remote receiver over a
// packet connection, processing feedback (poses, REMB, NACK, PLI) on the
// reverse path. A two-way conference runs one SendSession and one
// RecvSession per site (§3.1).
type SendSession struct {
	sender *core.Sender
	conn   net.PacketConn
	remote net.Addr
	fps    int
	fec    bool
	ladder bool
	trace  *frametrace.Ledger // cfg.Sender.Trace (nil disables stamps)

	rateBps atomic.Uint64 // current send rate from receiver REMB
	paceQ   chan []byte
	// pliArmed guards against PLI storms: once a PLI forces a key frame,
	// further PLIs are ignored until that IDR is actually encoded (§A.1).
	pliArmed atomic.Bool

	mu      sync.Mutex
	history map[retxKey][]byte // recent packets for NACK retransmission
	order   []retxKey
	start   time.Time
	closed  chan struct{}
	wg      sync.WaitGroup
	err     atomic.Value

	// Session-local counters back Stats() exactly (registry counters are
	// process-wide and may aggregate several sessions).
	frames    atomic.Int64
	pkts      atomic.Int64
	bytesSent atomic.Int64
	paceDrops atomic.Int64
	retx      atomic.Int64
	nacksRecv atomic.Int64
	plisRecv  atomic.Int64

	// Telemetry handles, resolved once in NewSendSession (DESIGN.md §6).
	stages                                   *telemetry.StageSet
	mPkts, mBytes, mPaceDrops, mRetx, mPLIRx *telemetry.Counter
	gRate                                    *telemetry.Gauge
}

type retxKey struct {
	stream uint8
	seq    uint32
	frag   uint16
	rung   uint8
}

// SendSessionConfig configures a SendSession.
type SendSessionConfig struct {
	Sender SenderConfig
	// InitialRateBps seeds the send rate before the first REMB (default
	// 20 Mbps).
	InitialRateBps float64
	// FPS is the capture rate (default 30).
	FPS int
	// EnableFEC adds one XOR parity packet per group of 8 fragments, so
	// single losses are repaired at the receiver without a NACK round
	// trip (transport/fec.go; loss-robustness beyond the paper's
	// NACK/PLI, §5 future work).
	EnableFEC bool
}

// NewSendSession builds a sending session bound to conn, targeting remote.
// The session takes over reading from conn (feedback).
func NewSendSession(conn net.PacketConn, remote net.Addr, cfg SendSessionConfig) (*SendSession, error) {
	sender, err := core.NewSender(cfg.Sender)
	if err != nil {
		return nil, err
	}
	if cfg.InitialRateBps <= 0 {
		cfg.InitialRateBps = 20e6
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	s := &SendSession{
		sender:  sender,
		conn:    conn,
		remote:  remote,
		fps:     cfg.FPS,
		fec:     cfg.EnableFEC,
		ladder:  cfg.Sender.Ladder,
		trace:   cfg.Sender.Trace,
		history: make(map[retxKey][]byte),
		start:   time.Now(),
		closed:  make(chan struct{}),
	}
	tel := cfg.Sender.Telemetry
	if tel == nil {
		tel = telemetry.Default
	}
	s.stages = telemetry.NewStageSet(tel)
	s.mPkts = tel.Counter("livo_send_packets_total")
	s.mBytes = tel.Counter("livo_send_bytes_total")
	s.mPaceDrops = tel.Counter("livo_pace_drops_total")
	s.mRetx = tel.Counter("livo_retx_total")
	s.mPLIRx = tel.Counter("livo_pli_received_total")
	s.gRate = tel.Gauge("livo_send_rate_bps")
	s.rateBps.Store(uint64(cfg.InitialRateBps))
	s.gRate.Set(cfg.InitialRateBps)
	s.paceQ = make(chan []byte, 4096)
	s.wg.Add(2)
	go s.feedbackLoop()
	go s.paceLoop()
	return s, nil
}

// paceLoop transmits queued packets at the current rate instead of
// bursting whole frames — WebRTC-style pacing keeps queues (and the
// receiver's delay-gradient estimator) sane.
func (s *SendSession) paceLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case wire := <-s.paceQ:
			if _, err := s.conn.WriteTo(wire, s.remote); err != nil {
				s.err.Store(fmt.Errorf("livo: send: %w", err))
				return
			}
			rate := s.Rate()
			if rate < 1e5 {
				rate = 1e5
			}
			// Serialize time of this packet at the target rate, halved:
			// pace at 2x the media rate so feedback/overhead fits.
			d := time.Duration(float64(len(wire)) * 8 / (2 * rate) * float64(time.Second))
			if d > 0 {
				select {
				case <-s.closed:
					return
				case <-time.After(d):
				}
			}
		}
	}
}

// now returns seconds since session start.
func (s *SendSession) now() float64 { return time.Since(s.start).Seconds() }

// Rate returns the current send rate (bits/second).
func (s *SendSession) Rate() float64 { return float64(s.rateBps.Load()) }

// SendViews runs the sender pipeline on one set of camera views and
// transmits the encoded frame.
func (s *SendSession) SendViews(views []RGBDFrame) (*EncodedFrame, error) {
	if e := s.err.Load(); e != nil {
		return nil, e.(error)
	}
	enc, err := s.sender.ProcessFrame(views, s.Rate())
	if err != nil {
		return nil, err
	}
	if enc.Color.Key && enc.Depth.Key {
		// The refresh went out; accept the next PLI again.
		s.pliArmed.Store(false)
	}
	ts := uint64(s.now() * 1e6)
	tPkt := time.Now()
	var pkts []transport.Packet
	if enc.ColorRungs != nil {
		// Ladder mode: every rung of both streams goes on the wire once; the
		// relay filters per subscriber (DESIGN.md §8). FEC groups are built
		// per rung so a parity packet never spans encodings.
		for _, cp := range enc.ColorRungs {
			rp := transport.PacketizeRung(transport.StreamColor, enc.Seq, cp.Key, cp.Rung, ts, cp.Data)
			if s.fec {
				rp = append(rp, transport.BuildParity(rp)...)
			}
			pkts = append(pkts, rp...)
		}
		for _, dp := range enc.DepthRungs {
			rp := transport.PacketizeRung(transport.StreamDepth, enc.Seq, dp.Key, dp.Rung, ts, dp.Data)
			if s.fec {
				rp = append(rp, transport.BuildParity(rp)...)
			}
			pkts = append(pkts, rp...)
		}
	} else {
		colorPkts := transport.Packetize(transport.StreamColor, enc.Seq, enc.Color.Key, ts, enc.Color.Data)
		depthPkts := transport.Packetize(transport.StreamDepth, enc.Seq, enc.Depth.Key, ts, enc.Depth.Data)
		pkts = append(colorPkts, depthPkts...)
		if s.fec {
			pkts = append(pkts, transport.BuildParity(colorPkts)...)
			pkts = append(pkts, transport.BuildParity(depthPkts)...)
		}
	}
	s.stages.Done(enc.Seq, telemetry.StagePacketize, tPkt)
	s.trace.StampNow(frametrace.HopPacketize, 0, enc.Seq, frametrace.NoSub)
	tSend := time.Now()
	for i := range pkts {
		if err := s.sendPacket(&pkts[i]); err != nil {
			return nil, err
		}
	}
	// StageSend covers handing the frame to the pacer, not the paced wire
	// time (that is rate-limited by design and would dwarf real stage costs).
	s.stages.Done(enc.Seq, telemetry.StageSend, tSend)
	s.frames.Add(1)
	return enc, nil
}

func (s *SendSession) sendPacket(p *transport.Packet) error {
	if e := s.err.Load(); e != nil {
		return e.(error)
	}
	wire := append([]byte{mediaMagic}, p.Marshal()...)
	select {
	case s.paceQ <- wire:
		s.pkts.Add(1)
		s.bytesSent.Add(int64(len(wire)))
		s.mPkts.Inc()
		s.mBytes.Add(int64(len(wire)))
	default:
		// Pacer backlogged a full second of packets: drop-oldest semantics
		// are the receiver's job (jitter buffer); here we drop the new
		// packet and let NACK/FEC recover if it mattered.
		s.paceDrops.Add(1)
		s.mPaceDrops.Inc()
	}
	s.mu.Lock()
	k := retxKey{p.Stream, p.FrameSeq, p.FragIndex, p.Rung}
	if _, exists := s.history[k]; !exists {
		s.history[k] = wire
		s.order = append(s.order, k)
		// Keep roughly one second of history for NACKs (a ladder triples the
		// packet rate, so it gets a proportionally deeper window).
		limit := 4096
		if s.ladder {
			limit = 8192
		}
		for len(s.order) > limit {
			delete(s.history, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
	return nil
}

// feedbackLoop processes reverse-path messages until Close.
func (s *SendSession) feedbackLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		// Blocking read — no per-iteration SetReadDeadline syscall (the
		// old loop paid one per 50 ms even when idle). Close closes
		// s.closed first and then pokes a past read deadline, so the
		// error that unblocks us is classified as teardown here.
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			s.err.Store(fmt.Errorf("livo: feedback read: %w", err))
			return
		}
		if n == 0 {
			continue
		}
		s.handleFeedback(buf[:n])
	}
}

func (s *SendSession) handleFeedback(b []byte) {
	switch b[0] {
	case fbPose:
		if t, pose, err := unmarshalPose(b); err == nil {
			s.sender.ObservePose(t, pose)
		}
	case fbREMB:
		if bps, err := unmarshalREMB(b); err == nil && bps > 0 {
			s.rateBps.Store(uint64(bps))
			s.gRate.Set(bps)
		}
	case fbNACK:
		if stream, seq, frag, err := unmarshalNACK(b); err == nil {
			s.nacksRecv.Add(1)
			// The wire NACK carries no rung id, so resend every rung's copy
			// of the fragment that exists in history. Direct receivers only
			// ever buffered one rung's fragments for that slot; through a
			// relay, the rung-aware retransmission cache or the subscriber
			// filter delivers just the copy the subscriber is watching.
			var wires [][]byte
			s.mu.Lock()
			for rung := uint8(0); rung < transport.MaxRungs; rung++ {
				if w := s.history[retxKey{stream, seq, frag, rung}]; w != nil {
					wires = append(wires, w)
				}
			}
			s.mu.Unlock()
			for _, wire := range wires {
				s.retx.Add(1)
				s.mRetx.Inc()
				_, _ = s.conn.WriteTo(wire, s.remote)
			}
		}
	case fbPLI:
		s.plisRecv.Add(1)
		s.mPLIRx.Inc()
		// Refresh-in-flight guard: during an outage the receiver re-sends
		// PLIs until the IDR lands; only the first arms a key frame.
		if s.pliArmed.CompareAndSwap(false, true) {
			s.sender.ForceKeyFrame()
		}
	case fbPong:
		if t0, err := unmarshalPing(b); err == nil {
			s.sender.ObserveRTT(s.now() - t0)
		}
	case fbPing:
		// Reflect pings so the peer can measure RTT too.
		b[0] = fbPong
		_, _ = s.conn.WriteTo(b, s.remote)
	}
}

// Err returns the first asynchronous error hit by the session's background
// goroutines (pacer write failure, feedback read failure), or nil while
// healthy. Once non-nil the session is dead: SendViews returns the same
// error and no further packets leave the socket.
func (s *SendSession) Err() error {
	if e := s.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// SendStats is a point-in-time snapshot of one sending session.
type SendStats struct {
	// Frames counts frames fully processed and handed to the pacer.
	Frames int64
	// Packets and Bytes count wire packets/bytes enqueued for transmission.
	Packets int64
	Bytes   int64
	// PaceDrops counts packets discarded because the pacer queue was full.
	PaceDrops int64
	// Retransmits counts NACK-triggered retransmissions served from history.
	Retransmits int64
	// NACKsReceived and PLIsReceived count feedback messages processed.
	NACKsReceived int64
	PLIsReceived  int64
	// RateBps is the current REMB-driven send rate.
	RateBps float64
	// Err is the session's terminal async error, nil while healthy.
	Err error
}

// Stats snapshots the session's counters (safe from any goroutine).
func (s *SendSession) Stats() SendStats {
	return SendStats{
		Frames:        s.frames.Load(),
		Packets:       s.pkts.Load(),
		Bytes:         s.bytesSent.Load(),
		PaceDrops:     s.paceDrops.Load(),
		Retransmits:   s.retx.Load(),
		NACKsReceived: s.nacksRecv.Load(),
		PLIsReceived:  s.plisRecv.Load(),
		RateBps:       s.Rate(),
		Err:           s.Err(),
	}
}

// Close stops the session. The connection is not closed (the caller owns
// it; a conference shares one socket between send and receive sessions on
// separate ports in the examples).
func (s *SendSession) Close() error {
	close(s.closed)
	_ = s.conn.SetReadDeadline(time.Now())
	s.wg.Wait()
	return nil
}

// RecvSession receives one direction of a live conference: it reassembles
// the two video streams through jitter buffers, decodes and pairs them,
// reconstructs point clouds, and generates the reverse-path feedback
// (poses, REMB from its congestion estimator, NACKs, PLI).
type RecvSession struct {
	receiver *core.Receiver
	conn     net.PacketConn
	remote   net.Addr
	trace    *frametrace.Ledger // cfg.Receiver.Trace (nil disables stamps)

	// loopMu serializes the session's two goroutines — the blocking read
	// loop and the housekeeping ticker — over the single-threaded receive
	// state: jitter buffers, decoder, congestion estimator, PLI tracker,
	// and the user callbacks. Exactly one runs session logic at a time.
	loopMu sync.Mutex

	jb  map[uint8]*transport.JitterBuffer
	gcc *transport.GCC
	// pli schedules key-frame requests during outages (only touched on the
	// Run goroutine).
	pli *transport.PLITracker
	// lastConcealSeq dedupes concealment when both streams of one frame
	// fail to decode.
	lastConcealSeq uint32
	hasConcealed   bool

	// OnCloud is called (on the session goroutine) for every reconstructed
	// frame. The cloud is backed by receiver-owned arenas and is only
	// valid for the duration of the callback — the next reconstruction
	// overwrites it. Clone it to retain it.
	OnCloud func(seq uint32, cloud *PointCloud)
	// PoseSource supplies the viewer's current pose for feedback; nil
	// disables pose feedback.
	PoseSource func() Pose
	// Frustum, when non-nil, is applied to reconstructed clouds.
	Frustum func() *Frustum

	start     time.Time
	closed    chan struct{}
	wg        sync.WaitGroup
	err       atomic.Value
	decoded   atomic.Int64
	skipped   atomic.Int64
	received  atomic.Int64
	lost      atomic.Int64
	concealed atomic.Int64

	// Cumulative counters for Stats(): received/lost above are windowed
	// (Swap(0) each feedback interval) so they cannot serve totals. estRate
	// caches gcc.Rate(), which is only safe on the Run goroutine.
	rxTotal   atomic.Int64
	lostTotal atomic.Int64
	nacksSent atomic.Int64
	plisSent  atomic.Int64
	estRate   atomic.Uint64

	// Telemetry handles, resolved once in NewRecvSession (DESIGN.md §6).
	stages                               *telemetry.StageSet
	mRx, mNACKSent, mPLISent, mConceal   *telemetry.Counter
	gEstRate, gJitterColor, gJitterDepth *telemetry.Gauge
}

// RecvSessionConfig configures a RecvSession.
type RecvSessionConfig struct {
	Receiver ReceiverConfig
	// InitialRateBps seeds the bandwidth estimator (default 20 Mbps).
	InitialRateBps float64
	// MinRateBps/MaxRateBps bound the estimator (defaults 1 Mbps / 1 Gbps).
	MinRateBps, MaxRateBps float64
	// JitterDelay overrides the 100 ms default.
	JitterDelay float64
	// NackRetry overrides the jitter buffers' 250 ms re-NACK interval (how
	// long a NACK-ed fragment may stay missing before it is requested
	// again — a lost retransmission is re-requested instead of waiting out
	// the skip deadline). Negative disables re-requests.
	NackRetry float64
}

// NewRecvSession builds a receiving session bound to conn; feedback goes to
// remote. Callbacks must be set before the first packet arrives.
func NewRecvSession(conn net.PacketConn, remote net.Addr, cfg RecvSessionConfig) (*RecvSession, error) {
	recv, err := core.NewReceiver(cfg.Receiver)
	if err != nil {
		return nil, err
	}
	if cfg.InitialRateBps <= 0 {
		cfg.InitialRateBps = 20e6
	}
	if cfg.MinRateBps <= 0 {
		cfg.MinRateBps = 1e6
	}
	if cfg.MaxRateBps <= 0 {
		cfg.MaxRateBps = 1e9
	}
	r := &RecvSession{
		receiver: recv,
		conn:     conn,
		remote:   remote,
		trace:    cfg.Receiver.Trace,
		jb:       make(map[uint8]*transport.JitterBuffer),
		gcc:      transport.NewGCC(cfg.InitialRateBps, cfg.MinRateBps, cfg.MaxRateBps),
		pli:    transport.NewPLITracker(),
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	// One jitter buffer per (stream, rung): fragments from two encodings of
	// the same frame seq must never land in one reassembly slot, and a relay
	// rung switch can interleave packets from both rungs around the key
	// boundary. Buffers are pre-created (not lazily on first packet) so the
	// map is never written after construction — Stats() reads it without
	// loopMu. Legacy streams carry rung 0 and use the jbKey(stream, 0) entry.
	for _, stream := range []uint8{transport.StreamColor, transport.StreamDepth} {
		for rung := uint8(0); rung < transport.MaxRungs; rung++ {
			r.jb[jbKey(stream, rung)] = transport.NewJitterBuffer()
		}
	}
	if cfg.JitterDelay > 0 {
		for _, jb := range r.jb {
			jb.Delay = cfg.JitterDelay
		}
	}
	if cfg.NackRetry != 0 {
		retry := cfg.NackRetry
		if retry < 0 {
			retry = 0 // RenackAfter ≤ 0 means NACK-once
		}
		for _, jb := range r.jb {
			jb.RenackAfter = retry
		}
	}
	tel := cfg.Receiver.Telemetry
	if tel == nil {
		tel = telemetry.Default
	}
	r.stages = telemetry.NewStageSet(tel)
	r.mRx = tel.Counter("livo_recv_packets_total")
	r.mNACKSent = tel.Counter("livo_nack_sent_total")
	r.mPLISent = tel.Counter("livo_pli_sent_total")
	r.mConceal = tel.Counter("livo_concealed_frames_total")
	r.gEstRate = tel.Gauge("livo_recv_est_rate_bps")
	r.gJitterColor = tel.Gauge("livo_jitter_pending_color")
	r.gJitterDepth = tel.Gauge("livo_jitter_pending_depth")
	r.estRate.Store(uint64(cfg.InitialRateBps))
	r.gEstRate.Set(cfg.InitialRateBps)
	return r, nil
}

// Run processes packets until Close; call it on its own goroutine. Reads
// block (no 20 ms deadline polling — Close pokes a past deadline after
// closing r.closed to unblock the loop); timed work moves to a
// housekeeping ticker. Conns that batch natively (a udpio socket) are
// drained with one recvmmsg per kernel visit.
func (r *RecvSession) Run() {
	r.wg.Add(1)
	defer r.wg.Done()
	r.wg.Add(1)
	go r.housekeeping()
	if br, ok := r.conn.(udpio.BatchReader); ok {
		r.runBatch(br)
		return
	}
	buf := make([]byte, 65536)
	for {
		n, _, err := r.conn.ReadFrom(buf)
		now := r.now()
		if err != nil {
			if r.fatalReadErr(err) {
				return
			}
			continue
		}
		r.loopMu.Lock()
		if r.handleMedia(buf[:n], now) {
			r.drain(now)
		}
		r.loopMu.Unlock()
	}
}

// runBatch is the batched read loop: one recvmmsg fills a slice of slots,
// all of which are processed (and the jitter buffers drained once) under
// a single loopMu hold.
func (r *RecvSession) runBatch(br udpio.BatchReader) {
	ms := make([]udpio.Message, udpio.DefaultBatch)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048) // > MediaMagic + header + MTU
	}
	for {
		got, err := br.ReadBatch(ms)
		now := r.now()
		if err != nil {
			if r.fatalReadErr(err) {
				return
			}
			continue
		}
		r.loopMu.Lock()
		any := false
		for i := 0; i < got; i++ {
			if ms[i].N > 0 && r.handleMedia(ms[i].Buf[:ms[i].N], now) {
				any = true
			}
		}
		if any {
			r.drain(now)
		}
		r.loopMu.Unlock()
	}
}

// fatalReadErr classifies a read error: teardown and poked-deadline
// timeouts are expected; anything else kills the session and is surfaced
// through Err.
func (r *RecvSession) fatalReadErr(err error) bool {
	select {
	case <-r.closed:
		return true
	default:
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return false
	}
	r.err.Store(fmt.Errorf("livo: media read: %w", err))
	return true
}

// handleMedia ingests one wire datagram (loopMu held), reporting whether
// it was a media packet worth a drain pass.
func (r *RecvSession) handleMedia(buf []byte, now float64) bool {
	if len(buf) < 1 || buf[0] != mediaMagic {
		return false // feedback-typed or junk: not ours
	}
	t0 := time.Now()
	pkt, err := transport.Unmarshal(buf[1:])
	if err != nil {
		return false
	}
	r.stages.Done(pkt.FrameSeq, telemetry.StageDepacketize, t0)
	if pkt.FragIndex == 0 && !pkt.Parity {
		r.trace.StampNow(frametrace.HopWire, pkt.Stream, pkt.FrameSeq, frametrace.NoSub)
	}
	r.gcc.OnArrival(float64(pkt.SendTimeUs)/1e6, now, len(buf))
	r.received.Add(1)
	r.rxTotal.Add(1)
	r.mRx.Inc()
	if jb := r.jb[jbKey(pkt.Stream, pkt.Rung)]; jb != nil {
		jb.Push(pkt, now)
	}
	return true
}

// jbKey maps a (stream, rung) pair onto one jitter-buffer map key: stream id
// in the low nibble, rung in the high nibble (stream ids are 1 and 2, rungs
// are 0–3, so the packing is collision-free and jbKey(stream, 0) == stream).
func jbKey(stream, rung uint8) uint8 { return stream | rung<<4 }

// housekeeping owns the session's timed work until Close: jitter-buffer
// delivery and NACK scheduling every 20 ms (the cadence the old read
// deadline provided), feedback every 33 ms. It runs even — especially —
// when no packets arrive: an outage is exactly when NACKs and PLIs must
// keep flowing.
func (r *RecvSession) housekeeping() {
	defer r.wg.Done()
	drainTick := time.NewTicker(20 * time.Millisecond)
	defer drainTick.Stop()
	feedbackTick := time.NewTicker(33 * time.Millisecond)
	defer feedbackTick.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-drainTick.C:
			r.loopMu.Lock()
			r.drain(r.now())
			r.loopMu.Unlock()
		case <-feedbackTick.C:
			r.loopMu.Lock()
			r.sendFeedback()
			r.loopMu.Unlock()
		}
	}
}

func (r *RecvSession) now() float64 { return time.Since(r.start).Seconds() }

// drain delivers ready frames from both jitter buffers and reconstructs
// completed pairs.
func (r *RecvSession) drain(now float64) {
	for key, jb := range r.jb {
		stream := key & 0x0f
		for _, af := range jb.Pop(now) {
			// Record jitter-buffer residency (first fragment arrival →
			// delivery) as the jitter stage; ~Delay in a healthy session.
			if res := now - af.FirstArrival; res > 0 {
				r.stages.Done(af.FrameSeq, telemetry.StageJitter,
					time.Now().Add(-time.Duration(res*float64(time.Second))))
			}
			r.trace.StampNow(frametrace.HopJitter, stream, af.FrameSeq, frametrace.NoSub)
			pkt := &vcodec.Packet{Data: af.Data, Key: af.Key, Seq: af.FrameSeq, Rung: af.Rung}
			var pf *PairedFrame
			var err error
			if stream == transport.StreamColor {
				pf, err = r.receiver.PushColor(pkt)
			} else {
				pf, err = r.receiver.PushDepth(pkt)
			}
			if err != nil {
				// Undecodable: a skipped frame left the decoder's reference
				// stale, or the payload was corrupted in flight. Conceal
				// with the last good paired frame and request a key frame;
				// the tracker re-sends the PLI periodically until the IDR
				// lands but suppresses per-frame storms (§A.1).
				r.conceal(af.FrameSeq)
				if r.pli.Request(now) {
					r.plisSent.Add(1)
					r.mPLISent.Inc()
					_, _ = r.conn.WriteTo([]byte{fbPLI}, r.remote)
				}
				continue
			}
			if af.Key {
				// The recovery IDR decoded: the PLI cycle is complete.
				r.pli.OnKeyFrame()
			}
			if pf != nil {
				r.decoded.Add(1)
				if r.OnCloud != nil {
					var fr *Frustum
					if r.Frustum != nil {
						fr = r.Frustum()
					}
					cloud, err := r.receiver.Reconstruct(pf, fr)
					if err == nil {
						r.OnCloud(pf.Seq, cloud)
					}
				}
			}
		}
		for _, nack := range jb.Nacks(now) {
			r.lost.Add(1)
			r.lostTotal.Add(1)
			r.nacksSent.Add(1)
			r.mNACKSent.Inc()
			_, _ = r.conn.WriteTo(marshalNACK(nack.Stream, nack.FrameSeq, nack.FragIndex), r.remote)
		}
		switch key {
		case transport.StreamColor:
			r.gJitterColor.SetInt(int64(jb.Stats().Pending))
		case transport.StreamDepth:
			r.gJitterDepth.SetInt(int64(jb.Stats().Pending))
		}
	}
}

// conceal delivers the last good paired frame in place of undecodable frame
// seq, so the viewer sees a frozen-but-coherent cloud instead of nothing
// (or drift) while the PLI-requested key frame is in flight.
func (r *RecvSession) conceal(seq uint32) {
	if r.hasConcealed && r.lastConcealSeq == seq {
		return // the other stream of the same frame already concealed
	}
	r.lastConcealSeq, r.hasConcealed = seq, true
	pf := r.receiver.LastGood()
	if pf == nil || r.OnCloud == nil {
		return
	}
	var fr *Frustum
	if r.Frustum != nil {
		fr = r.Frustum()
	}
	if cloud, err := r.receiver.Reconstruct(pf, fr); err == nil {
		r.concealed.Add(1)
		r.mConceal.Inc()
		r.OnCloud(seq, cloud)
	}
}

// sendFeedback pushes pose, REMB, RTT probes, and loss reports to the
// sender.
func (r *RecvSession) sendFeedback() {
	now := r.now()
	if r.PoseSource != nil {
		_, _ = r.conn.WriteTo(marshalPose(now, r.PoseSource()), r.remote)
	}
	// Fold measured loss into the estimate before advertising it (GCC's
	// loss-based controller).
	rx := r.received.Swap(0)
	lost := r.lost.Swap(0)
	if rx+lost > 0 {
		r.gcc.OnLossReport(float64(lost) / float64(rx+lost))
	}
	rate := r.gcc.Rate()
	r.estRate.Store(uint64(rate))
	r.gEstRate.Set(rate)
	_, _ = r.conn.WriteTo(marshalREMB(rate), r.remote)
	_, _ = r.conn.WriteTo(marshalPing(now, fbPing), r.remote)
}

// Err returns the first asynchronous error hit by Run (media read failure),
// or nil while healthy. Once non-nil the session is dead: Run has returned
// and no further frames will be delivered.
func (r *RecvSession) Err() error {
	if e := r.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// RecvStats is a point-in-time snapshot of one receiving session.
type RecvStats struct {
	// Received counts media packets accepted since session start.
	Received int64
	// Lost counts fragments declared missing (each was NACK-ed once).
	Lost int64
	// Decoded counts paired frames delivered; Concealed counts undecodable
	// frames replaced by the last good frame during PLI recovery.
	Decoded   int64
	Concealed int64
	// NACKsSent and PLIsSent count feedback messages emitted.
	NACKsSent int64
	PLIsSent  int64
	// EstRateBps is the congestion estimator's current bandwidth estimate
	// (as last advertised via REMB).
	EstRateBps float64
	// Color and Depth are the per-stream jitter-buffer snapshots.
	Color, Depth transport.Stats
	// Err is the session's terminal async error, nil while healthy.
	Err error
}

// Stats snapshots the session's counters (safe from any goroutine).
func (r *RecvSession) Stats() RecvStats {
	return RecvStats{
		Received:   r.rxTotal.Load(),
		Lost:       r.lostTotal.Load(),
		Decoded:    r.decoded.Load(),
		Concealed:  r.concealed.Load(),
		NACKsSent:  r.nacksSent.Load(),
		PLIsSent:   r.plisSent.Load(),
		EstRateBps: float64(r.estRate.Load()),
		Color:      r.jb[transport.StreamColor].Stats(),
		Depth:      r.jb[transport.StreamDepth].Stats(),
		Err:        r.Err(),
	}
}

// Decoded returns how many paired frames were reconstructed.
func (r *RecvSession) Decoded() int64 { return r.decoded.Load() }

// Concealed returns how many undecodable frames were replaced by the last
// good frame while awaiting a PLI-requested key frame.
func (r *RecvSession) Concealed() int64 { return r.concealed.Load() }

// Close stops the session (the caller owns the connection).
func (r *RecvSession) Close() error {
	close(r.closed)
	_ = r.conn.SetReadDeadline(time.Now())
	r.wg.Wait()
	return nil
}
