// Command livo-trace generates the evaluation's workload inputs: the
// bandwidth traces of Table 4 (Mahimahi-like plain text) and synthetic
// 6-DoF user traces (CSV: t, position, quaternion), for inspection or for
// replaying through external tools.
//
// Usage:
//
//	livo-trace -out traces/                  # both bandwidth traces
//	livo-trace -user band2 -seconds 60 -out traces/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"livo/internal/trace"
)

func main() {
	var (
		out     = flag.String("out", ".", "output directory")
		user    = flag.String("user", "", "also generate user traces for this video")
		seconds = flag.Float64("seconds", 60, "user trace length")
		stats   = flag.Bool("stats", true, "print trace statistics")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, tr := range trace.Traces() {
		path := filepath.Join(*out, name+".bw")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tr.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if *stats {
			s := tr.Stats()
			fmt.Printf("%s -> %s  mean=%.2f max=%.2f min=%.2f p90=%.2f p10=%.2f Mbps\n",
				name, path, s.Mean, s.Max, s.Min, s.P90, s.P10)
		}
	}
	if *user == "" {
		return
	}
	for i, ut := range trace.UserTraces(*user, *seconds) {
		path := filepath.Join(*out, fmt.Sprintf("%s-user%d.pose.csv", *user, i))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "t,px,py,pz,qw,qx,qy,qz")
		for _, s := range ut.Samples {
			p, q := s.Pose.Position, s.Pose.Rotation
			fmt.Fprintf(f, "%.4f,%.4f,%.4f,%.4f,%.6f,%.6f,%.6f,%.6f\n",
				s.T, p.X, p.Y, p.Z, q.W, q.X, q.Y, q.Z)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d samples over %.1fs -> %s\n", ut.Name, len(ut.Samples), ut.Duration(), path)
	}
}
