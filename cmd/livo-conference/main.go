// Command livo-conference runs a full two-way conference between two
// simulated sites in one process over loopback UDP: each site captures its
// own scene, streams it to the other, and views the other's scene from a
// moving synthetic viewer — the deployment model of §3.1 (one sender and
// one receiver pipeline per site).
//
// Usage:
//
//	livo-conference -seconds 10
//
// The A→B direction is traced end to end (capture → encode → packetize →
// relay → jitter → decode → reconstruct): -debug-addr serves the merged
// timelines at /debugz/frames, structured relay events at /debugz/events,
// and per-subscriber queue stats at /debugz/subscribers; -trace-dump writes
// the merged timelines as JSONL at exit; SIGQUIT prints a compact
// subscriber table without stopping the conference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"livo"
	"livo/internal/frametrace"
	"livo/internal/relaycore"
	"livo/internal/scene"
	"livo/internal/telemetry"
	"livo/internal/udpio"
)

// site is one conference endpoint: a captured scene plus a viewer.
type site struct {
	name   string
	video  *scene.Video
	send   *livo.SendSession
	recv   *livo.RecvSession
	clouds atomic.Int64
}

func main() {
	var (
		videoA    = flag.String("video-a", "band2", "site A's scene")
		videoB    = flag.String("video-b", "office1", "site B's scene")
		seconds   = flag.Float64("seconds", 5, "conference duration")
		fanout    = flag.Int("fanout", 0, "route site A through a relay to this many subscribers (site B plus counting sinks)")
		ladder    = flag.Bool("ladder", false, "site A encodes the 3-rung quality ladder; the relay assigns each subscriber a rung from its REMB (DESIGN.md §8)")
		shards    = flag.Int("relay-shards", 0, "relay data-plane ingest shards (0 = GOMAXPROCS)")
		udpBatch  = flag.Bool("udp-batch", true, "batch UDP syscalls with sendmmsg/recvmmsg where the kernel supports it")
		rpShards  = flag.Int("reuseport-shards", 0, "bind this many SO_REUSEPORT relay ingest sockets sharing one port (0/1 = single socket)")
		sockBuf   = flag.Int("sockbuf", 0, "request SO_RCVBUF/SO_SNDBUF of this many bytes on every socket (0 = default ~1s of media)")
		debug     = flag.String("debug-addr", "", "serve /debugz, /debug/pprof, and /debug/vars on this address (e.g. localhost:6060)")
		traceDump = flag.String("trace-dump", "", "write the A→B merged frame timelines as JSONL to this file at exit")
	)
	flag.Parse()

	sockCfg := udpio.Config{
		RecvBuf:      *sockBuf,
		SendBuf:      *sockBuf,
		DisableBatch: !*udpBatch,
	}

	// Frame-trace ledgers for the A→B direction: one per process hop
	// (sender pipeline, relay data plane, receiver pipeline). Everything is
	// in-process, so the collector merges them with zero clock offset.
	traceSend := frametrace.NewLedger("sender-a", 4096)
	traceRelay := frametrace.NewLedger("relay", 8192)
	traceRecv := frametrace.NewLedger("recv-b", 4096)
	traceEvents := frametrace.NewEventRing(1024)

	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = 4, 64, 48 // small rig for the demo

	// Session sockets go through udpio so the receive loops can drain with
	// recvmmsg and the kernel queues hold ~1s of media (or -sockbuf) instead
	// of the tiny distro default.
	mkConn := func() net.PacketConn {
		s, err := udpio.Listen("udp", "127.0.0.1:0", sockCfg)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	// Each direction gets its own socket pair (media + feedback share it).
	aOut, bIn := mkConn(), mkConn() // A -> B
	bOut, aIn := mkConn(), mkConn() // B -> A
	defer aOut.Close()
	defer bIn.Close()
	defer bOut.Close()
	defer aIn.Close()
	if st := aOut.(*udpio.Socket).Stats(); st.RecvBufBytes > 0 {
		fmt.Printf("udp sockets: batched=%v rcvbuf=%d sndbuf=%d (kernel-granted)\n",
			st.Batched, st.RecvBufBytes, st.SendBufBytes)
	}

	mkSite := func(name, videoName string, out net.PacketConn, outPeer net.Addr, in net.PacketConn, inPeer net.Addr, sendTrace, recvTrace *frametrace.Ledger, lad bool) *site {
		v, err := scene.OpenVideo(videoName, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		st := &site{name: name, video: v}
		st.send, err = livo.NewSendSession(out, outPeer, livo.SendSessionConfig{
			Sender: livo.SenderConfig{Array: v.Array, ViewParams: livo.DefaultViewParams(), Trace: sendTrace, Ladder: lad},
		})
		if err != nil {
			log.Fatal(err)
		}
		st.recv, err = livo.NewRecvSession(in, inPeer, livo.RecvSessionConfig{
			Receiver:    livo.ReceiverConfig{Array: v.Array, Trace: recvTrace},
			JitterDelay: 0.05,
		})
		if err != nil {
			log.Fatal(err)
		}
		st.recv.OnCloud = func(seq uint32, cloud *livo.PointCloud) { st.clouds.Add(1) }
		viewer := livo.SynthUserTrace(name+"-viewer", int64(len(name)), 3600, 30)
		start := time.Now()
		st.recv.PoseSource = func() livo.Pose { return viewer.At(time.Since(start).Seconds()) }
		go st.recv.Run()
		return st
	}

	// With -fanout N, site A's direction runs through a relay: A sends to
	// the relay, which fans out to site B (the primary viewer) plus N-1
	// counting sinks, and aggregates the reverse path (REMB minimum, PLI
	// dedup, NACK coalescing). B→A stays direct.
	var (
		relay     *livo.Relay
		sinkPkts  atomic.Int64
		aOutPeer  net.Addr = bIn.LocalAddr()
		bInPeer   net.Addr = aOut.LocalAddr()
		sinkConns []net.PacketConn
	)
	if *fanout > 0 {
		// One SO_REUSEPORT socket per ingest shard lets the kernel steer
		// flows across the relay's batch-read loops; a single socket keeps
		// the classic layout.
		ngroup := *rpShards
		if ngroup < 1 {
			ngroup = 1
		}
		socks, err := udpio.ListenGroup("udp", "127.0.0.1:0", ngroup, sockCfg)
		if err != nil {
			log.Fatalf("relay sockets: %v", err)
		}
		relayConns := make([]net.PacketConn, len(socks))
		for i, s := range socks {
			relayConns[i] = s
			defer s.Close()
		}
		st := socks[0].Stats()
		fmt.Printf("relay sockets: %d×%s batched=%v rcvbuf=%d sndbuf=%d (kernel-granted)\n",
			len(socks), socks[0].LocalAddr(), st.Batched, st.RecvBufBytes, st.SendBufBytes)
		relay = livo.NewRelayGroup(relayConns, aOut.LocalAddr(), relaycore.Config{
			Shards: *shards,
			Trace:  traceRelay,
			Events: traceEvents,
		})
		relay.Subscribe(bIn.LocalAddr()) // first subscriber: primary viewer
		for i := 1; i < *fanout; i++ {
			sink := mkConn()
			sinkConns = append(sinkConns, sink)
			relay.Subscribe(sink.LocalAddr())
			go func(c net.PacketConn) {
				buf := make([]byte, 2048)
				for {
					if _, _, err := c.ReadFrom(buf); err != nil {
						return
					}
					sinkPkts.Add(1)
				}
			}(sink)
		}
		go relay.Run()
		defer relay.Close()
		for _, c := range sinkConns {
			defer c.Close()
		}
		aOutPeer = socks[0].LocalAddr()
		bInPeer = socks[0].LocalAddr()
		fmt.Printf("relaying A's media to %d subscribers\n", relay.Subscribers())
	}

	// Debug server starts after the relay exists so its endpoints can be
	// mounted alongside the registry pages.
	if *debug != "" {
		extra := map[string]http.Handler{
			"/debugz/frames": frametrace.MergedFramesHandler(traceSend, traceRelay, traceRecv),
			"/debugz/events": frametrace.EventsHandler(traceEvents),
		}
		if relay != nil {
			extra["/debugz/subscribers"] = relay.SubscribersHandler()
		}
		if _, url, err := telemetry.ServeDebugWith(*debug, telemetry.Default, extra); err != nil {
			log.Fatalf("debug server: %v", err)
		} else {
			fmt.Printf("debug server on %s/debugz\n", url)
		}
	}

	// SIGQUIT prints a compact subscriber table (depth vs limit, drops,
	// retransmissions, REMB, reverse-path age) without stopping the run.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	go func() {
		for range sigc {
			if relay == nil {
				fmt.Println("SIGQUIT: no relay (run with -fanout for the subscriber table)")
				continue
			}
			subs := relay.Stats().Subs
			fmt.Printf("%-4s %-22s %9s %9s %8s %6s %6s %6s %4s %4s %10s %9s\n",
				"id", "addr", "enqueued", "sent", "dropped", "depth", "limit", "retx", "rung", "rsw", "remb_mbps", "idle_ms")
			for _, s := range subs {
				fmt.Printf("%-4d %-22s %9d %9d %8d %6d %6d %6d %4d %4d %10.1f %9.0f\n",
					s.ID, s.Addr, s.Enqueued, s.Sent, s.Dropped, s.Depth, s.Limit, s.Retx,
					s.Rung, s.RungSwitches, s.REMBBps/1e6, s.LastActiveAgeMs)
			}
		}
	}()

	// Note: both sites share camera geometry in this demo; a real
	// deployment exchanges calibration at setup (§A.1).
	siteA := mkSite("A", *videoA, aOut, aOutPeer, aIn, bOut.LocalAddr(), traceSend, nil, *ladder)
	siteB := mkSite("B", *videoB, bOut, aIn.LocalAddr(), bIn, bInPeer, nil, traceRecv, false)
	defer siteA.send.Close()
	defer siteB.send.Close()
	defer siteA.recv.Close()
	defer siteB.recv.Close()

	frames := int(*seconds * 30)
	ticker := time.NewTicker(time.Second / 30)
	defer ticker.Stop()
	for i := 0; i < frames; i++ {
		<-ticker.C
		if _, err := siteA.send.SendViews(siteA.video.Frame(i % siteA.video.NumFrames())); err != nil {
			log.Fatalf("A send: %v", err)
		}
		if _, err := siteB.send.SendViews(siteB.video.Frame(i % siteB.video.NumFrames())); err != nil {
			log.Fatalf("B send: %v", err)
		}
		if i%30 == 29 {
			fmt.Printf("t=%2ds  A: viewed %3d frames of %q   B: viewed %3d frames of %q\n",
				(i+1)/30, siteA.clouds.Load(), *videoB, siteB.clouds.Load(), *videoA)
		}
	}
	time.Sleep(300 * time.Millisecond) // drain jitter buffers
	fmt.Printf("conference over: A reconstructed %d clouds, B reconstructed %d\n",
		siteA.clouds.Load(), siteB.clouds.Load())
	for _, st := range []*site{siteA, siteB} {
		ss, rs := st.send.Stats(), st.recv.Stats()
		fmt.Printf("site %s send: %d frames, %d pkts, %.1f MB, rate %.1f Mbps, retx %d, pli-rx %d\n",
			st.name, ss.Frames, ss.Packets, float64(ss.Bytes)/1e6, ss.RateBps/1e6, ss.Retransmits, ss.PLIsReceived)
		fmt.Printf("site %s recv: %d pkts, %d decoded, %d concealed, nack %d, pli %d, est %.1f Mbps, jitter skip %d/%d\n",
			st.name, rs.Received, rs.Decoded, rs.Concealed, rs.NACKsSent, rs.PLIsSent, rs.EstRateBps/1e6,
			rs.Color.Skipped, rs.Depth.Skipped)
		if ss.Err != nil || rs.Err != nil {
			fmt.Printf("site %s errors: send=%v recv=%v\n", st.name, ss.Err, rs.Err)
		}
	}
	if relay != nil {
		st := relay.Stats()
		fmt.Printf("relay: %d subs, %d media pkts fanned to %d, drops %d, sinks got %d pkts\n",
			st.Subscribers, st.MediaPackets, st.FanoutPackets, st.Drops, sinkPkts.Load())
		fmt.Printf("relay feedback: pli %d fwd/%d deduped, nack %d fwd/%d coalesced, remb %d fwd, pose %d fwd\n",
			st.PLIForwarded, st.PLISuppressed, st.NACKForwarded, st.NACKCoalesced, st.REMBForwarded, st.PoseForwarded)
		fmt.Printf("relay retx: %d served from cache, %d escalated, %d cached, %d liveness evictions\n",
			st.RetxHits, st.RetxMisses, st.RetxCached, st.LivenessEvicted)
		if st.RungSwitches > 0 || *ladder {
			fmt.Printf("relay ladder: %d rung switches, subscribers per rung %v\n",
				st.RungSwitches, st.RungSubscribers)
		}
		for _, sh := range st.Shards {
			fmt.Printf("relay shard %d: %d subs, %d pkts routed, %d queues stolen by its workers\n",
				sh.ID, sh.Subscribers, sh.Routed, sh.Stolen)
		}
	}

	// Merge the A→B ledgers into per-frame timelines: hops stamped on the
	// primary viewer's path (sub 0) when relaying, every hop otherwise.
	col := frametrace.NewCollector()
	col.Add(traceSend, 0)
	col.Add(traceRelay, 0)
	col.Add(traceRecv, 0)
	sub := frametrace.NoSub
	if relay != nil {
		sub = 0 // primary viewer (site B) was the first subscriber
	}
	tls := col.Merge(sub)
	rep := frametrace.Decompose(tls)
	fmt.Printf("trace A→B: %d frames merged, %d complete capture→reconstruct", rep.Frames, rep.Complete)
	if rep.EndToEnd.Count > 0 {
		fmt.Printf(", e2e p50 %.1f ms p99 %.1f ms (stage sum %.1f ms, reconcile %.2f%%)",
			rep.EndToEnd.P50Ms, rep.EndToEnd.P99Ms, rep.StageSumMeanMs, rep.ReconcilePct)
	}
	fmt.Println()
	if *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err != nil {
			log.Fatalf("trace dump: %v", err)
		}
		if err := frametrace.WriteTimelinesJSONL(f, tls); err != nil {
			log.Fatalf("trace dump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace dump: %v", err)
		}
		fmt.Printf("wrote %d frame timelines to %s\n", len(tls), *traceDump)
	}
}
