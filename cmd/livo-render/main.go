// Command livo-render runs one frame of a dataset video through the full
// encode/decode pipeline and renders before/after images plus a PLY export
// — a visual check of what the codec does to the scene.
//
// Usage:
//
//	livo-render -video pizza1 -frame 30 -mbps 60 -out out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"livo"
	"livo/internal/scene"
)

func main() {
	var (
		video   = flag.String("video", "band2", "dataset video")
		frameIx = flag.Int("frame", 0, "frame index")
		mbps    = flag.Float64("mbps", 60, "bandwidth budget, Mbps")
		out     = flag.String("out", ".", "output directory")
		cameras = flag.Int("cameras", 6, "cameras")
		width   = flag.Int("width", 96, "per-camera width")
		height  = flag.Int("height", 80, "per-camera height")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = *cameras, *width, *height
	v, err := scene.OpenVideo(*video, cfg)
	if err != nil {
		log.Fatal(err)
	}
	views := v.Frame(*frameIx)
	viewer := livo.LookAt(livo.V3(0.4, 1.6, 1.9), livo.V3(0, 0.9, 0), livo.V3(0, 1, 0))

	// Ground truth.
	pos, cols, err := v.Array.PointsFromViews(views)
	if err != nil {
		log.Fatal(err)
	}
	gt := &livo.PointCloud{Positions: pos, Colors: cols}

	// Through the pipeline.
	s, err := livo.NewSender(livo.SenderConfig{Array: v.Array, ViewParams: livo.DefaultViewParams()})
	if err != nil {
		log.Fatal(err)
	}
	r, err := livo.NewReceiver(livo.ReceiverConfig{Array: v.Array})
	if err != nil {
		log.Fatal(err)
	}
	s.ObservePose(0, viewer)
	enc, err := s.ProcessFrame(views, *mbps*1e6)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r.PushColor(enc.Color); err != nil {
		log.Fatal(err)
	}
	pf, err := r.PushDepth(enc.Depth)
	if err != nil {
		log.Fatal(err)
	}
	got, err := r.Reconstruct(pf, nil)
	if err != nil {
		log.Fatal(err)
	}

	writePNG := func(name string, c *livo.PointCloud) {
		img := livo.Render(c, viewer, livo.RenderOptions{Width: 800, Height: 600, PointSize: 6})
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := img.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d points, %.0f%% coverage\n", name, c.Len(), 100*img.Coverage())
	}
	writePNG(fmt.Sprintf("%s-f%d-gt.png", *video, *frameIx), gt)
	writePNG(fmt.Sprintf("%s-f%d-decoded.png", *video, *frameIx), got)

	plyPath := filepath.Join(*out, fmt.Sprintf("%s-f%d.ply", *video, *frameIx))
	pf2, err := os.Create(plyPath)
	if err != nil {
		log.Fatal(err)
	}
	defer pf2.Close()
	if err := got.WritePLY(pf2); err != nil {
		log.Fatal(err)
	}
	ps := livo.PointSSIM(gt, got)
	fmt.Printf("encoded %d KB at %.0f Mbps budget; PointSSIM geometry %.1f color %.1f; PLY -> %s\n",
		enc.TotalBytes()/1024, *mbps, ps.Geometry, ps.Color, plyPath)
}
