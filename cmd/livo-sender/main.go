// Command livo-sender streams one of the dataset videos to a livo-receiver
// over UDP, exercising the full live pipeline: culling against the
// receiver's fed-back poses, adaptive bandwidth splitting, rate-adaptive
// encoding, and NACK/PLI handling.
//
// Usage:
//
//	livo-receiver -listen :7000        # on the receiving machine
//	livo-sender -to 10.0.0.2:7000 -video band2
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"livo"
	"livo/internal/scene"
	"livo/internal/udpio"
)

func main() {
	var (
		to       = flag.String("to", "127.0.0.1:7000", "receiver address")
		video    = flag.String("video", "band2", "dataset video to stream")
		cameras  = flag.Int("cameras", 6, "cameras in the capture rig")
		width    = flag.Int("width", 96, "per-camera width")
		height   = flag.Int("height", 80, "per-camera height")
		rate     = flag.Float64("rate", 20, "initial send rate, Mbps")
		seconds  = flag.Float64("seconds", 10, "how long to stream (0 = whole video)")
		noCull   = flag.Bool("nocull", false, "disable view culling (LiVo-NoCull)")
		udpBatch = flag.Bool("udp-batch", true, "batch UDP syscalls with sendmmsg/recvmmsg where the kernel supports it")
		sockBuf  = flag.Int("sockbuf", 0, "request SO_RCVBUF/SO_SNDBUF of this many bytes (0 = default ~1s of media)")
	)
	flag.Parse()

	cfg := scene.DefaultCaptureConfig()
	cfg.Cameras, cfg.Width, cfg.Height = *cameras, *width, *height
	v, err := scene.OpenVideo(*video, cfg)
	if err != nil {
		log.Fatalf("open video: %v", err)
	}
	raddr, err := net.ResolveUDPAddr("udp", *to)
	if err != nil {
		log.Fatalf("resolve %q: %v", *to, err)
	}
	conn, err := udpio.Listen("udp", ":0", udpio.Config{
		RecvBuf:      *sockBuf,
		SendBuf:      *sockBuf,
		DisableBatch: !*udpBatch,
	})
	if err != nil {
		log.Fatalf("socket: %v", err)
	}
	defer conn.Close()
	if st := conn.Stats(); st.RecvBufBytes > 0 {
		fmt.Printf("socket: batched=%v rcvbuf=%d sndbuf=%d (kernel-granted)\n",
			st.Batched, st.RecvBufBytes, st.SendBufBytes)
	}

	variant := livo.VariantLiVo
	if *noCull {
		variant = livo.VariantNoCull
	}
	sess, err := livo.NewSendSession(conn, raddr, livo.SendSessionConfig{
		Sender: livo.SenderConfig{
			Variant:    variant,
			Array:      v.Array,
			ViewParams: livo.DefaultViewParams(),
		},
		InitialRateBps: *rate * 1e6,
	})
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	defer sess.Close()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	frames := v.NumFrames()
	if *seconds > 0 {
		frames = int(*seconds * 30)
	}
	ticker := time.NewTicker(time.Second / 30)
	defer ticker.Stop()
	var sentBytes int
	start := time.Now()
	for i := 0; i < frames; i++ {
		select {
		case <-stop:
			i = frames
			continue
		case <-ticker.C:
		}
		enc, err := sess.SendViews(v.Frame(i % v.NumFrames()))
		if err != nil {
			log.Fatalf("send frame %d: %v", i, err)
		}
		sentBytes += enc.TotalBytes()
		if i%30 == 29 {
			el := time.Since(start).Seconds()
			fmt.Printf("t=%4.1fs rate=%5.1f Mbps sent=%5.1f Mbps split=%.2f kept=%.2f\n",
				el, sess.Rate()/1e6, float64(sentBytes)*8/el/1e6,
				enc.Split, enc.CullStats.KeptFraction())
		}
	}
	fmt.Println("done")
}
