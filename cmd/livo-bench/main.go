// Command livo-bench regenerates the paper's tables and figures from the
// replay harness (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	livo-bench -list
//	livo-bench -exp fig9fig10
//	livo-bench -exp all -frames 60 -cameras 8
//	livo-bench -codecbench -codecbench-out BENCH_codec.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"livo/internal/codec/vcodec"
	"livo/internal/experiments"
	"livo/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		frames   = flag.Int("frames", 0, "frames per replay run (default quick preset)")
		cameras  = flag.Int("cameras", 0, "cameras in the capture rig")
		width    = flag.Int("width", 0, "per-camera width")
		height   = flag.Int("height", 0, "per-camera height")
		users    = flag.Int("users", 0, "user traces per video (1-3)")
		full     = flag.Bool("full", false, "full-quality preset (slow: hours)")
		cbench   = flag.Bool("codecbench", false, "run the vcodec benchmark suite and write JSON results")
		cbenchTo = flag.String("codecbench-out", "BENCH_codec.json", "output path for -codecbench results")
		telemTo  = flag.String("telemetry-out", "BENCH_telemetry.json", "output path for the -codecbench telemetry-overhead measurement")
		pbench   = flag.Bool("pipebench", false, "run the end-to-end frame-path benchmark and write JSON results")
		pbenchTo = flag.String("pipebench-out", "BENCH_pipeline.json", "output path for -pipebench results")
		pbase    = flag.String("pipebench-baseline", "", "compare -pipebench allocs/frame against this baseline JSON; exit nonzero on regression")
		rbench   = flag.Bool("relaybench", false, "run the relay fan-out scale benchmark and write JSON results")
		rbenchTo = flag.String("relaybench-out", "BENCH_relay.json", "output path for -relaybench results")
		rbase    = flag.String("relaybench-baseline", "", "compare -relaybench queued allocs/packet against this baseline JSON; exit nonzero on regression")
		lbench   = flag.Bool("ladderbench", false, "run the quality-ladder benchmark (encode amortization + heterogeneous-REMB fan-out) and write JSON results")
		lbenchTo = flag.String("ladderbench-out", "BENCH_ladder.json", "output path for -ladderbench results")
		nbench   = flag.Bool("netbench", false, "run the kernel-batched wire-path benchmark over real loopback sockets and write JSON results")
		nbenchTo = flag.String("netbench-out", "BENCH_net.json", "output path for -netbench results")
		nbase    = flag.String("netbench-baseline", "", "compare -netbench syscalls/pkt, allocs/pkt, and delivery against this baseline JSON; exit nonzero on regression")
		tbench   = flag.Bool("tracebench", false, "run the frame-trace decomposition and overhead benchmark and write JSON results")
		tbenchTo = flag.String("tracebench-out", "BENCH_trace.json", "output path for -tracebench results")
		tdump    = flag.String("trace-dump", "", "replay the chaos harness with the frame ledger armed and write merged capture→reconstruct timelines (JSONL) to this path")
		short    = flag.Bool("short", false, "reduced -pipebench workload for CI smoke runs")
		debug    = flag.String("debug-addr", "", "serve /debugz, /debug/pprof, and /debug/vars on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *debug != "" {
		if _, url, err := telemetry.ServeDebug(*debug, telemetry.Default); err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Printf("debug server on %s/debugz\n", url)
		}
	}

	if *pbench {
		if err := runPipeBench(*pbenchTo, *pbase, *short); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *rbench {
		if err := runRelayBench(*rbenchTo, *rbase, *short); err != nil {
			fmt.Fprintf(os.Stderr, "relaybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *lbench {
		if err := runLadderBench(*lbenchTo, *short); err != nil {
			fmt.Fprintf(os.Stderr, "ladderbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *nbench {
		if err := runNetBench(*nbenchTo, *nbase, *short); err != nil {
			fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tbench {
		if err := runTraceBench(*tbenchTo, *short); err != nil {
			fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tdump != "" {
		if err := runChaosTraceDump(*tdump, *frames); err != nil {
			fmt.Fprintf(os.Stderr, "trace-dump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cbench {
		if err := runCodecBench(*cbenchTo); err != nil {
			fmt.Fprintf(os.Stderr, "codecbench: %v\n", err)
			os.Exit(1)
		}
		if err := runTelemetryBench(*telemTo); err != nil {
			fmt.Fprintf(os.Stderr, "telemetrybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	q := experiments.QuickQuality()
	if *full {
		q = experiments.FullQuality()
	}
	if *frames > 0 {
		q.Frames = *frames
	}
	if *cameras > 0 {
		q.Cameras = *cameras
	}
	if *width > 0 {
		q.Width = *width
	}
	if *height > 0 {
		q.Height = *height
	}
	if *users > 0 {
		q.Users = *users
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(q, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// runPipeBench replays the capture→render frame path (sender encode,
// receiver decode/pair, reconstruction, splat render) and writes per-stage
// latency and allocation measurements as JSON. With a baseline path it
// gates procs=1 allocs/frame — the count that is deterministic regardless
// of parallelism — so CI catches allocation regressions on the hot path.
func runPipeBench(outPath, baselinePath string, short bool) error {
	q := experiments.QuickQuality()
	q.Frames = 48
	warmup := 8
	if short {
		q.Frames = 16
		warmup = 4
	}
	procsList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		procsList = append(procsList, n)
	}
	fmt.Printf("=== pipebench (video=dance5 frames=%d procs=%v) ===\n", q.Frames, procsList)
	start := time.Now()
	results, err := experiments.RunPipeBench("dance5", q, procsList, warmup)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-16s procs=%-2d %9.3f ms mean %9.3f ms p95 %10.0f allocs/frame %12.0f B/frame\n",
			r.Stage, r.Procs, r.MsMean, r.MsP95, r.AllocsFrame, r.BytesFrame)
	}
	fmt.Printf("(pipebench in %s)\n", time.Since(start).Round(time.Millisecond))
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if baselinePath != "" {
		return checkPipeBaseline(baselinePath, results)
	}
	return nil
}

// checkPipeBaseline fails when any stage's procs=1 allocs/frame exceeds
// the committed baseline by more than 1.5x + 16. The slack absorbs noise
// from the runtime's own background allocations that land inside a
// measurement window; real regressions (a per-frame buffer that stopped
// being pooled) blow well past it.
func checkPipeBaseline(path string, results []experiments.PipeStageResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []experiments.PipeStageResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseAllocs := map[string]float64{}
	for _, b := range base {
		if b.Procs == 1 {
			baseAllocs[b.Stage] = b.AllocsFrame
		}
	}
	var failed bool
	for _, r := range results {
		if r.Procs != 1 {
			continue
		}
		b, ok := baseAllocs[r.Stage]
		if !ok {
			continue
		}
		limit := b*1.5 + 16
		if r.AllocsFrame > limit {
			failed = true
			fmt.Fprintf(os.Stderr, "ALLOC REGRESSION %-16s %.0f allocs/frame > limit %.0f (baseline %.0f)\n",
				r.Stage, r.AllocsFrame, limit, b)
		} else {
			fmt.Printf("alloc check %-16s %.0f allocs/frame <= limit %.0f (baseline %.0f)\n",
				r.Stage, r.AllocsFrame, limit, b)
		}
	}
	if failed {
		return fmt.Errorf("allocs/frame regressed against %s", path)
	}
	return nil
}

// runRelayBench sweeps the relay data plane across subscriber counts and
// GOMAXPROCS (1/2/4/8 for the sharded queued plane; the sequential plane is
// single-threaded by construction), writes BENCH_relay.json, and prints the
// queued-vs-sequential speedup plus the multi-core scaling ratio at each
// count. With a baseline path it gates the queued plane's allocs/packet and
// per-core throughput so CI catches fan-out regressions.
func runRelayBench(outPath, baselinePath string, short bool) error {
	fmt.Println("=== relaybench (sharded queued vs sequential fan-out) ===")
	start := time.Now()
	results, err := experiments.RunRelayBench(experiments.RelayBenchConfig{}, short, func(line string) {
		fmt.Println(line)
	})
	if err != nil {
		return err
	}
	// Speedup table: queued / sequential routed packets per second (matched
	// at procs=1), and queued self-scaling across the procs sweep.
	seqPPS := map[int]float64{}
	queued1PPS := map[int]float64{}
	for _, r := range results {
		if r.Mode == "sequential" {
			seqPPS[r.Subs] = r.PacketsPerSec
		}
		if r.Mode == "queued" && r.Procs == 1 {
			queued1PPS[r.Subs] = r.PacketsPerSec
		}
	}
	for _, r := range results {
		if r.Mode != "queued" {
			continue
		}
		if r.Procs == 1 && seqPPS[r.Subs] > 0 {
			fmt.Printf("speedup subs=%-5d %6.1fx packets/sec vs sequential\n", r.Subs, r.PacketsPerSec/seqPPS[r.Subs])
		}
		if r.Procs > 1 && queued1PPS[r.Subs] > 0 {
			fmt.Printf("scaling subs=%-5d procs=%d %6.2fx vs procs=1\n", r.Subs, r.Procs, r.PacketsPerSec/queued1PPS[r.Subs])
		}
	}
	fmt.Printf("(relaybench in %s)\n", time.Since(start).Round(time.Millisecond))
	// Absolute allocation budget, independent of any baseline: the routing
	// hot path is designed for 0 allocs/pkt and the retransmission cache's
	// bookkeeping (owner-shard index map churn) is allowed at most 1, so
	// any cell above 1.0 means the cache leaked work onto the hot path.
	for _, r := range results {
		if r.Mode == "queued" && r.AllocsPerPacket > 1.0 {
			return fmt.Errorf("relaybench: subs=%d procs=%d %.2f allocs/packet exceeds the 1.0 cache-bookkeeping budget",
				r.Subs, r.Procs, r.AllocsPerPacket)
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if baselinePath != "" {
		return checkRelayBaseline(baselinePath, results)
	}
	return nil
}

// checkRelayBaseline gates the queued plane against the committed baseline,
// matched on (subs, procs):
//
//   - allocs/packet may not exceed baseline + 0.05 — the hot path is
//     designed for 0 allocs/pkt, so any real regression costs ≥1 and the
//     additive slack only absorbs background-runtime noise inside the
//     measurement window;
//   - per-core throughput (pkts/s ÷ procs) may not fall below 90% of
//     baseline (the >10% regression gate).
//
// A shorter measurement window reads systematically slower (startup
// transients amortize less), so when the baseline holds several entries
// for a cell — the committed file carries both the full and the -short
// sweep — the one with the closest window duration is compared, keeping
// CI's short run gated against short-run numbers. Baselines from before
// the procs sweep carry procs=0 and match nothing; regenerate with
// `livo-bench -relaybench` to arm the gate.
func checkRelayBaseline(path string, results []experiments.RelayBenchResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []experiments.RelayBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	type cell struct{ subs, procs int }
	baseBy := map[cell][]experiments.RelayBenchResult{}
	for _, b := range base {
		if b.Mode == "queued" {
			baseBy[cell{b.Subs, b.Procs}] = append(baseBy[cell{b.Subs, b.Procs}], b)
		}
	}
	var failed bool
	for _, r := range results {
		if r.Mode != "queued" {
			continue
		}
		cands := baseBy[cell{r.Subs, r.Procs}]
		if len(cands) == 0 {
			continue
		}
		b := cands[0]
		for _, c := range cands[1:] {
			if math.Abs(c.Seconds-r.Seconds) < math.Abs(b.Seconds-r.Seconds) {
				b = c
			}
		}
		allocLimit := b.AllocsPerPacket + 0.05
		if r.AllocsPerPacket > allocLimit {
			failed = true
			fmt.Fprintf(os.Stderr, "ALLOC REGRESSION relay subs=%-5d procs=%d %.2f allocs/packet > limit %.2f (baseline %.2f)\n",
				r.Subs, r.Procs, r.AllocsPerPacket, allocLimit, b.AllocsPerPacket)
		} else {
			fmt.Printf("alloc check relay subs=%-5d procs=%d %.2f allocs/packet <= limit %.2f (baseline %.2f)\n",
				r.Subs, r.Procs, r.AllocsPerPacket, allocLimit, b.AllocsPerPacket)
		}
		ppsFloor := b.PacketsPerSecCore * 0.9
		if r.PacketsPerSecCore < ppsFloor {
			failed = true
			fmt.Fprintf(os.Stderr, "THROUGHPUT REGRESSION relay subs=%-5d procs=%d %.0f pkts/s/core < floor %.0f (baseline %.0f)\n",
				r.Subs, r.Procs, r.PacketsPerSecCore, ppsFloor, b.PacketsPerSecCore)
		} else {
			fmt.Printf("pps check   relay subs=%-5d procs=%d %.0f pkts/s/core >= floor %.0f (baseline %.0f)\n",
				r.Subs, r.Procs, r.PacketsPerSecCore, ppsFloor, b.PacketsPerSecCore)
		}
	}
	if failed {
		return fmt.Errorf("relay data plane regressed against %s", path)
	}
	return nil
}

// runNetBench A/Bs the kernel-batched wire path (sendmmsg fan-out,
// recvmmsg ingest) against the per-packet fallback over real loopback
// sockets, writes BENCH_net.json, and prints the delivered-throughput
// speedup at each subscriber count. Three gates are absolute and only
// armed where the kernel actually batches (KernelBatched — platforms
// without sendmmsg are informational only):
//
//   - at ≥64 subscribers the batched path must spend at most 1/16 write
//     syscall per fan-out packet (a saturated relay drains full
//     writer-ring batches, so it sits near 1/32) and must stay within the
//     1.0 allocs-per-wire-packet budget;
//   - the peak delivered speedup across the sweep must reach ≥1.2×
//     (≥1.1× under -short, whose window amortizes startup less). The
//     floor is kernel-dependent by nature: batching deletes the syscall
//     entry/exit, and what that is worth depends on how expensive entry
//     is. A loopback microbenchmark on the reference box (see DESIGN.md
//     §7, "wire I/O") puts sendto at ~2.5 µs/pkt vs sendmmsg at
//     ~1.9 µs/pkt — entry costs ~0.6 µs while the kernel's fixed per-skb
//     work (~1.9 µs, identical in both modes and nearly size-independent)
//     dominates, capping the honest wall-clock ratio near 1.3× there. On
//     mitigation-heavy kernels where entry costs 1–2 µs the same 1/32
//     amortization clears 1.5×. The syscalls-per-packet figure, which is
//     deterministic, is therefore the pinned high-fan-out gate.
//
// With a baseline path it additionally gates against the committed
// BENCH_net.json (see checkNetBaseline).
func runNetBench(outPath, baselinePath string, short bool) error {
	fmt.Println("=== netbench (kernel-batched vs per-packet wire path, loopback) ===")
	start := time.Now()
	results, err := experiments.RunNetBench(experiments.NetBenchConfig{}, short, func(line string) {
		fmt.Println(line)
	})
	if err != nil {
		return err
	}
	perpacket := map[int]float64{}
	for _, r := range results {
		if r.Mode == "perpacket" {
			perpacket[r.Subs] = r.DeliveredPerSec
		}
	}
	minRatio := 1.2
	if short {
		minRatio = 1.1
	}
	peakRatio, anyBatched := 0.0, false
	var gateErr error
	for _, r := range results {
		if r.Mode != "batched" {
			continue
		}
		if pp := perpacket[r.Subs]; pp > 0 {
			ratio := r.DeliveredPerSec / pp
			fmt.Printf("speedup subs=%-4d %5.2fx delivered pkts/s vs per-packet\n", r.Subs, ratio)
			if r.KernelBatched && ratio > peakRatio {
				peakRatio = ratio
			}
		}
		if !r.KernelBatched {
			continue
		}
		anyBatched = true
		if r.Subs < 64 {
			continue
		}
		if r.WriteSyscallsPerPkt > 1.0/16 {
			gateErr = fmt.Errorf("netbench: subs=%d spends %.4f write syscalls/pkt, budget 1/16", r.Subs, r.WriteSyscallsPerPkt)
		}
		if r.AllocsPerPacket > 1.0 {
			gateErr = fmt.Errorf("netbench: subs=%d batched path allocates %.2f/pkt, budget 1.0", r.Subs, r.AllocsPerPacket)
		}
	}
	if anyBatched && gateErr == nil && peakRatio < minRatio {
		gateErr = fmt.Errorf("netbench: peak batched speedup %.2fx never reached the %.1fx floor", peakRatio, minRatio)
	}
	fmt.Printf("(netbench in %s)\n", time.Since(start).Round(time.Millisecond))
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if gateErr != nil {
		return gateErr
	}
	if baselinePath != "" {
		return checkNetBaseline(baselinePath, results)
	}
	return nil
}

// checkNetBaseline gates the batched wire path against the committed
// baseline, matched on (mode, subs) with the closest window duration (the
// committed file carries both the full and the -short sweep, like the
// relay baseline):
//
//   - write syscalls/pkt may not exceed 1.5× baseline + 0.01 — batching
//     regressions are catastrophic (the figure jumps from ~1/32 toward
//     1.0), so the slack only absorbs ring-occupancy noise;
//   - allocs per wire packet may not exceed baseline + 0.05 (the batched
//     path is designed allocation-free);
//   - delivered pkts/s may not fall below 60% of baseline — loopback
//     throughput on a shared one-core box swings ±40% run to run at low
//     fan-out (the baseline keeps each cell's best round, so it sits at
//     the optimistic edge), which is why the floor is much looser than
//     the in-memory relay gate and the syscall/alloc gates above carry
//     the real regression signal.
//
// Cells whose baseline never batched (KernelBatched false) are skipped:
// there is no amortization to protect.
func checkNetBaseline(path string, results []experiments.NetBenchResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []experiments.NetBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	type cell struct {
		mode string
		subs int
	}
	baseBy := map[cell][]experiments.NetBenchResult{}
	for _, b := range base {
		baseBy[cell{b.Mode, b.Subs}] = append(baseBy[cell{b.Mode, b.Subs}], b)
	}
	var failed bool
	for _, r := range results {
		if r.Mode != "batched" || !r.KernelBatched {
			continue
		}
		cands := baseBy[cell{r.Mode, r.Subs}]
		if len(cands) == 0 {
			continue
		}
		b := cands[0]
		for _, c := range cands[1:] {
			if math.Abs(c.Seconds-r.Seconds) < math.Abs(b.Seconds-r.Seconds) {
				b = c
			}
		}
		if !b.KernelBatched {
			continue
		}
		sysLimit := b.WriteSyscallsPerPkt*1.5 + 0.01
		if r.WriteSyscallsPerPkt > sysLimit {
			failed = true
			fmt.Fprintf(os.Stderr, "SYSCALL REGRESSION net subs=%-4d %.4f wr-sys/pkt > limit %.4f (baseline %.4f)\n",
				r.Subs, r.WriteSyscallsPerPkt, sysLimit, b.WriteSyscallsPerPkt)
		} else {
			fmt.Printf("syscall check net subs=%-4d %.4f wr-sys/pkt <= limit %.4f (baseline %.4f)\n",
				r.Subs, r.WriteSyscallsPerPkt, sysLimit, b.WriteSyscallsPerPkt)
		}
		allocLimit := b.AllocsPerPacket + 0.05
		if r.AllocsPerPacket > allocLimit {
			failed = true
			fmt.Fprintf(os.Stderr, "ALLOC REGRESSION net subs=%-4d %.2f allocs/pkt > limit %.2f (baseline %.2f)\n",
				r.Subs, r.AllocsPerPacket, allocLimit, b.AllocsPerPacket)
		} else {
			fmt.Printf("alloc check   net subs=%-4d %.2f allocs/pkt <= limit %.2f (baseline %.2f)\n",
				r.Subs, r.AllocsPerPacket, allocLimit, b.AllocsPerPacket)
		}
		floor := b.DeliveredPerSec * 0.6
		if r.DeliveredPerSec < floor {
			failed = true
			fmt.Fprintf(os.Stderr, "THROUGHPUT REGRESSION net subs=%-4d %.0f delivered/s < floor %.0f (baseline %.0f)\n",
				r.Subs, r.DeliveredPerSec, floor, b.DeliveredPerSec)
		} else {
			fmt.Printf("pps check     net subs=%-4d %.0f delivered/s >= floor %.0f (baseline %.0f)\n",
				r.Subs, r.DeliveredPerSec, floor, b.DeliveredPerSec)
		}
	}
	if failed {
		return fmt.Errorf("wire path regressed against %s", path)
	}
	return nil
}

// runTraceBench runs the cross-hop frame-trace benchmark (DESIGN.md §6):
// the pipeline phase produces the capture→reconstruct latency decomposition
// at 64 subscribers, the overhead phase A/Bs the relay with the ledger off
// vs on. Three gates are absolute (no baseline file): the decomposition
// must reconcile (per-frame stage sums within 5% of measured end-to-end),
// tracing may cost the paced relay at most 1% delivered/sec, and the
// traced hot path must stay within the relay's 1.0 allocs/packet budget.
func runTraceBench(outPath string, short bool) error {
	fmt.Println("=== tracebench (cross-hop decomposition + ledger overhead) ===")
	start := time.Now()
	res, err := experiments.RunTraceBench(experiments.TraceBenchConfig{}, short, func(line string) {
		fmt.Println(line)
	})
	if err != nil {
		return err
	}
	for _, s := range res.Pipeline.Stages {
		fmt.Printf("stage %-12s n=%-4d %8.2f ms p50 %8.2f ms p99\n", s.Name, s.Count, s.P50Ms, s.P99Ms)
	}
	e := res.Pipeline.EndToEnd
	fmt.Printf("stage %-12s n=%-4d %8.2f ms p50 %8.2f ms p99 (stage sum %.2f ms, reconcile %.2f%%)\n",
		e.Name, e.Count, e.P50Ms, e.P99Ms, res.Pipeline.StageSumMeanMs, res.Pipeline.ReconcilePct)
	o := res.Overhead
	fmt.Printf("overhead: paced delivery ratio %.3f off vs %.3f on (%.2f%%), allocs/pkt %.2f off vs %.2f on, %d stamps\n",
		o.DeliveredPerRoutedOff, o.DeliveredPerRoutedOn, o.OverheadPct, o.AllocsPerPacketOff, o.AllocsPerPacketOn, o.TraceStamps)
	fmt.Printf("(tracebench in %s)\n", time.Since(start).Round(time.Millisecond))
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if res.Pipeline.Complete == 0 {
		return fmt.Errorf("tracebench: no frame completed every capture→reconstruct hop")
	}
	if res.Pipeline.ReconcilePct > 5 {
		return fmt.Errorf("tracebench: stage sums diverge %.2f%% from end-to-end latency (budget 5%%) — a hop is stamped out of order or on the wrong clock", res.Pipeline.ReconcilePct)
	}
	if o.TraceStamps == 0 {
		return fmt.Errorf("tracebench: traced overhead rounds recorded no stamps — the comparison measured nothing")
	}
	if o.OverheadPct > 1 {
		return fmt.Errorf("tracebench: tracing costs the paced relay %.2f%% of its delivery ratio (budget 1%%)", o.OverheadPct)
	}
	if o.AllocsPerPacketOn > 1.0 {
		return fmt.Errorf("tracebench: %.2f allocs/packet with tracing on exceeds the 1.0 budget", o.AllocsPerPacketOn)
	}
	return nil
}

// runChaosTraceDump replays the chaos harness with the frame ledger armed
// and writes one merged capture→reconstruct timeline per frame as JSONL
// (the deterministic simulated-time counterpart of livo-conference's
// -trace-dump).
func runChaosTraceDump(outPath string, frames int) error {
	q := experiments.QuickQuality()
	if frames > 0 {
		q.Frames = frames
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := experiments.ChaosTraceDump(q, f)
	if err != nil {
		return err
	}
	// The chaos path has no relay leg, so "complete" here means both ends
	// of the end-to-end span, not every relay chain point.
	fmt.Printf("wrote %s: %d frames merged, %d with capture→reconstruct, e2e p50 %.1f ms p99 %.1f ms\n",
		outPath, rep.Frames, rep.EndToEnd.Count, rep.EndToEnd.P50Ms, rep.EndToEnd.P99Ms)
	return nil
}

// runLadderBench measures the quality ladder's two costs — encode
// amortization (3 rungs vs one) and heterogeneous-REMB fan-out — writes
// BENCH_ladder.json, and enforces the absolute acceptance gates:
//
//   - the 3-rung ladder encode may cost at most 1.6× a single encode;
//   - the routing hot path stays within 1.0 allocs/packet (the same
//     cache-bookkeeping budget as relaybench);
//   - every bandwidth class converges onto its affordable rung and
//     receives ≥99% of that rung's packets, loss-free.
func runLadderBench(outPath string, short bool) error {
	fmt.Println("=== ladderbench (encode-once quality ladder) ===")
	start := time.Now()
	res, err := experiments.RunLadderBench(experiments.LadderBenchConfig{}, short, func(line string) {
		fmt.Println(line)
	})
	if err != nil {
		return err
	}
	fmt.Printf("(ladderbench in %s)\n", time.Since(start).Round(time.Millisecond))
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if res.EncodeRatio > 1.6 {
		return fmt.Errorf("ladderbench: 3-rung encode is %.2fx one encode, budget 1.6x", res.EncodeRatio)
	}
	fmt.Printf("encode check  %.2fx <= 1.6x budget\n", res.EncodeRatio)
	if res.AllocsPerPacket > 1.0 {
		return fmt.Errorf("ladderbench: %.2f allocs/packet exceeds the 1.0 budget", res.AllocsPerPacket)
	}
	fmt.Printf("alloc check   %.2f allocs/packet <= 1.0 budget\n", res.AllocsPerPacket)
	for _, cl := range res.Classes {
		if cl.OnWantRung != cl.Subs {
			return fmt.Errorf("ladderbench: class %s converged %d/%d subscribers onto rung %d",
				cl.Name, cl.OnWantRung, cl.Subs, cl.WantRung)
		}
		if cl.DeliveredRatio < 0.99 {
			return fmt.Errorf("ladderbench: class %s delivered %.2f%% of rung %d, floor 99%%",
				cl.Name, cl.DeliveredRatio*100, cl.WantRung)
		}
		fmt.Printf("class check   %-4s rung %d delivered %.2f%% >= 99%% floor\n", cl.Name, cl.WantRung, cl.DeliveredRatio*100)
	}
	return nil
}

// runCodecBench executes the vcodec benchmark suite (the same benchmarks
// `go test -bench` runs against internal/codec/vcodec) and writes the
// measurements as JSON so CI can diff ns/op, B/op, and allocs/op across
// commits.
func runCodecBench(outPath string) error {
	procs := runtime.GOMAXPROCS(0)
	fmt.Printf("=== codecbench (GOMAXPROCS=%d) ===\n", procs)
	results := vcodec.RunStandardBenchmarks(procs)
	for _, r := range results {
		fmt.Printf("%-16s n=%-4d %14.0f ns/op %12d B/op %8d allocs/op\n",
			r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// telemetryBenchResult is the overhead measurement written by -codecbench:
// ns/op of the instrumented 4K color encode with the default registry
// enabled vs disabled. The acceptance budget is ≤2% overhead.
type telemetryBenchResult struct {
	Benchmark   string  `json:"benchmark"`
	Procs       int     `json:"procs"`
	Rounds      int     `json:"rounds"`
	NsOpOn      float64 `json:"ns_op_on"`
	NsOpOff     float64 `json:"ns_op_off"`
	OverheadPct float64 `json:"overhead_pct"`
}

// runTelemetryBench measures telemetry overhead on the 4K color encode
// path. Enabled and disabled rounds alternate, and each mode keeps its
// minimum ns/op, so slow drift (thermal, scheduler) cannot masquerade as
// telemetry cost.
func runTelemetryBench(outPath string) error {
	const name = "Encode4KColor"
	var fn func(*testing.B)
	for _, nb := range vcodec.StandardBenchmarks() {
		if nb.Name == name {
			fn = nb.F
		}
	}
	if fn == nil {
		return fmt.Errorf("benchmark %s not in the standard suite", name)
	}
	fmt.Println("=== telemetry overhead (registry on vs off) ===")
	const rounds = 3
	nsOn, nsOff := math.Inf(1), math.Inf(1)
	for i := 0; i < rounds; i++ {
		telemetry.Default.SetEnabled(true)
		if v := float64(testing.Benchmark(fn).NsPerOp()); v < nsOn {
			nsOn = v
		}
		telemetry.Default.SetEnabled(false)
		if v := float64(testing.Benchmark(fn).NsPerOp()); v < nsOff {
			nsOff = v
		}
	}
	telemetry.Default.SetEnabled(true)
	res := telemetryBenchResult{
		Benchmark:   name,
		Procs:       runtime.GOMAXPROCS(0),
		Rounds:      rounds,
		NsOpOn:      nsOn,
		NsOpOff:     nsOff,
		OverheadPct: (nsOn - nsOff) / nsOff * 100,
	}
	fmt.Printf("%s: on %.0f ns/op, off %.0f ns/op, overhead %+.2f%%\n",
		name, res.NsOpOn, res.NsOpOff, res.OverheadPct)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
