// Command livo-receiver receives a LiVo stream sent by livo-sender,
// reconstructs point clouds, moves a synthetic viewer through the scene
// (feeding poses back for culling), and logs rendering statistics.
//
// Usage:
//
//	livo-receiver -listen :7000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"livo"
	"livo/internal/udpio"
)

func main() {
	var (
		listen   = flag.String("listen", ":7000", "UDP listen address")
		cameras  = flag.Int("cameras", 6, "cameras in the sender's rig (session setup)")
		width    = flag.Int("width", 96, "per-camera width")
		height   = flag.Int("height", 80, "per-camera height")
		voxel    = flag.Float64("voxel", 0, "receiver-side voxel size, m (0 = off)")
		udpBatch = flag.Bool("udp-batch", true, "batch UDP syscalls with sendmmsg/recvmmsg where the kernel supports it")
		sockBuf  = flag.Int("sockbuf", 0, "request SO_RCVBUF/SO_SNDBUF of this many bytes (0 = default ~1s of media)")
	)
	flag.Parse()

	// Camera calibration is exchanged at session setup in LiVo (§A.1);
	// this CLI mirrors the sender's flags instead.
	in := livo.NewIntrinsics(*width, *height, livo.DegToRad(75))
	arr := livo.NewCameraRing(*cameras, 2.6, 1.5, 0.9, in, 6)

	conn, err := udpio.Listen("udp", *listen, udpio.Config{
		RecvBuf:      *sockBuf,
		SendBuf:      *sockBuf,
		DisableBatch: !*udpBatch,
	})
	if err != nil {
		log.Fatalf("listen %q: %v", *listen, err)
	}
	defer conn.Close()
	if st := conn.Stats(); st.RecvBufBytes > 0 {
		fmt.Printf("socket: batched=%v rcvbuf=%d sndbuf=%d (kernel-granted)\n",
			st.Batched, st.RecvBufBytes, st.SendBufBytes)
	}
	fmt.Printf("listening on %s; waiting for first packet...\n", conn.LocalAddr())

	// Learn the sender's address from its first packet.
	buf := make([]byte, 65536)
	_, sender, err := conn.ReadFrom(buf)
	if err != nil {
		log.Fatalf("first packet: %v", err)
	}
	fmt.Printf("sender: %s\n", sender)

	sess, err := livo.NewRecvSession(conn, sender, livo.RecvSessionConfig{
		Receiver: livo.ReceiverConfig{Array: arr, VoxelSize: *voxel},
	})
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	defer sess.Close()

	var clouds, points atomic.Int64
	sess.OnCloud = func(seq uint32, cloud *livo.PointCloud) {
		clouds.Add(1)
		points.Store(int64(cloud.Len()))
	}
	viewer := livo.SynthUserTrace("viewer", 42, 3600, 30)
	start := time.Now()
	sess.PoseSource = func() livo.Pose { return viewer.At(time.Since(start).Seconds()) }
	go sess.Run()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	var last int64
	for {
		select {
		case <-stop:
			fmt.Println("\nbye")
			return
		case <-ticker.C:
			n := clouds.Load()
			fmt.Printf("fps=%2d clouds=%4d points=%6d\n", n-last, n, points.Load())
			last = n
		}
	}
}
