package qoe

import (
	"math"
	"testing"
)

func TestAnchorPoints(t *testing.T) {
	cases := []struct {
		name string
		m    Measurement
		want float64
		tol  float64
	}{
		{"LiVo", Measurement{87.8, 82.9, 0.017, 30, 30}, 4.1, 0.25},
		{"NoCull", Measurement{81.0, 80.9, 0.079, 30, 30}, 3.4, 0.25},
		{"MeshReduce", Measurement{67.0, 77.3, 0, 12.1, 30}, 2.5, 0.25},
		{"DracoOracle", Measurement{28.3, 29.9, 0.69, 15, 30}, 1.5, 0.3},
	}
	var prev = math.Inf(1)
	for _, c := range cases {
		got := Score(c.m)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: score %v, want %v ± %v", c.name, got, c.want, c.tol)
		}
		if got >= prev {
			t.Errorf("%s: ranking violated (%v >= %v)", c.name, got, prev)
		}
		prev = got
	}
}

func TestScoreBounds(t *testing.T) {
	if got := Score(Measurement{0, 0, 1, 0, 30}); got != 1 {
		t.Errorf("worst case = %v, want 1", got)
	}
	if got := Score(Measurement{100, 100, 0, 30, 30}); got != 5 {
		t.Errorf("best case = %v, want 5", got)
	}
}

func TestScoreMonotoneInQuality(t *testing.T) {
	prev := 0.0
	for p := 0.0; p <= 100; p += 5 {
		got := Score(Measurement{p, p, 0, 30, 30})
		if got < prev {
			t.Fatalf("score not monotone at PSSIM %v", p)
		}
		prev = got
	}
}

func TestScorePenalties(t *testing.T) {
	base := Score(Measurement{85, 85, 0, 30, 30})
	stalled := Score(Measurement{85, 85, 0.5, 30, 30})
	if stalled >= base {
		t.Error("stalls not penalized")
	}
	slow := Score(Measurement{85, 85, 0, 10, 30})
	if slow >= base {
		t.Error("low fps not penalized")
	}
	// Default target fps when unset.
	if Score(Measurement{85, 85, 0, 30, 0}) != base {
		t.Error("default target fps wrong")
	}
}

func TestCategorize(t *testing.T) {
	c := Categorize(Measurement{90, 90, 0.01, 30, 30})
	if c.FrameRate != High || c.Stalls != Low || c.Quality != High {
		t.Errorf("good run categories: %+v", c)
	}
	c = Categorize(Measurement{70, 70, 0.05, 20, 30})
	if c.FrameRate != Medium || c.Stalls != Medium || c.Quality != Medium {
		t.Errorf("medium run categories: %+v", c)
	}
	c = Categorize(Measurement{30, 30, 0.7, 12, 30})
	if c.FrameRate != Low || c.Stalls != High || c.Quality != Low {
		t.Errorf("bad run categories: %+v", c)
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "L" || Medium.String() != "M" || High.String() != "H" || Level(9).String() != "?" {
		t.Error("level strings wrong")
	}
}
