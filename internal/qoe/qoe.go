// Package qoe substitutes for the paper's user study (§4.2): it maps
// objective measurements — PointSSIM geometry/color, stall rate, and frame
// rate — to a 1–5 opinion score. The mapping is a monotone piecewise-linear
// curve over combined PSSIM plus stall and frame-rate penalties, calibrated
// so the paper's anchor points hold:
//
//	LiVo         (PSSIM_g 87.8, stalls 1.7%, 30 fps) → ≈4.1
//	LiVo-NoCull  (81.0, 7.9%, 30 fps)                → ≈3.4
//	MeshReduce   (67.0, 0%, 12 fps)                  → ≈2.5
//	Draco-Oracle (28.3, 69%, 15 fps)                 → ≈1.5
//
// The model cannot reproduce human judgement; it reproduces the *ranking
// and relative gaps* that the measured objective metrics drive (DESIGN.md).
// It also classifies runs into the Low/Medium/High comment categories of
// Table 5.
package qoe

// Measurement is one replay run's aggregate objective result.
type Measurement struct {
	PSSIMGeometry float64 // 0-100
	PSSIMColor    float64 // 0-100
	StallRate     float64 // fraction of frames stalled, 0-1
	FPS           float64 // achieved frame rate
	TargetFPS     float64 // nominal rate (30)
}

// combined weighs geometry over color, matching the perceptual dominance
// of depth distortion [95].
func combined(g, c float64) float64 { return 0.75*g + 0.25*c }

// basePoints are the calibrated PSSIM→score anchors (see package comment).
var basePoints = [][2]float64{
	{0, 1.0}, {20, 1.0}, {28.7, 2.2}, {69.6, 2.9}, {81.0, 3.55},
	{86.6, 4.15}, {95, 4.8}, {100, 5.0},
}

const (
	stallWeight = 0.5
	fpsWeight   = 0.7
)

// Score maps a measurement to a mean-opinion-score estimate in [1, 5].
func Score(m Measurement) float64 {
	p := combined(m.PSSIMGeometry, m.PSSIMColor)
	s := interp(basePoints, p)
	s -= stallWeight * clamp01(m.StallRate)
	target := m.TargetFPS
	if target <= 0 {
		target = 30
	}
	fpsRatio := clamp01(m.FPS / target)
	s -= fpsWeight * (1 - fpsRatio)
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func interp(pts [][2]float64, x float64) float64 {
	if x <= pts[0][0] {
		return pts[0][1]
	}
	for i := 1; i < len(pts); i++ {
		if x <= pts[i][0] {
			x0, y0 := pts[i-1][0], pts[i-1][1]
			x1, y1 := pts[i][0], pts[i][1]
			w := (x - x0) / (x1 - x0)
			return y0 + w*(y1-y0)
		}
	}
	return pts[len(pts)-1][1]
}

// Level is a Low/Medium/High comment category (Table 5).
type Level int

// Comment levels.
const (
	Low Level = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "L"
	case Medium:
		return "M"
	case High:
		return "H"
	default:
		return "?"
	}
}

// Categories classifies a run along Table 5's three comment dimensions.
// Note the semantics mirror the table: for frame rate and quality High is
// good; for stalls High means *many* stalls (bad).
type Categories struct {
	FrameRate Level
	Stalls    Level
	Quality   Level
}

// Categorize buckets a measurement into comment categories.
func Categorize(m Measurement) Categories {
	var c Categories
	target := m.TargetFPS
	if target <= 0 {
		target = 30
	}
	switch ratio := m.FPS / target; {
	case ratio >= 0.9:
		c.FrameRate = High
	case ratio >= 0.6:
		c.FrameRate = Medium
	default:
		c.FrameRate = Low
	}
	switch {
	case m.StallRate < 0.02:
		c.Stalls = Low
	case m.StallRate < 0.15:
		c.Stalls = Medium
	default:
		c.Stalls = High
	}
	switch p := combined(m.PSSIMGeometry, m.PSSIMColor); {
	case p >= 85:
		c.Quality = High
	case p >= 60:
		c.Quality = Medium
	default:
		c.Quality = Low
	}
	return c
}
