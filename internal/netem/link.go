// Package netem emulates the bottleneck link between the LiVo sender and
// receiver, replaying the bandwidth traces of §4.1 like Mahimahi [67]: a
// trace-driven serialization rate, a droptail queue, fixed propagation
// delay, and optional random loss. It runs in virtual time (internal/sim)
// so experiments replay faster than real time.
package netem

import (
	"math"
	"math/rand"

	"livo/internal/trace"
)

// Link is a one-way trace-driven bottleneck.
type Link struct {
	// Trace supplies capacity over time (Mbps). A nil trace means a fixed
	// capacity of FixedMbps.
	Trace     *trace.Bandwidth
	FixedMbps float64
	// PropDelay is the one-way propagation delay in seconds (default 0.02).
	PropDelay float64
	// QueueBytes is the droptail queue limit (default 2 MB ≈ a large
	// socket buffer, §A.1 notes LiVo enlarges the default UDP buffers).
	QueueBytes int
	// LossRate is an additional i.i.d. random loss probability.
	LossRate float64
	// Rng drives random loss (may be nil when LossRate is 0).
	Rng *rand.Rand

	// busyUntil is the virtual time at which the serializer drains.
	busyUntil float64
	delivered int64
	dropped   int64
}

// NewLink builds a link over a bandwidth trace with defaults.
func NewLink(tr *trace.Bandwidth) *Link {
	return &Link{Trace: tr, PropDelay: 0.02, QueueBytes: 2 << 20}
}

// NewFixedLink builds a constant-capacity link (useful in tests).
func NewFixedLink(mbps float64) *Link {
	return &Link{FixedMbps: mbps, PropDelay: 0.02, QueueBytes: 2 << 20}
}

// capacityAt returns the capacity in bytes/second at virtual time t.
func (l *Link) capacityAt(t float64) float64 {
	mbps := l.FixedMbps
	if l.Trace != nil {
		mbps = l.Trace.At(t)
	}
	if mbps <= 0 {
		return 0
	}
	return mbps * 1e6 / 8
}

// QueueDelay returns the current serialization backlog in seconds at
// virtual time now.
func (l *Link) QueueDelay(now float64) float64 {
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// Send enqueues a packet of the given size at virtual time now. It returns
// the arrival time at the far end and whether the packet was dropped
// (arrival is meaningless for drops). Calls must use non-decreasing now.
func (l *Link) Send(now float64, bytes int) (arrival float64, droppedPkt bool) {
	if bytes <= 0 {
		return now + l.PropDelay, false
	}
	// Droptail: queue occupancy approximated by backlog time x current
	// capacity.
	if l.QueueBytes > 0 {
		backlog := l.QueueDelay(now) * l.capacityAt(now)
		if int(backlog)+bytes > l.QueueBytes {
			l.dropped++
			return 0, true
		}
	}
	if l.Rng != nil && l.LossRate > 0 && l.Rng.Float64() < l.LossRate {
		l.dropped++
		return 0, true
	}
	start := math.Max(now, l.busyUntil)
	finish := l.serializeFinish(start, bytes)
	l.busyUntil = finish
	l.delivered++
	return finish + l.PropDelay, false
}

// serializeFinish integrates the (piecewise-constant) capacity from start
// until bytes have been transmitted.
func (l *Link) serializeFinish(start float64, bytes int) float64 {
	remaining := float64(bytes)
	t := start
	interval := 1.0
	if l.Trace != nil && l.Trace.Interval > 0 {
		interval = l.Trace.Interval
	}
	for iter := 0; iter < 1<<20; iter++ {
		cap := l.capacityAt(t)
		if cap <= 0 {
			// Outage: skip to the next trace interval.
			t = (math.Floor(t/interval) + 1) * interval
			continue
		}
		// Time left in this trace interval.
		intervalEnd := (math.Floor(t/interval) + 1) * interval
		dt := intervalEnd - t
		canSend := cap * dt
		if canSend >= remaining {
			return t + remaining/cap
		}
		remaining -= canSend
		t = intervalEnd
	}
	return t
}

// Delivered returns the count of packets accepted by the link.
func (l *Link) Delivered() int64 { return l.delivered }

// Dropped returns the count of packets dropped (queue overflow or loss).
func (l *Link) Dropped() int64 { return l.dropped }
