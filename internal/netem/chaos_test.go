package netem

import (
	"bytes"
	"testing"
)

func applyAll(c *Chaos, n int) (delivered, flipped int) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		for _, d := range c.Apply(payload) {
			delivered++
			if d.Flipped {
				flipped++
			}
		}
	}
	return
}

func TestChaosZeroConfigIsTransparent(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1})
	payload := []byte{1, 2, 3}
	for i := 0; i < 1000; i++ {
		ds := c.Apply(payload)
		if len(ds) != 1 || ds[0].ExtraDelay != 0 || ds[0].Flipped {
			t.Fatalf("zero config mutated delivery: %+v", ds)
		}
		if &ds[0].Payload[0] != &payload[0] {
			t.Fatal("zero config copied the payload")
		}
	}
	if c.Dropped() != 0 || c.Duplicated() != 0 || c.Reordered() != 0 || c.Flipped() != 0 {
		t.Fatalf("zero config recorded faults: %+v", c)
	}
}

func TestChaosDeterministic(t *testing.T) {
	a := NewChaos(DefaultChaosConfig(42))
	b := NewChaos(DefaultChaosConfig(42))
	applyAll(a, 5000)
	applyAll(b, 5000)
	if a.Dropped() != b.Dropped() || a.Flipped() != b.Flipped() ||
		a.Duplicated() != b.Duplicated() || a.Reordered() != b.Reordered() {
		t.Errorf("same seed diverged: %d/%d drops, %d/%d flips",
			a.Dropped(), b.Dropped(), a.Flipped(), b.Flipped())
	}
}

func TestChaosBurstLossStatistics(t *testing.T) {
	c := NewChaos(DefaultChaosConfig(7))
	const n = 50000
	applyAll(c, n)
	rate := float64(c.Dropped()) / n
	// Stationary loss: 9% Bad at 50% + 91% Good at 0.5% ≈ 5%.
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("loss rate %.3f outside burst-model expectation", rate)
	}
	if c.Bursts() == 0 {
		t.Error("no bursts after 50000 packets")
	}
	// Burst losses must cluster: drops per burst well above the i.i.d.
	// expectation of ~1.
	if perBurst := float64(c.Dropped()) / float64(c.Bursts()); perBurst < 2 {
		t.Errorf("losses not bursty: %.1f drops per burst", perBurst)
	}
	if c.Duplicated() == 0 || c.Reordered() == 0 || c.Flipped() == 0 {
		t.Errorf("fault modes idle: dup=%d reorder=%d flip=%d",
			c.Duplicated(), c.Reordered(), c.Flipped())
	}
}

func TestChaosBitFlipCopies(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 3, BitFlipProb: 1})
	payload := []byte{0xAA, 0xBB, 0xCC}
	orig := append([]byte(nil), payload...)
	ds := c.Apply(payload)
	if len(ds) != 1 || !ds[0].Flipped {
		t.Fatalf("expected one flipped delivery, got %+v", ds)
	}
	if !bytes.Equal(payload, orig) {
		t.Error("bit flip mutated the caller's buffer")
	}
	if bytes.Equal(ds[0].Payload, orig) {
		t.Error("flipped delivery equals the original")
	}
	diff := 0
	for i := range orig {
		diff += popcount(ds[0].Payload[i] ^ orig[i])
	}
	if diff != 1 {
		t.Errorf("flip changed %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestChaosDuplicationSharesFlippedPayload(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 9, DupProb: 1, BitFlipProb: 1})
	ds := c.Apply([]byte{1, 2, 3, 4})
	if len(ds) != 2 {
		t.Fatalf("expected duplicate delivery, got %d", len(ds))
	}
	if !bytes.Equal(ds[0].Payload, ds[1].Payload) {
		t.Error("duplicate differs from the original delivery")
	}
}
