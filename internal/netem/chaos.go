package netem

import (
	"math/rand"

	"livo/internal/telemetry"
)

// Chaos injects the fault modes a best-effort network exhibits beyond the
// capacity limits Link models: bursty loss, duplication, reordering, and
// payload corruption. Loss follows the two-state Gilbert–Elliott model —
// packets are dropped i.i.d. at a low rate in the Good state and at a high
// rate in the Bad (burst) state, with per-packet Markov transitions between
// the two — which reproduces the clustered losses of real wireless links
// that an i.i.d. LossRate cannot. All randomness is driven by one seeded
// source so a chaos schedule is exactly reproducible.
type Chaos struct {
	cfg ChaosConfig
	rng *rand.Rand
	bad bool

	sent       int
	dropped    int
	duplicated int
	reordered  int
	flipped    int
	bursts     int

	// Optional telemetry counters (Instrument); nil means uninstrumented.
	mDropped, mDuplicated, mReordered, mFlipped, mBursts *telemetry.Counter
}

// ChaosConfig parameterizes a Chaos injector. Zero-valued knobs disable
// their fault mode, so the zero config is a transparent pass-through.
type ChaosConfig struct {
	// Seed initializes the injector's private random source.
	Seed int64

	// PEnterBurst is the per-packet probability of entering the Bad state
	// from Good; PExitBurst of returning to Good. The stationary fraction of
	// time spent in a burst is PEnterBurst/(PEnterBurst+PExitBurst).
	PEnterBurst float64
	PExitBurst  float64
	// LossGood and LossBad are the drop probabilities in each state.
	LossGood float64
	LossBad  float64

	// DupProb duplicates a delivered packet (both copies arrive).
	DupProb float64
	// ReorderProb delays a delivered packet by ReorderDelay seconds, so it
	// arrives behind packets sent after it.
	ReorderProb  float64
	ReorderDelay float64
	// BitFlipProb corrupts a delivered packet by flipping one random bit of
	// a private copy (the caller's buffer is never mutated).
	BitFlipProb float64
}

// DefaultChaosConfig is the acceptance scenario of the robustness tests:
// ~5% loss concentrated in bursts (stationary Bad fraction ~9% at 50% loss),
// light duplication and reordering, and occasional single-bit corruption.
func DefaultChaosConfig(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed:        seed,
		PEnterBurst: 0.01,
		PExitBurst:  0.10,
		LossGood:    0.005,
		LossBad:     0.5,
		DupProb:     0.01,
		ReorderProb: 0.02, ReorderDelay: 0.03,
		BitFlipProb: 0.002,
	}
}

// BurstyLossConfig builds a loss-only Gilbert–Elliott schedule whose
// long-run average drop rate is approximately avgLoss, with losses
// clustered in bursts (50% loss inside a burst, mean burst length 4
// packets, ~2% of time in bursts). The good-state rate is solved from the
// stationary burst fraction so the average comes out right; avgLoss below
// the bursts' own contribution clamps the good state to lossless. Used by
// the relay loss-recovery harness at avgLoss = 0.02.
func BurstyLossConfig(seed int64, avgLoss float64) ChaosConfig {
	const pEnter, pExit, lossBad = 0.005, 0.25, 0.5
	f := pEnter / (pEnter + pExit) // stationary fraction of time in Bad
	lossGood := (avgLoss - f*lossBad) / (1 - f)
	if lossGood < 0 {
		lossGood = 0
	}
	return ChaosConfig{
		Seed:        seed,
		PEnterBurst: pEnter,
		PExitBurst:  pExit,
		LossGood:    lossGood,
		LossBad:     lossBad,
	}
}

// Delivery is one copy of a packet that survives the injector.
type Delivery struct {
	Payload []byte
	// ExtraDelay is added to the packet's normal arrival time (reordering).
	ExtraDelay float64
	// Flipped marks payloads corrupted by a bit flip.
	Flipped bool
}

// NewChaos builds an injector from cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Instrument publishes the injector's fault counters to reg as
// livo_chaos_* series, so experiments can assert that injected faults were
// actually exercised (not just that decode output survived).
func (c *Chaos) Instrument(reg *telemetry.Registry) {
	c.mDropped = reg.Counter("livo_chaos_dropped_total")
	c.mDuplicated = reg.Counter("livo_chaos_duplicated_total")
	c.mReordered = reg.Counter("livo_chaos_reordered_total")
	c.mFlipped = reg.Counter("livo_chaos_flipped_total")
	c.mBursts = reg.Counter("livo_chaos_bursts_total")
}

// Apply passes one packet through the injector and returns the copies that
// survive: nil when dropped, one Delivery normally, two when duplicated.
func (c *Chaos) Apply(payload []byte) []Delivery {
	c.sent++
	if c.bad {
		if c.rng.Float64() < c.cfg.PExitBurst {
			c.bad = false
		}
	} else if c.rng.Float64() < c.cfg.PEnterBurst {
		c.bad = true
		c.bursts++
		c.mBursts.Inc()
	}
	loss := c.cfg.LossGood
	if c.bad {
		loss = c.cfg.LossBad
	}
	if loss > 0 && c.rng.Float64() < loss {
		c.dropped++
		c.mDropped.Inc()
		return nil
	}
	d := Delivery{Payload: payload}
	if c.cfg.BitFlipProb > 0 && len(payload) > 0 && c.rng.Float64() < c.cfg.BitFlipProb {
		cp := append([]byte(nil), payload...)
		bit := c.rng.Intn(len(cp) * 8)
		cp[bit/8] ^= 1 << (bit % 8)
		d.Payload = cp
		d.Flipped = true
		c.flipped++
		c.mFlipped.Inc()
	}
	if c.cfg.ReorderProb > 0 && c.rng.Float64() < c.cfg.ReorderProb {
		d.ExtraDelay = c.cfg.ReorderDelay
		c.reordered++
		c.mReordered.Inc()
	}
	out := []Delivery{d}
	if c.cfg.DupProb > 0 && c.rng.Float64() < c.cfg.DupProb {
		out = append(out, Delivery{Payload: d.Payload, ExtraDelay: d.ExtraDelay})
		c.duplicated++
		c.mDuplicated.Inc()
	}
	return out
}

// InBurst reports whether the injector is currently in the Bad state.
func (c *Chaos) InBurst() bool { return c.bad }

// Sent returns how many packets entered the injector.
func (c *Chaos) Sent() int { return c.sent }

// Dropped returns how many packets the loss model consumed.
func (c *Chaos) Dropped() int { return c.dropped }

// Duplicated returns how many packets were delivered twice.
func (c *Chaos) Duplicated() int { return c.duplicated }

// Reordered returns how many deliveries were delayed for reordering.
func (c *Chaos) Reordered() int { return c.reordered }

// Flipped returns how many deliveries carry a corrupted payload.
func (c *Chaos) Flipped() int { return c.flipped }

// Bursts returns how many Good→Bad transitions occurred.
func (c *Chaos) Bursts() int { return c.bursts }
