package netem

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/trace"
)

func TestFixedLinkSerialization(t *testing.T) {
	l := NewFixedLink(8) // 8 Mbps = 1 MB/s
	l.PropDelay = 0.05
	arrival, dropped := l.Send(0, 100_000) // 0.1 s serialization
	if dropped {
		t.Fatal("unexpected drop")
	}
	if math.Abs(arrival-(0.1+0.05)) > 1e-9 {
		t.Errorf("arrival = %v, want 0.15", arrival)
	}
}

func TestLinkQueueing(t *testing.T) {
	l := NewFixedLink(8)
	l.PropDelay = 0
	a1, _ := l.Send(0, 100_000)
	a2, _ := l.Send(0, 100_000) // queues behind the first
	if math.Abs(a1-0.1) > 1e-9 || math.Abs(a2-0.2) > 1e-9 {
		t.Errorf("arrivals = %v, %v", a1, a2)
	}
	if d := l.QueueDelay(0.05); math.Abs(d-0.15) > 1e-9 {
		t.Errorf("queue delay = %v", d)
	}
	// After the backlog drains, no queueing.
	a3, _ := l.Send(1.0, 1000)
	if math.Abs(a3-1.001) > 1e-9 {
		t.Errorf("post-drain arrival = %v", a3)
	}
}

func TestLinkDroptail(t *testing.T) {
	l := NewFixedLink(8)
	l.QueueBytes = 150_000
	var drops int
	for i := 0; i < 10; i++ {
		if _, dropped := l.Send(0, 50_000); dropped {
			drops++
		}
	}
	if drops == 0 {
		t.Error("queue never overflowed")
	}
	if l.Dropped() != int64(drops) {
		t.Errorf("Dropped() = %d, want %d", l.Dropped(), drops)
	}
	if l.Delivered() != int64(10-drops) {
		t.Errorf("Delivered() = %d", l.Delivered())
	}
}

func TestLinkRandomLoss(t *testing.T) {
	l := NewFixedLink(1000)
	l.LossRate = 0.3
	l.Rng = rand.New(rand.NewSource(1))
	var drops int
	for i := 0; i < 1000; i++ {
		if _, dropped := l.Send(float64(i), 100); dropped {
			drops++
		}
	}
	if drops < 200 || drops > 400 {
		t.Errorf("drops = %d of 1000 at 30%% loss", drops)
	}
}

func TestLinkTraceDriven(t *testing.T) {
	// Capacity 8 Mbps in second 0, 80 Mbps in second 1.
	tr := &trace.Bandwidth{Interval: 1, Mbps: []float64{8, 80}}
	l := NewLink(tr)
	l.PropDelay = 0
	// 1.5 MB: 1 MB in second 0 (1 MB/s), remaining 0.5 MB at 10 MB/s
	// takes 0.05 s.
	arrival, dropped := l.Send(0, 1_500_000)
	if dropped {
		t.Fatal("dropped")
	}
	if math.Abs(arrival-1.05) > 1e-9 {
		t.Errorf("arrival = %v, want 1.05", arrival)
	}
}

func TestLinkOutage(t *testing.T) {
	tr := &trace.Bandwidth{Interval: 1, Mbps: []float64{0, 8}}
	l := NewLink(tr)
	l.PropDelay = 0
	l.QueueBytes = 10 << 20
	// Sent during the outage: serialization starts at t=1.
	arrival, dropped := l.Send(0.5, 100_000)
	if dropped {
		t.Fatal("dropped")
	}
	if math.Abs(arrival-1.1) > 1e-9 {
		t.Errorf("arrival = %v, want 1.1", arrival)
	}
}

func TestLinkZeroBytes(t *testing.T) {
	l := NewFixedLink(8)
	arrival, dropped := l.Send(1, 0)
	if dropped || math.Abs(arrival-1.02) > 1e-9 {
		t.Errorf("zero-byte send = %v %v", arrival, dropped)
	}
}

func TestLinkWrapsTrace(t *testing.T) {
	tr := &trace.Bandwidth{Interval: 1, Mbps: []float64{8}}
	l := NewLink(tr)
	l.PropDelay = 0
	arrival, _ := l.Send(100.25, 500_000) // wraps, still 1 MB/s
	if math.Abs(arrival-100.75) > 1e-9 {
		t.Errorf("arrival = %v", arrival)
	}
}
