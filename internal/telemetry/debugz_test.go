package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fetch(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugzEndpoint(t *testing.T) {
	reg := NewRegistry(64)
	reg.Counter("livo_pli_sent_total").Add(2)
	reg.Gauge("livo_split_s").Set(0.85)
	ss := NewStageSet(reg)
	ss.Done(3, StageEncodeColor, time.Now().Add(-5*time.Millisecond))

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	page := fetch(t, srv, "/debugz")
	for _, want := range []string{"livo_pli_sent_total", "livo_split_s", "encode_color", "recent spans", "seq=3"} {
		if !strings.Contains(page, want) {
			t.Errorf("/debugz missing %q:\n%s", want, page)
		}
	}

	metrics := fetch(t, srv, "/debugz/metrics")
	if !strings.Contains(metrics, "livo_pli_sent_total 2") {
		t.Errorf("/debugz/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "livo_stage_encode_color_seconds_bucket") {
		t.Errorf("/debugz/metrics missing histogram buckets:\n%s", metrics)
	}

	spans := fetch(t, srv, "/debugz/spans.jsonl?n=10")
	if !strings.Contains(spans, "\"stage\":\"encode_color\"") {
		t.Errorf("/debugz/spans.jsonl missing span:\n%s", spans)
	}

	if vars := fetch(t, srv, "/debug/vars"); !strings.Contains(vars, "cmdline") {
		t.Errorf("/debug/vars not serving expvar:\n%.200s", vars)
	}
	if idx := fetch(t, srv, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ not serving pprof index:\n%.200s", idx)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry(64)
	srv, addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debugz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
