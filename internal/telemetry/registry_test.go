package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry(64)
	c := reg.Counter("livo_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("livo_test_total"); again != c {
		t.Fatal("re-registration returned a different handle")
	}
	g := reg.Gauge("livo_test_gauge")
	g.Set(0.85)
	if got := g.Value(); got != 0.85 {
		t.Fatalf("gauge = %g, want 0.85", got)
	}

	reg.SetEnabled(false)
	c.Inc()
	g.Set(99)
	if c.Value() != 5 || g.Value() != 0.85 {
		t.Fatalf("disabled registry recorded updates: c=%d g=%g", c.Value(), g.Value())
	}
	reg.SetEnabled(true)
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	reg := NewRegistry(64)
	reg.Counter("livo_mismatch")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("livo_mismatch")
}

// TestHistogramQuantileUniform checks quantile estimates against a known
// uniform distribution: with per-unit buckets the linear interpolation is
// exact up to one bucket width.
func TestHistogramQuantileUniform(t *testing.T) {
	reg := NewRegistry(64)
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1) // 1..100
	}
	h := reg.Histogram("livo_uniform", bounds)
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64() * 100)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 100
		if math.Abs(got-want) > 1.5 { // one bucket width + sampling noise
			t.Errorf("q%.2f = %.2f, want ~%.2f", q, got, want)
		}
	}
	if mean := h.Sum() / float64(h.Count()); math.Abs(mean-50) > 0.5 {
		t.Errorf("mean = %.2f, want ~50", mean)
	}
}

// TestHistogramQuantileExponential checks quantiles of a (scaled)
// exponential distribution against its analytic inverse CDF.
func TestHistogramQuantileExponential(t *testing.T) {
	reg := NewRegistry(64)
	bounds := make([]float64, 200)
	for i := range bounds {
		bounds[i] = 0.05 * float64(i+1) // 0.05..10
	}
	h := reg.Histogram("livo_exp", bounds)
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64()) // mean 1
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := -math.Log(1 - q) // inverse CDF of Exp(1)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("q%.2f = %.3f, want ~%.3f", q, got, want)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	reg := NewRegistry(64)
	h := reg.Histogram("livo_edge", []float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("+Inf-bucket quantile = %g, want +Inf sentinel (a finite bound would underestimate)", got)
	}
	h.Observe(1.5) // now half the mass is finite again
	if got := h.Quantile(0.25); got < 1 || got > 2 {
		t.Errorf("in-range quantile = %g, want within (1, 2]", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("rank beyond the last bound = %g, want +Inf sentinel", got)
	}
}

// TestHistogramQuantileNoFiniteBuckets checks the single-bucket guard: a
// histogram with no finite bounds has only the +Inf overflow bucket, so
// any quantile estimate would be fabricated — the sentinel is NaN even
// after observations arrive.
func TestHistogramQuantileNoFiniteBuckets(t *testing.T) {
	reg := NewRegistry(64)
	h := reg.Histogram("livo_nobounds", nil)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty no-bounds histogram should be NaN")
	}
	h.Observe(42)
	h.Observe(7)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("q%.2f = %g, want NaN sentinel for a single-bucket histogram", q, got)
		}
	}
	if h.Sum() != 49 {
		t.Errorf("sum = %g, want 49 (count/sum still track without buckets)", h.Sum())
	}
}

// TestRegistryConcurrent hammers registration and updates from many
// goroutines; run under -race this validates the lock-free paths.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry(256)
	names := []string{"livo_a_total", "livo_b_total", "livo_c_total", "livo_d_total"}
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter(names[i%len(names)]).Inc()
				reg.Gauge("livo_g").Set(float64(i))
				reg.Histogram("livo_h", LatencyBuckets).Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					reg.WriteMetrics(&sb) // exposition concurrent with updates
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range names {
		total += reg.Counter(n).Value()
	}
	if want := int64(workers * iters); total != want {
		t.Fatalf("lost updates: counters sum to %d, want %d", total, want)
	}
	if got := reg.Histogram("livo_h", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	reg := NewRegistry(64)
	reg.Counter("livo_frames_total").Add(3)
	reg.Gauge("livo_split_s").Set(0.8)
	h := reg.Histogram("livo_lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	reg.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE livo_frames_total counter\nlivo_frames_total 3\n",
		"# TYPE livo_split_s gauge\nlivo_split_s 0.8\n",
		"livo_lat_seconds_bucket{le=\"0.1\"} 1\n",
		"livo_lat_seconds_bucket{le=\"1\"} 2\n",
		"livo_lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"livo_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestStageSet(t *testing.T) {
	reg := NewRegistry(64)
	ss := NewStageSet(reg)
	start := nowForTest()
	ss.Done(7, StageEncodeColor, start)
	if got := ss.Hist(StageEncodeColor).Count(); got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
	spans := reg.Spans.Recent(10)
	if len(spans) != 1 || spans[0].Seq != 7 || spans[0].Stage != StageEncodeColor {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}
