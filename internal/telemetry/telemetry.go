// Package telemetry is the frame-path observability layer: a registry of
// lock-free counters, gauges, and fixed-bucket histograms; per-frame span
// tracing through the pipeline stages recorded into a lock-free ring
// buffer; and a /debugz HTTP endpoint exposing both (debugz.go).
//
// Everything is stdlib-only and allocation-free on the hot path: metric
// handles are resolved once at construction time (copy-on-write name map,
// so lookups during registration never block readers), and every update is
// a handful of atomic operations. A registry can be disabled
// (SetEnabled(false)), which turns every update into one atomic load and a
// branch — the overhead budget is ≤2% on the 4K color encode benchmark,
// proven by `livo-bench -codecbench` writing BENCH_telemetry.json.
//
// The package-level Default registry is what the library instruments
// unless a component is handed a private registry (experiments use private
// registries so concurrent tests cannot contaminate each other's
// counters).
package telemetry

// Stage identifies one hop of the frame path (§3.1/Fig 2): the send side
// runs capture → cull → tile → encode(color|depth) → packetize → send, the
// receive side recv → jitter → depacketize → decode(color|depth) → pair →
// reconstruct/render.
type Stage uint8

// Frame-path stages, in pipeline order.
const (
	StageCapture Stage = iota
	StageCull
	StageTile
	StageEncodeColor
	StageEncodeDepth
	StagePacketize
	StageSend
	StageRecv
	StageJitter
	StageDepacketize
	StageDecodeColor
	StageDecodeDepth
	StagePair
	StageReconstruct
	StageRender
	numStages
)

var stageNames = [numStages]string{
	"capture", "cull", "tile", "encode_color", "encode_depth",
	"packetize", "send", "recv", "jitter", "depacketize",
	"decode_color", "decode_depth", "pair", "reconstruct", "render",
}

// String returns the stage's snake_case name (used in metric series names
// and span dumps).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// NumStages is the number of defined frame-path stages.
const NumStages = int(numStages)

// LatencyBuckets are the default histogram bounds for stage latencies, in
// seconds: 100 µs to 2.5 s, roughly ×2.5 per bucket. They bracket both the
// sub-millisecond transport stages and multi-hundred-millisecond 4K
// software encodes.
var LatencyBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3,
	50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// Default is the process-wide registry instrumented library code reports
// to when not handed a private one.
var Default = NewRegistry(4096)
