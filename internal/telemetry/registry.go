package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics and the span ring. Metric handles are
// registered once (GetOrCreate semantics, guarded by a mutex) and then
// updated lock-free; the name→metric map is copy-on-write so handle
// lookups and the exposition path never block updates.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex   // guards registration (map copy) only
	metrics atomic.Value // map[string]any — *Counter, *Gauge, or *Histogram
	// Spans is the frame-path span ring (span.go).
	Spans *SpanRing
}

// NewRegistry creates an enabled registry whose span ring holds spanCap
// entries (rounded up to a power of two; 0 picks a small default).
func NewRegistry(spanCap int) *Registry {
	r := &Registry{Spans: NewSpanRing(spanCap)}
	r.metrics.Store(map[string]any{})
	r.enabled.Store(true)
	r.Spans.on = &r.enabled
	return r
}

// SetEnabled turns all updates on or off. Disabled, every metric update
// and span record is one atomic load plus a branch.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether updates are recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

func (r *Registry) load() map[string]any { return r.metrics.Load().(map[string]any) }

// register returns the existing metric under name or inserts the one built
// by mk, copying the map so concurrent readers never see a partial write.
func (r *Registry) register(name string, mk func() any) any {
	if m, ok := r.load()[name]; ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.load()
	if m, ok := old[name]; ok {
		return m
	}
	m := mk()
	next := make(map[string]any, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = m
	r.metrics.Store(next)
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. Registering the same name as a different metric kind panics
// (programmer error, caught at startup).
func (r *Registry) Counter(name string) *Counter {
	m := r.register(name, func() any { return &Counter{on: &r.enabled} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.register(name, func() any { return &Gauge{on: &r.enabled} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds (an implicit +Inf bucket is
// appended). Buckets are fixed at registration; later calls ignore the
// argument and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.register(name, func() any { return newHistogram(&r.enabled, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter by n.
// A nil *Counter is a valid no-op handle, so optionally instrumented
// components can leave their handles nil instead of branching at each site.
func (c *Counter) Add(n int64) {
	if c != nil && c.on.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g.on.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations must be non-negative (latencies, sizes); quantile
// estimation interpolates linearly within the bucket containing the
// target rank.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64 // ascending upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(on *atomic.Bool, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{on: on, bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// bucketIndex is the index of the first bound >= v (binary search; the
// bucket lists are short enough that this is a few cache lines).
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !h.on.Load() {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0..1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank. When no finite estimate exists it returns a sentinel
// rather than a fabricated number: NaN for an empty histogram or one
// with no finite buckets (nothing to interpolate inside), and +Inf when
// the target rank lands in the +Inf overflow bucket (the true value is
// beyond the largest bound; reporting that bound would silently
// underestimate). Callers should math.IsNaN/math.IsInf-check before
// feeding the result into arithmetic.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: no finite upper bound to interpolate toward.
				return math.Inf(1)
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
	}
	return math.Inf(1)
}

// HistSnapshot is a consistent-enough copy of a histogram for reporting
// (individual loads are atomic; the snapshot as a whole is not).
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// WriteMetrics writes every registered metric in Prometheus text
// exposition format, sorted by name. Counters whose names end in _total
// are typed counter; histograms expose cumulative _bucket/_sum/_count
// series.
func (r *Registry) WriteMetrics(w io.Writer) {
	m := r.load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch v := m[name].(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Value())
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v.Value())
		case *Histogram:
			s := v.Snapshot()
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum int64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.Sum, name, s.Count)
		}
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// StageSet bundles per-stage latency histograms with span recording: one
// Done call per stage observes the stage's histogram
// (livo_stage_<name>_seconds) and appends a span to the registry's ring.
type StageSet struct {
	reg  *Registry
	hist [numStages]*Histogram
}

// NewStageSet registers (or re-resolves) the per-stage histograms on reg.
func NewStageSet(reg *Registry) *StageSet {
	ss := &StageSet{reg: reg}
	for st := Stage(0); st < numStages; st++ {
		ss.hist[st] = reg.Histogram("livo_stage_"+st.String()+"_seconds", LatencyBuckets)
	}
	return ss
}

// Done records that stage st of frame seq started at start and just
// finished: its latency lands in the stage histogram and the span ring.
func (ss *StageSet) Done(seq uint32, st Stage, start time.Time) {
	if !ss.reg.enabled.Load() {
		return
	}
	d := time.Since(start)
	ss.hist[st].Observe(d.Seconds())
	ss.reg.Spans.Record(seq, st, start.UnixNano(), int64(d))
}

// Hist returns the latency histogram for one stage (reporting).
func (ss *StageSet) Hist(st Stage) *Histogram { return ss.hist[st] }
