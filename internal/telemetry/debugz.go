package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// Handler returns an http.Handler exposing reg:
//
//	/debugz             human-readable overview: metrics, per-stage
//	                    latency quantiles, recent spans
//	/debugz/metrics     Prometheus text exposition
//	/debugz/spans.jsonl recent spans as JSONL (?n=COUNT, default 512)
//	/debug/vars         expvar
//	/debug/pprof/       pprof index (profile, heap, goroutine, ...)
func Handler(reg *Registry) http.Handler { return HandlerWith(reg, nil) }

// HandlerWith is Handler plus extra endpoints mounted at their map keys
// (e.g. "/debugz/frames", "/debugz/subscribers"); callers use it to hang
// subsystem-specific debug pages off one server without this package
// importing them. Extra paths are listed on the /debugz overview.
func HandlerWith(reg *Registry, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	extraPaths := make([]string, 0, len(extra))
	for path, h := range extra {
		mux.Handle(path, h)
		extraPaths = append(extraPaths, path)
	}
	sort.Strings(extraPaths)
	mux.HandleFunc("/debugz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeDebugz(w, reg, extraPaths)
	})
	mux.HandleFunc("/debugz/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteMetrics(w)
	})
	mux.HandleFunc("/debugz/spans.jsonl", func(w http.ResponseWriter, r *http.Request) {
		n := 512
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = reg.Spans.WriteJSONL(w, n)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeDebugz renders the human overview page.
func writeDebugz(w http.ResponseWriter, reg *Registry, extraPaths []string) {
	fmt.Fprintf(w, "livo /debugz — %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(w, "see also: /debugz/metrics /debugz/spans.jsonl /debug/vars /debug/pprof/")
	for _, p := range extraPaths {
		fmt.Fprintf(w, " %s", p)
	}
	fmt.Fprintf(w, "\n\n")

	fmt.Fprintf(w, "== stage latencies (s) ==\n")
	fmt.Fprintf(w, "%-16s %10s %10s %10s %10s\n", "stage", "count", "p50", "p99", "mean")
	m := reg.load()
	for st := Stage(0); st < numStages; st++ {
		h, ok := m["livo_stage_"+st.String()+"_seconds"].(*Histogram)
		if !ok || h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %10d %10.4g %10.4g %10.4g\n",
			st.String(), h.Count(), h.Quantile(0.5), h.Quantile(0.99),
			h.Sum()/float64(h.Count()))
	}

	fmt.Fprintf(w, "\n== counters & gauges ==\n")
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch v := m[name].(type) {
		case *Counter:
			fmt.Fprintf(w, "%-40s %d\n", name, v.Value())
		case *Gauge:
			fmt.Fprintf(w, "%-40s %g\n", name, v.Value())
		}
	}

	fmt.Fprintf(w, "\n== recent spans (newest last, %d recorded) ==\n", reg.Spans.Recorded())
	for _, sp := range reg.Spans.Recent(64) {
		fmt.Fprintf(w, "seq=%-6d %-14s start=%s dur=%s\n",
			sp.Seq, sp.Stage.String(),
			time.Unix(0, sp.StartNs).Format("15:04:05.000"),
			time.Duration(sp.DurNs).Round(time.Microsecond))
	}
}

// ServeDebug starts the debug endpoint on addr (e.g. "127.0.0.1:6060") in
// a background goroutine and returns the server plus the bound address
// (useful with port 0). Close the returned server to stop it.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	return ServeDebugWith(addr, reg, nil)
}

// ServeDebugWith is ServeDebug with extra endpoints (see HandlerWith).
func ServeDebugWith(addr string, reg *Registry, extra map[string]http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(reg, extra)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
