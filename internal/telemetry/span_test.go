package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func nowForTest() time.Time { return time.Now().Add(-time.Millisecond) }

func TestSpanRingBasics(t *testing.T) {
	r := NewSpanRing(64)
	for i := 0; i < 10; i++ {
		r.Record(uint32(i), StageTile, int64(i*1000), 10)
	}
	spans := r.Recent(5)
	if len(spans) != 5 {
		t.Fatalf("Recent(5) returned %d spans", len(spans))
	}
	// Oldest first: sequences 5..9.
	for i, sp := range spans {
		if sp.Seq != uint32(5+i) {
			t.Fatalf("span %d has seq %d, want %d", i, sp.Seq, 5+i)
		}
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", r.Recorded())
	}
}

// TestSpanRingWraparound overfills the ring several times over and checks
// that exactly the newest Cap() spans survive, in order.
func TestSpanRingWraparound(t *testing.T) {
	r := NewSpanRing(64)
	capN := r.Cap()
	total := capN*3 + 17
	for i := 0; i < total; i++ {
		r.Record(uint32(i), StageSend, int64(i), int64(i))
	}
	spans := r.Recent(total) // asks for more than capacity
	if len(spans) != capN {
		t.Fatalf("after wraparound Recent returned %d spans, want %d", len(spans), capN)
	}
	for i, sp := range spans {
		want := uint32(total - capN + i)
		if sp.Seq != want {
			t.Fatalf("span %d has seq %d, want %d", i, sp.Seq, want)
		}
		if sp.StartNs != int64(want) || sp.DurNs != int64(want) {
			t.Fatalf("span %d fields torn: %+v", i, sp)
		}
	}
}

// TestSpanRingConcurrent records from many goroutines while a reader
// drains; under -race this validates the atomic slot protocol. Torn slots
// must be skipped, never returned with mixed fields.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(128)
	const workers = 8
	const per = 5000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range r.Recent(64) {
				// Writers encode seq into start and dur; a torn slot would
				// mix values from two spans.
				if sp.StartNs != int64(sp.Seq) || sp.DurNs != int64(sp.Seq) {
					t.Errorf("torn span: %+v", sp)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				seq := uint32(w*per + i)
				r.Record(seq, StageRecv, int64(seq), int64(seq))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readerDone.Wait()
	if r.Recorded() != uint64(workers*per) {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), workers*per)
	}
}

// TestSpanRingTicketValidationAtWrap reads the full ring while writers
// continuously wrap it, exercising the ticket check against slots from
// a previous lap: a slot whose ticket belongs to an older lap (or is 0,
// mid-rewrite) must be skipped, so every span a reader gets back is
// untorn and each Recent batch is strictly ordered with no stale
// resurrections. Run with -race.
func TestSpanRingTicketValidationAtWrap(t *testing.T) {
	r := NewSpanRing(64) // small ring so every reader pass races a wrap
	const workers = 4
	const per = 20000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readerDone.Add(1)
		go func() {
			defer readerDone.Done()
			for {
				spans := r.Recent(r.Cap())
				prev := int64(-1)
				for _, sp := range spans {
					if sp.StartNs != int64(sp.Seq)*7 || sp.DurNs != int64(sp.Seq)+3 {
						t.Errorf("torn span at wrap: %+v", sp)
						return
					}
					// Recent walks slot indices oldest→newest; a slot
					// holding a previous lap's ticket that slipped through
					// would appear here with an out-of-order start time.
					if int64(sp.StartNs) <= prev-int64(r.Cap()*workers)*7 {
						t.Errorf("stale lap resurfaced: start=%d after %d", sp.StartNs, prev)
						return
					}
					prev = sp.StartNs
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				seq := uint32(w*per + i)
				r.Record(seq, StageJitter, int64(seq)*7, int64(seq)+3)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readerDone.Wait()
	if r.Recorded() != uint64(workers*per) {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), workers*per)
	}
	// After writers stop the ring is quiescent: a full read must return
	// every slot (all tickets valid for the final lap).
	if got := len(r.Recent(r.Cap())); got != r.Cap() {
		t.Fatalf("quiescent full read returned %d spans, want %d", got, r.Cap())
	}
}

func TestSpanRingJSONL(t *testing.T) {
	r := NewSpanRing(64)
	r.Record(1, StageDecodeColor, 100, 200)
	r.Record(2, StageReconstruct, 300, 400)
	var sb strings.Builder
	if err := r.WriteJSONL(&sb, 10); err != nil {
		t.Fatal(err)
	}
	want := "{\"seq\":1,\"stage\":\"decode_color\",\"start_ns\":100,\"dur_ns\":200}\n" +
		"{\"seq\":2,\"stage\":\"reconstruct\",\"start_ns\":300,\"dur_ns\":400}\n"
	if sb.String() != want {
		t.Fatalf("JSONL dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSpanRingDisabled(t *testing.T) {
	reg := NewRegistry(64)
	reg.SetEnabled(false)
	reg.Spans.Record(1, StageSend, 1, 1)
	if reg.Spans.Recorded() != 0 {
		t.Fatal("disabled registry recorded a span")
	}
}
