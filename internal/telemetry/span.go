package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Span is one timed hop of one frame through the pipeline.
type Span struct {
	Seq     uint32 // frame sequence number
	Stage   Stage
	StartNs int64 // wall-clock start, unix nanoseconds
	DurNs   int64 // duration in nanoseconds
}

// spanSlot is one ring entry. All fields are atomics so concurrent
// record/read is race-free; ticket is the publication word: 0 while a
// writer owns the slot, ticket index+1 once the fields are consistent.
// A reader validates ticket before and after copying the fields; a slot
// republished with the same ticket between the two reads would require a
// full ring of concurrent writes mid-copy, which debug telemetry
// tolerates.
type spanSlot struct {
	ticket atomic.Uint64
	meta   atomic.Uint64 // seq<<32 | stage
	start  atomic.Int64
	dur    atomic.Int64
}

// SpanRing is a fixed-capacity lock-free ring of the most recent spans.
// Writers claim a slot with one atomic increment and publish with atomic
// stores; wraparound overwrites the oldest entries. Readers (the /debugz
// dump) never block writers.
type SpanRing struct {
	slots []spanSlot
	mask  uint64
	next  atomic.Uint64
	on    *atomic.Bool // shared with the owning registry; nil means always on
}

// NewSpanRing creates a ring with at least capacity entries (rounded up
// to a power of two; minimum 64).
func NewSpanRing(capacity int) *SpanRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &SpanRing{slots: make([]spanSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Recorded returns how many spans have ever been recorded (≥ Cap means
// the ring has wrapped).
func (r *SpanRing) Recorded() uint64 { return r.next.Load() }

// Record appends one span, overwriting the oldest entry once full.
func (r *SpanRing) Record(seq uint32, stage Stage, startNs, durNs int64) {
	if r.on != nil && !r.on.Load() {
		return
	}
	i := r.next.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.ticket.Store(0) // invalidate while rewriting
	s.meta.Store(uint64(seq)<<32 | uint64(stage))
	s.start.Store(startNs)
	s.dur.Store(durNs)
	s.ticket.Store(i + 1)
}

// Recent returns up to n of the most recent spans, oldest first. Slots
// concurrently being rewritten are skipped.
func (r *SpanRing) Recent(n int) []Span {
	cur := r.next.Load()
	if n <= 0 || cur == 0 {
		return nil
	}
	if uint64(n) > cur {
		n = int(cur)
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	out := make([]Span, 0, n)
	for i := cur - uint64(n); i < cur; i++ {
		s := &r.slots[i&r.mask]
		if s.ticket.Load() != i+1 {
			continue
		}
		meta, start, dur := s.meta.Load(), s.start.Load(), s.dur.Load()
		if s.ticket.Load() != i+1 {
			continue // rewritten mid-copy
		}
		out = append(out, Span{
			Seq:     uint32(meta >> 32),
			Stage:   Stage(meta & 0xff),
			StartNs: start,
			DurNs:   dur,
		})
	}
	return out
}

// WriteJSONL dumps up to n recent spans as one JSON object per line,
// oldest first.
func (r *SpanRing) WriteJSONL(w io.Writer, n int) error {
	for _, sp := range r.Recent(n) {
		_, err := fmt.Fprintf(w, "{\"seq\":%d,\"stage\":%q,\"start_ns\":%d,\"dur_ns\":%d}\n",
			sp.Seq, sp.Stage.String(), sp.StartNs, sp.DurNs)
		if err != nil {
			return err
		}
	}
	return nil
}
