package frametrace

import (
	"sync"
	"testing"
)

// TestNilSafe checks that a nil ledger and a nil event ring accept the
// full API as no-ops, which is how tracing is disabled.
func TestNilSafe(t *testing.T) {
	var l *Ledger
	l.Stamp(HopCapture, 0, 1, NoSub, 123)
	l.StampNow(HopCapture, 0, 1, NoSub)
	if l.Recent(10) != nil || l.Recorded() != 0 || l.Cap() != 0 || l.Node() != "" {
		t.Fatal("nil ledger should be inert")
	}
	var r *EventRing
	r.Add(EvPLI, 0, 0, NoSub, 0)
	if r.Recent(10) != nil || r.Recorded() != 0 || r.Cap() != 0 {
		t.Fatal("nil event ring should be inert")
	}
}

// TestLedgerRoundTrip checks that stamps survive the ring with all
// fields intact, including the packed hop/stream/sub encoding.
func TestLedgerRoundTrip(t *testing.T) {
	l := NewLedger("sender", 64)
	l.Stamp(HopSubDrain, 2, 0xdeadbeef, 37, -42)
	got := l.Recent(1)
	if len(got) != 1 {
		t.Fatalf("Recent: got %d stamps, want 1", len(got))
	}
	want := Stamp{Seq: 0xdeadbeef, Hop: HopSubDrain, Stream: 2, Sub: 37, TimeNs: -42}
	if got[0] != want {
		t.Fatalf("round trip: got %+v, want %+v", got[0], want)
	}
	if l.Node() != "sender" {
		t.Fatalf("Node: got %q", l.Node())
	}
}

// TestLedgerWraparound fills the ring several times over and checks that
// Recent returns exactly the newest window in order.
func TestLedgerWraparound(t *testing.T) {
	l := NewLedger("x", 64)
	if l.Cap() != 64 {
		t.Fatalf("cap: got %d, want 64", l.Cap())
	}
	const total = 64*3 + 17
	for i := 0; i < total; i++ {
		l.Stamp(HopWire, 0, uint32(i), NoSub, int64(i))
	}
	if l.Recorded() != total {
		t.Fatalf("recorded: got %d, want %d", l.Recorded(), total)
	}
	got := l.Recent(1000)
	if len(got) != 64 {
		t.Fatalf("Recent after wrap: got %d, want 64", len(got))
	}
	for i, st := range got {
		wantSeq := uint32(total - 64 + i)
		if st.Seq != wantSeq || st.TimeNs != int64(wantSeq) {
			t.Fatalf("slot %d: got seq=%d t=%d, want %d", i, st.Seq, st.TimeNs, wantSeq)
		}
	}
}

// TestLedgerConcurrent hammers one ledger from several writers across
// many wraps while readers drain it, and checks every stamp a reader
// sees is internally consistent (TimeNs encodes the seq). Run with
// -race to exercise the ticket-validation path.
func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger("x", 128)
	const writers, perWriter = 4, 4096
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := uint32(w*perWriter + i)
				l.Stamp(HopJitter, uint8(w), seq, int32(w), int64(seq)*3+1)
			}
		}(w)
	}
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			for _, st := range l.Recent(128) {
				if st.TimeNs != int64(st.Seq)*3+1 {
					t.Errorf("torn stamp: seq=%d t=%d", st.Seq, st.TimeNs)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWg.Wait()
	if l.Recorded() != writers*perWriter {
		t.Fatalf("recorded: got %d, want %d", l.Recorded(), writers*perWriter)
	}
}

// TestEventRing checks event round-trip and wraparound.
func TestEventRing(t *testing.T) {
	r := NewEventRing(1)
	if r.Cap() != 64 {
		t.Fatalf("cap: got %d, want minimum 64", r.Cap())
	}
	r.Add(EvFrameDrop, 1, 99, 5, int64(DropDelta))
	r.Add(EvREMB, 0, 0, NoSub, 4_000_000)
	got := r.Recent(10)
	if len(got) != 2 {
		t.Fatalf("Recent: got %d events", len(got))
	}
	if got[0].Kind != EvFrameDrop || got[0].Seq != 99 || got[0].Sub != 5 ||
		DropReason(got[0].Val) != DropDelta || got[0].Stream != 1 {
		t.Fatalf("drop event: got %+v", got[0])
	}
	if got[1].Kind != EvREMB || got[1].Val != 4_000_000 || got[1].Sub != NoSub {
		t.Fatalf("remb event: got %+v", got[1])
	}
	for i := 0; i < 200; i++ {
		r.Add(EvRetxHit, 0, uint32(i), 0, 0)
	}
	if n := len(r.Recent(1000)); n != 64 {
		t.Fatalf("after wrap: got %d events, want 64", n)
	}
}

// TestHopAndEventNames pins the string tables to the hop/kind order.
func TestHopAndEventNames(t *testing.T) {
	for h := Hop(0); int(h) < NumHops; h++ {
		if h.String() == "hop?" || h.String() == "" {
			t.Fatalf("hop %d has no name", h)
		}
	}
	if HopCapture.String() != "capture" || HopReconstruct.String() != "reconstruct" {
		t.Fatal("hop name table out of order")
	}
	for k := EventKind(0); int(k) < NumEventKinds; k++ {
		if k.String() == "event?" || k.String() == "" {
			t.Fatalf("event kind %d has no name", k)
		}
	}
	if Hop(200).String() != "hop?" || EventKind(200).String() != "event?" {
		t.Fatal("out-of-range names should be sentinels")
	}
}
