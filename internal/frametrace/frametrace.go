// Package frametrace is a cross-process frame lifecycle ledger: every
// layer a frame passes through — capture, encode, packetize, relay
// ingest, shard route, subscriber queue, wire, jitter buffer, decode,
// reconstruct — stamps the frame's arrival at that hop into a fixed-size
// lock-free ring, and a collector merges the sender, relay, and receiver
// ledgers into one timeline per frame. The decomposition report built
// from those timelines (per-stage p50/p99, stage sums reconciled against
// end-to-end) is the latency breakdown the paper's evaluation hinges on.
//
// The hot path is allocation-free: a stamp is one atomic increment plus
// four atomic stores, and a nil *Ledger is a no-op so call sites need no
// enable branches of their own. Storage follows telemetry.SpanRing's
// ticket-publication scheme: writers invalidate a slot's ticket, rewrite
// the fields, then republish; readers validate the ticket before and
// after copying.
package frametrace

import (
	"sync/atomic"
	"time"
)

// Hop identifies one pipeline layer a frame passes through, in pipeline
// order. Color and depth encode/decode are separate hops because they
// run concurrently; the merge takes the later of the two.
type Hop uint8

const (
	HopCapture Hop = iota
	HopEncodeColor
	HopEncodeDepth
	HopPacketize
	HopRelayIngest // relay read a frame's first fragment off the socket
	HopShardRoute  // ingest shard reached this subscriber in its fan-out
	HopSubEnqueue  // admitted to one subscriber's queue
	HopSubDrain    // popped from that queue by a writer worker
	HopWire        // receiver read the first fragment off the socket
	HopJitter      // jitter buffer released the assembled frame
	HopDecodeColor
	HopDecodeDepth
	HopReconstruct
	NumHops int = iota
)

var hopNames = [NumHops]string{
	"capture", "encode_color", "encode_depth", "packetize",
	"relay_ingest", "shard_route", "sub_enqueue", "sub_drain",
	"wire", "jitter", "decode_color", "decode_depth", "reconstruct",
}

func (h Hop) String() string {
	if int(h) < NumHops {
		return hopNames[h]
	}
	return "hop?"
}

// Stamp records that one frame reached one hop at one instant.
type Stamp struct {
	Seq    uint32 // frame sequence number
	Hop    Hop
	Stream uint8 // transport stream id; 0 when the hop is stream-agnostic
	Sub    int32 // subscriber id for per-subscriber hops; -1 otherwise
	TimeNs int64 // ledger-local clock, nanoseconds
}

// NoSub marks a stamp that is not tied to one subscriber.
const NoSub int32 = -1

// slot is one ring entry; see telemetry.spanSlot for the ticket scheme.
type slot struct {
	ticket atomic.Uint64
	meta   atomic.Uint64 // seq<<32 | hop<<8 | stream
	sub    atomic.Int64
	t      atomic.Int64
}

// Ledger is one process's fixed-capacity ring of hop stamps. A nil
// *Ledger is valid and ignores all stamps, so tracing is enabled by
// plumbing a ledger in and disabled by leaving it nil.
type Ledger struct {
	node  string
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// NewLedger creates a ledger with at least capacity slots (rounded up to
// a power of two; minimum 64). node labels the process in merged dumps
// ("sender", "relay", "receiver").
func NewLedger(node string, capacity int) *Ledger {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Ledger{node: node, slots: make([]slot, n), mask: uint64(n - 1)}
}

// Node returns the ledger's process label.
func (l *Ledger) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// Cap returns the ring capacity; 0 for a nil ledger.
func (l *Ledger) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Recorded returns how many stamps have ever been recorded (≥ Cap means
// the ring has wrapped).
func (l *Ledger) Recorded() uint64 {
	if l == nil {
		return 0
	}
	return l.next.Load()
}

// Stamp records that frame seq reached hop at tNs on the ledger's clock.
// Safe for concurrent use; free of allocations; a no-op on nil.
func (l *Ledger) Stamp(hop Hop, stream uint8, seq uint32, sub int32, tNs int64) {
	if l == nil {
		return
	}
	i := l.next.Add(1) - 1
	s := &l.slots[i&l.mask]
	s.ticket.Store(0) // invalidate while rewriting
	s.meta.Store(uint64(seq)<<32 | uint64(hop)<<8 | uint64(stream))
	s.sub.Store(int64(sub))
	s.t.Store(tNs)
	s.ticket.Store(i + 1)
}

// StampNow is Stamp at time.Now().UnixNano() — the common case for
// wall-clock processes. Harnesses running on a simulated clock pass
// their own time to Stamp instead.
func (l *Ledger) StampNow(hop Hop, stream uint8, seq uint32, sub int32) {
	if l == nil {
		return
	}
	l.Stamp(hop, stream, seq, sub, time.Now().UnixNano())
}

// Recent returns up to n of the most recent stamps, oldest first. Slots
// concurrently being rewritten are skipped.
func (l *Ledger) Recent(n int) []Stamp {
	if l == nil {
		return nil
	}
	cur := l.next.Load()
	if n <= 0 || cur == 0 {
		return nil
	}
	if uint64(n) > cur {
		n = int(cur)
	}
	if n > len(l.slots) {
		n = len(l.slots)
	}
	out := make([]Stamp, 0, n)
	for i := cur - uint64(n); i < cur; i++ {
		s := &l.slots[i&l.mask]
		if s.ticket.Load() != i+1 {
			continue
		}
		meta, sub, t := s.meta.Load(), s.sub.Load(), s.t.Load()
		if s.ticket.Load() != i+1 {
			continue // rewritten mid-copy
		}
		out = append(out, Stamp{
			Seq:    uint32(meta >> 32),
			Hop:    Hop(meta >> 8 & 0xff),
			Stream: uint8(meta & 0xff),
			Sub:    int32(sub),
			TimeNs: t,
		})
	}
	return out
}
