package frametrace

import (
	"math"
	"sort"
)

// FrameTimeline is one frame's merged hop times on a common clock. A hop
// is present when its bit in Has is set; hops a frame reaches on several
// streams (color and depth both cross the wire) keep the latest time —
// the frame has cleared a hop only once its last stream has.
type FrameTimeline struct {
	Seq uint32
	T   [NumHops]int64
	Has uint32 // bit h set when T[h] is valid
}

// Get returns the frame's time at hop h and whether it was stamped.
func (tl *FrameTimeline) Get(h Hop) (int64, bool) {
	return tl.T[h], tl.Has&(1<<uint(h)) != 0
}

func (tl *FrameTimeline) set(h Hop, t int64) {
	if tl.Has&(1<<uint(h)) == 0 || t > tl.T[h] {
		tl.T[h] = t
	}
	tl.Has |= 1 << uint(h)
}

// Complete reports whether every hop in hops was stamped.
func (tl *FrameTimeline) Complete(hops []Hop) bool {
	for _, h := range hops {
		if tl.Has&(1<<uint(h)) == 0 {
			return false
		}
	}
	return true
}

// Collector merges per-process ledgers onto one clock. Each ledger is
// added with the offset that maps its clock to the collector's reference
// clock (referenceNs = ledgerNs + offsetNs); in-process harnesses share
// one clock and pass 0, cross-host merges estimate it with
// EstimateOffset from Packet.SendTimeUs echoes.
type Collector struct {
	ledgers []collectorEntry
}

type collectorEntry struct {
	led    *Ledger
	offset int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add registers a ledger with its clock offset. Nil ledgers are ignored.
func (c *Collector) Add(l *Ledger, offsetNs int64) {
	if l == nil {
		return
	}
	c.ledgers = append(c.ledgers, collectorEntry{led: l, offset: offsetNs})
}

// Merge drains every ledger's retained stamps and groups them into one
// timeline per frame sequence, ordered by sequence. Per-subscriber hops
// (sub_enqueue, sub_drain) keep only stamps for subscriber sub so the
// timeline follows one frame to one viewer; pass NoSub to accept any.
func (c *Collector) Merge(sub int32) []FrameTimeline {
	bySeq := make(map[uint32]*FrameTimeline)
	for _, e := range c.ledgers {
		for _, st := range e.led.Recent(e.led.Cap()) {
			if st.Sub != NoSub && sub != NoSub && st.Sub != sub {
				continue
			}
			tl := bySeq[st.Seq]
			if tl == nil {
				tl = &FrameTimeline{Seq: st.Seq}
				bySeq[st.Seq] = tl
			}
			tl.set(st.Hop, st.TimeNs+e.offset)
		}
	}
	out := make([]FrameTimeline, 0, len(bySeq))
	for _, tl := range bySeq {
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EstimateOffset estimates the receiver-minus-sender clock offset from
// paired (send, receive) timestamps of the same packets using the
// one-way-delay minimum: offset ≈ min(recv − send), which attributes the
// smallest observed gap entirely to clock skew and treats the rest as
// network delay. The estimate is biased high by the true minimum one-way
// delay — exact only on a shared clock — but is stable and monotone
// stages tolerate the constant shift. Returns 0 when no pairs are given.
func EstimateOffset(sendNs, recvNs []int64) int64 {
	n := len(sendNs)
	if len(recvNs) < n {
		n = len(recvNs)
	}
	if n == 0 {
		return 0
	}
	min := recvNs[0] - sendNs[0]
	for i := 1; i < n; i++ {
		if d := recvNs[i] - sendNs[i]; d < min {
			min = d
		}
	}
	return min
}

// stageDef is one decomposition stage: the time from hop from to hop to.
// Virtual endpoints vEncode/vDecode take the later of the color/depth
// pair, matching how the receiver can only proceed once both are done.
type stageDef struct {
	Name     string
	From, To Hop
}

const (
	vEncode Hop = Hop(NumHops) + iota // max(encode_color, encode_depth)
	vDecode                           // max(decode_color, decode_depth)
)

// Stages is the canonical capture→render decomposition, in order. Each
// stage's duration is the gap between consecutive chain points, so over
// any frame with a complete timeline the stage durations telescope to
// exactly the end-to-end latency.
var Stages = []stageDef{
	{"encode", HopCapture, vEncode},
	{"packetize", vEncode, HopPacketize},
	{"uplink", HopPacketize, HopRelayIngest},       // pacing + sender→relay wire
	{"shard_route", HopRelayIngest, HopShardRoute}, // ingest ring wait
	{"fanout", HopShardRoute, HopSubEnqueue},
	{"queue_wait", HopSubEnqueue, HopSubDrain}, // subscriber queue residency
	{"downlink", HopSubDrain, HopWire},         // batch write + relay→receiver wire
	{"jitter_wait", HopWire, HopJitter},        // assembly + playout delay
	{"decode", HopJitter, vDecode},
	{"reconstruct", vDecode, HopReconstruct},
}

// chainPoint resolves a (possibly virtual) chain endpoint on a timeline.
func chainPoint(tl *FrameTimeline, h Hop) (int64, bool) {
	switch h {
	case vEncode:
		return pairMax(tl, HopEncodeColor, HopEncodeDepth)
	case vDecode:
		return pairMax(tl, HopDecodeColor, HopDecodeDepth)
	default:
		return tl.Get(h)
	}
}

func pairMax(tl *FrameTimeline, a, b Hop) (int64, bool) {
	ta, oka := tl.Get(a)
	tb, okb := tl.Get(b)
	switch {
	case oka && okb:
		if tb > ta {
			return tb, true
		}
		return ta, true
	case oka:
		return ta, true
	case okb:
		return tb, true
	}
	return 0, false
}

// StageStat summarizes one stage's per-frame durations.
type StageStat struct {
	Name   string  `json:"stage"`
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Report is the paper-style latency decomposition over a set of merged
// frame timelines.
type Report struct {
	Frames   int `json:"frames"`          // timelines considered
	Complete int `json:"complete_frames"` // frames with every chain point stamped
	// Stages holds per-stage stats over every frame where both stage
	// endpoints were stamped; EndToEnd is capture→reconstruct.
	Stages   []StageStat `json:"stages"`
	EndToEnd StageStat   `json:"end_to_end"`
	// Reconciliation over complete frames: the mean of per-frame stage
	// sums against the mean measured end-to-end latency. Telescoping
	// makes these agree exactly up to rounding; a large ReconcilePct
	// means a hop is stamped out of order or on the wrong clock.
	StageSumMeanMs float64 `json:"stage_sum_mean_ms"`
	ReconcilePct   float64 `json:"reconcile_pct"`
}

// Decompose computes the latency decomposition for merged timelines.
func Decompose(tls []FrameTimeline) Report {
	rep := Report{Frames: len(tls)}
	perStage := make([][]float64, len(Stages))
	var e2e []float64
	var sumStages, sumE2E float64
	for i := range tls {
		tl := &tls[i]
		complete := true
		var frameSum float64
		for si, sd := range Stages {
			from, okF := chainPoint(tl, sd.From)
			to, okT := chainPoint(tl, sd.To)
			if !okF || !okT {
				complete = false
				continue
			}
			d := float64(to-from) / 1e6
			perStage[si] = append(perStage[si], d)
			frameSum += d
		}
		cap0, okC := tl.Get(HopCapture)
		rec, okR := tl.Get(HopReconstruct)
		if okC && okR {
			e2e = append(e2e, float64(rec-cap0)/1e6)
		}
		if complete && okC && okR {
			rep.Complete++
			sumStages += frameSum
			sumE2E += float64(rec-cap0) / 1e6
		}
	}
	for si, sd := range Stages {
		rep.Stages = append(rep.Stages, stageStat(sd.Name, perStage[si]))
	}
	rep.EndToEnd = stageStat("end_to_end", e2e)
	if rep.Complete > 0 {
		rep.StageSumMeanMs = sumStages / float64(rep.Complete)
		meanE2E := sumE2E / float64(rep.Complete)
		if meanE2E != 0 {
			rep.ReconcilePct = math.Abs(rep.StageSumMeanMs-meanE2E) / meanE2E * 100
		}
	}
	return rep
}

func stageStat(name string, ds []float64) StageStat {
	st := StageStat{Name: name, Count: len(ds)}
	if len(ds) == 0 {
		return st
	}
	sorted := append([]float64(nil), ds...)
	sort.Float64s(sorted)
	var sum float64
	for _, d := range ds {
		sum += d
	}
	st.P50Ms = pct(sorted, 0.50)
	st.P99Ms = pct(sorted, 0.99)
	st.MeanMs = sum / float64(len(ds))
	return st
}

// pct returns the q-quantile of a sorted slice (nearest-rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
