package frametrace

import (
	"sync/atomic"
	"time"
)

// EventKind classifies one structured data-plane event.
type EventKind uint8

const (
	EvFrameDrop     EventKind = iota // subscriber queue dropped a frame; Val is a DropReason
	EvPLI                            // PLI forwarded to the sender
	EvLivenessEvict                  // subscriber evicted for silence; Val is silence ns
	EvRetxHit                        // NACK served from the retransmission cache
	EvRetxMiss                       // NACK escalated to the sender
	EvREMB                           // forwarded REMB minimum changed; Val is bps
	EvRungSwitch                     // subscriber rung switch committed; Val is RungSwitchVal
	NumEventKinds   int       = iota
)

var eventNames = [NumEventKinds]string{
	"frame_drop", "pli", "liveness_evict", "retx_hit", "retx_miss", "remb",
	"rung_switch",
}

func (k EventKind) String() string {
	if int(k) < NumEventKinds {
		return eventNames[k]
	}
	return "event?"
}

// DropReason says why a subscriber queue dropped a frame; carried in
// EvFrameDrop's Val field.
type DropReason int64

const (
	DropReject DropReason = iota // ring full, nothing evictable
	DropDelta                    // delta frame evicted to admit a newer frame
	DropKey                      // key frame evicted to admit a newer key frame
)

func (r DropReason) String() string {
	switch r {
	case DropReject:
		return "reject"
	case DropDelta:
		return "evict_delta"
	case DropKey:
		return "evict_key"
	}
	return "drop?"
}

// RungSwitchVal packs a rung switch's context into an event Val: the old
// and new rung ids plus the REMB estimate (bps) that triggered the
// reassignment.
func RungSwitchVal(oldRung, newRung uint8, rembBps int64) int64 {
	return rembBps<<16 | int64(oldRung)<<8 | int64(newRung)
}

// UnpackRungSwitch is the inverse of RungSwitchVal.
func UnpackRungSwitch(v int64) (oldRung, newRung uint8, rembBps int64) {
	return uint8(v >> 8), uint8(v), v >> 16
}

// Event is one recorded data-plane event.
type Event struct {
	Kind   EventKind
	Stream uint8
	Seq    uint32 // frame or packet sequence the event concerns; 0 if none
	Sub    int32  // subscriber id; -1 if not tied to one subscriber
	Val    int64  // kind-specific value (drop reason, bps, ns)
	TimeNs int64
}

// eventSlot follows the same ticket-publication scheme as Ledger slots.
type eventSlot struct {
	ticket atomic.Uint64
	meta   atomic.Uint64 // seq<<32 | kind<<8 | stream
	sub    atomic.Int64
	val    atomic.Int64
	t      atomic.Int64
}

// EventRing is a fixed-capacity lock-free ring of recent data-plane
// events. A nil *EventRing ignores all events.
type EventRing struct {
	slots []eventSlot
	mask  uint64
	next  atomic.Uint64
}

// NewEventRing creates a ring with at least capacity entries (rounded up
// to a power of two; minimum 64).
func NewEventRing(capacity int) *EventRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &EventRing{slots: make([]eventSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity; 0 for a nil ring.
func (r *EventRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns how many events have ever been recorded.
func (r *EventRing) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Add records one event at time.Now(). Safe for concurrent use; free of
// allocations; a no-op on nil.
func (r *EventRing) Add(kind EventKind, stream uint8, seq uint32, sub int32, val int64) {
	if r == nil {
		return
	}
	i := r.next.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.ticket.Store(0)
	s.meta.Store(uint64(seq)<<32 | uint64(kind)<<8 | uint64(stream))
	s.sub.Store(int64(sub))
	s.val.Store(val)
	s.t.Store(time.Now().UnixNano())
	s.ticket.Store(i + 1)
}

// Recent returns up to n of the most recent events, oldest first.
func (r *EventRing) Recent(n int) []Event {
	if r == nil {
		return nil
	}
	cur := r.next.Load()
	if n <= 0 || cur == 0 {
		return nil
	}
	if uint64(n) > cur {
		n = int(cur)
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	out := make([]Event, 0, n)
	for i := cur - uint64(n); i < cur; i++ {
		s := &r.slots[i&r.mask]
		if s.ticket.Load() != i+1 {
			continue
		}
		meta, sub, val, t := s.meta.Load(), s.sub.Load(), s.val.Load(), s.t.Load()
		if s.ticket.Load() != i+1 {
			continue
		}
		out = append(out, Event{
			Kind:   EventKind(meta >> 8 & 0xff),
			Stream: uint8(meta & 0xff),
			Seq:    uint32(meta >> 32),
			Sub:    int32(sub),
			Val:    val,
			TimeNs: t,
		})
	}
	return out
}
