package frametrace

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteTimelinesJSONL writes merged timelines one JSON object per line:
//
//	{"seq":12,"hops":{"capture":...,"encode_color":...},"e2e_ms":4.1}
//
// Hop times are nanoseconds on the collector's reference clock; e2e_ms
// is present when both capture and reconstruct were stamped.
func WriteTimelinesJSONL(w io.Writer, tls []FrameTimeline) error {
	for i := range tls {
		tl := &tls[i]
		if _, err := fmt.Fprintf(w, "{\"seq\":%d,\"hops\":{", tl.Seq); err != nil {
			return err
		}
		first := true
		for h := Hop(0); int(h) < NumHops; h++ {
			t, ok := tl.Get(h)
			if !ok {
				continue
			}
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			if _, err := fmt.Fprintf(w, "%q:%d", h.String(), t); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
		if cap0, ok := tl.Get(HopCapture); ok {
			if rec, ok := tl.Get(HopReconstruct); ok {
				if _, err := fmt.Fprintf(w, ",\"e2e_ms\":%.3f", float64(rec-cap0)/1e6); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsJSONL writes up to n recent events one JSON object per
// line, oldest first.
func WriteEventsJSONL(w io.Writer, r *EventRing, n int) error {
	for _, ev := range r.Recent(n) {
		var err error
		if ev.Kind == EvFrameDrop {
			_, err = fmt.Fprintf(w,
				"{\"event\":%q,\"reason\":%q,\"stream\":%d,\"seq\":%d,\"sub\":%d,\"t_ns\":%d}\n",
				ev.Kind.String(), DropReason(ev.Val).String(), ev.Stream, ev.Seq, ev.Sub, ev.TimeNs)
		} else {
			_, err = fmt.Fprintf(w,
				"{\"event\":%q,\"stream\":%d,\"seq\":%d,\"sub\":%d,\"val\":%d,\"t_ns\":%d}\n",
				ev.Kind.String(), ev.Stream, ev.Seq, ev.Sub, ev.Val, ev.TimeNs)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// queryN parses ?n=COUNT with a default.
func queryN(r *http.Request, def int) int {
	if v := r.URL.Query().Get("n"); v != "" {
		if p, err := strconv.Atoi(v); err == nil && p > 0 {
			return p
		}
	}
	return def
}

// FramesHandler serves the ledger's retained stamps merged into
// per-frame timelines as JSONL (?n= caps the number of frames, newest
// kept; ?sub= follows one subscriber through the per-subscriber hops).
// Intended to be mounted as /debugz/frames.
func FramesHandler(l *Ledger) http.Handler {
	return framesHandler(func() *Collector {
		c := NewCollector()
		c.Add(l, 0)
		return c
	})
}

// MergedFramesHandler is FramesHandler over several ledgers sharing one
// clock (in-process sender + relay + receiver).
func MergedFramesHandler(ledgers ...*Ledger) http.Handler {
	return framesHandler(func() *Collector {
		c := NewCollector()
		for _, l := range ledgers {
			c.Add(l, 0)
		}
		return c
	})
}

func framesHandler(mk func() *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sub := NoSub
		if v := r.URL.Query().Get("sub"); v != "" {
			if p, err := strconv.Atoi(v); err == nil {
				sub = int32(p)
			}
		}
		tls := mk().Merge(sub)
		if n := queryN(r, 64); len(tls) > n {
			tls = tls[len(tls)-n:]
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = WriteTimelinesJSONL(w, tls)
	})
}

// EventsHandler serves recent data-plane events as JSONL (?n=COUNT,
// default 256). Intended to be mounted as /debugz/events.
func EventsHandler(ring *EventRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = WriteEventsJSONL(w, ring, queryN(r, 256))
	})
}
