package frametrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// stampChain writes a full synthetic pipeline for frame seq across three
// ledgers: every hop lands 1 ms after the previous one on each ledger's
// local clock, with the relay and receiver clocks shifted by their
// (negated) offsets so a correct merge reproduces the reference times.
func stampChain(send, relay, recv *Ledger, seq uint32, baseNs, stepNs, relayOff, recvOff int64) {
	t := baseNs
	next := func() int64 { t += stepNs; return t }
	send.Stamp(HopCapture, 0, seq, NoSub, t)
	send.Stamp(HopEncodeColor, 0, seq, NoSub, next())
	send.Stamp(HopEncodeDepth, 0, seq, NoSub, next())
	send.Stamp(HopPacketize, 0, seq, NoSub, next())
	relay.Stamp(HopRelayIngest, 1, seq, NoSub, next()-relayOff)
	relay.Stamp(HopShardRoute, 1, seq, NoSub, next()-relayOff)
	relay.Stamp(HopSubEnqueue, 1, seq, 0, next()-relayOff)
	relay.Stamp(HopSubDrain, 1, seq, 0, next()-relayOff)
	recv.Stamp(HopWire, 1, seq, NoSub, next()-recvOff)
	recv.Stamp(HopJitter, 1, seq, NoSub, next()-recvOff)
	// decode color deliberately unshifted: the vDecode max picks the later
	recv.Stamp(HopDecodeColor, 0, seq, NoSub, next())
	recv.Stamp(HopDecodeDepth, 0, seq, NoSub, next()-recvOff)
	recv.Stamp(HopReconstruct, 0, seq, NoSub, next()-recvOff)
}

// TestMergeDecompose runs a synthetic 3-ledger pipeline through the
// collector and checks the merged timelines, the stage decomposition,
// and the telescoping reconciliation.
func TestMergeDecompose(t *testing.T) {
	send := NewLedger("sender", 1024)
	relay := NewLedger("relay", 1024)
	recv := NewLedger("receiver", 1024)
	const frames = 50
	const step = int64(1e6) // 1 ms per hop
	relayOff, recvOff := int64(7e6), int64(-3e6)
	for i := 0; i < frames; i++ {
		stampChain(send, relay, recv, uint32(i), int64(i)*40e6, step, relayOff, recvOff)
	}

	c := NewCollector()
	c.Add(send, 0)
	c.Add(relay, relayOff)
	c.Add(recv, recvOff)
	tls := c.Merge(0)
	if len(tls) != frames {
		t.Fatalf("merged %d timelines, want %d", len(tls), frames)
	}
	// Decode color was stamped on the reference clock (unshifted) but the
	// receiver ledger adds recvOff; with recvOff < 0 the shifted depth
	// stamp is later, so the vDecode max must equal the reference time.
	tl := &tls[0]
	cap0, okC := tl.Get(HopCapture)
	rec, okR := tl.Get(HopReconstruct)
	if !okC || !okR {
		t.Fatal("capture/reconstruct missing after merge")
	}
	if want := int64(12) * step; rec-cap0 != want {
		t.Fatalf("e2e for frame 0: got %d ns, want %d", rec-cap0, want)
	}

	rep := Decompose(tls)
	if rep.Frames != frames || rep.Complete != frames {
		t.Fatalf("frames=%d complete=%d, want %d/%d", rep.Frames, rep.Complete, frames, frames)
	}
	if len(rep.Stages) != len(Stages) {
		t.Fatalf("got %d stages, want %d", len(rep.Stages), len(Stages))
	}
	// Every chain gap is one step except encode (capture→max encode = 2
	// steps) and decode (jitter→max decode = 2 steps).
	for _, st := range rep.Stages {
		want := float64(step) / 1e6
		if st.Name == "encode" || st.Name == "decode" {
			want *= 2
		}
		if st.Count != frames {
			t.Fatalf("stage %s count=%d, want %d", st.Name, st.Count, frames)
		}
		if math.Abs(st.P50Ms-want) > 1e-9 || math.Abs(st.MeanMs-want) > 1e-9 {
			t.Fatalf("stage %s: p50=%g mean=%g, want %g", st.Name, st.P50Ms, st.MeanMs, want)
		}
	}
	if want := float64(12*step) / 1e6; math.Abs(rep.EndToEnd.MeanMs-want) > 1e-9 {
		t.Fatalf("e2e mean: got %g, want %g", rep.EndToEnd.MeanMs, want)
	}
	if rep.ReconcilePct > 1e-9 {
		t.Fatalf("reconcile: %g%%, want ~0 (telescoping)", rep.ReconcilePct)
	}
}

// TestMergeSubFilter checks that per-subscriber stamps for other
// subscribers are excluded from a sub-filtered merge.
func TestMergeSubFilter(t *testing.T) {
	led := NewLedger("relay", 64)
	led.Stamp(HopSubEnqueue, 1, 7, 0, 100)
	led.Stamp(HopSubEnqueue, 1, 7, 3, 999) // other subscriber, later
	c := NewCollector()
	c.Add(led, 0)
	tls := c.Merge(0)
	if len(tls) != 1 {
		t.Fatalf("got %d timelines", len(tls))
	}
	if tt, ok := tls[0].Get(HopSubEnqueue); !ok || tt != 100 {
		t.Fatalf("sub filter leaked: got %d", tt)
	}
	// Unfiltered merge keeps the max across subscribers.
	c2 := NewCollector()
	c2.Add(led, 0)
	all := c2.Merge(NoSub)
	if tt, ok := all[0].Get(HopSubEnqueue); !ok || tt != 999 {
		t.Fatalf("unfiltered merge: got %d, want 999", tt)
	}
}

// TestEstimateOffset checks the one-way-delay-minimum model.
func TestEstimateOffset(t *testing.T) {
	if got := EstimateOffset(nil, nil); got != 0 {
		t.Fatalf("empty: got %d", got)
	}
	// Receiver clock is +50ms; one-way delays are 5..9 ms.
	var send, recvT []int64
	for i := 0; i < 5; i++ {
		send = append(send, int64(i)*1e6)
		recvT = append(recvT, int64(i)*1e6+50e6+int64(9-i)*1e6)
	}
	got := EstimateOffset(send, recvT)
	if want := int64(50e6 + 5e6); got != want {
		t.Fatalf("offset: got %d, want %d (offset + min delay)", got, want)
	}
}

// TestIncompleteTimelines checks that partially-stamped frames still
// contribute to the stages they cover without polluting reconciliation.
func TestIncompleteTimelines(t *testing.T) {
	led := NewLedger("x", 64)
	led.Stamp(HopCapture, 0, 1, NoSub, 0)
	led.Stamp(HopEncodeColor, 0, 1, NoSub, 2e6)
	led.Stamp(HopEncodeDepth, 0, 1, NoSub, 3e6)
	// no further hops: frame was dropped downstream
	c := NewCollector()
	c.Add(led, 0)
	rep := Decompose(c.Merge(NoSub))
	if rep.Frames != 1 || rep.Complete != 0 {
		t.Fatalf("frames=%d complete=%d", rep.Frames, rep.Complete)
	}
	if rep.Stages[0].Name != "encode" || rep.Stages[0].Count != 1 ||
		math.Abs(rep.Stages[0].MeanMs-3) > 1e-9 {
		t.Fatalf("encode stage: %+v", rep.Stages[0])
	}
	if rep.EndToEnd.Count != 0 || rep.ReconcilePct != 0 {
		t.Fatalf("incomplete frame leaked into e2e: %+v", rep.EndToEnd)
	}
}

// TestJSONLAndHandlers checks the JSONL export is parseable and the
// /debugz handlers serve it.
func TestJSONLAndHandlers(t *testing.T) {
	send := NewLedger("sender", 64)
	relay := NewLedger("relay", 64)
	recv := NewLedger("receiver", 64)
	for i := 0; i < 3; i++ {
		stampChain(send, relay, recv, uint32(i), int64(i)*40e6, 1e6, 0, 0)
	}
	c := NewCollector()
	c.Add(send, 0)
	c.Add(relay, 0)
	c.Add(recv, 0)
	var buf bytes.Buffer
	if err := WriteTimelinesJSONL(&buf, c.Merge(0)); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var obj struct {
			Seq   uint32           `json:"seq"`
			Hops  map[string]int64 `json:"hops"`
			E2EMs float64          `json:"e2e_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if len(obj.Hops) != NumHops {
			t.Fatalf("line %d: %d hops, want %d", lines, len(obj.Hops), NumHops)
		}
		if math.Abs(obj.E2EMs-12) > 1e-9 {
			t.Fatalf("line %d: e2e %g, want 12", lines, obj.E2EMs)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d lines, want 3", lines)
	}

	fh := httptest.NewRecorder()
	MergedFramesHandler(send, relay, recv).ServeHTTP(fh, httptest.NewRequest("GET", "/debugz/frames?n=2&sub=0", nil))
	if fh.Code != 200 || strings.Count(fh.Body.String(), "\n") != 2 {
		t.Fatalf("frames handler: code=%d body=%q", fh.Code, fh.Body.String())
	}

	ring := NewEventRing(64)
	ring.Add(EvFrameDrop, 1, 42, 3, int64(DropKey))
	eh := httptest.NewRecorder()
	EventsHandler(ring).ServeHTTP(eh, httptest.NewRequest("GET", "/debugz/events", nil))
	if eh.Code != 200 || !strings.Contains(eh.Body.String(), "\"evict_key\"") {
		t.Fatalf("events handler: code=%d body=%q", eh.Code, eh.Body.String())
	}
}
