// Package pipeline provides the concurrency scaffolding of LiVo's live
// pipeline (§A.1): each processing stage runs on its own goroutine,
// connected to the next by a small bounded queue, and per-stage latency is
// tracked for the Table 6 breakdown. Queues drop the oldest item when full
// — a conferencing pipeline must prefer fresh frames over complete ones.
package pipeline

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Queue is a bounded FIFO connecting two pipeline stages. Push never
// blocks: when the queue is full the oldest item is dropped (and counted).
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	cap    int
	drops  int64
	closed bool
}

// NewQueue creates a queue with the given capacity (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an item, evicting the oldest when full. Pushing to a closed
// queue is a no-op.
func (q *Queue[T]) Push(item T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if len(q.items) >= q.cap {
		q.items = q.items[1:]
		q.drops++
	}
	q.items = append(q.items, item)
	q.cond.Signal()
}

// Pop removes the oldest item, blocking until one is available, the queue
// is closed, or ctx is done. ok is false on close/cancellation.
func (q *Queue[T]) Pop(ctx context.Context) (T, bool) {
	var zero T
	done := make(chan struct{})
	defer close(done)
	// Wake the waiter if the context fires.
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				q.cond.Broadcast()
			case <-done:
			}
		}()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		if ctx != nil && ctx.Err() != nil {
			return zero, false
		}
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

// TryPop removes the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Close wakes all waiters; subsequent Pops drain remaining items then
// return ok=false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Drops returns how many items were evicted by full-queue pushes.
func (q *Queue[T]) Drops() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drops
}

// LatencyTracker accumulates per-stage processing latencies (Table 6).
type LatencyTracker struct {
	mu      sync.Mutex
	samples map[string][]float64
}

// NewLatencyTracker creates an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{samples: make(map[string][]float64)}
}

// Observe records one latency sample (seconds) for a stage.
func (lt *LatencyTracker) Observe(stage string, seconds float64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.samples[stage] = append(lt.samples[stage], seconds)
}

// Time runs fn and records its duration under the stage name.
func (lt *LatencyTracker) Time(stage string, fn func()) {
	start := time.Now()
	fn()
	lt.Observe(stage, time.Since(start).Seconds())
}

// StageStats summarizes one stage's latency.
type StageStats struct {
	Stage string
	Count int
	Mean  float64
	P95   float64
}

// Stats returns per-stage summaries sorted by stage name.
func (lt *LatencyTracker) Stats() []StageStats {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var out []StageStats
	for stage, xs := range lt.samples {
		if len(xs) == 0 {
			continue
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		var sum float64
		for _, x := range s {
			sum += x
		}
		idx := int(0.95 * float64(len(s)-1))
		out = append(out, StageStats{
			Stage: stage,
			Count: len(s),
			Mean:  sum / float64(len(s)),
			P95:   s[idx],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
