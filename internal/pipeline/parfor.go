package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns how many goroutines ParFor will use for n independent
// tasks: min(GOMAXPROCS, n), at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParFor runs fn(i) for every i in [0, n) and returns when all calls have
// completed. Tasks are claimed dynamically from a shared counter so uneven
// task costs balance across workers. With one worker (GOMAXPROCS=1 or
// n<=1) everything runs inline on the calling goroutine — no goroutines
// are spawned and no synchronization is paid, which keeps single-threaded
// callers allocation- and overhead-free.
//
// fn must be safe to call concurrently for distinct i. The iteration order
// is unspecified; callers needing deterministic output must make each
// task's output independent (e.g. write to task-indexed slots) — this is
// how the vcodec stripe coder keeps its bitstream byte-identical
// regardless of worker count.
func ParFor(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := Workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller participates as a worker
	wg.Wait()
}
