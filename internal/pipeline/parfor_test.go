package pipeline

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		ParFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestParForMultiProc(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var sum atomic.Int64
	ParFor(500, func(i int) { sum.Add(int64(i)) })
	if want := int64(500 * 499 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d", w)
	}
	procs := runtime.GOMAXPROCS(0)
	if w := Workers(1 << 20); w != procs {
		t.Errorf("Workers(big) = %d, want %d", w, procs)
	}
}

func TestParForInlineWhenSingleWorker(t *testing.T) {
	// With n=1 the body must run on the calling goroutine (no allocs, no
	// spawn) — the property the codec's hot path relies on at GOMAXPROCS=1.
	allocs := testing.AllocsPerRun(100, func() {
		ParFor(1, func(int) {})
	})
	if allocs != 0 {
		t.Errorf("ParFor(1, ...) allocates %v per run", allocs)
	}
}
