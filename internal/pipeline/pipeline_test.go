package pipeline

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 1; i <= 3; i++ {
		q.Push(i)
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestQueueDropsOldest(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1)
	q.Push(2)
	q.Push(3) // evicts 1
	if q.Drops() != 1 {
		t.Errorf("drops = %d", q.Drops())
	}
	v, _ := q.TryPop()
	if v != 2 {
		t.Errorf("head = %d, want 2 (1 evicted)", v)
	}
	if q.Len() != 1 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue[string](2)
	done := make(chan string, 1)
	go func() {
		v, ok := q.Pop(context.Background())
		if ok {
			done <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("hello")
	select {
	case v := <-done:
		if v != "hello" {
			t.Errorf("got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never returned")
	}
}

func TestQueuePopCancellation(t *testing.T) {
	q := NewQueue[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop(ctx)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled pop returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled pop never returned")
	}
}

func TestQueueClose(t *testing.T) {
	q := NewQueue[int](4)
	q.Push(7)
	q.Close()
	q.Push(8) // ignored after close
	if v, ok := q.Pop(context.Background()); !ok || v != 7 {
		t.Error("close should drain remaining items")
	}
	if _, ok := q.Pop(context.Background()); ok {
		t.Error("pop after drain on closed queue succeeded")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int](64)
	const n = 500
	var got sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Pop(context.Background())
				if !ok {
					return
				}
				got.Store(v, true)
			}
		}()
	}
	for i := 0; i < n; i++ {
		q.Push(i)
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // let consumers drain (no drops)
		}
	}
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	wg.Wait()
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if int64(count)+q.Drops() != n {
		t.Errorf("received %d + dropped %d != %d", count, q.Drops(), n)
	}
}

func TestLatencyTracker(t *testing.T) {
	lt := NewLatencyTracker()
	lt.Observe("encode", 0.010)
	lt.Observe("encode", 0.020)
	lt.Observe("encode", 0.030)
	lt.Observe("cull", 0.001)
	stats := lt.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d stages", len(stats))
	}
	// Sorted by name: cull, encode.
	if stats[0].Stage != "cull" || stats[1].Stage != "encode" {
		t.Fatalf("order: %v", stats)
	}
	enc := stats[1]
	if enc.Count != 3 || enc.Mean < 0.019 || enc.Mean > 0.021 {
		t.Errorf("encode stats: %+v", enc)
	}
	if enc.P95 < 0.02 {
		t.Errorf("p95 = %v", enc.P95)
	}
}

func TestLatencyTrackerTime(t *testing.T) {
	lt := NewLatencyTracker()
	lt.Time("work", func() { time.Sleep(5 * time.Millisecond) })
	stats := lt.Stats()
	if len(stats) != 1 || stats[0].Mean < 0.004 {
		t.Errorf("timed stats: %+v", stats)
	}
}
