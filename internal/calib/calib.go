// Package calib implements the one-shot extrinsic camera calibration LiVo
// relies on (§3.2, [97]): given 3D correspondences between points observed
// in a camera's local frame and their known positions in the global frame
// (e.g. corners of a calibration target placed in the capture volume), it
// solves for the rigid camera-to-world transform. The solver is the Kabsch
// algorithm: optimal rotation from the cross-covariance of the centered
// correspondences via an iterative Jacobi eigen-decomposition (no external
// linear algebra library).
package calib

import (
	"fmt"
	"math"

	"livo/internal/geom"
)

// Solve returns the rigid pose P minimizing Σ |P(local_i) − world_i|²,
// i.e. the camera-to-world transform, plus the RMS residual. At least 3
// non-collinear correspondences are required.
func Solve(local, world []geom.Vec3) (geom.Pose, float64, error) {
	if len(local) != len(world) {
		return geom.Pose{}, 0, fmt.Errorf("calib: %d local vs %d world points", len(local), len(world))
	}
	if len(local) < 3 {
		return geom.Pose{}, 0, fmt.Errorf("calib: need at least 3 correspondences, got %d", len(local))
	}
	// Centroids.
	var cl, cw geom.Vec3
	for i := range local {
		cl = cl.Add(local[i])
		cw = cw.Add(world[i])
	}
	n := float64(len(local))
	cl = cl.Scale(1 / n)
	cw = cw.Scale(1 / n)

	// Cross-covariance H = Σ (local-cl)(world-cw)^T.
	var h [3][3]float64
	for i := range local {
		a := local[i].Sub(cl)
		b := world[i].Sub(cw)
		av := [3]float64{a.X, a.Y, a.Z}
		bv := [3]float64{b.X, b.Y, b.Z}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				h[r][c] += av[r] * bv[c]
			}
		}
	}

	rot, ok := kabschRotation(h)
	if !ok {
		return geom.Pose{}, 0, fmt.Errorf("calib: degenerate correspondences (collinear?)")
	}
	// t = cw - R*cl.
	t := cw.Sub(rot.Rotate(cl))
	pose := geom.Pose{Position: t, Rotation: rot}

	// Residual.
	var sum float64
	for i := range local {
		d := pose.TransformPoint(local[i]).Sub(world[i])
		sum += d.LenSq()
	}
	return pose, math.Sqrt(sum / n), nil
}

// kabschRotation computes the optimal rotation from the cross-covariance H
// using the classic SVD identity implemented via the symmetric
// eigen-decomposition of H^T H (Jacobi sweeps).
func kabschRotation(h [3][3]float64) (geom.Quat, bool) {
	// S = H^T H (symmetric positive semidefinite).
	var s [3][3]float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			for k := 0; k < 3; k++ {
				s[r][c] += h[k][r] * h[k][c]
			}
		}
	}
	evals, evecs, ok := jacobiEigen(s)
	if !ok {
		return geom.Quat{}, false
	}
	// Guard rank: at least two non-trivial singular values are needed.
	if evals[1] <= 1e-12*math.Max(evals[0], 1e-30) {
		return geom.Quat{}, false
	}
	// B_k = H v_k / sqrt(λ_k): left singular vectors scaled; rotation
	// R = Σ b_k v_k^T, with the smallest-σ column sign-fixed so det(R)=+1.
	var b [3][3]float64 // columns b_k
	for k := 0; k < 3; k++ {
		sigma := math.Sqrt(math.Max(evals[k], 0))
		// Rank test is relative: a planar target has λ_2/λ_0 ≈ machine
		// epsilon but not exactly zero.
		if evals[k] < 1e-10*evals[0] {
			// Rank-2: take b_2 = b_0 x b_1 for a proper rotation.
			b[0][k] = b[1][0]*b[2][1] - b[2][0]*b[1][1]
			b[1][k] = b[2][0]*b[0][1] - b[0][0]*b[2][1]
			b[2][k] = b[0][0]*b[1][1] - b[1][0]*b[0][1]
			continue
		}
		for r := 0; r < 3; r++ {
			var v float64
			for c := 0; c < 3; c++ {
				v += h[r][c] * evecs[c][k]
			}
			b[r][k] = v / sigma
		}
	}
	// Derivation: minimizing Σ|R·local − world|² maximizes tr(Rᵀ M) with
	// M = Σ world·localᵀ = Hᵀ, whose SVD gives R = U_M V_Mᵀ. Since
	// HᵀH = M Mᵀ, the eigenvectors computed above are U_M, and
	// b_k = H u_k/σ_k are the columns of V_M — so R = evecs · Bᵀ.
	compose := func() geom.Mat4 {
		var rm geom.Mat4
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				var v float64
				for k := 0; k < 3; k++ {
					v += evecs[r][k] * b[c][k]
				}
				rm[r][c] = v
			}
		}
		rm[3][3] = 1
		return rm
	}
	rm := compose()
	// Ensure a proper rotation (det +1): flip the weakest direction.
	if det3(rm) < 0 {
		for r := 0; r < 3; r++ {
			b[r][2] = -b[r][2]
		}
		rm = compose()
	}
	return rotToQuat(rm), true
}

func det3(m geom.Mat4) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// rotToQuat converts a proper rotation matrix to a quaternion by probing
// its action on the basis vectors through geom.LookAt-style construction.
func rotToQuat(m geom.Mat4) geom.Quat {
	// Shepperd's method.
	tr := m[0][0] + m[1][1] + m[2][2]
	var q geom.Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = geom.Quat{W: s / 4, X: (m[2][1] - m[1][2]) / s, Y: (m[0][2] - m[2][0]) / s, Z: (m[1][0] - m[0][1]) / s}
	case m[0][0] > m[1][1] && m[0][0] > m[2][2]:
		s := math.Sqrt(1+m[0][0]-m[1][1]-m[2][2]) * 2
		q = geom.Quat{W: (m[2][1] - m[1][2]) / s, X: s / 4, Y: (m[0][1] + m[1][0]) / s, Z: (m[0][2] + m[2][0]) / s}
	case m[1][1] > m[2][2]:
		s := math.Sqrt(1+m[1][1]-m[0][0]-m[2][2]) * 2
		q = geom.Quat{W: (m[0][2] - m[2][0]) / s, X: (m[0][1] + m[1][0]) / s, Y: s / 4, Z: (m[1][2] + m[2][1]) / s}
	default:
		s := math.Sqrt(1+m[2][2]-m[0][0]-m[1][1]) * 2
		q = geom.Quat{W: (m[1][0] - m[0][1]) / s, X: (m[0][2] + m[2][0]) / s, Y: (m[1][2] + m[2][1]) / s, Z: s / 4}
	}
	return q.Normalize()
}

// jacobiEigen diagonalizes a symmetric 3x3 matrix by classical Jacobi
// rotations, returning eigenvalues in descending order with matching
// eigenvector columns (A v_k = λ_k v_k).
func jacobiEigen(a [3][3]float64) (evals [3]float64, evecs [3][3]float64, ok bool) {
	v := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for sweep := 0; sweep < 128; sweep++ {
		// Largest off-diagonal element.
		p, q := 0, 1
		if math.Abs(a[0][2]) > math.Abs(a[p][q]) {
			p, q = 0, 2
		}
		if math.Abs(a[1][2]) > math.Abs(a[p][q]) {
			p, q = 1, 2
		}
		apq := a[p][q]
		if math.Abs(apq) < 1e-15 {
			break
		}
		// Rotation annihilating a[p][q] (Golub & Van Loan 8.4).
		theta := (a[q][q] - a[p][p]) / (2 * apq)
		t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
		c := 1 / math.Sqrt(t*t+1)
		s := t * c

		app, aqq := a[p][p], a[q][q]
		a[p][p] = app - t*apq
		a[q][q] = aqq + t*apq
		a[p][q], a[q][p] = 0, 0
		r := 3 - p - q // the remaining index
		arp, arq := a[r][p], a[r][q]
		a[r][p] = c*arp - s*arq
		a[p][r] = a[r][p]
		a[r][q] = s*arp + c*arq
		a[q][r] = a[r][q]
		for i := 0; i < 3; i++ {
			vip, viq := v[i][p], v[i][q]
			v[i][p] = c*vip - s*viq
			v[i][q] = s*vip + c*viq
		}
	}
	for i := 0; i < 3; i++ {
		evals[i] = a[i][i]
	}
	// Sort descending (insertion over 3 elements).
	order := [3]int{0, 1, 2}
	for i := 1; i < 3; i++ {
		for j := i; j > 0 && evals[order[j]] > evals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var se [3]float64
	var sv [3][3]float64
	for k, idx := range order {
		se[k] = evals[idx]
		for r := 0; r < 3; r++ {
			sv[r][k] = v[r][idx]
		}
	}
	return se, sv, true
}
