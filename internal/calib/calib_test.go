package calib

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/geom"
)

func randPose(rng *rand.Rand) geom.Pose {
	axis := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	return geom.Pose{
		Position: geom.V3(rng.NormFloat64()*3, rng.NormFloat64()*3, rng.NormFloat64()*3),
		Rotation: geom.QuatFromAxisAngle(axis, rng.Float64()*2*math.Pi-math.Pi),
	}
}

func TestSolveExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		truth := randPose(rng)
		n := 3 + rng.Intn(20)
		local := make([]geom.Vec3, n)
		world := make([]geom.Vec3, n)
		for i := range local {
			local[i] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			world[i] = truth.TransformPoint(local[i])
		}
		got, rms, err := Solve(local, world)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rms > 1e-7 {
			t.Fatalf("trial %d: residual %v", trial, rms)
		}
		if got.Position.Dist(truth.Position) > 1e-7 {
			t.Fatalf("trial %d: position %v vs %v", trial, got.Position, truth.Position)
		}
		if truth.Rotation.AngleTo(got.Rotation) > 1e-7 {
			t.Fatalf("trial %d: rotation off by %v rad", trial, truth.Rotation.AngleTo(got.Rotation))
		}
	}
}

func TestSolveNoisy(t *testing.T) {
	// Calibration targets are measured with millimeter noise; the solved
	// pose must average it out.
	rng := rand.New(rand.NewSource(2))
	truth := randPose(rng)
	n := 40
	local := make([]geom.Vec3, n)
	world := make([]geom.Vec3, n)
	for i := range local {
		local[i] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		noise := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.002)
		world[i] = truth.TransformPoint(local[i]).Add(noise)
	}
	got, rms, err := Solve(local, world)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 0.01 {
		t.Errorf("residual %v", rms)
	}
	if got.Position.Dist(truth.Position) > 0.005 {
		t.Errorf("position error %v", got.Position.Dist(truth.Position))
	}
	if ang := truth.Rotation.AngleTo(got.Rotation); ang > 0.005 {
		t.Errorf("rotation error %v rad", ang)
	}
}

func TestSolvePlanarTarget(t *testing.T) {
	// A flat checkerboard target: all points coplanar — rank 2 — must
	// still recover the full rotation (the common real-world case [97]).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		truth := randPose(rng)
		var local, world []geom.Vec3
		for y := 0; y < 4; y++ {
			for x := 0; x < 5; x++ {
				p := geom.V3(float64(x)*0.1, float64(y)*0.1, 0) // z = 0 plane
				local = append(local, p)
				world = append(world, truth.TransformPoint(p))
			}
		}
		got, rms, err := Solve(local, world)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rms > 1e-7 {
			t.Fatalf("trial %d: planar residual %v", trial, rms)
		}
		if ang := truth.Rotation.AngleTo(got.Rotation); ang > 1e-6 {
			t.Fatalf("trial %d: planar rotation error %v", trial, ang)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Solve(make([]geom.Vec3, 2), make([]geom.Vec3, 2)); err == nil {
		t.Error("2 points accepted")
	}
	if _, _, err := Solve(make([]geom.Vec3, 3), make([]geom.Vec3, 4)); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Collinear points: rotation about the line is unobservable.
	local := []geom.Vec3{{X: 0}, {X: 1}, {X: 2}, {X: 3}}
	world := []geom.Vec3{{Y: 0}, {Y: 1}, {Y: 2}, {Y: 3}}
	if _, _, err := Solve(local, world); err == nil {
		t.Error("collinear target accepted")
	}
}

func TestCalibrateSyntheticRig(t *testing.T) {
	// End-to-end: recover a camera-ring pose from observations of a known
	// target, as the capture rig setup would.
	rng := rand.New(rand.NewSource(4))
	truth := geom.LookAt(geom.V3(2.6, 1.5, 0), geom.V3(0, 0.9, 0), geom.V3(0, 1, 0))
	// Target corners in world space.
	var world, local []geom.Vec3
	for i := 0; i < 12; i++ {
		w := geom.V3(rng.Float64()-0.5, 0.5+rng.Float64(), rng.Float64()-0.5)
		world = append(world, w)
		local = append(local, truth.InverseTransformPoint(w))
	}
	got, rms, err := Solve(local, world)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-7 || got.Position.Dist(truth.Position) > 1e-7 {
		t.Fatalf("rig calibration failed: rms=%v pos err=%v", rms, got.Position.Dist(truth.Position))
	}
}
