// Package trace provides the two workload inputs of the evaluation (§4.1):
// network bandwidth traces with the statistics of Table 4 (the paper scales
// real WiFi traces [58, 59]; we synthesize traces with matching statistics
// and variability, Fig A.3) and 6-DoF user pose traces (the paper collected
// them in an IRB study; we synthesize human-like viewer motion).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"livo/internal/geom"
)

// Bandwidth is a capacity trace: one sample per interval.
type Bandwidth struct {
	Name     string
	Interval float64   // seconds per sample
	Mbps     []float64 // capacity samples
}

// Duration returns the trace length in seconds.
func (b *Bandwidth) Duration() float64 { return float64(len(b.Mbps)) * b.Interval }

// At returns the capacity at time t (seconds), wrapping past the end so
// replays of any length work.
func (b *Bandwidth) At(t float64) float64 {
	if len(b.Mbps) == 0 {
		return 0
	}
	idx := int(t/b.Interval) % len(b.Mbps)
	if idx < 0 {
		idx = 0
	}
	return b.Mbps[idx]
}

// Stats are the summary statistics reported in Table 4.
type Stats struct {
	Mean, Max, Min, P90, P10 float64
}

// Stats computes the trace's summary statistics.
func (b *Bandwidth) Stats() Stats {
	if len(b.Mbps) == 0 {
		return Stats{}
	}
	s := append([]float64(nil), b.Mbps...)
	sortFloat64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	n := len(s)
	pct := func(p float64) float64 {
		pos := p / 100 * float64(n-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= n {
			return s[n-1]
		}
		w := pos - float64(lo)
		return s[lo]*(1-w) + s[hi]*w
	}
	return Stats{
		Mean: sum / float64(n),
		Max:  s[n-1],
		Min:  s[0],
		P90:  pct(90),
		P10:  pct(10),
	}
}

func sortFloat64s(s []float64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Scale multiplies every sample by k (the paper scales trace-1 by 10x and
// trace-2 by 15x to reach broadband capacities).
func (b *Bandwidth) Scale(k float64) *Bandwidth {
	out := &Bandwidth{Name: b.Name, Interval: b.Interval, Mbps: make([]float64, len(b.Mbps))}
	for i, v := range b.Mbps {
		out.Mbps[i] = v * k
	}
	return out
}

// synth generates a mean-reverting log-space random walk with occasional
// dips, then affinely adjusts it to hit the target mean and min/max —
// variability shaped like the WiFi traces of Fig A.3.
func synth(name string, seed int64, seconds int, target Stats, dipEvery, dipDepth float64) *Bandwidth {
	rng := rand.New(rand.NewSource(seed))
	n := seconds
	raw := make([]float64, n)
	x := 0.0 // log deviation from mean
	for i := 0; i < n; i++ {
		x = 0.92*x + rng.NormFloat64()*0.05
		v := math.Exp(x)
		// Occasional deep dips (mobility events in the mall trace).
		if dipEvery > 0 && rng.Float64() < 1/dipEvery {
			v *= dipDepth + rng.Float64()*(1-dipDepth)/2
		}
		raw[i] = v
	}
	// Normalize to [0,1], then map through w^γ so min and max stay exact
	// while γ (found by bisection) sets the mean.
	lo, hi := raw[0], raw[0]
	for _, v := range raw {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	ws := make([]float64, n)
	for i, v := range raw {
		ws[i] = (v - lo) / (hi - lo)
	}
	meanFor := func(gamma float64) float64 {
		var sum float64
		for _, w := range ws {
			sum += target.Min + math.Pow(w, gamma)*(target.Max-target.Min)
		}
		return sum / float64(n)
	}
	// mean is decreasing in γ; bisect on [0.05, 20].
	gLo, gHi := 0.05, 20.0
	for iter := 0; iter < 60; iter++ {
		mid := (gLo + gHi) / 2
		if meanFor(mid) > target.Mean {
			gLo = mid
		} else {
			gHi = mid
		}
	}
	gamma := (gLo + gHi) / 2
	out := make([]float64, n)
	for i, w := range ws {
		out[i] = target.Min + math.Pow(w, gamma)*(target.Max-target.Min)
	}
	return &Bandwidth{Name: name, Interval: 1, Mbps: out}
}

// Trace1 is the stationary home-WiFi trace scaled to ~217 Mbps mean
// (Table 4: mean 216.90, max 262.19, min 151.91).
func Trace1() *Bandwidth {
	return synth("trace-1", 101, 600,
		Stats{Mean: 216.90, Max: 262.19, Min: 151.91}, 0, 0)
}

// Trace2 is the mobile shopping-mall trace scaled to ~89 Mbps mean
// (Table 4: mean 89.20, max 106.37, min 36.35), with mobility dips.
func Trace2() *Bandwidth {
	return synth("trace-2", 202, 600,
		Stats{Mean: 89.20, Max: 106.37, Min: 36.35}, 45, 0.35)
}

// Traces returns both evaluation traces keyed by name.
func Traces() map[string]*Bandwidth {
	return map[string]*Bandwidth{"trace-1": Trace1(), "trace-2": Trace2()}
}

// WriteTo serializes the trace as "interval_s mbps..." lines (one sample
// per line), a Mahimahi-like plain-text format.
func (b *Bandwidth) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "# %s interval=%g\n", b.Name, b.Interval)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, v := range b.Mbps {
		n, err := fmt.Fprintf(bw, "%.4f\n", v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadBandwidth parses the WriteTo format.
func ReadBandwidth(r io.Reader) (*Bandwidth, error) {
	sc := bufio.NewScanner(r)
	b := &Bandwidth{Interval: 1}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line[1:])
			for _, f := range fields {
				if strings.HasPrefix(f, "interval=") {
					v, err := strconv.ParseFloat(f[len("interval="):], 64)
					if err != nil {
						return nil, fmt.Errorf("trace: bad interval: %w", err)
					}
					b.Interval = v
				} else if b.Name == "" {
					b.Name = f
				}
			}
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad sample %q: %w", line, err)
		}
		b.Mbps = append(b.Mbps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Mbps) == 0 {
		return nil, fmt.Errorf("trace: empty bandwidth trace")
	}
	return b, nil
}

// PoseSample is one timestamped viewer pose.
type PoseSample struct {
	T    float64 // seconds from trace start
	Pose geom.Pose
}

// UserTrace is a recorded (here: synthesized) sequence of viewer poses at a
// fixed rate — what the headset records while the user moves around the
// scene (§4.1).
type UserTrace struct {
	Name    string
	Rate    float64 // samples per second
	Samples []PoseSample
}

// Duration returns the trace length in seconds.
func (u *UserTrace) Duration() float64 {
	if len(u.Samples) == 0 {
		return 0
	}
	return u.Samples[len(u.Samples)-1].T
}

// At returns the interpolated pose at time t, clamping at the ends and
// wrapping past the end of the trace.
func (u *UserTrace) At(t float64) geom.Pose {
	if len(u.Samples) == 0 {
		return geom.PoseIdentity
	}
	d := u.Duration()
	if d > 0 {
		t = math.Mod(t, d)
		if t < 0 {
			t += d
		}
	}
	idx := int(t * u.Rate)
	if idx >= len(u.Samples)-1 {
		return u.Samples[len(u.Samples)-1].Pose
	}
	a, b := u.Samples[idx], u.Samples[idx+1]
	if b.T == a.T {
		return a.Pose
	}
	w := (t - a.T) / (b.T - a.T)
	return a.Pose.Lerp(b.Pose, w)
}

// AtFrame returns the pose for a video frame index at the given fps — the
// receiver-side lookup during trace replay (§4.1).
func (u *UserTrace) AtFrame(idx, fps int) geom.Pose {
	return u.At(float64(idx) / float64(fps))
}

// SynthUserTrace generates a human-like 6-DoF viewing trace: a smooth
// second-order random walk around the scene, with the gaze pulled toward
// points of interest (scene objects at ±1 m around the center). Three
// traces per video are generated with different seeds, like the study's
// three users per video.
func SynthUserTrace(name string, seed int64, seconds float64, rate float64) *UserTrace {
	rng := rand.New(rand.NewSource(seed))
	n := int(seconds * rate)
	u := &UserTrace{Name: name, Rate: rate, Samples: make([]PoseSample, 0, n)}

	pos := geom.V3(rng.Float64()*2-1, 1.5+rng.Float64()*0.3, 1.2+rng.Float64())
	vel := geom.Vec3{}
	dt := 1 / rate
	// Current point of interest: a subject position on the ring where
	// people stand in the dataset scenes. Users walk up to a ~1.1 m
	// standoff and inspect it, then shift attention (§4.3: "users often
	// focus on a few subjects at any given instant" — this close-up
	// behaviour is what makes culling effective).
	newPOI := func() geom.Vec3 {
		ang := rng.Float64() * 2 * math.Pi
		r := 0.8 + rng.Float64()*0.6
		return geom.V3(r*math.Cos(ang), 0.7+rng.Float64()*0.6, r*math.Sin(ang))
	}
	poi := newPOI()
	nextPoiChange := 3 + rng.Float64()*4
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		if t >= nextPoiChange {
			poi = newPOI()
			nextPoiChange = t + 3 + rng.Float64()*4
		}
		// Desired viewpoint: outside the subject, at a standoff, at head
		// height.
		outward := geom.V3(poi.X, 0, poi.Z).Normalize()
		target := poi.Add(outward.Scale(1.1))
		target.Y = 1.45 + 0.15*math.Sin(t/3)
		// Smooth acceleration noise + spring toward the viewpoint.
		acc := geom.V3(rng.NormFloat64(), rng.NormFloat64()*0.25, rng.NormFloat64()).Scale(0.3)
		acc = acc.Add(target.Sub(pos).Scale(0.8))
		vel = vel.Add(acc.Scale(dt)).Scale(0.995)
		// Cap walking speed at ~1.2 m/s.
		if v := vel.Len(); v > 1.2 {
			vel = vel.Scale(1.2 / v)
		}
		pos = pos.Add(vel.Scale(dt))
		// Gaze: aim at the point of interest but rate-limit head rotation
		// to ~3 rad/s (passing close to a subject must not snap the head).
		want := geom.LookAt(pos, poi, geom.V3(0, 1, 0)).Rotation
		rot := want
		if len(u.Samples) > 0 {
			prev := u.Samples[len(u.Samples)-1].Pose.Rotation
			if ang := prev.AngleTo(want); ang > 3*dt {
				rot = prev.Slerp(want, 3*dt/ang)
			}
		}
		u.Samples = append(u.Samples, PoseSample{T: t, Pose: geom.Pose{Position: pos, Rotation: rot}})
	}
	return u
}

// UserTraces returns the three synthesized traces for a named video, with
// the trace length matching the video duration.
func UserTraces(video string, seconds float64) []*UserTrace {
	var out []*UserTrace
	var h int64
	for _, c := range video {
		h = h*131 + int64(c)
	}
	for i := 0; i < 3; i++ {
		out = append(out, SynthUserTrace(
			fmt.Sprintf("%s-user%d", video, i), h*7+int64(i)+1, seconds, 30))
	}
	return out
}
