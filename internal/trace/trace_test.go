package trace

import (
	"bytes"
	"math"
	"testing"

	"livo/internal/geom"
)

func TestTrace1MatchesTable4(t *testing.T) {
	b := Trace1()
	s := b.Stats()
	// Table 4: mean 216.90, max 262.19, min 151.91.
	if math.Abs(s.Mean-216.90) > 217*0.03 {
		t.Errorf("trace-1 mean = %v, want ~216.90", s.Mean)
	}
	if math.Abs(s.Max-262.19) > 1 {
		t.Errorf("trace-1 max = %v, want 262.19", s.Max)
	}
	if math.Abs(s.Min-151.91) > 1 {
		t.Errorf("trace-1 min = %v, want 151.91", s.Min)
	}
	// Percentiles in plausible order.
	if !(s.Min <= s.P10 && s.P10 <= s.Mean && s.Mean <= s.P90 && s.P90 <= s.Max) {
		t.Errorf("trace-1 stats out of order: %+v", s)
	}
}

func TestTrace2MatchesTable4(t *testing.T) {
	s := Trace2().Stats()
	if math.Abs(s.Mean-89.20) > 89.2*0.04 {
		t.Errorf("trace-2 mean = %v, want ~89.20", s.Mean)
	}
	if math.Abs(s.Max-106.37) > 1 {
		t.Errorf("trace-2 max = %v", s.Max)
	}
	if math.Abs(s.Min-36.35) > 1 {
		t.Errorf("trace-2 min = %v", s.Min)
	}
}

func TestTrace2MoreVariable(t *testing.T) {
	// Fig A.3: the mobile trace is relatively more variable than the
	// stationary one (coefficient of variation).
	s1, s2 := Trace1(), Trace2()
	cv := func(b *Bandwidth) float64 {
		st := b.Stats()
		var sum float64
		for _, v := range b.Mbps {
			d := v - st.Mean
			sum += d * d
		}
		return math.Sqrt(sum/float64(len(b.Mbps))) / st.Mean
	}
	if cv(s2) <= cv(s1) {
		t.Errorf("trace-2 CV %v not greater than trace-1 CV %v", cv(s2), cv(s1))
	}
}

func TestBandwidthAtWraps(t *testing.T) {
	b := &Bandwidth{Interval: 1, Mbps: []float64{10, 20, 30}}
	if b.At(0) != 10 || b.At(1.5) != 20 || b.At(2.9) != 30 {
		t.Error("At lookup wrong")
	}
	if b.At(3.0) != 10 { // wraps
		t.Errorf("At(3.0) = %v, want wrap to 10", b.At(3.0))
	}
	if b.Duration() != 3 {
		t.Errorf("Duration = %v", b.Duration())
	}
	empty := &Bandwidth{Interval: 1}
	if empty.At(5) != 0 {
		t.Error("empty trace At != 0")
	}
}

func TestBandwidthScale(t *testing.T) {
	b := &Bandwidth{Name: "x", Interval: 1, Mbps: []float64{1, 2}}
	s := b.Scale(10)
	if s.Mbps[0] != 10 || s.Mbps[1] != 20 {
		t.Error("scale wrong")
	}
	if b.Mbps[0] != 1 {
		t.Error("scale mutated original")
	}
}

func TestBandwidthSerializationRoundTrip(t *testing.T) {
	b := Trace2()
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBandwidth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "trace-2" || got.Interval != 1 || len(got.Mbps) != len(b.Mbps) {
		t.Fatalf("round trip header: %q %v %d", got.Name, got.Interval, len(got.Mbps))
	}
	for i := range b.Mbps {
		if math.Abs(got.Mbps[i]-b.Mbps[i]) > 0.001 {
			t.Fatalf("sample %d: %v vs %v", i, got.Mbps[i], b.Mbps[i])
		}
	}
}

func TestReadBandwidthErrors(t *testing.T) {
	if _, err := ReadBandwidth(bytes.NewBufferString("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadBandwidth(bytes.NewBufferString("abc\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBandwidth(bytes.NewBufferString("# t interval=x\n1\n")); err == nil {
		t.Error("bad interval accepted")
	}
}

func TestTracesMap(t *testing.T) {
	m := Traces()
	if m["trace-1"] == nil || m["trace-2"] == nil {
		t.Fatal("missing traces")
	}
}

func TestUserTraceBasics(t *testing.T) {
	u := SynthUserTrace("u", 1, 10, 30)
	if got := u.Duration(); math.Abs(got-10) > 0.2 {
		t.Errorf("duration = %v", got)
	}
	if len(u.Samples) != 300 {
		t.Errorf("samples = %d", len(u.Samples))
	}
	// Interpolation matches samples at sample times.
	p := u.At(u.Samples[50].T)
	if !p.Position.AlmostEqual(u.Samples[50].Pose.Position, 1e-9) {
		t.Error("At not matching sample")
	}
	// AtFrame consistency.
	if !u.AtFrame(60, 30).Position.AlmostEqual(u.At(2.0).Position, 1e-9) {
		t.Error("AtFrame inconsistent with At")
	}
}

func TestUserTraceHumanLike(t *testing.T) {
	u := SynthUserTrace("u", 7, 60, 30)
	dt := 1.0 / 30
	var maxSpeed, maxAngVel float64
	for i := 1; i < len(u.Samples); i++ {
		d := u.Samples[i].Pose.Position.Dist(u.Samples[i-1].Pose.Position)
		maxSpeed = math.Max(maxSpeed, d/dt)
		ang := u.Samples[i-1].Pose.Rotation.AngleTo(u.Samples[i].Pose.Rotation)
		maxAngVel = math.Max(maxAngVel, ang/dt)
	}
	if maxSpeed > 2.0 {
		t.Errorf("max walking speed %v m/s implausible", maxSpeed)
	}
	if maxAngVel > 2*math.Pi*4 {
		t.Errorf("max head angular velocity %v rad/s implausible", maxAngVel)
	}
	// Stays in a sane volume around the scene.
	for _, s := range u.Samples {
		p := s.Pose.Position
		if math.Hypot(p.X, p.Z) > 5 || p.Y < 0.5 || p.Y > 3 {
			t.Fatalf("user left the room: %v", p)
		}
	}
}

func TestUserTraceLooksAtScene(t *testing.T) {
	// Most of the time the viewer should face the scene center region.
	u := SynthUserTrace("u", 3, 30, 30)
	facing := 0
	for _, s := range u.Samples {
		toCenter := geom.V3(0, 0.9, 0).Sub(s.Pose.Position).Normalize()
		if s.Pose.Forward().Dot(toCenter) > 0.5 {
			facing++
		}
	}
	if ratio := float64(facing) / float64(len(u.Samples)); ratio < 0.6 {
		t.Errorf("viewer faces scene only %.0f%% of the time", 100*ratio)
	}
}

func TestUserTracesPerVideo(t *testing.T) {
	traces := UserTraces("band2", 20)
	if len(traces) != 3 {
		t.Fatalf("got %d traces", len(traces))
	}
	// Different users move differently.
	a, b := traces[0], traces[1]
	same := true
	for i := 0; i < len(a.Samples) && i < len(b.Samples); i += 30 {
		if !a.Samples[i].Pose.Position.AlmostEqual(b.Samples[i].Pose.Position, 1e-9) {
			same = false
			break
		}
	}
	if same {
		t.Error("all users identical")
	}
	// Deterministic per video name.
	again := UserTraces("band2", 20)
	if !again[0].Samples[100].Pose.Position.AlmostEqual(traces[0].Samples[100].Pose.Position, 1e-12) {
		t.Error("user traces not deterministic")
	}
}

func TestUserTraceWrapAndEmpty(t *testing.T) {
	u := SynthUserTrace("u", 5, 5, 30)
	// Past the end wraps around.
	p := u.At(u.Duration() + 1)
	if !p.Position.IsFinite() {
		t.Error("wrapped pose not finite")
	}
	empty := &UserTrace{Rate: 30}
	if empty.At(0) != geom.PoseIdentity {
		t.Error("empty trace should return identity")
	}
	if empty.Duration() != 0 {
		t.Error("empty duration != 0")
	}
}
