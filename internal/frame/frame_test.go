package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randColor(rng *rand.Rand, w, h int) *ColorImage {
	im := NewColorImage(w, h)
	rng.Read(im.Pix)
	return im
}

func randDepth(rng *rand.Rand, w, h int) *DepthImage {
	im := NewDepthImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint16(rng.Intn(6001)) // 0-6 m at mm resolution
	}
	return im
}

func TestColorImageSetAt(t *testing.T) {
	im := NewColorImage(4, 3)
	im.Set(2, 1, 10, 20, 30)
	r, g, b := im.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
	if im.SizeBytes() != 4*3*3 {
		t.Errorf("SizeBytes = %d", im.SizeBytes())
	}
}

func TestColorImageCloneIndependent(t *testing.T) {
	im := NewColorImage(2, 2)
	im.Set(0, 0, 1, 2, 3)
	c := im.Clone()
	c.Set(0, 0, 9, 9, 9)
	if r, _, _ := im.At(0, 0); r != 1 {
		t.Error("clone aliases original")
	}
}

func TestColorImageFill(t *testing.T) {
	im := NewColorImage(3, 3)
	im.Fill(7, 8, 9)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if r, g, b := im.At(x, y); r != 7 || g != 8 || b != 9 {
				t.Fatalf("fill failed at %d,%d", x, y)
			}
		}
	}
}

func TestDepthImageBasics(t *testing.T) {
	im := NewDepthImage(4, 4)
	im.Set(3, 3, 5999)
	if im.At(3, 3) != 5999 {
		t.Error("Set/At mismatch")
	}
	if im.SizeBytes() != 4*4*2 {
		t.Errorf("SizeBytes = %d", im.SizeBytes())
	}
	if im.ValidCount() != 1 {
		t.Errorf("ValidCount = %d", im.ValidCount())
	}
	c := im.Clone()
	c.Set(3, 3, 1)
	if im.At(3, 3) != 5999 {
		t.Error("clone aliases original")
	}
}

func TestRGBDFrameValidate(t *testing.T) {
	f := NewRGBDFrame(8, 6)
	if err := f.Validate(); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	bad := RGBDFrame{Color: NewColorImage(8, 6), Depth: NewDepthImage(4, 3)}
	if err := bad.Validate(); err == nil {
		t.Error("misaligned frame accepted")
	}
	if err := (RGBDFrame{}).Validate(); err == nil {
		t.Error("nil frame accepted")
	}
	if f.SizeBytes() != 8*6*3+8*6*2 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}

func TestTilerLayout(t *testing.T) {
	// 10 cameras (the Panoptic/Kinect setup) -> 4x3 grid.
	tl, err := NewTiler(10, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Cols != 4 || tl.Rows != 3 {
		t.Errorf("layout = %dx%d", tl.Cols, tl.Rows)
	}
	w, h := tl.FrameSize()
	if w != 256 || h != 144 {
		t.Errorf("frame size = %dx%d", w, h)
	}
	// Tiles must not overlap and stay in bounds.
	seen := map[[2]int]bool{}
	for i := 0; i < tl.N; i++ {
		x, y := tl.TileOrigin(i)
		if x < 0 || y < 0 || x+tl.TileW > w || y+tl.TileH > h {
			t.Errorf("tile %d out of bounds at %d,%d", i, x, y)
		}
		k := [2]int{x, y}
		if seen[k] {
			t.Errorf("tile %d overlaps another at %d,%d", i, x, y)
		}
		seen[k] = true
	}
}

func TestTilerInvalid(t *testing.T) {
	if _, err := NewTiler(0, 8, 8); err == nil {
		t.Error("accepted zero cameras")
	}
	if _, err := NewTiler(4, -1, 8); err == nil {
		t.Error("accepted negative width")
	}
}

func TestTileComposeExtractRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tl, _ := NewTiler(10, 32, 24)
	colors := make([]*ColorImage, 10)
	depths := make([]*DepthImage, 10)
	for i := range colors {
		colors[i] = randColor(rng, 32, 24)
		depths[i] = randDepth(rng, 32, 24)
	}
	tc, err := tl.ComposeColor(colors)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tl.ComposeDepth(depths)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c, err := tl.ExtractColor(tc, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range c.Pix {
			if c.Pix[j] != colors[i].Pix[j] {
				t.Fatalf("color tile %d corrupted at byte %d", i, j)
			}
		}
		d, err := tl.ExtractDepth(td, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range d.Pix {
			if d.Pix[j] != depths[i].Pix[j] {
				t.Fatalf("depth tile %d corrupted at %d", i, j)
			}
		}
	}
}

func TestTileComposeErrors(t *testing.T) {
	tl, _ := NewTiler(2, 8, 8)
	if _, err := tl.ComposeColor([]*ColorImage{NewColorImage(8, 8)}); err == nil {
		t.Error("accepted wrong view count")
	}
	if _, err := tl.ComposeColor([]*ColorImage{NewColorImage(8, 8), NewColorImage(4, 4)}); err == nil {
		t.Error("accepted wrong view size")
	}
	if _, err := tl.ComposeDepth([]*DepthImage{NewDepthImage(8, 8)}); err == nil {
		t.Error("accepted wrong depth view count")
	}
	if _, err := tl.ExtractColor(NewColorImage(3, 3), 0); err == nil {
		t.Error("accepted wrong tiled size")
	}
	big, _ := tl.ComposeColor([]*ColorImage{NewColorImage(8, 8), NewColorImage(8, 8)})
	if _, err := tl.ExtractColor(big, 5); err == nil {
		t.Error("accepted out-of-range index")
	}
	bigD, _ := tl.ComposeDepth([]*DepthImage{NewDepthImage(8, 8), NewDepthImage(8, 8)})
	if _, err := tl.ExtractDepth(bigD, -1); err == nil {
		t.Error("accepted negative index")
	}
}

func TestMarkerRoundTripClean(t *testing.T) {
	f := func(seq uint32) bool {
		c := NewColorImage(MarkerWidth, MarkerHeight)
		if err := StampColorMarker(c, seq); err != nil {
			return false
		}
		got, err := DecodeColorMarker(c)
		if err != nil || got != seq {
			return false
		}
		d := NewDepthImage(MarkerWidth, MarkerHeight)
		if err := StampDepthMarker(d, seq); err != nil {
			return false
		}
		got2, err := DecodeDepthMarker(d)
		return err == nil && got2 == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMarkerSurvivesNoise(t *testing.T) {
	// The marker must survive quantization-like noise (this is why each bit
	// is a full 8x8 block of saturated pixels).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		seq := rng.Uint32()
		c := NewColorImage(MarkerWidth, MarkerHeight)
		if err := StampColorMarker(c, seq); err != nil {
			t.Fatal(err)
		}
		for i := range c.Pix {
			n := int(c.Pix[i]) + rng.Intn(81) - 40 // +/-40 levels of noise
			if n < 0 {
				n = 0
			}
			if n > 255 {
				n = 255
			}
			c.Pix[i] = uint8(n)
		}
		got, err := DecodeColorMarker(c)
		if err != nil || got != seq {
			t.Fatalf("marker lost under noise: got %d err %v want %d", got, err, seq)
		}
	}
}

func TestMarkerParityDetectsCorruption(t *testing.T) {
	c := NewColorImage(MarkerWidth, MarkerHeight)
	if err := StampColorMarker(c, 12345); err != nil {
		t.Fatal(err)
	}
	// Flip one whole data-bit cell.
	for y := 0; y < MarkerCell; y++ {
		for x := 0; x < MarkerCell; x++ {
			r, _, _ := c.At(x, y)
			v := uint8(255) - r
			c.Set(x, y, v, v, v)
		}
	}
	if _, err := DecodeColorMarker(c); err == nil {
		t.Error("corrupted marker decoded without error")
	}
}

func TestMarkerTooSmall(t *testing.T) {
	small := NewColorImage(8, 8)
	if err := StampColorMarker(small, 1); err == nil {
		t.Error("stamp accepted tiny frame")
	}
	if _, err := DecodeColorMarker(small); err == nil {
		t.Error("decode accepted tiny frame")
	}
	smallD := NewDepthImage(8, 8)
	if err := StampDepthMarker(smallD, 1); err == nil {
		t.Error("depth stamp accepted tiny frame")
	}
	if _, err := DecodeDepthMarker(smallD); err == nil {
		t.Error("depth decode accepted tiny frame")
	}
}
