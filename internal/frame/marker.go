package frame

import "fmt"

// Sequence markers: WebRTC does not let applications embed frame numbers in
// video streams, so the LiVo sender stamps a machine-readable code encoding
// the frame sequence number into every tiled color and depth frame, and the
// receiver decodes it to pair corresponding color/depth frames (§A.1). The
// paper uses pre-generated QR codes; we use a binary block code: each bit is
// a MarkerCell x MarkerCell block of saturated black/white pixels, which
// comfortably survives lossy block-transform coding.

// MarkerCell is the side length in pixels of one marker bit cell. It matches
// the codec's block size so each bit occupies a full transform block.
const MarkerCell = 8

// MarkerBits is the number of data bits in a marker (32-bit sequence number
// plus 8 parity bits for error detection).
const MarkerBits = 40

// MarkerWidth is the horizontal extent of a marker strip in pixels.
const MarkerWidth = MarkerBits * MarkerCell

// MarkerHeight is the vertical extent of a marker strip in pixels.
const MarkerHeight = MarkerCell

// markerParity returns the 8-bit XOR-fold of the sequence number.
func markerParity(seq uint32) uint8 {
	return uint8(seq) ^ uint8(seq>>8) ^ uint8(seq>>16) ^ uint8(seq>>24)
}

// markerBit reports the value of bit i (0..MarkerBits-1) for seq. Bits 0-31
// are the sequence number LSB-first, bits 32-39 the parity byte.
func markerBit(seq uint32, i int) bool {
	if i < 32 {
		return seq>>uint(i)&1 == 1
	}
	return markerParity(seq)>>uint(i-32)&1 == 1
}

// StampColorMarker writes the sequence marker into the top-left strip of a
// color frame. The frame must be at least MarkerWidth x MarkerHeight.
func StampColorMarker(im *ColorImage, seq uint32) error {
	if im.W < MarkerWidth || im.H < MarkerHeight {
		return fmt.Errorf("frame: %dx%d too small for marker (%dx%d)", im.W, im.H, MarkerWidth, MarkerHeight)
	}
	for i := 0; i < MarkerBits; i++ {
		var v uint8
		if markerBit(seq, i) {
			v = 255
		}
		for y := 0; y < MarkerCell; y++ {
			for x := 0; x < MarkerCell; x++ {
				im.Set(i*MarkerCell+x, y, v, v, v)
			}
		}
	}
	return nil
}

// DecodeColorMarker reads the sequence marker back from a (possibly lossy)
// color frame. It averages each cell's green channel, thresholds
// adaptively at the midpoint of the observed cell range (lossy pipelines
// may compress the dynamic range, e.g. depth rescaling), then verifies
// parity.
func DecodeColorMarker(im *ColorImage) (uint32, error) {
	if im.W < MarkerWidth || im.H < MarkerHeight {
		return 0, fmt.Errorf("frame: %dx%d too small for marker", im.W, im.H)
	}
	var cells [MarkerBits]float64
	for i := 0; i < MarkerBits; i++ {
		sum := 0
		for y := 0; y < MarkerCell; y++ {
			for x := 0; x < MarkerCell; x++ {
				_, g, _ := im.At(i*MarkerCell+x, y)
				sum += int(g)
			}
		}
		cells[i] = float64(sum) / (MarkerCell * MarkerCell)
	}
	return decodeCells(cells[:])
}

// decodeCells thresholds cell averages at the midpoint of their range and
// verifies parity. An all-zero marker (seq 0) degenerates safely: the
// threshold sits at the common value and no bit exceeds it.
func decodeCells(cells []float64) (uint32, error) {
	lo, hi := cells[0], cells[0]
	for _, c := range cells {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	thr := (lo + hi) / 2
	var seq uint32
	var parity uint8
	for i, c := range cells {
		if c > thr {
			if i < 32 {
				seq |= 1 << uint(i)
			} else {
				parity |= 1 << uint(i-32)
			}
		}
	}
	if parity != markerParity(seq) {
		return 0, fmt.Errorf("frame: marker parity mismatch (seq=%d)", seq)
	}
	return seq, nil
}

// StampDepthMarker writes the sequence marker into the top-left strip of a
// depth frame using the extremes of the 16-bit range.
func StampDepthMarker(im *DepthImage, seq uint32) error {
	if im.W < MarkerWidth || im.H < MarkerHeight {
		return fmt.Errorf("frame: %dx%d too small for marker (%dx%d)", im.W, im.H, MarkerWidth, MarkerHeight)
	}
	for i := 0; i < MarkerBits; i++ {
		var v uint16
		if markerBit(seq, i) {
			v = 0xFFFF
		}
		for y := 0; y < MarkerCell; y++ {
			for x := 0; x < MarkerCell; x++ {
				im.Set(i*MarkerCell+x, y, v)
			}
		}
	}
	return nil
}

// DecodeDepthMarker reads the sequence marker back from a depth frame. The
// threshold adapts to the observed cell range because the depth pipeline
// rescales values (a "1" cell stamped at 0xFFFF comes back clamped to the
// sensor's maximum range).
func DecodeDepthMarker(im *DepthImage) (uint32, error) {
	if im.W < MarkerWidth || im.H < MarkerHeight {
		return 0, fmt.Errorf("frame: %dx%d too small for marker", im.W, im.H)
	}
	var cells [MarkerBits]float64
	for i := 0; i < MarkerBits; i++ {
		var sum uint64
		for y := 0; y < MarkerCell; y++ {
			for x := 0; x < MarkerCell; x++ {
				sum += uint64(im.At(i*MarkerCell+x, y))
			}
		}
		cells[i] = float64(sum) / (MarkerCell * MarkerCell)
	}
	return decodeCells(cells[:])
}
