// Package frame provides the 2D image types LiVo streams: 8-bit RGB color
// images and 16-bit millimeter depth images, plus the tiling composer that
// multiplexes N camera views into a single color frame and a single depth
// frame (§3.2), and the in-band frame-sequence markers the receiver uses to
// re-synchronize the two streams (§A.1; the paper uses QR codes, we use a
// simpler binary block code with the same role — see DESIGN.md).
package frame

import "fmt"

// ColorImage is an 8-bit-per-channel RGB image. Pix holds 3*W*H bytes in
// row-major RGB order.
type ColorImage struct {
	W, H int
	Pix  []uint8
}

// NewColorImage allocates a zeroed (black) color image.
func NewColorImage(w, h int) *ColorImage {
	return &ColorImage{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the RGB triple at (x, y). No bounds checking beyond the slice's.
func (im *ColorImage) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores the RGB triple at (x, y).
func (im *ColorImage) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (im *ColorImage) Clone() *ColorImage {
	c := NewColorImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Fill sets every pixel to (r, g, b).
func (im *ColorImage) Fill(r, g, b uint8) {
	for i := 0; i < len(im.Pix); i += 3 {
		im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
	}
}

// SizeBytes returns the raw (uncompressed) size of the image in bytes.
func (im *ColorImage) SizeBytes() int { return len(im.Pix) }

// DepthImage is a 16-bit single-channel depth image. Values are millimeters;
// 0 means "no measurement" (or culled). Commodity RGB-D cameras output
// 16-bit depth at millimeter resolution with a 5-6 m range (§3.2).
type DepthImage struct {
	W, H int
	Pix  []uint16
}

// NewDepthImage allocates a zeroed depth image.
func NewDepthImage(w, h int) *DepthImage {
	return &DepthImage{W: w, H: h, Pix: make([]uint16, w*h)}
}

// At returns the depth in millimeters at (x, y).
func (im *DepthImage) At(x, y int) uint16 { return im.Pix[y*im.W+x] }

// Set stores a depth value in millimeters at (x, y).
func (im *DepthImage) Set(x, y int, mm uint16) { im.Pix[y*im.W+x] = mm }

// Clone returns a deep copy.
func (im *DepthImage) Clone() *DepthImage {
	c := NewDepthImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// SizeBytes returns the raw (uncompressed) size of the image in bytes.
func (im *DepthImage) SizeBytes() int { return 2 * len(im.Pix) }

// ValidCount returns the number of pixels with a depth measurement (non-zero).
func (im *DepthImage) ValidCount() int {
	n := 0
	for _, d := range im.Pix {
		if d != 0 {
			n++
		}
	}
	return n
}

// RGBDFrame pairs the pixel-aligned color and depth images from one camera
// at one instant. LiVo downsamples color to the depth resolution so the two
// are pixel-aligned (§3.2), which this type assumes.
type RGBDFrame struct {
	Color *ColorImage
	Depth *DepthImage
}

// NewRGBDFrame allocates a zeroed RGB-D frame.
func NewRGBDFrame(w, h int) RGBDFrame {
	return RGBDFrame{Color: NewColorImage(w, h), Depth: NewDepthImage(w, h)}
}

// Validate checks that color and depth are present and pixel-aligned.
func (f RGBDFrame) Validate() error {
	if f.Color == nil || f.Depth == nil {
		return fmt.Errorf("frame: missing color or depth image")
	}
	if f.Color.W != f.Depth.W || f.Color.H != f.Depth.H {
		return fmt.Errorf("frame: color %dx%d not aligned with depth %dx%d",
			f.Color.W, f.Color.H, f.Depth.W, f.Depth.H)
	}
	return nil
}

// Clone deep-copies the frame.
func (f RGBDFrame) Clone() RGBDFrame {
	return RGBDFrame{Color: f.Color.Clone(), Depth: f.Depth.Clone()}
}

// SizeBytes returns the raw frame size (color + depth planes).
func (f RGBDFrame) SizeBytes() int { return f.Color.SizeBytes() + f.Depth.SizeBytes() }
