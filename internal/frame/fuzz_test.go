package frame

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeMarkers hardens the in-band marker decoders against arbitrary
// pixel content (which is exactly what a corrupted-but-decodable frame
// carries): decode must never panic, and a marker stamped from the fuzz
// input must round-trip.
func FuzzDecodeMarkers(f *testing.F) {
	im := NewColorImage(MarkerWidth, MarkerHeight)
	if err := StampColorMarker(im, 12345); err != nil {
		f.Fatal(err)
	}
	f.Add(im.Pix)
	f.Add(make([]byte, 3*MarkerWidth*MarkerHeight))
	f.Add([]byte{0xFF, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, pix []byte) {
		// Arbitrary pixels: parity rejects most, none may panic.
		c := NewColorImage(MarkerWidth, MarkerHeight)
		copy(c.Pix, pix)
		_, _ = DecodeColorMarker(c)
		d := NewDepthImage(MarkerWidth, MarkerHeight)
		for i := 0; i < len(d.Pix) && 2*i+1 < len(pix); i++ {
			d.Pix[i] = binary.LittleEndian.Uint16(pix[2*i:])
		}
		_, _ = DecodeDepthMarker(d)

		// Round trip: a sequence number derived from the input survives
		// stamping and decoding on both modalities.
		var seq uint32
		if len(pix) >= 4 {
			seq = binary.LittleEndian.Uint32(pix)
		}
		if err := StampColorMarker(c, seq); err != nil {
			t.Fatal(err)
		}
		if got, err := DecodeColorMarker(c); err != nil || got != seq {
			t.Fatalf("color marker round trip: got %d, %v; want %d", got, err, seq)
		}
		if err := StampDepthMarker(d, seq); err != nil {
			t.Fatal(err)
		}
		if got, err := DecodeDepthMarker(d); err != nil || got != seq {
			t.Fatalf("depth marker round trip: got %d, %v; want %d", got, err, seq)
		}
	})
}
