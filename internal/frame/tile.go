package frame

import "fmt"

// Tiler multiplexes the color (resp. depth) images of N cameras into one
// large frame (§3.2, Fig 3). Each camera owns a fixed rectangle of the tiled
// frame across all frames of a session, which preserves macroblock locality
// and keeps 2D inter-frame prediction effective.
type Tiler struct {
	N            int // number of cameras
	TileW, TileH int // per-camera image resolution
	Cols, Rows   int // grid layout
}

// NewTiler picks a near-square grid that fits n tiles of tileW x tileH.
func NewTiler(n, tileW, tileH int) (*Tiler, error) {
	if n <= 0 || tileW <= 0 || tileH <= 0 {
		return nil, fmt.Errorf("tiler: invalid arguments n=%d tile=%dx%d", n, tileW, tileH)
	}
	// Choose cols to make the tiled frame roughly 16:9-ish; a near-square
	// grid of tiles works well for the camera counts we target (≤16).
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	return &Tiler{N: n, TileW: tileW, TileH: tileH, Cols: cols, Rows: rows}, nil
}

// FrameSize returns the tiled frame dimensions.
func (t *Tiler) FrameSize() (w, h int) { return t.Cols * t.TileW, t.Rows * t.TileH }

// TileOrigin returns the top-left pixel of camera i's rectangle.
func (t *Tiler) TileOrigin(i int) (x, y int) {
	return (i % t.Cols) * t.TileW, (i / t.Cols) * t.TileH
}

// ComposeColor tiles the N per-camera color images into one frame. It
// returns an error if the number or size of inputs does not match.
func (t *Tiler) ComposeColor(views []*ColorImage) (*ColorImage, error) {
	if len(views) != t.N {
		return nil, fmt.Errorf("tiler: got %d color views, want %d", len(views), t.N)
	}
	w, h := t.FrameSize()
	out := NewColorImage(w, h)
	for i, v := range views {
		if v.W != t.TileW || v.H != t.TileH {
			return nil, fmt.Errorf("tiler: view %d is %dx%d, want %dx%d", i, v.W, v.H, t.TileW, t.TileH)
		}
		ox, oy := t.TileOrigin(i)
		for y := 0; y < t.TileH; y++ {
			src := v.Pix[3*y*t.TileW : 3*(y+1)*t.TileW]
			dstOff := 3 * ((oy+y)*w + ox)
			copy(out.Pix[dstOff:dstOff+3*t.TileW], src)
		}
	}
	return out, nil
}

// ComposeDepth tiles the N per-camera depth images into one frame.
func (t *Tiler) ComposeDepth(views []*DepthImage) (*DepthImage, error) {
	if len(views) != t.N {
		return nil, fmt.Errorf("tiler: got %d depth views, want %d", len(views), t.N)
	}
	w, h := t.FrameSize()
	out := NewDepthImage(w, h)
	for i, v := range views {
		if v.W != t.TileW || v.H != t.TileH {
			return nil, fmt.Errorf("tiler: view %d is %dx%d, want %dx%d", i, v.W, v.H, t.TileW, t.TileH)
		}
		ox, oy := t.TileOrigin(i)
		for y := 0; y < t.TileH; y++ {
			src := v.Pix[y*t.TileW : (y+1)*t.TileW]
			dstOff := (oy+y)*w + ox
			copy(out.Pix[dstOff:dstOff+t.TileW], src)
		}
	}
	return out, nil
}

// ExtractColor cuts camera i's rectangle back out of a tiled color frame.
func (t *Tiler) ExtractColor(tiled *ColorImage, i int) (*ColorImage, error) {
	w, h := t.FrameSize()
	if tiled.W != w || tiled.H != h {
		return nil, fmt.Errorf("tiler: tiled frame is %dx%d, want %dx%d", tiled.W, tiled.H, w, h)
	}
	if i < 0 || i >= t.N {
		return nil, fmt.Errorf("tiler: camera index %d out of range [0,%d)", i, t.N)
	}
	out := NewColorImage(t.TileW, t.TileH)
	t.extractColorInto(tiled, i, out)
	return out, nil
}

// ExtractColorInto cuts camera i's rectangle into an existing tile-sized
// image without allocating (the receiver's per-frame path).
func (t *Tiler) ExtractColorInto(tiled *ColorImage, i int, out *ColorImage) error {
	w, h := t.FrameSize()
	if tiled.W != w || tiled.H != h {
		return fmt.Errorf("tiler: tiled frame is %dx%d, want %dx%d", tiled.W, tiled.H, w, h)
	}
	if i < 0 || i >= t.N {
		return fmt.Errorf("tiler: camera index %d out of range [0,%d)", i, t.N)
	}
	if out.W != t.TileW || out.H != t.TileH {
		return fmt.Errorf("tiler: output is %dx%d, want %dx%d", out.W, out.H, t.TileW, t.TileH)
	}
	t.extractColorInto(tiled, i, out)
	return nil
}

func (t *Tiler) extractColorInto(tiled *ColorImage, i int, out *ColorImage) {
	w, _ := t.FrameSize()
	ox, oy := t.TileOrigin(i)
	for y := 0; y < t.TileH; y++ {
		srcOff := 3 * ((oy+y)*w + ox)
		copy(out.Pix[3*y*t.TileW:3*(y+1)*t.TileW], tiled.Pix[srcOff:srcOff+3*t.TileW])
	}
}

// ExtractDepth cuts camera i's rectangle back out of a tiled depth frame.
func (t *Tiler) ExtractDepth(tiled *DepthImage, i int) (*DepthImage, error) {
	w, h := t.FrameSize()
	if tiled.W != w || tiled.H != h {
		return nil, fmt.Errorf("tiler: tiled frame is %dx%d, want %dx%d", tiled.W, tiled.H, w, h)
	}
	if i < 0 || i >= t.N {
		return nil, fmt.Errorf("tiler: camera index %d out of range [0,%d)", i, t.N)
	}
	out := NewDepthImage(t.TileW, t.TileH)
	t.extractDepthInto(tiled, i, out)
	return out, nil
}

// ExtractDepthInto cuts camera i's rectangle into an existing tile-sized
// image without allocating.
func (t *Tiler) ExtractDepthInto(tiled *DepthImage, i int, out *DepthImage) error {
	w, h := t.FrameSize()
	if tiled.W != w || tiled.H != h {
		return fmt.Errorf("tiler: tiled frame is %dx%d, want %dx%d", tiled.W, tiled.H, w, h)
	}
	if i < 0 || i >= t.N {
		return fmt.Errorf("tiler: camera index %d out of range [0,%d)", i, t.N)
	}
	if out.W != t.TileW || out.H != t.TileH {
		return fmt.Errorf("tiler: output is %dx%d, want %dx%d", out.W, out.H, t.TileW, t.TileH)
	}
	t.extractDepthInto(tiled, i, out)
	return nil
}

func (t *Tiler) extractDepthInto(tiled *DepthImage, i int, out *DepthImage) {
	w, _ := t.FrameSize()
	ox, oy := t.TileOrigin(i)
	for y := 0; y < t.TileH; y++ {
		srcOff := (oy+y)*w + ox
		copy(out.Pix[y*t.TileW:(y+1)*t.TileW], tiled.Pix[srcOff:srcOff+t.TileW])
	}
}
