// Package render is the receiver's final pipeline stage (§A.1): it projects
// a reconstructed point cloud into a 2D image from the viewer's pose with a
// z-buffer and distance-scaled point splats. LiVo must render within the
// motion-to-photon budget (<20 ms, §4.4); Splat on a voxelized cloud meets
// that comfortably on a CPU at headset-like resolutions.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"livo/internal/geom"
	"livo/internal/pointcloud"
)

// Options configure a render pass.
type Options struct {
	Width, Height int
	// View is the viewer's frustum parameters; FovY/Aspect drive the
	// projection, Near/Far clip.
	View geom.ViewParams
	// PointSize scales splat radius: a point at distance z covers
	// approximately PointSize/z pixels (default 2.5, roughly the voxel
	// footprint of a §A.1-voxelized cloud).
	PointSize float64
	// Background is the clear color (default dark gray).
	Background color.RGBA
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 640
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	if o.View.FovY == 0 {
		o.View = geom.DefaultViewParams()
		o.View.Aspect = float64(o.Width) / float64(o.Height)
	}
	if o.PointSize <= 0 {
		o.PointSize = 2.5
	}
	if o.Background == (color.RGBA{}) {
		o.Background = color.RGBA{R: 24, G: 24, B: 28, A: 255}
	}
	return o
}

// Image is a rendered frame with its depth buffer.
type Image struct {
	RGBA *image.RGBA
	// Z holds the camera-space depth per pixel (+Inf = background).
	Z []float64
	// Drawn is the number of points that landed inside the viewport.
	Drawn int
}

// Splat renders the cloud from the viewer pose.
func Splat(cloud *pointcloud.Cloud, viewer geom.Pose, opts Options) *Image {
	opts = opts.withDefaults()
	w, h := opts.Width, opts.Height
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	z := make([]float64, w*h)
	for i := range z {
		z[i] = math.Inf(1)
	}
	// Clear.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, opts.Background)
		}
	}
	// Projection constants: focal length in pixels from the vertical FoV.
	fy := float64(h) / 2 / math.Tan(opts.View.FovY/2)
	fx := fy // square pixels; aspect handled by the viewport itself
	cx, cy := float64(w)/2, float64(h)/2
	worldToCam := viewer.InverseMat4()

	out := &Image{RGBA: img, Z: z}
	for i, p := range cloud.Positions {
		lc := worldToCam.TransformPoint(p)
		if lc.Z < opts.View.Near || lc.Z > opts.View.Far {
			continue
		}
		u := lc.X/lc.Z*fx + cx
		v := lc.Y/lc.Z*fy + cy
		if u < 0 || u >= float64(w) || v < 0 || v >= float64(h) {
			continue
		}
		out.Drawn++
		col := cloud.Colors[i]
		r := opts.PointSize / lc.Z
		if r < 0.5 {
			r = 0.5
		}
		ir := int(r + 0.5)
		ui, vi := int(u), int(v)
		for dy := -ir; dy <= ir; dy++ {
			for dx := -ir; dx <= ir; dx++ {
				x, y := ui+dx, vi+dy
				if x < 0 || x >= w || y < 0 || y >= h {
					continue
				}
				idx := y*w + x
				if lc.Z >= z[idx] {
					continue
				}
				z[idx] = lc.Z
				img.SetRGBA(x, y, color.RGBA{R: col[0], G: col[1], B: col[2], A: 255})
			}
		}
	}
	return out
}

// Coverage returns the fraction of pixels covered by points (not
// background) — a cheap proxy for how much of the viewport the scene fills.
func (im *Image) Coverage() float64 {
	covered := 0
	for _, d := range im.Z {
		if !math.IsInf(d, 1) {
			covered++
		}
	}
	return float64(covered) / float64(len(im.Z))
}

// WritePNG encodes the rendered image as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	if err := png.Encode(w, im.RGBA); err != nil {
		return fmt.Errorf("render: png: %w", err)
	}
	return nil
}
