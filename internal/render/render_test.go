package render

import (
	"bytes"
	"image/color"
	"math"
	"testing"
	"time"

	"livo/internal/geom"
	"livo/internal/pointcloud"
)

// wall builds a flat grid of points at z = dist in front of the origin.
func wall(n int, dist float64, col [3]uint8) *pointcloud.Cloud {
	c := pointcloud.New(n * n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c.Add(geom.V3(
				(float64(x)/float64(n-1)-0.5)*2,
				(float64(y)/float64(n-1)-0.5)*2,
				dist,
			), col)
		}
	}
	return c
}

func TestSplatBasics(t *testing.T) {
	c := wall(40, 2.0, [3]uint8{200, 50, 50})
	im := Splat(c, geom.PoseIdentity, Options{Width: 160, Height: 120})
	if im.Drawn == 0 {
		t.Fatal("no points drawn")
	}
	if im.Coverage() <= 0 {
		t.Fatal("no coverage")
	}
	// Center pixel is wall-colored, depth 2 m.
	px := im.RGBA.RGBAAt(80, 60)
	if px.R < 150 || px.G > 100 {
		t.Errorf("center pixel = %+v, want red", px)
	}
	if math.Abs(im.Z[60*160+80]-2.0) > 0.05 {
		t.Errorf("center depth = %v", im.Z[60*160+80])
	}
	// Corner pixel should be background (wall subtends < full FoV... at
	// 2 m a ±1 m wall subtends ~53°, less than the default FoV).
	bg := im.RGBA.RGBAAt(0, 0)
	if bg.R != 24 || bg.G != 24 {
		t.Errorf("corner pixel = %+v, want background", bg)
	}
}

func TestSplatZBuffer(t *testing.T) {
	// A near green wall must occlude a far red wall.
	c := wall(40, 3.0, [3]uint8{255, 0, 0})
	near := wall(40, 1.5, [3]uint8{0, 255, 0})
	for i := range near.Positions {
		// Shrink the near wall so the far one is visible around it.
		near.Positions[i].X *= 0.3
		near.Positions[i].Y *= 0.3
		c.Add(near.Positions[i], near.Colors[i])
	}
	im := Splat(c, geom.PoseIdentity, Options{Width: 160, Height: 120})
	center := im.RGBA.RGBAAt(80, 60)
	if center.G < 150 || center.R > 100 {
		t.Errorf("center = %+v, want green (near wall)", center)
	}
}

func TestSplatClipping(t *testing.T) {
	c := pointcloud.New(0)
	c.Add(geom.V3(0, 0, -1), [3]uint8{255, 255, 255})  // behind viewer
	c.Add(geom.V3(0, 0, 100), [3]uint8{255, 255, 255}) // past far plane
	im := Splat(c, geom.PoseIdentity, Options{Width: 64, Height: 64})
	if im.Drawn != 0 {
		t.Errorf("clipped points drawn: %d", im.Drawn)
	}
}

func TestSplatFromPosedViewer(t *testing.T) {
	c := wall(30, 0, [3]uint8{10, 200, 10}) // wall at z=0 plane
	viewer := geom.LookAt(geom.V3(0, 0, -2), geom.V3(0, 0, 0), geom.V3(0, 1, 0))
	im := Splat(c, viewer, Options{Width: 120, Height: 90})
	if im.Drawn == 0 {
		t.Fatal("posed viewer sees nothing")
	}
	px := im.RGBA.RGBAAt(60, 45)
	if px.G < 150 {
		t.Errorf("center = %+v", px)
	}
}

func TestWritePNG(t *testing.T) {
	c := wall(10, 2, [3]uint8{1, 2, 3})
	im := Splat(c, geom.PoseIdentity, Options{Width: 32, Height: 32})
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	// PNG signature.
	if buf.Len() < 8 || buf.Bytes()[1] != 'P' || buf.Bytes()[2] != 'N' || buf.Bytes()[3] != 'G' {
		t.Error("not a PNG")
	}
}

func TestRenderMeetsMTPBudget(t *testing.T) {
	// §4.4: LiVo renders within 6 ms (MTP budget 20 ms). Our CPU splatter
	// must render a voxelized full-scene cloud within the MTP budget at a
	// headset-like resolution.
	c := pointcloud.New(0)
	for i := 0; i < 120_000; i++ {
		c.Add(geom.V3(
			math.Sin(float64(i))*2,
			math.Mod(float64(i)*0.001, 2),
			2+math.Cos(float64(i)),
		), [3]uint8{uint8(i), uint8(i >> 8), 128})
	}
	opts := Options{Width: 640, Height: 480}
	Splat(c, geom.PoseIdentity, opts) // warm up
	start := time.Now()
	Splat(c, geom.PoseIdentity, opts)
	el := time.Since(start)
	if el > 50*time.Millisecond { // generous CI margin over the 20 ms MTP
		t.Errorf("render took %v", el)
	}
	t.Logf("rendered 120k points at 640x480 in %v", el)
}

func TestOptionsDefaults(t *testing.T) {
	im := Splat(pointcloud.New(0), geom.PoseIdentity, Options{})
	b := im.RGBA.Bounds()
	if b.Dx() != 640 || b.Dy() != 480 {
		t.Errorf("default size = %v", b)
	}
	if im.Coverage() != 0 {
		t.Error("empty cloud should cover nothing")
	}
	// Custom background.
	im2 := Splat(pointcloud.New(0), geom.PoseIdentity, Options{
		Width: 8, Height: 8, Background: color.RGBA{R: 9, G: 8, B: 7, A: 255},
	})
	if im2.RGBA.RGBAAt(4, 4).R != 9 {
		t.Error("custom background ignored")
	}
}
