package pointcloud

import (
	"math"

	"livo/internal/geom"
)

// VoxelGrid is a reusable flat open-addressed voxel accumulator — the
// receiver-side voxelization arena (§A.1). It replaces the per-frame
// map[[3]int32]*acc the original VoxelDownsample built: the probe table,
// its epoch stamps, and the dense accumulator array all persist across
// frames, so steady-state downsampling does not allocate.
//
// Accumulators are stored densely in first-appearance order and emitted in
// that order, so the output is deterministic (maps iterate randomly) and
// independent of table size or probe history.
//
// The zero value is ready to use.
type VoxelGrid struct {
	keys  []uint64 // packed voxel coordinate per table slot
	idx   []int32  // dense accumulator index per table slot
	epoch []uint32 // slot is live iff epoch matches cur
	cur   uint32
	accs  []voxAcc
}

// voxAcc accumulates one voxel cell: position sums, color sums, count, and
// the packed key (needed to reinsert on table growth).
type voxAcc struct {
	x, y, z    float64
	r, g, b, n int32
	key        uint64
}

// voxCoordBias shifts voxel indices into the unsigned 21-bit range packed
// into the hash key. Coordinates outside ±2^20 voxels clamp (at any sane
// voxel size that is kilometers from the origin).
const voxCoordBias = 1 << 20

func packVoxel(x, y, z float64, inv float64) uint64 {
	xi := clampVox(int64(math.Floor(x*inv)) + voxCoordBias)
	yi := clampVox(int64(math.Floor(y*inv)) + voxCoordBias)
	zi := clampVox(int64(math.Floor(z*inv)) + voxCoordBias)
	return xi<<42 | yi<<21 | zi
}

// voxHash mixes a packed key so the masked low bits carry the multiply's
// high-bit entropy.
func voxHash(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

func clampVox(v int64) uint64 {
	if v < 0 {
		return 0
	}
	if v > 1<<21-1 {
		return 1<<21 - 1
	}
	return uint64(v)
}

// DownsampleInto voxelizes src into dst, reusing dst's slices: at most one
// point per cubic voxel of the given size (meters), the centroid of the
// voxel's points with their average color. A non-positive voxel size
// copies src verbatim.
func (g *VoxelGrid) DownsampleInto(dst, src *Cloud, voxel float64) {
	dst.Positions = dst.Positions[:0]
	dst.Colors = dst.Colors[:0]
	if voxel <= 0 || src.Len() == 0 {
		dst.Positions = append(dst.Positions, src.Positions...)
		dst.Colors = append(dst.Colors, src.Colors...)
		return
	}
	g.reset(src.Len())
	inv := 1 / voxel
	for i, p := range src.Positions {
		key := packVoxel(p.X, p.Y, p.Z, inv)
		a := g.lookup(key)
		a.x += p.X
		a.y += p.Y
		a.z += p.Z
		a.r += int32(src.Colors[i][0])
		a.g += int32(src.Colors[i][1])
		a.b += int32(src.Colors[i][2])
		a.n++
	}
	for i := range g.accs {
		a := &g.accs[i]
		inv := 1 / float64(a.n)
		dst.Positions = append(dst.Positions, geom.V3(a.x*inv, a.y*inv, a.z*inv))
		dst.Colors = append(dst.Colors, [3]uint8{
			uint8(float64(a.r)*inv + 0.5),
			uint8(float64(a.g)*inv + 0.5),
			uint8(float64(a.b)*inv + 0.5),
		})
	}
}

// reset clears the grid for a new frame, sizing the table for an expected
// point count. Epoch stamping makes the clear O(1) except when the table
// grows or the 32-bit epoch wraps.
func (g *VoxelGrid) reset(expectPoints int) {
	g.accs = g.accs[:0]
	want := 64
	for want < expectPoints/2 {
		want <<= 1
	}
	if len(g.keys) < want {
		g.keys = make([]uint64, want)
		g.idx = make([]int32, want)
		g.epoch = make([]uint32, want)
		g.cur = 0
	}
	g.cur++
	if g.cur == 0 { // epoch wrapped: stamps are ambiguous, hard-clear
		for i := range g.epoch {
			g.epoch[i] = 0
		}
		g.cur = 1
	}
}

// lookup returns the accumulator for key, inserting an empty one on first
// sight. Fibonacci-hash probing over a power-of-two table.
func (g *VoxelGrid) lookup(key uint64) *voxAcc {
	mask := uint64(len(g.keys) - 1)
	slot := voxHash(key) & mask
	for {
		if g.epoch[slot] != g.cur {
			if len(g.accs)*4 >= len(g.keys)*3 {
				g.grow()
				mask = uint64(len(g.keys) - 1)
				slot = voxHash(key) & mask
				continue
			}
			g.epoch[slot] = g.cur
			g.keys[slot] = key
			g.idx[slot] = int32(len(g.accs))
			g.accs = append(g.accs, voxAcc{key: key})
			return &g.accs[len(g.accs)-1]
		}
		if g.keys[slot] == key {
			return &g.accs[g.idx[slot]]
		}
		slot = (slot + 1) & mask
	}
}

// grow doubles the table and reinserts the live accumulators.
func (g *VoxelGrid) grow() {
	n := len(g.keys) * 2
	g.keys = make([]uint64, n)
	g.idx = make([]int32, n)
	g.epoch = make([]uint32, n)
	g.cur = 1
	mask := uint64(n - 1)
	for i := range g.accs {
		key := g.accs[i].key
		slot := voxHash(key) & mask
		for g.epoch[slot] == g.cur {
			slot = (slot + 1) & mask
		}
		g.epoch[slot] = g.cur
		g.keys[slot] = key
		g.idx[slot] = int32(i)
	}
}
