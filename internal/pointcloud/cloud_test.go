package pointcloud

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"livo/internal/geom"
)

func randCloud(rng *rand.Rand, n int, extent float64) *Cloud {
	c := New(n)
	for i := 0; i < n; i++ {
		c.Add(
			geom.V3(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent),
			[3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))},
		)
	}
	return c
}

func TestCloudBasics(t *testing.T) {
	c := New(0)
	if c.Len() != 0 {
		t.Fatal("new cloud not empty")
	}
	c.Add(geom.V3(1, 2, 3), [3]uint8{4, 5, 6})
	if c.Len() != 1 || c.Positions[0] != geom.V3(1, 2, 3) || c.Colors[0] != [3]uint8{4, 5, 6} {
		t.Fatal("Add failed")
	}
	if c.SizeBytes() != 15 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestFromSlices(t *testing.T) {
	_, err := FromSlices([]geom.Vec3{{}}, nil)
	if err == nil {
		t.Error("mismatched slices accepted")
	}
	c, err := FromSlices([]geom.Vec3{{X: 1}}, [][3]uint8{{2, 3, 4}})
	if err != nil || c.Len() != 1 {
		t.Errorf("FromSlices failed: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := randCloud(rand.New(rand.NewSource(1)), 10, 1)
	d := c.Clone()
	d.Positions[0] = geom.V3(99, 99, 99)
	d.Colors[0] = [3]uint8{0, 0, 0}
	if c.Positions[0] == d.Positions[0] {
		t.Error("clone aliases positions")
	}
}

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randCloud(rng, 100, 3)
	orig := c.Clone()
	p := geom.Pose{
		Position: geom.V3(1, -2, 0.5),
		Rotation: geom.QuatFromAxisAngle(geom.V3(1, 1, 0), 0.7),
	}
	c.Transform(p.Mat4())
	c.Transform(p.InverseMat4())
	for i := range c.Positions {
		if !c.Positions[i].AlmostEqual(orig.Positions[i], 1e-9) {
			t.Fatalf("transform round trip failed at %d", i)
		}
	}
}

func TestCullFrustum(t *testing.T) {
	c := New(0)
	c.Add(geom.V3(0, 0, 5), [3]uint8{1, 1, 1})  // inside
	c.Add(geom.V3(0, 0, -5), [3]uint8{2, 2, 2}) // behind
	c.Add(geom.V3(50, 0, 5), [3]uint8{3, 3, 3}) // far outside
	f := geom.NewFrustum(geom.PoseIdentity, geom.ViewParams{FovY: math.Pi / 2, Aspect: 1, Near: 0.1, Far: 10})
	culled := c.CullFrustum(f)
	if culled.Len() != 1 || culled.Colors[0] != [3]uint8{1, 1, 1} {
		t.Fatalf("culled = %d points", culled.Len())
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randCloud(rng, 100, 1)
	s := c.Sample(10, rng)
	if s.Len() != 10 {
		t.Fatalf("sample len = %d", s.Len())
	}
	// Sampling more than available clones.
	s2 := c.Sample(1000, rng)
	if s2.Len() != 100 {
		t.Fatalf("oversample len = %d", s2.Len())
	}
	// All sampled points exist in the original.
	seen := map[geom.Vec3]bool{}
	for _, p := range c.Positions {
		seen[p] = true
	}
	for _, p := range s.Positions {
		if !seen[p] {
			t.Fatal("sample invented a point")
		}
	}
}

func TestVoxelDownsample(t *testing.T) {
	c := New(0)
	// Two clusters far apart; each collapses to its centroid.
	c.Add(geom.V3(0.01, 0.01, 0.01), [3]uint8{10, 0, 0})
	c.Add(geom.V3(0.02, 0.02, 0.02), [3]uint8{20, 0, 0})
	c.Add(geom.V3(5.01, 5.01, 5.01), [3]uint8{100, 0, 0})
	d := c.VoxelDownsample(0.1)
	if d.Len() != 2 {
		t.Fatalf("downsampled to %d points, want 2", d.Len())
	}
	// Find the cluster-1 centroid.
	var found bool
	for i, p := range d.Positions {
		if p.AlmostEqual(geom.V3(0.015, 0.015, 0.015), 1e-9) {
			found = true
			if d.Colors[i][0] != 15 {
				t.Errorf("averaged color = %d, want 15", d.Colors[i][0])
			}
		}
	}
	if !found {
		t.Error("centroid of cluster 1 missing")
	}
}

func TestVoxelDownsampleDegenerate(t *testing.T) {
	c := randCloud(rand.New(rand.NewSource(4)), 10, 1)
	if got := c.VoxelDownsample(0); got.Len() != 10 {
		t.Error("non-positive voxel should clone")
	}
	empty := New(0)
	if got := empty.VoxelDownsample(0.1); got.Len() != 0 {
		t.Error("empty cloud downsample should be empty")
	}
}

func TestVoxelDownsampleReducesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randCloud(rng, 5000, 1.0)
	d := c.VoxelDownsample(0.2)
	if d.Len() >= c.Len() {
		t.Fatalf("downsample did not reduce: %d -> %d", c.Len(), d.Len())
	}
	// Max one point per voxel: at most 5^3+slack cells in a 1m cube (points
	// can land in cells [-0..5] per axis due to edge flooring).
	if d.Len() > 6*6*6 {
		t.Fatalf("too many voxels: %d", d.Len())
	}
}

func TestBounds(t *testing.T) {
	c := New(0)
	c.Add(geom.V3(-1, 0, 2), [3]uint8{})
	c.Add(geom.V3(3, -4, 1), [3]uint8{})
	b := c.Bounds()
	if b.Min != geom.V3(-1, -4, 1) || b.Max != geom.V3(3, 0, 2) {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestPLYRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randCloud(rng, 200, 3.0)
	var buf bytes.Buffer
	if err := c.WritePLY(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("count %d != %d", got.Len(), c.Len())
	}
	for i := range c.Positions {
		if !got.Positions[i].AlmostEqual(c.Positions[i], 1e-5) {
			t.Fatalf("position %d drifted: %v vs %v", i, got.Positions[i], c.Positions[i])
		}
		if got.Colors[i] != c.Colors[i] {
			t.Fatalf("color %d changed", i)
		}
	}
}

func TestPLYHeaderIsStandard(t *testing.T) {
	c := New(0)
	c.Add(geom.V3(1, 2, 3), [3]uint8{4, 5, 6})
	var buf bytes.Buffer
	if err := c.WritePLY(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"ply\n", "format ascii 1.0", "element vertex 1", "end_header"} {
		if !strings.Contains(s, want) {
			t.Errorf("PLY missing %q:\n%s", want, s)
		}
	}
}

func TestReadPLYErrors(t *testing.T) {
	cases := []string{
		"",
		"notply\n",
		"ply\nformat binary_little_endian 1.0\nend_header\n",
		"ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\nend_header\n0\n",
		"ply\nformat ascii 1.0\nelement vertex 2\nproperty float x\nproperty float y\nproperty float z\nproperty uchar red\nproperty uchar green\nproperty uchar blue\nend_header\n0 0 0 0 0 0\n",
		"ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\nproperty float y\nproperty float z\nproperty uchar red\nproperty uchar green\nproperty uchar blue\nend_header\nnot numbers here boo\n",
	}
	for i, in := range cases {
		if _, err := ReadPLY(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
