package pointcloud

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"livo/internal/geom"
)

// bruteNearest is the reference implementation for grid queries.
func bruteNearest(c *Cloud, q geom.Vec3) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range c.Positions {
		if d := p.Dist(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := randCloud(rng, 500, 2.0)
	g := NewGrid(c, 0.2)
	for trial := 0; trial < 200; trial++ {
		q := geom.V3(rng.Float64()*3-0.5, rng.Float64()*3-0.5, rng.Float64()*3-0.5)
		gi, gd := g.Nearest(q)
		bi, bd := bruteNearest(c, q)
		if gi != bi && math.Abs(gd-bd) > 1e-12 {
			t.Fatalf("nearest mismatch at %v: grid (%d,%v) brute (%d,%v)", q, gi, gd, bi, bd)
		}
	}
}

func TestGridNearestFarQuery(t *testing.T) {
	c := New(0)
	c.Add(geom.V3(0, 0, 0), [3]uint8{})
	g := NewGrid(c, 0.1)
	// Query far from the only point: many empty rings must be traversed.
	i, d := g.Nearest(geom.V3(3, 3, 3))
	if i != 0 {
		t.Fatalf("nearest index = %d", i)
	}
	want := math.Sqrt(27)
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("nearest dist = %v, want %v", d, want)
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGrid(New(0), 0.1)
	if i, d := g.Nearest(geom.V3(0, 0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty nearest = (%d,%v)", i, d)
	}
	if nn := g.KNearest(geom.V3(0, 0, 0), 5); nn != nil {
		t.Fatal("empty KNearest should be nil")
	}
}

func TestGridKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randCloud(rng, 300, 1.0)
	g := NewGrid(c, 0.15)
	for trial := 0; trial < 50; trial++ {
		q := geom.V3(rng.Float64(), rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(10)
		got := g.KNearest(q, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		// Brute force distances.
		dists := make([]float64, c.Len())
		for i, p := range c.Positions {
			dists[i] = p.Dist(q)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-12 {
				t.Fatalf("k=%d neighbour %d dist %v, want %v", k, i, nb.Dist, dists[i])
			}
		}
		// Returned sorted.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("KNearest not sorted")
			}
		}
	}
}

func TestGridKNearestClampsK(t *testing.T) {
	c := randCloud(rand.New(rand.NewSource(12)), 5, 1)
	g := NewGrid(c, 0.3)
	nn := g.KNearest(geom.V3(0.5, 0.5, 0.5), 50)
	if len(nn) != 5 {
		t.Fatalf("KNearest len = %d, want 5", len(nn))
	}
	if g.KNearest(geom.V3(0, 0, 0), 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestGridAutoCell(t *testing.T) {
	c := randCloud(rand.New(rand.NewSource(13)), 1000, 1.0)
	g := NewGrid(c, 0)
	if g.Cell() <= 0 {
		t.Fatalf("auto cell = %v", g.Cell())
	}
	// Queries still correct with auto cell.
	q := geom.V3(0.5, 0.5, 0.5)
	gi, _ := g.Nearest(q)
	bi, _ := bruteNearest(c, q)
	if gi != bi {
		t.Fatalf("auto-cell nearest mismatch: %d vs %d", gi, bi)
	}
}

func BenchmarkGridNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	c := randCloud(rng, 20000, 2.0)
	g := NewGrid(c, 0)
	queries := make([]geom.Vec3, 256)
	for i := range queries {
		queries[i] = geom.V3(rng.Float64()*2, rng.Float64()*2, rng.Float64()*2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(queries[i%len(queries)])
	}
}
