// Package pointcloud implements the 3D point-cloud representation LiVo
// reconstructs at the receiver, plus the spatial data structures the rest of
// the system needs: voxel-grid downsampling (used to speed up rendering,
// §A.1), a voxel hash grid for nearest-neighbour queries (used by the
// PointSSIM quality metric), frustum culling, and deterministic sampling.
package pointcloud

import (
	"fmt"
	"math"
	"math/rand"

	"livo/internal/geom"
)

// Cloud is a colored point cloud: parallel position and color slices.
// Positions are in meters in the global frame.
type Cloud struct {
	Positions []geom.Vec3
	Colors    [][3]uint8
}

// New allocates an empty cloud with the given capacity hint.
func New(capacity int) *Cloud {
	return &Cloud{
		Positions: make([]geom.Vec3, 0, capacity),
		Colors:    make([][3]uint8, 0, capacity),
	}
}

// FromSlices wraps existing parallel slices. It returns an error when the
// slices disagree in length.
func FromSlices(pos []geom.Vec3, col [][3]uint8) (*Cloud, error) {
	if len(pos) != len(col) {
		return nil, fmt.Errorf("pointcloud: %d positions but %d colors", len(pos), len(col))
	}
	return &Cloud{Positions: pos, Colors: col}, nil
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Positions) }

// Add appends one point.
func (c *Cloud) Add(p geom.Vec3, col [3]uint8) {
	c.Positions = append(c.Positions, p)
	c.Colors = append(c.Colors, col)
}

// Clone deep-copies the cloud.
func (c *Cloud) Clone() *Cloud {
	out := New(c.Len())
	out.Positions = append(out.Positions, c.Positions...)
	out.Colors = append(out.Colors, c.Colors...)
	return out
}

// Bounds returns the axis-aligned bounding box of the cloud.
func (c *Cloud) Bounds() geom.AABB { return geom.NewAABB(c.Positions) }

// Transform applies a rigid transform to every point in place.
func (c *Cloud) Transform(m geom.Mat4) {
	for i, p := range c.Positions {
		c.Positions[i] = m.TransformPoint(p)
	}
}

// SizeBytes returns the uncompressed size: 3 float32 coordinates plus 3
// color bytes per point (15 B), matching how the paper sizes raw point
// clouds (≈1 MB per 70k-point person, ≈10 MB full-scene).
func (c *Cloud) SizeBytes() int { return c.Len() * 15 }

// CullFrustum returns a new cloud containing only points inside f.
func (c *Cloud) CullFrustum(f geom.Frustum) *Cloud {
	out := New(c.Len() / 4)
	for i, p := range c.Positions {
		if f.Contains(p) {
			out.Add(p, c.Colors[i])
		}
	}
	return out
}

// Sample returns a cloud of at most n points drawn without replacement
// using rng. If n >= Len the original cloud is cloned.
func (c *Cloud) Sample(n int, rng *rand.Rand) *Cloud {
	if n >= c.Len() {
		return c.Clone()
	}
	idx := rng.Perm(c.Len())[:n]
	out := New(n)
	for _, i := range idx {
		out.Add(c.Positions[i], c.Colors[i])
	}
	return out
}

// VoxelDownsample returns a cloud with at most one point per cubic voxel of
// the given size (meters): the centroid of the voxel's points with their
// average color. This is the receiver-side voxelization of §A.1.
func (c *Cloud) VoxelDownsample(voxel float64) *Cloud {
	if voxel <= 0 || c.Len() == 0 {
		return c.Clone()
	}
	type acc struct {
		sum     geom.Vec3
		r, g, b int
		n       int
	}
	cells := make(map[[3]int32]*acc, c.Len()/4)
	inv := 1 / voxel
	for i, p := range c.Positions {
		k := [3]int32{
			int32(math.Floor(p.X * inv)),
			int32(math.Floor(p.Y * inv)),
			int32(math.Floor(p.Z * inv)),
		}
		a := cells[k]
		if a == nil {
			a = &acc{}
			cells[k] = a
		}
		a.sum = a.sum.Add(p)
		a.r += int(c.Colors[i][0])
		a.g += int(c.Colors[i][1])
		a.b += int(c.Colors[i][2])
		a.n++
	}
	out := New(len(cells))
	for _, a := range cells {
		inv := 1 / float64(a.n)
		out.Add(a.sum.Scale(inv), [3]uint8{
			uint8(float64(a.r)*inv + 0.5),
			uint8(float64(a.g)*inv + 0.5),
			uint8(float64(a.b)*inv + 0.5),
		})
	}
	return out
}

// geomV3 is a local alias easing construction in I/O code.
func geomV3(x, y, z float64) geom.Vec3 { return geom.V3(x, y, z) }
