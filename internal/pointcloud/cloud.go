// Package pointcloud implements the 3D point-cloud representation LiVo
// reconstructs at the receiver, plus the spatial data structures the rest of
// the system needs: voxel-grid downsampling (used to speed up rendering,
// §A.1), a voxel hash grid for nearest-neighbour queries (used by the
// PointSSIM quality metric), frustum culling, and deterministic sampling.
package pointcloud

import (
	"fmt"
	"math/rand"

	"livo/internal/geom"
)

// Cloud is a colored point cloud: parallel position and color slices.
// Positions are in meters in the global frame.
type Cloud struct {
	Positions []geom.Vec3
	Colors    [][3]uint8
}

// New allocates an empty cloud with the given capacity hint.
func New(capacity int) *Cloud {
	return &Cloud{
		Positions: make([]geom.Vec3, 0, capacity),
		Colors:    make([][3]uint8, 0, capacity),
	}
}

// FromSlices wraps existing parallel slices. It returns an error when the
// slices disagree in length.
func FromSlices(pos []geom.Vec3, col [][3]uint8) (*Cloud, error) {
	if len(pos) != len(col) {
		return nil, fmt.Errorf("pointcloud: %d positions but %d colors", len(pos), len(col))
	}
	return &Cloud{Positions: pos, Colors: col}, nil
}

// Len returns the number of points.
func (c *Cloud) Len() int { return len(c.Positions) }

// Add appends one point.
func (c *Cloud) Add(p geom.Vec3, col [3]uint8) {
	c.Positions = append(c.Positions, p)
	c.Colors = append(c.Colors, col)
}

// Clone deep-copies the cloud.
func (c *Cloud) Clone() *Cloud {
	out := New(c.Len())
	out.Positions = append(out.Positions, c.Positions...)
	out.Colors = append(out.Colors, c.Colors...)
	return out
}

// Bounds returns the axis-aligned bounding box of the cloud.
func (c *Cloud) Bounds() geom.AABB { return geom.NewAABB(c.Positions) }

// Transform applies a rigid transform to every point in place.
func (c *Cloud) Transform(m geom.Mat4) {
	for i, p := range c.Positions {
		c.Positions[i] = m.TransformPoint(p)
	}
}

// SizeBytes returns the uncompressed size: 3 float32 coordinates plus 3
// color bytes per point (15 B), matching how the paper sizes raw point
// clouds (≈1 MB per 70k-point person, ≈10 MB full-scene).
func (c *Cloud) SizeBytes() int { return c.Len() * 15 }

// CullFrustum returns a new cloud containing only points inside f.
func (c *Cloud) CullFrustum(f geom.Frustum) *Cloud {
	out := New(c.Len() / 4)
	for i, p := range c.Positions {
		if f.Contains(p) {
			out.Add(p, c.Colors[i])
		}
	}
	return out
}

// CullFrustumInPlace compacts the cloud to the points inside f, preserving
// order, without allocating — the receiver's per-frame culling (§3.1 sends
// only what the viewer's frustum can see; the same test trims the render
// set). The dropped tail of the backing arrays keeps its stale values.
func (c *Cloud) CullFrustumInPlace(f geom.Frustum) {
	w := 0
	for i, p := range c.Positions {
		if f.Contains(p) {
			c.Positions[w] = p
			c.Colors[w] = c.Colors[i]
			w++
		}
	}
	c.Positions = c.Positions[:w]
	c.Colors = c.Colors[:w]
}

// Sample returns a cloud of at most n points drawn without replacement
// using rng. If n >= Len the original cloud is cloned.
func (c *Cloud) Sample(n int, rng *rand.Rand) *Cloud {
	if n >= c.Len() {
		return c.Clone()
	}
	idx := rng.Perm(c.Len())[:n]
	out := New(n)
	for _, i := range idx {
		out.Add(c.Positions[i], c.Colors[i])
	}
	return out
}

// VoxelDownsample returns a cloud with at most one point per cubic voxel of
// the given size (meters): the centroid of the voxel's points with their
// average color. This is the receiver-side voxelization of §A.1. Output
// points are in first-appearance order of their voxels (deterministic);
// steady-state callers should hold a VoxelGrid and use DownsampleInto.
func (c *Cloud) VoxelDownsample(voxel float64) *Cloud {
	var g VoxelGrid
	out := New(0)
	g.DownsampleInto(out, c, voxel)
	return out
}

// geomV3 is a local alias easing construction in I/O code.
func geomV3(x, y, z float64) geom.Vec3 { return geom.V3(x, y, z) }
