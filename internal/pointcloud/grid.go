package pointcloud

import (
	"math"
	"sort"

	"livo/internal/geom"
)

// Grid is a voxel hash grid over a cloud's points, supporting
// nearest-neighbour and k-nearest-neighbour queries. It backs the PointSSIM
// metric (which needs per-point neighbourhoods in both the reference and the
// distorted cloud) without an external kd-tree dependency.
type Grid struct {
	cloud *Cloud
	cell  float64
	cells map[[3]int32][]int32
}

// NewGrid indexes cloud with the given cell size (meters). A cell size near
// the cloud's average point spacing gives the best query performance. A
// non-positive cell defaults to an estimate from the cloud bounds.
func NewGrid(cloud *Cloud, cell float64) *Grid {
	if cell <= 0 {
		cell = estimateCell(cloud)
	}
	g := &Grid{
		cloud: cloud,
		cell:  cell,
		cells: make(map[[3]int32][]int32, cloud.Len()/2+1),
	}
	for i, p := range cloud.Positions {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

// estimateCell guesses a useful cell size ≈ the average point spacing.
// Scanned clouds are surfaces, not volumes: points cover ~2D manifolds
// inside the bounding box, so the area-based estimate (using the two
// largest extents) matches real spacing far better than a volume estimate.
func estimateCell(cloud *Cloud) float64 {
	if cloud.Len() == 0 {
		return 0.01
	}
	s := cloud.Bounds().Size()
	ext := []float64{math.Abs(s.X), math.Abs(s.Y), math.Abs(s.Z)}
	sort.Float64s(ext)
	e1, e2 := math.Max(ext[2], 1e-6), math.Max(ext[1], 1e-6)
	c := 2 * math.Sqrt(e1*e2/float64(cloud.Len()))
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return 0.01
	}
	return c
}

// Cell returns the grid's cell size.
func (g *Grid) Cell() float64 { return g.cell }

func (g *Grid) key(p geom.Vec3) [3]int32 {
	inv := 1 / g.cell
	return [3]int32{
		int32(math.Floor(p.X * inv)),
		int32(math.Floor(p.Y * inv)),
		int32(math.Floor(p.Z * inv)),
	}
}

// maxRings bounds the ring expansion before falling back to a linear scan
// (far queries over sparse clouds would otherwise enumerate O(r^3) cells).
const maxRings = 24

// Nearest returns the index of the point nearest to q and its distance.
// Returns (-1, +Inf) for an empty cloud. The search expands ring by ring
// until a hit is found and then the rings that could still hide a closer
// point; queries far from the cloud fall back to a linear scan.
func (g *Grid) Nearest(q geom.Vec3) (int, float64) {
	if g.cloud.Len() == 0 {
		return -1, math.Inf(1)
	}
	center := g.key(q)
	best := -1
	bestD := math.Inf(1)
	for ring := 0; ring <= maxRings; ring++ {
		if best >= 0 {
			// Minimum possible distance from q to any cell in this ring.
			minDist := (float64(ring) - 1) * g.cell
			if minDist > bestD {
				return best, bestD
			}
		}
		g.scanRing(center, ring, func(i int32) {
			d := g.cloud.Positions[i].Dist(q)
			if d < bestD {
				bestD = d
				best = int(i)
			}
		})
	}
	if best >= 0 && bestD <= float64(maxRings-1)*g.cell {
		return best, bestD
	}
	return g.bruteNearest(q)
}

func (g *Grid) bruteNearest(q geom.Vec3) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range g.cloud.Positions {
		if d := p.Dist(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// scanRing visits all occupied cells whose Chebyshev distance from center is
// exactly ring, calling fn for each point index. Returns whether any
// occupied cell was visited.
func (g *Grid) scanRing(center [3]int32, ring int, fn func(int32)) bool {
	found := false
	visit := func(k [3]int32) {
		if pts, ok := g.cells[k]; ok {
			found = true
			for _, i := range pts {
				fn(i)
			}
		}
	}
	r := int32(ring)
	if ring == 0 {
		visit(center)
		return found
	}
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				if max3(abs32(dx), abs32(dy), abs32(dz)) != r {
					continue
				}
				visit([3]int32{center[0] + dx, center[1] + dy, center[2] + dz})
			}
		}
	}
	return found
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c int32) int32 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Neighbor is a point index with its distance from a query.
type Neighbor struct {
	Index int
	Dist  float64
}

// KNearest returns up to k nearest neighbours of q sorted by distance.
func (g *Grid) KNearest(q geom.Vec3, k int) []Neighbor {
	if k <= 0 || g.cloud.Len() == 0 {
		return nil
	}
	if k > g.cloud.Len() {
		k = g.cloud.Len()
	}
	center := g.key(q)
	var cand []Neighbor
	// Expand rings until we have >= k candidates, then the safety-margin
	// rings that could still hide closer points. Far/sparse queries fall
	// back to a linear scan instead of enumerating huge empty rings.
	extra := -1
	for ring := 0; ; ring++ {
		if ring > maxRings && extra < 0 {
			cand = cand[:0]
			for i := range g.cloud.Positions {
				cand = append(cand, Neighbor{i, g.cloud.Positions[i].Dist(q)})
			}
			break
		}
		g.scanRing(center, ring, func(i int32) {
			cand = append(cand, Neighbor{int(i), g.cloud.Positions[i].Dist(q)})
		})
		if len(cand) >= k && extra < 0 {
			sort.Slice(cand, func(a, b int) bool { return cand[a].Dist < cand[b].Dist })
			// Any point within the current k-th distance of q lies within
			// this many rings of the center cell.
			kth := cand[k-1].Dist
			bound := int(math.Ceil(kth/g.cell)) + 1
			if bound > 2*maxRings {
				// Sparse cloud: cheaper to scan linearly than to walk
				// enormous empty rings.
				cand = cand[:0]
				for i := range g.cloud.Positions {
					cand = append(cand, Neighbor{i, g.cloud.Positions[i].Dist(q)})
				}
				break
			}
			if bound < ring {
				bound = ring
			}
			extra = bound
		}
		if extra >= 0 && ring >= extra {
			break
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].Dist < cand[b].Dist })
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}
