package baseline

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/camera"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/pointcloud"
	"livo/internal/scene"
)

func testViews(t *testing.T) (camera.Array, []frame.RGBDFrame) {
	t.Helper()
	cfg := scene.CaptureConfig{
		Cameras: 3, Width: 64, Height: 48,
		HFov:       math.Pi * 75 / 180,
		RingRadius: 2.6, RingHeight: 1.5, MaxRange: 6,
	}
	v, err := scene.OpenVideo("office1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v.Array, v.Frame(0)
}

func TestMeshFromViews(t *testing.T) {
	arr, views := testViews(t)
	m, err := MeshFromViews(arr, views, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices) == 0 || len(m.Triangles) == 0 {
		t.Fatalf("empty mesh: %d verts, %d tris", len(m.Vertices), len(m.Triangles))
	}
	if len(m.Colors) != len(m.Vertices) {
		t.Fatal("colors not parallel to vertices")
	}
	// All triangle indices valid; edges bounded (adaptive discontinuity
	// threshold scales with depth and step but never tolerates surface
	// tears of meters).
	for _, tri := range m.Triangles {
		for k := 0; k < 3; k++ {
			if tri[k] < 0 || int(tri[k]) >= len(m.Vertices) {
				t.Fatal("triangle index out of range")
			}
		}
		if jump(m, tri[0], tri[1]) > 1.5 {
			t.Fatalf("edge spans a tear: %v m", jump(m, tri[0], tri[1]))
		}
	}
}

func TestMeshDecimationReducesSize(t *testing.T) {
	arr, views := testViews(t)
	m1, _ := MeshFromViews(arr, views, 1, 0.25)
	m4, _ := MeshFromViews(arr, views, 4, 0.25)
	if len(m4.Vertices) >= len(m1.Vertices)/4 {
		t.Errorf("decimation weak: %d vs %d vertices", len(m4.Vertices), len(m1.Vertices))
	}
	d1, _ := EncodeMesh(m1, 11)
	d4, _ := EncodeMesh(m4, 11)
	if len(d4) >= len(d1) {
		t.Errorf("decimated mesh not smaller: %d vs %d", len(d4), len(d1))
	}
}

func TestMeshEncodeDecodeRoundTrip(t *testing.T) {
	arr, views := testViews(t)
	m, _ := MeshFromViews(arr, views, 2, 0.25)
	data, err := EncodeMesh(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMesh(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != len(m.Vertices) || len(got.Triangles) != len(m.Triangles) {
		t.Fatalf("counts changed: %d/%d vs %d/%d",
			len(got.Vertices), len(got.Triangles), len(m.Vertices), len(m.Triangles))
	}
	// Vertex error bounded by quantization cell.
	b := geom.NewAABB(m.Vertices)
	ext := math.Max(b.Size().X, math.Max(b.Size().Y, b.Size().Z))
	cell := ext / float64((1<<12)-1)
	for i := range m.Vertices {
		if d := got.Vertices[i].Dist(m.Vertices[i]); d > 2*cell {
			t.Fatalf("vertex %d moved %v (> %v)", i, d, 2*cell)
		}
	}
	// Colors exact (delta-coded bytes).
	for i := range m.Colors {
		if got.Colors[i] != m.Colors[i] {
			t.Fatal("color corrupted")
		}
	}
	// Connectivity exact.
	for i := range m.Triangles {
		if got.Triangles[i] != m.Triangles[i] {
			t.Fatal("connectivity corrupted")
		}
	}
}

func TestMeshCompresses(t *testing.T) {
	arr, views := testViews(t)
	m, _ := MeshFromViews(arr, views, 1, 0.25)
	data, _ := EncodeMesh(m, 11)
	raw := len(m.Vertices)*(24+3) + len(m.Triangles)*12
	if len(data) >= raw/3 {
		t.Errorf("poor mesh compression: %d vs raw %d", len(data), raw)
	}
}

func TestMeshDecodeErrors(t *testing.T) {
	if _, err := DecodeMesh(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeMesh(make([]byte, 50)); err == nil {
		t.Error("garbage accepted")
	}
	arr, views := testViews(t)
	m, _ := MeshFromViews(arr, views, 4, 0.25)
	data, _ := EncodeMesh(m, 11)
	if _, err := DecodeMesh(data[:len(data)/2]); err == nil {
		t.Error("truncated mesh accepted")
	}
	if _, err := EncodeMesh(m, 0); err == nil {
		t.Error("bad quantBits accepted")
	}
}

func TestMeshEmpty(t *testing.T) {
	m := &Mesh{}
	data, err := EncodeMesh(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMesh(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != 0 || len(got.Triangles) != 0 {
		t.Error("empty mesh round trip not empty")
	}
	if got.SamplePoints(10, rand.New(rand.NewSource(1))).Len() != 0 {
		t.Error("sampling empty mesh should yield nothing")
	}
}

func TestSamplePointsOnSurface(t *testing.T) {
	// Single unit right triangle in the XY plane.
	m := &Mesh{
		Vertices:  []geom.Vec3{{}, {X: 1}, {Y: 1}},
		Colors:    [][3]uint8{{255, 0, 0}, {0, 255, 0}, {0, 0, 255}},
		Triangles: [][3]int32{{0, 1, 2}},
	}
	pts := m.SamplePoints(500, rand.New(rand.NewSource(2)))
	if pts.Len() != 500 {
		t.Fatalf("sampled %d", pts.Len())
	}
	for _, p := range pts.Positions {
		if p.Z != 0 || p.X < 0 || p.Y < 0 || p.X+p.Y > 1+1e-9 {
			t.Fatalf("sample off triangle: %v", p)
		}
	}
}

func TestSamplePointsAreaWeighted(t *testing.T) {
	// Two triangles, one 9x the area of the other: samples should land
	// ~90% on the big one.
	m := &Mesh{
		Vertices: []geom.Vec3{
			{}, {X: 3}, {Y: 3}, // big (area 4.5)
			{X: 10}, {X: 11}, {X: 10, Y: 1}, // small (area 0.5)
		},
		Colors:    make([][3]uint8, 6),
		Triangles: [][3]int32{{0, 1, 2}, {3, 4, 5}},
	}
	pts := m.SamplePoints(2000, rand.New(rand.NewSource(3)))
	big := 0
	for _, p := range pts.Positions {
		if p.X < 5 {
			big++
		}
	}
	ratio := float64(big) / 2000
	if ratio < 0.85 || ratio > 0.95 {
		t.Errorf("big-triangle sample ratio = %v, want ~0.9", ratio)
	}
}

func TestDracoOracleFitsBudget(t *testing.T) {
	arr, views := testViews(t)
	pos, cols, err := arr.PointsFromViews(views)
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := pointcloud.FromSlices(pos, cols)
	wide := geom.NewFrustum(
		geom.LookAt(geom.V3(0, 1.5, 3), geom.V3(0, 0.9, 0), geom.V3(0, 1, 0)),
		geom.ViewParams{FovY: math.Pi / 2, Aspect: 1.3, Near: 0.1, Far: 10},
	)
	o := NewDracoOracle()
	res, err := o.ProcessFrame(gt, wide, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Skip("oracle stalled on this machine (slow encode) — covered below")
	}
	if res.Bytes > 50_000 {
		t.Errorf("oracle exceeded budget: %d", res.Bytes)
	}
	if res.Decoded == nil || res.Decoded.Len() == 0 {
		t.Fatal("no decoded cloud")
	}
	// Tighter budget picks fewer quantization bits.
	res2, err := o.ProcessFrame(gt, wide, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stalled && res2.QuantBits >= res.QuantBits {
		t.Errorf("tighter budget chose >= quant bits: %d vs %d", res2.QuantBits, res.QuantBits)
	}
}

func TestDracoOracleStallsWhenNothingFits(t *testing.T) {
	arr, views := testViews(t)
	pos, cols, _ := arr.PointsFromViews(views)
	gt, _ := pointcloud.FromSlices(pos, cols)
	wide := geom.NewFrustum(geom.PoseIdentity, geom.ViewParams{FovY: 3, Aspect: 1, Near: 0.001, Far: 100})
	o := NewDracoOracle()
	res, err := o.ProcessFrame(gt, wide, 100) // 100 bytes: hopeless
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Error("oracle should stall at 100-byte budget")
	}
}

func TestDracoOracleEmptyFrustum(t *testing.T) {
	gt := pointcloud.New(0)
	gt.Add(geom.V3(0, 0, -5), [3]uint8{1, 2, 3}) // behind the viewer
	f := geom.NewFrustum(geom.PoseIdentity, geom.DefaultViewParams())
	o := NewDracoOracle()
	res, err := o.ProcessFrame(gt, f, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Decoded.Len() != 0 {
		t.Errorf("empty-frustum frame should be trivially empty: %+v", res)
	}
}

func TestMeshReduceConfigure(t *testing.T) {
	arr, views := testViews(t)
	mr := NewMeshReduce(arr)
	if err := mr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Generous bandwidth: fine mesh (small step).
	if err := mr.Configure(views, 200e6); err != nil {
		t.Fatal(err)
	}
	fineStep := mr.Step
	// Tight bandwidth: coarser mesh (the tiny test frames need a very low
	// budget before step 1 stops fitting).
	if err := mr.Configure(views, 0.2e6); err != nil {
		t.Fatal(err)
	}
	if mr.Step <= fineStep {
		t.Errorf("low bandwidth did not coarsen: %d vs %d", mr.Step, fineStep)
	}
}

func TestMeshReduceProcessFrame(t *testing.T) {
	arr, views := testViews(t)
	mr := NewMeshReduce(arr)
	if err := mr.Configure(views, 30e6); err != nil {
		t.Fatal(err)
	}
	res, err := mr.ProcessFrame(views, 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 || res.Mesh == nil || len(res.Mesh.Vertices) == 0 {
		t.Fatal("empty result")
	}
	if res.TxTime <= 0 {
		t.Error("no transmission time")
	}
	// Effective frame rate model: lower capacity -> longer tx time.
	res2, _ := mr.ProcessFrame(views, 3e6)
	if res2.TxTime <= res.TxTime {
		t.Error("tx time did not grow at lower capacity")
	}
}
