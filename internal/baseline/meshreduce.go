package baseline

import (
	"fmt"

	"livo/internal/camera"
	"livo/internal/frame"
)

// MeshReduceFPS is MeshReduce's capture rate (15 fps, Table 2).
const MeshReduceFPS = 15

// MeshReduce is the mesh-based full-scene streamer with indirect bandwidth
// adaptation (§4.1): an offline profile maps the trace's *average*
// bandwidth to a mesh decimation step chosen once per session; frames go
// over reliable transport, so instead of stalls the frame rate sags when a
// frame overruns its transmission slot (§4.3, §4.4).
type MeshReduce struct {
	Array camera.Array
	// QuantBits is the geometry quantization (Draco default 11).
	QuantBits int
	// MaxJump is the triangulation discontinuity threshold in meters.
	MaxJump float64
	// Step is the decimation step chosen by Configure.
	Step int
	// FPS is the capture rate (default 15).
	FPS int
}

// NewMeshReduce builds a MeshReduce instance for a camera rig.
func NewMeshReduce(arr camera.Array) *MeshReduce {
	return &MeshReduce{Array: arr, QuantBits: 11, MaxJump: 0.25, Step: 2, FPS: MeshReduceFPS}
}

// Configure performs the offline profiling step: it encodes the probe
// frame at increasing decimation steps until the frame fits the per-frame
// budget implied by the session's *average* bandwidth (this is the
// indirect, conservative adaptation Table 1 quantifies — the budget uses a
// safety margin and never re-adapts during the session).
func (mr *MeshReduce) Configure(probe []frame.RGBDFrame, avgBandwidthBps float64) error {
	// MeshReduce provisions for the average with a large safety margin so
	// transient dips don't overrun the reliable transport — the
	// conservative, indirect adaptation Table 1 quantifies.
	budget := int(0.5 * avgBandwidthBps / 8 / float64(mr.FPS))
	for step := 1; step <= 16; step++ {
		m, err := MeshFromViews(mr.Array, probe, step, mr.MaxJump)
		if err != nil {
			return err
		}
		data, err := EncodeMesh(m, mr.QuantBits)
		if err != nil {
			return err
		}
		if len(data) <= budget {
			mr.Step = step
			return nil
		}
	}
	mr.Step = 16
	return nil
}

// MeshResult is MeshReduce's per-frame outcome.
type MeshResult struct {
	Bytes int
	Mesh  *Mesh // decoded mesh as the receiver sees it
	// TxTime is the transmission time at the given instantaneous capacity;
	// the effective frame rate is min(FPS, 1/TxTime) (§4.4).
	TxTime float64
}

// ProcessFrame meshes, encodes, and decodes one frame. capacityBps is the
// link's instantaneous capacity used to derive the transmission time.
func (mr *MeshReduce) ProcessFrame(views []frame.RGBDFrame, capacityBps float64) (MeshResult, error) {
	m, err := MeshFromViews(mr.Array, views, mr.Step, mr.MaxJump)
	if err != nil {
		return MeshResult{}, err
	}
	data, err := EncodeMesh(m, mr.QuantBits)
	if err != nil {
		return MeshResult{}, err
	}
	decoded, err := DecodeMesh(data)
	if err != nil {
		return MeshResult{}, err
	}
	tx := 0.0
	if capacityBps > 0 {
		tx = float64(len(data)) * 8 / capacityBps
	}
	return MeshResult{Bytes: len(data), Mesh: decoded, TxTime: tx}, nil
}

// Validate reports configuration errors.
func (mr *MeshReduce) Validate() error {
	if mr.Array.N() == 0 {
		return fmt.Errorf("baseline: meshreduce needs cameras")
	}
	if mr.Step < 1 {
		return fmt.Errorf("baseline: invalid step %d", mr.Step)
	}
	return nil
}
