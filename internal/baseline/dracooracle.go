package baseline

import (
	"math/rand"
	"time"

	"livo/internal/codec/draco"
	"livo/internal/geom"
	"livo/internal/pointcloud"
)

// DracoOracleFPS is the frame rate Draco-Oracle runs at: full frame rate
// stalls >90% of frames on full scenes, so the paper evaluates it at 15 fps
// consistent with prior work [50] (§4.1).
const DracoOracleFPS = 15

// DracoOracle streams perfectly-culled point clouds through the octree
// codec, choosing per frame the highest-quality quantization whose
// compressed size fits the bandwidth budget and whose compression time
// fits the inter-frame interval. The paper builds this table offline; here
// the size search runs per frame but only the chosen encode's time is
// charged, matching the oracle's runtime behaviour.
type DracoOracle struct {
	// Speed is the octree codec's speed level (default 5).
	Speed int
	// MinQuantBits..MaxQuantBits bound the quality search (3..14).
	MinQuantBits, MaxQuantBits int
	// FPS is the streaming frame rate (default DracoOracleFPS).
	FPS int
}

// NewDracoOracle returns an oracle with the defaults of §4.1.
func NewDracoOracle() *DracoOracle {
	return &DracoOracle{Speed: 5, MinQuantBits: 5, MaxQuantBits: 14, FPS: DracoOracleFPS}
}

// DracoResult is the oracle's per-frame outcome.
type DracoResult struct {
	Stalled bool
	Bytes   int
	// CulledPoints is the size of the encoder input after perfect culling
	// — the quantity compression cost scales with.
	CulledPoints int
	QuantBits    int
	EncodeTime   float64 // seconds, for the chosen encode only
	Decoded      *pointcloud.Cloud
}

// ProcessFrame streams one ground-truth cloud: cull with the *actual*
// receiver frustum (perfect culling, §4.1), pick the best fitting
// quantization, encode, decode. budgetBytes is the per-frame byte budget
// from the target bandwidth at the oracle's frame rate.
func (o *DracoOracle) ProcessFrame(gt *pointcloud.Cloud, actual geom.Frustum, budgetBytes int) (DracoResult, error) {
	culled := gt.CullFrustum(actual)
	if culled.Len() == 0 {
		return DracoResult{Decoded: culled}, nil
	}
	nCulled := culled.Len()
	// Binary search the largest quantization that fits (size is monotone
	// in quantBits). This search emulates the offline table lookup; only
	// the final encode's time is charged.
	lo, hi := o.MinQuantBits, o.MaxQuantBits
	bestQB := -1
	var bestData []byte
	for lo <= hi {
		mid := (lo + hi) / 2
		data, err := draco.Encode(culled, draco.Params{QuantBits: mid, Speed: o.Speed, ColorBits: 8})
		if err != nil {
			return DracoResult{}, err
		}
		if len(data) <= budgetBytes {
			bestQB = mid
			bestData = data
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if bestQB < 0 {
		return DracoResult{Stalled: true, CulledPoints: nCulled}, nil // nothing fits
	}
	// Charge the chosen encode's wall time (re-encode to time it cleanly).
	start := time.Now()
	data, err := draco.Encode(culled, draco.Params{QuantBits: bestQB, Speed: o.Speed, ColorBits: 8})
	if err != nil {
		return DracoResult{}, err
	}
	encodeTime := time.Since(start).Seconds()
	_ = bestData
	// NOTE: the compression-time-vs-interval stall check is the caller's
	// job (the replay harness models full-scale compute cost; comparing
	// this machine's wall time against the interval would make results
	// hardware-dependent).
	decoded, err := draco.Decode(data)
	if err != nil {
		return DracoResult{}, err
	}
	return DracoResult{
		Bytes:        len(data),
		CulledPoints: nCulled,
		QuantBits:    bestQB,
		EncodeTime:   encodeTime,
		Decoded:      decoded,
	}, nil
}

// EstimateStallRate replays n synthetic frames of the given size through
// the oracle at the target bandwidth and returns the stall fraction — a
// quick probe used by tests and the Table 2-style comparisons.
func (o *DracoOracle) EstimateStallRate(points, n, budgetBytes int, rng *rand.Rand) (float64, error) {
	stalls := 0
	wide := geom.NewFrustum(geom.PoseIdentity, geom.ViewParams{FovY: 3, Aspect: 1, Near: 0.001, Far: 100})
	for i := 0; i < n; i++ {
		c := pointcloud.New(points)
		for j := 0; j < points; j++ {
			c.Add(geom.V3(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3+0.1),
				[3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))})
		}
		res, err := o.ProcessFrame(c, wide, budgetBytes)
		if err != nil {
			return 0, err
		}
		if res.Stalled {
			stalls++
		}
	}
	return float64(stalls) / float64(n), nil
}
