// Package baseline implements the comparison systems of §4.1:
//
//   - Draco-Oracle — a bandwidth-oracle wrapper around the octree
//     point-cloud codec: given the target bandwidth and a perfect receiver
//     frustum, it picks the highest-quality quantization that fits the
//     byte budget; a frame stalls when nothing fits or when compression
//     takes longer than the inter-frame interval (the paper runs it at
//     15 fps for this reason).
//
//   - MeshReduce — a mesh-based full-scene streamer with *indirect*
//     bandwidth adaptation: per-frame meshes are built from the depth
//     images by grid triangulation, decimated to a budget chosen once from
//     the trace's average bandwidth (offline profile), and shipped over
//     reliable transport at ≤15 fps; instead of stalling it lets the frame
//     rate sag (§4.3, §4.4).
package baseline

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"livo/internal/camera"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/pointcloud"
)

// deflate compresses b at the default mesh entropy level.
func deflate(b []byte) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, 5)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// inflate decompresses deflate data.
func inflate(b []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("baseline: inflate: %w", err)
	}
	return out, nil
}

// Mesh is an indexed triangle mesh with per-vertex colors.
type Mesh struct {
	Vertices  []geom.Vec3
	Colors    [][3]uint8
	Triangles [][3]int32
}

// MeshFromViews reconstructs a per-frame mesh from the camera views by
// grid triangulation: every step-th pixel becomes a vertex; neighbouring
// vertices connect unless the edge is a depth discontinuity. The
// discontinuity threshold adapts to the decimation: the expected spacing of
// adjacent grid vertices on a surface at depth z is ~z*step/f, so an edge
// is torn only when it exceeds several times that (plus the absolute
// maxJump floor for object boundaries). Tearing across boundaries is what
// produced the "blobs" the user study complained about — MeshReduce still
// shows some.
func MeshFromViews(arr camera.Array, views []frame.RGBDFrame, step int, maxJump float64) (*Mesh, error) {
	if len(views) != arr.N() {
		return nil, fmt.Errorf("baseline: %d views for %d cameras", len(views), arr.N())
	}
	if step < 1 {
		step = 1
	}
	m := &Mesh{}
	var depthsMM []float64 // per-vertex depth, for the adaptive threshold
	for ci, view := range views {
		if view.Depth == nil {
			continue
		}
		cam := arr.Cameras[ci]
		in := cam.Intrinsics
		cols := (in.W + step - 1) / step
		rows := (in.H + step - 1) / step
		// Vertex index per grid cell; -1 = invalid.
		idx := make([]int32, cols*rows)
		for gy := 0; gy < rows; gy++ {
			for gx := 0; gx < cols; gx++ {
				u, v := gx*step, gy*step
				mm := view.Depth.At(u, v)
				if mm == 0 {
					idx[gy*cols+gx] = -1
					continue
				}
				idx[gy*cols+gx] = int32(len(m.Vertices))
				m.Vertices = append(m.Vertices, cam.UnprojectToWorld(u, v, mm))
				depthsMM = append(depthsMM, float64(mm))
				r, g, b := view.Color.At(u, v)
				m.Colors = append(m.Colors, [3]uint8{r, g, b})
			}
		}
		edgeOK := func(a, b int32) bool {
			d := m.Vertices[a].Dist(m.Vertices[b])
			z := (depthsMM[a] + depthsMM[b]) / 2 / 1000
			expected := z * float64(step) / in.Fx
			limit := maxJump
			if adaptive := 4 * expected; adaptive > limit {
				limit = adaptive
			}
			return d <= limit
		}
		// Triangulate grid cells whose corners are valid and connected.
		for gy := 0; gy+1 < rows; gy++ {
			for gx := 0; gx+1 < cols; gx++ {
				i00 := idx[gy*cols+gx]
				i10 := idx[gy*cols+gx+1]
				i01 := idx[(gy+1)*cols+gx]
				i11 := idx[(gy+1)*cols+gx+1]
				if i00 < 0 || i10 < 0 || i01 < 0 || i11 < 0 {
					continue
				}
				if !edgeOK(i00, i10) || !edgeOK(i00, i01) ||
					!edgeOK(i11, i10) || !edgeOK(i11, i01) {
					continue
				}
				m.Triangles = append(m.Triangles, [3]int32{i00, i10, i01}, [3]int32{i10, i11, i01})
			}
		}
	}
	return m, nil
}

// jump returns the edge length between two vertices (test helper contract).
func jump(m *Mesh, a, b int32) float64 {
	return m.Vertices[a].Dist(m.Vertices[b])
}

// SamplePoints draws n points uniformly by triangle area with
// barycentric-interpolated colors — how §4.1 makes meshes comparable under
// PointSSIM ("sample as many points from the rendered mesh as there are in
// the ground truth point cloud").
func (m *Mesh) SamplePoints(n int, rng *rand.Rand) *pointcloud.Cloud {
	out := pointcloud.New(n)
	if len(m.Triangles) == 0 || n <= 0 {
		return out
	}
	// Cumulative areas for area-weighted sampling.
	cum := make([]float64, len(m.Triangles))
	var total float64
	for i, tri := range m.Triangles {
		a, b, c := m.Vertices[tri[0]], m.Vertices[tri[1]], m.Vertices[tri[2]]
		total += 0.5 * b.Sub(a).Cross(c.Sub(a)).Len()
		cum[i] = total
	}
	if total == 0 {
		return out
	}
	for k := 0; k < n; k++ {
		r := rng.Float64() * total
		// Binary search the triangle.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		tri := m.Triangles[lo]
		// Uniform barycentric sample.
		u, v := rng.Float64(), rng.Float64()
		if u+v > 1 {
			u, v = 1-u, 1-v
		}
		w := 1 - u - v
		a, b, c := m.Vertices[tri[0]], m.Vertices[tri[1]], m.Vertices[tri[2]]
		p := a.Scale(w).Add(b.Scale(u)).Add(c.Scale(v))
		ca, cb, cc := m.Colors[tri[0]], m.Colors[tri[1]], m.Colors[tri[2]]
		col := [3]uint8{
			uint8(w*float64(ca[0]) + u*float64(cb[0]) + v*float64(cc[0])),
			uint8(w*float64(ca[1]) + u*float64(cb[1]) + v*float64(cc[1])),
			uint8(w*float64(ca[2]) + u*float64(cb[2]) + v*float64(cc[2])),
		}
		out.Add(p, col)
	}
	return out
}

// EncodeMesh serializes the mesh in Draco-mesh style: vertex positions
// quantized to quantBits over the bounding box and delta-coded in original
// order (order must survive for connectivity), colors delta-coded, and
// triangle indices delta-coded; everything deflate-compressed.
func EncodeMesh(m *Mesh, quantBits int) ([]byte, error) {
	if quantBits < 1 || quantBits > 16 {
		return nil, fmt.Errorf("baseline: quantBits %d out of range", quantBits)
	}
	b := geom.NewAABB(m.Vertices)
	ext := 1e-9
	if len(m.Vertices) > 0 {
		s := b.Size()
		ext = math.Max(ext, math.Max(s.X, math.Max(s.Y, s.Z)))
	} else {
		b = geom.AABB{}
	}
	scale := float64(uint64(1)<<quantBits-1) / ext

	var payload []byte
	var prevQ [3]int64
	q := func(v, min float64) int64 {
		x := int64(math.Round((v - min) * scale))
		if x < 0 {
			x = 0
		}
		if x > int64(uint64(1)<<quantBits-1) {
			x = int64(uint64(1)<<quantBits - 1)
		}
		return x
	}
	for i, v := range m.Vertices {
		qs := [3]int64{q(v.X, b.Min.X), q(v.Y, b.Min.Y), q(v.Z, b.Min.Z)}
		for k := 0; k < 3; k++ {
			payload = binary.AppendVarint(payload, qs[k]-prevQ[k])
		}
		prevQ = qs
		_ = i
	}
	var pc [3]uint8
	for _, c := range m.Colors {
		payload = append(payload, c[0]-pc[0], c[1]-pc[1], c[2]-pc[2])
		pc = c
	}
	var prev int64
	for _, tri := range m.Triangles {
		for _, v := range tri {
			payload = binary.AppendVarint(payload, int64(v)-prev)
			prev = int64(v)
		}
	}
	z, err := deflate(payload)
	if err != nil {
		return nil, err
	}
	hdr := []byte{'M', 'S', 'H', byte(quantBits)}
	hdr = appendF64(hdr, b.Min.X)
	hdr = appendF64(hdr, b.Min.Y)
	hdr = appendF64(hdr, b.Min.Z)
	hdr = appendF64(hdr, ext)
	hdr = binary.AppendUvarint(hdr, uint64(len(m.Vertices)))
	hdr = binary.AppendUvarint(hdr, uint64(len(m.Triangles)))
	return append(hdr, z...), nil
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// DecodeMesh reverses EncodeMesh.
func DecodeMesh(data []byte) (*Mesh, error) {
	if len(data) < 4+32 || string(data[:3]) != "MSH" {
		return nil, fmt.Errorf("baseline: bad mesh header")
	}
	quantBits := int(data[3])
	if quantBits < 1 || quantBits > 16 {
		return nil, fmt.Errorf("baseline: bad quantBits %d", quantBits)
	}
	pos := 4
	readF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		return v
	}
	minX, minY, minZ, ext := readF(), readF(), readF(), readF()
	nVerts, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("baseline: truncated vertex count")
	}
	pos += n
	nTris, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("baseline: truncated triangle count")
	}
	pos += n
	payload, err := inflate(data[pos:])
	if err != nil {
		return nil, err
	}
	scale := ext / float64(uint64(1)<<quantBits-1)
	m := &Mesh{
		Vertices:  make([]geom.Vec3, 0, nVerts),
		Colors:    make([][3]uint8, 0, nVerts),
		Triangles: make([][3]int32, 0, nTris),
	}
	p := 0
	var prevQ [3]int64
	for i := uint64(0); i < nVerts; i++ {
		var qs [3]int64
		for k := 0; k < 3; k++ {
			d, n := binary.Varint(payload[p:])
			if n <= 0 {
				return nil, fmt.Errorf("baseline: truncated vertices")
			}
			p += n
			qs[k] = prevQ[k] + d
		}
		prevQ = qs
		m.Vertices = append(m.Vertices, geom.V3(
			minX+float64(qs[0])*scale,
			minY+float64(qs[1])*scale,
			minZ+float64(qs[2])*scale,
		))
	}
	if p+int(nVerts)*3 > len(payload) {
		return nil, fmt.Errorf("baseline: truncated colors")
	}
	var pc [3]uint8
	for i := uint64(0); i < nVerts; i++ {
		c := [3]uint8{pc[0] + payload[p], pc[1] + payload[p+1], pc[2] + payload[p+2]}
		p += 3
		m.Colors = append(m.Colors, c)
		pc = c
	}
	var prev int64
	for t := uint64(0); t < nTris; t++ {
		var tri [3]int32
		for k := 0; k < 3; k++ {
			d, n := binary.Varint(payload[p:])
			if n <= 0 {
				return nil, fmt.Errorf("baseline: truncated connectivity")
			}
			p += n
			prev += d
			if prev < 0 || prev >= int64(nVerts) {
				return nil, fmt.Errorf("baseline: triangle index %d out of range", prev)
			}
			tri[k] = int32(prev)
		}
		m.Triangles = append(m.Triangles, tri)
	}
	return m, nil
}
