// Package camera models the calibrated RGB-D cameras LiVo captures from: a
// pinhole intrinsic model, an extrinsic pose in the global frame (the output
// of one-shot calibration [97]), projection/unprojection between pixels and
// 3D points, and ring-shaped camera arrays encircling a scene (§3.2).
package camera

import (
	"fmt"
	"math"

	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/pipeline"
)

// Intrinsics is a pinhole camera model. Pixel (u, v) at depth z (meters,
// along the camera's +Z axis) corresponds to the camera-local point
// ((u-Cx)/Fx * z, (v-Cy)/Fy * z, z).
type Intrinsics struct {
	W, H   int     // image resolution
	Fx, Fy float64 // focal lengths in pixels
	Cx, Cy float64 // principal point in pixels
}

// NewIntrinsics builds intrinsics with the given horizontal field of view
// (radians) and a centered principal point; the vertical FoV follows from
// the aspect ratio (square pixels).
func NewIntrinsics(w, h int, hfov float64) Intrinsics {
	fx := float64(w) / 2 / math.Tan(hfov/2)
	return Intrinsics{
		W: w, H: h,
		Fx: fx, Fy: fx, // square pixels
		Cx: float64(w) / 2, Cy: float64(h) / 2,
	}
}

// Validate checks the intrinsics are usable.
func (in Intrinsics) Validate() error {
	if in.W <= 0 || in.H <= 0 {
		return fmt.Errorf("camera: invalid resolution %dx%d", in.W, in.H)
	}
	if in.Fx <= 0 || in.Fy <= 0 {
		return fmt.Errorf("camera: invalid focal length fx=%v fy=%v", in.Fx, in.Fy)
	}
	return nil
}

// Unproject maps pixel (u, v) with depth z meters to a camera-local point.
func (in Intrinsics) Unproject(u, v int, z float64) geom.Vec3 {
	return geom.Vec3{
		X: (float64(u) + 0.5 - in.Cx) / in.Fx * z,
		Y: (float64(v) + 0.5 - in.Cy) / in.Fy * z,
		Z: z,
	}
}

// Project maps a camera-local point to pixel coordinates and depth. ok is
// false when the point is behind the camera or projects outside the image.
func (in Intrinsics) Project(p geom.Vec3) (u, v int, z float64, ok bool) {
	if p.Z <= 0 {
		return 0, 0, 0, false
	}
	fu := p.X/p.Z*in.Fx + in.Cx
	fv := p.Y/p.Z*in.Fy + in.Cy
	u = int(math.Floor(fu))
	v = int(math.Floor(fv))
	if u < 0 || u >= in.W || v < 0 || v >= in.H {
		return 0, 0, 0, false
	}
	return u, v, p.Z, true
}

// HFov returns the horizontal field of view in radians.
func (in Intrinsics) HFov() float64 {
	return 2 * math.Atan(float64(in.W)/2/in.Fx)
}

// Camera is one calibrated RGB-D camera: intrinsics plus a pose mapping the
// camera's local coordinate frame into the global frame. The camera looks
// down its local +Z axis.
type Camera struct {
	ID         int
	Intrinsics Intrinsics
	Pose       geom.Pose // camera-to-world
	// MaxRange is the depth sensor range in meters (5-6 m for commodity
	// time-of-flight cameras, §3.2).
	MaxRange float64
}

// LocalToWorld returns the camera-to-world transform.
func (c Camera) LocalToWorld() geom.Mat4 { return c.Pose.Mat4() }

// WorldToLocal returns the world-to-camera transform.
func (c Camera) WorldToLocal() geom.Mat4 { return c.Pose.InverseMat4() }

// UnprojectToWorld maps pixel (u, v) with depth mm (millimeters, as stored
// in a frame.DepthImage) to a world-space point.
func (c Camera) UnprojectToWorld(u, v int, mm uint16) geom.Vec3 {
	local := c.Intrinsics.Unproject(u, v, float64(mm)/1000)
	return c.Pose.TransformPoint(local)
}

// ProjectFromWorld maps a world point into this camera's pixel grid.
func (c Camera) ProjectFromWorld(p geom.Vec3) (u, v int, z float64, ok bool) {
	return c.Intrinsics.Project(c.Pose.InverseTransformPoint(p))
}

// Array is a frame-synchronized set of calibrated RGB-D cameras encircling
// a scene (Fig 2).
type Array struct {
	Cameras []Camera
}

// NewRing builds an array of n cameras evenly spaced on a circle of the
// given radius (meters) at the given height, all aimed at the point
// (0, lookHeight, 0). This mirrors the capture rigs in the paper's datasets
// (10 Kinects encircling a scene).
func NewRing(n int, radius, height, lookHeight float64, in Intrinsics, maxRange float64) Array {
	cams := make([]Camera, n)
	target := geom.V3(0, lookHeight, 0)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		pos := geom.V3(radius*math.Cos(ang), height, radius*math.Sin(ang))
		cams[i] = Camera{
			ID:         i,
			Intrinsics: in,
			Pose:       geom.LookAt(pos, target, geom.V3(0, 1, 0)),
			MaxRange:   maxRange,
		}
	}
	return Array{Cameras: cams}
}

// N returns the number of cameras.
func (a Array) N() int { return len(a.Cameras) }

// PointsFromViews reconstructs world-space points (with colors) from one
// RGB-D frame per camera — the receiver-side reconstruction step (§A.1).
// Pixels with zero depth (no measurement, or culled) are skipped. The
// returned slices are parallel: positions[i] has color colors[i] (packed
// RGB). The caller may pass nil views for cameras with no frame.
func (a Array) PointsFromViews(views []frame.RGBDFrame) (positions []geom.Vec3, colors [][3]uint8, err error) {
	var up Unprojector
	return up.PointsInto(a, views)
}

// unprojRows is the fixed row-shard height for parallel unprojection.
// Fixed (not derived from GOMAXPROCS) so the shard decomposition — and
// with it the exact output slot of every pixel — is identical at any
// worker count.
const unprojRows = 64

// unprojSpan is one shard of unprojection work: rows [y0, y1) of one view.
type unprojSpan struct {
	view   int
	y0, y1 int
	count  int // valid-depth pixels in the span (phase 1)
	off    int // output offset of the span's first point (prefix sum)
}

// Unprojector reconstructs world-space points from per-camera RGB-D views
// into reusable arenas, sharded by tile rows across the worker pool. The
// two-phase scheme — parallel count, serial prefix-sum, parallel fill —
// gives every span a disjoint output range whose position depends only on
// raster order, so the point order is byte-identical to the sequential
// loop at any GOMAXPROCS.
//
// The zero value is ready to use. Returned slices alias arenas owned by
// the Unprojector and are valid until the next PointsInto call.
type Unprojector struct {
	cams    []Camera
	views   []frame.RGBDFrame
	spans   []unprojSpan
	pos     []geom.Vec3
	cols    [][3]uint8
	countFn func(int)
	fillFn  func(int)
}

// PointsInto reconstructs world-space points (with packed-RGB colors) from
// one RGB-D frame per camera — the receiver-side reconstruction step
// (§A.1). Pixels with zero depth (no measurement, or culled) are skipped;
// nil views are allowed. The returned parallel slices are valid until the
// next call.
func (up *Unprojector) PointsInto(a Array, views []frame.RGBDFrame) ([]geom.Vec3, [][3]uint8, error) {
	if len(views) != a.N() {
		return nil, nil, fmt.Errorf("camera: got %d views for %d cameras", len(views), a.N())
	}
	up.cams = a.Cameras
	up.views = views
	up.spans = up.spans[:0]
	for i, view := range views {
		if view.Depth == nil {
			continue
		}
		if err := view.Validate(); err != nil {
			return nil, nil, fmt.Errorf("camera %d: %w", i, err)
		}
		in := a.Cameras[i].Intrinsics
		if view.Depth.W != in.W || view.Depth.H != in.H {
			return nil, nil, fmt.Errorf("camera %d: view %dx%d does not match intrinsics %dx%d",
				i, view.Depth.W, view.Depth.H, in.W, in.H)
		}
		for y := 0; y < in.H; y += unprojRows {
			y1 := y + unprojRows
			if y1 > in.H {
				y1 = in.H
			}
			up.spans = append(up.spans, unprojSpan{view: i, y0: y, y1: y1})
		}
	}
	if up.countFn == nil {
		up.countFn = up.countSpan
		up.fillFn = up.fillSpan
	}
	pipeline.ParFor(len(up.spans), up.countFn)
	total := 0
	for i := range up.spans {
		up.spans[i].off = total
		total += up.spans[i].count
	}
	if cap(up.pos) < total {
		up.pos = make([]geom.Vec3, total)
		up.cols = make([][3]uint8, total)
	}
	up.pos = up.pos[:total]
	up.cols = up.cols[:total]
	pipeline.ParFor(len(up.spans), up.fillFn)
	return up.pos, up.cols, nil
}

// countSpan counts valid-depth pixels in span i.
func (up *Unprojector) countSpan(i int) {
	s := &up.spans[i]
	d := up.views[s.view].Depth
	n := 0
	for _, mm := range d.Pix[s.y0*d.W : s.y1*d.W] {
		if mm != 0 {
			n++
		}
	}
	s.count = n
}

// fillSpan unprojects span i's pixels into its reserved output range.
func (up *Unprojector) fillSpan(i int) {
	s := &up.spans[i]
	view := up.views[s.view]
	cam := up.cams[s.view]
	in := cam.Intrinsics
	m := cam.LocalToWorld()
	k := s.off
	for v := s.y0; v < s.y1; v++ {
		for u := 0; u < in.W; u++ {
			mm := view.Depth.At(u, v)
			if mm == 0 {
				continue
			}
			local := in.Unproject(u, v, float64(mm)/1000)
			up.pos[k] = m.TransformPoint(local)
			r, g, b := view.Color.At(u, v)
			up.cols[k] = [3]uint8{r, g, b}
			k++
		}
	}
}
