package camera

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/frame"
	"livo/internal/geom"
)

func testIntrinsics() Intrinsics { return NewIntrinsics(64, 48, math.Pi/2) }

func TestIntrinsicsValidate(t *testing.T) {
	if err := testIntrinsics().Validate(); err != nil {
		t.Errorf("valid intrinsics rejected: %v", err)
	}
	if err := (Intrinsics{W: 0, H: 10, Fx: 1, Fy: 1}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := (Intrinsics{W: 10, H: 10, Fx: 0, Fy: 1}).Validate(); err == nil {
		t.Error("zero focal accepted")
	}
}

func TestIntrinsicsHFov(t *testing.T) {
	in := NewIntrinsics(640, 480, math.Pi/2)
	if got := in.HFov(); math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("HFov = %v, want pi/2", got)
	}
}

func TestProjectUnprojectRoundTrip(t *testing.T) {
	in := testIntrinsics()
	for v := 0; v < in.H; v += 5 {
		for u := 0; u < in.W; u += 5 {
			p := in.Unproject(u, v, 2.5)
			u2, v2, z, ok := in.Project(p)
			if !ok {
				t.Fatalf("projection of unprojected pixel (%d,%d) failed", u, v)
			}
			if u2 != u || v2 != v {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", u, v, u2, v2)
			}
			if math.Abs(z-2.5) > 1e-12 {
				t.Fatalf("depth changed: %v", z)
			}
		}
	}
}

func TestProjectRejects(t *testing.T) {
	in := testIntrinsics()
	if _, _, _, ok := in.Project(geom.V3(0, 0, -1)); ok {
		t.Error("point behind camera projected")
	}
	if _, _, _, ok := in.Project(geom.V3(0, 0, 0)); ok {
		t.Error("point at origin projected")
	}
	// Far off-axis point outside the image.
	if _, _, _, ok := in.Project(geom.V3(100, 0, 1)); ok {
		t.Error("off-image point projected")
	}
}

func TestCameraWorldRoundTrip(t *testing.T) {
	cam := Camera{
		Intrinsics: testIntrinsics(),
		Pose: geom.Pose{
			Position: geom.V3(2, 1, -3),
			Rotation: geom.QuatFromAxisAngle(geom.V3(0, 1, 0), 0.8),
		},
		MaxRange: 6,
	}
	world := cam.UnprojectToWorld(30, 20, 3000)
	u, v, z, ok := cam.ProjectFromWorld(world)
	if !ok {
		t.Fatal("world round trip projection failed")
	}
	if u != 30 || v != 20 || math.Abs(z-3.0) > 1e-9 {
		t.Fatalf("round trip = (%d,%d,%v)", u, v, z)
	}
}

func TestNewRingGeometry(t *testing.T) {
	in := testIntrinsics()
	arr := NewRing(10, 3.0, 1.5, 1.0, in, 6)
	if arr.N() != 10 {
		t.Fatalf("N = %d", arr.N())
	}
	target := geom.V3(0, 1.0, 0)
	for i, cam := range arr.Cameras {
		if cam.ID != i {
			t.Errorf("camera %d has ID %d", i, cam.ID)
		}
		// On the circle.
		d := math.Hypot(cam.Pose.Position.X, cam.Pose.Position.Z)
		if math.Abs(d-3.0) > 1e-9 {
			t.Errorf("camera %d radius = %v", i, d)
		}
		if math.Abs(cam.Pose.Position.Y-1.5) > 1e-9 {
			t.Errorf("camera %d height = %v", i, cam.Pose.Position.Y)
		}
		// Looking at the target: forward should point from camera to target.
		want := target.Sub(cam.Pose.Position).Normalize()
		if !cam.Pose.Forward().AlmostEqual(want, 1e-9) {
			t.Errorf("camera %d not aimed at target", i)
		}
		// The scene center must be visible.
		if _, _, _, ok := cam.ProjectFromWorld(target); !ok {
			t.Errorf("camera %d cannot see the scene center", i)
		}
	}
}

func TestPointsFromViews(t *testing.T) {
	in := NewIntrinsics(16, 12, math.Pi/2)
	arr := NewRing(2, 2.0, 1.0, 1.0, in, 6)
	views := make([]frame.RGBDFrame, 2)
	for i := range views {
		views[i] = frame.NewRGBDFrame(16, 12)
	}
	// One valid pixel in camera 0.
	views[0].Depth.Set(8, 6, 1500)
	views[0].Color.Set(8, 6, 10, 20, 30)
	pos, col, err := arr.PointsFromViews(views)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 1 || len(col) != 1 {
		t.Fatalf("got %d points", len(pos))
	}
	if col[0] != [3]uint8{10, 20, 30} {
		t.Errorf("color = %v", col[0])
	}
	// The reconstructed point must be ~1.5 m from camera 0.
	if d := pos[0].Dist(arr.Cameras[0].Pose.Position); math.Abs(d-1.5) > 0.1 {
		t.Errorf("point distance from camera = %v, want ~1.5", d)
	}
}

func TestPointsFromViewsReconstructionConsistency(t *testing.T) {
	// Unproject then reproject through a different path: points generated
	// from a camera's own depth map must project back onto the same pixels.
	rng := rand.New(rand.NewSource(40))
	in := NewIntrinsics(32, 24, math.Pi/2)
	arr := NewRing(3, 2.5, 1.2, 1.0, in, 6)
	views := make([]frame.RGBDFrame, 3)
	type px struct{ cam, u, v int }
	var stamped []px
	for i := range views {
		views[i] = frame.NewRGBDFrame(32, 24)
		for k := 0; k < 20; k++ {
			u, v := rng.Intn(32), rng.Intn(24)
			if views[i].Depth.At(u, v) != 0 {
				continue
			}
			views[i].Depth.Set(u, v, uint16(500+rng.Intn(4000)))
			stamped = append(stamped, px{i, u, v})
		}
	}
	pos, _, err := arr.PointsFromViews(views)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != len(stamped) {
		t.Fatalf("got %d points, want %d", len(pos), len(stamped))
	}
	// Points come back in camera-major, row-major order; reprojecting each
	// point into its own camera must hit a stamped pixel.
	for _, p := range pos {
		found := false
		for _, s := range stamped {
			u, v, _, ok := arr.Cameras[s.cam].ProjectFromWorld(p)
			if ok && u == s.u && v == s.v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v does not reproject onto any source pixel", p)
		}
	}
}

func TestPointsFromViewsErrors(t *testing.T) {
	in := testIntrinsics()
	arr := NewRing(2, 2, 1, 1, in, 6)
	if _, _, err := arr.PointsFromViews(nil); err == nil {
		t.Error("accepted wrong view count")
	}
	views := []frame.RGBDFrame{frame.NewRGBDFrame(8, 8), frame.NewRGBDFrame(8, 8)}
	if _, _, err := arr.PointsFromViews(views); err == nil {
		t.Error("accepted views not matching intrinsics")
	}
	// Nil views are skipped.
	ok := []frame.RGBDFrame{{}, {}}
	if _, _, err := arr.PointsFromViews(ok); err != nil {
		t.Errorf("nil views should be skipped: %v", err)
	}
}
