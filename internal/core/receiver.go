package core

import (
	"fmt"
	"time"

	"livo/internal/camera"
	"livo/internal/codec/depth"
	"livo/internal/codec/vcodec"
	"livo/internal/frame"
	"livo/internal/frametrace"
	"livo/internal/geom"
	"livo/internal/pipeline"
	"livo/internal/pointcloud"
	"livo/internal/telemetry"
)

// ReceiverConfig configures a LiVo receiver. Camera calibration and tiling
// geometry are exchanged once at connection setup (§A.1).
type ReceiverConfig struct {
	Array      camera.Array
	GOP        int
	MaxDepthMM uint16
	// VoxelSize controls receiver-side voxelization before rendering
	// (§A.1); 0 disables it.
	VoxelSize float64
	// FlateLevel must match the sender's entropy setting.
	FlateLevel int
	// Telemetry receives frame-path metrics and stage spans (DESIGN.md §6);
	// nil uses telemetry.Default.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives decode and reconstruct hop stamps for
	// the cross-hop frame ledger (DESIGN.md §6); nil disables tracing.
	Trace *frametrace.Ledger
	// Rungs describes the sender's quality ladder so quarter-resolution
	// rungs can be recognized and routed through the superres path; nil
	// selects vcodec.DefaultLadder(). Legacy single-rung streams mark every
	// packet rung 0 and never touch the ladder path.
	Rungs []vcodec.Rung
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.MaxDepthMM == 0 {
		c.MaxDepthMM = depth.DefaultMaxMM
	}
	if c.GOP <= 0 {
		c.GOP = 30
	}
	return c
}

// PairedFrame is a decoded, sequence-matched pair of tiled frames ready
// for reconstruction.
type PairedFrame struct {
	Seq        uint32
	TiledColor *frame.ColorImage
	TiledDepth *frame.DepthImage
}

// Receiver decodes the two streams, re-synchronizes them by frame sequence
// number, and reconstructs point clouds.
type Receiver struct {
	cfg      ReceiverConfig
	tiler    *frame.Tiler
	colorDec *vcodec.Decoder
	depthDec *depth.Decoder

	// Quality-ladder state: quarterRung marks which rung ids carry
	// quarter-resolution frames; the quarter decoders are created lazily on
	// the first quarter packet (a subscriber pinned to full-res rungs never
	// pays for them). Quarter color is upsampled bilinearly and quarter
	// depth goes through the edge-aware superres path (VoLUT-style), so
	// downstream pairing and reconstruction always see full-res tiles.
	quarterRung [4]bool
	qColorDec   *vcodec.Decoder
	qDepthDec   *depth.Decoder
	qMarkersOK  bool

	pendingColor map[uint32]*frame.ColorImage
	pendingDepth map[uint32]*frame.DepthImage
	markersOK    bool
	mismatches   int
	lastGood     *PairedFrame

	// Reconstruction arenas (see Reconstruct): per-camera view images,
	// the unprojector's point buffers, the voxel grid, and the two cloud
	// headers the returned pointer alternates between. All are overwritten
	// by the next Reconstruct call.
	views     []frame.RGBDFrame
	viewErrs  []error
	extractPF *PairedFrame
	extractFn func(int)
	unproj    camera.Unprojector
	grid      pointcloud.VoxelGrid
	raw       pointcloud.Cloud
	voxed     pointcloud.Cloud

	// Telemetry handles, resolved once in NewReceiver (DESIGN.md §6).
	stages        *telemetry.StageSet
	mPaired       *telemetry.Counter
	mDecodeErrors *telemetry.Counter
	mMismatches   *telemetry.Counter
	gPendingPairs *telemetry.Gauge
}

// NewReceiver builds a receiver matching the sender's configuration.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	cfg = cfg.withDefaults()
	if cfg.Array.N() == 0 {
		return nil, fmt.Errorf("core: receiver needs at least one camera")
	}
	in := cfg.Array.Cameras[0].Intrinsics
	tiler, err := frame.NewTiler(cfg.Array.N(), in.W, in.H)
	if err != nil {
		return nil, err
	}
	tw, th := tiler.FrameSize()
	colorCfg := vcodec.ColorConfig(tw, th)
	colorCfg.GOP = cfg.GOP
	colorCfg.FlateLevel = cfg.FlateLevel
	colorDec, err := vcodec.NewDecoder(colorCfg)
	if err != nil {
		return nil, err
	}
	depthDec, err := depth.NewDecoder(depth.Config{
		Scheme: depth.Scaled16,
		Width:  tw, Height: th,
		MaxMM:      cfg.MaxDepthMM,
		GOP:        cfg.GOP,
		FlateLevel: cfg.FlateLevel,
	})
	if err != nil {
		return nil, err
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Default
	}
	r := &Receiver{
		cfg:          cfg,
		tiler:        tiler,
		colorDec:     colorDec,
		depthDec:     depthDec,
		pendingColor: make(map[uint32]*frame.ColorImage),
		pendingDepth: make(map[uint32]*frame.DepthImage),
		markersOK:    tw >= frame.MarkerWidth && th >= frame.MarkerHeight,

		stages:        telemetry.NewStageSet(tel),
		mPaired:       tel.Counter("livo_frames_paired_total"),
		mDecodeErrors: tel.Counter("livo_decode_errors_total"),
		mMismatches:   tel.Counter("livo_seq_mismatch_total"),
		gPendingPairs: tel.Gauge("livo_pending_unpaired_frames"),
	}
	rungs := cfg.Rungs
	if rungs == nil {
		rungs = vcodec.DefaultLadder()
	}
	for _, rung := range rungs {
		if rung.Quarter && int(rung.ID) < len(r.quarterRung) {
			r.quarterRung[rung.ID] = true
		}
	}
	qw, qh := (tw+1)/2, (th+1)/2
	r.qMarkersOK = qw >= frame.MarkerWidth && qh >= frame.MarkerHeight
	return r, nil
}

// quarterDims is the quarter rung's tile geometry.
func (r *Receiver) quarterDims() (int, int) {
	tw, th := r.tiler.FrameSize()
	return (tw + 1) / 2, (th + 1) / 2
}

// decodeQuarterColor decodes a quarter-rung color packet and lifts it to
// full resolution: read (and zero) the quarter marker strip first — the
// marker must not smear past the full-res strip the pairing path wipes —
// then upsample bilinearly. Returns the full-res image and the frame seq.
func (r *Receiver) decodeQuarterColor(pkt *vcodec.Packet) (*frame.ColorImage, uint32, error) {
	tw, th := r.tiler.FrameSize()
	if r.qColorDec == nil {
		qw, qh := r.quarterDims()
		qcfg := vcodec.ColorConfig(qw, qh)
		qcfg.GOP = r.cfg.GOP
		qcfg.FlateLevel = r.cfg.FlateLevel
		dec, err := vcodec.NewDecoder(qcfg)
		if err != nil {
			return nil, 0, err
		}
		r.qColorDec = dec
	}
	f, err := r.qColorDec.Decode(pkt)
	if err != nil {
		return nil, 0, err
	}
	qim := f.ToColor()
	seq := pkt.Seq
	if r.qMarkersOK {
		if mseq, err := frame.DecodeColorMarker(qim); err == nil {
			if mseq != pkt.Seq {
				r.mismatches++
				r.mMismatches.Inc()
			}
			seq = mseq
		}
		zeroColorStrip(qim)
	}
	return upsampleColor2x(qim, tw, th), seq, nil
}

// decodeQuarterDepth decodes a quarter-rung depth packet and recovers full
// resolution with the edge-aware superres path (depth.SuperResolve2x).
func (r *Receiver) decodeQuarterDepth(pkt *vcodec.Packet) (*frame.DepthImage, uint32, error) {
	tw, th := r.tiler.FrameSize()
	if r.qDepthDec == nil {
		qw, qh := r.quarterDims()
		dec, err := depth.NewDecoder(depth.Config{
			Scheme: depth.Scaled16,
			Width:  qw, Height: qh,
			MaxMM:      r.cfg.MaxDepthMM,
			GOP:        r.cfg.GOP,
			FlateLevel: r.cfg.FlateLevel,
		})
		if err != nil {
			return nil, 0, err
		}
		r.qDepthDec = dec
	}
	qim, err := r.qDepthDec.Decode(pkt)
	if err != nil {
		return nil, 0, err
	}
	seq := pkt.Seq
	if r.qMarkersOK {
		if mseq, err := frame.DecodeDepthMarker(qim); err == nil {
			if mseq != pkt.Seq {
				r.mismatches++
				r.mMismatches.Inc()
			}
			seq = mseq
		}
		for y := 0; y < frame.MarkerHeight; y++ {
			for x := 0; x < frame.MarkerWidth; x++ {
				qim.Set(x, y, 0)
			}
		}
	}
	return depth.SuperResolve2x(qim, tw, th, depth.DefaultSuperresJumpMM), seq, nil
}

// zeroColorStrip wipes the marker strip of a color image.
func zeroColorStrip(im *frame.ColorImage) {
	for y := 0; y < frame.MarkerHeight; y++ {
		for x := 0; x < frame.MarkerWidth; x++ {
			im.Set(x, y, 0, 0, 0)
		}
	}
}

// upsampleColor2x lifts a half-resolution color image to outW x outH:
// even output samples copy their source pixel, odd ones average the two
// bracketing sources (separable linear interpolation).
func upsampleColor2x(src *frame.ColorImage, outW, outH int) *frame.ColorImage {
	out := frame.NewColorImage(outW, outH)
	for y := 0; y < outH; y++ {
		sy0 := y / 2
		sy1 := sy0
		if y&1 == 1 && sy0+1 < src.H {
			sy1 = sy0 + 1
		}
		for x := 0; x < outW; x++ {
			sx0 := x / 2
			sx1 := sx0
			if x&1 == 1 && sx0+1 < src.W {
				sx1 = sx0 + 1
			}
			r00, g00, b00 := src.At(sx0, sy0)
			r10, g10, b10 := src.At(sx1, sy0)
			r01, g01, b01 := src.At(sx0, sy1)
			r11, g11, b11 := src.At(sx1, sy1)
			out.Set(x, y,
				uint8((int(r00)+int(r10)+int(r01)+int(r11))/4),
				uint8((int(g00)+int(g10)+int(g01)+int(g11))/4),
				uint8((int(b00)+int(b10)+int(b01)+int(b11))/4))
		}
	}
	return out
}

// PushColor decodes one color packet; if its depth counterpart has already
// arrived, the paired frame is returned.
func (r *Receiver) PushColor(pkt *vcodec.Packet) (*PairedFrame, error) {
	t0 := time.Now()
	var im *frame.ColorImage
	var seq uint32
	if int(pkt.Rung) < len(r.quarterRung) && r.quarterRung[pkt.Rung] {
		var err error
		im, seq, err = r.decodeQuarterColor(pkt)
		if err != nil {
			r.mDecodeErrors.Inc()
			return nil, err
		}
	} else {
		f, err := r.colorDec.Decode(pkt)
		if err != nil {
			r.mDecodeErrors.Inc()
			return nil, err
		}
		im = f.ToColor()
		seq = pkt.Seq
		if r.markersOK {
			if mseq, err := frame.DecodeColorMarker(im); err == nil {
				if mseq != pkt.Seq {
					r.mismatches++
					r.mMismatches.Inc()
				}
				seq = mseq
			}
		}
	}
	r.stages.Done(seq, telemetry.StageDecodeColor, t0)
	r.cfg.Trace.StampNow(frametrace.HopDecodeColor, 0, seq, frametrace.NoSub)
	if d, ok := r.pendingDepth[seq]; ok {
		delete(r.pendingDepth, seq)
		return r.pairCounted(seq, im, d), nil
	}
	r.pendingColor[seq] = im
	r.gc(seq)
	return nil, nil
}

// PushDepth decodes one depth packet; if its color counterpart has already
// arrived, the paired frame is returned.
func (r *Receiver) PushDepth(pkt *vcodec.Packet) (*PairedFrame, error) {
	t0 := time.Now()
	var im *frame.DepthImage
	var seq uint32
	if int(pkt.Rung) < len(r.quarterRung) && r.quarterRung[pkt.Rung] {
		var err error
		im, seq, err = r.decodeQuarterDepth(pkt)
		if err != nil {
			r.mDecodeErrors.Inc()
			return nil, err
		}
	} else {
		var err error
		im, err = r.depthDec.Decode(pkt)
		if err != nil {
			r.mDecodeErrors.Inc()
			return nil, err
		}
		seq = pkt.Seq
		if r.markersOK {
			if mseq, err := frame.DecodeDepthMarker(im); err == nil {
				if mseq != pkt.Seq {
					r.mismatches++
					r.mMismatches.Inc()
				}
				seq = mseq
			}
		}
	}
	r.stages.Done(seq, telemetry.StageDecodeDepth, t0)
	r.cfg.Trace.StampNow(frametrace.HopDecodeDepth, 0, seq, frametrace.NoSub)
	if c, ok := r.pendingColor[seq]; ok {
		delete(r.pendingColor, seq)
		return r.pairCounted(seq, c, im), nil
	}
	r.pendingDepth[seq] = im
	r.gc(seq)
	return nil, nil
}

// pairCounted wraps pair with pairing telemetry.
func (r *Receiver) pairCounted(seq uint32, c *frame.ColorImage, d *frame.DepthImage) *PairedFrame {
	t0 := time.Now()
	pf := r.pair(seq, c, d)
	r.mPaired.Inc()
	r.gPendingPairs.SetInt(int64(len(r.pendingColor) + len(r.pendingDepth)))
	r.stages.Done(seq, telemetry.StagePair, t0)
	return pf
}

// pair zeroes the marker strip (it is codec payload, not scene content)
// and wraps the frames.
func (r *Receiver) pair(seq uint32, c *frame.ColorImage, d *frame.DepthImage) *PairedFrame {
	if r.markersOK {
		for y := 0; y < frame.MarkerHeight; y++ {
			for x := 0; x < frame.MarkerWidth; x++ {
				d.Set(x, y, 0)
				c.Set(x, y, 0, 0, 0)
			}
		}
	}
	pf := &PairedFrame{Seq: seq, TiledColor: c, TiledDepth: d}
	r.lastGood = pf
	return pf
}

// LastGood returns the most recent successfully paired frame — the
// concealment source while a PLI-requested key frame is in flight (§A.1) —
// or nil before the first pair completes.
func (r *Receiver) LastGood() *PairedFrame { return r.lastGood }

// gc drops unpaired frames outside a sequence window around the latest
// push: if one stream skips a frame the other must not leak (LiVo "simply
// skips the frame", §A.1). The window is two-sided — a corrupted in-band
// marker can yield an arbitrary far-future sequence number that a one-sided
// check would never evict — so each pending map is bounded at ~2*maxLag
// entries for the lifetime of a session.
func (r *Receiver) gc(latest uint32) {
	const maxLag = 90 // 3 seconds at 30 fps
	for seq := range r.pendingColor {
		if d := int32(latest - seq); d > maxLag || d < -maxLag {
			delete(r.pendingColor, seq)
		}
	}
	for seq := range r.pendingDepth {
		if d := int32(latest - seq); d > maxLag || d < -maxLag {
			delete(r.pendingDepth, seq)
		}
	}
}

// SeqMismatches counts frames whose in-band marker disagreed with the
// transport sequence number (should be 0 in healthy sessions).
func (r *Receiver) SeqMismatches() int { return r.mismatches }

// Reconstruct converts a paired frame into a point cloud in the global
// frame (§A.1): extract per-camera views, unproject valid pixels,
// voxelize, and cull to the viewer's current frustum. Pass nil frustum to
// keep the full cloud.
//
// Every stage runs out of per-receiver arenas: the extracted view images,
// the unprojected point slices, the voxel grid, and the returned cloud
// are all owned by the receiver and overwritten by the next Reconstruct
// call — the steady-state path does not allocate. Callers that retain a
// cloud across frames must Clone it.
func (r *Receiver) Reconstruct(pf *PairedFrame, frustum *geom.Frustum) (*pointcloud.Cloud, error) {
	t0 := time.Now()
	defer func() {
		r.stages.Done(pf.Seq, telemetry.StageReconstruct, t0)
		r.cfg.Trace.StampNow(frametrace.HopReconstruct, 0, pf.Seq, frametrace.NoSub)
	}()
	n := r.cfg.Array.N()
	if r.views == nil {
		r.views = make([]frame.RGBDFrame, n)
		r.viewErrs = make([]error, n)
		for i := range r.views {
			r.views[i] = frame.RGBDFrame{
				Color: frame.NewColorImage(r.tiler.TileW, r.tiler.TileH),
				Depth: frame.NewDepthImage(r.tiler.TileW, r.tiler.TileH),
			}
		}
		r.extractFn = func(i int) {
			pf := r.extractPF
			if err := r.tiler.ExtractColorInto(pf.TiledColor, i, r.views[i].Color); err != nil {
				r.viewErrs[i] = err
				return
			}
			r.viewErrs[i] = r.tiler.ExtractDepthInto(pf.TiledDepth, i, r.views[i].Depth)
		}
	}
	// Tile extraction, sharded by camera: each view writes a disjoint
	// image pair and its own error slot.
	r.extractPF = pf
	pipeline.ParFor(n, r.extractFn)
	r.extractPF = nil
	for _, err := range r.viewErrs {
		if err != nil {
			return nil, err
		}
	}
	pos, cols, err := r.unproj.PointsInto(r.cfg.Array, r.views)
	if err != nil {
		return nil, err
	}
	r.raw.Positions, r.raw.Colors = pos, cols
	cloud := &r.raw
	if r.cfg.VoxelSize > 0 {
		r.grid.DownsampleInto(&r.voxed, cloud, r.cfg.VoxelSize)
		cloud = &r.voxed
	}
	if frustum != nil {
		cloud.CullFrustumInPlace(*frustum)
	}
	return cloud, nil
}
