// Package core assembles LiVo's sender and receiver pipelines (Fig 2).
//
// Sender, per frame: predict the receiver frustum (Kalman + guard band,
// §3.4) → cull the N RGB-D views in pixel space → tile color and depth into
// two large frames (§3.2) → stamp frame-sequence markers (§A.1) → encode
// the color frame with the 8-bit codec and the depth frame with the scaled
// 16-bit Y codec, splitting the bandwidth budget adaptively between the two
// streams (§3.3).
//
// Receiver: pair decoded color/depth frames by their in-band sequence
// markers, zero the marker strip, extract per-camera views, reconstruct the
// point cloud in the global frame, voxelize, and cull to the current
// (actual) frustum (§A.1).
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"livo/internal/camera"
	"livo/internal/codec/depth"
	"livo/internal/codec/vcodec"
	"livo/internal/cull"
	"livo/internal/frame"
	"livo/internal/frametrace"
	"livo/internal/geom"
	"livo/internal/pipeline"
	"livo/internal/split"
	"livo/internal/telemetry"
)

// Variant selects which system of the evaluation a sender behaves as.
type Variant int

// Sender variants used across §4.
const (
	// LiVo is the full system: culling + adaptive split + rate adaptation.
	LiVo Variant = iota
	// LiVoNoCull disables view culling (the Starline-inspired baseline,
	// §4.1, but keeps bandwidth adaptation).
	LiVoNoCull
	// LiVoNoAdapt disables bandwidth adaptation and culling, encoding at
	// fixed quality (color QP 22, depth QP 14 — Starline's settings, §4.5).
	LiVoNoAdapt
	// LiVoStaticSplit keeps adaptation and culling but uses a fixed
	// bandwidth split (the Fig 18/19 comparison).
	LiVoStaticSplit
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case LiVo:
		return "LiVo"
	case LiVoNoCull:
		return "LiVo-NoCull"
	case LiVoNoAdapt:
		return "LiVo-NoAdapt"
	case LiVoStaticSplit:
		return "LiVo-StaticSplit"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// SenderConfig configures a LiVo sender.
type SenderConfig struct {
	Variant Variant
	// Array is the calibrated camera rig.
	Array camera.Array
	// ViewParams are the receiver headset's viewing parameters, exchanged
	// at session setup (§3.4).
	ViewParams geom.ViewParams
	// FPS is the capture frame rate (30).
	FPS int
	// GOP is the key-frame interval for both encoders.
	GOP int
	// GuardBand is the culling guard band ε in meters (default 0.20).
	GuardBand float64
	// InitialSplit is s_i (default 0.8).
	InitialSplit float64
	// StaticSplit is the fixed split for LiVoStaticSplit.
	StaticSplit float64
	// FixedColorQP/FixedDepthQP are the LiVoNoAdapt quality settings
	// (defaults 22 and 14, §4.5).
	FixedColorQP, FixedDepthQP int
	// SearchRadius is the codec motion search radius (default 0).
	SearchRadius int
	// MaxDepthMM is the depth scaling range (default 6000).
	MaxDepthMM uint16
	// FlateLevel tunes the entropy coder (default 4).
	FlateLevel int
	// Ladder enables the encode-once quality ladder (DESIGN.md §8): each
	// frame is encoded at vcodec.DefaultLadder()'s rungs — full quality, a
	// requantized cheaper copy, and a quarter-resolution copy — and
	// EncodedFrame carries every rung so the relay can serve each
	// subscriber the best rung its bandwidth affords. The rate-control
	// budget and quality probes apply to rung 0; the other rungs derive
	// from its analysis (§3.2's encode-once principle).
	Ladder bool
	// ProbeRMSE computes the sender-side depth/color RMSE on every frame
	// and reports it in EncodedFrame (the Fig 4 instrumentation; normally
	// the probe only runs every k-th frame inside the splitter).
	ProbeRMSE bool
	// Telemetry receives frame-path metrics and stage spans (DESIGN.md §6);
	// nil uses telemetry.Default.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives capture and encode hop stamps for the
	// cross-hop frame ledger (DESIGN.md §6); nil disables tracing.
	Trace *frametrace.Ledger
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.GOP <= 0 {
		c.GOP = 30
	}
	if c.GuardBand == 0 {
		c.GuardBand = 0.20
	}
	if c.InitialSplit == 0 {
		// The empirical s_i from the Fig 4 profile (§3.3).
		c.InitialSplit = 0.85
	}
	if c.StaticSplit == 0 {
		c.StaticSplit = 0.8
	}
	if c.FixedColorQP == 0 {
		c.FixedColorQP = 22
	}
	if c.FixedDepthQP == 0 {
		c.FixedDepthQP = 14
	}
	if c.MaxDepthMM == 0 {
		c.MaxDepthMM = depth.DefaultMaxMM
	}
	return c
}

// EncodedFrame is the sender's per-frame output: one color packet and one
// depth packet plus bookkeeping the experiments record.
type EncodedFrame struct {
	Seq         uint32
	Color       *vcodec.Packet
	Depth       *vcodec.Packet
	Split       float64    // split used for this frame
	CullStats   cull.Stats // pixels kept/total (Total==0 when not culling)
	TargetBytes int        // byte budget for the whole frame
	// DepthRMSEmm and ColorRMSE are the sender-side quality probes in
	// millimeters and 8-bit levels; -1 unless probed this frame.
	DepthRMSEmm float64
	ColorRMSE   float64
	// ColorRungs/DepthRungs carry every quality-ladder rung, indexed like
	// vcodec.DefaultLadder(); entry 0 aliases Color/Depth. Nil when the
	// ladder is disabled.
	ColorRungs []*vcodec.Packet
	DepthRungs []*vcodec.Packet
}

// TotalBytes is the encoded size of both streams.
func (f *EncodedFrame) TotalBytes() int {
	return f.Color.SizeBytes() + f.Depth.SizeBytes()
}

// Sender is LiVo's per-site sending pipeline. Not safe for concurrent use;
// the live pipeline wraps it in a dedicated goroutine (§A.1). Internally
// the color and depth streams are encoded concurrently per tick — they use
// independent encoders, mirroring the parallel hardware encoder sessions
// LiVo drives (§3.2) — and each encoder is itself stripe-parallel.
type Sender struct {
	cfg       SenderConfig
	tiler     *frame.Tiler
	colorEnc  *vcodec.Encoder
	depthEnc  *depth.Encoder
	splitter  *split.Controller
	predictor *cull.FrustumPredictor
	seq       uint32
	markersOK bool

	// Quality-ladder state (cfg.Ladder): ladder encoders replace the
	// single-rung ones, and the quarter rung stages through qColor/qDepth
	// (downsampled from the *unstamped* tiles, then stamped with their own
	// marker — downsampling a stamped image would destroy the code).
	// qMarkersOK is the quarter geometry's marker fit; when false the
	// ladder derives quarters internally and receivers fall back to
	// transport sequence numbers.
	colorLad   *vcodec.LadderEncoder
	depthLad   *depth.LadderEncoder
	qMarkersOK bool
	qColor     *frame.ColorImage
	qDepth     *frame.DepthImage
	qsrcColor  *vcodec.Frame
	// refreshInFlight suppresses repeated PLI-triggered key frames until the
	// forced IDR has actually been emitted (PLI-storm guard, §A.1).
	refreshInFlight bool
	// srcColor is the reused YCbCr staging frame for the tiled color
	// stream (one full-resolution conversion per tick, no allocation).
	srcColor *vcodec.Frame
	// blankColor/blankDepth are the shared stand-ins for fully-culled
	// views. Compose* copies tiles out of its inputs, so one zeroed pair
	// serves every culled slot of every frame instead of allocating fresh
	// blank images per slot. They must never be written to.
	blankColor *frame.ColorImage
	blankDepth *frame.DepthImage
	// colorViews/depthViews are the per-tick composition scratch slices.
	colorViews []*frame.ColorImage
	depthViews []*frame.DepthImage

	// Telemetry handles, resolved once in NewSender (DESIGN.md §6).
	tel        *telemetry.Registry
	stages     *telemetry.StageSet
	mFrames    *telemetry.Counter
	mKeyFrames *telemetry.Counter
	mBytes     *telemetry.Counter
	gSplit     *telemetry.Gauge
	gDepthRMSE *telemetry.Gauge
	gColorRMSE *telemetry.Gauge
	gTarget    *telemetry.Gauge
	gCullKept  *telemetry.Gauge
}

// NewSender builds a sender for the given configuration.
func NewSender(cfg SenderConfig) (*Sender, error) {
	cfg = cfg.withDefaults()
	if cfg.Array.N() == 0 {
		return nil, fmt.Errorf("core: sender needs at least one camera")
	}
	in := cfg.Array.Cameras[0].Intrinsics
	for i, cam := range cfg.Array.Cameras {
		if cam.Intrinsics.W != in.W || cam.Intrinsics.H != in.H {
			return nil, fmt.Errorf("core: camera %d resolution differs (tiling needs uniform views)", i)
		}
	}
	tiler, err := frame.NewTiler(cfg.Array.N(), in.W, in.H)
	if err != nil {
		return nil, err
	}
	tw, th := tiler.FrameSize()

	colorCfg := vcodec.ColorConfig(tw, th)
	colorCfg.GOP = cfg.GOP
	colorCfg.SearchRadius = cfg.SearchRadius
	colorCfg.FlateLevel = cfg.FlateLevel
	depthCfg := depth.Config{
		Scheme: depth.Scaled16,
		Width:  tw, Height: th,
		MaxMM:      cfg.MaxDepthMM,
		GOP:        cfg.GOP,
		FlateLevel: cfg.FlateLevel,
	}
	var colorEnc *vcodec.Encoder
	var depthEnc *depth.Encoder
	var colorLad *vcodec.LadderEncoder
	var depthLad *depth.LadderEncoder
	if cfg.Ladder {
		colorLad, err = vcodec.NewLadderEncoder(colorCfg, nil)
		if err != nil {
			return nil, err
		}
		depthLad, err = depth.NewLadderEncoder(depthCfg, nil)
		if err != nil {
			return nil, err
		}
	} else {
		colorEnc, err = vcodec.NewEncoder(colorCfg)
		if err != nil {
			return nil, err
		}
		depthEnc, err = depth.NewEncoder(depthCfg)
		if err != nil {
			return nil, err
		}
	}

	initial := cfg.InitialSplit
	if cfg.Variant == LiVoStaticSplit {
		initial = cfg.StaticSplit
	}
	s := &Sender{
		cfg:        cfg,
		tiler:      tiler,
		colorEnc:   colorEnc,
		depthEnc:   depthEnc,
		colorLad:   colorLad,
		depthLad:   depthLad,
		splitter:   split.New(initial),
		predictor:  cull.NewFrustumPredictor(cfg.ViewParams),
		markersOK:  tw >= frame.MarkerWidth && th >= frame.MarkerHeight,
		srcColor:   vcodec.NewFrame(tw, th, 3),
		blankColor: frame.NewColorImage(in.W, in.H),
		blankDepth: frame.NewDepthImage(in.W, in.H),
		colorViews: make([]*frame.ColorImage, cfg.Array.N()),
		depthViews: make([]*frame.DepthImage, cfg.Array.N()),
	}
	s.predictor.Guard = cfg.GuardBand
	if cfg.Ladder {
		if qcfg, ok := colorLad.QuarterConfig(); ok {
			s.qMarkersOK = s.markersOK &&
				qcfg.Width >= frame.MarkerWidth && qcfg.Height >= frame.MarkerHeight
			if s.qMarkersOK {
				s.qColor = frame.NewColorImage(qcfg.Width, qcfg.Height)
				s.qsrcColor = vcodec.NewFrame(qcfg.Width, qcfg.Height, 3)
			}
		}
	}

	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Default
	}
	s.tel = tel
	s.stages = telemetry.NewStageSet(tel)
	s.mFrames = tel.Counter("livo_frames_encoded_total")
	s.mKeyFrames = tel.Counter("livo_keyframes_total")
	s.mBytes = tel.Counter("livo_sender_encoded_bytes_total")
	s.gSplit = tel.Gauge("livo_split_s")
	s.gDepthRMSE = tel.Gauge("livo_probe_depth_rmse_mm")
	s.gColorRMSE = tel.Gauge("livo_probe_color_rmse")
	s.gTarget = tel.Gauge("livo_frame_target_bytes")
	s.gCullKept = tel.Gauge("livo_cull_kept_ratio")
	return s, nil
}

// Tiler exposes the stream composition geometry (shared with the receiver
// at session setup).
func (s *Sender) Tiler() *frame.Tiler { return s.tiler }

// ObservePose feeds receiver pose feedback (§3.4).
func (s *Sender) ObservePose(t float64, pose geom.Pose) { s.predictor.ObservePose(t, pose) }

// ObserveRTT feeds an application-level RTT sample (§3.4).
func (s *Sender) ObserveRTT(rtt float64) { s.predictor.ObserveRTT(rtt) }

// PredictedFrustum returns the guard-banded frustum the sender would cull
// against right now.
func (s *Sender) PredictedFrustum() geom.Frustum { return s.predictor.PredictFrustum() }

// SetHorizon overrides the prediction horizon (tests and Fig 15 sweeps).
func (s *Sender) SetHorizon(h float64) { s.predictor.SetHorizon(h) }

// Split returns the current bandwidth split.
func (s *Sender) Split() float64 { return s.splitter.Split() }

// ForceKeyFrame unconditionally makes the next frame an IDR on both
// streams. Prefer RequestKeyFrame for PLI handling — this primitive has no
// storm guard.
func (s *Sender) ForceKeyFrame() {
	if s.cfg.Ladder {
		s.colorLad.ForceKeyFrame()
		s.depthLad.ForceKeyFrame()
		return
	}
	s.colorEnc.ForceKeyFrame()
	s.depthEnc.ForceKeyFrame()
}

// RequestKeyFrame reacts to a PLI from the receiver (§A.1): it forces an
// IDR on both streams unless a forced refresh is already in flight, so a
// burst of PLIs (one per undecodable frame at the receiver) produces one
// recovery IDR instead of a key frame per PLI. It reports whether a new
// refresh was armed.
func (s *Sender) RequestKeyFrame() bool {
	if s.refreshInFlight {
		return false
	}
	s.refreshInFlight = true
	s.ForceKeyFrame()
	return true
}

// KeyFrameInFlight reports whether a PLI-triggered refresh is pending.
func (s *Sender) KeyFrameInFlight() bool { return s.refreshInFlight }

// cullsViews reports whether this variant culls.
func (s *Sender) cullsViews() bool {
	return s.cfg.Variant == LiVo || s.cfg.Variant == LiVoStaticSplit
}

// adapts reports whether this variant rate-adapts.
func (s *Sender) adapts() bool { return s.cfg.Variant != LiVoNoAdapt }

// ProcessFrame runs the full sender pipeline on one set of camera views
// with the given bandwidth estimate (bits/second, from congestion control).
func (s *Sender) ProcessFrame(views []frame.RGBDFrame, bandwidthBps float64) (*EncodedFrame, error) {
	if len(views) != s.cfg.Array.N() {
		return nil, fmt.Errorf("core: got %d views for %d cameras", len(views), s.cfg.Array.N())
	}
	s.cfg.Trace.StampNow(frametrace.HopCapture, 0, s.seq, frametrace.NoSub)

	// 1. View culling in pixel space (§3.4).
	var st cull.Stats
	var err error
	if s.cullsViews() {
		t0 := time.Now()
		views, st, err = cull.Views(s.cfg.Array, views, s.predictor.PredictFrustum())
		if err != nil {
			return nil, err
		}
		s.stages.Done(s.seq, telemetry.StageCull, t0)
		if st.Total > 0 {
			s.gCullKept.Set(float64(st.Kept) / float64(st.Total))
		}
	}

	// 2. Stream composition: tile N views into one color + one depth frame
	// (§3.2).
	tileStart := time.Now()
	colorViews := s.colorViews
	depthViews := s.depthViews
	for i, v := range views {
		if v.Color == nil {
			// Fully-culled view: tile the shared blank pair (Compose*
			// copies, so reuse across slots and frames is safe).
			colorViews[i] = s.blankColor
			depthViews[i] = s.blankDepth
			continue
		}
		colorViews[i] = v.Color
		depthViews[i] = v.Depth
	}
	tiledColor, err := s.tiler.ComposeColor(colorViews)
	if err != nil {
		return nil, err
	}
	tiledDepth, err := s.tiler.ComposeDepth(depthViews)
	if err != nil {
		return nil, err
	}
	s.stages.Done(s.seq, telemetry.StageTile, tileStart)

	// 3. In-band sequence markers (§A.1). The quarter rung's staging images
	// are downsampled from the *unstamped* tiles first — downsampling a
	// stamped image would shred the marker code — then each resolution is
	// stamped with its own marker.
	if s.cfg.Ladder && s.qMarkersOK {
		downsampleColorBox2x(tiledColor, s.qColor)
		s.qDepth = depth.Downsample2xInto(tiledDepth, s.qDepth)
	}
	if s.markersOK {
		if err := frame.StampColorMarker(tiledColor, s.seq); err != nil {
			return nil, err
		}
		if err := frame.StampDepthMarker(tiledDepth, s.seq); err != nil {
			return nil, err
		}
	}
	if s.cfg.Ladder && s.qMarkersOK {
		if err := frame.StampColorMarker(s.qColor, s.seq); err != nil {
			return nil, err
		}
		if err := frame.StampDepthMarker(s.qDepth, s.seq); err != nil {
			return nil, err
		}
		vcodec.FromColorInto(s.qColor, s.qsrcColor)
	}

	// 4. Bandwidth split + encoding (§3.3). The two streams go through
	// independent encoders, so they encode concurrently (the split is
	// decided before either starts); packet bytes are unaffected.
	targetBytes := int(bandwidthBps / 8 / float64(s.cfg.FPS))
	if targetBytes < 64 {
		targetBytes = 64
	}
	evaluate := s.adapts() && s.cfg.Variant != LiVoStaticSplit && s.splitter.Tick()

	srcColor := s.srcColor
	vcodec.FromColorInto(tiledColor, srcColor)
	var colorPkt, depthPkt *vcodec.Packet
	var colorPkts, depthPkts []*vcodec.Packet
	var depthErr error
	var wg sync.WaitGroup
	encStart := time.Now()
	fixedQP := !s.adapts()
	var depthBudget, colorBudget int
	if !fixedQP {
		depthBudget, colorBudget = s.splitter.Budgets(targetBytes)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		switch {
		case s.cfg.Ladder && fixedQP:
			depthPkts, depthErr = s.depthLad.EncodeLadderQP(tiledDepth, s.qDepth, s.cfg.FixedDepthQP)
		case s.cfg.Ladder:
			depthPkts, depthErr = s.depthLad.EncodeLadder(tiledDepth, s.qDepth, depthBudget)
		case fixedQP:
			depthPkt, depthErr = s.depthEnc.EncodeQP(tiledDepth, s.cfg.FixedDepthQP)
		default:
			depthPkt, depthErr = s.depthEnc.Encode(tiledDepth, depthBudget)
		}
		s.stages.Done(s.seq, telemetry.StageEncodeDepth, encStart)
		s.cfg.Trace.StampNow(frametrace.HopEncodeDepth, 0, s.seq, frametrace.NoSub)
	}()
	switch {
	case s.cfg.Ladder && fixedQP:
		colorPkts, err = s.colorLad.EncodeLadderQP(srcColor, s.qsrcColor, s.cfg.FixedColorQP)
	case s.cfg.Ladder:
		colorPkts, err = s.colorLad.EncodeLadder(srcColor, s.qsrcColor, colorBudget)
	case fixedQP:
		colorPkt, err = s.colorEnc.EncodeQP(srcColor, s.cfg.FixedColorQP)
	default:
		colorPkt, err = s.colorEnc.Encode(srcColor, colorBudget)
	}
	s.stages.Done(s.seq, telemetry.StageEncodeColor, encStart)
	s.cfg.Trace.StampNow(frametrace.HopEncodeColor, 0, s.seq, frametrace.NoSub)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if depthErr != nil {
		return nil, depthErr
	}
	if s.cfg.Ladder {
		colorPkt, depthPkt = colorPkts[0], depthPkts[0]
	}

	// 5. Quality probe every k frames: compare the encoder-side
	// reconstructions to the sources and walk the split (§3.3).
	depthRMSE, colorRMSE := -1.0, -1.0
	if evaluate || s.cfg.ProbeRMSE {
		var colorRecon *vcodec.Frame
		var depthRecon *frame.DepthImage
		if s.cfg.Ladder {
			colorRecon = s.colorLad.Encoder().LastRecon()
			depthRecon = s.depthLad.LastReconDepth()
		} else {
			colorRecon = s.colorEnc.LastRecon()
			depthRecon = s.depthEnc.LastReconDepth()
		}
		if colorRecon != nil && depthRecon != nil {
			colorRMSE = vcodec.PlaneRMSE(srcColor, colorRecon)
			normDepth := depthRMSENorm(tiledDepth, depthRecon, float64(s.cfg.MaxDepthMM))
			if normDepth >= 0 { // negative: recon geometry mismatch, skip the probe
				depthRMSE = normDepth * float64(s.cfg.MaxDepthMM)
				if evaluate {
					s.splitter.Observe(normDepth, colorRMSE/255)
				}
			}
		}
	}

	if colorPkt.Key && depthPkt.Key {
		// The refresh (forced or GOP-periodic) went out: accept new PLIs.
		s.refreshInFlight = false
		s.mKeyFrames.Inc()
	}

	s.mFrames.Inc()
	encodedBytes := colorPkt.SizeBytes() + depthPkt.SizeBytes()
	if s.cfg.Ladder {
		encodedBytes = 0
		for _, p := range colorPkts {
			encodedBytes += p.SizeBytes()
		}
		for _, p := range depthPkts {
			encodedBytes += p.SizeBytes()
		}
	}
	s.mBytes.Add(int64(encodedBytes))
	s.gSplit.Set(s.splitter.Split())
	s.gTarget.SetInt(int64(targetBytes))
	if depthRMSE >= 0 {
		s.gDepthRMSE.Set(depthRMSE)
	}
	if colorRMSE >= 0 {
		s.gColorRMSE.Set(colorRMSE)
	}

	out := &EncodedFrame{
		Seq:         s.seq,
		Color:       colorPkt,
		Depth:       depthPkt,
		Split:       s.splitter.Split(),
		CullStats:   st,
		TargetBytes: targetBytes,
		DepthRMSEmm: depthRMSE,
		ColorRMSE:   colorRMSE,
		ColorRungs:  colorPkts,
		DepthRungs:  depthPkts,
	}
	s.seq++
	return out, nil
}

// downsampleColorBox2x box-filters a color image into out, which must be
// ceil(W/2) x ceil(H/2) (the quarter rung's staging geometry).
func downsampleColorBox2x(src, out *frame.ColorImage) {
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			var rs, gs, bs, n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < src.W && sy < src.H {
						r, g, b := src.At(sx, sy)
						rs += int(r)
						gs += int(g)
						bs += int(b)
						n++
					}
				}
			}
			out.Set(x, y, uint8(rs/n), uint8(gs/n), uint8(bs/n))
		}
	}
}

// depthRMSEChunk is the fixed shard size for the parallel depth probe.
// Fixed (not derived from GOMAXPROCS) so the floating-point summation
// order is identical at any worker count.
const depthRMSEChunk = 1 << 17

// depthRMSENorm is the depth RMSE over reference-valid pixels, normalized
// by the depth range so it is comparable to color RMSE/255. It returns -1
// when the reconstruction's geometry does not match the reference (the
// probe is advisory; a mismatch must not panic the frame path). The scan
// shards across cores — it walks a full tiled depth plane on the sender
// hot path every probe tick.
func depthRMSENorm(ref, got *frame.DepthImage, maxMM float64) float64 {
	if got.W != ref.W || got.H != ref.H || len(got.Pix) < len(ref.Pix) {
		return -1
	}
	nChunks := (len(ref.Pix) + depthRMSEChunk - 1) / depthRMSEChunk
	sums := make([]float64, nChunks)
	counts := make([]int, nChunks)
	pipeline.ParFor(nChunks, func(c int) {
		lo := c * depthRMSEChunk
		hi := lo + depthRMSEChunk
		if hi > len(ref.Pix) {
			hi = len(ref.Pix)
		}
		var sum float64
		var n int
		for i := lo; i < hi; i++ {
			if ref.Pix[i] == 0 {
				continue
			}
			d := float64(int(ref.Pix[i]) - int(got.Pix[i]))
			sum += d * d
			n++
		}
		sums[c] = sum
		counts[c] = n
	})
	var sum float64
	var n int
	for c := 0; c < nChunks; c++ {
		sum += sums[c]
		n += counts[c]
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum/float64(n)) / maxMM
}

// PredictedPose returns the predictor's current pose estimate at the
// active horizon (diagnostics).
func (s *Sender) PredictedPose() geom.Pose { return s.predictor.PredictPose() }
