package core

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"

	"livo/internal/codec/vcodec"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/metrics"
	"livo/internal/pointcloud"
	"livo/internal/scene"
)

// testVideo opens a small-rig capture of office1: 4 cameras at 80x64 so
// tests stay fast (tiled frame 160x128, markers disabled).
func testVideo(t *testing.T, name string) *scene.Video {
	t.Helper()
	cfg := scene.CaptureConfig{
		Cameras: 4, Width: 80, Height: 64,
		HFov:       math.Pi * 75 / 180,
		RingRadius: 2.6, RingHeight: 1.5, MaxRange: 6,
	}
	v, err := scene.OpenVideo(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// markerVideo uses 10 cameras at 80x64: tiled 320x192, markers active.
func markerVideo(t *testing.T) *scene.Video {
	t.Helper()
	cfg := scene.CaptureConfig{
		Cameras: 10, Width: 80, Height: 64,
		HFov:       math.Pi * 75 / 180,
		RingRadius: 2.6, RingHeight: 1.5, MaxRange: 6,
	}
	v, err := scene.OpenVideo("toddler4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func viewerPose() geom.Pose {
	return geom.LookAt(geom.V3(0, 1.5, 2.4), geom.V3(0, 0.9, 0), geom.V3(0, 1, 0))
}

func newPair(t *testing.T, v *scene.Video, variant Variant) (*Sender, *Receiver) {
	t.Helper()
	s, err := NewSender(SenderConfig{
		Variant:    variant,
		Array:      v.Array,
		ViewParams: geom.DefaultViewParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{Array: v.Array})
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	v := testVideo(t, "office1")
	s, r := newPair(t, v, LiVo)
	pose := viewerPose()
	s.ObservePose(0, pose)
	s.ObserveRTT(0.1)

	views := v.Frame(0)
	enc, err := s.ProcessFrame(views, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if enc.TotalBytes() == 0 {
		t.Fatal("empty encoding")
	}
	pf1, err := r.PushColor(enc.Color)
	if err != nil {
		t.Fatal(err)
	}
	if pf1 != nil {
		t.Fatal("color alone should not pair")
	}
	pf, err := r.PushDepth(enc.Depth)
	if err != nil {
		t.Fatal(err)
	}
	if pf == nil {
		t.Fatal("depth did not complete the pair")
	}
	if pf.Seq != 0 {
		t.Errorf("seq = %d", pf.Seq)
	}
	cloud, err := r.Reconstruct(pf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Len() == 0 {
		t.Fatal("empty reconstruction")
	}
	// Quality versus the ground truth *culled* cloud: build ground truth
	// from the original views culled to the same predicted frustum.
	f := s.PredictedFrustum()
	pos, cols, err := v.Array.PointsFromViews(views)
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := pointcloud.FromSlices(pos, cols)
	gtCulled := gt.CullFrustum(f)
	got := cloud.CullFrustum(f)
	ps := metrics.PointSSIM(gtCulled, got, metrics.PSSIMOptions{MaxPoints: 600})
	if ps.Geometry < 60 {
		t.Errorf("reconstruction PSSIM geometry = %v", ps.Geometry)
	}
}

func TestCullingReducesBytes(t *testing.T) {
	v := testVideo(t, "pizza1")
	pose := geom.LookAt(geom.V3(0.4, 1.4, 1.7), geom.V3(0, 1.0, 0), geom.V3(0, 1, 0))
	vp := geom.ViewParams{FovY: math.Pi / 4, Aspect: 1.1, Near: 0.1, Far: 8}

	run := func(variant Variant) int {
		s, err := NewSender(SenderConfig{Variant: variant, Array: v.Array, ViewParams: vp})
		if err != nil {
			t.Fatal(err)
		}
		s.ObservePose(0, pose)
		s.SetHorizon(0)
		// Fixed QP so byte difference reflects culled content, not rate
		// control: use NoAdapt for both... but NoAdapt disables culling.
		// Instead use adaptive with a huge budget; the encoders will hit
		// quality limits and size tracks content.
		total := 0
		for i := 0; i < 3; i++ {
			enc, err := s.ProcessFrame(v.Frame(i), 200e6)
			if err != nil {
				t.Fatal(err)
			}
			total += enc.TotalBytes()
			if variant == LiVo && enc.CullStats.Total == 0 {
				t.Fatal("LiVo did not cull")
			}
			if variant == LiVoNoCull && enc.CullStats.Total != 0 {
				t.Fatal("NoCull culled")
			}
		}
		return total
	}
	culled := run(LiVo)
	full := run(LiVoNoCull)
	if culled >= full {
		t.Errorf("culling did not reduce bytes: %d vs %d", culled, full)
	}
}

func TestNoAdaptIgnoresBandwidth(t *testing.T) {
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVoNoAdapt)
	views := v.Frame(0)
	enc1, err := s.ProcessFrame(views, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newPair(t, v, LiVoNoAdapt)
	enc2, err := s2.ProcessFrame(views, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if enc1.TotalBytes() != enc2.TotalBytes() {
		t.Errorf("NoAdapt sizes differ with bandwidth: %d vs %d", enc1.TotalBytes(), enc2.TotalBytes())
	}
	if enc1.Color.QP != 22 || enc1.Depth.QP != 14 {
		t.Errorf("NoAdapt QPs = %d/%d, want 22/14", enc1.Color.QP, enc1.Depth.QP)
	}
}

func TestAdaptiveTracksBandwidth(t *testing.T) {
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVoNoCull)
	// Budgets chosen below the content's max-quality cost so rate control
	// actually binds (the tiny test frames saturate around ~10 KB).
	var highBytes, lowBytes int
	for i := 0; i < 8; i++ {
		enc, err := s.ProcessFrame(v.Frame(i), 1.5e6)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 5 && !enc.Color.Key {
			highBytes = enc.TotalBytes()
		}
	}
	for i := 8; i < 16; i++ {
		enc, err := s.ProcessFrame(v.Frame(i), 0.15e6)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 13 && !enc.Color.Key {
			lowBytes = enc.TotalBytes()
		}
	}
	if lowBytes == 0 || highBytes == 0 {
		t.Fatal("missing measurements")
	}
	if float64(lowBytes) > 0.5*float64(highBytes) {
		t.Errorf("10x bandwidth drop only changed %d -> %d bytes", highBytes, lowBytes)
	}
}

func TestSplitStaysInRange(t *testing.T) {
	v := testVideo(t, "dance5")
	s, _ := newPair(t, v, LiVo)
	s.ObservePose(0, viewerPose())
	for i := 0; i < 12; i++ {
		if _, err := s.ProcessFrame(v.Frame(i), 30e6); err != nil {
			t.Fatal(err)
		}
		if sp := s.Split(); sp < 0.5 || sp > 0.9 {
			t.Fatalf("split out of range: %v", sp)
		}
	}
}

func TestStaticSplitNeverMoves(t *testing.T) {
	v := testVideo(t, "office1")
	s, err := NewSender(SenderConfig{
		Variant: LiVoStaticSplit, Array: v.Array,
		ViewParams: geom.DefaultViewParams(), StaticSplit: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ObservePose(0, viewerPose())
	for i := 0; i < 7; i++ {
		if _, err := s.ProcessFrame(v.Frame(i), 30e6); err != nil {
			t.Fatal(err)
		}
		if s.Split() != 0.7 {
			t.Fatalf("static split moved to %v", s.Split())
		}
	}
}

func TestMarkerPairingOutOfOrder(t *testing.T) {
	v := markerVideo(t)
	s, err := NewSender(SenderConfig{Variant: LiVoNoCull, Array: v.Array, ViewParams: geom.DefaultViewParams()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{Array: v.Array})
	if err != nil {
		t.Fatal(err)
	}
	if !s.markersOK || !r.markersOK {
		t.Fatal("marker path not active in this configuration")
	}
	var encs []*EncodedFrame
	for i := 0; i < 3; i++ {
		enc, err := s.ProcessFrame(v.Frame(i), 60e6)
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	// Push all colors first, then depths: pairs must match by sequence.
	for _, e := range encs {
		if _, err := r.PushColor(e.Color); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range encs {
		pf, err := r.PushDepth(e.Depth)
		if err != nil {
			t.Fatal(err)
		}
		if pf == nil || pf.Seq != uint32(i) {
			t.Fatalf("pair %d wrong: %+v", i, pf)
		}
	}
	if r.SeqMismatches() != 0 {
		t.Errorf("marker/transport mismatches: %d", r.SeqMismatches())
	}
}

func TestReconstructWithFrustumAndVoxel(t *testing.T) {
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVoNoCull)
	r2, err := NewReceiver(ReceiverConfig{Array: v.Array, VoxelSize: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.ProcessFrame(v.Frame(0), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.PushColor(enc.Color); err != nil {
		t.Fatal(err)
	}
	pf, err := r2.PushDepth(enc.Depth)
	if err != nil || pf == nil {
		t.Fatal(err)
	}
	full, err := r2.Reconstruct(pf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The returned cloud is a receiver-owned arena overwritten by the next
	// Reconstruct call; Clone to compare across calls.
	full = full.Clone()
	f := geom.NewFrustum(viewerPose(), geom.ViewParams{FovY: math.Pi / 5, Aspect: 1, Near: 0.1, Far: 8})
	culled, err := r2.Reconstruct(pf, &f)
	if err != nil {
		t.Fatal(err)
	}
	if culled.Len() >= full.Len() {
		t.Errorf("frustum culling did not reduce cloud: %d vs %d", culled.Len(), full.Len())
	}
	for _, p := range culled.Positions {
		if !f.Contains(p) {
			t.Fatal("culled cloud contains out-of-frustum point")
		}
	}
}

func TestSenderErrors(t *testing.T) {
	if _, err := NewSender(SenderConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVo)
	if _, err := s.ProcessFrame(nil, 10e6); err == nil {
		t.Error("wrong view count accepted")
	}
	if _, err := NewReceiver(ReceiverConfig{}); err == nil {
		t.Error("empty receiver config accepted")
	}
}

func TestForceKeyFrameBothStreams(t *testing.T) {
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVoNoCull)
	if _, err := s.ProcessFrame(v.Frame(0), 30e6); err != nil {
		t.Fatal(err)
	}
	e2, err := s.ProcessFrame(v.Frame(1), 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Color.Key || e2.Depth.Key {
		t.Fatal("unexpected key frames")
	}
	s.ForceKeyFrame()
	e3, err := s.ProcessFrame(v.Frame(2), 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if !e3.Color.Key || !e3.Depth.Key {
		t.Error("ForceKeyFrame did not affect both streams")
	}
}

func TestVariantStrings(t *testing.T) {
	if LiVo.String() != "LiVo" || LiVoNoCull.String() != "LiVo-NoCull" ||
		LiVoNoAdapt.String() != "LiVo-NoAdapt" || LiVoStaticSplit.String() != "LiVo-StaticSplit" {
		t.Error("variant names wrong")
	}
	if Variant(42).String() == "" {
		t.Error("unknown variant should print")
	}
}

func TestReceiverDropsStaleUnpairedFrames(t *testing.T) {
	// If one stream skips frames, the other's unpaired decodes must not
	// accumulate forever (§A.1: LiVo simply skips the frame).
	v := testVideo(t, "office1")
	s, r := newPair(t, v, LiVoNoCull)
	var depths []*EncodedFrame
	for i := 0; i < 95; i++ {
		enc, err := s.ProcessFrame(v.Frame(i%4), 20e6)
		if err != nil {
			t.Fatal(err)
		}
		// Deliver only the color stream; depth packets "lost".
		if _, err := r.PushColor(enc.Color); err != nil {
			t.Fatal(err)
		}
		depths = append(depths, enc)
	}
	// The oldest unpaired color frames must have been garbage-collected:
	// delivering their depth now (a key frame, so it decodes) should NOT
	// produce a pair.
	pf, err := r.PushDepth(depths[0].Depth)
	if err != nil {
		t.Fatal(err)
	}
	if pf != nil {
		t.Error("stale frame 0 still paired after 95 frames")
	}
	// A delta frame against a stale reference is refused outright rather
	// than decoded into silent drift (reference-generation check, §A.1).
	if _, err := r.PushDepth(depths[94].Depth); !errors.Is(err, vcodec.ErrStaleReference) {
		t.Errorf("stale delta frame: got %v, want ErrStaleReference", err)
	}
	// A recent key frame restarts the prediction chain and still pairs.
	pf, err = r.PushDepth(depths[90].Depth)
	if err != nil {
		t.Fatal(err)
	}
	if pf == nil {
		t.Error("recent key frame failed to pair")
	}
}

func TestSenderGuardBandConfigurable(t *testing.T) {
	v := testVideo(t, "office1")
	s, err := NewSender(SenderConfig{
		Variant: LiVo, Array: v.Array,
		ViewParams: geom.DefaultViewParams(), GuardBand: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ObservePose(0, viewerPose())
	s.SetHorizon(0)
	wide, err := s.ProcessFrame(v.Frame(0), 40e6)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSender(SenderConfig{
		Variant: LiVo, Array: v.Array,
		ViewParams: geom.DefaultViewParams(), GuardBand: 0.05,
	})
	s2.ObservePose(0, viewerPose())
	s2.SetHorizon(0)
	tight, err := s2.ProcessFrame(v.Frame(0), 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if wide.CullStats.Kept <= tight.CullStats.Kept {
		t.Errorf("wider guard band kept fewer pixels: %d vs %d",
			wide.CullStats.Kept, tight.CullStats.Kept)
	}
}

// TestSenderDeterministicAcrossGOMAXPROCS runs the full sender pipeline at
// different worker counts and requires byte-identical color and depth
// packets: stripe-parallel encoding must not leak scheduling order into the
// bitstream.
func TestSenderDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []*EncodedFrame {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		v := testVideo(t, "office1")
		s, _ := newPair(t, v, LiVo)
		s.ObservePose(0, viewerPose())
		s.ObserveRTT(0.1)
		var out []*EncodedFrame
		for i := 0; i < 4; i++ {
			enc, err := s.ProcessFrame(v.Frame(i), 40e6)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, enc)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if !bytes.Equal(serial[i].Color.Data, parallel[i].Color.Data) {
			t.Errorf("frame %d: color packet differs between GOMAXPROCS 1 and 4", i)
		}
		if !bytes.Equal(serial[i].Depth.Data, parallel[i].Depth.Data) {
			t.Errorf("frame %d: depth packet differs between GOMAXPROCS 1 and 4", i)
		}
	}
}

// TestReconstructSteadyStateAllocs pins the per-frame allocation count of
// the full reconstruction path (extract → unproject → voxelize → cull):
// after warmup every stage runs out of per-receiver arenas. GOMAXPROCS is
// pinned to 1 because ParFor's worker spawns allocate; they are not part
// of the arena story.
func TestReconstructSteadyStateAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	v := testVideo(t, "office1")
	s, _ := newPair(t, v, LiVoNoCull)
	r, err := NewReceiver(ReceiverConfig{Array: v.Array, VoxelSize: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.ProcessFrame(v.Frame(0), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushColor(enc.Color); err != nil {
		t.Fatal(err)
	}
	pf, err := r.PushDepth(enc.Depth)
	if err != nil || pf == nil {
		t.Fatal(err)
	}
	f := geom.NewFrustum(viewerPose(), geom.ViewParams{FovY: math.Pi / 3, Aspect: 1, Near: 0.1, Far: 8})
	for i := 0; i < 3; i++ { // warm the arenas
		if _, err := r.Reconstruct(pf, &f); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Reconstruct(pf, &f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("steady-state Reconstruct allocates %v objects per frame, want <= 4", allocs)
	}
}

// TestDepthRMSENormMismatch checks the probe returns its -1 sentinel on
// mismatched reconstruction geometry instead of panicking.
func TestDepthRMSENormMismatch(t *testing.T) {
	ref := frame.NewDepthImage(8, 8)
	for i := range ref.Pix {
		ref.Pix[i] = 1000
	}
	short := frame.NewDepthImage(8, 4)
	if got := depthRMSENorm(ref, short, 6000); got != -1 {
		t.Errorf("mismatched geometry: got %v, want -1", got)
	}
	same := frame.NewDepthImage(8, 8)
	if got := depthRMSENorm(ref, same, 6000); got < 0 {
		t.Errorf("matched geometry: got %v, want >= 0", got)
	}
}

// TestSenderBlankTileReuse checks fully-culled views tile the sender's
// shared blank pair instead of allocating fresh images per frame, and that
// the blanks stay zero across frames (Compose* copies, never writes).
func TestSenderBlankTileReuse(t *testing.T) {
	v := testVideo(t, "office1")
	s, r := newPair(t, v, LiVoNoCull)
	for fi := 0; fi < 2; fi++ {
		views := append([]frame.RGBDFrame(nil), v.Frame(fi)...)
		views[1] = frame.RGBDFrame{} // a fully-culled view
		enc, err := s.ProcessFrame(views, 40e6)
		if err != nil {
			t.Fatal(err)
		}
		if s.colorViews[1] != s.blankColor || s.depthViews[1] != s.blankDepth {
			t.Fatal("culled view did not reuse the shared blank tile pair")
		}
		for _, p := range s.blankDepth.Pix {
			if p != 0 {
				t.Fatal("blank depth tile was written to")
			}
		}
		if _, err := r.PushColor(enc.Color); err != nil {
			t.Fatal(err)
		}
		if _, err := r.PushDepth(enc.Depth); err != nil {
			t.Fatal(err)
		}
	}
}
