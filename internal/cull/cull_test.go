package cull

import (
	"math"
	"testing"

	"livo/internal/camera"
	"livo/internal/frame"
	"livo/internal/geom"
)

// oneCameraSetup: a single camera at (0,1,-3) looking at the origin area,
// with two objects: one near the center, one far to the side.
func oneCameraSetup() (camera.Array, []frame.RGBDFrame) {
	in := camera.NewIntrinsics(64, 48, math.Pi/2)
	cam := camera.Camera{
		Intrinsics: in,
		Pose:       geom.LookAt(geom.V3(0, 1, -3), geom.V3(0, 1, 0), geom.V3(0, 1, 0)),
		MaxRange:   6,
	}
	arr := camera.Array{Cameras: []camera.Camera{cam}}
	view := frame.NewRGBDFrame(64, 48)
	// Center blob (world ~origin): pixels near image center at 3 m.
	for v := 20; v < 28; v++ {
		for u := 28; u < 36; u++ {
			view.Depth.Set(u, v, 3000)
			view.Color.Set(u, v, 200, 100, 50)
		}
	}
	// Side blob: pixels near left edge at 3 m (world x ~ -2.8).
	for v := 20; v < 28; v++ {
		for u := 1; u < 8; u++ {
			view.Depth.Set(u, v, 3000)
			view.Color.Set(u, v, 10, 200, 10)
		}
	}
	return arr, []frame.RGBDFrame{view}
}

func TestViewsCullsOutsidePixels(t *testing.T) {
	arr, views := oneCameraSetup()
	// Narrow viewer frustum from behind the camera, looking at the center:
	// the center blob is inside, the side blob outside.
	viewer := geom.LookAt(geom.V3(0, 1, -4), geom.V3(0, 1, 0), geom.V3(0, 1, 0))
	f := geom.NewFrustum(viewer, geom.ViewParams{FovY: math.Pi / 8, Aspect: 1, Near: 0.1, Far: 10})
	culled, st, err := Views(arr, views, f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2*8*8-8 { // 64 + 56 pixels stamped
		t.Logf("total = %d", st.Total)
	}
	// Center blob survives.
	if culled[0].Depth.At(32, 24) == 0 {
		t.Error("center pixel was culled")
	}
	// Side blob culled, including color.
	if culled[0].Depth.At(3, 24) != 0 {
		t.Error("side pixel survived")
	}
	if r, g, b := culled[0].Color.At(3, 24); r != 0 || g != 0 || b != 0 {
		t.Error("culled pixel color not zeroed")
	}
	if st.Kept == 0 || st.Kept >= st.Total {
		t.Errorf("stats kept=%d total=%d", st.Kept, st.Total)
	}
	// Originals untouched.
	if views[0].Depth.At(3, 24) == 0 {
		t.Error("culling mutated the input")
	}
}

func TestViewsFullFrustumKeepsEverything(t *testing.T) {
	arr, views := oneCameraSetup()
	viewer := geom.LookAt(geom.V3(0, 1, -5), geom.V3(0, 1, 0), geom.V3(0, 1, 0))
	f := geom.NewFrustum(viewer, geom.ViewParams{FovY: math.Pi * 0.7, Aspect: 2, Near: 0.01, Far: 50})
	_, st, err := Views(arr, views, f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != st.Total {
		t.Errorf("wide frustum culled %d of %d pixels", st.Total-st.Kept, st.Total)
	}
	if st.KeptFraction() != 1 {
		t.Errorf("kept fraction = %v", st.KeptFraction())
	}
}

func TestViewsErrors(t *testing.T) {
	arr, views := oneCameraSetup()
	f := geom.NewFrustum(geom.PoseIdentity, geom.DefaultViewParams())
	if _, _, err := Views(arr, nil, f); err == nil {
		t.Error("wrong view count accepted")
	}
	bad := []frame.RGBDFrame{frame.NewRGBDFrame(8, 8)}
	if _, _, err := Views(arr, bad, f); err == nil {
		t.Error("mismatched view size accepted")
	}
	// Nil views skipped.
	if _, st, err := Views(arr, []frame.RGBDFrame{{}}, f); err != nil || st.Total != 0 {
		t.Errorf("nil view not skipped: %v %+v", err, st)
	}
	_ = views
}

func TestCullEquivalentToPointCloudCulling(t *testing.T) {
	// LiVo's pixel-space culling must agree with culling the reconstructed
	// point cloud (the claim of §3.4: same result, no reconstruction).
	arr, views := oneCameraSetup()
	viewer := geom.LookAt(geom.V3(1, 1.5, -4), geom.V3(0, 1, 0), geom.V3(0, 1, 0))
	f := geom.NewFrustum(viewer, geom.ViewParams{FovY: math.Pi / 6, Aspect: 1.3, Near: 0.2, Far: 9})

	culled, _, err := Views(arr, views, f)
	if err != nil {
		t.Fatal(err)
	}
	cam := arr.Cameras[0]
	for v := 0; v < 48; v++ {
		for u := 0; u < 64; u++ {
			mm := views[0].Depth.At(u, v)
			if mm == 0 {
				continue
			}
			world := cam.UnprojectToWorld(u, v, mm)
			wantKept := f.Contains(world)
			gotKept := culled[0].Depth.At(u, v) != 0
			if wantKept != gotKept {
				t.Fatalf("pixel (%d,%d): world-space says kept=%v, pixel-space %v", u, v, wantKept, gotKept)
			}
		}
	}
}

func TestFrustumPredictorHorizon(t *testing.T) {
	fp := NewFrustumPredictor(geom.DefaultViewParams())
	if fp.Horizon() != 0 {
		t.Errorf("initial horizon = %v", fp.Horizon())
	}
	fp.ObserveRTT(0.2)
	if math.Abs(fp.Horizon()-0.1) > 1e-9 {
		t.Errorf("horizon after first RTT = %v, want 0.1", fp.Horizon())
	}
	// Smoothing: a spike moves the estimate only partially.
	fp.ObserveRTT(1.0)
	h := fp.Horizon()
	if h <= 0.1 || h >= 0.5 {
		t.Errorf("smoothed horizon = %v", h)
	}
	fp.ObserveRTT(-1) // ignored
	if fp.Horizon() != h {
		t.Error("negative RTT not ignored")
	}
	fp.SetHorizon(0.3)
	if fp.Horizon() != 0.3 {
		t.Error("SetHorizon ignored")
	}
	fp.SetHorizon(-1)
	if fp.Horizon() != h {
		t.Error("horizon override not cleared")
	}
}

func TestFrustumPredictorTracksMotion(t *testing.T) {
	fp := NewFrustumPredictor(geom.DefaultViewParams())
	fp.ObserveRTT(0.2) // 100 ms horizon
	// Viewer translating at constant velocity.
	vel := geom.V3(0.8, 0, 0)
	for i := 0; i <= 60; i++ {
		tm := float64(i) / 30
		fp.ObservePose(tm, geom.Pose{Position: vel.Scale(tm), Rotation: geom.QuatIdentity})
	}
	pred := fp.PredictPose()
	want := vel.Scale(2.0 + 0.1)
	if pred.Position.Dist(want) > 0.05 {
		t.Errorf("predicted %v, want ~%v", pred.Position, want)
	}
	// The predicted frustum with guard band contains what the actual
	// near-future frustum contains (probe a few points).
	actual := geom.NewFrustum(geom.Pose{Position: want, Rotation: geom.QuatIdentity}, geom.DefaultViewParams())
	predicted := fp.PredictFrustum()
	probes := []geom.Vec3{
		want.Add(geom.V3(0, 0, 2)),
		want.Add(geom.V3(0.5, 0.2, 3)),
		want.Add(geom.V3(-1, -0.3, 4)),
	}
	for _, p := range probes {
		if actual.Contains(p) && !predicted.Contains(p) {
			t.Errorf("guard-banded prediction missed %v", p)
		}
	}
}

func TestMeasureAccuracyPerfectPrediction(t *testing.T) {
	arr, views := oneCameraSetup()
	viewer := geom.LookAt(geom.V3(0, 1, -4), geom.V3(0, 1, 0), geom.V3(0, 1, 0))
	f := geom.NewFrustum(viewer, geom.ViewParams{FovY: math.Pi / 4, Aspect: 1, Near: 0.1, Far: 10})
	acc, err := MeasureAccuracy(arr, views, f, f)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Recall != 1 {
		t.Errorf("perfect prediction recall = %v", acc.Recall)
	}
}

func TestMeasureAccuracyGuardBandTradeoff(t *testing.T) {
	// Fig 15's tradeoff: larger guard bands raise recall and raise the
	// fraction of points sent.
	arr, views := oneCameraSetup()
	actualPose := geom.LookAt(geom.V3(0.3, 1.1, -4), geom.V3(0, 1, 0), geom.V3(0, 1, 0))
	predictedPose := geom.LookAt(geom.V3(0, 1, -4), geom.V3(0.2, 1, 0), geom.V3(0, 1, 0))
	vp := geom.ViewParams{FovY: math.Pi / 7, Aspect: 1, Near: 0.1, Far: 10}
	actual := geom.NewFrustum(actualPose, vp)
	base := geom.NewFrustum(predictedPose, vp)

	var prevRecall, prevSent float64 = -1, -1
	for _, guard := range []float64{0, 0.1, 0.3, 0.5} {
		acc, err := MeasureAccuracy(arr, views, base.Expand(guard), actual)
		if err != nil {
			t.Fatal(err)
		}
		if acc.Recall < prevRecall-1e-9 {
			t.Errorf("guard %v lowered recall: %v < %v", guard, acc.Recall, prevRecall)
		}
		if acc.SentFraction < prevSent-1e-9 {
			t.Errorf("guard %v lowered sent fraction: %v < %v", guard, acc.SentFraction, prevSent)
		}
		prevRecall, prevSent = acc.Recall, acc.SentFraction
	}
	if prevRecall < 0.99 {
		t.Errorf("recall at 50 cm guard = %v, want ~1", prevRecall)
	}
}

func TestMeasureAccuracyErrors(t *testing.T) {
	arr, _ := oneCameraSetup()
	f := geom.NewFrustum(geom.PoseIdentity, geom.DefaultViewParams())
	if _, err := MeasureAccuracy(arr, nil, f, f); err == nil {
		t.Error("wrong view count accepted")
	}
}
