// Package cull implements LiVo's view prediction and culling (§3.4): the
// sender predicts the receiver's frustum at arrival time (Kalman filter on
// pose + smoothed one-way delay estimate + guard band) and removes RGB-D
// pixels outside it without ever reconstructing the point cloud — the
// frustum is transformed into each camera's local coordinate frame and each
// pixel's local-space point is tested against the six planes.
package cull

import (
	"fmt"
	"sync"

	"livo/internal/camera"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/predict"
)

// Stats summarizes one culling pass.
type Stats struct {
	Total int // valid pixels before culling
	Kept  int // valid pixels after culling
}

// KeptFraction returns Kept/Total (1 when there was nothing to cull).
func (s Stats) KeptFraction() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Kept) / float64(s.Total)
}

// Views culls the per-camera RGB-D views against the frustum, returning new
// frames with out-of-frustum pixels zeroed in both depth and color. The
// input frames are not modified.
func Views(arr camera.Array, views []frame.RGBDFrame, f geom.Frustum) ([]frame.RGBDFrame, Stats, error) {
	if len(views) != arr.N() {
		return nil, Stats{}, fmt.Errorf("cull: %d views for %d cameras", len(views), arr.N())
	}
	out := make([]frame.RGBDFrame, len(views))
	var st Stats
	for ci, view := range views {
		if view.Depth == nil {
			continue
		}
		if err := view.Validate(); err != nil {
			return nil, Stats{}, fmt.Errorf("cull: camera %d: %w", ci, err)
		}
		cam := arr.Cameras[ci]
		in := cam.Intrinsics
		if view.Depth.W != in.W || view.Depth.H != in.H {
			return nil, Stats{}, fmt.Errorf("cull: camera %d view %dx%d vs intrinsics %dx%d",
				ci, view.Depth.W, view.Depth.H, in.W, in.H)
		}
		// Transform the frustum once into this camera's local frame; then
		// every pixel test is six dot products on the local point (§3.4).
		local := f.Transform(cam.WorldToLocal())
		culled := view.Clone()
		for v := 0; v < in.H; v++ {
			for u := 0; u < in.W; u++ {
				mm := view.Depth.At(u, v)
				if mm == 0 {
					continue
				}
				st.Total++
				p := in.Unproject(u, v, float64(mm)/1000)
				if local.Contains(p) {
					st.Kept++
					continue
				}
				culled.Depth.Set(u, v, 0)
				culled.Color.Set(u, v, 0, 0, 0)
			}
		}
		out[ci] = culled
	}
	return out, st, nil
}

// FrustumPredictor combines the Kalman pose predictor with a smoothed
// one-way delay estimate and the guard band, producing the expanded frustum
// the sender culls against.
type FrustumPredictor struct {
	// mu serializes the Kalman/RTT state: pose and RTT feedback arrive on
	// the session's feedback goroutine while the frame loop predicts.
	mu     sync.Mutex
	kalman *predict.Kalman
	vp     geom.ViewParams
	// Guard is the guard band ε in meters (default 0.20 — the sweet spot
	// of Fig 15). Set it before concurrent use begins.
	Guard float64
	// srtt is the smoothed application-level RTT (seconds).
	srtt    float64
	hasRTT  bool
	horizon float64 // explicit horizon override; <0 means use srtt/2
}

// NewFrustumPredictor builds a predictor for a receiver with the given view
// parameters.
func NewFrustumPredictor(vp geom.ViewParams) *FrustumPredictor {
	return &FrustumPredictor{
		kalman:  predict.NewKalman(),
		vp:      vp,
		Guard:   0.20,
		horizon: -1,
	}
}

// ObservePose feeds a receiver pose report (timestamped with the receiver's
// capture time, seconds).
func (fp *FrustumPredictor) ObservePose(t float64, pose geom.Pose) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.kalman.Observe(t, pose)
}

// ObserveRTT feeds an application-level RTT measurement (seconds); LiVo
// halves a smoothed RTT to estimate the one-way delay Δt (§3.4).
func (fp *FrustumPredictor) ObserveRTT(rtt float64) {
	if rtt < 0 {
		return
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if !fp.hasRTT {
		fp.srtt = rtt
		fp.hasRTT = true
		return
	}
	fp.srtt = 0.875*fp.srtt + 0.125*rtt // TCP-style smoothing
}

// SetHorizon overrides the prediction horizon (seconds). A negative value
// restores the default srtt/2 behaviour. Used by the Fig 15 sweep, which
// varies the prediction window directly.
func (fp *FrustumPredictor) SetHorizon(h float64) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.horizon = h
}

// Horizon returns the active prediction horizon in seconds.
func (fp *FrustumPredictor) Horizon() float64 {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.horizonLocked()
}

func (fp *FrustumPredictor) horizonLocked() float64 {
	if fp.horizon >= 0 {
		return fp.horizon
	}
	return fp.srtt / 2
}

// PredictPose returns the predicted receiver pose at now + horizon.
func (fp *FrustumPredictor) PredictPose() geom.Pose {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.kalman.Predict(fp.horizonLocked())
}

// PredictFrustum returns the guard-band-expanded predicted frustum the
// sender culls against.
func (fp *FrustumPredictor) PredictFrustum() geom.Frustum {
	return geom.NewFrustum(fp.PredictPose(), fp.vp).Expand(fp.Guard)
}

// Accuracy measures culling quality for the Fig 15 sweep: of the valid
// pixels inside the receiver's *actual* frustum, what fraction survived
// culling with the predicted frustum (recall — missing pixels are holes the
// viewer sees), plus the fraction of all pixels transmitted (data volume).
type Accuracy struct {
	Recall       float64 // kept ∩ actual / actual
	SentFraction float64 // kept / total (bandwidth cost of the guard band)
}

// MeasureAccuracy evaluates a predicted frustum against the actual one on a
// set of views.
func MeasureAccuracy(arr camera.Array, views []frame.RGBDFrame, predicted, actual geom.Frustum) (Accuracy, error) {
	if len(views) != arr.N() {
		return Accuracy{}, fmt.Errorf("cull: %d views for %d cameras", len(views), arr.N())
	}
	var inActual, inBoth, kept, total int
	for ci, view := range views {
		if view.Depth == nil {
			continue
		}
		cam := arr.Cameras[ci]
		in := cam.Intrinsics
		predLocal := predicted.Transform(cam.WorldToLocal())
		actLocal := actual.Transform(cam.WorldToLocal())
		for v := 0; v < in.H; v++ {
			for u := 0; u < in.W; u++ {
				mm := view.Depth.At(u, v)
				if mm == 0 {
					continue
				}
				total++
				p := in.Unproject(u, v, float64(mm)/1000)
				inPred := predLocal.Contains(p)
				inAct := actLocal.Contains(p)
				if inPred {
					kept++
				}
				if inAct {
					inActual++
					if inPred {
						inBoth++
					}
				}
			}
		}
	}
	acc := Accuracy{Recall: 1, SentFraction: 1}
	if inActual > 0 {
		acc.Recall = float64(inBoth) / float64(inActual)
	}
	if total > 0 {
		acc.SentFraction = float64(kept) / float64(total)
	}
	return acc, nil
}
