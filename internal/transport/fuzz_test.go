package transport

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens packet parsing: arbitrary bytes must produce either
// an error or a packet that survives a marshal round trip — never a panic.
func FuzzUnmarshal(f *testing.F) {
	pkt := Packet{
		Stream: StreamColor, FrameSeq: 7, FragIndex: 1, FragCount: 3,
		Key: true, SendTimeUs: 123456, Payload: []byte("payload bytes"),
	}
	full := pkt.Marshal()
	f.Add(full)
	f.Add(full[:headerSize])
	f.Add(full[:headerSize-1])
	f.Add([]byte{})
	parity := BuildParity(Packetize(StreamDepth, 9, false, 1, bytes.Repeat([]byte{0x5A}, 3*MTU)))
	f.Add(parity[0].Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		rt, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("accepted packet failed round trip: %v", err)
		}
		if rt.Stream != p.Stream || rt.FrameSeq != p.FrameSeq ||
			rt.FragIndex != p.FragIndex || rt.FragCount != p.FragCount ||
			rt.Key != p.Key || rt.Parity != p.Parity ||
			rt.SendTimeUs != p.SendTimeUs || !bytes.Equal(rt.Payload, p.Payload) {
			t.Fatalf("round trip changed packet: %+v vs %+v", p, rt)
		}
	})
}

// FuzzRecoverWithParity feeds arbitrary parity payloads to FEC recovery
// against a fixed group with one missing fragment.
func FuzzRecoverWithParity(f *testing.F) {
	media := Packetize(StreamColor, 1, false, 0, bytes.Repeat([]byte{0xAB, 0x17}, 2*MTU))
	parity := BuildParity(media)
	f.Add(parity[0].Payload)
	f.Add(parity[0].Payload[:2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, pp []byte) {
		got := map[uint16][]byte{
			0: media[0].Payload,
			2: media[2].Payload,
		}
		idx, payload, err := RecoverWithParity(got, pp, 0)
		if err != nil {
			return
		}
		if idx != 1 {
			t.Fatalf("recovered wrong fragment %d", idx)
		}
		if len(payload) > len(pp) {
			t.Fatalf("recovered %d bytes from %d-byte parity", len(payload), len(pp))
		}
	})
}
