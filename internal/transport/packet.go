// Package transport is the real-time media transport LiVo rides on — the
// WebRTC analogue (§3.1, §3.3, §A.1): RTP-style packetization of encoded
// frames, a Google-congestion-control-style bandwidth estimator [24]
// (delay-gradient trendline + over-use detector + AIMD), a jitter buffer
// (100 ms, §4.4), and NACK-based recovery with PLI (key-frame requests).
// It works both over the emulated link (replay experiments) and real UDP
// sockets (live pipeline).
package transport

import (
	"encoding/binary"
	"fmt"
)

// MTU is the maximum payload bytes per packet (conservative Ethernet MTU
// minus IP/UDP headers).
const MTU = 1200

// Stream identifiers for LiVo's two video streams.
const (
	StreamColor uint8 = 1
	StreamDepth uint8 = 2
)

// Wire flag bits of the packet flags byte (offset 9 of Marshal's output,
// offset 10 of a MediaMagic-prefixed relay datagram).
const (
	FlagKey    = 0x1 // key-frame fragment
	FlagParity = 0x2 // FEC parity packet (fec.go)
	// FlagRungShift/FlagRungMask carve bits 2–3 out of the flags byte for
	// the quality-ladder rung id (0–3). Pre-ladder senders leave the bits
	// zero, so legacy streams parse as rung 0 — the full-quality rung.
	FlagRungShift      = 2
	FlagRungMask  byte = 0x3 << FlagRungShift
)

// MaxRungs is the number of rung ids the wire format can carry.
const MaxRungs = 4

// Packet is one transport packet: a fragment of an encoded video frame, or
// a parity packet protecting a group of fragments (fec.go).
type Packet struct {
	Stream     uint8
	FrameSeq   uint32
	FragIndex  uint16
	FragCount  uint16
	Key        bool
	Parity     bool
	Rung       uint8  // quality-ladder rung id (0 = full quality)
	SendTimeUs uint64 // sender timestamp, microseconds
	Payload    []byte
}

const headerSize = 1 + 4 + 2 + 2 + 1 + 8 + 2 // ... + payload length

// Marshal serializes the packet.
func (p *Packet) Marshal() []byte {
	out := make([]byte, headerSize+len(p.Payload))
	out[0] = p.Stream
	binary.BigEndian.PutUint32(out[1:], p.FrameSeq)
	binary.BigEndian.PutUint16(out[5:], p.FragIndex)
	binary.BigEndian.PutUint16(out[7:], p.FragCount)
	if p.Key {
		out[9] |= 1
	}
	if p.Parity {
		out[9] |= parityFlag
	}
	out[9] |= (p.Rung << FlagRungShift) & FlagRungMask
	binary.BigEndian.PutUint64(out[10:], p.SendTimeUs)
	binary.BigEndian.PutUint16(out[18:], uint16(len(p.Payload)))
	copy(out[headerSize:], p.Payload)
	return out
}

// Unmarshal parses a packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < headerSize {
		return Packet{}, fmt.Errorf("transport: packet too short (%d)", len(b))
	}
	p := Packet{
		Stream:     b[0],
		FrameSeq:   binary.BigEndian.Uint32(b[1:]),
		FragIndex:  binary.BigEndian.Uint16(b[5:]),
		FragCount:  binary.BigEndian.Uint16(b[7:]),
		Key:        b[9]&1 != 0,
		Parity:     b[9]&parityFlag != 0,
		Rung:       (b[9] & FlagRungMask) >> FlagRungShift,
		SendTimeUs: binary.BigEndian.Uint64(b[10:]),
	}
	n := int(binary.BigEndian.Uint16(b[18:]))
	if len(b) < headerSize+n {
		return Packet{}, fmt.Errorf("transport: payload truncated (%d < %d)", len(b)-headerSize, n)
	}
	p.Payload = append([]byte(nil), b[headerSize:headerSize+n]...)
	if p.FragCount == 0 || p.FragIndex >= p.FragCount {
		return Packet{}, fmt.Errorf("transport: bad fragment %d/%d", p.FragIndex, p.FragCount)
	}
	return p, nil
}

// FirstFragment reports whether a MediaMagic-prefixed wire datagram
// carries fragment 0 of a media frame (parity excluded) and, if so,
// returns the frame's stream and sequence without unmarshalling. Trace
// stamp sites on the relay and receiver hot paths use it to stamp each
// frame exactly once per hop straight off the raw bytes.
func FirstFragment(wire []byte) (stream uint8, frameSeq uint32, ok bool) {
	if len(wire) < 11 || wire[0] != MediaMagic ||
		wire[6] != 0 || wire[7] != 0 || // FragIndex (offsets 6–7 past the magic)
		wire[10]&FlagParity != 0 {
		return 0, 0, false
	}
	return wire[1], binary.BigEndian.Uint32(wire[2:]), true
}

// WireRung extracts the quality-ladder rung id from a MediaMagic-prefixed
// wire datagram without unmarshalling — the relay's per-packet rung filter
// reads it straight off the raw bytes. Non-media or short datagrams report
// rung 0 (the full-quality rung every legacy stream occupies).
func WireRung(wire []byte) uint8 {
	if len(wire) < 11 || wire[0] != MediaMagic {
		return 0
	}
	return (wire[10] & FlagRungMask) >> FlagRungShift
}

// Packetize splits one encoded frame into MTU-sized packets on rung 0.
func Packetize(stream uint8, frameSeq uint32, key bool, sendTimeUs uint64, data []byte) []Packet {
	return PacketizeRung(stream, frameSeq, key, 0, sendTimeUs, data)
}

// PacketizeRung splits one encoded frame into MTU-sized packets stamped
// with a quality-ladder rung id (0–3).
func PacketizeRung(stream uint8, frameSeq uint32, key bool, rung uint8, sendTimeUs uint64, data []byte) []Packet {
	if len(data) == 0 {
		return nil
	}
	count := (len(data) + MTU - 1) / MTU
	pkts := make([]Packet, 0, count)
	for i := 0; i < count; i++ {
		lo := i * MTU
		hi := lo + MTU
		if hi > len(data) {
			hi = len(data)
		}
		pkts = append(pkts, Packet{
			Stream:     stream,
			FrameSeq:   frameSeq,
			FragIndex:  uint16(i),
			FragCount:  uint16(count),
			Key:        key,
			Rung:       rung,
			SendTimeUs: sendTimeUs,
			Payload:    data[lo:hi],
		})
	}
	return pkts
}
