package transport

import (
	"bytes"
	"math/rand"
	"testing"
)

func mkFrame(t *testing.T, rng *rand.Rand, size int) ([]byte, []Packet) {
	t.Helper()
	data := make([]byte, size)
	rng.Read(data)
	return data, Packetize(StreamColor, 9, false, 0, data)
}

func TestBuildParityShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, pkts := mkFrame(t, rng, 10*MTU) // 10 fragments -> 2 groups (8 + 2)
	parity := BuildParity(pkts)
	if len(parity) != 2 {
		t.Fatalf("got %d parity packets, want 2", len(parity))
	}
	if !parity[0].Parity || parity[0].FragIndex != 0 || parity[1].FragIndex != 8 {
		t.Fatalf("parity headers wrong: %+v %+v", parity[0], parity[1])
	}
	// Single-fragment frames get no parity (NACK suffices).
	_, one := mkFrame(t, rng, 100)
	if len(BuildParity(one)) != 0 {
		t.Error("parity over one fragment")
	}
}

func TestParityPacketWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, pkts := mkFrame(t, rng, 4*MTU)
	parity := BuildParity(pkts)[0]
	got, err := Unmarshal(parity.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Parity || !bytes.Equal(got.Payload, parity.Payload) {
		t.Fatal("parity flag or payload lost on the wire")
	}
}

func TestRecoverEachPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, pkts := mkFrame(t, rng, 5*MTU+123) // 6 fragments, varied last length
	parity := BuildParity(pkts)
	if len(parity) != 1 {
		t.Fatalf("parity count = %d", len(parity))
	}
	for lost := 0; lost < len(pkts); lost++ {
		got := map[uint16][]byte{}
		for i, p := range pkts {
			if i != lost {
				got[p.FragIndex] = p.Payload
			}
		}
		idx, payload, err := RecoverWithParity(got, parity[0].Payload, 0)
		if err != nil {
			t.Fatalf("lost %d: %v", lost, err)
		}
		if int(idx) != lost {
			t.Fatalf("recovered index %d, want %d", idx, lost)
		}
		if !bytes.Equal(payload, pkts[lost].Payload) {
			t.Fatalf("lost %d: recovered payload differs", lost)
		}
	}
	_ = data
}

func TestRecoverErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, pkts := mkFrame(t, rng, 4*MTU)
	parity := BuildParity(pkts)[0]
	full := map[uint16][]byte{}
	for _, p := range pkts {
		full[p.FragIndex] = p.Payload
	}
	if _, _, err := RecoverWithParity(full, parity.Payload, 0); err == nil {
		t.Error("recovery with nothing missing succeeded")
	}
	two := map[uint16][]byte{}
	for i, p := range pkts {
		if i >= 2 {
			two[p.FragIndex] = p.Payload
		}
	}
	if _, _, err := RecoverWithParity(two, parity.Payload, 0); err == nil {
		t.Error("recovery with two missing succeeded")
	}
	if _, _, err := RecoverWithParity(full, nil, 0); err == nil {
		t.Error("empty parity accepted")
	}
	if _, _, err := RecoverWithParity(full, []byte{8, 1}, 0); err == nil {
		t.Error("truncated parity accepted")
	}
}

func TestJitterBufferFECRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, pkts := mkFrame(t, rng, 6*MTU)
	parity := BuildParity(pkts)
	jb := NewJitterBuffer()
	// Deliver all but fragment 3, plus the parity packet.
	for i, p := range pkts {
		if i == 3 {
			continue
		}
		jb.Push(p, 1.0)
	}
	for _, p := range parity {
		jb.Push(p, 1.0)
	}
	out := jb.Pop(1.2)
	if len(out) != 1 {
		t.Fatalf("frame not delivered after FEC: %d", len(out))
	}
	if !bytes.Equal(out[0].Data, data) {
		t.Fatal("FEC-recovered frame corrupted")
	}
	if jb.FECRecovered() != 1 {
		t.Errorf("FECRecovered = %d", jb.FECRecovered())
	}
	// No NACK should be pending: the loss was repaired locally.
	if n := jb.Nacks(1.5); len(n) != 0 {
		t.Errorf("NACKs after FEC recovery: %+v", n)
	}
}

func TestJitterBufferFECTwoLossesFallsBackToNACK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	_, pkts := mkFrame(t, rng, 6*MTU)
	parity := BuildParity(pkts)
	jb := NewJitterBuffer()
	for i, p := range pkts {
		if i == 2 || i == 4 {
			continue
		}
		jb.Push(p, 1.0)
	}
	for _, p := range parity {
		jb.Push(p, 1.0)
	}
	if out := jb.Pop(1.2); len(out) != 0 {
		t.Fatal("frame delivered despite two losses")
	}
	nacks := jb.Nacks(1.1)
	if len(nacks) != 2 {
		t.Fatalf("NACKs = %+v", nacks)
	}
	// Retransmission of one loss lets FEC repair the other.
	jb.Push(pkts[2], 1.15)
	if out := jb.Pop(1.3); len(out) != 1 {
		t.Fatal("frame not delivered after NACK+FEC")
	}
}
