package transport

import "math"

// GCC is a Google-congestion-control-style send-rate estimator [24]. The
// receiver feeds it per-packet (send time, arrival time, size) samples; it
// maintains a one-way-delay trendline whose slope drives an over-use
// detector, and an AIMD-ish rate controller:
//
//	over-use  (queues building)  → multiplicative decrease toward the
//	                               measured receive rate
//	under-use (queues draining)  → hold
//	normal                       → ~8%/s multiplicative increase
//
// A separate loss-based controller caps the rate under heavy loss. The
// sender reads Rate() and hands it to the rate-adaptive encoders (§3.3).
type GCC struct {
	rate    float64 // current estimate, bits/s
	minRate float64
	maxRate float64

	// Trendline over the last windowLen (arrival, owd) samples.
	samples   []delaySample
	baseOWD   float64
	hasBase   bool
	overCount int

	// Receive-rate measurement window.
	rxWindow []rxSample

	lastUpdate  float64
	lastBackoff float64
	state       int // 0 normal, 1 overuse, -1 underuse
}

type delaySample struct{ t, owd float64 }
type rxSample struct {
	t     float64
	bytes int
}

const (
	gccWindow      = 20    // delay samples in the trendline
	gccGamma       = 0.002 // slope threshold (s of queueing per s)
	gccOveruseHits = 3     // consecutive detections before reacting
	rxWindowSec    = 0.5
)

// NewGCC creates an estimator with the given initial/min/max rates (bits/s).
func NewGCC(initial, min, max float64) *GCC {
	return &GCC{rate: initial, minRate: min, maxRate: max}
}

// Rate returns the current estimate in bits per second.
func (g *GCC) Rate() float64 { return g.rate }

// OnArrival records one packet observation (times in seconds).
func (g *GCC) OnArrival(sendT, arrivalT float64, bytes int) {
	owd := arrivalT - sendT
	if !g.hasBase || owd < g.baseOWD {
		g.baseOWD = owd
		g.hasBase = true
	}
	rel := owd - g.baseOWD
	g.samples = append(g.samples, delaySample{t: arrivalT, owd: rel})
	if len(g.samples) > gccWindow {
		g.samples = g.samples[len(g.samples)-gccWindow:]
	}
	g.rxWindow = append(g.rxWindow, rxSample{t: arrivalT, bytes: bytes})
	for len(g.rxWindow) > 0 && g.rxWindow[0].t < arrivalT-rxWindowSec {
		g.rxWindow = g.rxWindow[1:]
	}
	g.update(arrivalT)
}

// receiveRate returns the measured incoming rate in bits/s.
func (g *GCC) receiveRate(now float64) float64 {
	var total int
	oldest := now
	for _, s := range g.rxWindow {
		total += s.bytes
		if s.t < oldest {
			oldest = s.t
		}
	}
	span := now - oldest
	if span < 0.05 {
		span = 0.05
	}
	return float64(total) * 8 / span
}

// trendSlope fits a least-squares line to the delay samples and returns
// its slope (seconds of extra delay per second).
func (g *GCC) trendSlope() float64 {
	n := len(g.samples)
	if n < 5 {
		return 0
	}
	var st, so, stt, sto float64
	t0 := g.samples[0].t
	for _, s := range g.samples {
		t := s.t - t0
		st += t
		so += s.owd
		stt += t * t
		sto += t * s.owd
	}
	fn := float64(n)
	denom := fn*stt - st*st
	if denom <= 1e-12 {
		return 0
	}
	return (fn*sto - st*so) / denom
}

func (g *GCC) update(now float64) {
	slope := g.trendSlope()
	switch {
	case slope > gccGamma:
		g.overCount++
		// Back off at most twice per second: an application-limited sender
		// (a culled stream below the estimate) must not spiral down from
		// trendline noise compounding 0.85x cuts.
		if g.overCount >= gccOveruseHits && now-g.lastBackoff > 0.5 {
			// Over-use: drop to 85% of what actually arrives.
			target := 0.85 * g.receiveRate(now)
			if target < g.rate {
				g.rate = math.Max(g.minRate, target)
			}
			g.state = 1
			g.overCount = 0
			g.lastUpdate = now
			g.lastBackoff = now
			// Reset the trendline so we re-measure after backing off.
			g.samples = g.samples[:0]
		}
	case slope < -gccGamma:
		g.state = -1 // under-use: hold while queues drain
		g.overCount = 0
	default:
		g.overCount = 0
		// Normal: multiplicative increase, 8% per ~250 ms response
		// interval (GCC applies eta per update interval, not per second).
		if g.state != -1 {
			dt := now - g.lastUpdate
			if dt > 0 && dt < 10 {
				g.rate = math.Min(g.maxRate, g.rate*math.Pow(1.08, dt/0.25))
			}
		}
		g.state = 0
		g.lastUpdate = now
	}
}

// OnLossReport applies receiver loss feedback (fraction 0..1), mirroring
// GCC's loss-based controller.
func (g *GCC) OnLossReport(loss float64) {
	switch {
	case loss > 0.10:
		g.rate = math.Max(g.minRate, g.rate*(1-0.5*loss))
	case loss < 0.02:
		g.rate = math.Min(g.maxRate, g.rate*1.05)
	}
}
