package transport

// PLITracker is the receiver half of the Picture Loss Indication state
// machine (§A.1). When a stream becomes undecodable — a skipped frame broke
// the prediction chain, or a packet was corrupted in flight — the receiver
// requests a key frame from the sender. The tracker turns that condition
// into a bounded PLI schedule: one indication immediately, then periodic
// re-sends while the recovery IDR has not arrived (the PLI or the IDR can
// themselves be lost), and silence once it has. Without the in-flight state
// a burst of undecodable frames would emit a PLI per frame — a PLI storm —
// and every storming PLI would force another IDR at the sender, wasting the
// bandwidth the recovery needs.
type PLITracker struct {
	// ResendInterval is how long to await the recovery key frame before
	// re-emitting a PLI, in seconds (default 0.25 ≈ a couple of RTTs).
	ResendInterval float64

	awaiting bool
	lastSent float64
	sent     int
}

// NewPLITracker returns a tracker with the default resend interval.
func NewPLITracker() *PLITracker {
	return &PLITracker{ResendInterval: 0.25}
}

// Request records that the stream is undecodable at time now (seconds) and
// reports whether a PLI should be emitted: true for the first request of an
// outage and for each ResendInterval that elapses while recovery is still
// pending, false while a refresh is already in flight.
func (t *PLITracker) Request(now float64) bool {
	if t.awaiting && now-t.lastSent < t.ResendInterval {
		return false
	}
	t.awaiting = true
	t.lastSent = now
	t.sent++
	return true
}

// OnKeyFrame records that a key frame arrived: the refresh completed and
// the next decode failure starts a new PLI cycle.
func (t *PLITracker) OnKeyFrame() { t.awaiting = false }

// Awaiting reports whether a requested refresh is still outstanding.
func (t *PLITracker) Awaiting() bool { return t.awaiting }

// Sent returns how many PLIs the tracker has asked to emit.
func (t *PLITracker) Sent() int { return t.sent }
