package transport

import (
	"encoding/binary"
	"fmt"
)

// Forward error correction: the paper leans on NACK/PLI for loss recovery
// (§A.1) and leaves stronger loss robustness to future work (§5). This
// implements the standard single-parity FEC used by conferencing systems
// (flexfec-style): every group of up to FECGroupSize consecutive fragments
// of a frame is protected by one XOR parity packet, so any single loss per
// group is repaired locally without waiting a NACK round trip.

// FECGroupSize is the number of media fragments protected by one parity
// packet.
const FECGroupSize = 8

// parityFlag marks a parity packet in the packet flags byte.
const parityFlag = FlagParity

// BuildParity returns the parity packets protecting pkts (the fragments of
// ONE frame, in order). Each parity packet's FragIndex is the index of the
// first fragment it covers; its payload encodes the covered payload
// lengths followed by the XOR of the padded payloads.
func BuildParity(pkts []Packet) []Packet {
	var out []Packet
	for start := 0; start < len(pkts); start += FECGroupSize {
		end := start + FECGroupSize
		if end > len(pkts) {
			end = len(pkts)
		}
		group := pkts[start:end]
		if len(group) < 2 {
			continue // parity over one packet is just a copy; NACK handles it
		}
		maxLen := 0
		for _, p := range group {
			if len(p.Payload) > maxLen {
				maxLen = len(p.Payload)
			}
		}
		payload := []byte{byte(len(group))}
		for _, p := range group {
			payload = binary.BigEndian.AppendUint16(payload, uint16(len(p.Payload)))
		}
		xor := make([]byte, maxLen)
		for _, p := range group {
			for i, b := range p.Payload {
				xor[i] ^= b
			}
		}
		payload = append(payload, xor...)
		first := group[0]
		out = append(out, Packet{
			Stream:     first.Stream,
			FrameSeq:   first.FrameSeq,
			FragIndex:  first.FragIndex,
			FragCount:  first.FragCount,
			Key:        first.Key,
			Parity:     true,
			Rung:       first.Rung,
			SendTimeUs: first.SendTimeUs,
			Payload:    payload,
		})
	}
	return out
}

// RecoverWithParity attempts to reconstruct the single missing fragment of
// a parity group. got maps fragment index to payload for the group's
// received fragments; parityPayload is the parity packet's payload;
// firstIdx is the group's first fragment index. It returns the recovered
// fragment's index and payload, or an error when recovery is impossible
// (zero or more than one fragment missing, or malformed parity).
func RecoverWithParity(got map[uint16][]byte, parityPayload []byte, firstIdx uint16) (uint16, []byte, error) {
	if len(parityPayload) < 1 {
		return 0, nil, fmt.Errorf("transport: empty parity payload")
	}
	n := int(parityPayload[0])
	if n < 2 || len(parityPayload) < 1+2*n {
		return 0, nil, fmt.Errorf("transport: malformed parity header")
	}
	lengths := make([]int, n)
	for i := 0; i < n; i++ {
		lengths[i] = int(binary.BigEndian.Uint16(parityPayload[1+2*i:]))
	}
	xor := parityPayload[1+2*n:]

	missing := -1
	for i := 0; i < n; i++ {
		idx := firstIdx + uint16(i)
		if _, ok := got[idx]; !ok {
			if missing >= 0 {
				return 0, nil, fmt.Errorf("transport: %d fragments missing, parity recovers one", 2)
			}
			missing = i
		}
	}
	if missing < 0 {
		return 0, nil, fmt.Errorf("transport: nothing missing")
	}
	rec := make([]byte, len(xor))
	copy(rec, xor)
	for i := 0; i < n; i++ {
		if i == missing {
			continue
		}
		for j, b := range got[firstIdx+uint16(i)] {
			if j < len(rec) {
				rec[j] ^= b
			}
		}
	}
	if lengths[missing] > len(rec) {
		return 0, nil, fmt.Errorf("transport: recovered fragment shorter than recorded length")
	}
	return firstIdx + uint16(missing), rec[:lengths[missing]], nil
}
