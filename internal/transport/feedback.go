package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Reverse-path feedback message types. They live here (rather than only in
// the public package) so the relay core can parse and aggregate feedback —
// dedup PLIs, coalesce NACKs, track the REMB minimum — without importing
// the public API; package livo aliases these values.
const (
	FBPose byte = 1 + iota
	FBREMB
	FBNACK
	FBPLI
	FBPing
	FBPong
)

// MediaMagic is the first byte of every media packet on the wire,
// distinguishing media from feedback sharing one socket. It is disjoint
// from every FB* type above (enforced by a test in package livo).
const MediaMagic byte = 0xD7

// AppendREMB appends an encoded receiver bandwidth estimate (bits per
// second) to dst and returns the extended slice. With a preallocated dst
// the encode is allocation-free — the relay forwards REMB minima on the
// hot reverse path.
func AppendREMB(dst []byte, bps float64) []byte {
	dst = append(dst, FBREMB)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(bps))
}

// UnmarshalREMB parses a REMB message.
func UnmarshalREMB(b []byte) (float64, error) {
	if len(b) < 9 {
		return 0, fmt.Errorf("transport: short REMB")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), nil
}

// MarshalNACK encodes a missing-fragment report.
func MarshalNACK(stream uint8, frameSeq uint32, frag uint16) []byte {
	out := make([]byte, 8)
	out[0] = FBNACK
	out[1] = stream
	binary.BigEndian.PutUint32(out[2:], frameSeq)
	binary.BigEndian.PutUint16(out[6:], frag)
	return out
}

// UnmarshalNACK parses a missing-fragment report.
func UnmarshalNACK(b []byte) (stream uint8, frameSeq uint32, frag uint16, err error) {
	if len(b) < 8 {
		return 0, 0, 0, fmt.Errorf("transport: short NACK")
	}
	return b[1], binary.BigEndian.Uint32(b[2:]), binary.BigEndian.Uint16(b[6:]), nil
}
