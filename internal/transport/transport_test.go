package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"livo/internal/netem"
)

func TestPacketMarshalRoundTrip(t *testing.T) {
	f := func(stream uint8, seq uint32, idx, count uint16, key bool, ts uint64, payload []byte) bool {
		if count == 0 {
			count = 1
		}
		idx %= count
		if len(payload) > MTU {
			payload = payload[:MTU]
		}
		p := Packet{Stream: stream, FrameSeq: seq, FragIndex: idx, FragCount: count,
			Key: key, SendTimeUs: ts, Payload: payload}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return got.Stream == p.Stream && got.FrameSeq == p.FrameSeq &&
			got.FragIndex == p.FragIndex && got.FragCount == p.FragCount &&
			got.Key == p.Key && got.SendTimeUs == p.SendTimeUs &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short packet accepted")
	}
	// Truncated payload.
	p := Packet{Stream: 1, FragCount: 1, Payload: []byte{1, 2, 3}}
	b := p.Marshal()
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	// Bad fragment index.
	bad := Packet{Stream: 1, FragIndex: 5, FragCount: 2, Payload: []byte{1}}
	if _, err := Unmarshal(bad.Marshal()); err == nil {
		t.Error("bad fragment accepted")
	}
}

func TestPacketizeReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 3*MTU+100)
	rng.Read(data)
	pkts := Packetize(StreamDepth, 42, true, 12345, data)
	if len(pkts) != 4 {
		t.Fatalf("got %d packets", len(pkts))
	}
	var got []byte
	for i, p := range pkts {
		if p.FragIndex != uint16(i) || p.FragCount != 4 || p.FrameSeq != 42 || !p.Key {
			t.Fatalf("packet %d header wrong: %+v", i, p)
		}
		got = append(got, p.Payload...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled data differs")
	}
	if Packetize(StreamColor, 1, false, 0, nil) != nil {
		t.Error("empty data should packetize to nil")
	}
}

func TestJitterBufferInOrderDelivery(t *testing.T) {
	jb := NewJitterBuffer()
	data := []byte("hello world, this is a frame")
	for _, p := range Packetize(StreamColor, 0, true, 0, data) {
		jb.Push(p, 1.0)
	}
	// Not ready before the jitter delay.
	if out := jb.Pop(1.05); len(out) != 0 {
		t.Fatal("delivered before jitter delay")
	}
	out := jb.Pop(1.1)
	if len(out) != 1 {
		t.Fatalf("got %d frames", len(out))
	}
	if !bytes.Equal(out[0].Data, data) || out[0].FrameSeq != 0 || !out[0].Key {
		t.Fatal("frame content wrong")
	}
}

func TestJitterBufferReordersFrames(t *testing.T) {
	jb := NewJitterBuffer()
	// Frame 1 arrives before frame 0.
	for _, p := range Packetize(StreamColor, 1, false, 0, []byte("frame1")) {
		jb.Push(p, 1.0)
	}
	for _, p := range Packetize(StreamColor, 0, false, 0, []byte("frame0")) {
		jb.Push(p, 1.02)
	}
	out := jb.Pop(1.5)
	if len(out) != 2 {
		t.Fatalf("got %d frames", len(out))
	}
	if out[0].FrameSeq != 0 || out[1].FrameSeq != 1 {
		t.Fatalf("order: %d, %d", out[0].FrameSeq, out[1].FrameSeq)
	}
}

func TestJitterBufferReordersFragments(t *testing.T) {
	jb := NewJitterBuffer()
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 5*MTU)
	rng.Read(data)
	pkts := Packetize(StreamDepth, 7, false, 0, data)
	for _, i := range rng.Perm(len(pkts)) {
		jb.Push(pkts[i], 2.0)
	}
	out := jb.Pop(3.0)
	if len(out) != 1 || !bytes.Equal(out[0].Data, data) {
		t.Fatal("fragment reordering broke reassembly")
	}
}

func TestJitterBufferSkipsIncomplete(t *testing.T) {
	jb := NewJitterBuffer()
	pkts := Packetize(StreamColor, 0, false, 0, make([]byte, 3*MTU))
	// Lose fragment 1.
	jb.Push(pkts[0], 1.0)
	jb.Push(pkts[2], 1.0)
	// Frame 1 complete behind it.
	for _, p := range Packetize(StreamColor, 1, false, 0, []byte("ok")) {
		jb.Push(p, 1.01)
	}
	// Before the skip deadline, nothing is delivered (head-of-line).
	if out := jb.Pop(1.15); len(out) != 0 {
		t.Fatal("incomplete frame did not block")
	}
	// After the deadline, frame 0 is skipped and frame 1 delivered.
	out := jb.Pop(1.3)
	if len(out) != 1 || out[0].FrameSeq != 1 {
		t.Fatalf("skip failed: %+v", out)
	}
	if jb.Skipped() != 1 {
		t.Errorf("Skipped = %d", jb.Skipped())
	}
	// Late fragment of the skipped frame is ignored.
	jb.Push(pkts[1], 1.4)
	if jb.Pending() != 0 {
		t.Error("late fragment resurrected a skipped frame")
	}
}

func TestJitterBufferDuplicates(t *testing.T) {
	jb := NewJitterBuffer()
	pkts := Packetize(StreamColor, 0, false, 0, []byte("abc"))
	jb.Push(pkts[0], 1.0)
	jb.Push(pkts[0], 1.01) // duplicate
	out := jb.Pop(1.2)
	if len(out) != 1 || !bytes.Equal(out[0].Data, []byte("abc")) {
		t.Fatal("duplicate broke assembly")
	}
}

func TestNacks(t *testing.T) {
	jb := NewJitterBuffer()
	pkts := Packetize(StreamDepth, 3, false, 0, make([]byte, 4*MTU))
	jb.Push(pkts[0], 1.0)
	jb.Push(pkts[3], 1.001)
	// Too early to NACK.
	if n := jb.Nacks(1.005); len(n) != 0 {
		t.Fatalf("premature NACKs: %+v", n)
	}
	n := jb.Nacks(1.05)
	if len(n) != 2 {
		t.Fatalf("got %d NACKs, want 2", len(n))
	}
	if n[0].FragIndex != 1 || n[1].FragIndex != 2 || n[0].FrameSeq != 3 {
		t.Fatalf("NACKs: %+v", n)
	}
	// Each fragment NACK-ed once.
	if n := jb.Nacks(1.1); len(n) != 0 {
		t.Fatalf("repeated NACKs: %+v", n)
	}
	// Retransmission completes the frame.
	jb.Push(pkts[1], 1.12)
	jb.Push(pkts[2], 1.12)
	if out := jb.Pop(1.2); len(out) != 1 {
		t.Fatal("retransmitted frame not delivered")
	}
}

// TestRenacks: a fragment still missing RenackAfter past its NACK (the
// retransmission itself was lost) is requested again; with re-requests
// disabled the old NACK-once behavior holds.
func TestRenacks(t *testing.T) {
	jb := NewJitterBuffer()
	jb.SkipAfter = 10 // keep the frame pending across re-NACK intervals
	pkts := Packetize(StreamColor, 5, false, 0, make([]byte, 3*MTU))
	jb.Push(pkts[0], 1.0)
	jb.Push(pkts[2], 1.001)
	if n := jb.Nacks(1.05); len(n) != 1 || n[0].FragIndex != 1 {
		t.Fatalf("first NACK round: %+v", n)
	}
	// Inside the retry interval: no repeat.
	if n := jb.Nacks(1.05 + jb.RenackAfter - 0.01); len(n) != 0 {
		t.Fatalf("premature re-NACK: %+v", n)
	}
	// Retry interval elapsed, fragment still missing: re-requested.
	n := jb.Nacks(1.05 + jb.RenackAfter)
	if len(n) != 1 || n[0].FragIndex != 1 || n[0].FrameSeq != 5 {
		t.Fatalf("re-NACK round: %+v", n)
	}
	if got := jb.Stats().Nacked; got != 2 {
		t.Fatalf("Nacked = %d, want 2", got)
	}
	// The second retransmission lands; frame delivers.
	jb.Push(pkts[1], 1.5)
	if out := jb.Pop(1.7); len(out) != 1 {
		t.Fatal("frame not delivered after re-NACK recovery")
	}

	// Disabled: each fragment is NACK-ed at most once, ever.
	once := NewJitterBuffer()
	once.RenackAfter = 0
	once.SkipAfter = 10
	pkts = Packetize(StreamColor, 6, false, 0, make([]byte, 3*MTU))
	once.Push(pkts[0], 1.0)
	once.Push(pkts[2], 1.0)
	if n := once.Nacks(1.05); len(n) != 1 {
		t.Fatalf("first NACK round (disabled): %+v", n)
	}
	if n := once.Nacks(5.0); len(n) != 0 {
		t.Fatalf("NACK-once violated: %+v", n)
	}
}

func TestGCCIncreasesWhenUnderused(t *testing.T) {
	g := NewGCC(10e6, 1e6, 500e6)
	// Plenty of capacity: constant one-way delay.
	for i := 0; i < 200; i++ {
		tm := float64(i) * 0.01
		g.OnArrival(tm, tm+0.02, 1200)
	}
	if g.Rate() <= 10e6 {
		t.Errorf("rate did not grow: %v", g.Rate())
	}
}

func TestGCCBacksOffOnQueueGrowth(t *testing.T) {
	g := NewGCC(100e6, 1e6, 500e6)
	// Queue building: delay grows steadily while receive rate is ~24 Mbps.
	for i := 0; i < 100; i++ {
		tm := float64(i) * 0.01
		owd := 0.02 + float64(i)*0.002 // +2 ms per packet
		g.OnArrival(tm, tm+owd, 3000)
	}
	if g.Rate() >= 100e6 {
		t.Errorf("rate did not back off: %v", g.Rate())
	}
	// Should land near the receive rate (3000 B / 10 ms = 2.4 Mbps).
	if g.Rate() > 10e6 {
		t.Errorf("rate %v still far above receive rate", g.Rate())
	}
}

func TestGCCLossController(t *testing.T) {
	g := NewGCC(50e6, 1e6, 500e6)
	g.OnLossReport(0.3)
	if g.Rate() >= 50e6 {
		t.Error("heavy loss did not reduce rate")
	}
	r := g.Rate()
	g.OnLossReport(0.0)
	if g.Rate() <= r {
		t.Error("zero loss did not allow increase")
	}
	// Mid-range loss: hold.
	r = g.Rate()
	g.OnLossReport(0.05)
	if g.Rate() != r {
		t.Error("mid loss should hold rate")
	}
}

func TestGCCConvergesNearLinkCapacity(t *testing.T) {
	// End-to-end with the emulated link: a sender paces packets at the
	// GCC rate; the estimate should converge near (not above) capacity —
	// the utilization property of Table 1.
	linkMbps := 50.0
	link := netem.NewFixedLink(linkMbps)
	g := NewGCC(5e6, 1e6, 500e6)
	now := 0.0
	for i := 0; i < 20000; i++ {
		// Pace 1200-byte packets at the current rate.
		gap := float64(1200*8) / g.Rate()
		now += gap
		arrival, dropped := link.Send(now, 1200)
		if !dropped {
			g.OnArrival(now, arrival, 1200)
		}
	}
	rate := g.Rate() / 1e6
	if rate < linkMbps*0.5 || rate > linkMbps*1.3 {
		t.Errorf("GCC converged to %.1f Mbps on a %.0f Mbps link", rate, linkMbps)
	}
}

// TestFirstFragment checks the raw-bytes first-fragment probe against
// Marshal across fragment positions, parity, and junk input.
func TestFirstFragment(t *testing.T) {
	mk := func(p Packet) []byte { return append([]byte{MediaMagic}, p.Marshal()...) }
	first := Packet{Stream: StreamDepth, FrameSeq: 0xcafe01, FragIndex: 0, FragCount: 3,
		Key: true, SendTimeUs: 123, Payload: []byte{1}}
	if s, seq, ok := FirstFragment(mk(first)); !ok || s != StreamDepth || seq != 0xcafe01 {
		t.Fatalf("first fragment: got stream=%d seq=%d ok=%v", s, seq, ok)
	}
	later := first
	later.FragIndex = 1
	if _, _, ok := FirstFragment(mk(later)); ok {
		t.Fatal("non-first fragment accepted")
	}
	parity := first
	parity.Parity = true
	if _, _, ok := FirstFragment(mk(parity)); ok {
		t.Fatal("parity packet accepted")
	}
	if _, _, ok := FirstFragment(first.Marshal()); ok {
		t.Fatal("unprefixed packet accepted (payload byte happened to match?)")
	}
	if _, _, ok := FirstFragment([]byte{MediaMagic, 1, 2}); ok {
		t.Fatal("short datagram accepted")
	}
}
