package transport

import (
	"sort"
	"sync/atomic"
)

// AssembledFrame is a fully reassembled encoded frame leaving the jitter
// buffer.
type AssembledFrame struct {
	Stream       uint8
	FrameSeq     uint32
	Key          bool
	Rung         uint8 // quality-ladder rung the frame arrived on
	Data         []byte
	FirstArrival float64 // arrival of the first fragment
	LastArrival  float64
}

// NackRequest identifies a missing fragment for retransmission (§A.1:
// LiVo enables negative acknowledgments).
type NackRequest struct {
	Stream    uint8
	FrameSeq  uint32
	FragIndex uint16
}

// JitterBuffer reassembles one stream's packets into frames and delays
// delivery by a fixed jitter delay, releasing frames in sequence order.
// Incomplete frames past the skip deadline are dropped (LiVo "simply skips
// the frame", §A.1).
type JitterBuffer struct {
	// Delay is the jitter-buffer delay in seconds (paper: 100 ms [81]).
	Delay float64
	// SkipAfter is how long past Delay an incomplete frame may block
	// delivery before being skipped.
	SkipAfter float64
	// NackAfter is how long a fragment may be missing (while later
	// fragments of the frame have arrived) before it is NACK-ed.
	NackAfter float64
	// RenackAfter is how long after a NACK the still-missing fragment is
	// requested again — a lost retransmission (or a lost NACK) would
	// otherwise leave the frame waiting for the skip deadline. Zero or
	// negative disables re-requests (the pre-recovery behavior).
	RenackAfter float64

	frames  map[uint32]*partialFrame
	nextSeq uint32
	hasNext bool
	nacked  map[nackKey]float64 // fragment → time of its latest NACK

	// Occupancy and recovery counters are atomics: the buffer itself is
	// single-goroutine (the session Run loop), but session Stats() snapshots
	// and the telemetry exporter read them from other goroutines.
	skipped      atomic.Int64
	fecRecovered atomic.Int64
	nackedTotal  atomic.Int64
	pending      atomic.Int64
	delivered    atomic.Int64
}

// Stats is a point-in-time snapshot of one jitter buffer's occupancy and
// recovery counters (readable from any goroutine).
type Stats struct {
	// Pending is the current buffer occupancy in frames (complete+partial).
	Pending int
	// Delivered counts frames released to the decoder.
	Delivered int64
	// Skipped counts incomplete frames dropped past the skip deadline.
	Skipped int64
	// Nacked counts fragments NACK-ed for retransmission.
	Nacked int64
	// FECRecovered counts fragments repaired locally by XOR parity.
	FECRecovered int64
}

// Stats returns the buffer's current counters.
func (jb *JitterBuffer) Stats() Stats {
	return Stats{
		Pending:      int(jb.pending.Load()),
		Delivered:    jb.delivered.Load(),
		Skipped:      jb.skipped.Load(),
		Nacked:       jb.nackedTotal.Load(),
		FECRecovered: jb.fecRecovered.Load(),
	}
}

type nackKey struct {
	seq  uint32
	frag uint16
}

type partialFrame struct {
	stream       uint8
	key          bool
	rung         uint8
	count        uint16
	got          map[uint16][]byte
	parity       map[uint16][]byte // parity payloads by group first-index
	firstArrival float64
	lastArrival  float64
	recovered    int
}

// NewJitterBuffer creates a buffer with the paper's 100 ms delay.
func NewJitterBuffer() *JitterBuffer {
	return &JitterBuffer{
		Delay:       0.100,
		SkipAfter:   0.120,
		NackAfter:   0.015,
		RenackAfter: 0.250,
		frames:      make(map[uint32]*partialFrame),
		nacked:      make(map[nackKey]float64),
	}
}

// Push ingests one packet with its arrival time (seconds). Duplicate
// fragments (e.g. NACK retransmissions racing the original) are ignored.
func (jb *JitterBuffer) Push(p Packet, arrival float64) {
	if jb.hasNext && seqBefore(p.FrameSeq, jb.nextSeq) {
		return // frame already delivered or skipped
	}
	f := jb.frames[p.FrameSeq]
	if f == nil {
		f = &partialFrame{
			stream:       p.Stream,
			key:          p.Key,
			rung:         p.Rung,
			count:        p.FragCount,
			got:          make(map[uint16][]byte),
			parity:       make(map[uint16][]byte),
			firstArrival: arrival,
		}
		jb.frames[p.FrameSeq] = f
		jb.pending.Store(int64(len(jb.frames)))
	}
	if p.FragCount != f.count || p.FragIndex >= f.count {
		// A corrupted header disagreeing with the frame's established
		// fragment count would poison reassembly; drop the fragment and let
		// NACK/FEC recover the real one.
		return
	}
	if p.Parity {
		f.parity[p.FragIndex] = p.Payload
	} else {
		if _, dup := f.got[p.FragIndex]; dup {
			return
		}
		f.got[p.FragIndex] = p.Payload
	}
	if arrival > f.lastArrival {
		f.lastArrival = arrival
	}
	if arrival < f.firstArrival {
		f.firstArrival = arrival
	}
	jb.tryFEC(f)
}

// tryFEC repairs single losses in parity-protected fragment groups —
// recovery happens locally, without the NACK round trip (fec.go).
func (jb *JitterBuffer) tryFEC(f *partialFrame) {
	if len(f.got) == int(f.count) || len(f.parity) == 0 {
		return
	}
	for firstIdx, pp := range f.parity {
		idx, payload, err := RecoverWithParity(f.got, pp, firstIdx)
		if err != nil {
			continue
		}
		f.got[idx] = payload
		f.recovered++
		jb.fecRecovered.Add(1)
	}
}

// FECRecovered returns how many fragments were repaired by parity.
func (jb *JitterBuffer) FECRecovered() int { return int(jb.fecRecovered.Load()) }

// seqBefore reports a < b with wraparound.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// Pop returns all frames ready for delivery at time now, in sequence
// order. A complete frame is ready when now >= firstArrival + Delay. An
// incomplete frame blocking the sequence is skipped (dropped) when now >
// firstArrival + Delay + SkipAfter.
func (jb *JitterBuffer) Pop(now float64) []AssembledFrame {
	var out []AssembledFrame
	for {
		seq, f, ok := jb.oldest()
		if !ok {
			break
		}
		complete := len(f.got) == int(f.count)
		switch {
		case complete && now >= f.firstArrival+jb.Delay:
			data := assemble(f)
			out = append(out, AssembledFrame{
				Stream:       f.stream,
				FrameSeq:     seq,
				Key:          f.key,
				Rung:         f.rung,
				Data:         data,
				FirstArrival: f.firstArrival,
				LastArrival:  f.lastArrival,
			})
			jb.release(seq, f)
			jb.delivered.Add(1)
		case !complete && now > f.firstArrival+jb.Delay+jb.SkipAfter:
			jb.release(seq, f)
			jb.skipped.Add(1)
		default:
			return out
		}
	}
	return out
}

// release retires a delivered or skipped frame: the frame entry and its
// once-only NACK bookkeeping are dropped together, so neither map outlives
// the frames it describes (a session-lifetime leak otherwise).
func (jb *JitterBuffer) release(seq uint32, f *partialFrame) {
	delete(jb.frames, seq)
	jb.pending.Store(int64(len(jb.frames)))
	for i := uint16(0); i < f.count; i++ {
		delete(jb.nacked, nackKey{seq, i})
	}
	jb.nextSeq = seq + 1
	jb.hasNext = true
}

// oldest returns the lowest-sequence pending frame.
func (jb *JitterBuffer) oldest() (uint32, *partialFrame, bool) {
	var best uint32
	var bf *partialFrame
	for seq, f := range jb.frames {
		if bf == nil || seqBefore(seq, best) {
			best, bf = seq, f
		}
	}
	return best, bf, bf != nil
}

func assemble(f *partialFrame) []byte {
	idxs := make([]int, 0, len(f.got))
	for i := range f.got {
		idxs = append(idxs, int(i))
	}
	sort.Ints(idxs)
	var data []byte
	for _, i := range idxs {
		data = append(data, f.got[uint16(i)]...)
	}
	return data
}

// Nacks returns fragments that should be retransmitted: missing pieces of
// frames where later data has already arrived and NackAfter has elapsed.
// A fragment still missing RenackAfter past its last NACK is requested
// again (lost retransmissions must not wait out the skip deadline);
// with RenackAfter disabled each fragment is NACK-ed at most once.
func (jb *JitterBuffer) Nacks(now float64) []NackRequest {
	var out []NackRequest
	for seq, f := range jb.frames {
		if len(f.got) == int(f.count) {
			continue
		}
		if now < f.lastArrival+jb.NackAfter {
			continue
		}
		for i := uint16(0); i < f.count; i++ {
			if _, ok := f.got[i]; ok {
				continue
			}
			k := nackKey{seq, i}
			if last, ok := jb.nacked[k]; ok && (jb.RenackAfter <= 0 || now-last < jb.RenackAfter) {
				continue
			}
			jb.nacked[k] = now
			jb.nackedTotal.Add(1)
			out = append(out, NackRequest{Stream: f.stream, FrameSeq: seq, FragIndex: i})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].FrameSeq != out[b].FrameSeq {
			return seqBefore(out[a].FrameSeq, out[b].FrameSeq)
		}
		return out[a].FragIndex < out[b].FragIndex
	})
	return out
}

// Skipped returns how many frames were dropped as incomplete.
func (jb *JitterBuffer) Skipped() int { return int(jb.skipped.Load()) }

// Pending returns how many frames are buffered (complete or partial).
func (jb *JitterBuffer) Pending() int { return len(jb.frames) }
