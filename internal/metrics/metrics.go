// Package metrics implements the quality measures used in the evaluation:
// pixel-domain RMSE/PSNR (the sender-side probe of LiVo's bandwidth
// splitter, §3.3) and PointSSIM [22], the 3D structural-similarity metric
// used for all objective quality comparisons (§4.1). PointSSIM extends SSIM
// to point clouds by comparing local neighbourhood statistics (geometry
// dispersion and color luminance) between the reference and the distorted
// cloud; it reports separate geometry and color scores on a 0–100 scale
// where values in the high 80s and above are generally considered good.
package metrics

import (
	"math"
	"math/rand"
	"sort"

	"livo/internal/frame"
	"livo/internal/pointcloud"
)

// ColorRMSE is the root-mean-square error over all RGB samples.
func ColorRMSE(a, b *frame.ColorImage) float64 {
	if len(a.Pix) != len(b.Pix) || len(a.Pix) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a.Pix)))
}

// DepthRMSE is the root-mean-square error in millimeters over pixels that
// are valid (non-zero) in the reference.
func DepthRMSE(a, b *frame.DepthImage) float64 {
	if len(a.Pix) != len(b.Pix) || len(a.Pix) == 0 {
		return math.NaN()
	}
	var sum float64
	var n int
	for i := range a.Pix {
		if a.Pix[i] == 0 {
			continue
		}
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// PSNR converts an RMSE to peak signal-to-noise ratio in dB for the given
// full-scale value. An RMSE of 0 returns +Inf.
func PSNR(rmse, peak float64) float64 {
	if rmse <= 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(peak/rmse)
}

// PSSIM is a PointSSIM result: separate geometry and color scores, 0–100.
type PSSIM struct {
	Geometry float64
	Color    float64
}

// PSSIMOptions tune the PointSSIM computation.
type PSSIMOptions struct {
	// K is the neighbourhood size (default 10).
	K int
	// MaxPoints caps how many query points are evaluated per direction;
	// larger clouds are subsampled deterministically (default 2000).
	MaxPoints int
	// Seed drives the subsampling (default 1).
	Seed int64
}

func (o PSSIMOptions) withDefaults() PSSIMOptions {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PointSSIM computes the symmetric PointSSIM between a reference and a
// distorted cloud. Either cloud being empty yields zero scores (the
// convention §4.3 uses for stalled frames).
func PointSSIM(ref, dist *pointcloud.Cloud, opts PSSIMOptions) PSSIM {
	opts = opts.withDefaults()
	if ref.Len() == 0 || dist.Len() == 0 {
		return PSSIM{}
	}
	refGrid := pointcloud.NewGrid(ref, 0)
	distGrid := pointcloud.NewGrid(dist, 0)
	g1, c1 := directionalSSIM(ref, refGrid, dist, distGrid, opts)
	g2, c2 := directionalSSIM(dist, distGrid, ref, refGrid, opts)
	// Symmetric pooling: the worse direction dominates (standard for point
	// cloud metrics: missing regions must hurt).
	return PSSIM{
		Geometry: 100 * math.Min(g1, g2),
		Color:    100 * math.Min(c1, c2),
	}
}

// neighborhood statistics of a point in its own cloud.
type stats struct {
	geoMean, geoStd float64 // neighbour-distance dispersion
	lumMean, lumStd float64 // neighbourhood luminance
}

func neighborhoodStats(c *pointcloud.Cloud, g *pointcloud.Grid, idx int, k int) stats {
	nn := g.KNearest(c.Positions[idx], k+1) // includes the point itself
	var st stats
	var n float64
	var lum []float64
	var dists []float64
	for _, nb := range nn {
		l := luminance(c.Colors[nb.Index])
		lum = append(lum, l)
		if nb.Index != idx {
			dists = append(dists, nb.Dist)
		}
		n++
	}
	st.geoMean = mean(dists)
	st.geoStd = stddev(dists, st.geoMean)
	st.lumMean = mean(lum)
	st.lumStd = stddev(lum, st.lumMean)
	return st
}

// directionalSSIM computes mean geometry and color similarity from cloud A
// (queries) to cloud B.
func directionalSSIM(a *pointcloud.Cloud, aGrid *pointcloud.Grid, b *pointcloud.Cloud, bGrid *pointcloud.Grid, opts PSSIMOptions) (geo, col float64) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := a.Len()
	queries := make([]int, 0, opts.MaxPoints)
	if n <= opts.MaxPoints {
		for i := 0; i < n; i++ {
			queries = append(queries, i)
		}
	} else {
		for _, i := range rng.Perm(n)[:opts.MaxPoints] {
			queries = append(queries, i)
		}
	}

	// SSIM stabilizers, scaled to the data ranges (luminance 0..255;
	// geometry dispersion uses the reference cloud's average spacing).
	const c1Lum = (0.01 * 255) * (0.01 * 255)
	const c2Lum = (0.03 * 255) * (0.03 * 255)
	spacing := aGrid.Cell()
	c1Geo := (0.05 * spacing) * (0.05 * spacing)
	c2Geo := c1Geo

	var geoSum, colSum float64
	for _, qi := range queries {
		sa := neighborhoodStats(a, aGrid, qi, opts.K)
		bi, d := bGrid.Nearest(a.Positions[qi])
		sb := neighborhoodStats(b, bGrid, bi, opts.K)
		// Geometry: local-structure similarity times a point-to-point
		// registration term (both families of features appear in
		// PointSSIM's geometry feature set [22]). The registration scale
		// is the query's own local spacing: displacement beyond a few
		// neighbour spacings means the surface is in the wrong place
		// (coarse meshes, heavy quantization), not just re-sampled.
		structure := ssimTerm(sa.geoMean, sb.geoMean, c1Geo) * ssimTerm(sa.geoStd, sb.geoStd, c2Geo)
		ds := 2 * math.Max(sa.geoMean, 1e-9)
		registration := ds * ds / (ds*ds + d*d)
		geoSum += structure * registration
		colSum += ssimTerm(sa.lumMean, sb.lumMean, c1Lum) * ssimTerm(sa.lumStd, sb.lumStd, c2Lum)
	}
	m := float64(len(queries))
	return geoSum / m, colSum / m
}

// ssimTerm is the SSIM-style similarity of two non-negative statistics.
func ssimTerm(x, y, c float64) float64 {
	return (2*x*y + c) / (x*x + y*y + c)
}

func luminance(c [3]uint8) float64 {
	return 0.299*float64(c[0]) + 0.587*float64(c[1]) + 0.114*float64(c[2])
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64, mu float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Mean returns the arithmetic mean of xs (0 for empty input). Exported for
// experiment aggregation.
func Mean(xs []float64) float64 { return mean(xs) }

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return stddev(xs, mean(xs)) }

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation; NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	w := pos - float64(lo)
	return s[lo]*(1-w) + s[hi]*w
}
