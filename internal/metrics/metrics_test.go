package metrics

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/pointcloud"
)

func TestColorRMSE(t *testing.T) {
	a := frame.NewColorImage(4, 4)
	b := frame.NewColorImage(4, 4)
	if got := ColorRMSE(a, b); got != 0 {
		t.Errorf("identical images RMSE = %v", got)
	}
	for i := range b.Pix {
		b.Pix[i] = 10
	}
	if got := ColorRMSE(a, b); math.Abs(got-10) > 1e-12 {
		t.Errorf("uniform diff RMSE = %v, want 10", got)
	}
	if got := ColorRMSE(a, frame.NewColorImage(2, 2)); !math.IsNaN(got) {
		t.Errorf("mismatched sizes RMSE = %v, want NaN", got)
	}
}

func TestDepthRMSEIgnoresInvalid(t *testing.T) {
	a := frame.NewDepthImage(4, 1)
	b := frame.NewDepthImage(4, 1)
	a.Pix[0] = 1000
	b.Pix[0] = 1010
	// Pixels 1-3 invalid in reference; huge values in b must not count.
	b.Pix[1] = 60000
	if got := DepthRMSE(a, b); math.Abs(got-10) > 1e-12 {
		t.Errorf("RMSE = %v, want 10", got)
	}
	empty := frame.NewDepthImage(4, 1)
	if got := DepthRMSE(empty, b); got != 0 {
		t.Errorf("all-invalid reference RMSE = %v", got)
	}
}

func TestPSNR(t *testing.T) {
	if got := PSNR(0, 255); !math.IsInf(got, 1) {
		t.Errorf("zero RMSE PSNR = %v", got)
	}
	if got := PSNR(255, 255); math.Abs(got) > 1e-12 {
		t.Errorf("full-scale RMSE PSNR = %v, want 0", got)
	}
	if got := PSNR(25.5, 255); math.Abs(got-20) > 1e-12 {
		t.Errorf("PSNR = %v, want 20", got)
	}
}

// densePlane builds a flat grid cloud with a smooth color ramp.
func densePlane(n int, noise float64, rng *rand.Rand) *pointcloud.Cloud {
	c := pointcloud.New(n * n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			px := float64(x) * 0.02
			py := float64(y) * 0.02
			var dz float64
			if noise > 0 {
				dz = rng.NormFloat64() * noise
			}
			col := uint8(50 + (x+y)*155/(2*n))
			c.Add(geom.V3(px, py, dz), [3]uint8{col, col, col})
		}
	}
	return c
}

func TestPointSSIMIdentical(t *testing.T) {
	c := densePlane(20, 0, nil)
	s := PointSSIM(c, c.Clone(), PSSIMOptions{})
	if s.Geometry < 99.9 || s.Color < 99.9 {
		t.Errorf("identical clouds PSSIM = %+v, want ~100", s)
	}
}

func TestPointSSIMEmpty(t *testing.T) {
	c := densePlane(5, 0, nil)
	if s := PointSSIM(pointcloud.New(0), c, PSSIMOptions{}); s.Geometry != 0 || s.Color != 0 {
		t.Errorf("empty ref PSSIM = %+v", s)
	}
	if s := PointSSIM(c, pointcloud.New(0), PSSIMOptions{}); s.Geometry != 0 || s.Color != 0 {
		t.Errorf("empty dist PSSIM = %+v", s)
	}
}

func TestPointSSIMGeometryDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	ref := densePlane(25, 0, nil)
	var prev = 101.0
	for _, noise := range []float64{0.001, 0.01, 0.05} {
		dist := densePlane(25, noise, rng)
		s := PointSSIM(ref, dist, PSSIMOptions{Seed: 7})
		if s.Geometry >= prev {
			t.Errorf("noise %v geometry %v not worse than previous %v", noise, s.Geometry, prev)
		}
		prev = s.Geometry
	}
}

func TestPointSSIMColorDegradesWithColorError(t *testing.T) {
	ref := densePlane(25, 0, nil)
	rng := rand.New(rand.NewSource(101))
	clean := PointSSIM(ref, ref.Clone(), PSSIMOptions{Seed: 7})
	// Same geometry, scrambled colors.
	bad := ref.Clone()
	for i := range bad.Colors {
		bad.Colors[i] = [3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	s := PointSSIM(ref, bad, PSSIMOptions{Seed: 7})
	if s.Color >= clean.Color-5 {
		t.Errorf("scrambled colors PSSIM color = %v vs clean %v", s.Color, clean.Color)
	}
	// Geometry should stay high: positions unchanged.
	if s.Geometry < 95 {
		t.Errorf("geometry dropped (%v) though positions unchanged", s.Geometry)
	}
}

func TestPointSSIMPenalizesMissingRegions(t *testing.T) {
	ref := densePlane(24, 0, nil)
	// Remove half the cloud (like a stalled/culled region the viewer sees).
	half := pointcloud.New(ref.Len() / 2)
	for i := 0; i < ref.Len()/2; i++ {
		half.Add(ref.Positions[i], ref.Colors[i])
	}
	s := PointSSIM(ref, half, PSSIMOptions{Seed: 7})
	full := PointSSIM(ref, ref.Clone(), PSSIMOptions{Seed: 7})
	if s.Geometry >= full.Geometry {
		t.Errorf("missing half not penalized: %v vs %v", s.Geometry, full.Geometry)
	}
}

func TestPointSSIMSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	a := densePlane(20, 0.002, rng)
	b := densePlane(20, 0.002, rng)
	s1 := PointSSIM(a, b, PSSIMOptions{Seed: 7})
	s2 := PointSSIM(b, a, PSSIMOptions{Seed: 7})
	if math.Abs(s1.Geometry-s2.Geometry) > 1e-9 || math.Abs(s1.Color-s2.Color) > 1e-9 {
		t.Errorf("PSSIM not symmetric: %+v vs %+v", s1, s2)
	}
}

func TestPointSSIMDeterministicSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := densePlane(60, 0, nil) // 3600 points > MaxPoints default
	b := densePlane(60, 0.005, rng)
	s1 := PointSSIM(a, b, PSSIMOptions{Seed: 9})
	s2 := PointSSIM(a, b, PSSIMOptions{Seed: 9})
	if s1 != s2 {
		t.Errorf("same seed, different results: %+v vs %+v", s1, s2)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("percentile endpoints wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile([]float64{1, 2}, 50); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("interpolated median = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func BenchmarkPointSSIM(b *testing.B) {
	rng := rand.New(rand.NewSource(104))
	ref := densePlane(50, 0, nil)
	dist := densePlane(50, 0.003, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PointSSIM(ref, dist, PSSIMOptions{MaxPoints: 500})
	}
}
