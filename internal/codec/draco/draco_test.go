package draco

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"livo/internal/geom"
	"livo/internal/pointcloud"
)

func randCloud(rng *rand.Rand, n int, extent float64) *pointcloud.Cloud {
	c := pointcloud.New(n)
	for i := 0; i < n; i++ {
		c.Add(
			geom.V3(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent),
			[3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))},
		)
	}
	return c
}

// geomError returns the mean nearest-neighbour distance from a to b.
func geomError(a, b *pointcloud.Cloud) float64 {
	g := pointcloud.NewGrid(b, 0)
	var sum float64
	for _, p := range a.Positions {
		_, d := g.Nearest(p)
		sum += d
	}
	return sum / float64(a.Len())
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Params{
		{QuantBits: 0, Speed: 5, ColorBits: 8},
		{QuantBits: 17, Speed: 5, ColorBits: 8},
		{QuantBits: 10, Speed: -1, ColorBits: 8},
		{QuantBits: 10, Speed: 10, ColorBits: 8},
		{QuantBits: 10, Speed: 5, ColorBits: 0},
		{QuantBits: 10, Speed: 5, ColorBits: 9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestRoundTripGeometryAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	c := randCloud(rng, 2000, 3.0)
	data, err := Encode(c, Params{QuantBits: 12, Speed: 5, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// At 12 bits over 3 m the cell is ~0.7 mm; allow a few cells.
	cell := 3.0 / float64((1<<12)-1)
	if e := geomError(c, got); e > 3*cell {
		t.Errorf("geometry error %v > %v", e, 3*cell)
	}
	// Point count preserved up to deduplication.
	if got.Len() > c.Len() {
		t.Errorf("decode invented points: %d > %d", got.Len(), c.Len())
	}
}

func TestRoundTripColors(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	// Well-separated points so nothing merges, full color bits.
	c := pointcloud.New(0)
	for i := 0; i < 100; i++ {
		c.Add(geom.V3(float64(i)*0.1, 0, 0), [3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))})
	}
	data, err := Encode(c, Params{QuantBits: 14, Speed: 5, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("point count %d != %d", got.Len(), c.Len())
	}
	// Match each original point to its nearest decoded point; color must be
	// exact at ColorBits=8.
	g := pointcloud.NewGrid(got, 0)
	for i, p := range c.Positions {
		j, _ := g.Nearest(p)
		if got.Colors[j] != c.Colors[i] {
			t.Fatalf("color mismatch at %d: %v vs %v", i, got.Colors[j], c.Colors[i])
		}
	}
}

func TestQuantBitsControlQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	c := randCloud(rng, 3000, 2.0)
	var prevErr float64 = math.Inf(1)
	var prevSize int
	for _, qb := range []int{6, 9, 12} {
		data, err := Encode(c, Params{QuantBits: qb, Speed: 5, ColorBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		e := geomError(c, got)
		if e >= prevErr {
			t.Errorf("QuantBits %d error %v not better than previous %v", qb, e, prevErr)
		}
		if prevSize > 0 && len(data) <= prevSize {
			t.Errorf("QuantBits %d size %d not larger than previous %d", qb, len(data), prevSize)
		}
		prevErr = e
		prevSize = len(data)
	}
}

func TestSpeedTradesSizeNotQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	c := randCloud(rng, 5000, 2.0)
	fast, err := Encode(c, Params{QuantBits: 10, Speed: 0, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Encode(c, Params{QuantBits: 10, Speed: 9, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) > len(fast) {
		t.Errorf("slow encode larger than fast: %d > %d", len(slow), len(fast))
	}
	// Same geometry either way.
	df, _ := Decode(fast)
	ds, _ := Decode(slow)
	if df.Len() != ds.Len() {
		t.Errorf("speed changed point count: %d vs %d", df.Len(), ds.Len())
	}
}

func TestCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	c := randCloud(rng, 10000, 3.0)
	data, err := Encode(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= c.SizeBytes() {
		t.Errorf("no compression: %d >= %d", len(data), c.SizeBytes())
	}
}

func TestEmptyCloud(t *testing.T) {
	data, err := Encode(pointcloud.New(0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty cloud decoded to %d points", got.Len())
	}
}

func TestSinglePoint(t *testing.T) {
	c := pointcloud.New(0)
	c.Add(geom.V3(1, 2, 3), [3]uint8{50, 100, 150})
	data, err := Encode(c, Params{QuantBits: 8, Speed: 3, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("got %d points", got.Len())
	}
	if !got.Positions[0].AlmostEqual(geom.V3(1, 2, 3), 0.1) {
		t.Errorf("position = %v", got.Positions[0])
	}
	if got.Colors[0] != [3]uint8{50, 100, 150} {
		t.Errorf("color = %v", got.Colors[0])
	}
}

func TestCoplanarCloud(t *testing.T) {
	// Degenerate extent on two axes must not divide by zero.
	c := pointcloud.New(0)
	for i := 0; i < 50; i++ {
		c.Add(geom.V3(float64(i)*0.01, 5, 5), [3]uint8{1, 2, 3})
	}
	data, err := Encode(c, Params{QuantBits: 10, Speed: 5, ColorBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("coplanar cloud lost all points")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil data accepted")
	}
	if _, err := Decode([]byte("XXXX\x0a\x05\x08\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupt a valid encoding.
	c := randCloud(rand.New(rand.NewSource(85)), 100, 1.0)
	data, _ := Encode(c, DefaultParams())
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0xA5
	if _, err := Decode(bad); err == nil {
		// Corruption may still decode structurally; that's acceptable for
		// a deflate payload, but header corruption must fail:
		hdrBad := append([]byte{}, data...)
		hdrBad[4] = 50 // absurd quant bits
		if _, err := Decode(hdrBad); err == nil {
			t.Error("corrupt header accepted")
		}
	}
	// Truncated payload.
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestColorQuantization(t *testing.T) {
	c := pointcloud.New(0)
	c.Add(geom.V3(0, 0, 0), [3]uint8{255, 255, 255})
	c.Add(geom.V3(1, 1, 1), [3]uint8{0, 0, 0})
	data, err := Encode(c, Params{QuantBits: 8, Speed: 5, ColorBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Full-scale values must expand back to full scale.
	foundWhite, foundBlack := false, false
	for _, col := range got.Colors {
		if col == [3]uint8{255, 255, 255} {
			foundWhite = true
		}
		if col == [3]uint8{0, 0, 0} {
			foundBlack = true
		}
	}
	if !foundWhite || !foundBlack {
		t.Errorf("4-bit color expansion wrong: %v", got.Colors)
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint16) bool {
		m := morton3(uint32(x), uint32(y), uint32(z))
		gx, gy, gz := unmorton3(m)
		return gx == uint32(x) && gy == uint32(y) && gz == uint32(z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderPreservesLocality(t *testing.T) {
	// Neighbouring cells share long prefixes: children of a node are
	// contiguous in sorted order. Check sortedness drives a valid octree
	// (every decode reproduces encode's dedup count).
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 10; trial++ {
		c := randCloud(rng, 200, 1.0)
		data, err := Encode(c, Params{QuantBits: 6, Speed: 5, ColorBits: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Count distinct cells directly.
		seen := map[[3]uint32]bool{}
		b := c.Bounds()
		ext := math.Max(b.Size().X, math.Max(b.Size().Y, b.Size().Z))
		scale := float64((1<<6)-1) / ext
		for _, p := range c.Positions {
			seen[[3]uint32{
				quant(p.X-b.Min.X, scale, 6),
				quant(p.Y-b.Min.Y, scale, 6),
				quant(p.Z-b.Min.Z, scale, 6),
			}] = true
		}
		if got.Len() != len(seen) {
			t.Fatalf("decoded %d points, expected %d distinct cells", got.Len(), len(seen))
		}
	}
}

func TestSortUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for _, n := range []int{0, 1, 10, 63, 64, 1000} {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64()
		}
		sortUint64(s)
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}

func TestEncodingTimeGrowsWithPoints(t *testing.T) {
	// The property the Draco-Oracle baseline depends on (§1): compression
	// cost grows with cloud size. We check work proxy (output size) rather
	// than wall time for robustness.
	rng := rand.New(rand.NewSource(88))
	small := randCloud(rng, 1000, 2.0)
	large := randCloud(rng, 20000, 2.0)
	ds, _ := Encode(small, DefaultParams())
	dl, _ := Encode(large, DefaultParams())
	if len(dl) <= len(ds) {
		t.Errorf("larger cloud did not produce larger encoding: %d vs %d", len(dl), len(ds))
	}
}

func BenchmarkEncode50k(b *testing.B) {
	c := randCloud(rand.New(rand.NewSource(89)), 50000, 3.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(c, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode50k(b *testing.B) {
	c := randCloud(rand.New(rand.NewSource(90)), 50000, 3.0)
	data, _ := Encode(c, DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
