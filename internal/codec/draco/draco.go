// Package draco is an octree point-cloud codec modeled on Google Draco [4],
// the compressor behind the paper's Draco-Oracle baseline (§4.1). Like the
// real library it exposes:
//
//   - a quantization parameter (QuantBits, geometry precision) — the only
//     quality knob: the codec is NOT rate-adaptive, applications cannot ask
//     for a target bitrate (§1's central observation);
//   - a speed level (0 fastest .. 9 slowest/best), trading encode time for
//     compressed size;
//   - compute cost that grows with point count, which is why full-scene
//     frames stall a Draco pipeline (§4.2).
//
// Geometry is coded as a depth-first octree over morton-sorted quantized
// positions (occupancy byte per internal node); per-leaf average colors are
// delta-coded in traversal order; everything is deflate-entropy-coded.
package draco

import (
	"encoding/binary"
	"fmt"
	"math"

	"livo/internal/geom"
	"livo/internal/pointcloud"
)

// Params are the Draco-style encoding parameters.
type Params struct {
	// QuantBits is the geometry quantization: positions are snapped to a
	// 2^QuantBits grid over the cloud's bounding box. Valid range 1..16.
	// (Draco exposes 31 levels; beyond 16 bits the grid outresolves
	// millimeter sensors, so we cap there.)
	QuantBits int
	// Speed is 0 (fastest, least compression) .. 9 (slowest, best), the
	// inverse of Draco's encoder speed setting.
	Speed int
	// ColorBits quantizes colors to the top ColorBits bits (1..8).
	ColorBits int
}

// DefaultParams mirrors Draco's defaults: 11-bit positions, mid speed.
func DefaultParams() Params { return Params{QuantBits: 11, Speed: 5, ColorBits: 8} }

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.QuantBits < 1 || p.QuantBits > 16 {
		return fmt.Errorf("draco: QuantBits %d out of range [1,16]", p.QuantBits)
	}
	if p.Speed < 0 || p.Speed > 9 {
		return fmt.Errorf("draco: Speed %d out of range [0,9]", p.Speed)
	}
	if p.ColorBits < 1 || p.ColorBits > 8 {
		return fmt.Errorf("draco: ColorBits %d out of range [1,8]", p.ColorBits)
	}
	return nil
}

const magic = "DRC1"

// Encode compresses the cloud. Points co-located in one quantization cell
// merge (their colors average), exactly like Draco's sequential encoder
// with deduplication.
func Encode(c *pointcloud.Cloud, p Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = append(hdr, byte(p.QuantBits), byte(p.Speed), byte(p.ColorBits))

	if c.Len() == 0 {
		hdr = binary.AppendUvarint(hdr, 0)
		return hdr, nil
	}

	b := c.Bounds()
	size := b.Size()
	// Guard against degenerate (flat) clouds.
	ext := math.Max(size.X, math.Max(size.Y, size.Z))
	if ext <= 0 {
		ext = 1e-9
	}
	scale := float64(uint64(1)<<p.QuantBits-1) / ext

	// Quantize and merge per cell.
	type cell struct {
		r, g, b uint32
		n       uint32
	}
	cells := make(map[uint64]*cell, c.Len())
	for i, pos := range c.Positions {
		x := quant(pos.X-b.Min.X, scale, p.QuantBits)
		y := quant(pos.Y-b.Min.Y, scale, p.QuantBits)
		z := quant(pos.Z-b.Min.Z, scale, p.QuantBits)
		m := morton3(x, y, z)
		cl := cells[m]
		if cl == nil {
			cl = &cell{}
			cells[m] = cl
		}
		cl.r += uint32(c.Colors[i][0])
		cl.g += uint32(c.Colors[i][1])
		cl.b += uint32(c.Colors[i][2])
		cl.n++
	}
	codes := make([]uint64, 0, len(cells))
	for m := range cells {
		codes = append(codes, m)
	}
	sortUint64(codes)

	// Octree occupancy bytes, pre-order DFS over the morton-sorted array.
	var occ []byte
	var emit func(lo, hi, level int)
	emit = func(lo, hi, level int) {
		if level == p.QuantBits {
			return // leaf
		}
		shift := uint(3 * (p.QuantBits - 1 - level))
		var occByte byte
		type rng struct{ lo, hi int }
		var children [8]rng
		start := lo
		for child := 0; child < 8; child++ {
			end := start
			for end < hi && int((codes[end]>>shift)&7) == child {
				end++
			}
			if end > start {
				occByte |= 1 << uint(child)
				children[child] = rng{start, end}
			}
			start = end
		}
		occ = append(occ, occByte)
		for child := 0; child < 8; child++ {
			if occByte&(1<<uint(child)) != 0 {
				emit(children[child].lo, children[child].hi, level+1)
			}
		}
	}
	emit(0, len(codes), 0)

	// Colors in morton order, quantized and delta-coded.
	colShift := uint(8 - p.ColorBits)
	cols := make([]byte, 0, 3*len(codes))
	var pr, pg, pb byte
	for _, m := range codes {
		cl := cells[m]
		r := byte(cl.r/cl.n) >> colShift
		g := byte(cl.g/cl.n) >> colShift
		bb := byte(cl.b/cl.n) >> colShift
		cols = append(cols, r-pr, g-pg, bb-pb)
		pr, pg, pb = r, g, bb
	}

	// Assemble payload.
	payload := make([]byte, 0, len(occ)+len(cols)+64)
	payload = appendFloat64(payload, b.Min.X)
	payload = appendFloat64(payload, b.Min.Y)
	payload = appendFloat64(payload, b.Min.Z)
	payload = appendFloat64(payload, ext)
	payload = binary.AppendUvarint(payload, uint64(len(codes)))
	payload = binary.AppendUvarint(payload, uint64(len(occ)))
	payload = append(payload, occ...)
	payload = append(payload, cols...)

	level := flateLevelForSpeed(p.Speed)
	compressed, err := deflate(payload, level)
	if err != nil {
		return nil, err
	}
	out := hdr
	out = binary.AppendUvarint(out, uint64(len(compressed)))
	out = append(out, compressed...)
	return out, nil
}

// Decode reconstructs a cloud (one point per occupied cell, at the cell
// center).
func Decode(data []byte) (*pointcloud.Cloud, error) {
	if len(data) < len(magic)+3 {
		return nil, fmt.Errorf("draco: truncated header")
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("draco: bad magic")
	}
	quantBits := int(data[4])
	colorBits := int(data[6])
	p := Params{QuantBits: quantBits, Speed: int(data[5]), ColorBits: colorBits}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rest := data[7:]
	clen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("draco: truncated length")
	}
	rest = rest[n:]
	if clen == 0 {
		return pointcloud.New(0), nil
	}
	if uint64(len(rest)) < clen {
		return nil, fmt.Errorf("draco: truncated payload")
	}
	payload, err := inflate(rest[:clen])
	if err != nil {
		return nil, err
	}

	pos := 0
	readF := func() (float64, error) {
		if pos+8 > len(payload) {
			return 0, fmt.Errorf("draco: truncated float")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
		return v, nil
	}
	minX, err := readF()
	if err != nil {
		return nil, err
	}
	minY, err := readF()
	if err != nil {
		return nil, err
	}
	minZ, err := readF()
	if err != nil {
		return nil, err
	}
	ext, err := readF()
	if err != nil {
		return nil, err
	}
	// Corrupt bounds would propagate NaN/Inf into every decoded position.
	if math.IsNaN(minX) || math.IsInf(minX, 0) || math.IsNaN(minY) || math.IsInf(minY, 0) ||
		math.IsNaN(minZ) || math.IsInf(minZ, 0) || !(ext > 0) || math.IsInf(ext, 0) {
		return nil, fmt.Errorf("draco: invalid bounds")
	}
	nPoints, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("draco: truncated point count")
	}
	pos += n
	// Bound nPoints by the payload before it sizes any allocation: each
	// point carries 3 color bytes, so a larger count cannot be genuine
	// (this also forecloses the 3*nPoints overflow a crafted count causes).
	if nPoints > uint64(len(payload))/3 {
		return nil, fmt.Errorf("draco: point count %d exceeds payload", nPoints)
	}
	occLen, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("draco: truncated occ length")
	}
	pos += n
	if occLen > uint64(len(payload)-pos) {
		return nil, fmt.Errorf("draco: occupancy overruns payload")
	}
	occ := payload[pos : pos+int(occLen)]
	pos += int(occLen)
	cols := payload[pos:]
	if uint64(len(cols)) < 3*nPoints {
		return nil, fmt.Errorf("draco: color data short (%d < %d)", len(cols), 3*nPoints)
	}

	// Rebuild morton codes by pre-order DFS over occupancy bytes.
	codes := make([]uint64, 0, nPoints)
	occPos := 0
	var walk func(prefix uint64, level int) error
	walk = func(prefix uint64, level int) error {
		if level == quantBits {
			if uint64(len(codes)) >= nPoints {
				return fmt.Errorf("draco: octree yields more than %d points", nPoints)
			}
			codes = append(codes, prefix)
			return nil
		}
		if occPos >= len(occ) {
			return fmt.Errorf("draco: occupancy underrun")
		}
		ob := occ[occPos]
		occPos++
		for child := 0; child < 8; child++ {
			if ob&(1<<uint(child)) != 0 {
				if err := walk(prefix<<3|uint64(child), level+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if nPoints > 0 {
		if err := walk(0, 0); err != nil {
			return nil, err
		}
	}
	if uint64(len(codes)) != nPoints {
		return nil, fmt.Errorf("draco: octree yielded %d points, header says %d", len(codes), nPoints)
	}

	scale := ext / float64(uint64(1)<<quantBits-1)
	colShift := uint(8 - colorBits)
	out := pointcloud.New(int(nPoints))
	var pr, pg, pb byte
	for i, m := range codes {
		x, y, z := unmorton3(m)
		pr += cols[3*i]
		pg += cols[3*i+1]
		pb += cols[3*i+2]
		out.Add(
			geom.V3(
				minX+float64(x)*scale,
				minY+float64(y)*scale,
				minZ+float64(z)*scale,
			),
			[3]uint8{expandColor(pr, colShift), expandColor(pg, colShift), expandColor(pb, colShift)},
		)
	}
	return out, nil
}

// expandColor undoes color quantization by bit replication: the quantized
// value's significant bits are repeated into the low bits so full-scale
// values expand back to 255.
func expandColor(q byte, shift uint) uint8 {
	if shift == 0 {
		return q
	}
	bits := 8 - shift // significant bits in q
	v := uint(q) << shift
	for fill := int(shift); fill > 0; fill -= int(bits) {
		if fill >= int(bits) {
			v |= uint(q) << uint(fill-int(bits))
		} else {
			v |= uint(q) >> uint(int(bits)-fill)
		}
	}
	return uint8(v)
}

func quant(v, scale float64, bits int) uint32 {
	q := int64(math.Round(v * scale))
	maxQ := int64(1)<<bits - 1
	if q < 0 {
		q = 0
	}
	if q > maxQ {
		q = maxQ
	}
	return uint32(q)
}

// morton3 interleaves the low 16 bits of x, y, z (x in bit 0, y in 1, z 2).
func morton3(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

func unmorton3(m uint64) (x, y, z uint32) {
	return compact(m), compact(m >> 1), compact(m >> 2)
}

func compact(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10C30C30C30C30C3
	x = (x | x>>4) & 0x100F00F00F00F00F
	x = (x | x>>8) & 0x1F0000FF0000FF
	x = (x | x>>16) & 0x1F00000000FFFF
	x = (x | x>>32) & 0xFFFF
	return uint32(x)
}

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// flateLevelForSpeed maps Draco speed (0 fast .. 9 slow) to a flate level.
func flateLevelForSpeed(speed int) int {
	l := speed
	if l < 1 {
		l = 1
	}
	if l > 9 {
		l = 9
	}
	return l
}

func sortUint64(s []uint64) {
	// Simple LSD radix sort on bytes — O(n) and allocation-bounded, fast
	// for the million-point clouds full scenes produce.
	if len(s) < 64 {
		insertionSort(s)
		return
	}
	buf := make([]uint64, len(s))
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [257]int
		allZero := true
		for _, v := range s {
			bb := (v >> shift) & 0xFF
			if bb != 0 {
				allZero = false
			}
			counts[bb+1]++
		}
		if allZero && shift > 0 {
			break
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for _, v := range s {
			bb := (v >> shift) & 0xFF
			buf[counts[bb]] = v
			counts[bb]++
		}
		copy(s, buf)
	}
}

func insertionSort(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
