package draco

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// deflate compresses b at the given flate level.
func deflate(b []byte, level int) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// inflate decompresses deflate data.
func inflate(b []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("draco: inflate: %w", err)
	}
	return out, nil
}
