package draco

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// deflate compresses b at the given flate level.
func deflate(b []byte, level int) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// maxInflateBytes bounds inflated payloads so crafted inputs cannot act as
// decompression bombs. Real payloads are ~16 bytes per point; 256 MB covers
// clouds far beyond the full-scale 700k-point frames.
const maxInflateBytes = 256 << 20

// inflate decompresses deflate data, erroring past maxInflateBytes.
func inflate(b []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, maxInflateBytes+1))
	if err != nil {
		return nil, fmt.Errorf("draco: inflate: %w", err)
	}
	if len(out) > maxInflateBytes {
		return nil, fmt.Errorf("draco: payload exceeds %d-byte bound", maxInflateBytes)
	}
	return out, nil
}
