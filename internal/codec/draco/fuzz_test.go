package draco

import (
	"math/rand"
	"testing"
)

// FuzzDecode hardens the compressed-cloud parser: arbitrary bytes must
// return an error or a decodable cloud — never panic, and never allocate
// unboundedly (point counts and octree expansion are capped against the
// payload size before any allocation).
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	data, err := Encode(randCloud(rng, 200, 2.0), DefaultParams())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	fast, err := Encode(randCloud(rng, 50, 1.0), Params{QuantBits: 8, Speed: 9, ColorBits: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fast)
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := Decode(b)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil cloud without error")
		}
		if c.Len() > len(b)*8 {
			t.Fatalf("%d points decoded from %d bytes", c.Len(), len(b))
		}
	})
}
