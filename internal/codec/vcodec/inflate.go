package vcodec

import "fmt"

// Allocation-free DEFLATE (RFC 1951) decoder. The encoder compresses
// packet payloads with compress/flate, whose *reader* rebuilds its Huffman
// tables with fresh slices on every dynamic block — ~80 heap objects per
// 4K frame, the last allocation source on the steady-state decode path.
// This decoder keeps every table, the bit reader, and the output buffer
// inside the inflater value, so repeated decompress calls allocate only
// when the output buffer must grow. The input is standard deflate; only
// the decoding machinery is ours.
//
// Decoding is table-driven: a 10-bit primary lookup resolves all codes of
// length ≤ 10 in one step, and longer codes (rare: deflate's max is 15)
// fall back to a canonical bit-by-bit walk over the per-length counts.

const (
	inflMaxBits  = 15 // longest Huffman code deflate permits
	inflPrimBits = 10 // primary lookup width
	maxLitSyms   = 288
	maxDistSyms  = 30
)

// huffTab is a reusable Huffman decoding table. prim maps the next
// inflPrimBits of input (LSB-first, as deflate packs code bits) to
// sym<<4|len for codes of length ≤ inflPrimBits; zero entries mean the
// code is longer or invalid, and decodeSlow resolves it canonically.
type huffTab struct {
	counts  [inflMaxBits + 1]uint16 // codes per length
	symbols [maxLitSyms]uint16      // symbols in canonical code order
	prim    [1 << inflPrimBits]uint16
}

// build constructs the decoding table from canonical code lengths.
// Over-subscribed length sets are rejected; incomplete sets are permitted
// (deflate allows a single-code distance table) and unused codes surface
// as decode errors.
func (t *huffTab) build(lens []uint8) error {
	for i := range t.counts {
		t.counts[i] = 0
	}
	for _, l := range lens {
		t.counts[l]++
	}
	if int(t.counts[0]) == len(lens) {
		// No codes at all: legal only if the table is never consulted.
		for i := range t.prim {
			t.prim[i] = 0
		}
		return nil
	}
	left := 1
	for l := 1; l <= inflMaxBits; l++ {
		left <<= 1
		left -= int(t.counts[l])
		if left < 0 {
			return fmt.Errorf("vcodec: over-subscribed huffman code")
		}
	}
	var offs [inflMaxBits + 1]uint16
	for l := 1; l < inflMaxBits; l++ {
		offs[l+1] = offs[l] + t.counts[l]
	}
	for sym, l := range lens {
		if l != 0 {
			t.symbols[offs[l]] = uint16(sym)
			offs[l]++
		}
	}
	for i := range t.prim {
		t.prim[i] = 0
	}
	// Walk symbols in canonical order, tracking each code's value, and
	// replicate short codes across every primary index whose low bits
	// spell the code (bit-reversed, since deflate emits codes MSB-first
	// into an LSB-first bit stream).
	code := 0
	idx := 0
	for l := 1; l <= inflPrimBits; l++ {
		for k := uint16(0); k < t.counts[l]; k++ {
			sym := t.symbols[idx]
			rc := 0
			for b := 0; b < l; b++ {
				rc |= (code >> b & 1) << (l - 1 - b)
			}
			entry := sym<<4 | uint16(l)
			for j := rc; j < len(t.prim); j += 1 << l {
				t.prim[j] = entry
			}
			idx++
			code++
		}
		code <<= 1
	}
	return nil
}

// inflBitReader reads LSB-first bits from a byte slice through a 64-bit
// accumulator. It lives inside the inflater so it never escapes.
type inflBitReader struct {
	in   []byte
	pos  int
	bits uint64
	n    uint
}

func (r *inflBitReader) fill() {
	for r.n <= 56 && r.pos < len(r.in) {
		r.bits |= uint64(r.in[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
}

// take consumes k ≤ 32 bits, returning an error on truncated input.
func (r *inflBitReader) take(k uint) (uint32, error) {
	if r.n < k {
		r.fill()
		if r.n < k {
			return 0, fmt.Errorf("vcodec: truncated deflate stream")
		}
	}
	v := uint32(r.bits) & (1<<k - 1)
	r.bits >>= k
	r.n -= k
	return v, nil
}

// decode resolves one Huffman symbol: primary table first, canonical walk
// for codes longer than inflPrimBits.
func (r *inflBitReader) decode(t *huffTab) (int, error) {
	if r.n < inflPrimBits {
		r.fill()
	}
	if e := t.prim[uint32(r.bits)&(1<<inflPrimBits-1)]; e != 0 && uint(e&15) <= r.n {
		r.bits >>= uint(e & 15)
		r.n -= uint(e & 15)
		return int(e >> 4), nil
	}
	// Slow path: consume one bit at a time, comparing against the
	// canonical first-code of each length.
	code, first, index := 0, 0, 0
	for l := 1; l <= inflMaxBits; l++ {
		b, err := r.take(1)
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := int(t.counts[l])
		if code-first < count {
			return int(t.symbols[index+code-first]), nil
		}
		index += count
		first += count
		first <<= 1
		code <<= 1
	}
	return 0, fmt.Errorf("vcodec: invalid huffman code")
}

// Length and distance symbol expansions (RFC 1951 §3.2.5).
var (
	lenBase   = [29]uint16{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
	lenExtra  = [29]uint8{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
	distBase  = [30]uint16{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
	distExtra = [30]uint8{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}
	// Order in which code-length code lengths are stored in a dynamic header.
	clOrder = [19]uint8{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}
)

// inflater is per-decoder reusable decompression state. The returned
// payload aliases an internal buffer valid until the next decompress call.
type inflater struct {
	br        inflBitReader
	lit, dist huffTab
	cl        huffTab // code-length code table for dynamic headers
	lens      [maxLitSyms + maxDistSyms]uint8
	out       []byte
	fixedOK   bool
	fixedLit  huffTab
	fixedDist huffTab
}

// decompress inflates b, failing once the output exceeds max bytes — the
// decompression-bomb guard: a frame payload has a configuration-derived
// size ceiling, so anything larger is corrupt by construction.
func (n *inflater) decompress(b []byte, max int) ([]byte, error) {
	n.br = inflBitReader{in: b}
	n.out = n.out[:0]
	for {
		hdr, err := n.br.take(3)
		if err != nil {
			return nil, err
		}
		final := hdr&1 != 0
		switch hdr >> 1 {
		case 0:
			err = n.stored(max)
		case 1:
			if !n.fixedOK {
				n.buildFixed()
			}
			err = n.block(&n.fixedLit, &n.fixedDist, max)
		case 2:
			err = n.dynamic(max)
		default:
			err = fmt.Errorf("vcodec: reserved deflate block type")
		}
		if err != nil {
			return nil, err
		}
		if final {
			return n.out, nil
		}
	}
}

// stored copies a raw block (byte-aligned LEN/~LEN header).
func (n *inflater) stored(max int) error {
	r := &n.br
	r.bits >>= r.n % 8 // discard to byte boundary
	r.n -= r.n % 8
	v, err := r.take(32)
	if err != nil {
		return err
	}
	length := int(v & 0xFFFF)
	if int(v>>16) != length^0xFFFF {
		return fmt.Errorf("vcodec: stored block length check failed")
	}
	if len(n.out)+length > max {
		return fmt.Errorf("vcodec: payload exceeds %d-byte bound", max)
	}
	// Drain whole bytes still in the accumulator, then bulk-copy.
	for length > 0 && r.n >= 8 {
		n.out = append(n.out, byte(r.bits))
		r.bits >>= 8
		r.n -= 8
		length--
	}
	if length > len(r.in)-r.pos {
		return fmt.Errorf("vcodec: truncated stored block")
	}
	n.out = append(n.out, r.in[r.pos:r.pos+length]...)
	r.pos += length
	return nil
}

// buildFixed constructs the static-Huffman tables once per inflater.
func (n *inflater) buildFixed() {
	var lens [maxLitSyms]uint8
	for i := 0; i < 144; i++ {
		lens[i] = 8
	}
	for i := 144; i < 256; i++ {
		lens[i] = 9
	}
	for i := 256; i < 280; i++ {
		lens[i] = 7
	}
	for i := 280; i < 288; i++ {
		lens[i] = 8
	}
	n.fixedLit.build(lens[:])
	var dlens [maxDistSyms]uint8
	for i := range dlens {
		dlens[i] = 5
	}
	n.fixedDist.build(dlens[:])
	n.fixedOK = true
}

// dynamic reads a dynamic-Huffman header and inflates its block.
func (n *inflater) dynamic(max int) error {
	r := &n.br
	v, err := r.take(14)
	if err != nil {
		return err
	}
	hlit := int(v&0x1F) + 257
	hdist := int(v>>5&0x1F) + 1
	hclen := int(v>>10&0xF) + 4
	if hlit > maxLitSyms || hdist > maxDistSyms {
		return fmt.Errorf("vcodec: dynamic header symbol counts out of range")
	}
	var clens [19]uint8
	for i := 0; i < hclen; i++ {
		b, err := r.take(3)
		if err != nil {
			return err
		}
		clens[clOrder[i]] = uint8(b)
	}
	if err := n.cl.build(clens[:]); err != nil {
		return err
	}
	// Decode the literal+distance code lengths, with run-length symbols.
	total := hlit + hdist
	for i := 0; i < total; {
		sym, err := r.decode(&n.cl)
		if err != nil {
			return err
		}
		switch {
		case sym < 16:
			n.lens[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return fmt.Errorf("vcodec: length repeat with no previous length")
			}
			b, err := r.take(2)
			if err != nil {
				return err
			}
			prev := n.lens[i-1]
			for k := 0; k < int(b)+3; k++ {
				if i >= total {
					return fmt.Errorf("vcodec: length repeat overruns header")
				}
				n.lens[i] = prev
				i++
			}
		case sym == 17 || sym == 18:
			bits, base := uint(3), 3
			if sym == 18 {
				bits, base = 7, 11
			}
			b, err := r.take(bits)
			if err != nil {
				return err
			}
			for k := 0; k < int(b)+base; k++ {
				if i >= total {
					return fmt.Errorf("vcodec: length repeat overruns header")
				}
				n.lens[i] = 0
				i++
			}
		default:
			return fmt.Errorf("vcodec: invalid code-length symbol %d", sym)
		}
	}
	if n.lens[256] == 0 {
		return fmt.Errorf("vcodec: dynamic block has no end-of-block code")
	}
	if err := n.lit.build(n.lens[:hlit]); err != nil {
		return err
	}
	if err := n.dist.build(n.lens[hlit : hlit+hdist]); err != nil {
		return err
	}
	return n.block(&n.lit, &n.dist, max)
}

// block inflates one Huffman-coded block into n.out.
func (n *inflater) block(lit, dist *huffTab, max int) error {
	r := &n.br
	for {
		sym, err := r.decode(lit)
		if err != nil {
			return err
		}
		switch {
		case sym < 256:
			if len(n.out) >= max {
				return fmt.Errorf("vcodec: payload exceeds %d-byte bound", max)
			}
			n.out = append(n.out, byte(sym))
		case sym == 256:
			return nil
		default:
			if sym > 285 {
				return fmt.Errorf("vcodec: invalid length symbol %d", sym)
			}
			eb, err := r.take(uint(lenExtra[sym-257]))
			if err != nil {
				return err
			}
			length := int(lenBase[sym-257]) + int(eb)
			dsym, err := r.decode(dist)
			if err != nil {
				return err
			}
			if dsym >= maxDistSyms {
				return fmt.Errorf("vcodec: invalid distance symbol %d", dsym)
			}
			db, err := r.take(uint(distExtra[dsym]))
			if err != nil {
				return err
			}
			d := int(distBase[dsym]) + int(db)
			if d > len(n.out) {
				return fmt.Errorf("vcodec: distance %d beyond output", d)
			}
			if len(n.out)+length > max {
				return fmt.Errorf("vcodec: payload exceeds %d-byte bound", max)
			}
			// Byte-at-a-time copy: sources may overlap the bytes being
			// written (d < length replicates a pattern).
			start := len(n.out) - d
			for k := 0; k < length; k++ {
				n.out = append(n.out, n.out[start+k])
			}
		}
	}
}
