package vcodec

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"livo/internal/pipeline"
)

// Decode failure classes. Receivers branch on these to drive loss recovery
// (§A.1): a stale reference means a frame was skipped upstream and only a
// key frame (requested via PLI) can restart the prediction chain, while a
// corrupt packet is discarded and concealed.
var (
	// ErrCorrupt marks a packet that failed bitstream validation: truncated
	// or bit-flipped data must yield this error, never a panic.
	ErrCorrupt = errors.New("vcodec: corrupt packet")
	// ErrStaleReference marks a delta frame whose reference generation does
	// not match the decoder's state (the preceding frame was lost or
	// skipped); decoding it would silently drift.
	ErrStaleReference = errors.New("vcodec: stale reference")
)

// ExplicitZero is the sentinel for defaulted Config fields whose zero
// value selects the documented default: set MaxQP, ChromaQPOffset, or
// FlateLevel to ExplicitZero to request an actual value of 0 (e.g. chroma
// quantized like luma, or flate level 0 = stored blocks).
const ExplicitZero = -1

// Config selects the coding mode. The same Config must be used by encoder
// and decoder (in LiVo it is exchanged at session setup, like the camera
// calibration, §A.1).
type Config struct {
	Width, Height int
	NumPlanes     int // 1 (16-bit depth) or 3 (YCbCr color)
	BitDepth      int // 8 or 16
	// GOP is the key-frame interval in frames (a key frame is coded without
	// reference to the previous frame). Default 30 (one per second at 30fps).
	GOP int
	// SearchRadius is the motion search range in pixels; 0 selects
	// zero-motion inter prediction only (fast, the default — tiled camera
	// content has mostly static block positions, §3.2).
	SearchRadius int
	// MinQP/MaxQP bound the rate controller (defaults 0..51). Step sizes
	// scale with bit depth (see qpToStep), so the same QP range covers
	// 8-bit and 16-bit planes. MaxQP accepts ExplicitZero to pin the
	// controller at QP 0.
	MinQP, MaxQP int
	// ChromaQPOffset is added to the QP for planes 1 and 2, quantizing
	// chroma more coarsely than luma (default +6; ExplicitZero codes
	// chroma at the luma QP). This is the codec property LiVo's depth
	// encoding exploits: content in the Y plane is distorted less (§3.2).
	ChromaQPOffset int
	// Chroma420 codes planes 1 and 2 at half resolution (4:2:0), the
	// standard conferencing configuration. Ignored for single-plane
	// streams.
	Chroma420 bool
	// FlateLevel is the entropy-coder effort (flate level 1..9, default 4;
	// ExplicitZero selects flate level 0, i.e. stored blocks).
	FlateLevel int
}

func (c Config) withDefaults() Config {
	if c.GOP <= 0 {
		c.GOP = 30
	}
	switch c.MaxQP {
	case 0:
		c.MaxQP = 51
	case ExplicitZero:
		c.MaxQP = 0
	}
	switch c.ChromaQPOffset {
	case 0:
		c.ChromaQPOffset = 6
	case ExplicitZero:
		c.ChromaQPOffset = 0
	}
	switch c.FlateLevel {
	case 0:
		c.FlateLevel = 4
	case ExplicitZero:
		c.FlateLevel = 0
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("vcodec: invalid size %dx%d", c.Width, c.Height)
	}
	if c.NumPlanes != 1 && c.NumPlanes != 3 {
		return fmt.Errorf("vcodec: NumPlanes must be 1 or 3, got %d", c.NumPlanes)
	}
	if c.BitDepth != 8 && c.BitDepth != 16 {
		return fmt.Errorf("vcodec: BitDepth must be 8 or 16, got %d", c.BitDepth)
	}
	return nil
}

// ColorConfig returns the 3-plane 8-bit 4:2:0 configuration for a color
// stream.
func ColorConfig(w, h int) Config {
	return Config{Width: w, Height: h, NumPlanes: 3, BitDepth: 8, Chroma420: true}
}

// planeDims returns the coded resolution of plane p.
func (c Config) planeDims(p int) (int, int) {
	if p > 0 && c.Chroma420 {
		return (c.Width + 1) / 2, (c.Height + 1) / 2
	}
	return c.Width, c.Height
}

// codedPicture is the codec-internal reference state: planes at their coded
// (possibly subsampled) resolutions.
type codedPicture struct {
	planes [][]int32
}

// newCodedPicture allocates a zeroed picture at c's coded resolutions.
func newCodedPicture(c Config) *codedPicture {
	cp := &codedPicture{planes: make([][]int32, c.NumPlanes)}
	for p := range cp.planes {
		pw, ph := c.planeDims(p)
		cp.planes[p] = make([]int32, pw*ph)
	}
	return cp
}

// expandSpan is one row range of coded→full-resolution expansion work:
// output rows [y0, y1) of one plane. Spans are fixed-height (expandRows)
// regardless of worker count, so the work decomposition — and therefore
// every output byte — is identical at any GOMAXPROCS.
type expandSpan struct {
	plane  int
	y0, y1 int
}

// expandRows is the span height in output rows. A 4K plane splits into
// ~17 spans — enough to spread the ~40 MB of copies across cores without
// measurable per-span overhead.
const expandRows = 128

// appendExpandSpans slices the full-resolution output rows of every plane
// into spans.
func (c Config) appendExpandSpans(jobs []expandSpan) []expandSpan {
	for p := 0; p < c.NumPlanes; p++ {
		for y := 0; y < c.Height; y += expandRows {
			y1 := y + expandRows
			if y1 > c.Height {
				y1 = c.Height
			}
			jobs = append(jobs, expandSpan{plane: p, y0: y, y1: y1})
		}
	}
	return jobs
}

// expander runs the coded→full-resolution expansion with parallel row
// spans. It lives on the codec instance so the span table and the ParFor
// closure are built once and reused — the per-frame expand is
// allocation-free. Spans write disjoint output rows and only read cp, so
// the result is byte-identical to a sequential expansion at any worker
// count.
type expander struct {
	cfg  Config
	jobs []expandSpan
	cp   *codedPicture
	f    *Frame
	fn   func(int)
}

// expand expands cp into f.
func (e *expander) expand(cfg Config, cp *codedPicture, f *Frame) {
	if e.fn == nil {
		e.cfg = cfg
		e.jobs = cfg.appendExpandSpans(e.jobs[:0])
		e.fn = e.run
	}
	e.cp, e.f = cp, f
	pipeline.ParFor(len(e.jobs), e.fn)
	e.cp, e.f = nil, nil
}

// run processes span i of the current expand call.
func (e *expander) run(i int) {
	s := e.jobs[i]
	c := e.cfg
	pw, ph := c.planeDims(s.plane)
	if pw == c.Width && ph == c.Height {
		copy(e.f.Planes[s.plane][s.y0*c.Width:s.y1*c.Width],
			e.cp.planes[s.plane][s.y0*pw:s.y1*pw])
		return
	}
	upsample2xRows(e.cp.planes[s.plane], pw, ph, e.f.Planes[s.plane], c.Width, s.y0, s.y1)
}

// downsample2x box-filters a plane into dst at (dw, dh) = ceil(w/2) x
// ceil(h/2).
func downsample2x(src []int32, w, h int, dst []int32, dw, dh int) {
	// Interior 2x2 blocks are fully in-bounds; only the last column/row of
	// odd-sized planes need the clipped tap count.
	ex, ey := w/2, h/2
	for y := 0; y < ey; y++ {
		r0 := src[(2*y)*w : (2*y)*w+w]
		r1 := src[(2*y+1)*w : (2*y+1)*w+w]
		d := dst[y*dw : y*dw+dw]
		for x := 0; x < ex; x++ {
			s := r0[2*x] + r0[2*x+1] + r1[2*x] + r1[2*x+1]
			d[x] = (s + 2) / 4
		}
		if dw > ex { // odd width: single-column taps
			d[ex] = (r0[w-1] + r1[w-1] + 1) / 2
		}
	}
	if dh > ey { // odd height: single-row taps
		r0 := src[(h-1)*w : h*w]
		d := dst[ey*dw : ey*dw+dw]
		for x := 0; x < ex; x++ {
			d[x] = (r0[2*x] + r0[2*x+1] + 1) / 2
		}
		if dw > ex {
			d[ex] = r0[w-1]
		}
	}
}

// upsample2x nearest-neighbour expands a plane back to (w, h).
func upsample2x(src []int32, sw, sh int, dst []int32, w, h int) {
	upsample2xRows(src, sw, sh, dst, w, 0, h)
}

// upsample2xRows nearest-neighbour expands output rows [y0, y1) only.
func upsample2xRows(src []int32, sw, sh int, dst []int32, w, y0, y1 int) {
	for y := y0; y < y1; y++ {
		sy := y / 2
		if sy >= sh {
			sy = sh - 1
		}
		for x := 0; x < w; x++ {
			sx := x / 2
			if sx >= sw {
				sx = sw - 1
			}
			dst[y*w+x] = src[sy*sw+sx]
		}
	}
}

// DepthConfig returns the 1-plane 16-bit configuration for a depth stream
// (the Y444_16LE analogue, §3.2).
func DepthConfig(w, h int) Config {
	return Config{Width: w, Height: h, NumPlanes: 1, BitDepth: 16}
}

// Packet is one encoded frame.
type Packet struct {
	Data []byte // self-contained compressed frame
	Key  bool   // key (intra-only) frame
	Seq  uint32 // frame sequence number
	QP   int    // quantization parameter the rate controller chose
	// Rung is quality-ladder metadata (not part of the bitstream): which
	// ladder rung this packet encodes, 0 for single-rung streams. Receivers
	// use it to route quarter-resolution rungs through the upsampling path.
	Rung uint8
}

// SizeBytes returns the packet payload size.
func (p *Packet) SizeBytes() int { return len(p.Data) }

// block prediction modes.
const (
	modeInterZero = 0 // predict from co-located block of previous frame
	modeIntra     = 1 // predict mid-level constant
	modeInterMV   = 2 // predict from motion-compensated block
)

// Encoder is a stateful single-stream encoder. Not safe for concurrent use.
//
// The hot path is stripe-parallel (see stripe.go) and allocation-free in
// steady state: reference pictures ping-pong between two arena pictures,
// stripe writers and subsampling scratch come from a per-encoder freelist,
// and the deflate state is reused across frames. The only per-frame
// allocation is the returned Packet payload.
type Encoder struct {
	cfg  Config
	prev *codedPicture // previous reconstructed picture (coded dims)
	seq  uint32
	// forceKey is atomic because ForceKeyFrame arrives from the feedback
	// goroutine (PLI path) while Encode runs on the frame loop; everything
	// else on the encoder is single-goroutine.
	forceKey atomic.Bool
	// Rate model: log2(bytes) ≈ modelA - QP/6. Updated after every frame.
	modelA   float64
	hasModel bool
	lastQP   int
	// prevBackup holds the reference state from before the current encode
	// so a corrective re-encode can roll back.
	prevBackup *codedPicture

	// Steady-state arena. pics are the two reconstruction buffers the
	// prev pointer ping-pongs between; reconFrame caches the LastRecon
	// output; def holds reusable deflate state; scr owns the stripe
	// writers and chroma buffers; the slices below are per-frame job
	// scratch reused across encodes.
	pics       [2]*codedPicture
	reconFrame *Frame
	def        deflater
	scr        scratch
	srcPlanes  [][]int32
	planes     []planeCode
	jobs       []encStripe
	exp        expander
}

// NewEncoder creates an encoder; the config is validated and defaulted.
func NewEncoder(cfg Config) (*Encoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{cfg: cfg, lastQP: 26}
	e.pics[0] = newCodedPicture(cfg)
	e.pics[1] = newCodedPicture(cfg)
	return e, nil
}

// Config returns the encoder's (defaulted) configuration.
func (e *Encoder) Config() Config { return e.cfg }

// ForceKeyFrame makes the next encoded frame a key frame — the reaction to
// a Picture Loss Indication from the receiver (§A.1). Unlike the rest of
// the encoder it is safe to call concurrently with Encode, because PLIs
// arrive on the session's feedback goroutine.
func (e *Encoder) ForceKeyFrame() { e.forceKey.Store(true) }

// LastRecon returns the encoder's reconstruction of the last encoded frame
// (what the decoder will see). LiVo's bandwidth splitter compares this to
// the source frame to estimate encoding quality without a separate decode
// (§3.3 runs parallel decoders on a GPU; sharing the encoder's recon is the
// CPU equivalent).
//
// The returned frame is owned by the encoder and overwritten by the next
// LastRecon call — the split controller probes it once per tick, so this
// avoids allocating a full-resolution frame per frame. Callers that need
// to retain it must Clone it.
func (e *Encoder) LastRecon() *Frame {
	if e.prev == nil {
		return nil
	}
	if e.reconFrame == nil {
		e.reconFrame = NewFrame(e.cfg.Width, e.cfg.Height, e.cfg.NumPlanes)
	}
	e.exp.expand(e.cfg, e.prev, e.reconFrame)
	return e.reconFrame
}

// EncodeQP encodes f at a fixed quantization parameter, bypassing rate
// control (used by the LiVo-NoAdapt/Starline baseline, §4.5).
func (e *Encoder) EncodeQP(f *Frame, qp int) (*Packet, error) {
	start := time.Now()
	pkt, err := e.encode(f, qp)
	if err == nil {
		telEncodeSeconds.ObserveDuration(time.Since(start))
		telEncodedBytes.Add(int64(pkt.SizeBytes()))
	}
	return pkt, err
}

// Encode encodes f so the packet is close to targetBytes. This is the
// "direct" rate adaptation of §1/§3.3: the caller passes the byte budget
// derived from the congestion controller's bandwidth estimate and the frame
// rate, and the encoder picks QP internally (re-encoding once if the first
// attempt misses badly, as real rate-controlled encoders do).
func (e *Encoder) Encode(f *Frame, targetBytes int) (*Packet, error) {
	if targetBytes <= 0 {
		return nil, fmt.Errorf("vcodec: non-positive target %d", targetBytes)
	}
	start := time.Now()
	qp := e.lastQP
	if e.hasModel {
		qp = int(math.Round(6 * (e.modelA - math.Log2(float64(targetBytes)))))
	}
	qp = clampQP(qp, e.cfg.MinQP, e.cfg.MaxQP)

	pkt, err := e.encode(f, qp)
	if err != nil {
		return nil, err
	}
	// Corrective re-encodes when the model missed: near the rate floor the
	// bytes-vs-QP curve flattens (per-block overhead dominates), so a
	// single slope-based correction may fall short — iterate with growing
	// steps until the frame fits or QP saturates. Key frames are allowed
	// 2x slack (they are periodic and the jitter buffer absorbs them, like
	// real conferencing encoders).
	limit := 1.2
	if pkt.Key {
		limit = 2.0
	}
	for attempt := 0; attempt < 3; attempt++ {
		ratio := float64(pkt.SizeBytes()) / float64(targetBytes)
		if ratio <= limit || qp >= e.cfg.MaxQP {
			break
		}
		stepUp := int(math.Ceil(6 * math.Log2(ratio)))
		if stepUp < 4 {
			stepUp = 4
		}
		qp2 := clampQP(qp+stepUp, e.cfg.MinQP, e.cfg.MaxQP)
		if qp2 == qp {
			break
		}
		// Roll back state from the previous attempt before re-encoding.
		e.seq--
		if pkt.Key {
			e.forceKey.Store(true)
		}
		e.prev = e.prevBackup
		pkt, err = e.encode(f, qp2)
		if err != nil {
			return nil, err
		}
		qp = qp2
	}
	telEncodeSeconds.ObserveDuration(time.Since(start))
	telEncodedBytes.Add(int64(pkt.SizeBytes()))
	return pkt, nil
}

func clampQP(qp, lo, hi int) int {
	if qp < lo {
		return lo
	}
	if qp > hi {
		return hi
	}
	return qp
}

// encode performs one full encode at the given QP and updates state.
func (e *Encoder) encode(f *Frame, qp int) (*Packet, error) {
	if f.W != e.cfg.Width || f.H != e.cfg.Height || len(f.Planes) != e.cfg.NumPlanes {
		return nil, fmt.Errorf("vcodec: frame %dx%d/%dp does not match config %dx%d/%dp",
			f.W, f.H, len(f.Planes), e.cfg.Width, e.cfg.Height, e.cfg.NumPlanes)
	}
	qp = clampQP(qp, e.cfg.MinQP, e.cfg.MaxQP)
	// Swap (not Load) so a pending force request is always consumed here,
	// even when this frame is a key frame for another reason.
	forced := e.forceKey.Swap(false)
	key := e.prev == nil || forced || (e.cfg.GOP > 0 && int(e.seq)%e.cfg.GOP == 0)
	e.prevBackup = e.prev

	// Coded-resolution source: full-resolution planes alias the caller's
	// frame, subsampled chroma goes through reused scratch.
	e.scr.reset()
	e.srcPlanes = e.srcPlanes[:0]
	for p := range f.Planes {
		pw, ph := e.cfg.planeDims(p)
		if pw == f.W && ph == f.H {
			e.srcPlanes = append(e.srcPlanes, f.Planes[p])
			continue
		}
		buf := e.scr.getPlaneBuf(pw * ph)
		downsample2x(f.Planes[p], f.W, f.H, buf, pw, ph)
		e.srcPlanes = append(e.srcPlanes, buf)
	}

	// Reconstruct into whichever arena picture is not the live reference.
	recon := e.pics[0]
	if recon == e.prev {
		recon = e.pics[1]
	}

	maxVal := int32(1<<e.cfg.BitDepth - 1)
	mid := int32(1 << (e.cfg.BitDepth - 1))
	e.planes = e.planes[:0]
	for p := range f.Planes {
		pw, ph := e.cfg.planeDims(p)
		pqp := qp
		if p > 0 {
			pqp = clampQP(qp+e.cfg.ChromaQPOffset, e.cfg.MinQP, e.cfg.MaxQP)
		}
		var prevPlane []int32
		if !key {
			prevPlane = e.prev.planes[p]
		}
		e.planes = append(e.planes, planeCode{
			src: e.srcPlanes[p], prev: prevPlane, recon: recon.planes[p],
			w: pw, h: ph,
			maxVal: maxVal, mid: mid,
			step:   qpToStep(pqp, e.cfg.BitDepth),
			radius: e.cfg.SearchRadius,
		})
	}
	e.jobs = e.jobs[:0]
	for p := range e.planes {
		e.jobs = appendEncStripes(e.jobs, &e.planes[p], &e.scr)
	}
	runEncStripes(e.jobs)

	// Assemble payload: three length-prefixed streams, deflated. Stripe
	// buffers are concatenated in (plane, stripe) order — the order the
	// sequential coder emitted symbols — so the bitstream is byte-identical
	// for any worker count.
	payload := e.scr.getWriter()
	var mLen, vLen, cLen uint64
	for i := range e.jobs {
		mLen += uint64(len(e.jobs[i].modes.buf))
		vLen += uint64(len(e.jobs[i].mvs.buf))
		cLen += uint64(len(e.jobs[i].coeffs.buf))
	}
	payload.writeUvarint(mLen)
	for i := range e.jobs {
		payload.buf = append(payload.buf, e.jobs[i].modes.buf...)
	}
	payload.writeUvarint(vLen)
	for i := range e.jobs {
		payload.buf = append(payload.buf, e.jobs[i].mvs.buf...)
	}
	payload.writeUvarint(cLen)
	for i := range e.jobs {
		payload.buf = append(payload.buf, e.jobs[i].coeffs.buf...)
	}

	hdr := e.scr.getWriter()
	hdr.writeByte('V')
	flags := byte(0)
	if key {
		flags |= 1
	}
	hdr.writeByte(flags)
	hdr.writeUvarint(uint64(e.seq))
	hdr.writeUvarint(uint64(qp))

	data, err := e.def.compress(hdr.buf, payload.buf, e.cfg.FlateLevel)
	if err != nil {
		return nil, err
	}

	pkt := &Packet{Data: data, Key: key, Seq: e.seq, QP: qp}
	e.seq++
	e.prev = recon
	// Update the rate model (EWMA over log-domain intercepts).
	a := math.Log2(float64(len(data))) + float64(qp)/6
	if !e.hasModel {
		e.modelA = a
		e.hasModel = true
	} else {
		e.modelA = 0.7*e.modelA + 0.3*a
	}
	e.lastQP = qp
	return pkt, nil
}

// gather copies the block at (x0, y0) from plane into dst with edge
// clamping for out-of-bounds samples.
func gather(plane []int32, w, h, x0, y0 int, dst *[blockSize * blockSize]int32) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy < 0 {
			sy = 0
		}
		if sy >= h {
			sy = h - 1
		}
		row := plane[sy*w:]
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx < 0 {
				sx = 0
			}
			if sx >= w {
				sx = w - 1
			}
			dst[y*blockSize+x] = row[sx]
		}
	}
}

// scatter writes pred+residual (clamped) into the in-bounds part of the
// block at (x0, y0).
func scatter(plane []int32, w, h, x0, y0 int, pred *[blockSize * blockSize]int32, resid *[blockSize * blockSize]float64, maxVal int32) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= h {
			break
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= w {
				break
			}
			v := pred[y*blockSize+x] + int32(math.Round(resid[y*blockSize+x]))
			plane[sy*w+sx] = clampI32(v, 0, maxVal)
		}
	}
}

// scatterPredDelta writes pred plus a constant residual delta — the
// DC-only fast path, bit-identical to scatter over a constant plane.
func scatterPredDelta(plane []int32, w, h, x0, y0 int, pred *[blockSize * blockSize]int32, delta, maxVal int32) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= h {
			break
		}
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= w {
				break
			}
			plane[sy*w+sx] = clampI32(pred[y*blockSize+x]+delta, 0, maxVal)
		}
	}
}

func sad(a, b *[blockSize * blockSize]int32) int64 {
	var s int64
	for i := range a {
		d := int64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func sadConst(a *[blockSize * blockSize]int32, c int32) int64 {
	var s int64
	for i := range a {
		d := int64(a[i] - c)
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func fillConst(b *[blockSize * blockSize]int32, c int32) {
	for i := range b {
		b[i] = c
	}
}

// Decoder is a stateful single-stream decoder. Packets must be fed in
// encode order; a key packet resets the prediction chain. Not safe for
// concurrent use.
//
// Decoding runs in two phases: a serial symbol parse (the varint streams
// have no random access) into reused per-block tables, then
// stripe-parallel reconstruction (see stripe.go). Reference pictures
// ping-pong between two arena pictures, the inflate state is reused, and
// the output frame is a per-decoder arena — the steady-state decode path
// does not allocate.
//
// The returned Frame is owned by the decoder and overwritten by the next
// Decode call (mirroring Encoder.LastRecon); callers that retain a frame
// across decodes must Clone it. The receive pipeline converts it to an
// RGB/depth image immediately, so it never holds the frame.
type Decoder struct {
	cfg    Config
	prev   *codedPicture
	refSeq uint32 // sequence number of prev (valid when prev != nil)

	pics    [2]*codedPicture
	out     *Frame
	inf     inflater
	scr     scratch
	planes  []planeDecode
	jobs    []decStripe
	jobFn   func(int) // cached ParFor body over d.jobs
	payload byteReader
	streams [3]byteReader
	exp     expander
}

// NewDecoder creates a decoder with the same configuration as the encoder.
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Decoder{cfg: cfg}
	d.pics[0] = newCodedPicture(cfg)
	d.pics[1] = newCodedPicture(cfg)
	return d, nil
}

// HasReference reports whether the decoder holds a decoded reference
// picture (i.e. a delta frame could be decoded next).
func (d *Decoder) HasReference() bool { return d.prev != nil }

// RefSeq returns the sequence number of the current reference picture
// (meaningful only when HasReference is true).
func (d *Decoder) RefSeq() uint32 { return d.refSeq }

// maxPayloadBytes bounds the inflated payload so a crafted packet cannot
// act as a decompression bomb: per block the streams hold at most one mode
// byte, two motion-vector varints, a count varint, and blockSize^2
// coefficient varints (≤ 10 bytes each), plus three stream-length
// prefixes.
func (c Config) maxPayloadBytes() int {
	samples := 0
	for p := 0; p < c.NumPlanes; p++ {
		pw, ph := c.planeDims(p)
		samples += pw * ph
	}
	return 64 + samples*12
}

// decode is the uninstrumented decode path; Decode (telemetry.go) wraps it
// with latency/error telemetry.
func (d *Decoder) decode(pkt *Packet) (*Frame, error) {
	r := &byteReader{buf: pkt.Data}
	magic, err := r.readByte()
	if err != nil || magic != 'V' {
		return nil, fmt.Errorf("vcodec: bad packet magic: %w", ErrCorrupt)
	}
	flags, err := r.readByte()
	if err != nil {
		return nil, fmt.Errorf("vcodec: truncated flags: %w", ErrCorrupt)
	}
	key := flags&1 != 0
	seq64, err := r.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("vcodec: truncated seq: %w", ErrCorrupt)
	}
	if seq64 > math.MaxUint32 {
		return nil, fmt.Errorf("vcodec: sequence %d out of range: %w", seq64, ErrCorrupt)
	}
	seq := uint32(seq64)
	qp64, err := r.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("vcodec: truncated qp: %w", ErrCorrupt)
	}
	if qp64 > 255 {
		return nil, fmt.Errorf("vcodec: qp %d out of range: %w", qp64, ErrCorrupt)
	}
	// The encoder clamps QP into [MinQP, MaxQP] before writing it, so
	// clamping here is a no-op for valid streams and bounds the quantizer
	// step for corrupted ones.
	qp := clampQP(int(qp64), d.cfg.MinQP, d.cfg.MaxQP)
	if !key {
		// Reference-generation check (§A.1): a delta frame is only valid
		// against the reconstruction of the immediately preceding frame.
		// Decoding it against anything older (a frame was skipped) or
		// nothing at all would drift silently.
		if d.prev == nil {
			return nil, fmt.Errorf("vcodec: delta frame %d without reference: %w", seq, ErrStaleReference)
		}
		if seq != d.refSeq+1 {
			return nil, fmt.Errorf("vcodec: delta frame %d against reference %d: %w", seq, d.refSeq, ErrStaleReference)
		}
	}

	payload, err := d.inf.decompress(pkt.Data[r.pos:], d.cfg.maxPayloadBytes())
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrCorrupt)
	}
	// The three symbol streams live in decoder-owned readers so the
	// steady-state path does not allocate them per frame.
	pr := &d.payload
	*pr = byteReader{buf: payload}
	for i := range d.streams {
		n, err := pr.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrCorrupt)
		}
		if n > uint64(len(pr.buf)) || pr.pos+int(n) > len(pr.buf) {
			return nil, fmt.Errorf("vcodec: stream overruns payload: %w", ErrCorrupt)
		}
		d.streams[i] = byteReader{buf: pr.buf[pr.pos : pr.pos+int(n)]}
		pr.pos += int(n)
	}
	modes, mvs, coeffs := &d.streams[0], &d.streams[1], &d.streams[2]

	cfg := d.cfg
	recon := d.pics[0]
	if recon == d.prev {
		recon = d.pics[1]
	}

	// Phase 1: serial symbol parse into reused per-block tables.
	d.scr.reset()
	var parsed [3]*parsedPlane
	for p := 0; p < cfg.NumPlanes; p++ {
		pw, ph := cfg.planeDims(p)
		bx := (pw + blockSize - 1) / blockSize
		by := (ph + blockSize - 1) / blockSize
		pp := d.scr.getParsed(bx * by)
		parsed[p] = pp
		if err := parsePlane(pp, bx*by, key, modes, mvs, coeffs); err != nil {
			return nil, fmt.Errorf("vcodec: plane %d: %v: %w", p, err, ErrCorrupt)
		}
	}
	// All three streams must be consumed exactly: leftover symbols mean the
	// payload does not describe this configuration's block grid.
	if modes.pos != len(modes.buf) || mvs.pos != len(mvs.buf) || coeffs.pos != len(coeffs.buf) {
		return nil, fmt.Errorf("vcodec: trailing symbols after parse: %w", ErrCorrupt)
	}

	// Phase 2: stripe-parallel reconstruction. The reference (d.prev) is
	// only read, recon stripes are disjoint, and d.prev is swapped only on
	// success — a failed parse above leaves the decoder state untouched.
	maxVal := int32(1<<cfg.BitDepth - 1)
	mid := int32(1 << (cfg.BitDepth - 1))
	d.planes = d.planes[:0]
	for p := 0; p < cfg.NumPlanes; p++ {
		pw, ph := cfg.planeDims(p)
		pqp := qp
		if p > 0 {
			pqp = clampQP(qp+cfg.ChromaQPOffset, cfg.MinQP, cfg.MaxQP)
		}
		var prevPlane []int32
		if !key {
			prevPlane = d.prev.planes[p]
		}
		d.planes = append(d.planes, planeDecode{
			pp: parsed[p], prev: prevPlane, recon: recon.planes[p],
			w: pw, h: ph,
			maxVal: maxVal, mid: mid,
			step:   qpToStep(pqp, cfg.BitDepth),
		})
	}
	d.jobs = d.jobs[:0]
	for p := range d.planes {
		d.jobs = appendDecStripes(d.jobs, &d.planes[p])
	}
	if d.jobFn == nil {
		d.jobFn = func(i int) { d.jobs[i].decode() }
	}
	pipeline.ParFor(len(d.jobs), d.jobFn)

	d.prev = recon
	d.refSeq = seq
	if d.out == nil {
		d.out = NewFrame(cfg.Width, cfg.Height, cfg.NumPlanes)
	}
	d.exp.expand(cfg, recon, d.out)
	return d.out, nil
}
