package vcodec

import (
	"fmt"
	"math"

	"livo/internal/pipeline"
)

// Quality ladder: one source frame encoded once at K quality rungs so an
// SFU relay can serve each subscriber the best rung its downlink affords
// (DESIGN.md §8). Rung 0 is the full encode; every additional rung is
// derived from it far cheaper than an independent encode:
//
//   - a same-resolution rung re-uses rung 0's mode and motion-vector
//     streams byte-for-byte and only requantizes the transform
//     coefficients at a coarser step (a fused requantization transcode:
//     no source conversion, no SAD/mode decision, no forward DCT). Its
//     reference pictures are tracked closed-loop — the reconstruction
//     mirrors exactly what that rung's decoder computes — so the packets
//     decode with a standard Decoder at any GOMAXPROCS;
//   - a quarter-resolution rung runs a nested encoder at ceil(W/2) x
//     ceil(H/2), a quarter of the pixel work (the VoLUT approach: the
//     receiver upsamples, and quarter-res depth goes through the
//     superres path).
//
// All rungs share the frame sequence and key-frame cadence, so a relay
// can switch a subscriber between rungs at any key-frame boundary without
// the decoder noticing.

// Rung describes one quality rung of a ladder.
type Rung struct {
	// ID is the wire rung id (0..3, transport.FlagRungMask).
	ID uint8
	// QPOffset is added to rung 0's QP; coarser quantization for lower
	// rungs.
	QPOffset int
	// Quarter encodes this rung at quarter resolution (ceil(W/2) x
	// ceil(H/2)); the receiver upsamples after decoding.
	Quarter bool
}

// DefaultLadder is the standard 3-rung ladder: full quality, same
// resolution at +8 QP (~2.5x coarser steps), and quarter resolution at
// +8 QP.
func DefaultLadder() []Rung {
	return []Rung{
		{ID: 0},
		{ID: 1, QPOffset: 8},
		{ID: 2, QPOffset: 8, Quarter: true},
	}
}

// transRef is the closed-loop reference state of one requantization rung.
type transRef struct {
	pics [2]*codedPicture
	prev *codedPicture
}

// LadderEncoder encodes one stream at K quality rungs per frame. Like
// Encoder it is stateful and not safe for concurrent use.
type LadderEncoder struct {
	cfg   Config
	rungs []Rung
	enc   *Encoder // rung 0: the one full encode

	// Requantization rungs: per-rung closed-loop reference pictures plus
	// shared transcode scratch.
	trefs map[int]*transRef // rung index → reference state
	scr   scratch
	def   deflater
	tjobs []transStripe

	// Quarter rungs: nested encoders plus the derived quarter frame
	// staging (used when the caller does not supply a quarter source).
	qencs  map[int]*Encoder
	qframe *Frame
}

// NewLadderEncoder creates a ladder encoder. rungs[0] must be the identity
// rung (ID 0, no offset, full resolution); nil rungs selects
// DefaultLadder().
func NewLadderEncoder(cfg Config, rungs []Rung) (*LadderEncoder, error) {
	if rungs == nil {
		rungs = DefaultLadder()
	}
	if len(rungs) == 0 || rungs[0].ID != 0 || rungs[0].QPOffset != 0 || rungs[0].Quarter {
		return nil, fmt.Errorf("vcodec: ladder rung 0 must be the identity rung")
	}
	if len(rungs) > 4 {
		return nil, fmt.Errorf("vcodec: at most 4 rungs (wire carries 2 rung bits), got %d", len(rungs))
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	l := &LadderEncoder{
		cfg:   enc.cfg, // defaulted
		rungs: append([]Rung(nil), rungs...),
		enc:   enc,
		trefs: make(map[int]*transRef),
		qencs: make(map[int]*Encoder),
	}
	for i, r := range rungs[1:] {
		idx := i + 1
		if r.Quarter {
			qcfg := l.cfg
			qcfg.Width = (l.cfg.Width + 1) / 2
			qcfg.Height = (l.cfg.Height + 1) / 2
			qcfg.FlateLevel = auxFlateLevel(l.cfg.FlateLevel)
			qe, err := NewEncoder(qcfg)
			if err != nil {
				return nil, err
			}
			l.qencs[idx] = qe
			continue
		}
		tr := &transRef{}
		tr.pics[0] = newCodedPicture(l.cfg)
		tr.pics[1] = newCodedPicture(l.cfg)
		l.trefs[idx] = tr
	}
	return l, nil
}

// Config returns the (defaulted) rung-0 configuration.
func (l *LadderEncoder) Config() Config { return l.cfg }

// QuarterConfig returns the configuration quarter rungs encode at (and a
// matching decoder needs). ok is false when the ladder has no quarter rung.
func (l *LadderEncoder) QuarterConfig() (Config, bool) {
	for _, qe := range l.qencs {
		return qe.cfg, true
	}
	return Config{}, false
}

// Rungs returns the ladder description.
func (l *LadderEncoder) Rungs() []Rung { return l.rungs }

// Encoder returns the rung-0 encoder (quality probes read LastRecon off
// it, exactly as with a single-rung pipeline).
func (l *LadderEncoder) Encoder() *Encoder { return l.enc }

// ForceKeyFrame forces the next frame to be a key frame on every rung.
// Safe to call concurrently with EncodeLadder (the PLI path).
func (l *LadderEncoder) ForceKeyFrame() { l.enc.ForceKeyFrame() }

// EncodeLadder rate-controls rung 0 to targetBytes and derives the other
// rungs. quarter optionally supplies the quarter-resolution source for
// quarter rungs (callers that stamp in-band markers must stamp them after
// downsampling); nil derives it from f by box filtering. The returned
// packets are indexed like the ladder's rungs and share Seq and Key.
func (l *LadderEncoder) EncodeLadder(f, quarter *Frame, targetBytes int) ([]*Packet, error) {
	pkt0, err := l.enc.Encode(f, targetBytes)
	if err != nil {
		return nil, err
	}
	return l.deriveRungs(f, quarter, pkt0)
}

// EncodeLadderQP encodes rung 0 at a fixed QP and derives the other rungs
// (the fixed-quality baseline and the benchmarks' deterministic path).
func (l *LadderEncoder) EncodeLadderQP(f, quarter *Frame, qp int) ([]*Packet, error) {
	pkt0, err := l.enc.EncodeQP(f, qp)
	if err != nil {
		return nil, err
	}
	return l.deriveRungs(f, quarter, pkt0)
}

// deriveRungs produces rungs 1..K-1 from the just-encoded rung-0 state.
func (l *LadderEncoder) deriveRungs(f, quarter *Frame, pkt0 *Packet) ([]*Packet, error) {
	out := make([]*Packet, len(l.rungs))
	out[0] = pkt0
	l.scr.reset()
	for idx := 1; idx < len(l.rungs); idx++ {
		r := l.rungs[idx]
		qp := clampQP(pkt0.QP+r.QPOffset, l.cfg.MinQP, l.cfg.MaxQP)
		var pkt *Packet
		var err error
		if r.Quarter {
			pkt, err = l.encodeQuarter(l.qencs[idx], f, quarter, pkt0, qp)
		} else {
			pkt, err = l.transcode(l.trefs[idx], pkt0, qp)
		}
		if err != nil {
			return nil, fmt.Errorf("vcodec: rung %d: %w", r.ID, err)
		}
		pkt.Rung = r.ID
		out[idx] = pkt
	}
	return out, nil
}

// encodeQuarter drives a quarter rung's nested encoder, keeping its key
// cadence and sequence locked to rung 0.
func (l *LadderEncoder) encodeQuarter(qe *Encoder, f, quarter *Frame, pkt0 *Packet, qp int) (*Packet, error) {
	if quarter == nil {
		if l.qframe == nil {
			l.qframe = NewFrame(qe.cfg.Width, qe.cfg.Height, qe.cfg.NumPlanes)
		}
		for p := range f.Planes {
			downsample2x(f.Planes[p], f.W, f.H, l.qframe.Planes[p], qe.cfg.Width, qe.cfg.Height)
		}
		quarter = l.qframe
	}
	if pkt0.Key {
		// Lockstep key cadence: rung 0's key (periodic or PLI-forced)
		// forces one here too, so every rung's key frames share a seq.
		qe.ForceKeyFrame()
	}
	pkt, err := qe.EncodeQP(quarter, qp)
	if err != nil {
		return nil, err
	}
	if pkt.Seq != pkt0.Seq || pkt.Key != pkt0.Key {
		return nil, fmt.Errorf("quarter rung out of lockstep: seq %d/%d key %v/%v",
			pkt.Seq, pkt0.Seq, pkt.Key, pkt0.Key)
	}
	return pkt, nil
}

// transStripe is one unit of parallel transcode work: requantize and
// reconstruct the blocks of one rung-0 encode stripe.
type transStripe struct {
	src         *encStripe // rung 0's coded stripe (symbols + geometry)
	key         bool
	step0       float64 // rung 0's quantizer step for this plane
	step1       float64 // this rung's step
	prev, recon []int32 // this rung's reference planes (coded dims)
	coeffs      *byteWriter
	err         error // per-stripe so parallel workers never share a slot
}

// transcode produces a same-resolution rung from rung 0's just-finished
// stripe state: modes and motion vectors are reused byte-identically,
// coefficients are requantized at this rung's (coarser) step, and the
// rung's own reference picture is reconstructed closed-loop, exactly as
// its decoder will.
func (l *LadderEncoder) transcode(tr *transRef, pkt0 *Packet, qp int) (*Packet, error) {
	e := l.enc
	key := pkt0.Key
	recon := tr.pics[0]
	if recon == tr.prev {
		recon = tr.pics[1]
	}

	// Build one transcode job per rung-0 encode stripe. Jobs mirror the
	// (plane, stripe) order of e.jobs, so assembling their streams in job
	// order reproduces the sequential symbol order at any worker count.
	l.tjobs = l.tjobs[:0]
	for i := range e.jobs {
		job := &e.jobs[i]
		p := planeIndexOf(e, job.pc)
		pqp := qp
		if p > 0 {
			pqp = clampQP(qp+l.cfg.ChromaQPOffset, l.cfg.MinQP, l.cfg.MaxQP)
		}
		var prevPlane []int32
		if !key {
			prevPlane = tr.prev.planes[p]
		}
		l.tjobs = append(l.tjobs, transStripe{
			src:    job,
			key:    key,
			step0:  job.pc.step,
			step1:  qpToStep(pqp, l.cfg.BitDepth),
			prev:   prevPlane,
			recon:  recon.planes[p],
			coeffs: l.scr.getWriter(),
		})
	}
	pipeline.ParFor(len(l.tjobs), func(i int) {
		l.tjobs[i].err = l.tjobs[i].run()
	})
	for i := range l.tjobs {
		if err := l.tjobs[i].err; err != nil {
			return nil, err
		}
	}

	// Assemble the rung's payload: rung 0's mode and MV streams verbatim,
	// this rung's coefficient streams, all in (plane, stripe) order.
	payload := l.scr.getWriter()
	var mLen, vLen, cLen uint64
	for i := range l.tjobs {
		mLen += uint64(len(l.tjobs[i].src.modes.buf))
		vLen += uint64(len(l.tjobs[i].src.mvs.buf))
		cLen += uint64(len(l.tjobs[i].coeffs.buf))
	}
	payload.writeUvarint(mLen)
	for i := range l.tjobs {
		payload.buf = append(payload.buf, l.tjobs[i].src.modes.buf...)
	}
	payload.writeUvarint(vLen)
	for i := range l.tjobs {
		payload.buf = append(payload.buf, l.tjobs[i].src.mvs.buf...)
	}
	payload.writeUvarint(cLen)
	for i := range l.tjobs {
		payload.buf = append(payload.buf, l.tjobs[i].coeffs.buf...)
	}

	hdr := l.scr.getWriter()
	hdr.writeByte('V')
	flags := byte(0)
	if key {
		flags |= 1
	}
	hdr.writeByte(flags)
	hdr.writeUvarint(uint64(pkt0.Seq))
	hdr.writeUvarint(uint64(qp))

	data, err := l.def.compress(hdr.buf, payload.buf, auxFlateLevel(l.cfg.FlateLevel))
	if err != nil {
		return nil, err
	}
	tr.prev = recon
	return &Packet{Data: data, Key: key, Seq: pkt0.Seq, QP: qp}, nil
}

// auxFlateLevel caps the entropy-coder effort of derived rungs. Rung 0
// carries the stream's quality contract; the auxiliary rungs exist to be
// cheap, and deflate effort is the bulk of their remaining cost once mode
// decisions and the DCT are reused (or quartered). Level 1 uses the
// stdlib's specialized fast matcher — several times cheaper than level
// 2+'s generic one for a few percent of size. DEFLATE is self-describing,
// so decoders never see the difference. ExplicitZero (stored blocks) is
// honoured as-is.
func auxFlateLevel(level int) int {
	if level == ExplicitZero || level < 1 {
		return level
	}
	return 1
}

// planeIndexOf maps an encode stripe's planeCode back to its plane index.
func planeIndexOf(e *Encoder, pc *planeCode) int {
	for p := range e.planes {
		if &e.planes[p] == pc {
			return p
		}
	}
	return 0
}

// run requantizes and reconstructs one stripe. The symbol walk mirrors
// parsePlane; the reconstruction mirrors decStripe.decode so the rung's
// reference tracks its decoder bit-exactly.
func (t *transStripe) run() error {
	pc := t.src.pc
	w, h := pc.w, pc.h
	bx := (w + blockSize - 1) / blockSize
	modes := byteReader{buf: t.src.modes.buf}
	mvs := byteReader{buf: t.src.mvs.buf}
	coeffs := byteReader{buf: t.src.coeffs.buf}
	ratio := t.step0 / t.step1

	var predBlk [blockSize * blockSize]int32
	var fblk [blockSize * blockSize]float64
	var q [blockSize * blockSize]int64

	for byi := t.src.row0; byi < t.src.row1; byi++ {
		for bxi := 0; bxi < bx; bxi++ {
			x0, y0 := bxi*blockSize, byi*blockSize
			mode, err := modes.readByte()
			if err != nil {
				return err
			}
			var mvx, mvy int
			if mode == modeInterMV {
				dx, err := mvs.readVarint()
				if err != nil {
					return err
				}
				dy, err := mvs.readVarint()
				if err != nil {
					return err
				}
				mvx, mvy = int(dx), int(dy)
			}

			count64, err := coeffs.readUvarint()
			if err != nil {
				return err
			}
			count := int(count64)
			if count > blockSize*blockSize {
				return fmt.Errorf("vcodec: transcode coefficient count %d out of range", count)
			}
			// Requantize: c1 = round(c0 * step0 / step1). Trailing
			// requantized-to-zero coefficients are trimmed from the count.
			lastNZ := -1
			for k := 0; k < count; k++ {
				c0, err := coeffs.readVarint()
				if err != nil {
					return err
				}
				v := int64(math.Round(float64(c0) * ratio))
				q[k] = v
				if v != 0 {
					lastNZ = k
				}
			}
			t.coeffs.writeUvarint(uint64(lastNZ + 1))
			for k := 0; k <= lastNZ; k++ {
				t.coeffs.writeVarint(q[k])
			}

			// Closed-loop reconstruction from this rung's own reference.
			if lastNZ < 0 && mode == modeInterZero {
				// Zero residual, co-located prediction: the reconstruction
				// is a straight copy of the reference block (the dominant
				// case on static tiled content).
				copyBlockRows(t.recon, t.prev, w, h, x0, y0)
				continue
			}
			switch mode {
			case modeIntra:
				fillConst(&predBlk, pc.mid)
			case modeInterZero:
				gather(t.prev, w, h, x0, y0, &predBlk)
			case modeInterMV:
				gather(t.prev, w, h, x0+mvx, y0+mvy, &predBlk)
			default:
				return fmt.Errorf("vcodec: transcode unknown block mode %d", mode)
			}
			if lastNZ < 0 {
				scatterPred(t.recon, w, h, x0, y0, &predBlk, pc.maxVal)
				continue
			}
			kr, kc := 0, 0
			for k := 1; k <= lastNZ; k++ {
				if q[k] == 0 {
					continue
				}
				zz := zigzag[k]
				if r := zz / blockSize; r > kr {
					kr = r
				}
				if c := zz % blockSize; c > kc {
					kc = c
				}
			}
			if kr == 0 && kc == 0 {
				// DC-only (the dominant case after coarse requantization):
				// the inverse transform is a constant plane, so add the
				// once-rounded delta — bit-identical to the full path.
				scatterPredDelta(t.recon, w, h, x0, y0, &predBlk, dcDelta(float64(q[0])*t.step1), pc.maxVal)
				continue
			}
			for k := range fblk {
				fblk[k] = 0
			}
			for k := 0; k <= lastNZ; k++ {
				if q[k] != 0 {
					fblk[zigzag[k]] = float64(q[k]) * t.step1
				}
			}
			idct2dBounded(&fblk, kr, kc)
			scatter(t.recon, w, h, x0, y0, &predBlk, &fblk, pc.maxVal)
		}
	}
	return nil
}

// copyBlockRows copies the in-bounds rectangle of the block at (x0, y0)
// from src to dst — byte-identical to gather+scatterPred for a co-located
// zero-residual block (reference samples are already clamped in range).
func copyBlockRows(dst, src []int32, w, h, x0, y0 int) {
	x1 := x0 + blockSize
	if x1 > w {
		x1 = w
	}
	y1 := y0 + blockSize
	if y1 > h {
		y1 = h
	}
	for y := y0; y < y1; y++ {
		copy(dst[y*w+x0:y*w+x1], src[y*w+x0:y*w+x1])
	}
}
