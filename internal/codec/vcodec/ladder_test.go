package vcodec

import (
	"math/rand"
	"testing"
)

// synthLadderFrame fills f with deterministic moving content: a gradient
// background plus a few moving rectangles, so frames have both static and
// changing blocks.
func synthLadderFrame(f *Frame, t int, rng *rand.Rand) {
	for p := range f.Planes {
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				f.Planes[p][y*f.W+x] = int32((x*3 + y*2 + p*17) % 256)
			}
		}
	}
	for r := 0; r < 3; r++ {
		x0 := (t*(3+r) + r*19) % f.W
		y0 := (t*(2+r) + r*11) % f.H
		v := int32(rng.Intn(256))
		for y := y0; y < y0+10 && y < f.H; y++ {
			for x := x0; x < x0+14 && x < f.W; x++ {
				for p := range f.Planes {
					f.Planes[p][y*f.W+x] = v
				}
			}
		}
	}
}

// TestLadderRungsDecodeAndTrack runs a 3-rung ladder over several GOPs and
// checks, per frame: every rung decodes with a standard Decoder, rungs
// share Seq and Key, the requantization rung's closed-loop reference is
// bit-identical to what its decoder reconstructs (no silent drift), and
// the lower rungs cost fewer bytes than rung 0.
func TestLadderRungsDecodeAndTrack(t *testing.T) {
	cfg := ColorConfig(96, 64)
	cfg.GOP = 8
	le, err := NewLadderEncoder(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	qcfg, ok := le.QuarterConfig()
	if !ok {
		t.Fatal("default ladder has no quarter rung")
	}
	if qcfg.Width != (cfg.Width+1)/2 || qcfg.Height != (cfg.Height+1)/2 {
		t.Fatalf("quarter config %dx%d", qcfg.Width, qcfg.Height)
	}
	dec0, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec1, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := NewDecoder(qcfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	f := NewFrame(cfg.Width, cfg.Height, cfg.NumPlanes)
	var bytes0, bytes1, bytes2 int
	for i := 0; i < 20; i++ {
		synthLadderFrame(f, i, rng)
		if i == 11 {
			le.ForceKeyFrame() // mid-GOP PLI: all rungs must key together
		}
		pkts, err := le.EncodeLadderQP(f, nil, 18)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(pkts) != 3 {
			t.Fatalf("frame %d: %d rungs", i, len(pkts))
		}
		for r, pkt := range pkts {
			if pkt.Seq != pkts[0].Seq || pkt.Key != pkts[0].Key {
				t.Fatalf("frame %d rung %d out of lockstep: seq %d/%d key %v/%v",
					i, r, pkt.Seq, pkts[0].Seq, pkt.Key, pkts[0].Key)
			}
			if pkt.Rung != uint8(r) {
				t.Fatalf("frame %d rung %d: packet rung %d", i, r, pkt.Rung)
			}
		}
		if i == 11 && !pkts[0].Key {
			t.Fatalf("forced key frame did not key")
		}
		if _, err := dec0.Decode(pkts[0]); err != nil {
			t.Fatalf("frame %d rung 0 decode: %v", i, err)
		}
		if _, err := dec1.Decode(pkts[1]); err != nil {
			t.Fatalf("frame %d rung 1 decode: %v", i, err)
		}
		df2, err := dec2.Decode(pkts[2])
		if err != nil {
			t.Fatalf("frame %d rung 2 decode: %v", i, err)
		}
		if df2.W != qcfg.Width || df2.H != qcfg.Height {
			t.Fatalf("frame %d rung 2 output %dx%d", i, df2.W, df2.H)
		}
		// The transcode's closed-loop reference must match its decoder's
		// reconstruction exactly — any divergence would drift for a whole
		// GOP.
		tr := le.trefs[1]
		for p := range tr.prev.planes {
			for j, v := range tr.prev.planes[p] {
				if dec1.prev.planes[p][j] != v {
					t.Fatalf("frame %d rung 1 plane %d sample %d: encoder recon %d, decoder recon %d",
						i, p, j, v, dec1.prev.planes[p][j])
				}
			}
		}
		bytes0 += pkts[0].SizeBytes()
		bytes1 += pkts[1].SizeBytes()
		bytes2 += pkts[2].SizeBytes()
	}
	if bytes1 >= bytes0 {
		t.Errorf("rung 1 (%d B) not cheaper than rung 0 (%d B)", bytes1, bytes0)
	}
	if bytes2 >= bytes0 {
		t.Errorf("rung 2 (%d B) not cheaper than rung 0 (%d B)", bytes2, bytes0)
	}
}

// TestLadderRateControlled exercises the rate-controlled path (corrective
// re-encodes roll back rung 0 before the other rungs derive from it).
func TestLadderRateControlled(t *testing.T) {
	cfg := DepthConfig(80, 64)
	cfg.GOP = 5
	le, err := NewLadderEncoder(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec0, _ := NewDecoder(cfg)
	dec1, _ := NewDecoder(cfg)
	rng := rand.New(rand.NewSource(3))
	f := NewFrame(cfg.Width, cfg.Height, 1)
	for i := 0; i < 12; i++ {
		for j := range f.Planes[0] {
			f.Planes[0][j] = int32((j*13+i*257)%60000) + int32(rng.Intn(64))
		}
		pkts, err := le.EncodeLadder(f, nil, 2000)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := dec0.Decode(pkts[0]); err != nil {
			t.Fatalf("frame %d rung 0: %v", i, err)
		}
		if _, err := dec1.Decode(pkts[1]); err != nil {
			t.Fatalf("frame %d rung 1: %v", i, err)
		}
	}
}

// TestLadderValidation covers constructor error paths.
func TestLadderValidation(t *testing.T) {
	cfg := ColorConfig(32, 32)
	if _, err := NewLadderEncoder(cfg, []Rung{{ID: 1, QPOffset: 4}}); err == nil {
		t.Error("non-identity rung 0 accepted")
	}
	if _, err := NewLadderEncoder(cfg, []Rung{{}, {ID: 1}, {ID: 2}, {ID: 3}, {ID: 3}}); err == nil {
		t.Error("5 rungs accepted")
	}
}
