// Package vcodec is a rate-adaptive 2D video codec built from scratch on the
// stdlib. It stands in for the hardware H.265 encoders LiVo uses (NVENC via
// GStreamer, §4.1) and provides the four properties LiVo's design depends on
// (§3.2, §3.3; DESIGN.md):
//
//  1. direct rate adaptation — Encode takes a target size per frame and
//     selects the quantization parameter to hit it;
//  2. inter-frame prediction — P-frames predict blocks from the previous
//     reconstructed frame (zero-motion, optional motion search) so static
//     tiled content costs almost nothing;
//  3. block-transform quantization — an 8x8 DCT with an H.265-style
//     QP-to-step mapping (step doubles every 6 QP), which compresses smooth
//     regions well and distorts discontinuities, exactly the behaviour
//     LiVo's depth-scaling design reasons about;
//  4. a 16-bit single-plane mode — the Y444_16LE analogue used for depth.
//
// Color frames are coded as 3 planes in YCbCr with a chroma QP offset (the
// luminance plane is quantized more finely, the property LiVo's depth
// encoding exploits by storing depth in Y).
package vcodec

import (
	"livo/internal/frame"
	"livo/internal/pipeline"
)

// Frame is a codec-internal picture: one or three planes of int32 samples.
type Frame struct {
	W, H   int
	Planes [][]int32 // len 1 (depth) or 3 (Y, Cb, Cr)
}

// NewFrame allocates a zeroed frame with nplanes planes.
func NewFrame(w, h, nplanes int) *Frame {
	f := &Frame{W: w, H: h, Planes: make([][]int32, nplanes)}
	for i := range f.Planes {
		f.Planes[i] = make([]int32, w*h)
	}
	return f
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	c := NewFrame(f.W, f.H, len(f.Planes))
	for i := range f.Planes {
		copy(c.Planes[i], f.Planes[i])
	}
	return c
}

func clampI32(x, lo, hi int32) int32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FromColor converts an RGB image to a 3-plane YCbCr frame (BT.601 full
// range, the JPEG convention).
func FromColor(im *frame.ColorImage) *Frame {
	f := NewFrame(im.W, im.H, 3)
	FromColorInto(im, f)
	return f
}

// FromColorInto converts an RGB image into an existing 3-plane frame of
// the same geometry without allocating (the sender's per-tick path).
func FromColorInto(im *frame.ColorImage, f *Frame) {
	n := im.W * im.H
	for i := 0; i < n; i++ {
		r := int32(im.Pix[3*i])
		g := int32(im.Pix[3*i+1])
		b := int32(im.Pix[3*i+2])
		// Fixed-point (x256) BT.601 full-range conversion.
		y := (77*r + 150*g + 29*b + 128) >> 8
		cb := ((-43*r-85*g+128*b+128)>>8 + 128)
		cr := ((128*r-107*g-21*b+128)>>8 + 128)
		f.Planes[0][i] = clampI32(y, 0, 255)
		f.Planes[1][i] = clampI32(cb, 0, 255)
		f.Planes[2][i] = clampI32(cr, 0, 255)
	}
}

// ToColor converts a 3-plane YCbCr frame back to RGB.
func (f *Frame) ToColor() *frame.ColorImage {
	im := frame.NewColorImage(f.W, f.H)
	f.ToColorInto(im)
	return im
}

// ToColorInto converts a 3-plane YCbCr frame into an existing RGB image of
// the same geometry without allocating (the receive path's per-frame
// conversion).
func (f *Frame) ToColorInto(im *frame.ColorImage) {
	n := f.W * f.H
	for i := 0; i < n; i++ {
		y := f.Planes[0][i]
		cb := f.Planes[1][i] - 128
		cr := f.Planes[2][i] - 128
		r := y + (359*cr+128)>>8
		g := y - (88*cb+183*cr+128)>>8
		b := y + (454*cb+128)>>8
		im.Pix[3*i] = uint8(clampI32(r, 0, 255))
		im.Pix[3*i+1] = uint8(clampI32(g, 0, 255))
		im.Pix[3*i+2] = uint8(clampI32(b, 0, 255))
	}
}

// FromDepth wraps a 16-bit depth image as a single-plane frame. Values are
// copied verbatim (any scaling is the caller's job; see codec/depth).
func FromDepth(im *frame.DepthImage) *Frame {
	f := NewFrame(im.W, im.H, 1)
	FromDepthInto(im, f)
	return f
}

// FromDepthInto copies a depth image into an existing single-plane frame
// of the same geometry without allocating.
func FromDepthInto(im *frame.DepthImage, f *Frame) {
	for i, d := range im.Pix {
		f.Planes[0][i] = int32(d)
	}
}

// ToDepth converts a single-plane frame back to a 16-bit depth image,
// clamping to the valid range.
func (f *Frame) ToDepth() *frame.DepthImage {
	im := frame.NewDepthImage(f.W, f.H)
	f.ToDepthInto(im)
	return im
}

// ToDepthInto converts a single-plane frame into an existing depth image
// of the same geometry without allocating.
func (f *Frame) ToDepthInto(im *frame.DepthImage) {
	for i, v := range f.Planes[0] {
		im.Pix[i] = uint16(clampI32(v, 0, 65535))
	}
}

// rmseChunk is the fixed shard size for parallel error sums. Fixed (not
// derived from GOMAXPROCS) so the floating-point summation order — each
// chunk accumulated left to right, chunk partials combined in chunk order
// — is identical at any worker count.
const rmseChunk = 1 << 17

// ChunkedSquaredError accumulates per-chunk sums of squared int32
// differences over fixed-size shards in parallel. partials is reused
// scratch (pass nil to allocate); the return value is the slice of chunk
// sums in chunk order. Slices must have equal length.
func ChunkedSquaredError(a, b []int32, partials []float64) []float64 {
	nChunks := (len(a) + rmseChunk - 1) / rmseChunk
	if cap(partials) < nChunks {
		partials = make([]float64, nChunks)
	}
	partials = partials[:nChunks]
	pipeline.ParFor(nChunks, func(c int) {
		lo := c * rmseChunk
		hi := lo + rmseChunk
		if hi > len(a) {
			hi = len(a)
		}
		var s float64
		for i := lo; i < hi; i++ {
			d := float64(a[i] - b[i])
			s += d * d
		}
		partials[c] = s
	})
	return partials
}

// PlaneRMSE returns the root-mean-square error between the corresponding
// planes of a and b — the sender-side quality estimate LiVo's bandwidth
// splitter uses instead of PointSSIM (§3.3). Frames must have identical
// geometry. The scan shards across cores (it walks full 4K planes on the
// sender hot path every probe tick) with a worker-count-independent
// summation order.
func PlaneRMSE(a, b *Frame) float64 {
	var sum float64
	var n int
	var partials []float64
	for p := range a.Planes {
		partials = ChunkedSquaredError(a.Planes[p], b.Planes[p], partials)
		for _, s := range partials {
			sum += s
		}
		n += len(a.Planes[p])
	}
	if n == 0 {
		return 0
	}
	return sqrt(sum / float64(n))
}
