package vcodec

import "math"

// blockSize is the transform block size (8x8, the classic DCT block also
// referenced by the paper's macroblock discussion in §3.2).
const blockSize = 8

// dctMat[k][n] = c(k) * cos((2n+1)kπ/16) — the orthonormal DCT-II basis.
var dctMat [blockSize][blockSize]float64

func init() {
	for k := 0; k < blockSize; k++ {
		c := math.Sqrt(2.0 / blockSize)
		if k == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			dctMat[k][n] = c * math.Cos(float64(2*n+1)*float64(k)*math.Pi/(2*blockSize))
		}
	}
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// fdct2d computes the 2D orthonormal DCT of an 8x8 block in place.
func fdct2d(b *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows: tmp = b * D^T
	for r := 0; r < blockSize; r++ {
		for k := 0; k < blockSize; k++ {
			var s float64
			for n := 0; n < blockSize; n++ {
				s += b[r*blockSize+n] * dctMat[k][n]
			}
			tmp[r*blockSize+k] = s
		}
	}
	// Columns: b = D * tmp
	for c := 0; c < blockSize; c++ {
		for k := 0; k < blockSize; k++ {
			var s float64
			for n := 0; n < blockSize; n++ {
				s += tmp[n*blockSize+c] * dctMat[k][n]
			}
			b[k*blockSize+c] = s
		}
	}
}

// idct2d computes the inverse 2D DCT of an 8x8 block in place.
func idct2d(b *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Columns: tmp = D^T * b
	for c := 0; c < blockSize; c++ {
		for n := 0; n < blockSize; n++ {
			var s float64
			for k := 0; k < blockSize; k++ {
				s += dctMat[k][n] * b[k*blockSize+c]
			}
			tmp[n*blockSize+c] = s
		}
	}
	// Rows: b = tmp * D
	for r := 0; r < blockSize; r++ {
		for n := 0; n < blockSize; n++ {
			var s float64
			for k := 0; k < blockSize; k++ {
				s += tmp[r*blockSize+k] * dctMat[k][n]
			}
			b[r*blockSize+n] = s
		}
	}
}

// idct2dBounded computes the inverse 2D DCT of a block whose nonzero
// coefficients all lie at frequency rows ≤ kr and columns ≤ kc, skipping
// the basis terms those bounds prove are zero. Every skipped term
// contributes exactly ±0.0 to its accumulator — an exact no-op in IEEE
// arithmetic — so the result is bit-identical to idct2d; encoder, decoder,
// and transcoder may mix the two freely without reconstruction drift.
// Quantized blocks are overwhelmingly low-frequency (DC-only after a
// coarse requantization), where this is ~8x cheaper than the dense
// transform.
func idct2dBounded(b *[blockSize * blockSize]float64, kr, kc int) {
	var tmp [blockSize * blockSize]float64
	// Columns: tmp = D^T * b, restricted to coefficient rows ≤ kr and the
	// populated columns ≤ kc (the rest of tmp stays exactly zero).
	for c := 0; c <= kc; c++ {
		for n := 0; n < blockSize; n++ {
			var s float64
			for k := 0; k <= kr; k++ {
				s += dctMat[k][n] * b[k*blockSize+c]
			}
			tmp[n*blockSize+c] = s
		}
	}
	// Rows: b = tmp * D; tmp columns beyond kc are zero and skipped.
	for r := 0; r < blockSize; r++ {
		for n := 0; n < blockSize; n++ {
			var s float64
			for k := 0; k <= kc; k++ {
				s += tmp[r*blockSize+k] * dctMat[k][n]
			}
			b[r*blockSize+n] = s
		}
	}
}

// dcDelta is the constant pixel-domain residual of a DC-only block,
// rounded exactly as scatter rounds each pixel. The multiplication order
// mirrors idct2dBounded's two passes (dm*dc then *dm), so the delta is
// bit-identical to running the transform and rounding per pixel.
func dcDelta(dc float64) int32 {
	dm := dctMat[0][0]
	return int32(math.Round(dm * (dm * dc)))
}

// zigzag is the coefficient scan order: low frequencies first so trailing
// zeros cluster for the entropy coder.
var zigzag = buildZigzag()

func buildZigzag() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	idx := 0
	for s := 0; s < 2*blockSize-1; s++ {
		if s%2 == 0 { // up-right
			for y := min(s, blockSize-1); y >= 0 && s-y < blockSize; y-- {
				order[idx] = y*blockSize + (s - y)
				idx++
			}
		} else { // down-left
			for x := min(s, blockSize-1); x >= 0 && s-x < blockSize; x-- {
				order[idx] = (s-x)*blockSize + x
				idx++
			}
		}
	}
	return order
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// qpToStep maps a quantization parameter to a quantizer step size, doubling
// every 6 QP like H.264/H.265 (QP 4 -> step 1.0 for 8-bit samples). As in
// H.265, the step scales with bit depth — QP is defined relative to full
// scale, so a 16-bit plane's minimum step is 256x an 8-bit plane's. This is
// the codec property LiVo's depth scaling exploits (§3.2): values must be
// spread across the full 16-bit range or the effective quantization bins
// swallow neighbouring depths (Fig A.1).
func qpToStep(qp, bitDepth int) float64 {
	return math.Exp2(float64(qp-4)/6.0) * math.Exp2(float64(bitDepth-8))
}
