package vcodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// byteWriter accumulates varint-coded symbols for one logical stream
// (modes, motion vectors, coefficients). Streams are concatenated and
// deflate-compressed into the final packet payload.
type byteWriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *byteWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *byteWriter) writeVarint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *byteWriter) writeByte(b byte) { w.buf = append(w.buf, b) }

// byteReader consumes what a byteWriter produced.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("vcodec: truncated uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readVarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("vcodec: truncated varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("vcodec: truncated stream at %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// deflateBytes compresses b at the given flate level.
func deflateBytes(b []byte, level int) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// inflateBytes decompresses deflate data.
func inflateBytes(b []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(b))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("vcodec: inflate: %w", err)
	}
	return out, nil
}
