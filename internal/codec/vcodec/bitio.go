package vcodec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
)

// byteWriter accumulates varint-coded symbols for one logical stream
// (modes, motion vectors, coefficients). Streams are concatenated and
// deflate-compressed into the final packet payload.
type byteWriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *byteWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *byteWriter) writeVarint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *byteWriter) writeByte(b byte) { w.buf = append(w.buf, b) }

// byteReader consumes what a byteWriter produced.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("vcodec: truncated uvarint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readVarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("vcodec: truncated varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("vcodec: truncated stream at %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// deflater is per-encoder reusable compression state: the flate writer's
// internal tables (~hundreds of KB) and the output buffer persist across
// frames instead of being reallocated per packet.
type deflater struct {
	fw  *flate.Writer
	lvl int
	out bytes.Buffer
}

// compress writes hdr followed by the deflate of payload and returns a
// fresh copy (the packet the caller keeps — the encode path's only
// per-frame allocation).
func (d *deflater) compress(hdr, payload []byte, level int) ([]byte, error) {
	d.out.Reset()
	d.out.Write(hdr)
	if d.fw == nil || d.lvl != level {
		fw, err := flate.NewWriter(&d.out, level)
		if err != nil {
			return nil, err
		}
		d.fw, d.lvl = fw, level
	} else {
		d.fw.Reset(&d.out)
	}
	if _, err := d.fw.Write(payload); err != nil {
		return nil, err
	}
	if err := d.fw.Close(); err != nil {
		return nil, err
	}
	return append([]byte(nil), d.out.Bytes()...), nil
}
