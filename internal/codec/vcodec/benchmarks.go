package vcodec

import (
	"testing"
)

// This file defines the codec benchmark suite shared by `go test -bench`
// (see bench4k_test.go) and `livo-bench -codecbench`, which serializes the
// results into BENCH_codec.json so the perf trajectory is tracked across
// PRs. The content generators mirror the tiled conferencing frames the
// sender produces: smooth gradients (compressible), a few hard edges, and
// a small amount of inter-frame motion.

// BenchResult is one codec benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// NamedBenchmark is a benchmark function with a stable name.
type NamedBenchmark struct {
	Name string
	F    func(*testing.B)
}

// StandardBenchmarks returns the codec benchmark suite. The 4K entries
// match LiVo's tiled-frame resolution (§4.1); RoundTrip covers the full
// encode+decode path at 1080p.
func StandardBenchmarks() []NamedBenchmark {
	return []NamedBenchmark{
		{"Encode4KColor", benchEncodeColor(3840, 2160)},
		{"Encode4KDepth", benchEncodeDepth(3840, 2160)},
		{"Decode4KColor", benchDecodeColor(3840, 2160)},
		{"RoundTrip", benchRoundTrip(1920, 1080)},
	}
}

// benchColorFrame synthesizes a 3-plane YCbCr frame: gradients plus a
// moving bright bar so delta frames carry real residuals.
func benchColorFrame(w, h, t int) *Frame {
	f := NewFrame(w, h, 3)
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			f.Planes[0][row+x] = int32((x*255/w + y*37/h + t*5) % 256)
			f.Planes[1][row+x] = int32(128 + 64*((x>>5)&1))
			f.Planes[2][row+x] = int32((y*255/h + t*3) % 256)
		}
	}
	bar := (t * 16) % (w - 32)
	for y := h / 4; y < h/4+24 && y < h; y++ {
		for x := bar; x < bar+32; x++ {
			f.Planes[0][y*w+x] = 250
		}
	}
	return f
}

// benchDepthFrame synthesizes a full-range-scaled 16-bit depth plane: a
// sloped floor, a step discontinuity, and a moving object.
func benchDepthFrame(w, h, t int) *Frame {
	f := NewFrame(w, h, 1)
	for y := 0; y < h; y++ {
		row := y * w
		base := int32(10000 + y*40000/h)
		for x := 0; x < w; x++ {
			v := base
			if x > w/2 {
				v += 8000
			}
			f.Planes[0][row+x] = v
		}
	}
	obj := (t * 12) % (w - 64)
	for y := h / 3; y < h/3+48 && y < h; y++ {
		for x := obj; x < obj+64; x++ {
			f.Planes[0][y*w+x] = 5000
		}
	}
	return f
}

func benchEncodeColor(w, h int) func(*testing.B) {
	return func(b *testing.B) {
		enc, err := NewEncoder(ColorConfig(w, h))
		if err != nil {
			b.Fatal(err)
		}
		frames := [2]*Frame{benchColorFrame(w, h, 0), benchColorFrame(w, h, 1)}
		target := w * h * 3 / 100 // ~250 KB per 4K frame, LiVo's operating point
		// Warm up the scratch freelist and rate model so the measurement
		// reflects steady-state conferencing, not first-frame setup.
		for i := 0; i < 2; i++ {
			if _, err := enc.Encode(frames[i&1], target); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enc.Encode(frames[i&1], target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchEncodeDepth(w, h int) func(*testing.B) {
	return func(b *testing.B) {
		enc, err := NewEncoder(DepthConfig(w, h))
		if err != nil {
			b.Fatal(err)
		}
		frames := [2]*Frame{benchDepthFrame(w, h, 0), benchDepthFrame(w, h, 1)}
		target := w * h / 40
		for i := 0; i < 2; i++ {
			if _, err := enc.Encode(frames[i&1], target); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enc.Encode(frames[i&1], target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDecodeColor(w, h int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := ColorConfig(w, h)
		cfg.GOP = 4
		enc, err := NewEncoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pkts := make([]*Packet, 4)
		for i := range pkts {
			p, err := enc.Encode(benchColorFrame(w, h, i), w*h*3/100)
			if err != nil {
				b.Fatal(err)
			}
			pkts[i] = p
		}
		dec, err := NewDecoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := dec.Decode(pkts[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(pkts[i%4]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchRoundTrip(w, h int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := ColorConfig(w, h)
		enc, err := NewEncoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := NewDecoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		frames := [2]*Frame{benchColorFrame(w, h, 0), benchColorFrame(w, h, 1)}
		target := w * h * 3 / 100
		for i := 0; i < 2; i++ {
			pkt, err := enc.Encode(frames[i&1], target)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dec.Decode(pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt, err := enc.Encode(frames[i&1], target)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dec.Decode(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// RunStandardBenchmarks executes the suite with testing.Benchmark and
// returns structured results (used by cmd/livo-bench).
func RunStandardBenchmarks(procs int) []BenchResult {
	var out []BenchResult
	for _, nb := range StandardBenchmarks() {
		r := testing.Benchmark(nb.F)
		out = append(out, BenchResult{
			Name:        nb.Name,
			Procs:       procs,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}
