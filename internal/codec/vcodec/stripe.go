package vcodec

import (
	"fmt"
	"math"

	"livo/internal/pipeline"
)

// Stripe-parallel plane coding.
//
// A plane's blocks have no coding dependencies on each other: prediction
// reads only the previous *frame's* reconstruction (read-only during the
// current frame) and each block writes a disjoint region of the current
// reconstruction. Block rows are therefore sharded into horizontal stripes
// processed by a GOMAXPROCS-aware worker pool (pipeline.ParFor). Each
// stripe emits its symbols into private reused writers; the frame
// assembler concatenates stripe streams in (plane, stripe) order, which is
// exactly the order the sequential coder emitted them — so the bitstream
// is byte-identical regardless of worker count, and stripe boundaries are
// fixed (stripeBlockRows) rather than derived from GOMAXPROCS so buffer
// shapes are reproducible too.

// stripeBlockRows is the stripe height in block rows (64 pixel rows).
// Small enough to load-balance 4K planes across many cores, large enough
// that per-stripe writer overhead is negligible.
const stripeBlockRows = 8

// stripeCount returns how many stripes cover `by` block rows.
func stripeCount(by int) int {
	return (by + stripeBlockRows - 1) / stripeBlockRows
}

// planeCode holds the per-plane parameters shared by that plane's encode
// stripes. prev is nil on key frames.
type planeCode struct {
	src, prev, recon []int32
	w, h             int
	maxVal, mid      int32
	step             float64
	radius           int
}

// encStripe is one unit of parallel encode work: block rows [row0, row1)
// of one plane, with private symbol writers.
type encStripe struct {
	pc                 *planeCode
	row0, row1         int
	modes, mvs, coeffs *byteWriter
}

// appendEncStripes slices plane pc into stripes, each with private symbol
// writers drawn from the encoder's scratch freelist.
func appendEncStripes(jobs []encStripe, pc *planeCode, scr *scratch) []encStripe {
	by := (pc.h + blockSize - 1) / blockSize
	for r := 0; r < by; r += stripeBlockRows {
		r1 := r + stripeBlockRows
		if r1 > by {
			r1 = by
		}
		jobs = append(jobs, encStripe{
			pc: pc, row0: r, row1: r1,
			modes: scr.getWriter(), mvs: scr.getWriter(), coeffs: scr.getWriter(),
		})
	}
	return jobs
}

// codeStripe encodes block rows [row0, row1) of one plane: predict → DCT →
// quantize → entropy symbols → reconstruct, exactly as the sequential
// coder did, block by block in raster order.
func (s *encStripe) code() {
	pc := s.pc
	w, h := pc.w, pc.h
	bx := (w + blockSize - 1) / blockSize
	modes, mvs, coeffs := s.modes, s.mvs, s.coeffs

	var srcBlk, predBlk [blockSize * blockSize]int32
	var fblk [blockSize * blockSize]float64

	for byi := s.row0; byi < s.row1; byi++ {
		for bxi := 0; bxi < bx; bxi++ {
			x0, y0 := bxi*blockSize, byi*blockSize
			gather(pc.src, w, h, x0, y0, &srcBlk)

			mode := modeIntra
			var mvx, mvy int
			if pc.prev != nil {
				gather(pc.prev, w, h, x0, y0, &predBlk)
				zeroSAD := sad(&srcBlk, &predBlk)
				intraSAD := sadConst(&srcBlk, pc.mid)
				// Prefer inter on ties: it usually costs fewer bits.
				if zeroSAD <= intraSAD {
					mode = modeInterZero
				}
				bestSAD := zeroSAD
				if pc.radius > 0 && zeroSAD > 0 {
					var cand [blockSize * blockSize]int32
					for dy := -pc.radius; dy <= pc.radius; dy++ {
						for dx := -pc.radius; dx <= pc.radius; dx++ {
							if dx == 0 && dy == 0 {
								continue
							}
							gather(pc.prev, w, h, x0+dx, y0+dy, &cand)
							sadV := sad(&srcBlk, &cand)
							// Small penalty so MVs are only used when they
							// actually help (they cost extra bits).
							if sadV+int64(blockSize*blockSize)/4 < bestSAD && sadV < intraSAD {
								bestSAD = sadV
								mode = modeInterMV
								mvx, mvy = dx, dy
								predBlk = cand
							}
						}
					}
					if mode == modeInterZero {
						gather(pc.prev, w, h, x0, y0, &predBlk)
					}
				}
				if mode == modeIntra {
					fillConst(&predBlk, pc.mid)
				}
			} else {
				fillConst(&predBlk, pc.mid)
			}

			modes.writeByte(byte(mode))
			if mode == modeInterMV {
				mvs.writeVarint(int64(mvx))
				mvs.writeVarint(int64(mvy))
			}

			// Residual. A perfectly predicted block (the common case for
			// static tiled content) short-circuits the transform: a zero
			// residual quantizes to zero coefficients at any step, so the
			// emitted symbols and the reconstruction are identical to the
			// full path.
			allZero := true
			for i := range srcBlk {
				d := srcBlk[i] - predBlk[i]
				if d != 0 {
					allZero = false
				}
				fblk[i] = float64(d)
			}
			if allZero {
				coeffs.writeUvarint(0)
				scatterPred(pc.recon, w, h, x0, y0, &predBlk, pc.maxVal)
				continue
			}

			fdct2d(&fblk)
			var q [blockSize * blockSize]int64
			lastNZ := -1
			for i, zi := range zigzag {
				v := int64(math.Round(fblk[zi] / pc.step))
				q[i] = v
				if v != 0 {
					lastNZ = i
				}
			}
			coeffs.writeUvarint(uint64(lastNZ + 1))
			for i := 0; i <= lastNZ; i++ {
				coeffs.writeVarint(q[i])
			}
			if lastNZ < 0 {
				// Everything quantized away: reconstruction is the
				// prediction (the inverse transform of zeros adds nothing).
				scatterPred(pc.recon, w, h, x0, y0, &predBlk, pc.maxVal)
				continue
			}

			// Reconstruct exactly as the decoder will.
			for i := range fblk {
				fblk[i] = 0
			}
			for i := 0; i <= lastNZ; i++ {
				fblk[zigzag[i]] = float64(q[i]) * pc.step
			}
			idct2d(&fblk)
			scatter(pc.recon, w, h, x0, y0, &predBlk, &fblk, pc.maxVal)
		}
	}
}

// runEncStripes codes all stripes on the worker pool.
func runEncStripes(jobs []encStripe) {
	pipeline.ParFor(len(jobs), func(i int) { jobs[i].code() })
}

// --- Decode side -----------------------------------------------------------
//
// The three symbol streams are varint-coded, so stripe N's symbols cannot
// be located without reading stripe N-1's — the parse is inherently
// serial. It is also cheap (byte scanning) next to the reconstruction
// (IDCT per block), so decode runs in two phases: a serial parse into
// per-block tables, then stripe-parallel predict + dequantize + IDCT +
// reconstruct over those tables.

// parsedPlane is the decoder's per-plane symbol table, reused across
// frames. Motion vectors and coefficients are stored per block; coeffs is
// a shared slab indexed by offs.
type parsedPlane struct {
	modes  []byte
	mvx    []int32
	mvy    []int32
	counts []int32
	offs   []int32
	coeffs []int64
}

func (pp *parsedPlane) reset(nblocks int) {
	grow := func(n int) {
		if cap(pp.modes) < n {
			pp.modes = make([]byte, n)
			pp.mvx = make([]int32, n)
			pp.mvy = make([]int32, n)
			pp.counts = make([]int32, n)
			pp.offs = make([]int32, n)
		}
	}
	grow(nblocks)
	pp.modes = pp.modes[:nblocks]
	pp.mvx = pp.mvx[:nblocks]
	pp.mvy = pp.mvy[:nblocks]
	pp.counts = pp.counts[:nblocks]
	pp.offs = pp.offs[:nblocks]
	pp.coeffs = pp.coeffs[:0]
}

// clampMV bounds a decoded motion component to int32 range, preserving
// sign. Any in-range plane offset is unaffected; absurd values still clamp
// to the same edge sample during gather that they would have as an int.
func clampMV(v int64) int32 {
	const lim = 1 << 30
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return int32(v)
}

// parsePlane reads one plane's symbols into pp. prevNil reports whether
// this is a key frame (inter modes are then invalid).
func parsePlane(pp *parsedPlane, nblocks int, prevNil bool, modes, mvs, coeffs *byteReader) error {
	for i := 0; i < nblocks; i++ {
		mode, err := modes.readByte()
		if err != nil {
			return err
		}
		switch mode {
		case modeIntra:
		case modeInterZero:
			if prevNil {
				return fmt.Errorf("inter block in key frame")
			}
		case modeInterMV:
			if prevNil {
				return fmt.Errorf("inter block in key frame")
			}
			dx64, err := mvs.readVarint()
			if err != nil {
				return err
			}
			dy64, err := mvs.readVarint()
			if err != nil {
				return err
			}
			pp.mvx[i] = clampMV(dx64)
			pp.mvy[i] = clampMV(dy64)
		default:
			return fmt.Errorf("unknown block mode %d", mode)
		}
		pp.modes[i] = mode

		count, err := coeffs.readUvarint()
		if err != nil {
			return err
		}
		if count > blockSize*blockSize {
			return fmt.Errorf("coefficient count %d out of range", count)
		}
		pp.counts[i] = int32(count)
		pp.offs[i] = int32(len(pp.coeffs))
		for k := 0; k < int(count); k++ {
			v, err := coeffs.readVarint()
			if err != nil {
				return err
			}
			pp.coeffs = append(pp.coeffs, v)
		}
	}
	return nil
}

// planeDecode holds the per-plane parameters shared by that plane's
// decode stripes.
type planeDecode struct {
	pp          *parsedPlane
	prev, recon []int32
	w, h        int
	maxVal, mid int32
	step        float64
}

// decStripe is one unit of parallel decode work.
type decStripe struct {
	pd         *planeDecode
	row0, row1 int
}

// appendDecStripes slices plane pd into stripes.
func appendDecStripes(jobs []decStripe, pd *planeDecode) []decStripe {
	by := (pd.h + blockSize - 1) / blockSize
	for r := 0; r < by; r += stripeBlockRows {
		r1 := r + stripeBlockRows
		if r1 > by {
			r1 = by
		}
		jobs = append(jobs, decStripe{pd: pd, row0: r, row1: r1})
	}
	return jobs
}

// decode reconstructs block rows [row0, row1) of one plane from its
// parsed symbol table.
func (s *decStripe) decode() {
	pd := s.pd
	w, h := pd.w, pd.h
	bx := (w + blockSize - 1) / blockSize
	pp := pd.pp

	var predBlk [blockSize * blockSize]int32
	var fblk [blockSize * blockSize]float64

	for byi := s.row0; byi < s.row1; byi++ {
		for bxi := 0; bxi < bx; bxi++ {
			i := byi*bx + bxi
			x0, y0 := bxi*blockSize, byi*blockSize
			switch pp.modes[i] {
			case modeIntra:
				fillConst(&predBlk, pd.mid)
			case modeInterZero:
				gather(pd.prev, w, h, x0, y0, &predBlk)
			case modeInterMV:
				gather(pd.prev, w, h, x0+int(pp.mvx[i]), y0+int(pp.mvy[i]), &predBlk)
			}

			count := int(pp.counts[i])
			if count == 0 {
				scatterPred(pd.recon, w, h, x0, y0, &predBlk, pd.maxVal)
				continue
			}
			off := int(pp.offs[i])
			kr, kc := 0, 0
			for k := 1; k < count; k++ {
				if pp.coeffs[off+k] == 0 {
					continue
				}
				zz := zigzag[k]
				if r := zz / blockSize; r > kr {
					kr = r
				}
				if cc := zz % blockSize; cc > kc {
					kc = cc
				}
			}
			if kr == 0 && kc == 0 {
				// DC-only block: the inverse transform is a constant plane,
				// so add the once-rounded delta (bit-identical to the full
				// transform + per-pixel rounding).
				scatterPredDelta(pd.recon, w, h, x0, y0, &predBlk, dcDelta(float64(pp.coeffs[off])*pd.step), pd.maxVal)
				continue
			}
			for k := range fblk {
				fblk[k] = 0
			}
			for k := 0; k < count; k++ {
				if c := pp.coeffs[off+k]; c != 0 {
					fblk[zigzag[k]] = float64(c) * pd.step
				}
			}
			idct2dBounded(&fblk, kr, kc)
			scatter(pd.recon, w, h, x0, y0, &predBlk, &fblk, pd.maxVal)
		}
	}
}

// scatterPred writes the clamped prediction into the in-bounds part of the
// block at (x0, y0) — the zero-residual fast path shared by encoder and
// decoder.
func scatterPred(plane []int32, w, h, x0, y0 int, pred *[blockSize * blockSize]int32, maxVal int32) {
	for y := 0; y < blockSize; y++ {
		sy := y0 + y
		if sy >= h {
			break
		}
		row := plane[sy*w:]
		for x := 0; x < blockSize; x++ {
			sx := x0 + x
			if sx >= w {
				break
			}
			row[sx] = clampI32(pred[y*blockSize+x], 0, maxVal)
		}
	}
}
