package vcodec

import "testing"

// 4K benchmark entry points (run with -bench '4K|RoundTrip' -benchmem).
// The bodies live in benchmarks.go so livo-bench -codecbench can run the
// same suite outside the test harness and emit BENCH_codec.json.

func BenchmarkEncode4KColor(b *testing.B) { benchEncodeColor(3840, 2160)(b) }
func BenchmarkEncode4KDepth(b *testing.B) { benchEncodeDepth(3840, 2160)(b) }
func BenchmarkDecode4KColor(b *testing.B) { benchDecodeColor(3840, 2160)(b) }
func BenchmarkRoundTrip(b *testing.B)     { benchRoundTrip(1920, 1080)(b) }
