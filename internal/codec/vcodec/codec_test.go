package vcodec

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"livo/internal/frame"
)

// synthColor builds a color frame with smooth gradients plus a moving
// square — compressible but not trivial.
func synthColor(w, h, t int) *frame.ColorImage {
	im := frame.NewColorImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8((x*255/w + t) % 256)
			g := uint8(y * 255 / h)
			b := uint8(128 + 100*math.Sin(float64(x+y)/10))
			im.Set(x, y, r, g, b)
		}
	}
	// Moving bright square.
	sx := (t * 3) % (w - 8)
	for y := h / 4; y < h/4+8 && y < h; y++ {
		for x := sx; x < sx+8; x++ {
			im.Set(x, y, 250, 250, 250)
		}
	}
	return im
}

// synthDepth builds a depth frame: a sloped floor plus a moving object.
func synthDepth(w, h, t int) *frame.DepthImage {
	im := frame.NewDepthImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint16(1500+y*3000/h))
		}
	}
	sx := (t * 2) % (w - 10)
	for y := h / 3; y < h/3+10 && y < h; y++ {
		for x := sx; x < sx+10; x++ {
			im.Set(x, y, 900)
		}
	}
	return im
}

func TestColorConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	im := frame.NewColorImage(16, 16)
	rng.Read(im.Pix)
	back := FromColor(im).ToColor()
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(back.Pix[i])
		if d < -3 || d > 3 {
			t.Fatalf("color conversion error %d at byte %d", d, i)
		}
	}
}

func TestDepthConversionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	im := frame.NewDepthImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = uint16(rng.Intn(65536))
	}
	back := FromDepth(im).ToDepth()
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatalf("depth conversion not exact at %d", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Width: 0, Height: 8, NumPlanes: 1, BitDepth: 8}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := (Config{Width: 8, Height: 8, NumPlanes: 2, BitDepth: 8}).Validate(); err == nil {
		t.Error("2 planes accepted")
	}
	if err := (Config{Width: 8, Height: 8, NumPlanes: 1, BitDepth: 12}).Validate(); err == nil {
		t.Error("12-bit accepted")
	}
	if _, err := NewEncoder(Config{}); err == nil {
		t.Error("empty config accepted by encoder")
	}
	if _, err := NewDecoder(Config{}); err == nil {
		t.Error("empty config accepted by decoder")
	}
}

func TestEncodeDecodeKeyFrameQuality(t *testing.T) {
	cfg := ColorConfig(64, 48)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := FromColor(synthColor(64, 48, 0))
	pkt, err := enc.EncodeQP(src, 10) // high quality
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.Key {
		t.Error("first frame should be key")
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := PlaneRMSE(src, got); rmse > 4 {
		t.Errorf("key frame RMSE = %v at QP 10", rmse)
	}
	// Compression actually happened.
	raw := 3 * 64 * 48
	if pkt.SizeBytes() >= raw {
		t.Errorf("no compression: %d >= %d", pkt.SizeBytes(), raw)
	}
}

func TestEncoderDecoderStayInSync(t *testing.T) {
	cfg := ColorConfig(48, 48)
	cfg.GOP = 10
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 25; i++ {
		src := FromColor(synthColor(48, 48, i))
		pkt, err := enc.EncodeQP(src, 16)
		if err != nil {
			t.Fatal(err)
		}
		wantKey := i%10 == 0
		if pkt.Key != wantKey {
			t.Errorf("frame %d key = %v, want %v", i, pkt.Key, wantKey)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Decoder must match the encoder's own reconstruction bit-exactly —
		// otherwise prediction drift accumulates.
		recon := enc.LastRecon()
		for p := range got.Planes {
			for j := range got.Planes[p] {
				if got.Planes[p][j] != recon.Planes[p][j] {
					t.Fatalf("frame %d plane %d drifts at sample %d", i, p, j)
				}
			}
		}
	}
}

func TestInterFramesCheaperThanKey(t *testing.T) {
	cfg := ColorConfig(64, 64)
	cfg.GOP = 1000
	enc, _ := NewEncoder(cfg)
	im := synthColor(64, 64, 0)
	key, err := enc.EncodeQP(FromColor(im), 20)
	if err != nil {
		t.Fatal(err)
	}
	// Encode the SAME image again: inter prediction should make it tiny.
	delta, err := enc.EncodeQP(FromColor(im), 20)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Key {
		t.Fatal("second frame should be delta")
	}
	if delta.SizeBytes() >= key.SizeBytes()/3 {
		t.Errorf("static delta frame not cheap: key=%d delta=%d", key.SizeBytes(), delta.SizeBytes())
	}
}

func TestHigherQPSmallerAndWorse(t *testing.T) {
	src := FromColor(synthColor(96, 64, 3))
	var prevSize int
	var prevRMSE float64
	for i, qp := range []int{8, 20, 32, 44} {
		enc, _ := NewEncoder(ColorConfig(96, 64))
		dec, _ := NewDecoder(ColorConfig(96, 64))
		pkt, err := enc.EncodeQP(src, qp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		rmse := PlaneRMSE(src, got)
		if i > 0 {
			if pkt.SizeBytes() >= prevSize {
				t.Errorf("QP %d size %d not smaller than previous %d", qp, pkt.SizeBytes(), prevSize)
			}
			if rmse < prevRMSE {
				t.Errorf("QP %d RMSE %v better than previous %v", qp, rmse, prevRMSE)
			}
		}
		prevSize, prevRMSE = pkt.SizeBytes(), rmse
	}
}

func TestRateControlHitsTarget(t *testing.T) {
	cfg := ColorConfig(96, 96)
	cfg.GOP = 30
	enc, _ := NewEncoder(cfg)
	target := 2200
	var totalAfterWarmup, frames int
	for i := 0; i < 20; i++ {
		pkt, err := enc.Encode(FromColor(synthColor(96, 96, i)), target)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 3 && !pkt.Key { // rate model needs a few frames to converge
			totalAfterWarmup += pkt.SizeBytes()
			frames++
		}
	}
	avg := float64(totalAfterWarmup) / float64(frames)
	if avg > float64(target)*1.5 || avg < float64(target)*0.25 {
		t.Errorf("average delta-frame size %v far from target %d", avg, target)
	}
}

func TestRateControlAdaptsDown(t *testing.T) {
	// Dropping the target sharply must shrink packets within a frame or two
	// — the "direct adaptation" property (§1, Table 1).
	cfg := ColorConfig(96, 96)
	cfg.GOP = 1000
	enc, _ := NewEncoder(cfg)
	for i := 0; i < 6; i++ {
		if _, err := enc.Encode(FromColor(synthColor(96, 96, i)), 6000); err != nil {
			t.Fatal(err)
		}
	}
	var small int
	for i := 6; i < 10; i++ {
		pkt, err := enc.Encode(FromColor(synthColor(96, 96, i)), 600)
		if err != nil {
			t.Fatal(err)
		}
		small = pkt.SizeBytes()
	}
	if small > 1200 {
		t.Errorf("after target drop to 600, packets still %d bytes", small)
	}
}

func TestEncodeErrors(t *testing.T) {
	enc, _ := NewEncoder(ColorConfig(16, 16))
	if _, err := enc.Encode(NewFrame(16, 16, 3), 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := enc.EncodeQP(NewFrame(8, 8, 3), 20); err == nil {
		t.Error("wrong frame size accepted")
	}
	if _, err := enc.EncodeQP(NewFrame(16, 16, 1), 20); err == nil {
		t.Error("wrong plane count accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	dec, _ := NewDecoder(ColorConfig(16, 16))
	if _, err := dec.Decode(&Packet{Data: []byte{}}); err == nil {
		t.Error("empty packet accepted")
	}
	if _, err := dec.Decode(&Packet{Data: []byte{'X', 0, 0, 0}}); err == nil {
		t.Error("bad magic accepted")
	}
	// Delta frame without reference: craft via a real encoder.
	enc, _ := NewEncoder(ColorConfig(16, 16))
	src := FromColor(synthColor(16, 16, 0))
	if _, err := enc.EncodeQP(src, 20); err != nil {
		t.Fatal(err)
	}
	delta, err := enc.EncodeQP(src, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(delta); err == nil {
		t.Error("delta without reference accepted")
	}
	// Corrupted payload.
	bad := &Packet{Data: append([]byte{}, delta.Data...)}
	bad.Data[len(bad.Data)-1] ^= 0xFF
	fresh, _ := NewDecoder(ColorConfig(16, 16))
	key, _ := NewEncoder(ColorConfig(16, 16))
	kp, _ := key.EncodeQP(src, 20)
	if _, err := fresh.Decode(kp); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Decode(bad); err == nil {
		t.Log("corrupted payload decoded (flate may tolerate trailing corruption)")
	}
}

func TestForceKeyFrame(t *testing.T) {
	cfg := ColorConfig(32, 32)
	cfg.GOP = 1000
	enc, _ := NewEncoder(cfg)
	src := FromColor(synthColor(32, 32, 0))
	if _, err := enc.EncodeQP(src, 20); err != nil {
		t.Fatal(err)
	}
	p2, _ := enc.EncodeQP(src, 20)
	if p2.Key {
		t.Fatal("unexpected key frame")
	}
	enc.ForceKeyFrame()
	p3, _ := enc.EncodeQP(src, 20)
	if !p3.Key {
		t.Error("ForceKeyFrame ignored")
	}
	// A fresh decoder can join at the forced key frame.
	dec, _ := NewDecoder(cfg)
	if _, err := dec.Decode(p3); err != nil {
		t.Errorf("cannot join at forced key: %v", err)
	}
}

func TestDepthStream16Bit(t *testing.T) {
	cfg := DepthConfig(64, 48)
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 5; i++ {
		src := FromDepth(synthDepth(64, 48, i))
		pkt, err := enc.EncodeQP(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if rmse := PlaneRMSE(src, got); rmse > 150 { // of 65535 full scale (min step 256)
			t.Errorf("frame %d depth RMSE = %v", i, rmse)
		}
	}
}

func TestMotionSearchImprovesMovingContent(t *testing.T) {
	// With a translating scene, motion search should cut delta-frame size.
	// A random texture translated 2px per frame: zero-motion residuals are
	// expensive, motion-compensated ones nearly free.
	base := make([]uint8, 96+64)
	rng := rand.New(rand.NewSource(64))
	for i := range base {
		base[i] = uint8(rng.Intn(256))
	}
	mk := func(radius int) int {
		cfg := ColorConfig(96, 96)
		cfg.GOP = 1000
		cfg.SearchRadius = radius
		enc, _ := NewEncoder(cfg)
		total := 0
		for i := 0; i < 6; i++ {
			im := frame.NewColorImage(96, 96)
			for y := 0; y < 96; y++ {
				for x := 0; x < 96; x++ {
					v := base[(x+2*i)%len(base)]
					im.Set(x, y, v, v, v)
				}
			}
			pkt, err := enc.EncodeQP(FromColor(im), 22)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 {
				total += pkt.SizeBytes()
			}
		}
		return total
	}
	noSearch := mk(0)
	withSearch := mk(2)
	if withSearch >= noSearch {
		t.Errorf("motion search did not help: %d vs %d", withSearch, noSearch)
	}
}

func TestQPToStepDoubling(t *testing.T) {
	for qp := 0; qp < 40; qp++ {
		r := qpToStep(qp+6, 8) / qpToStep(qp, 8)
		if math.Abs(r-2) > 1e-9 {
			t.Fatalf("step ratio at qp %d = %v", qp, r)
		}
	}
	if math.Abs(qpToStep(4, 8)-1) > 1e-12 {
		t.Errorf("qp 4 step = %v, want 1", qpToStep(4, 8))
	}
	// 16-bit planes quantize relative to their full scale (H.265-style):
	// the same QP uses a 256x larger step.
	if math.Abs(qpToStep(20, 16)/qpToStep(20, 8)-256) > 1e-9 {
		t.Error("bit-depth step scaling wrong")
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range zigzag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	// Starts at DC, ends at highest frequency.
	if zigzag[0] != 0 || zigzag[63] != 63 {
		t.Errorf("zigzag endpoints: %d %d", zigzag[0], zigzag[63])
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		var b, orig [blockSize * blockSize]float64
		for i := range b {
			b[i] = float64(rng.Intn(65536))
			orig[i] = b[i]
		}
		fdct2d(&b)
		idct2d(&b)
		for i := range b {
			if math.Abs(b[i]-orig[i]) > 1e-6 {
				t.Fatalf("DCT round trip error %v at %d", b[i]-orig[i], i)
			}
		}
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	// Orthonormal transform: sum of squares preserved (Parseval).
	rng := rand.New(rand.NewSource(63))
	var b [blockSize * blockSize]float64
	var e1 float64
	for i := range b {
		b[i] = rng.NormFloat64() * 100
		e1 += b[i] * b[i]
	}
	fdct2d(&b)
	var e2 float64
	for i := range b {
		e2 += b[i] * b[i]
	}
	if math.Abs(e1-e2)/e1 > 1e-9 {
		t.Errorf("energy not preserved: %v vs %v", e1, e2)
	}
}

func TestNonMultipleOf8Dimensions(t *testing.T) {
	cfg := ColorConfig(37, 29)
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 4; i++ {
		src := FromColor(synthColor(37, 29, i))
		pkt, err := enc.EncodeQP(src, 14)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if got.W != 37 || got.H != 29 {
			t.Fatalf("decoded size %dx%d", got.W, got.H)
		}
		if rmse := PlaneRMSE(src, got); rmse > 9 { // 4:2:0 chroma loss included
			t.Errorf("frame %d RMSE = %v", i, rmse)
		}
	}
}

func BenchmarkEncodeColor(b *testing.B) {
	cfg := ColorConfig(320, 288)
	enc, _ := NewEncoder(cfg)
	frames := make([]*Frame, 4)
	for i := range frames {
		frames[i] = FromColor(synthColor(320, 288, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%4], 8000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeColor(b *testing.B) {
	cfg := ColorConfig(320, 288)
	enc, _ := NewEncoder(cfg)
	var pkts []*Packet
	for i := 0; i < 8; i++ {
		p, _ := enc.Encode(FromColor(synthColor(320, 288, i)), 8000)
		pkts = append(pkts, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, _ := NewDecoder(cfg)
		for _, p := range pkts {
			if _, err := dec.Decode(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestConfigExplicitZero(t *testing.T) {
	// The zero value selects defaults...
	def, err := NewEncoder(ColorConfig(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if c := def.Config(); c.MaxQP != 51 || c.ChromaQPOffset != 6 || c.FlateLevel != 4 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// ...and ExplicitZero expresses an actual 0 for each defaulted field.
	cfg := ColorConfig(16, 16)
	cfg.MaxQP = ExplicitZero
	cfg.ChromaQPOffset = ExplicitZero
	cfg.FlateLevel = ExplicitZero
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := enc.Config(); c.MaxQP != 0 || c.ChromaQPOffset != 0 || c.FlateLevel != 0 {
		t.Fatalf("explicit zeros overridden: %+v", c)
	}
	// MaxQP pinned to 0 must actually force QP 0 even under rate control.
	pkt, err := enc.Encode(FromColor(synthColor(16, 16, 0)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.QP != 0 {
		t.Errorf("MaxQP=ExplicitZero but rate control chose QP %d", pkt.QP)
	}
	// Other negative offsets still pass through verbatim.
	cfg2 := ColorConfig(16, 16)
	cfg2.ChromaQPOffset = -3
	enc2, err := NewEncoder(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c := enc2.Config(); c.ChromaQPOffset != -3 {
		t.Errorf("ChromaQPOffset -3 rewritten to %d", c.ChromaQPOffset)
	}
	// An ExplicitZero encoder/decoder pair round-trips.
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(pkt); err != nil {
		t.Fatal(err)
	}
}

// encodeSequence encodes n synthetic frames and returns the concatenated
// packet bytes (and the packets themselves).
func encodeSequence(t *testing.T, cfg Config, n int) ([]byte, []*Packet) {
	t.Helper()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	var pkts []*Packet
	for i := 0; i < n; i++ {
		pkt, err := enc.Encode(FromColor(synthColor(cfg.Width, cfg.Height, i)), 2000)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, pkt.Data...)
		pkts = append(pkts, pkt)
	}
	return all, pkts
}

func TestBitstreamDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// The stripe-parallel encoder must emit byte-identical packets for any
	// worker count — entropy streams are concatenated in deterministic
	// stripe order (§3.2's parallel encoder sessions must not change the
	// bitstream). 129 rows -> 17 block rows -> 3 stripes.
	cfg := ColorConfig(96, 129)
	cfg.GOP = 5
	cfg.SearchRadius = 1

	old := runtime.GOMAXPROCS(1)
	serial, _ := encodeSequence(t, cfg, 12)
	runtime.GOMAXPROCS(4)
	parallel, pkts := encodeSequence(t, cfg, 12)
	runtime.GOMAXPROCS(old)

	if !bytes.Equal(serial, parallel) {
		t.Fatal("bitstream differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}

	// And the parallel decoder reconstructs identically at both settings.
	decodeAll := func() []*Frame {
		dec, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []*Frame
		for _, p := range pkts {
			f, err := dec.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			// Decode returns a decoder-owned frame overwritten by the next
			// call; Clone to retain the whole sequence.
			out = append(out, f.Clone())
		}
		return out
	}
	runtime.GOMAXPROCS(1)
	f1 := decodeAll()
	runtime.GOMAXPROCS(4)
	f4 := decodeAll()
	runtime.GOMAXPROCS(old)
	for i := range f1 {
		for p := range f1[i].Planes {
			for j := range f1[i].Planes[p] {
				if f1[i].Planes[p][j] != f4[i].Planes[p][j] {
					t.Fatalf("frame %d plane %d differs at %d across GOMAXPROCS", i, p, j)
				}
			}
		}
	}
}

func TestLastReconReusesFrame(t *testing.T) {
	enc, _ := NewEncoder(ColorConfig(64, 48))
	src := FromColor(synthColor(64, 48, 0))
	if _, err := enc.EncodeQP(src, 16); err != nil {
		t.Fatal(err)
	}
	r1 := enc.LastRecon()
	r2 := enc.LastRecon()
	if r1 != r2 {
		t.Error("LastRecon allocated a new frame on the second call")
	}
	// The splitter probes this once per tick at full tile resolution; it
	// must not allocate in steady state.
	if allocs := testing.AllocsPerRun(20, func() { enc.LastRecon() }); allocs != 0 {
		t.Errorf("LastRecon allocates %v per call", allocs)
	}
	// Content still matches a fresh decode.
	dec, _ := NewDecoder(ColorConfig(64, 48))
	enc.ForceKeyFrame()
	pkt, _ := enc.EncodeQP(src, 16)
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	_ = got // r1 now refreshed by next LastRecon call
	recon := enc.LastRecon()
	for p := range recon.Planes {
		for j := range recon.Planes[p] {
			if recon.Planes[p][j] != got.Planes[p][j] {
				t.Fatalf("cached recon drifts from decode at plane %d sample %d", p, j)
			}
		}
	}
}

func TestEncodeSteadyStateAllocs(t *testing.T) {
	// In steady state the encode hot path allocates only the returned
	// packet: arena pictures, the per-encoder scratch freelist, and reused
	// deflate state cover the rest. Allow a small budget for the packet
	// itself.
	enc, _ := NewEncoder(ColorConfig(128, 96))
	frames := [2]*Frame{
		FromColor(synthColor(128, 96, 0)),
		FromColor(synthColor(128, 96, 1)),
	}
	for i := 0; i < 4; i++ { // warm up pools and the rate model
		if _, err := enc.Encode(frames[i&1], 3000); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(30, func() {
		i++
		if _, err := enc.Encode(frames[i&1], 3000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Errorf("steady-state encode allocates %v objects per frame", allocs)
	}
}

func TestChroma420PlaneDims(t *testing.T) {
	cfg := ColorConfig(37, 29)
	w, h := cfg.planeDims(0)
	if w != 37 || h != 29 {
		t.Errorf("luma dims %dx%d", w, h)
	}
	w, h = cfg.planeDims(1)
	if w != 19 || h != 15 {
		t.Errorf("chroma dims %dx%d", w, h)
	}
	d := DepthConfig(37, 29)
	if w, h := d.planeDims(0); w != 37 || h != 29 {
		t.Errorf("depth dims %dx%d", w, h)
	}
}

func TestDownUpsampleRoundTrip(t *testing.T) {
	// Constant planes survive 4:2:0 exactly; gradients within +-1 of the
	// 2x2 box average.
	w, h := 10, 7
	src := make([]int32, w*h)
	for i := range src {
		src[i] = 77
	}
	dw, dh := (w+1)/2, (h+1)/2
	down := make([]int32, dw*dh)
	downsample2x(src, w, h, down, dw, dh)
	up := make([]int32, w*h)
	upsample2x(down, dw, dh, up, w, h)
	for i := range up {
		if up[i] != 77 {
			t.Fatalf("constant plane corrupted at %d: %d", i, up[i])
		}
	}
}

func TestChroma420SavesBits(t *testing.T) {
	// The same content coded 4:4:4 vs 4:2:0 at equal QP: 4:2:0 is smaller.
	src := FromColor(synthColor(96, 96, 1))
	cfg444 := ColorConfig(96, 96)
	cfg444.Chroma420 = false
	cfg420 := ColorConfig(96, 96)
	e444, _ := NewEncoder(cfg444)
	e420, _ := NewEncoder(cfg420)
	p444, err := e444.EncodeQP(src, 18)
	if err != nil {
		t.Fatal(err)
	}
	p420, err := e420.EncodeQP(src, 18)
	if err != nil {
		t.Fatal(err)
	}
	if p420.SizeBytes() >= p444.SizeBytes() {
		t.Errorf("4:2:0 not smaller: %d vs %d", p420.SizeBytes(), p444.SizeBytes())
	}
	// And it still decodes to a reasonable picture.
	dec, _ := NewDecoder(cfg420)
	got, err := dec.Decode(p420)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := PlaneRMSE(src, got); rmse > 12 {
		t.Errorf("4:2:0 RMSE = %v", rmse)
	}
}

// hashFrame folds every sample of every plane into an FNV-1a hash, so two
// decodes can be compared without retaining either.
func hashFrame(f *Frame) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(f.W))
	mix(uint64(f.H))
	for _, pl := range f.Planes {
		for _, v := range pl {
			mix(uint64(uint32(v)))
		}
	}
	return h
}

func TestDecodeBitExactAcrossGOMAXPROCS(t *testing.T) {
	// The parallel decode path (stripe reconstruction + row-span expansion)
	// must produce byte-identical frames at any worker count. 4:2:0 and odd
	// dimensions exercise the upsampling spans; GOP 4 mixes key and delta
	// frames.
	cfg := ColorConfig(120, 93)
	cfg.GOP = 4
	cfg.SearchRadius = 1
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*Packet
	for i := 0; i < 10; i++ {
		p, err := enc.EncodeQP(FromColor(synthColor(120, 93, i)), 18)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	hashes := func() []uint64 {
		dec, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for _, p := range pkts {
			f, err := dec.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, hashFrame(f))
		}
		return out
	}
	old := runtime.GOMAXPROCS(1)
	h1 := hashes()
	runtime.GOMAXPROCS(4)
	h4 := hashes()
	runtime.GOMAXPROCS(old)
	for i := range h1 {
		if h1[i] != h4[i] {
			t.Fatalf("frame %d decodes differently at GOMAXPROCS 1 vs 4", i)
		}
	}
}

func TestDecodeReusesOutputFrame(t *testing.T) {
	cfg := ColorConfig(64, 48)
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	p0, err := enc.EncodeQP(FromColor(synthColor(64, 48, 0)), 16)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := enc.EncodeQP(FromColor(synthColor(64, 48, 1)), 16)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := dec.Decode(p0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := dec.Decode(p1)
	if err != nil {
		t.Fatal(err)
	}
	if f0 != f1 {
		t.Error("Decode allocated a new output frame instead of reusing the arena")
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	// In steady state decode draws everything — reference pictures, parsed
	// symbol tables, inflate state, and the output frame — from per-decoder
	// arenas. The small budget covers the transient stream readers.
	// GOMAXPROCS is pinned to 1 because ParFor's worker spawns allocate;
	// they are not part of the per-frame arena story.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	cfg := ColorConfig(128, 96)
	cfg.GOP = 2
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	var pkts []*Packet
	for i := 0; i < 4; i++ {
		p, err := enc.EncodeQP(FromColor(synthColor(128, 96, i)), 16)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	for _, p := range pkts { // warm the arenas through a full GOP cycle
		if _, err := dec.Decode(p); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(30, func() {
		// Each run replays from the key frame so every delta extends the
		// reference the decoder actually holds.
		if _, err := dec.Decode(pkts[i%4]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 12 {
		t.Errorf("steady-state decode allocates %v objects per frame, want <= 12", allocs)
	}
}
