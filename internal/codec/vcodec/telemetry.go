package vcodec

import (
	"time"

	"livo/internal/telemetry"
)

// Codec-level telemetry (frame-path observability, DESIGN.md §6). The
// handles resolve against telemetry.Default once at package init; each
// successful encode/decode costs one histogram observation (a few atomic
// ops against a ~hundreds-of-ms 4K encode). `livo-bench -codecbench`
// measures the registry-on vs registry-off delta into BENCH_telemetry.json.
var (
	telEncodeSeconds = telemetry.Default.Histogram("livo_vcodec_encode_seconds", telemetry.LatencyBuckets)
	telDecodeSeconds = telemetry.Default.Histogram("livo_vcodec_decode_seconds", telemetry.LatencyBuckets)
	telEncodedBytes  = telemetry.Default.Counter("livo_vcodec_encoded_bytes_total")
	telDecodeErrors  = telemetry.Default.Counter("livo_vcodec_decode_errors_total")
)

// Decode reconstructs one frame from a packet. Malformed input returns an
// error wrapping ErrCorrupt; a delta frame that does not extend the
// decoder's current reference returns an error wrapping ErrStaleReference.
// Decoder state is only advanced on success, so a failed packet can be
// skipped and decoding resumed at the next key frame.
//
// The returned frame is owned by the decoder and overwritten by the next
// successful Decode call; Clone it to retain it across decodes.
func (d *Decoder) Decode(pkt *Packet) (*Frame, error) {
	start := time.Now()
	f, err := d.decode(pkt)
	if err != nil {
		telDecodeErrors.Inc()
		return nil, err
	}
	telDecodeSeconds.ObserveDuration(time.Since(start))
	return f, nil
}
