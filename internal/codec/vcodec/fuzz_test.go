package vcodec

import "testing"

// FuzzDecode hardens the bitstream parser: arbitrary bytes must yield an
// error (ErrCorrupt/ErrStaleReference for malformed or out-of-chain input),
// never a panic or an unbounded allocation. Each input is decoded both
// against a warm reference (delta position) and on a fresh decoder (key
// position) so both header paths see the data.
func FuzzDecode(f *testing.F) {
	cfg := ColorConfig(32, 32)
	cfg.GOP = 4
	enc, err := NewEncoder(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for i := 0; i < 5; i++ {
		pkt, err := enc.EncodeQP(FromColor(synthColor(32, 32, i)), 20)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, pkt.Data)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add(seeds[1][:len(seeds[1])/2])
	key := seeds[0]

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(&Packet{Data: key}); err != nil {
			t.Fatalf("valid key frame rejected: %v", err)
		}
		if _, err := dec.Decode(&Packet{Data: data}); err == nil {
			// Accepted input must have advanced the reference.
			if !dec.HasReference() {
				t.Fatal("decode succeeded without establishing a reference")
			}
		}
		fresh, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = fresh.Decode(&Packet{Data: data})
	})
}
