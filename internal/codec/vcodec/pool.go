package vcodec

// scratch is a per-codec freelist for per-frame transient state: stripe
// symbol writers, chroma subsampling buffers, and the decoder's parsed
// symbol tables. In steady state the encode and decode hot paths draw
// every intermediate buffer from here (or from the picture arena in
// Encoder/Decoder), so the only per-frame heap allocations left are the
// outputs the caller keeps: the Packet payload on encode and the Frame on
// decode.
//
// The freelist deliberately lives on the codec instance rather than in
// global sync.Pools: pool contents are dropped across GC cycles, and a 4K
// encode produces enough garbage to trigger collections that would
// re-allocate its ~200 stripe writers every few frames. Instance-owned
// scratch is reachable for as long as the codec is, so reuse is
// deterministic. Codecs are single-user (encoders and decoders are not
// safe for concurrent use), and each stripe job takes distinct writers
// before the parallel phase starts, so no locking is needed.
type scratch struct {
	writers []*byteWriter
	nw      int
	bufs    [][]int32
	nb      int
	parsed  []*parsedPlane
	np      int
}

// reset makes all scratch available again; the next acquisitions reuse
// the same objects in the same order, keeping buffer shapes stable from
// frame to frame.
func (s *scratch) reset() { s.nw, s.nb, s.np = 0, 0, 0 }

// getWriter returns an empty symbol writer, reusing a previous frame's.
func (s *scratch) getWriter() *byteWriter {
	if s.nw == len(s.writers) {
		s.writers = append(s.writers, new(byteWriter))
	}
	w := s.writers[s.nw]
	s.nw++
	w.buf = w.buf[:0]
	return w
}

// getPlaneBuf returns an int32 buffer of length n (chroma downsampling
// scratch), reusing capacity across frames.
func (s *scratch) getPlaneBuf(n int) []int32 {
	if s.nb == len(s.bufs) {
		s.bufs = append(s.bufs, nil)
	}
	b := s.bufs[s.nb]
	if cap(b) < n {
		b = make([]int32, n)
		s.bufs[s.nb] = b
	}
	s.nb++
	return b[:n]
}

// getParsed returns a parsed-symbol table sized for nblocks.
func (s *scratch) getParsed(nblocks int) *parsedPlane {
	if s.np == len(s.parsed) {
		s.parsed = append(s.parsed, new(parsedPlane))
	}
	pp := s.parsed[s.np]
	s.np++
	pp.reset(nblocks)
	return pp
}
