// Package depth implements LiVo's depth-stream encodings (§3.2, Fig 17):
//
//   - Scaled16 — LiVo's scheme: 16-bit depth values scaled to occupy the
//     full 16-bit range before coding in the single 16-bit Y plane. For a
//     given quantizer step, scaling by k keeps values k-times further apart,
//     so fewer distinct depths collapse into one quantization bin.
//   - Unscaled16 — the naive 16-bit Y mode: raw millimeter values (only
//     ~6000 of 65536 codes used), which suffers visible block artifacts
//     (Fig A.1).
//   - RGBPacked — prior work's approach [39, 76, 84]: the 16-bit value is
//     split across the channels of an ordinary 8-bit color frame. Chroma
//     subquantization and block transforms tear the low byte apart at
//     discontinuities, producing large depth errors.
//
// All three ride on the same rate-adaptive video codec so Fig 17 compares
// encodings, not codecs.
package depth

import (
	"fmt"

	"livo/internal/codec/vcodec"
	"livo/internal/frame"
)

// Scheme selects the depth-to-video mapping.
type Scheme int

// Depth encoding schemes (Fig 17).
const (
	Scaled16   Scheme = iota // LiVo: full-range-scaled 16-bit Y
	Unscaled16               // naive 16-bit Y
	RGBPacked                // hi/lo bytes packed into color channels
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Scaled16:
		return "scaled16"
	case Unscaled16:
		return "unscaled16"
	case RGBPacked:
		return "rgb-packed"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// DefaultMaxMM is the depth range commodity cameras cover: 6 m at
// millimeter resolution (§3.2).
const DefaultMaxMM = 6000

// DefaultMinValidMM mirrors the sensors' minimum range: decoded depths
// below it are treated as "no measurement", which also suppresses coding
// noise around culled (zero) pixels.
const DefaultMinValidMM = 150

// Config parameterizes a depth encoder/decoder pair.
type Config struct {
	Scheme        Scheme
	Width, Height int
	MaxMM         uint16 // full-scale depth in millimeters (default 6000)
	MinValidMM    uint16 // validity threshold on decode (default 150)
	GOP           int    // passed through to the video codec
	FlateLevel    int
}

func (c Config) withDefaults() Config {
	if c.MaxMM == 0 {
		c.MaxMM = DefaultMaxMM
	}
	if c.MinValidMM == 0 {
		c.MinValidMM = DefaultMinValidMM
	}
	return c
}

func (c Config) videoConfig() vcodec.Config {
	var vc vcodec.Config
	if c.Scheme == RGBPacked {
		vc = vcodec.ColorConfig(c.Width, c.Height)
	} else {
		vc = vcodec.DepthConfig(c.Width, c.Height)
	}
	vc.GOP = c.GOP
	vc.FlateLevel = c.FlateLevel
	return vc
}

// Encoder encodes a stream of depth images under one scheme.
type Encoder struct {
	cfg Config
	enc *vcodec.Encoder
	// vf and tmpColor are per-encoder staging scratch, reused every frame
	// so the per-tick encode path does not allocate video frames;
	// reconDepth caches the LastReconDepth output image.
	vf         *vcodec.Frame
	tmpColor   *frame.ColorImage
	reconDepth *frame.DepthImage
}

// NewEncoder creates a depth encoder.
func NewEncoder(cfg Config) (*Encoder, error) {
	cfg = cfg.withDefaults()
	enc, err := vcodec.NewEncoder(cfg.videoConfig())
	if err != nil {
		return nil, err
	}
	return &Encoder{cfg: cfg, enc: enc}, nil
}

// toVideoFrame maps a depth image into the scheme's video-frame layout,
// reusing the encoder's staging frame.
func (e *Encoder) toVideoFrame(im *frame.DepthImage) (*vcodec.Frame, error) {
	cfg := e.cfg
	if im.W != cfg.Width || im.H != cfg.Height {
		return nil, fmt.Errorf("depth: image %dx%d does not match config %dx%d", im.W, im.H, cfg.Width, cfg.Height)
	}
	if e.vf == nil {
		nplanes := 1
		if cfg.Scheme == RGBPacked {
			nplanes = 3
		}
		e.vf = vcodec.NewFrame(im.W, im.H, nplanes)
	}
	f := e.vf
	switch cfg.Scheme {
	case Scaled16:
		maxMM := uint32(cfg.MaxMM)
		for i, d := range im.Pix {
			v := uint32(d)
			if v > maxMM {
				v = maxMM
			}
			f.Planes[0][i] = int32((v*65535 + maxMM/2) / maxMM)
		}
		return f, nil
	case Unscaled16:
		vcodec.FromDepthInto(im, f)
		return f, nil
	case RGBPacked:
		if e.tmpColor == nil {
			e.tmpColor = frame.NewColorImage(im.W, im.H)
		}
		c := e.tmpColor
		for i, d := range im.Pix {
			c.Pix[3*i] = uint8(d >> 8)   // high byte
			c.Pix[3*i+1] = uint8(d)      // low byte
			c.Pix[3*i+2] = uint8(d >> 8) // duplicated high byte adds robustness
		}
		vcodec.FromColorInto(c, f)
		return f, nil
	default:
		return nil, fmt.Errorf("depth: unknown scheme %v", cfg.Scheme)
	}
}

// fromVideoFrameInto maps a decoded video frame back into an existing
// depth image of the same geometry. tmp points at reusable RGBPacked
// staging scratch owned by the caller; it is allocated on first use and
// untouched by the other schemes.
func (cfg Config) fromVideoFrameInto(f *vcodec.Frame, im *frame.DepthImage, tmp **frame.ColorImage) {
	switch cfg.Scheme {
	case Scaled16:
		maxMM := uint32(cfg.MaxMM)
		for i, v := range f.Planes[0] {
			if v < 0 {
				v = 0
			}
			if v > 65535 {
				v = 65535
			}
			im.Pix[i] = uint16((uint32(v)*maxMM + 32767) / 65535)
		}
	case Unscaled16:
		f.ToDepthInto(im)
	case RGBPacked:
		if *tmp == nil {
			*tmp = frame.NewColorImage(f.W, f.H)
		}
		c := *tmp
		f.ToColorInto(c)
		for i := 0; i < f.W*f.H; i++ {
			hi := (uint16(c.Pix[3*i]) + uint16(c.Pix[3*i+2])) / 2
			lo := uint16(c.Pix[3*i+1])
			im.Pix[i] = hi<<8 | lo
		}
	default:
		for i := range im.Pix {
			im.Pix[i] = 0
		}
	}
	// Apply the validity threshold.
	for i, d := range im.Pix {
		if d < cfg.MinValidMM {
			im.Pix[i] = 0
		}
	}
}

// Encode rate-controls the frame to targetBytes.
func (e *Encoder) Encode(im *frame.DepthImage, targetBytes int) (*vcodec.Packet, error) {
	f, err := e.toVideoFrame(im)
	if err != nil {
		return nil, err
	}
	return e.enc.Encode(f, targetBytes)
}

// EncodeQP encodes at a fixed quantization parameter (NoAdapt baseline).
func (e *Encoder) EncodeQP(im *frame.DepthImage, qp int) (*vcodec.Packet, error) {
	f, err := e.toVideoFrame(im)
	if err != nil {
		return nil, err
	}
	return e.enc.EncodeQP(f, qp)
}

// ForceKeyFrame forces the next frame to be a key frame.
func (e *Encoder) ForceKeyFrame() { e.enc.ForceKeyFrame() }

// LastReconDepth returns the encoder-side reconstruction of the last frame
// as a depth image — the splitter's sender-side quality probe (§3.3).
//
// The returned image is owned by the encoder and overwritten by the next
// LastReconDepth call (the probe reads it once per tick); Clone it to
// retain it.
func (e *Encoder) LastReconDepth() *frame.DepthImage {
	r := e.enc.LastRecon()
	if r == nil {
		return nil
	}
	if e.reconDepth == nil {
		e.reconDepth = frame.NewDepthImage(r.W, r.H)
	}
	e.cfg.fromVideoFrameInto(r, e.reconDepth, &e.tmpColor)
	return e.reconDepth
}

// Decoder decodes a depth stream.
type Decoder struct {
	cfg Config
	dec *vcodec.Decoder
	// tmpColor is reusable RGBPacked unpack staging.
	tmpColor *frame.ColorImage
}

// NewDecoder creates a decoder matching the encoder's configuration.
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.withDefaults()
	dec, err := vcodec.NewDecoder(cfg.videoConfig())
	if err != nil {
		return nil, err
	}
	return &Decoder{cfg: cfg, dec: dec}, nil
}

// Decode reconstructs a depth image from a packet. The returned image is
// freshly allocated — unlike the underlying video frame it escapes into
// the receiver's pairing maps, so its lifetime is the caller's.
func (d *Decoder) Decode(pkt *vcodec.Packet) (*frame.DepthImage, error) {
	f, err := d.dec.Decode(pkt)
	if err != nil {
		return nil, err
	}
	im := frame.NewDepthImage(f.W, f.H)
	d.cfg.fromVideoFrameInto(f, im, &d.tmpColor)
	return im, nil
}
