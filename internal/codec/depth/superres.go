package depth

import "livo/internal/frame"

// Depth super-resolution: footnote 2 of the paper notes the alternative
// design of transmitting color at full resolution and upsampling depth at
// the receiver, rejected because it "can incur lower quality". These
// helpers implement that alternative so the trade-off can be measured
// (TestSuperResolutionLosesToNative).

// Downsample2x halves a depth image (picking the nearest valid sample in
// each 2x2 block — averaging across depth discontinuities would invent
// geometry between surfaces).
func Downsample2x(im *frame.DepthImage) *frame.DepthImage {
	w, h := (im.W+1)/2, (im.H+1)/2
	out := frame.NewDepthImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Median-of-valid within the block, approximated by the
			// min-max midpoint of valid samples when all close, else the
			// first valid (avoids inventing mid-air points).
			var vals []uint16
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < im.W && sy < im.H {
						if v := im.At(sx, sy); v != 0 {
							vals = append(vals, v)
						}
					}
				}
			}
			if len(vals) == 0 {
				continue
			}
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if int(mx)-int(mn) < 100 { // smooth region: midpoint
				out.Set(x, y, (mn+mx)/2)
			} else { // discontinuity: keep the nearest surface
				out.Set(x, y, mn)
			}
		}
	}
	return out
}

// SuperResolve2x upsamples a depth image 2x with edge-aware bilinear
// interpolation: interpolation only happens between samples on the same
// surface (within jumpMM); across discontinuities the nearest sample wins.
func SuperResolve2x(im *frame.DepthImage, outW, outH int, jumpMM uint16) *frame.DepthImage {
	out := frame.NewDepthImage(outW, outH)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			// Source coordinates in the low-res grid.
			fx := float64(x) / 2
			fy := float64(y) / 2
			x0, y0 := int(fx), int(fy)
			x1, y1 := x0+1, y0+1
			if x0 >= im.W {
				x0 = im.W - 1
			}
			if y0 >= im.H {
				y0 = im.H - 1
			}
			if x1 >= im.W {
				x1 = x0
			}
			if y1 >= im.H {
				y1 = y0
			}
			v00 := im.At(x0, y0)
			v10 := im.At(x1, y0)
			v01 := im.At(x0, y1)
			v11 := im.At(x1, y1)
			if v00 == 0 {
				continue // no measurement to extend
			}
			mn, mx := v00, v00
			valid := true
			for _, v := range []uint16{v10, v01, v11} {
				if v == 0 {
					valid = false
					break
				}
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if !valid || mx-mn > jumpMM {
				out.Set(x, y, v00) // discontinuity or hole: nearest
				continue
			}
			wx := fx - float64(x0)
			wy := fy - float64(y0)
			top := float64(v00)*(1-wx) + float64(v10)*wx
			bot := float64(v01)*(1-wx) + float64(v11)*wx
			out.Set(x, y, uint16(top*(1-wy)+bot*wy+0.5))
		}
	}
	return out
}
