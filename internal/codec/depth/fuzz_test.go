package depth

import (
	"testing"

	"livo/internal/codec/vcodec"
)

// FuzzDecode hardens depth bitstream parsing across the scaled-16 wrapper
// and the underlying video codec: arbitrary bytes must return an error,
// never panic. As in the vcodec fuzz target, inputs are tried both after a
// valid key frame and on a fresh decoder.
func FuzzDecode(f *testing.F) {
	cfg := Config{Scheme: Scaled16, Width: 32, Height: 32, GOP: 4}
	enc, err := NewEncoder(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for i := 0; i < 4; i++ {
		pkt, err := enc.EncodeQP(sceneDepth(32, 32, i), 18)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, pkt.Data)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add(seeds[1][:len(seeds[1])/2])
	key := seeds[0]

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(&vcodec.Packet{Data: key}); err != nil {
			t.Fatalf("valid key frame rejected: %v", err)
		}
		_, _ = dec.Decode(&vcodec.Packet{Data: data})
		fresh, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = fresh.Decode(&vcodec.Packet{Data: data})
	})
}
