package depth

import (
	"testing"

	"livo/internal/frame"
)

func TestDownsampleUpsampleSmooth(t *testing.T) {
	// Smooth ramp: SR recovers it closely.
	src := frame.NewDepthImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			src.Set(x, y, uint16(1000+x*20+y*10))
		}
	}
	low := Downsample2x(src)
	if low.W != 16 || low.H != 16 {
		t.Fatalf("low res %dx%d", low.W, low.H)
	}
	up := SuperResolve2x(low, 32, 32, 300)
	if rmse := depthRMSE(src, up); rmse > 15 {
		t.Errorf("smooth SR RMSE = %v mm", rmse)
	}
}

func TestSuperResolvePreservesEdges(t *testing.T) {
	// A foreground/background step must not produce mid-air points.
	src := frame.NewDepthImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				src.Set(x, y, 1000)
			} else {
				src.Set(x, y, 4000)
			}
		}
	}
	up := SuperResolve2x(Downsample2x(src), 32, 32, 300)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := up.At(x, y)
			if v == 0 {
				continue
			}
			if v > 1200 && v < 3800 {
				t.Fatalf("mid-air point %d at (%d,%d)", v, x, y)
			}
		}
	}
}

func TestSuperResolveHoles(t *testing.T) {
	src := frame.NewDepthImage(8, 8)
	src.Set(2, 2, 2000) // one isolated valid sample
	low := Downsample2x(src)
	up := SuperResolve2x(low, 8, 8, 300)
	// The valid region extends but no fabricated far-field values appear.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if v := up.At(x, y); v != 0 && (v < 1900 || v > 2100) {
				t.Fatalf("invented depth %d at (%d,%d)", v, x, y)
			}
		}
	}
}

// TestSuperResolutionLosesToNative measures the footnote-2 trade-off: with
// enough bits for the native stream (the paper's operating point), native
// depth beats transmit-half + super-resolve, because interpolation cannot
// recover surface detail. (At starvation bitrates the ordering flips —
// classic rate-distortion behaviour — which is why this is a design choice
// and not a free win.)
func TestSuperResolutionLosesToNative(t *testing.T) {
	// Content with fine structure (the surface-detail regime of real
	// captures).
	mk := func(tt int) *frame.DepthImage {
		im := frame.NewDepthImage(64, 48)
		for y := 0; y < 48; y++ {
			for x := 0; x < 64; x++ {
				base := 2000 + x*15 + y*8
				bump := int(300 * pseudo(x/2, y/2, tt)) // ~3cm features
				im.Set(x, y, uint16(base+bump))
			}
		}
		return im
	}

	// Native: encode 64x48 at budget B.
	cfgN := Config{Scheme: Scaled16, Width: 64, Height: 48, GOP: 30}
	encN, _ := NewEncoder(cfgN)
	decN, _ := NewDecoder(cfgN)
	// SR path: downsample to 32x24, encode at the SAME budget, upsample.
	cfgS := Config{Scheme: Scaled16, Width: 32, Height: 24, GOP: 30}
	encS, _ := NewEncoder(cfgS)
	decS, _ := NewDecoder(cfgS)

	budget := 4500
	var nat, sr float64
	n := 0
	for i := 0; i < 8; i++ {
		src := mk(i)
		pn, err := encN.Encode(src, budget)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := decN.Decode(pn)
		if err != nil {
			t.Fatal(err)
		}
		low := Downsample2x(src)
		ps, err := encS.Encode(low, budget)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := decS.Decode(ps)
		if err != nil {
			t.Fatal(err)
		}
		up := SuperResolve2x(gs, 64, 48, 300)
		if i < 2 {
			continue
		}
		nat += depthRMSE(src, gn)
		sr += depthRMSE(src, up)
		n++
	}
	nat /= float64(n)
	sr /= float64(n)
	t.Logf("native RMSE %.1f mm, super-resolved %.1f mm at equal bits", nat, sr)
	if nat >= sr {
		t.Errorf("super-resolution unexpectedly beat native: %v vs %v", sr, nat)
	}
}

// pseudo is a deterministic hash in [-1, 1).
func pseudo(x, y, t int) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xBF58476D1CE4E5B9 ^ uint64(t)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	return float64(h%2048)/1024 - 1
}
