package depth

import (
	"math"
	"math/rand"
	"testing"

	"livo/internal/frame"
)

// sceneDepth synthesizes a depth map with smooth regions and sharp object
// boundaries — the structure that separates the schemes in Fig 17.
func sceneDepth(w, h, t int) *frame.DepthImage {
	im := frame.NewDepthImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint16(2000+y*2500/h)) // sloped background
		}
	}
	// Foreground person-ish blob with a hard edge.
	cx := w/2 + t
	for y := h / 4; y < 3*h/4; y++ {
		for x := cx - w/6; x < cx+w/6; x++ {
			if x >= 0 && x < w {
				im.Set(x, y, 1200)
			}
		}
	}
	return im
}

// depthRMSE over valid (non-zero in both) pixels, in millimeters.
func depthRMSE(a, b *frame.DepthImage) float64 {
	var sum float64
	var n int
	for i := range a.Pix {
		if a.Pix[i] == 0 {
			continue
		}
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

func roundTrip(t *testing.T, scheme Scheme, qp int) (float64, int) {
	t.Helper()
	cfg := Config{Scheme: scheme, Width: 64, Height: 48}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rmse float64
	var size int
	for i := 0; i < 4; i++ {
		src := sceneDepth(64, 48, i)
		pkt, err := enc.EncodeQP(src, qp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		rmse += depthRMSE(src, got)
		size += pkt.SizeBytes()
	}
	return rmse / 4, size
}

func TestScaled16RoundTripAccurate(t *testing.T) {
	rmse, _ := roundTrip(t, Scaled16, 4)
	if rmse > 15 { // millimeters
		t.Errorf("scaled16 RMSE = %v mm", rmse)
	}
}

func TestSchemeString(t *testing.T) {
	if Scaled16.String() != "scaled16" || Unscaled16.String() != "unscaled16" || RGBPacked.String() != "rgb-packed" {
		t.Error("scheme names wrong")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestScalingBeatsUnscaled(t *testing.T) {
	// The core claim of §3.2's depth encoding: at comparable QP (same
	// quantizer step on the Y plane), scaled depth has lower error because
	// nearby depth values land in distinct quantization bins.
	scaledRMSE, _ := roundTrip(t, Scaled16, 30)
	unscaledRMSE, _ := roundTrip(t, Unscaled16, 30)
	if scaledRMSE >= unscaledRMSE {
		t.Errorf("scaling did not help: scaled %v mm vs unscaled %v mm", scaledRMSE, unscaledRMSE)
	}
}

func TestRGBPackedWorstAtBoundaries(t *testing.T) {
	// Fig 17: RGB-packed depth suffers large errors. Compare at similar
	// compressed size rather than QP (different plane structure).
	sRMSE, _ := roundTrip(t, Scaled16, 26)
	rRMSE, _ := roundTrip(t, RGBPacked, 26)
	if sRMSE >= rRMSE {
		t.Errorf("rgb-packed unexpectedly better: scaled %v vs rgb %v", sRMSE, rRMSE)
	}
}

func TestRateControlledDepth(t *testing.T) {
	cfg := Config{Scheme: Scaled16, Width: 64, Height: 48, GOP: 30}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	target := 1500
	for i := 0; i < 10; i++ {
		pkt, err := enc.Encode(sceneDepth(64, 48, i), target)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(pkt); err != nil {
			t.Fatal(err)
		}
		if i > 2 && !pkt.Key && pkt.SizeBytes() > 2*target {
			t.Errorf("frame %d: %d bytes for target %d", i, pkt.SizeBytes(), target)
		}
	}
}

func TestZeroPixelsStayInvalid(t *testing.T) {
	// Culled pixels (zero depth) must not come back as ghost geometry.
	cfg := Config{Scheme: Scaled16, Width: 64, Height: 48}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	src := frame.NewDepthImage(64, 48)
	// Half the image valid, half culled.
	for y := 0; y < 48; y++ {
		for x := 0; x < 32; x++ {
			src.Set(x, y, 3000)
		}
	}
	pkt, err := enc.EncodeQP(src, 24)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	ghosts := 0
	for y := 0; y < 48; y++ {
		for x := 36; x < 64; x++ { // away from the boundary
			if got.At(x, y) != 0 {
				ghosts++
			}
		}
	}
	if ghosts > 0 {
		t.Errorf("%d ghost points in culled region", ghosts)
	}
}

func TestLastReconDepthMatchesDecoder(t *testing.T) {
	cfg := Config{Scheme: Scaled16, Width: 32, Height: 32}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	if enc.LastReconDepth() != nil {
		t.Error("recon before first frame should be nil")
	}
	src := sceneDepth(32, 32, 0)
	pkt, _ := enc.EncodeQP(src, 18)
	got, _ := dec.Decode(pkt)
	recon := enc.LastReconDepth()
	for i := range got.Pix {
		if got.Pix[i] != recon.Pix[i] {
			t.Fatalf("sender-side recon differs from decoder at %d", i)
		}
	}
}

func TestDepthEncoderErrors(t *testing.T) {
	cfg := Config{Scheme: Scaled16, Width: 32, Height: 32}
	enc, _ := NewEncoder(cfg)
	if _, err := enc.EncodeQP(frame.NewDepthImage(8, 8), 20); err == nil {
		t.Error("wrong-size image accepted")
	}
	bad := Config{Scheme: Scheme(77), Width: 32, Height: 32}
	encBad, err := NewEncoder(bad)
	if err != nil {
		t.Skip("constructor rejected unknown scheme (fine)")
	}
	if _, err := encBad.EncodeQP(frame.NewDepthImage(32, 32), 20); err == nil {
		t.Error("unknown scheme accepted at encode")
	}
}

func TestForceKeyFramePropagates(t *testing.T) {
	cfg := Config{Scheme: Scaled16, Width: 32, Height: 32, GOP: 1000}
	enc, _ := NewEncoder(cfg)
	src := sceneDepth(32, 32, 0)
	if _, err := enc.EncodeQP(src, 20); err != nil {
		t.Fatal(err)
	}
	enc.ForceKeyFrame()
	pkt, _ := enc.EncodeQP(src, 20)
	if !pkt.Key {
		t.Error("ForceKeyFrame did not propagate")
	}
}

func TestMaxRangeClamp(t *testing.T) {
	cfg := Config{Scheme: Scaled16, Width: 16, Height: 16, MaxMM: 4000}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	src := frame.NewDepthImage(16, 16)
	for i := range src.Pix {
		src.Pix[i] = 5000 // beyond MaxMM
	}
	pkt, _ := enc.EncodeQP(src, 8)
	got, _ := dec.Decode(pkt)
	for i := range got.Pix {
		if got.Pix[i] > 4100 {
			t.Fatalf("clamp failed: %d", got.Pix[i])
		}
	}
}

func TestSchemesAtEqualBitrate(t *testing.T) {
	// Fig 17's actual comparison: equal byte budget per frame, who has the
	// lowest depth error? Expected order: scaled < unscaled (rgb-packed is
	// structurally different and covered above).
	run := func(scheme Scheme) float64 {
		cfg := Config{Scheme: scheme, Width: 64, Height: 48, GOP: 30}
		enc, _ := NewEncoder(cfg)
		dec, _ := NewDecoder(cfg)
		var rmse float64
		n := 0
		for i := 0; i < 8; i++ {
			src := sceneDepth(64, 48, i)
			pkt, err := enc.Encode(src, 1200)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Decode(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if i >= 2 { // after rate model warmup
				rmse += depthRMSE(src, got)
				n++
			}
		}
		return rmse / float64(n)
	}
	scaled := run(Scaled16)
	unscaled := run(Unscaled16)
	if scaled >= unscaled {
		t.Errorf("at equal bitrate scaled %v mm >= unscaled %v mm", scaled, unscaled)
	}
}

func TestRandomDepthStability(t *testing.T) {
	// Property-ish: decoding never produces values outside [0, 65535] and
	// never errors on random valid content.
	rng := rand.New(rand.NewSource(70))
	cfg := Config{Scheme: Scaled16, Width: 24, Height: 24}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for trial := 0; trial < 5; trial++ {
		src := frame.NewDepthImage(24, 24)
		for i := range src.Pix {
			src.Pix[i] = uint16(rng.Intn(6001))
		}
		pkt, err := enc.EncodeQP(src, 24)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(pkt); err != nil {
			t.Fatal(err)
		}
	}
}
