package depth

import (
	"fmt"

	"livo/internal/codec/vcodec"
	"livo/internal/frame"
)

// DefaultSuperresJumpMM is the discontinuity threshold for the receiver's
// quarter-rung depth upsampling (SuperResolve2x): samples further apart
// than this are treated as different surfaces and not interpolated.
const DefaultSuperresJumpMM = 150

// LadderEncoder encodes a depth stream at K quality rungs per frame (the
// depth side of the vcodec quality ladder, DESIGN.md §8). Quarter rungs
// ship quarter-resolution depth; the receiver recovers full resolution
// with the edge-aware superres path (SuperResolve2x), the VoLUT approach.
// RGBPacked is not supported (it exists only for the Fig 17 comparison).
type LadderEncoder struct {
	cfg  Config
	lenc *vcodec.LadderEncoder
	// vf/qvf are reused full/quarter staging frames; qim is the derived
	// quarter depth image used when the caller does not supply one;
	// reconDepth and tmpColor back LastReconDepth.
	vf, qvf    *vcodec.Frame
	qim        *frame.DepthImage
	reconDepth *frame.DepthImage
	tmpColor   *frame.ColorImage
}

// NewLadderEncoder creates a depth ladder encoder; nil rungs selects
// vcodec.DefaultLadder().
func NewLadderEncoder(cfg Config, rungs []vcodec.Rung) (*LadderEncoder, error) {
	cfg = cfg.withDefaults()
	if cfg.Scheme == RGBPacked {
		return nil, fmt.Errorf("depth: ladder does not support the RGBPacked scheme")
	}
	lenc, err := vcodec.NewLadderEncoder(cfg.videoConfig(), rungs)
	if err != nil {
		return nil, err
	}
	return &LadderEncoder{cfg: cfg, lenc: lenc}, nil
}

// Rungs returns the ladder description.
func (e *LadderEncoder) Rungs() []vcodec.Rung { return e.lenc.Rungs() }

// QuarterConfig returns the depth configuration a quarter rung's decoder
// needs; ok is false when the ladder has no quarter rung.
func (e *LadderEncoder) QuarterConfig() (Config, bool) {
	vc, ok := e.lenc.QuarterConfig()
	if !ok {
		return Config{}, false
	}
	qcfg := e.cfg
	qcfg.Width, qcfg.Height = vc.Width, vc.Height
	return qcfg, true
}

// ForceKeyFrame forces the next frame to be a key frame on every rung.
func (e *LadderEncoder) ForceKeyFrame() { e.lenc.ForceKeyFrame() }

// mapInto maps a depth image into a single-plane staging frame of the
// image's own geometry (Scaled16 range mapping or verbatim values).
func (e *LadderEncoder) mapInto(im *frame.DepthImage, fp **vcodec.Frame) *vcodec.Frame {
	if *fp == nil || (*fp).W != im.W || (*fp).H != im.H {
		*fp = vcodec.NewFrame(im.W, im.H, 1)
	}
	f := *fp
	if e.cfg.Scheme == Scaled16 {
		maxMM := uint32(e.cfg.MaxMM)
		for i, d := range im.Pix {
			v := uint32(d)
			if v > maxMM {
				v = maxMM
			}
			f.Planes[0][i] = int32((v*65535 + maxMM/2) / maxMM)
		}
		return f
	}
	vcodec.FromDepthInto(im, f)
	return f
}

// stage validates and maps the full and quarter sources. A nil quarter is
// derived with the edge-aware Downsample2x (which, unlike a box filter,
// does not invent geometry between surfaces). Callers that stamp in-band
// markers must supply an explicitly stamped quarter image.
func (e *LadderEncoder) stage(im, quarter *frame.DepthImage) (*vcodec.Frame, *vcodec.Frame, error) {
	if im.W != e.cfg.Width || im.H != e.cfg.Height {
		return nil, nil, fmt.Errorf("depth: image %dx%d does not match config %dx%d", im.W, im.H, e.cfg.Width, e.cfg.Height)
	}
	f := e.mapInto(im, &e.vf)
	vc, hasQuarter := e.lenc.QuarterConfig()
	if !hasQuarter {
		return f, nil, nil
	}
	if quarter == nil {
		e.qim = Downsample2xInto(im, e.qim)
		quarter = e.qim
	}
	if quarter.W != vc.Width || quarter.H != vc.Height {
		return nil, nil, fmt.Errorf("depth: quarter image %dx%d does not match %dx%d", quarter.W, quarter.H, vc.Width, vc.Height)
	}
	qf := e.mapInto(quarter, &e.qvf)
	return f, qf, nil
}

// EncodeLadder rate-controls rung 0 to targetBytes and derives the other
// rungs; packets are indexed like the rungs and share Seq and Key.
func (e *LadderEncoder) EncodeLadder(im, quarter *frame.DepthImage, targetBytes int) ([]*vcodec.Packet, error) {
	f, qf, err := e.stage(im, quarter)
	if err != nil {
		return nil, err
	}
	return e.lenc.EncodeLadder(f, qf, targetBytes)
}

// EncodeLadderQP encodes rung 0 at a fixed QP and derives the other rungs.
func (e *LadderEncoder) EncodeLadderQP(im, quarter *frame.DepthImage, qp int) ([]*vcodec.Packet, error) {
	f, qf, err := e.stage(im, quarter)
	if err != nil {
		return nil, err
	}
	return e.lenc.EncodeLadderQP(f, qf, qp)
}

// LastReconDepth returns the rung-0 encoder-side reconstruction as a depth
// image (the splitter's quality probe, mirroring Encoder.LastReconDepth).
// The image is owned by the encoder and overwritten by the next call.
func (e *LadderEncoder) LastReconDepth() *frame.DepthImage {
	r := e.lenc.Encoder().LastRecon()
	if r == nil {
		return nil
	}
	if e.reconDepth == nil {
		e.reconDepth = frame.NewDepthImage(r.W, r.H)
	}
	e.cfg.fromVideoFrameInto(r, e.reconDepth, &e.tmpColor)
	return e.reconDepth
}

// Downsample2xInto is the allocation-reusing form of Downsample2x: out is
// reused when its geometry matches, else (re)allocated. The filter is
// identical (nearest-valid, discontinuity-preserving).
func Downsample2xInto(im *frame.DepthImage, out *frame.DepthImage) *frame.DepthImage {
	w, h := (im.W+1)/2, (im.H+1)/2
	if out == nil || out.W != w || out.H != h {
		out = frame.NewDepthImage(w, h)
	}
	var vals [4]uint16
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			n := 0
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < im.W && sy < im.H {
						if v := im.At(sx, sy); v != 0 {
							vals[n] = v
							n++
						}
					}
				}
			}
			if n == 0 {
				out.Set(x, y, 0)
				continue
			}
			mn, mx := vals[0], vals[0]
			for _, v := range vals[1:n] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if int(mx)-int(mn) < 100 { // smooth region: midpoint
				out.Set(x, y, (mn+mx)/2)
			} else { // discontinuity: keep the nearest surface
				out.Set(x, y, mn)
			}
		}
	}
	return out
}
