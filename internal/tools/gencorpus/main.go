// Command gencorpus regenerates the checked-in fuzz seed corpora under each
// fuzzed package's testdata/fuzz/<FuzzTarget>/ directory. Run it from the
// repository root:
//
//	go run ./internal/tools/gencorpus
//
// The corpora complement the f.Add seeds with inputs that are expensive to
// build inline — full valid bitstreams from each encoder plus systematic
// truncations and bit flips of them — and run on every plain `go test`
// (the fuzz smoke in the verify skill additionally mutates from them).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"livo/internal/codec/depth"
	"livo/internal/codec/draco"
	"livo/internal/codec/vcodec"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/pointcloud"
	"livo/internal/transport"
)

func writeSeed(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// variants writes a valid input plus deterministic truncations and bit
// flips of it.
func variants(dir, prefix string, data []byte, rng *rand.Rand) {
	writeSeed(dir, prefix+"-valid", data)
	if len(data) > 2 {
		writeSeed(dir, prefix+"-trunc-half", data[:len(data)/2])
		writeSeed(dir, prefix+"-trunc-tail", data[:len(data)-1])
	}
	for i := 0; i < 3; i++ {
		cp := append([]byte(nil), data...)
		bit := rng.Intn(len(cp) * 8)
		cp[bit/8] ^= 1 << (bit % 8)
		writeSeed(dir, fmt.Sprintf("%s-flip-%d", prefix, i), cp)
	}
}

func synthColor(w, h, t int) *frame.ColorImage {
	im := frame.NewColorImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8(x*7+t*13), uint8(y*5+t*3), uint8((x+y)*3))
		}
	}
	return im
}

func synthDepth(w, h, t int) *frame.DepthImage {
	im := frame.NewDepthImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint16(1000+40*x+25*y+60*t))
		}
	}
	return im
}

func main() {
	if _, err := os.Stat("go.mod"); err != nil {
		log.Fatal("run from the repository root: go run ./internal/tools/gencorpus")
	}
	rng := rand.New(rand.NewSource(2024))

	// transport: FuzzUnmarshal and FuzzRecoverWithParity.
	{
		dir := "internal/transport/testdata/fuzz/FuzzUnmarshal"
		payload := make([]byte, 3*transport.MTU)
		rng.Read(payload)
		media := transport.Packetize(transport.StreamColor, 42, true, 9_000_000, payload)
		variants(dir, "media", media[1].Marshal(), rng)
		parity := transport.BuildParity(media)
		variants(dir, "parity", parity[0].Marshal(), rng)

		dir = "internal/transport/testdata/fuzz/FuzzRecoverWithParity"
		variants(dir, "parity", parity[0].Payload, rng)
	}

	// vcodec: a key frame and a delta frame at fuzz-target geometry (32x32).
	{
		cfg := vcodec.ColorConfig(32, 32)
		cfg.GOP = 4
		enc, err := vcodec.NewEncoder(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dir := "internal/codec/vcodec/testdata/fuzz/FuzzDecode"
		for i := 0; i < 2; i++ {
			pkt, err := enc.EncodeQP(vcodec.FromColor(synthColor(32, 32, i)), 20)
			if err != nil {
				log.Fatal(err)
			}
			kind := "delta"
			if pkt.Key {
				kind = "key"
			}
			variants(dir, kind, pkt.Data, rng)
		}
	}

	// depth: scaled-16 key and delta frames.
	{
		cfg := depth.Config{Scheme: depth.Scaled16, Width: 32, Height: 32, GOP: 4}
		enc, err := depth.NewEncoder(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dir := "internal/codec/depth/testdata/fuzz/FuzzDecode"
		for i := 0; i < 2; i++ {
			pkt, err := enc.EncodeQP(synthDepth(32, 32, i), 18)
			if err != nil {
				log.Fatal(err)
			}
			kind := "delta"
			if pkt.Key {
				kind = "key"
			}
			variants(dir, kind, pkt.Data, rng)
		}
	}

	// draco: a compressed cloud at default params.
	{
		c := pointcloud.New(300)
		for i := 0; i < 300; i++ {
			c.Add(
				geom.V3(rng.Float64()*2, rng.Float64()*2, rng.Float64()*2),
				[3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))},
			)
		}
		data, err := draco.Encode(c, draco.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		variants("internal/codec/draco/testdata/fuzz/FuzzDecode", "cloud", data, rng)
	}

	// frame markers: a stamped strip and noise.
	{
		dir := "internal/frame/testdata/fuzz/FuzzDecodeMarkers"
		im := frame.NewColorImage(frame.MarkerWidth, frame.MarkerHeight)
		if err := frame.StampColorMarker(im, 0xDEADBEEF); err != nil {
			log.Fatal(err)
		}
		variants(dir, "stamped", im.Pix, rng)
		noise := make([]byte, len(im.Pix))
		rng.Read(noise)
		writeSeed(dir, "noise", noise)
	}
	fmt.Println("corpora regenerated")
}
