package split

import (
	"math"
	"testing"
)

func TestDefaults(t *testing.T) {
	c := New(0.8)
	if c.S != 0.8 || c.Delta != 0.005 || c.Min != 0.5 || c.Max != 0.9 || c.EvaluateEvery != 3 {
		t.Errorf("defaults: %+v", c)
	}
	// Initial value clamped into range.
	if New(0.2).S != 0.5 {
		t.Error("low initial not clamped")
	}
	if New(1.5).S != 0.9 {
		t.Error("high initial not clamped")
	}
}

func TestBudgets(t *testing.T) {
	c := New(0.9)
	d, col := c.Budgets(1000)
	if d != 900 || col != 100 {
		t.Errorf("budgets = %d, %d", d, col)
	}
	// Tiny totals still produce positive budgets.
	d, col = c.Budgets(1)
	if d < 1 || col < 1 {
		t.Errorf("degenerate budgets = %d, %d", d, col)
	}
}

func TestTickEveryK(t *testing.T) {
	c := New(0.8)
	var evals []bool
	for i := 0; i < 7; i++ {
		evals = append(evals, c.Tick())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if evals[i] != want[i] {
			t.Fatalf("tick %d = %v, want %v", i, evals[i], want[i])
		}
	}
}

func TestObserveDirection(t *testing.T) {
	c := New(0.7)
	// Depth much worse: split rises.
	s := c.Observe(0.05, 0.01)
	if math.Abs(s-0.705) > 1e-12 {
		t.Errorf("split after depth-worse = %v", s)
	}
	// Color much worse: split falls.
	s = c.Observe(0.01, 0.05)
	if math.Abs(s-0.7) > 1e-12 {
		t.Errorf("split after color-worse = %v", s)
	}
	// Balanced within epsilon: unchanged.
	s = c.Observe(0.010, 0.0105)
	if math.Abs(s-0.7) > 1e-12 {
		t.Errorf("split after balanced = %v", s)
	}
}

func TestObserveClamps(t *testing.T) {
	c := New(0.9)
	for i := 0; i < 50; i++ {
		c.Observe(1.0, 0.0) // depth always worse
	}
	if c.S > 0.9 {
		t.Errorf("split exceeded max: %v", c.S)
	}
	c2 := New(0.5)
	for i := 0; i < 50; i++ {
		c2.Observe(0.0, 1.0) // color always worse
	}
	if c2.S < 0.5 {
		t.Errorf("split below min: %v", c2.S)
	}
}

// qualityModel mimics Fig 4: depth error falls with split, color error
// rises; they cross at some optimal split.
func qualityModel(s float64) (d, c float64) {
	d = 0.02 * math.Exp(-6*(s-0.5)) // decreasing in s
	c = 0.004 * math.Exp(4*(s-0.5)) // increasing in s
	return
}

func TestLineSearchConverges(t *testing.T) {
	// Find the crossing of the model analytically (well, numerically).
	cross := 0.5
	for s := 0.5; s <= 0.9; s += 0.0001 {
		d, c := qualityModel(s)
		if d <= c {
			cross = s
			break
		}
	}
	ctl := New(0.5)
	ctl.Epsilon = 0.0001
	for i := 0; i < 400; i++ {
		d, c := qualityModel(ctl.S)
		ctl.Observe(d, c)
	}
	if math.Abs(ctl.S-cross) > 0.02 {
		t.Errorf("converged to %v, crossing at %v", ctl.S, cross)
	}
	// Once converged it oscillates within ±delta.
	sBefore := ctl.S
	for i := 0; i < 20; i++ {
		d, c := qualityModel(ctl.S)
		ctl.Observe(d, c)
		if math.Abs(ctl.S-sBefore) > 2*ctl.Delta+1e-12 {
			t.Fatalf("oscillation too large: %v vs %v", ctl.S, sBefore)
		}
	}
}

func TestConvergesFromAbove(t *testing.T) {
	ctl := New(0.9)
	ctl.Epsilon = 0.0001
	for i := 0; i < 400; i++ {
		d, c := qualityModel(ctl.S)
		ctl.Observe(d, c)
	}
	ctl2 := New(0.5)
	ctl2.Epsilon = 0.0001
	for i := 0; i < 400; i++ {
		d, c := qualityModel(ctl2.S)
		ctl2.Observe(d, c)
	}
	if math.Abs(ctl.S-ctl2.S) > 0.02 {
		t.Errorf("different fixpoints from above/below: %v vs %v", ctl.S, ctl2.S)
	}
}

func TestSceneComplexityShiftMovesSplit(t *testing.T) {
	// When the scene gets more complex (depth error model worsens), the
	// split must adapt upward — the dynamic-beats-static argument (§3.3).
	ctl := New(0.7)
	ctl.Epsilon = 0.0001
	for i := 0; i < 300; i++ {
		d, c := qualityModel(ctl.S)
		ctl.Observe(d, c)
	}
	sBefore := ctl.S
	for i := 0; i < 300; i++ {
		d, c := qualityModel(ctl.S)
		ctl.Observe(d*3, c) // scene complexity jump: depth 3x harder
	}
	if ctl.S <= sBefore {
		t.Errorf("split did not rise after complexity jump: %v -> %v", sBefore, ctl.S)
	}
}
