// Package split implements LiVo's adaptive bandwidth-splitting controller
// (§3.3). The sender encodes each frame with the current split s (fraction
// of the available bandwidth given to the depth stream), decodes its own
// output, compares normalized depth and color RMSE, and walks s by a fixed
// step δ via multi-dimensional line search until the two errors balance:
//
//	|RMSE_d − RMSE_c| ≤ ε    → keep s
//	RMSE_d − RMSE_c  > ε     → s += δ   (depth worse: give it more)
//	otherwise                → s −= δ
//
// s is clamped to [0.5, 0.9]: depth always gets at least half (humans are
// more sensitive to depth distortion [95]), and at most 90% so starved
// color cannot drive s to 1 under low bandwidth.
package split

// Controller is the line-search split controller. RMSE inputs must be
// normalized to their full scale (depth RMSE / 65535, color RMSE / 255) so
// the two are comparable.
type Controller struct {
	// S is the current split: the fraction of available bandwidth
	// allocated to the depth stream.
	S float64
	// Epsilon is the balance tolerance on normalized RMSE difference.
	Epsilon float64
	// Delta is the line-search step size (paper: 0.005).
	Delta float64
	// Min and Max clamp the split (paper: 0.5 and 0.9).
	Min, Max float64
	// EvaluateEvery is k: quality is probed every k-th frame (paper: 3).
	EvaluateEvery int

	frames int
	probes int
	// Last observed probe values (normalized RMSE), for telemetry: -1
	// before the first probe.
	lastDepthRMSE float64
	lastColorRMSE float64
}

// New returns a controller with the paper's parameters and the given
// initial split s_i (Fig 4 suggests ≈0.9 at 80 Mbps; §3.3 allows any
// empirical initial value — values are clamped into range).
func New(initial float64) *Controller {
	c := &Controller{
		S:             initial,
		Epsilon:       0.002,
		Delta:         0.005,
		Min:           0.5,
		Max:           0.9,
		EvaluateEvery: 3,
		lastDepthRMSE: -1,
		lastColorRMSE: -1,
	}
	c.clamp()
	return c
}

func (c *Controller) clamp() {
	if c.S < c.Min {
		c.S = c.Min
	}
	if c.S > c.Max {
		c.S = c.Max
	}
}

// Split returns the current split.
func (c *Controller) Split() float64 { return c.S }

// Budgets divides the total per-frame byte budget between depth and color.
func (c *Controller) Budgets(totalBytes int) (depthBytes, colorBytes int) {
	d := int(float64(totalBytes) * c.S)
	if d < 1 {
		d = 1
	}
	cB := totalBytes - d
	if cB < 1 {
		cB = 1
	}
	return d, cB
}

// Tick advances the frame counter and reports whether this frame's quality
// should be evaluated (every k-th frame; the first frame always evaluates).
func (c *Controller) Tick() bool {
	ev := c.frames%c.EvaluateEvery == 0
	c.frames++
	return ev
}

// Observe updates the split from one quality probe: normalized depth and
// color RMSE of the latest encoded frame. It returns the (possibly
// unchanged) split.
func (c *Controller) Observe(normDepthRMSE, normColorRMSE float64) float64 {
	c.probes++
	c.lastDepthRMSE, c.lastColorRMSE = normDepthRMSE, normColorRMSE
	diff := normDepthRMSE - normColorRMSE
	switch {
	case diff > c.Epsilon:
		c.S += c.Delta
	case diff < -c.Epsilon:
		c.S -= c.Delta
	}
	c.clamp()
	return c.S
}

// Probes returns how many quality probes have been observed.
func (c *Controller) Probes() int { return c.probes }

// LastProbe returns the most recent normalized depth and color RMSE fed to
// Observe, or (-1, -1) before the first probe (telemetry, DESIGN.md §6).
func (c *Controller) LastProbe() (normDepthRMSE, normColorRMSE float64) {
	return c.lastDepthRMSE, c.lastColorRMSE
}
