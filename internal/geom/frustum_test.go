package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlaneSignedDistance(t *testing.T) {
	pl := PlaneFromPointNormal(V3(0, 0, 5), V3(0, 0, 1))
	if d := pl.SignedDistance(V3(0, 0, 7)); math.Abs(d-2) > 1e-12 {
		t.Errorf("distance = %v, want 2", d)
	}
	if d := pl.SignedDistance(V3(0, 0, 3)); math.Abs(d+2) > 1e-12 {
		t.Errorf("distance = %v, want -2", d)
	}
	if d := pl.SignedDistance(V3(9, -4, 5)); math.Abs(d) > 1e-12 {
		t.Errorf("on-plane distance = %v", d)
	}
}

func TestPlaneOffset(t *testing.T) {
	pl := PlaneFromPointNormal(V3(0, 0, 5), V3(0, 0, 1))
	// Offsetting by +1 enlarges the inside half-space by 1 meter.
	moved := pl.Offset(1)
	if d := moved.SignedDistance(V3(0, 0, 4.5)); d < 0 {
		t.Errorf("offset plane should include z=4.5, dist=%v", d)
	}
}

func TestPlaneTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 50; i++ {
		pl := PlaneFromPointNormal(
			V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()),
			V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()+3),
		)
		m := randRigid(rng)
		tp := pl.Transform(m)
		// Signed distance is invariant: dist(T(pl), T(p)) == dist(pl, p).
		p := V3(rng.NormFloat64()*2, rng.NormFloat64()*2, rng.NormFloat64()*2)
		a := pl.SignedDistance(p)
		b := tp.SignedDistance(m.TransformPoint(p))
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("plane transform changed distance: %v vs %v", a, b)
		}
	}
}

func TestFrustumContainsBasics(t *testing.T) {
	// Viewer at origin looking down +Z.
	f := NewFrustum(PoseIdentity, ViewParams{FovY: math.Pi / 2, Aspect: 1, Near: 0.5, Far: 10})
	cases := []struct {
		p    Vec3
		want bool
	}{
		{V3(0, 0, 5), true},         // straight ahead
		{V3(0, 0, 0.4), false},      // before near plane
		{V3(0, 0, 11), false},       // past far plane
		{V3(0, 0, -5), false},       // behind viewer
		{V3(4.9, 0, 5), true},       // inside: 45° half-angle at z=5 means |x|<5
		{V3(5.1, 0, 5), false},      // just outside right boundary
		{V3(0, 4.9, 5), true},       // inside top
		{V3(0, -5.1, 5), false},     // below bottom
		{V3(-4.9, -4.9, 5.0), true}, // corner-ish, inside both side planes
		{V3(100, 100, 5), false},    // way outside
		{V3(0, 0, 10), true},        // on far plane
		{V3(0, 0, 0.5), true},       // on near plane
	}
	for _, c := range cases {
		if got := f.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestFrustumPosedViewer(t *testing.T) {
	// Viewer at (0,0,10) looking back at origin.
	pose := LookAt(V3(0, 0, 10), V3(0, 0, 0), V3(0, 1, 0))
	f := NewFrustum(pose, ViewParams{FovY: math.Pi / 3, Aspect: 1, Near: 0.1, Far: 20})
	if !f.Contains(V3(0, 0, 0)) {
		t.Error("origin should be visible")
	}
	if f.Contains(V3(0, 0, 15)) {
		t.Error("point behind viewer should not be visible")
	}
}

func TestFrustumExpand(t *testing.T) {
	f := NewFrustum(PoseIdentity, ViewParams{FovY: math.Pi / 2, Aspect: 1, Near: 0.5, Far: 10})
	p := V3(5.1, 0, 5) // ~0.07m outside the right plane
	if f.Contains(p) {
		t.Fatal("point should start outside")
	}
	g := f.Expand(0.2) // guard band of 20 cm (the paper's sweet spot)
	if !g.Contains(p) {
		t.Error("guard band should capture near-boundary point")
	}
	// Everything inside stays inside (expansion is monotone).
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		q := V3(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*12)
		if f.Contains(q) && !g.Contains(q) {
			t.Fatalf("expand lost point %v", q)
		}
	}
}

func TestFrustumTransformConsistency(t *testing.T) {
	// Core property behind LiVo's culling (§3.4): testing a world point p
	// against the world frustum is equivalent to testing the camera-local
	// point against the camera-local frustum.
	rng := rand.New(rand.NewSource(22))
	f := NewFrustum(
		Pose{Position: V3(0.3, 1.2, -2), Rotation: QuatFromAxisAngle(V3(0, 1, 0), 0.4)},
		DefaultViewParams(),
	)
	for i := 0; i < 200; i++ {
		camPose := Pose{
			Position: V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()),
			Rotation: randQuat(rng),
		}
		worldToCam := camPose.InverseMat4()
		fLocal := f.Transform(worldToCam)
		p := V3(rng.NormFloat64()*4, rng.NormFloat64()*4, rng.NormFloat64()*4)
		pLocal := worldToCam.TransformPoint(p)
		if f.Contains(p) != fLocal.Contains(pLocal) {
			t.Fatalf("frustum transform inconsistent at %v", p)
		}
	}
}

func TestFrustumIntersectsAABB(t *testing.T) {
	f := NewFrustum(PoseIdentity, ViewParams{FovY: math.Pi / 2, Aspect: 1, Near: 0.5, Far: 10})
	inside := AABB{V3(-1, -1, 4), V3(1, 1, 6)}
	if !f.IntersectsAABB(inside) {
		t.Error("box inside frustum should intersect")
	}
	behind := AABB{V3(-1, -1, -6), V3(1, 1, -4)}
	if f.IntersectsAABB(behind) {
		t.Error("box behind viewer should not intersect")
	}
	straddling := AABB{V3(4, -1, 4), V3(7, 1, 6)} // crosses right plane
	if !f.IntersectsAABB(straddling) {
		t.Error("straddling box should intersect")
	}
}

func TestDefaultViewParams(t *testing.T) {
	vp := DefaultViewParams()
	if vp.Near <= 0 || vp.Far <= vp.Near || vp.FovY <= 0 || vp.Aspect <= 0 {
		t.Errorf("bad defaults: %+v", vp)
	}
}
