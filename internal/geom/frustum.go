package geom

import "math"

// Plane is the set of points p with Normal·p + D == 0. Signed distance of a
// point is Normal·p + D; LiVo's frustum planes have normals pointing inward,
// so a point is inside the frustum when its signed distance to every plane
// is >= 0 (§3.4 states the equivalent outward-normal test).
type Plane struct {
	Normal Vec3
	D      float64
}

// PlaneFromPointNormal builds the plane through p with the given normal.
func PlaneFromPointNormal(p, n Vec3) Plane {
	n = n.Normalize()
	return Plane{Normal: n, D: -n.Dot(p)}
}

// SignedDistance returns the signed distance from p to the plane.
func (pl Plane) SignedDistance(p Vec3) float64 { return pl.Normal.Dot(p) + pl.D }

// Offset shifts the plane by d along its normal (positive d moves the plane
// opposite to the normal, enlarging the inside half-space by d).
func (pl Plane) Offset(d float64) Plane { return Plane{pl.Normal, pl.D + d} }

// Transform returns the plane transformed by the rigid matrix m.
func (pl Plane) Transform(m Mat4) Plane {
	// A plane through point p0 with normal n maps to a plane through m*p0
	// with normal R*n (rigid m).
	p0 := pl.Normal.Scale(-pl.D) // a point on the plane
	return PlaneFromPointNormal(m.TransformPoint(p0), m.TransformDir(pl.Normal))
}

// ViewParams describes the receiver's viewing device: vertical field of view,
// aspect ratio (width/height), and near/far clip distances in meters. These
// are the headset parameters the receiver transmits to the sender (§3.4).
type ViewParams struct {
	FovY   float64 // vertical field of view, radians
	Aspect float64 // width / height
	Near   float64 // near plane distance, m
	Far    float64 // far plane distance, m
}

// DefaultViewParams matches a typical mixed-reality headset's per-eye
// rendering frustum: ~75° vertical FoV, 1.2 aspect, 10 cm near plane, 6 m
// far plane (the range of the depth cameras).
func DefaultViewParams() ViewParams {
	return ViewParams{FovY: 75 * math.Pi / 180, Aspect: 1.2, Near: 0.1, Far: 6}
}

// Frustum is the receiver's 3D field of view: a truncated pyramid bounded by
// six planes (near, far, top, bottom, left, right) whose normals point
// inward.
type Frustum struct {
	Planes [6]Plane // order: near, far, left, right, top, bottom
}

// Frustum plane indices.
const (
	PlaneNear = iota
	PlaneFar
	PlaneLeft
	PlaneRight
	PlaneTop
	PlaneBottom
)

// NewFrustum builds the frustum of a viewer at the given pose with the given
// view parameters. The viewer looks down its local +Z axis.
func NewFrustum(pose Pose, vp ViewParams) Frustum {
	fwd := pose.Forward()
	up := pose.Up()
	right := pose.Right()
	eye := pose.Position

	halfV := vp.FovY / 2
	halfH := math.Atan(math.Tan(halfV) * vp.Aspect)

	var f Frustum
	// Near: inside is beyond eye+near*fwd along fwd.
	f.Planes[PlaneNear] = PlaneFromPointNormal(eye.Add(fwd.Scale(vp.Near)), fwd)
	// Far: inside is before eye+far*fwd.
	f.Planes[PlaneFar] = PlaneFromPointNormal(eye.Add(fwd.Scale(vp.Far)), fwd.Neg())

	// Side planes pass through the eye. Normals point inward.
	sinH, cosH := math.Sincos(halfH)
	sinV, cosV := math.Sincos(halfV)
	// Left plane normal: rotate +right toward fwd by halfH.
	leftN := right.Scale(cosH).Add(fwd.Scale(sinH))
	rightN := right.Neg().Scale(cosH).Add(fwd.Scale(sinH))
	bottomN := up.Scale(cosV).Add(fwd.Scale(sinV))
	topN := up.Neg().Scale(cosV).Add(fwd.Scale(sinV))
	f.Planes[PlaneLeft] = PlaneFromPointNormal(eye, leftN)
	f.Planes[PlaneRight] = PlaneFromPointNormal(eye, rightN)
	f.Planes[PlaneTop] = PlaneFromPointNormal(eye, topN)
	f.Planes[PlaneBottom] = PlaneFromPointNormal(eye, bottomN)
	return f
}

// Contains reports whether p lies inside or on the frustum. Following §3.4,
// p is outside if its distance from any of the six planes is negative
// (inward normals).
func (f Frustum) Contains(p Vec3) bool {
	for i := range f.Planes {
		if f.Planes[i].SignedDistance(p) < 0 {
			return false
		}
	}
	return true
}

// Expand returns the frustum grown by guard meters on every plane — the
// guard band ε that absorbs prediction error (§3.4, ε = 20 cm by default).
func (f Frustum) Expand(guard float64) Frustum {
	var g Frustum
	for i := range f.Planes {
		g.Planes[i] = f.Planes[i].Offset(guard)
	}
	return g
}

// Transform maps the frustum by the rigid matrix m. LiVo's sender transforms
// the receiver frustum into each camera's local coordinate system so pixels
// can be tested without reconstructing the point cloud (§3.4).
func (f Frustum) Transform(m Mat4) Frustum {
	var g Frustum
	for i := range f.Planes {
		g.Planes[i] = f.Planes[i].Transform(m)
	}
	return g
}

// IntersectsAABB conservatively reports whether the box may intersect the
// frustum (standard p-vertex test; may report true for some boxes fully
// outside near edges, never false for intersecting boxes).
func (f Frustum) IntersectsAABB(b AABB) bool {
	for i := range f.Planes {
		n := f.Planes[i].Normal
		// p-vertex: box corner furthest along the plane normal.
		p := Vec3{
			X: pick(n.X >= 0, b.Max.X, b.Min.X),
			Y: pick(n.Y >= 0, b.Max.Y, b.Min.Y),
			Z: pick(n.Z >= 0, b.Max.Z, b.Min.Z),
		}
		if f.Planes[i].SignedDistance(p) < 0 {
			return false
		}
	}
	return true
}

func pick(c bool, a, b float64) float64 {
	if c {
		return a
	}
	return b
}
