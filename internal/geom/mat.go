package geom

import "math"

// Mat4 is a row-major 4x4 homogeneous transform matrix.
type Mat4 [4][4]float64

// Mat4Identity returns the identity matrix.
func Mat4Identity() Mat4 {
	var m Mat4
	m[0][0], m[1][1], m[2][2], m[3][3] = 1, 1, 1, 1
	return m
}

// Mat4Translate returns a translation matrix.
func Mat4Translate(t Vec3) Mat4 {
	m := Mat4Identity()
	m[0][3], m[1][3], m[2][3] = t.X, t.Y, t.Z
	return m
}

// Mat4Scale returns a non-uniform scale matrix.
func Mat4Scale(s Vec3) Mat4 {
	var m Mat4
	m[0][0], m[1][1], m[2][2], m[3][3] = s.X, s.Y, s.Z, 1
	return m
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// TransformPoint applies m to the point p (w=1, perspective-divided).
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	x := m[0][0]*p.X + m[0][1]*p.Y + m[0][2]*p.Z + m[0][3]
	y := m[1][0]*p.X + m[1][1]*p.Y + m[1][2]*p.Z + m[1][3]
	z := m[2][0]*p.X + m[2][1]*p.Y + m[2][2]*p.Z + m[2][3]
	w := m[3][0]*p.X + m[3][1]*p.Y + m[3][2]*p.Z + m[3][3]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}
	}
	return Vec3{x, y, z}
}

// TransformDir applies only the rotational/scale part of m to direction d.
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return Vec3{
		m[0][0]*d.X + m[0][1]*d.Y + m[0][2]*d.Z,
		m[1][0]*d.X + m[1][1]*d.Y + m[1][2]*d.Z,
		m[2][0]*d.X + m[2][1]*d.Y + m[2][2]*d.Z,
	}
}

// Transpose returns the transposed matrix.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// InverseRigid inverts a rigid transform (rotation + translation only).
// It is much cheaper and more stable than a general inverse and is the
// common case for camera extrinsics.
func (m Mat4) InverseRigid() Mat4 {
	var r Mat4
	// R^T
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	// -R^T * t
	t := Vec3{m[0][3], m[1][3], m[2][3]}
	rt := Vec3{
		-(r[0][0]*t.X + r[0][1]*t.Y + r[0][2]*t.Z),
		-(r[1][0]*t.X + r[1][1]*t.Y + r[1][2]*t.Z),
		-(r[2][0]*t.X + r[2][1]*t.Y + r[2][2]*t.Z),
	}
	r[0][3], r[1][3], r[2][3] = rt.X, rt.Y, rt.Z
	r[3][3] = 1
	return r
}

// Inverse returns the general inverse via Gauss-Jordan elimination with
// partial pivoting. Returns the identity when m is singular.
func (m Mat4) Inverse() Mat4 {
	a := m
	inv := Mat4Identity()
	for col := 0; col < 4; col++ {
		// Find pivot.
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if a[pivot][col] == 0 {
			return Mat4Identity()
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Normalize pivot row.
		p := a[col][col]
		for j := 0; j < 4; j++ {
			a[col][j] /= p
			inv[col][j] /= p
		}
		// Eliminate other rows.
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv
}

// AlmostEqual reports whether all entries of m are within eps of n.
func (m Mat4) AlmostEqual(n Mat4, eps float64) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(m[i][j]-n[i][j]) > eps {
				return false
			}
		}
	}
	return true
}
