package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec3Basics(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, -5, 6)
	if got := a.Add(b); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Mul(b); got != V3(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	x := V3(1, 0, 0)
	y := V3(0, 1, 0)
	if got := x.Cross(y); !got.AlmostEqual(V3(0, 0, 1), 1e-12) {
		t.Errorf("x cross y = %v, want z", got)
	}
	// Property: cross product is orthogonal to both operands.
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() || a.Len() > 1e100 || b.Len() > 1e100 {
			return true // avoid overflow in the cross product itself
		}
		c := a.Cross(b)
		scale := a.Len() * b.Len()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVec3Normalize(t *testing.T) {
	v := V3(3, 4, 0).Normalize()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Errorf("normalized length = %v", v.Len())
	}
	z := Vec3{}.Normalize()
	if z != (Vec3{}) {
		t.Errorf("zero normalize = %v", z)
	}
}

func TestVec3Lerp(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, -10, 2)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !got.AlmostEqual(b, 1e-12) {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.AlmostEqual(V3(5, -5, 1), 1e-12) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestVec3MinMax(t *testing.T) {
	a, b := V3(1, 5, -3), V3(2, -4, 0)
	if got := a.Min(b); got != V3(1, -4, -3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V3(2, 5, 0) {
		t.Errorf("Max = %v", got)
	}
}

func TestVec3DistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		b := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		c := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-12 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestAABB(t *testing.T) {
	pts := []Vec3{V3(1, 2, 3), V3(-1, 5, 0), V3(0, 0, 10)}
	b := NewAABB(pts)
	if b.Min != V3(-1, 0, 0) || b.Max != V3(1, 5, 10) {
		t.Fatalf("bounds = %v %v", b.Min, b.Max)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(V3(2, 0, 0)) {
		t.Error("box should not contain (2,0,0)")
	}
	e := b.Extend(1)
	if !e.Contains(V3(2, 0, 0)) {
		t.Error("extended box should contain (2,0,0)")
	}
	if got := b.Center(); !got.AlmostEqual(V3(0, 2.5, 5), 1e-12) {
		t.Errorf("center = %v", got)
	}
	if got := b.Size(); !got.AlmostEqual(V3(2, 5, 10), 1e-12) {
		t.Errorf("size = %v", got)
	}
}

func TestAABBEmpty(t *testing.T) {
	b := NewAABB(nil)
	if b.Contains(V3(0, 0, 0)) {
		t.Error("empty box should contain nothing")
	}
}

func TestAABBUnion(t *testing.T) {
	a := AABB{V3(0, 0, 0), V3(1, 1, 1)}
	b := AABB{V3(2, -1, 0), V3(3, 0, 2)}
	u := a.Union(b)
	if u.Min != V3(0, -1, 0) || u.Max != V3(3, 1, 2) {
		t.Fatalf("union = %v", u)
	}
}
