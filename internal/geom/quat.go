package geom

import (
	"fmt"
	"math"
)

// Quat is a rotation quaternion (W + Xi + Yj + Zk). Quaternions returned by
// constructors in this package are unit length.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity is the no-rotation quaternion.
var QuatIdentity = Quat{W: 1}

// QuatFromAxisAngle builds a quaternion rotating angle radians about axis.
// The axis need not be normalized; a zero axis yields the identity.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalize()
	if a.LenSq() == 0 {
		return QuatIdentity
	}
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QuatFromEuler builds a quaternion from yaw (about Y), pitch (about X) and
// roll (about Z), applied in yaw-pitch-roll order. This matches the headset
// pose convention used by the user traces.
func QuatFromEuler(yaw, pitch, roll float64) Quat {
	qy := QuatFromAxisAngle(Vec3{Y: 1}, yaw)
	qx := QuatFromAxisAngle(Vec3{X: 1}, pitch)
	qz := QuatFromAxisAngle(Vec3{Z: 1}, roll)
	return qy.Mul(qx).Mul(qz)
}

// Euler decomposes q into (yaw, pitch, roll) matching QuatFromEuler.
func (q Quat) Euler() (yaw, pitch, roll float64) {
	// Rotation matrix elements needed for YXZ decomposition.
	m := q.Mat4()
	// For R = Ry * Rx * Rz:
	// m[1][2] = -sin(pitch)
	pitch = math.Asin(clamp(-m[1][2], -1, 1))
	if math.Abs(m[1][2]) < 0.9999999 {
		yaw = math.Atan2(m[0][2], m[2][2])
		roll = math.Atan2(m[1][0], m[1][1])
	} else {
		// Gimbal lock: pitch = ±90°, roll is unrecoverable; fold into yaw.
		yaw = math.Atan2(-m[2][0], m[0][0])
		roll = 0
	}
	return
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mul returns the Hamilton product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit length; identity if q is zero.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q^-1, expanded.
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// Slerp spherically interpolates from q (t=0) to r (t=1).
func (q Quat) Slerp(r Quat, t float64) Quat {
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	if dot < 0 { // take the short way around
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		dot = -dot
	}
	if dot > 0.9995 { // nearly parallel: lerp + renormalize
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Normalize()
	}
	theta := math.Acos(clamp(dot, -1, 1))
	sin := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sin
	b := math.Sin(t*theta) / sin
	return Quat{
		a*q.W + b*r.W,
		a*q.X + b*r.X,
		a*q.Y + b*r.Y,
		a*q.Z + b*r.Z,
	}
}

// AngleTo returns the rotation angle in radians needed to go from q to r.
func (q Quat) AngleTo(r Quat) float64 {
	d := q.Conj().Mul(r).Normalize()
	return 2 * math.Acos(clamp(math.Abs(d.W), -1, 1))
}

// Mat4 returns the rotation as a 4x4 matrix.
func (q Quat) Mat4() Mat4 {
	x, y, z, w := q.X, q.Y, q.Z, q.W
	var m Mat4
	m[0][0] = 1 - 2*(y*y+z*z)
	m[0][1] = 2 * (x*y - z*w)
	m[0][2] = 2 * (x*z + y*w)
	m[1][0] = 2 * (x*y + z*w)
	m[1][1] = 1 - 2*(x*x+z*z)
	m[1][2] = 2 * (y*z - x*w)
	m[2][0] = 2 * (x*z - y*w)
	m[2][1] = 2 * (y*z + x*w)
	m[2][2] = 1 - 2*(x*x+y*y)
	m[3][3] = 1
	return m
}

// String implements fmt.Stringer.
func (q Quat) String() string {
	return fmt.Sprintf("quat(w=%.4f x=%.4f y=%.4f z=%.4f)", q.W, q.X, q.Y, q.Z)
}
