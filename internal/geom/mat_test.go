package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randRigid(rng *rand.Rand) Mat4 {
	p := Pose{
		Position: V3(rng.NormFloat64()*3, rng.NormFloat64()*3, rng.NormFloat64()*3),
		Rotation: randQuat(rng),
	}
	return p.Mat4()
}

func TestMat4Identity(t *testing.T) {
	v := V3(4, 5, 6)
	if got := Mat4Identity().TransformPoint(v); got != v {
		t.Errorf("identity transform = %v", got)
	}
}

func TestMat4TranslateScale(t *testing.T) {
	m := Mat4Translate(V3(1, 2, 3))
	if got := m.TransformPoint(V3(0, 0, 0)); got != V3(1, 2, 3) {
		t.Errorf("translate = %v", got)
	}
	s := Mat4Scale(V3(2, 3, 4))
	if got := s.TransformPoint(V3(1, 1, 1)); got != V3(2, 3, 4) {
		t.Errorf("scale = %v", got)
	}
	// Direction ignores translation.
	if got := m.TransformDir(V3(1, 0, 0)); got != V3(1, 0, 0) {
		t.Errorf("dir = %v", got)
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		a, b, c := randRigid(rng), randRigid(rng), randRigid(rng)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.AlmostEqual(right, 1e-9) {
			t.Fatal("matrix multiplication not associative")
		}
	}
}

func TestMat4InverseRigid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		m := randRigid(rng)
		inv := m.InverseRigid()
		if !m.Mul(inv).AlmostEqual(Mat4Identity(), 1e-9) {
			t.Fatal("m * m^-1 != I")
		}
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if !inv.TransformPoint(m.TransformPoint(v)).AlmostEqual(v, 1e-9) {
			t.Fatal("inverse rigid round trip failed")
		}
	}
}

func TestMat4GeneralInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		m := randRigid(rng).Mul(Mat4Scale(V3(1+rng.Float64(), 1+rng.Float64(), 1+rng.Float64())))
		inv := m.Inverse()
		if !m.Mul(inv).AlmostEqual(Mat4Identity(), 1e-8) {
			t.Fatal("general inverse failed")
		}
	}
	// Singular matrix falls back to identity.
	var z Mat4
	if !z.Inverse().AlmostEqual(Mat4Identity(), 0) {
		t.Error("singular inverse should be identity")
	}
}

func TestMat4Transpose(t *testing.T) {
	m := Mat4{}
	m[0][1] = 5
	m[2][3] = 7
	tr := m.Transpose()
	if tr[1][0] != 5 || tr[3][2] != 7 {
		t.Error("transpose wrong")
	}
	if !m.Transpose().Transpose().AlmostEqual(m, 0) {
		t.Error("double transpose != original")
	}
}

func TestPoseTransform(t *testing.T) {
	p := Pose{Position: V3(1, 0, 0), Rotation: QuatFromAxisAngle(V3(0, 1, 0), math.Pi/2)}
	// Local +Z maps to world -X... wait: rotating +Z about +Y by 90° gives +X.
	got := p.TransformPoint(V3(0, 0, 1))
	want := V3(2, 0, 0) // rotate (0,0,1) about Y by +90° -> (1,0,0); + position (1,0,0)
	if !got.AlmostEqual(want, 1e-12) {
		t.Errorf("transform = %v, want %v", got, want)
	}
	back := p.InverseTransformPoint(got)
	if !back.AlmostEqual(V3(0, 0, 1), 1e-12) {
		t.Errorf("inverse transform = %v", back)
	}
}

func TestPoseMat4AgreesWithTransformPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		p := Pose{
			Position: V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()),
			Rotation: randQuat(rng),
		}
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if !p.Mat4().TransformPoint(v).AlmostEqual(p.TransformPoint(v), 1e-9) {
			t.Fatal("Mat4 disagrees with TransformPoint")
		}
		if !p.InverseMat4().TransformPoint(v).AlmostEqual(p.InverseTransformPoint(v), 1e-9) {
			t.Fatal("InverseMat4 disagrees with InverseTransformPoint")
		}
	}
}

func TestLookAt(t *testing.T) {
	eye := V3(0, 1, -5)
	target := V3(0, 1, 0)
	p := LookAt(eye, target, V3(0, 1, 0))
	fwd := p.Forward()
	if !fwd.AlmostEqual(V3(0, 0, 1), 1e-9) {
		t.Errorf("forward = %v, want +Z", fwd)
	}
	if p.Position != eye {
		t.Errorf("position = %v", p.Position)
	}
	up := p.Up()
	if math.Abs(up.Dot(fwd)) > 1e-9 {
		t.Error("up not orthogonal to forward")
	}
}

func TestLookAtDegenerate(t *testing.T) {
	// Looking straight up (forward parallel to up hint).
	p := LookAt(V3(0, 0, 0), V3(0, 5, 0), V3(0, 1, 0))
	if !p.Forward().AlmostEqual(V3(0, 1, 0), 1e-9) {
		t.Errorf("forward = %v, want +Y", p.Forward())
	}
	// Target == eye.
	q := LookAt(V3(1, 1, 1), V3(1, 1, 1), V3(0, 1, 0))
	if q.Rotation != QuatIdentity {
		t.Errorf("degenerate LookAt rotation = %v", q.Rotation)
	}
}

func TestPoseLerp(t *testing.T) {
	a := Pose{Position: V3(0, 0, 0), Rotation: QuatIdentity}
	b := Pose{Position: V3(2, 0, 0), Rotation: QuatFromAxisAngle(V3(0, 1, 0), 1.0)}
	mid := a.Lerp(b, 0.5)
	if !mid.Position.AlmostEqual(V3(1, 0, 0), 1e-12) {
		t.Errorf("lerp position = %v", mid.Position)
	}
	if math.Abs(QuatIdentity.AngleTo(mid.Rotation)-0.5) > 1e-9 {
		t.Errorf("lerp rotation angle = %v", QuatIdentity.AngleTo(mid.Rotation))
	}
}
