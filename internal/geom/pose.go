package geom

import (
	"fmt"
	"math"
)

// Pose is a rigid 6-DoF pose: a position and an orientation. It is used for
// camera extrinsics and for viewer (headset) poses in user traces.
type Pose struct {
	Position Vec3
	Rotation Quat
}

// PoseIdentity is the origin pose with no rotation.
var PoseIdentity = Pose{Rotation: QuatIdentity}

// Mat4 returns the local-to-world transform of the pose: world = R*local + t.
func (p Pose) Mat4() Mat4 {
	m := p.Rotation.Mat4()
	m[0][3], m[1][3], m[2][3] = p.Position.X, p.Position.Y, p.Position.Z
	return m
}

// InverseMat4 returns the world-to-local transform.
func (p Pose) InverseMat4() Mat4 { return p.Mat4().InverseRigid() }

// TransformPoint maps a point from the pose's local frame to world.
func (p Pose) TransformPoint(v Vec3) Vec3 {
	return p.Rotation.Rotate(v).Add(p.Position)
}

// InverseTransformPoint maps a world point into the pose's local frame.
func (p Pose) InverseTransformPoint(v Vec3) Vec3 {
	return p.Rotation.Conj().Rotate(v.Sub(p.Position))
}

// Forward returns the pose's local +Z axis in world space (view direction).
func (p Pose) Forward() Vec3 { return p.Rotation.Rotate(Vec3{Z: 1}) }

// Up returns the pose's local +Y axis in world space.
func (p Pose) Up() Vec3 { return p.Rotation.Rotate(Vec3{Y: 1}) }

// Right returns the pose's local +X axis in world space.
func (p Pose) Right() Vec3 { return p.Rotation.Rotate(Vec3{X: 1}) }

// Lerp interpolates both position (linearly) and rotation (slerp).
func (p Pose) Lerp(q Pose, t float64) Pose {
	return Pose{
		Position: p.Position.Lerp(q.Position, t),
		Rotation: p.Rotation.Slerp(q.Rotation, t),
	}
}

// LookAt builds a pose at eye looking toward target with the given up hint.
func LookAt(eye, target, up Vec3) Pose {
	fwd := target.Sub(eye).Normalize()
	if fwd.LenSq() == 0 {
		return Pose{Position: eye, Rotation: QuatIdentity}
	}
	right := up.Cross(fwd).Normalize()
	if right.LenSq() == 0 { // fwd parallel to up: pick another hint
		right = Vec3{X: 1}.Cross(fwd).Normalize()
		if right.LenSq() == 0 {
			right = Vec3{Z: 1}.Cross(fwd).Normalize()
		}
	}
	upOrtho := fwd.Cross(right)
	// Build rotation matrix whose columns are the basis vectors, then
	// convert to a quaternion.
	var m Mat4
	m[0][0], m[0][1], m[0][2] = right.X, upOrtho.X, fwd.X
	m[1][0], m[1][1], m[1][2] = right.Y, upOrtho.Y, fwd.Y
	m[2][0], m[2][1], m[2][2] = right.Z, upOrtho.Z, fwd.Z
	m[3][3] = 1
	return Pose{Position: eye, Rotation: quatFromMat(m)}
}

// quatFromMat extracts a unit quaternion from a pure rotation matrix.
func quatFromMat(m Mat4) Quat {
	tr := m[0][0] + m[1][1] + m[2][2]
	var q Quat
	switch {
	case tr > 0:
		s := sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (m[2][1] - m[1][2]) / s,
			Y: (m[0][2] - m[2][0]) / s,
			Z: (m[1][0] - m[0][1]) / s,
		}
	case m[0][0] > m[1][1] && m[0][0] > m[2][2]:
		s := sqrt(1+m[0][0]-m[1][1]-m[2][2]) * 2
		q = Quat{
			W: (m[2][1] - m[1][2]) / s,
			X: s / 4,
			Y: (m[0][1] + m[1][0]) / s,
			Z: (m[0][2] + m[2][0]) / s,
		}
	case m[1][1] > m[2][2]:
		s := sqrt(1+m[1][1]-m[0][0]-m[2][2]) * 2
		q = Quat{
			W: (m[0][2] - m[2][0]) / s,
			X: (m[0][1] + m[1][0]) / s,
			Y: s / 4,
			Z: (m[1][2] + m[2][1]) / s,
		}
	default:
		s := sqrt(1+m[2][2]-m[0][0]-m[1][1]) * 2
		q = Quat{
			W: (m[1][0] - m[0][1]) / s,
			X: (m[0][2] + m[2][0]) / s,
			Y: (m[1][2] + m[2][1]) / s,
			Z: s / 4,
		}
	}
	return q.Normalize()
}

// sqrt guards tiny negatives arising from floating-point noise in the trace
// computations above.
func sqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}

// String implements fmt.Stringer.
func (p Pose) String() string {
	return fmt.Sprintf("pose{pos=%v rot=%v}", p.Position, p.Rotation)
}
