package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randQuat(rng *rand.Rand) Quat {
	axis := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	return QuatFromAxisAngle(axis, rng.Float64()*2*math.Pi-math.Pi)
}

func TestQuatIdentityRotate(t *testing.T) {
	v := V3(1, 2, 3)
	if got := QuatIdentity.Rotate(v); !got.AlmostEqual(v, 1e-12) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle90(t *testing.T) {
	q := QuatFromAxisAngle(V3(0, 1, 0), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	// Right-handed rotation of +X about +Y by 90° gives -Z.
	if !got.AlmostEqual(V3(0, 0, -1), 1e-12) {
		t.Errorf("rotate = %v, want (0,0,-1)", got)
	}
}

func TestQuatMulComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		q, r := randQuat(rng), randQuat(rng)
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		want := q.Rotate(r.Rotate(v))
		got := q.Mul(r).Rotate(v)
		if !got.AlmostEqual(want, 1e-9) {
			t.Fatalf("composition mismatch: %v vs %v", got, want)
		}
	}
}

func TestQuatConjInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		q := randQuat(rng)
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		back := q.Conj().Rotate(q.Rotate(v))
		if !back.AlmostEqual(v, 1e-9) {
			t.Fatalf("conj did not invert: %v vs %v", back, v)
		}
	}
}

func TestQuatRotatePreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		q := randQuat(rng)
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if math.Abs(q.Rotate(v).Len()-v.Len()) > 1e-9*math.Max(1, v.Len()) {
			t.Fatalf("rotation changed length")
		}
	}
}

func TestQuatMat4Agrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		q := randQuat(rng)
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		a := q.Rotate(v)
		b := q.Mat4().TransformPoint(v)
		if !a.AlmostEqual(b, 1e-9) {
			t.Fatalf("quat vs matrix mismatch: %v vs %v", a, b)
		}
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		q, r := randQuat(rng), randQuat(rng)
		v := V3(1, 0.5, -2)
		if !q.Slerp(r, 0).Rotate(v).AlmostEqual(q.Rotate(v), 1e-9) {
			t.Fatal("slerp(0) != q")
		}
		if !q.Slerp(r, 1).Rotate(v).AlmostEqual(r.Rotate(v), 1e-9) {
			t.Fatal("slerp(1) != r")
		}
		// Midpoint must be unit length.
		if math.Abs(q.Slerp(r, 0.5).Norm()-1) > 1e-9 {
			t.Fatal("slerp(0.5) not unit")
		}
	}
}

func TestQuatAngleTo(t *testing.T) {
	q := QuatIdentity
	r := QuatFromAxisAngle(V3(1, 0, 0), 0.7)
	if got := q.AngleTo(r); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("AngleTo = %v, want 0.7", got)
	}
	if got := q.AngleTo(q); got > 1e-9 {
		t.Errorf("AngleTo self = %v", got)
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		yaw := (rng.Float64()*2 - 1) * math.Pi
		pitch := (rng.Float64()*2 - 1) * (math.Pi/2 - 0.05) // avoid gimbal lock
		roll := (rng.Float64()*2 - 1) * math.Pi
		q := QuatFromEuler(yaw, pitch, roll)
		y2, p2, r2 := q.Euler()
		q2 := QuatFromEuler(y2, p2, r2)
		// Compare by rotation action, not component values (double cover).
		v := V3(1, 2, 3)
		if !q.Rotate(v).AlmostEqual(q2.Rotate(v), 1e-6) {
			t.Fatalf("euler round trip failed: (%v,%v,%v) -> (%v,%v,%v)", yaw, pitch, roll, y2, p2, r2)
		}
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	if got := (Quat{}).Normalize(); got != QuatIdentity {
		t.Errorf("zero normalize = %v", got)
	}
}
