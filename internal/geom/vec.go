// Package geom provides the 3D math primitives used throughout LiVo:
// vectors, quaternions, 4x4 transforms, camera poses, planes, and view
// frustums. Everything is implemented from scratch on float64 (the paper's
// implementation uses Eigen; see DESIGN.md).
//
// Conventions: right-handed coordinate system, +Y up, cameras look down
// their local +Z axis. Angles are radians unless noted. Distances are
// meters except where a function documents millimeters (depth images).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector (point or direction).
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean norm of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// LenSq returns the squared norm of v.
func (v Vec3) LenSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// DistSq returns the squared distance between v and w.
func (v Vec3) DistSq(w Vec3) float64 { return v.Sub(w).LenSq() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// AlmostEqual reports whether every component of v is within eps of w.
func (v Vec3) AlmostEqual(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps && math.Abs(v.Z-w.Z) <= eps
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4f, %.4f, %.4f)", v.X, v.Y, v.Z) }

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the smallest box containing all points. An empty point set
// yields an inverted box that Contains nothing.
func NewAABB(points []Vec3) AABB {
	b := AABB{
		Min: Vec3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: Vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	for _, p := range points {
		b.Min = b.Min.Min(p)
		b.Max = b.Max.Max(p)
	}
	return b
}

// Contains reports whether p lies inside or on the box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Extend grows the box by d on every side.
func (b AABB) Extend(d float64) AABB {
	e := Vec3{d, d, d}
	return AABB{b.Min.Sub(e), b.Max.Add(e)}
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{b.Min.Min(o.Min), b.Max.Max(o.Max)}
}
