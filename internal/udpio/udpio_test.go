package udpio

import (
	"bytes"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

func listenT(t *testing.T, cfg Config) *Socket {
	t.Helper()
	s, err := Listen("udp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func plainConn(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenPacket: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// recvFunc returns a ConformConfig.Recv reading ordered datagrams off c.
func recvFunc(c net.PacketConn) func() ([]byte, error) {
	buf := make([]byte, 70000)
	return func() ([]byte, error) {
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := c.ReadFrom(buf)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), buf[:n]...), nil
	}
}

// The conformance suite must hold on a real loopback socket on both the
// kernel-batched path and the per-packet fallback (which is the only path
// on non-linux platforms — same test, no gating).
func TestConformLoopback(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"perpacket", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := listenT(t, Config{DisableBatch: tc.disable})
			sink := plainConn(t)
			err := ConformBatchWriter(s, sink.LocalAddr(), ConformConfig{
				Recv:        recvFunc(sink),
				MaxDatagram: 65507,
			})
			if err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.WritePackets == 0 || st.WriteSyscalls == 0 {
				t.Fatalf("stats not accounted: %+v", st)
			}
			if !tc.disable && batchSupported && st.WriteSyscalls >= st.WritePackets {
				t.Fatalf("batched path made %d syscalls for %d packets", st.WriteSyscalls, st.WritePackets)
			}
		})
	}
}

func TestReadBatch(t *testing.T) {
	s := listenT(t, Config{Batch: 8})
	peer := plainConn(t)

	const total = 20
	var want [][]byte
	for i := 0; i < total; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 50+i)
		want = append(want, p)
		if _, err := peer.WriteTo(p, s.LocalAddr()); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let loopback queue everything

	ms := make([]Message, 8)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048)
	}
	var got [][]byte
	_ = s.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(got) < total {
		n, err := s.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d pkts: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			if ms[i].N == 0 {
				continue
			}
			got = append(got, append([]byte(nil), ms[i].Buf[:ms[i].N]...))
			if a, b := ms[i].Addr.String(), peer.LocalAddr().String(); a != b {
				t.Fatalf("slot %d addr = %s, want %s", i, a, b)
			}
		}
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("packet %d: got %d bytes, want %d (or out of order)", i, len(got[i]), len(want[i]))
		}
	}
	st := s.Stats()
	if st.ReadPackets != total {
		t.Fatalf("ReadPackets = %d, want %d", st.ReadPackets, total)
	}
	if s.Batched() && st.ReadSyscalls >= total {
		t.Fatalf("batched reader made %d syscalls for %d packets", st.ReadSyscalls, total)
	}
}

func TestReadBatchDeadline(t *testing.T) {
	s := listenT(t, Config{})
	ms := []Message{{Buf: make([]byte, 2048)}}
	_ = s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := s.ReadBatch(ms)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("ReadBatch past deadline: err = %v, want timeout", err)
	}
}

// A datagram larger than the slot buffer must be dropped (N == 0) and
// counted, never delivered as a corrupt prefix. Kernel-batch semantics
// (MSG_TRUNC); the fallback ReadFrom truncates silently like any UDP read.
func TestReadBatchTruncation(t *testing.T) {
	s := listenT(t, Config{})
	if !s.Batched() {
		t.Skip("kernel batching unavailable")
	}
	peer := plainConn(t)
	if _, err := peer.WriteTo(make([]byte, 3000), s.LocalAddr()); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := peer.WriteTo([]byte("ok"), s.LocalAddr()); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	ms := make([]Message, 4)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048)
	}
	_ = s.SetReadDeadline(time.Now().Add(2 * time.Second))
	var kept [][]byte
	for len(kept) == 0 {
		n, err := s.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		for i := 0; i < n; i++ {
			if ms[i].N > 0 {
				kept = append(kept, ms[i].Buf[:ms[i].N])
			}
		}
	}
	if len(kept) != 1 || string(kept[0]) != "ok" {
		t.Fatalf("kept %d packets (first %q), want just \"ok\"", len(kept), kept[0])
	}
	if s.Stats().Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", s.Stats().Truncated)
	}
}

// Close must unblock readers parked in ReadBatch and writers parked in
// WriteBatch, with no race on the shared scratch (run under -race).
func TestConcurrentClose(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"perpacket", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := listenT(t, Config{DisableBatch: tc.disable})
			sink := plainConn(t) // never reads: writers eventually block
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				ms := make([]Message, 8)
				for i := range ms {
					ms[i].Buf = make([]byte, 2048)
				}
				for {
					if _, err := s.ReadBatch(ms); err != nil {
						return
					}
				}
			}()
			ps := [][]byte{bytes.Repeat([]byte{1}, 1200), bytes.Repeat([]byte{2}, 1200)}
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, err := s.WriteBatch(ps, sink.LocalAddr()); err != nil {
							return
						}
					}
				}()
			}
			time.Sleep(10 * time.Millisecond)
			s.Close()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Close did not unblock batch I/O within 5s")
			}
		})
	}
}

// A reuseport group shares one port and delivers every inbound packet to
// exactly one member; across many source flows the total must balance.
func TestListenGroup(t *testing.T) {
	socks, err := ListenGroup("udp", "127.0.0.1:0", 4, Config{})
	if err != nil {
		t.Fatalf("ListenGroup: %v", err)
	}
	defer func() {
		for _, s := range socks {
			s.Close()
		}
	}()
	if runtime.GOOS == "linux" {
		if len(socks) != 4 {
			t.Fatalf("group size = %d, want 4", len(socks))
		}
		port := socks[0].LocalAddr().(*net.UDPAddr).Port
		for _, s := range socks[1:] {
			if p := s.LocalAddr().(*net.UDPAddr).Port; p != port {
				t.Fatalf("group spans ports %d and %d", port, p)
			}
		}
	} else if len(socks) != 1 {
		t.Fatalf("fallback group size = %d, want 1", len(socks))
	}

	const flows, perFlow = 8, 5
	dst := socks[0].LocalAddr()
	for f := 0; f < flows; f++ {
		src := plainConn(t)
		for i := 0; i < perFlow; i++ {
			if _, err := src.WriteTo([]byte{byte(f), byte(i)}, dst); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
		}
	}
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, s := range socks {
		wg.Add(1)
		go func(s *Socket) {
			defer wg.Done()
			ms := make([]Message, 8)
			for i := range ms {
				ms[i].Buf = make([]byte, 64)
			}
			for {
				_ = s.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
				n, err := s.ReadBatch(ms)
				if err != nil {
					return
				}
				mu.Lock()
				for i := 0; i < n; i++ {
					if ms[i].N > 0 {
						total++
					}
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	if total != flows*perFlow {
		t.Fatalf("group delivered %d packets, want %d", total, flows*perFlow)
	}
}

func TestSocketBufferGranted(t *testing.T) {
	s := listenT(t, Config{RecvBuf: 1 << 20, SendBuf: 1 << 20})
	st := s.Stats()
	if runtime.GOOS == "linux" && (st.RecvBufBytes <= 0 || st.SendBufBytes <= 0) {
		t.Fatalf("granted buffer sizes not reported: %+v", st)
	}
}
