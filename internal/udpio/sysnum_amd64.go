//go:build linux && amd64

package udpio

// Raw syscall numbers: package syscall predates sendmmsg and never grew a
// SYS_SENDMMSG constant (recvmmsg made it in, but hard-coding both keeps
// the pair symmetric and arch-gated in one place).
const (
	sysSENDMMSG uintptr = 307
	sysRECVMMSG uintptr = 299
)
