//go:build !linux

package udpio

// No portable SO_REUSEPORT: ListenGroup degrades to a single socket (one
// ingest loop feeding all shards through ShardPool hashing, as before).
const reusePortSupported = false

func listenReusePort(network, address string, n int, cfg Config) ([]*Socket, error) {
	s, err := Listen(network, address, cfg)
	if err != nil {
		return nil, err
	}
	return []*Socket{s}, nil
}
