//go:build linux && (amd64 || arm64)

package udpio

import (
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

const batchSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-filled per-message byte count. The trailing pad keeps the array
// stride at 64 bytes on both amd64 and arm64 (msghdr is 56 bytes).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// osSocket holds the platform batching scratch: a single-reader recvmmsg
// arena plus a pool of sendmmsg arenas (writer workers call WriteBatch
// concurrently).
type osSocket struct {
	recv recvScratch
	send sync.Pool // *sendScratch
}

// recvScratch is the recvmmsg arena: headers, iovecs, raw sockaddr
// storage, and reusable net.UDPAddrs with per-slot IP backing arrays.
// Message.Addr points here, which is why it is only valid until the next
// ReadBatch — and why ReadBatch is single-goroutine per socket.
type recvScratch struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6 // large enough for v4 and v6
	addrs []net.UDPAddr
	ips   [][16]byte
}

type sendScratch struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  syscall.RawSockaddrInet4
	sa6  syscall.RawSockaddrInet6
}

func (s *Socket) initOS() {
	b := s.batch
	s.os.recv.hdrs = make([]mmsghdr, b)
	s.os.recv.iovs = make([]syscall.Iovec, b)
	s.os.recv.names = make([]syscall.RawSockaddrInet6, b)
	s.os.recv.addrs = make([]net.UDPAddr, b)
	s.os.recv.ips = make([][16]byte, b)
	s.os.send.New = func() any {
		return &sendScratch{hdrs: make([]mmsghdr, b), iovs: make([]syscall.Iovec, b)}
	}
}

// ntohs / htons swap a uint16 between wire (big-endian) and host order;
// raw sockaddr ports are stored in network byte order.
func ntohs(v uint16) int { return int(v>>8 | v<<8) }
func htons(p int) uint16 { v := uint16(p); return v>>8 | v<<8 }

// recvBatch fills message slots with one recvmmsg per kernel visit. The
// RawConn Read closure returns false on EAGAIN so the runtime poller
// parks us until readable (or deadline/close), exactly like ReadFrom.
func (s *Socket) recvBatch(ms []Message) (int, error) {
	st := &s.os.recv
	n := len(ms)
	if n > s.batch {
		n = s.batch
	}
	for i := 0; i < n; i++ {
		b := ms[i].Buf
		iov := &st.iovs[i]
		if len(b) > 0 {
			iov.Base = &b[0]
		} else {
			iov.Base = nil
		}
		iov.Len = uint64(len(b))
		h := &st.hdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&st.names[i])),
			Namelen: uint32(unsafe.Sizeof(st.names[i])),
			Iov:     iov,
			Iovlen:  1,
		}
		h.n = 0
	}
	var got int
	var opErr error
	err := s.rc.Read(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&st.hdrs[0])), uintptr(n), 0, 0, 0)
			s.readSyscalls.Add(1)
			switch errno {
			case 0:
				got = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				opErr = errno
				return true
			}
		}
	})
	runtime.KeepAlive(ms)
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < got; i++ {
		h := &st.hdrs[i]
		if h.hdr.Flags&syscall.MSG_TRUNC != 0 {
			// The datagram exceeded the slot's buffer: drop it (N = 0,
			// callers skip) rather than forward a corrupt prefix. Valid
			// LiVo wire packets never exceed the pool class size.
			s.truncated.Add(1)
			ms[i].N, ms[i].Addr = 0, nil
			continue
		}
		ms[i].N = int(h.n)
		ms[i].Addr = st.sockaddrAt(i)
	}
	s.readPkts.Add(int64(got))
	return got, nil
}

// sockaddrAt decodes the raw sockaddr the kernel wrote for slot i into
// the slot's reusable net.UDPAddr (no allocation).
func (st *recvScratch) sockaddrAt(i int) *net.UDPAddr {
	a := &st.addrs[i]
	raw := &st.names[i]
	switch raw.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(raw))
		ip := st.ips[i][:4]
		copy(ip, sa.Addr[:])
		a.IP, a.Port, a.Zone = ip, ntohs(sa.Port), ""
	case syscall.AF_INET6:
		ip := st.ips[i][:16]
		copy(ip, raw.Addr[:])
		// Scope ids are left unresolved (mapping to an interface name
		// allocates); the relay keys subscribers on IP:port.
		a.IP, a.Port, a.Zone = ip, ntohs(raw.Port), ""
	default:
		a.IP, a.Port, a.Zone = nil, 0, ""
	}
	return a
}

// sendBatch sends ps to one destination, one sendmmsg per batch-sized
// chunk. All-or-prefix: on error, exactly the returned count reached the
// kernel. Addresses the fast path can't encode without allocating
// (non-UDP, zoned v6) fall back to the per-packet loop.
func (s *Socket) sendBatch(ps [][]byte, addr net.Addr) (int, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok || ua.Zone != "" {
		return s.writeSeq(ps, addr)
	}
	st := s.os.send.Get().(*sendScratch)
	defer s.os.send.Put(st)
	var name unsafe.Pointer
	var nameLen uint32
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := &st.sa4
		sa.Family = syscall.AF_INET
		sa.Port = htons(ua.Port)
		copy(sa.Addr[:], ip4)
		name, nameLen = unsafe.Pointer(sa), syscall.SizeofSockaddrInet4
	} else if ip16 := ua.IP.To16(); ip16 != nil {
		sa := &st.sa6
		sa.Family = syscall.AF_INET6
		sa.Port = htons(ua.Port)
		copy(sa.Addr[:], ip16)
		name, nameLen = unsafe.Pointer(sa), syscall.SizeofSockaddrInet6
	} else {
		return s.writeSeq(ps, addr)
	}

	sent := 0
	for sent < len(ps) {
		n := len(ps) - sent
		if n > s.batch {
			n = s.batch
		}
		for i := 0; i < n; i++ {
			p := ps[sent+i]
			iov := &st.iovs[i]
			if len(p) > 0 {
				iov.Base = &p[0]
			} else {
				iov.Base = nil
			}
			iov.Len = uint64(len(p))
			h := &st.hdrs[i]
			h.hdr = syscall.Msghdr{
				Name:    (*byte)(name),
				Namelen: nameLen,
				Iov:     iov,
				Iovlen:  1,
			}
			h.n = 0
		}
		done := 0
		var opErr error
		err := s.rc.Write(func(fd uintptr) bool {
			for done < n {
				r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&st.hdrs[done])), uintptr(n-done), 0, 0, 0)
				s.writeSyscalls.Add(1)
				switch errno {
				case 0:
					if r1 == 0 {
						opErr = syscall.EIO
						return true
					}
					done += int(r1)
				case syscall.EINTR:
				case syscall.EAGAIN:
					return false
				default:
					opErr = errno
					return true
				}
			}
			return true
		})
		runtime.KeepAlive(ps)
		s.writePkts.Add(int64(done))
		sent += done
		if err != nil && opErr == nil {
			opErr = err
		}
		if opErr != nil {
			return sent, opErr
		}
	}
	return sent, nil
}
