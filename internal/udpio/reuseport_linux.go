//go:build linux

package udpio

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

const reusePortSupported = true

// soReusePort is not exported by package syscall; the value (15) is
// uniform across linux architectures.
const soReusePort = 0xf

// listenReusePort binds n UDP sockets to one address with SO_REUSEPORT
// set before bind, so the kernel hashes inbound flows across the group —
// one socket (and one ingest loop) per relay shard.
func listenReusePort(network, address string, n int, cfg Config) ([]*Socket, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
	socks := make([]*Socket, 0, n)
	fail := func(err error) ([]*Socket, error) {
		for _, s := range socks {
			s.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, address)
		if err != nil {
			return fail(err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			return fail(fmt.Errorf("udpio: %s is not a UDP network", network))
		}
		s, err := Wrap(uc, cfg)
		if err != nil {
			uc.Close()
			return fail(err)
		}
		socks = append(socks, s)
		if i == 0 {
			// With a ":0" request the kernel picks the port on the first
			// bind; the rest of the group must join that exact port.
			address = s.LocalAddr().String()
		}
	}
	return socks, nil
}
