//go:build !linux

package udpio

import "syscall"

// Non-linux platforms apply the buffer request through the portable
// SetReadBuffer/SetWriteBuffer path but can't read back the granted size
// without platform-specific getsockopt plumbing; report 0 (unknown).
func grantedRecvBuffer(rc syscall.RawConn) int { return 0 }
func grantedSendBuffer(rc syscall.RawConn) int { return 0 }
