//go:build !linux || (!amd64 && !arm64)

package udpio

import "net"

// Portable fallback: no kernel batching. Socket.batched stays false, so
// WriteBatch degrades to a per-packet loop and ReadBatch to a single
// ReadFrom — same API, same all-or-prefix and blocking contracts. These
// bodies exist only to satisfy the compiler; the dispatchers in udpio.go
// never reach them with batched == false, but they behave correctly
// anyway.

const batchSupported = false

type osSocket struct{}

func (s *Socket) initOS() {}

func (s *Socket) sendBatch(ps [][]byte, addr net.Addr) (int, error) {
	return s.writeSeq(ps, addr)
}

func (s *Socket) recvBatch(ms []Message) (int, error) {
	n, addr, err := s.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N, ms[0].Addr = n, addr
	return 1, nil
}
