//go:build linux && arm64

package udpio

// Raw syscall numbers for the arm64 (asm-generic) table.
const (
	sysSENDMMSG uintptr = 269
	sysRECVMMSG uintptr = 243
)
