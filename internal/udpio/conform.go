package udpio

import (
	"bytes"
	"fmt"
	"net"
)

// ConformWriter is the batch-writer shape under conformance test. It
// matches relaycore.BatchWriter structurally, so the helper runs against
// a real udpio Socket and the in-memory bench conn alike without an
// import edge.
type ConformWriter interface {
	WriteTo(p []byte, addr net.Addr) (n int, err error)
	WriteBatch(ps [][]byte, addr net.Addr) (n int, err error)
}

// ConformConfig parameterizes ConformBatchWriter for transports with
// different observability and limits.
type ConformConfig struct {
	// Recv returns the next datagram delivered to the test address, in
	// order. Nil skips content verification (the in-memory bench conn
	// records only packet lengths) — the count and error contracts are
	// still checked.
	Recv func() ([]byte, error)
	// MaxDatagram is the transport's datagram size limit (65507 for real
	// UDP). Zero skips the truncation check — in-memory conns accept any
	// length.
	MaxDatagram int
}

// ConformBatchWriter exercises the relaycore.BatchWriter contract against
// bw, writing to addr: empty batches are free, a batch is delivered in
// order to one destination, batches beyond the per-syscall cap still
// deliver completely, and on error exactly the first n packets were sent
// (all-or-prefix). Returns the first violation found.
func ConformBatchWriter(bw ConformWriter, addr net.Addr, cfg ConformConfig) error {
	// Empty batch: no packets, no error, no syscall obligation.
	if n, err := bw.WriteBatch(nil, addr); n != 0 || err != nil {
		return fmt.Errorf("empty batch: got (%d, %v), want (0, nil)", n, err)
	}

	check := func(ps [][]byte, label string) error {
		n, err := bw.WriteBatch(ps, addr)
		if err != nil || n != len(ps) {
			return fmt.Errorf("%s: got (%d, %v), want (%d, nil)", label, n, err, len(ps))
		}
		if cfg.Recv == nil {
			return nil
		}
		for i, want := range ps {
			got, err := cfg.Recv()
			if err != nil {
				return fmt.Errorf("%s: recv packet %d/%d: %v", label, i+1, len(ps), err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%s: packet %d: delivered %d bytes, want %d (or out of order)",
					label, i, len(got), len(want))
			}
		}
		return nil
	}

	mk := func(count, size int) [][]byte {
		ps := make([][]byte, count)
		for i := range ps {
			p := make([]byte, size+i%7)
			for j := range p {
				p[j] = byte(i + j)
			}
			ps[i] = p
		}
		return ps
	}

	if err := check(mk(1, 9), "single packet"); err != nil {
		return err
	}
	if err := check(mk(5, 100), "five packets"); err != nil {
		return err
	}
	// More packets than one syscall can carry: the writer must chunk and
	// still deliver everything in order.
	if err := check(mk(2*DefaultBatch+3, 64), "over-cap batch"); err != nil {
		return err
	}

	if cfg.MaxDatagram > 0 {
		// All-or-prefix on error: a datagram over the transport limit must
		// fail, and exactly the packets before it must have been sent.
		ps := mk(4, 200)
		ps[2] = make([]byte, cfg.MaxDatagram+1)
		n, err := bw.WriteBatch(ps, addr)
		if err == nil {
			return fmt.Errorf("oversize batch: no error for a %d-byte datagram", len(ps[2]))
		}
		if n != 2 {
			return fmt.Errorf("oversize batch: got n=%d, want 2 (all-or-prefix)", n)
		}
		if cfg.Recv != nil {
			for i := 0; i < 2; i++ {
				got, rerr := cfg.Recv()
				if rerr != nil {
					return fmt.Errorf("oversize batch: recv prefix packet %d: %v", i, rerr)
				}
				if !bytes.Equal(got, ps[i]) {
					return fmt.Errorf("oversize batch: prefix packet %d mismatch (%d bytes)", i, len(got))
				}
			}
		}
	}
	return nil
}
