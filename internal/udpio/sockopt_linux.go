//go:build linux

package udpio

import "syscall"

// grantedRecvBuffer / grantedSendBuffer read back what the kernel
// actually granted after a SetReadBuffer/SetWriteBuffer request — linux
// silently clamps to rmem_max/wmem_max (and doubles the granted value for
// bookkeeping), so the requested size says nothing about reality. Callers
// log this so undersized-buffer drops are diagnosable.
func grantedRecvBuffer(rc syscall.RawConn) int { return getsockoptInt(rc, syscall.SO_RCVBUF) }
func grantedSendBuffer(rc syscall.RawConn) int { return getsockoptInt(rc, syscall.SO_SNDBUF) }

func getsockoptInt(rc syscall.RawConn, opt int) int {
	v := 0
	_ = rc.Control(func(fd uintptr) {
		if got, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, opt); err == nil {
			v = got
		}
	})
	return v
}
