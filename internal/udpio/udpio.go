// Package udpio is the kernel-batched UDP socket layer for the relay wire
// path: sendmmsg-backed batch writes (one syscall drains a whole writer
// ring batch), recvmmsg-backed batch reads (one syscall fills a slice of
// packet buffers), and SO_REUSEPORT socket groups that bind one socket per
// relay shard so kernel flow steering replaces a single-reader ingest loop.
//
// The implementation is stdlib-only: raw syscalls reach the fd through
// net.UDPConn.SyscallConn, so the runtime poller still owns readiness —
// deadlines and Close unblock a blocked batch call exactly as they unblock
// ReadFrom. Kernel batching compiles on linux/amd64 and linux/arm64;
// every other platform (and Config.DisableBatch) takes a per-packet
// fallback behind the same API and contracts, so callers never branch on
// GOOS. Socket satisfies net.PacketConn and relaycore.BatchWriter.
package udpio

import (
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"
)

const (
	// DefaultBatch is the per-syscall packet cap: it matches the relay
	// writer ring's drain unit (relaycore's writerBatch), so one ring
	// drain is one sendmmsg.
	DefaultBatch = 32
	// MaxBatch bounds the scratch arrays a Socket pre-allocates.
	MaxBatch = 64
	// DefaultBufferBytes sizes SO_RCVBUF/SO_SNDBUF for about a second of
	// media at the target rate (4K tiled stream plus retransmissions),
	// with fan-out headroom on the send side. The kernel clamps the
	// request to rmem_max/wmem_max — Stats reports what was granted.
	DefaultBufferBytes = 4 << 20
)

// Config parameterizes a Socket. The zero value picks production defaults.
type Config struct {
	// Batch is the packets-per-syscall cap (default DefaultBatch, capped
	// at MaxBatch).
	Batch int
	// RecvBuf / SendBuf request SO_RCVBUF / SO_SNDBUF in bytes. Zero
	// requests DefaultBufferBytes; negative leaves the kernel default
	// untouched. The kernel may grant less (see SocketStats).
	RecvBuf int
	SendBuf int
	// DisableBatch forces per-packet syscalls even where kernel batching
	// is available — the A/B baseline for -netbench and a portability
	// escape hatch (-udp-batch=false).
	DisableBatch bool
}

// Message is one datagram slot in a ReadBatch call. The caller provides
// Buf; the socket fills N and Addr. Addr points into per-socket scratch
// and is valid only until the next ReadBatch on the same socket — copy it
// (or key it, relaycore.KeyOf copies) before the next call. A slot with
// N == 0 after a successful ReadBatch carried an empty or truncated
// datagram and should be skipped.
type Message struct {
	Buf  []byte
	N    int
	Addr net.Addr
}

// BatchReader is the recvmmsg-shaped read interface: fill up to len(ms)
// messages with one kernel visit, blocking until at least one datagram
// (or an error) is available. Implementations may return fewer than
// len(ms) messages; n is the number of filled slots.
type BatchReader interface {
	ReadBatch(ms []Message) (n int, err error)
}

// SocketStats snapshots a Socket's syscall accounting — the numerator and
// denominator of the syscalls-per-packet figure the netbench gates.
type SocketStats struct {
	ReadSyscalls  int64 // kernel visits on the read side (incl. EAGAIN retries)
	ReadPackets   int64 // datagrams delivered to the caller
	WriteSyscalls int64 // kernel visits on the write side
	WritePackets  int64 // datagrams handed to the kernel
	Truncated     int64 // datagrams dropped because they exceeded the buffer
	RecvBufBytes  int   // SO_RCVBUF the kernel granted (0 = unknown/untouched)
	SendBufBytes  int   // SO_SNDBUF the kernel granted
	Batched       bool  // kernel batching active (false = per-packet fallback)
}

// Socket wraps a *net.UDPConn with batched I/O and syscall accounting. It
// satisfies net.PacketConn, relaycore.BatchWriter, and BatchReader.
//
// Concurrency: ReadBatch/ReadFrom are single-reader (one ingest loop per
// socket — the reuseport group gives each shard its own socket instead of
// sharing one). WriteTo/WriteBatch are safe for concurrent writers.
type Socket struct {
	conn    *net.UDPConn
	rc      syscall.RawConn
	batch   int
	batched bool

	readSyscalls  atomic.Int64
	readPkts      atomic.Int64
	writeSyscalls atomic.Int64
	writePkts     atomic.Int64
	truncated     atomic.Int64

	rcvbuf, sndbuf int

	os osSocket // platform batching state (scratch arrays on linux)
}

// Wrap adopts an existing UDP conn. The caller must not keep using the
// conn directly (the Socket's counters would miss those ops).
func Wrap(c *net.UDPConn, cfg Config) (*Socket, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := cfg.Batch
	if b <= 0 {
		b = DefaultBatch
	}
	if b > MaxBatch {
		b = MaxBatch
	}
	s := &Socket{
		conn:    c,
		rc:      rc,
		batch:   b,
		batched: batchSupported && !cfg.DisableBatch,
	}
	s.rcvbuf, s.sndbuf = setSocketBuffers(c, rc, cfg)
	s.initOS()
	return s, nil
}

// Listen binds one UDP socket on address (e.g. "127.0.0.1:0").
func Listen(network, address string, cfg Config) (*Socket, error) {
	pc, err := net.ListenPacket(network, address)
	if err != nil {
		return nil, err
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("udpio: %s is not a UDP network", network)
	}
	return Wrap(uc, cfg)
}

// ListenGroup binds n sockets to the same address with SO_REUSEPORT, so
// the kernel steers inbound flows across them — one socket per relay
// shard. On platforms without SO_REUSEPORT (or for n <= 1) it returns a
// single socket; callers size their ingest loops off len(result).
func ListenGroup(network, address string, n int, cfg Config) ([]*Socket, error) {
	if n <= 1 || !reusePortSupported {
		s, err := Listen(network, address, cfg)
		if err != nil {
			return nil, err
		}
		return []*Socket{s}, nil
	}
	return listenReusePort(network, address, n, cfg)
}

// setSocketBuffers applies the SO_RCVBUF/SO_SNDBUF requests and reads back
// what the kernel granted (0 where the platform can't report it).
func setSocketBuffers(c *net.UDPConn, rc syscall.RawConn, cfg Config) (rcv, snd int) {
	r, w := cfg.RecvBuf, cfg.SendBuf
	if r == 0 {
		r = DefaultBufferBytes
	}
	if w == 0 {
		w = DefaultBufferBytes
	}
	if r > 0 {
		_ = c.SetReadBuffer(r)
		rcv = grantedRecvBuffer(rc)
	}
	if w > 0 {
		_ = c.SetWriteBuffer(w)
		snd = grantedSendBuffer(rc)
	}
	return rcv, snd
}

// ReadFrom reads one datagram (net.PacketConn).
func (s *Socket) ReadFrom(p []byte) (int, net.Addr, error) {
	n, addr, err := s.conn.ReadFrom(p)
	s.readSyscalls.Add(1)
	if err == nil {
		s.readPkts.Add(1)
	}
	return n, addr, err
}

// WriteTo writes one datagram (net.PacketConn).
func (s *Socket) WriteTo(p []byte, addr net.Addr) (int, error) {
	n, err := s.conn.WriteTo(p, addr)
	s.writeSyscalls.Add(1)
	if err == nil {
		s.writePkts.Add(1)
	}
	return n, err
}

// WriteBatch sends every packet in ps to one destination, one sendmmsg
// per Batch-sized chunk where supported. The contract is all-or-prefix:
// on error, exactly the first n packets reached the kernel and the rest
// were not attempted (relaycore.BatchWriter).
func (s *Socket) WriteBatch(ps [][]byte, addr net.Addr) (int, error) {
	if len(ps) == 0 {
		return 0, nil
	}
	if !s.batched || len(ps) == 1 {
		return s.writeSeq(ps, addr)
	}
	return s.sendBatch(ps, addr)
}

// writeSeq is the per-packet WriteBatch fallback.
func (s *Socket) writeSeq(ps [][]byte, addr net.Addr) (int, error) {
	for i, p := range ps {
		if _, err := s.WriteTo(p, addr); err != nil {
			return i, err
		}
	}
	return len(ps), nil
}

// ReadBatch fills up to len(ms) message slots with one recvmmsg where
// supported; the fallback reads a single datagram into ms[0]. It blocks
// until at least one datagram arrives, the deadline passes, or the socket
// closes.
func (s *Socket) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if !s.batched {
		n, addr, err := s.ReadFrom(ms[0].Buf)
		if err != nil {
			return 0, err
		}
		ms[0].N, ms[0].Addr = n, addr
		return 1, nil
	}
	return s.recvBatch(ms)
}

// Batched reports whether kernel batching is active on this socket.
func (s *Socket) Batched() bool { return s.batched }

// Stats snapshots the socket's syscall accounting.
func (s *Socket) Stats() SocketStats {
	return SocketStats{
		ReadSyscalls:  s.readSyscalls.Load(),
		ReadPackets:   s.readPkts.Load(),
		WriteSyscalls: s.writeSyscalls.Load(),
		WritePackets:  s.writePkts.Load(),
		Truncated:     s.truncated.Load(),
		RecvBufBytes:  s.rcvbuf,
		SendBufBytes:  s.sndbuf,
		Batched:       s.batched,
	}
}

// Close closes the underlying conn, unblocking any in-flight read.
func (s *Socket) Close() error { return s.conn.Close() }

// LocalAddr returns the bound address.
func (s *Socket) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// SetDeadline, SetReadDeadline, SetWriteDeadline delegate to the conn;
// a past deadline unblocks in-flight batch calls (teardown poke).
func (s *Socket) SetDeadline(t time.Time) error      { return s.conn.SetDeadline(t) }
func (s *Socket) SetReadDeadline(t time.Time) error  { return s.conn.SetReadDeadline(t) }
func (s *Socket) SetWriteDeadline(t time.Time) error { return s.conn.SetWriteDeadline(t) }
