package relaycore

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"livo/internal/netem"
	"livo/internal/telemetry"
	"livo/internal/transport"
)

// mediaWire builds one on-the-wire media packet (magic + transport header).
func mediaWire(stream uint8, seq uint32, frag, count uint16, key bool, payload []byte) []byte {
	p := transport.Packet{
		Stream: stream, FrameSeq: seq, FragIndex: frag, FragCount: count,
		Key: key, Payload: payload,
	}
	return append([]byte{transport.MediaMagic}, p.Marshal()...)
}

func senderAddr() *net.UDPAddr { return &net.UDPAddr{IP: net.IPv4(10, 9, 9, 9), Port: 31000} }

func testConfig() Config {
	return Config{Telemetry: telemetry.NewRegistry(0)}
}

// fakeClock is an injectable Config.Now.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestRouterFanoutDelivery(t *testing.T) {
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), testConfig())
	defer r.Close()

	subs := make([]*net.UDPAddr, 8)
	for i := range subs {
		subs[i] = udp(i + 1)
		r.Subscribe(subs[i])
	}
	if r.Subscribers() != 8 {
		t.Fatalf("Subscribers = %d, want 8", r.Subscribers())
	}
	// Duplicate subscribe is idempotent.
	r.Subscribe(&net.UDPAddr{IP: subs[0].IP, Port: subs[0].Port})
	if r.Subscribers() != 8 {
		t.Fatalf("Subscribers = %d after duplicate subscribe, want 8", r.Subscribers())
	}

	const frames, frags = 25, 4
	pool := r.Pool()
	for f := uint32(0); f < frames; f++ {
		for g := uint16(0); g < frags; g++ {
			r.RouteMedia(pool.Load(mediaWire(1, f, g, frags, false, []byte{byte(f), byte(g)})))
		}
	}
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	for i, a := range subs {
		got := rec.payloads(a)
		if len(got) != frames*frags {
			t.Fatalf("sub %d received %d packets, want %d", i, len(got), frames*frags)
		}
		for j, b := range got {
			f, g := uint32(j/frags), uint16(j%frags)
			if binary.BigEndian.Uint32(b[2:6]) != f || binary.BigEndian.Uint16(b[6:8]) != g {
				t.Fatalf("sub %d delivery %d out of order", i, j)
			}
		}
	}
	st := r.Stats()
	if st.Drops != 0 {
		t.Fatalf("drops = %d, want 0", st.Drops)
	}
	if st.MediaPackets != frames*frags {
		t.Fatalf("media packets = %d, want %d", st.MediaPackets, frames*frags)
	}
}

// stallWriter blocks writes to one address until released; other addresses
// pass through to the recorder.
type stallWriter struct {
	rec     *recWriter
	stalled string
	release chan struct{}
	blocked atomic.Int64
}

func (w *stallWriter) WriteTo(p []byte, a net.Addr) (int, error) {
	if a.String() == w.stalled {
		w.blocked.Add(1)
		<-w.release
	}
	return w.rec.WriteTo(p, a)
}

// TestStalledSubscriberIsolation: one receiver whose socket never drains
// must not reduce delivery to healthy receivers (the acceptance bound is
// ≤10%; with per-subscriber queues it is 0%). A stalled queue parks at most
// one writer worker; stealing keeps the rest of the plane draining, with
// one shard and with several.
func TestStalledSubscriberIsolation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			stalled := udp(99)
			w := &stallWriter{rec: newRecWriter(), stalled: stalled.String(), release: make(chan struct{})}
			cfg := testConfig()
			cfg.QueueDepth = 64
			cfg.Shards = shards
			r := NewRouter(w, senderAddr(), cfg)

			healthy := make([]*net.UDPAddr, 4)
			for i := range healthy {
				healthy[i] = udp(i + 1)
				r.Subscribe(healthy[i])
			}
			r.Subscribe(stalled)

			const frames, frags = 100, 8 // 800 packets >> stalled queue depth
			pool := r.Pool()
			for f := uint32(0); f < frames; f++ {
				for g := uint16(0); g < frags; g++ {
					r.RouteMedia(pool.Load(mediaWire(1, f, g, frags, false, nil)))
				}
				// Pace like a real sender so writer goroutines interleave on one
				// core; the stalled queue still overflows at depth 64.
				time.Sleep(100 * time.Microsecond)
			}
			// Healthy queues drain fully even while the stalled writer is parked.
			deadline := time.Now().Add(2 * time.Second)
			for {
				done := true
				for _, a := range healthy {
					if w.rec.count(a) < frames*frags {
						done = false
					}
				}
				if done || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			for i, a := range healthy {
				if n := w.rec.count(a); n != frames*frags {
					t.Fatalf("healthy sub %d delivered %d/%d packets while peer stalled", i, n, frames*frags)
				}
			}
			var stalledDrops int64
			for _, ss := range r.Stats().Subs {
				if ss.Addr == stalled.String() {
					stalledDrops = ss.Dropped
				}
			}
			if stalledDrops == 0 {
				t.Fatal("stalled subscriber accrued no drops; queue bound not enforced")
			}
			close(w.release) // unpark before Close so the writer goroutine can exit
			r.Close()
		})
	}
}

func TestRouterUnsubscribe(t *testing.T) {
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), testConfig())
	defer r.Close()

	s1, s2, s3 := udp(1), udp(2), udp(3)
	r.Subscribe(s1)
	r.Subscribe(s2)
	r.Subscribe(s3)
	if p := r.Primary(); p == nil || KeyOf(p) != KeyOf(s1) {
		t.Fatalf("primary = %v, want %v", p, s1)
	}
	if !r.Unsubscribe(s1) {
		t.Fatal("Unsubscribe(s1) = false, want true")
	}
	if p := r.Primary(); p == nil || KeyOf(p) != KeyOf(s2) {
		t.Fatalf("primary after unsubscribe = %v, want repointed to %v", p, s2)
	}
	if r.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want 2", r.Subscribers())
	}
	if r.Unsubscribe(s1) {
		t.Fatal("Unsubscribe of a departed address = true, want false")
	}
	// s1's queue is closed: media no longer reaches it.
	pool := r.Pool()
	r.RouteMedia(pool.Load(mediaWire(1, 0, 0, 1, false, nil)))
	if !r.WaitIdle(time.Second) {
		t.Fatal("router did not drain")
	}
	if n := rec.count(s1); n != 0 {
		t.Fatalf("departed subscriber received %d packets", n)
	}
	if n := rec.count(s2); n != 1 {
		t.Fatalf("remaining subscriber received %d packets, want 1", n)
	}
}

// TestUnsubscribeEvictsREMB: a departed slow subscriber must stop pinning
// the forwarded bandwidth minimum.
func TestUnsubscribeEvictsREMB(t *testing.T) {
	rec := newRecWriter()
	sender := senderAddr()
	r := NewRouter(rec, sender, testConfig())
	defer r.Close()

	fast, slow := udp(1), udp(2)
	r.Subscribe(fast)
	r.Subscribe(slow)

	remb := func(bps float64) []byte { return transport.AppendREMB(nil, bps) }
	lastREMB := func() float64 {
		msgs := rec.payloads(sender)
		for i := len(msgs) - 1; i >= 0; i-- {
			if msgs[i][0] == transport.FBREMB {
				v, err := transport.UnmarshalREMB(msgs[i])
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatal("no REMB reached the sender")
		return 0
	}

	r.RouteFeedback(remb(8e6), fast)
	r.RouteFeedback(remb(1e6), slow)
	if got := lastREMB(); got != 1e6 {
		t.Fatalf("forwarded min = %g, want 1e6 (slow subscriber)", got)
	}
	if !r.Unsubscribe(slow) {
		t.Fatal("Unsubscribe(slow) failed")
	}
	r.RouteFeedback(remb(8e6), fast)
	if got := lastREMB(); got != 8e6 {
		t.Fatalf("forwarded min = %g after eviction, want 8e6", got)
	}
}

// TestPoseForwardingPrimaryOnly: poses pass only from the primary viewer,
// matched by canonical key (no String() comparisons on the packet path).
func TestPoseForwardingPrimaryOnly(t *testing.T) {
	rec := newRecWriter()
	sender := senderAddr()
	r := NewRouter(rec, sender, testConfig())
	defer r.Close()

	primary, other := udp(1), udp(2)
	r.Subscribe(primary)
	r.Subscribe(other)

	pose := []byte{transport.FBPose, 1, 2, 3}
	r.RouteFeedback(pose, other)
	if n := rec.count(sender); n != 0 {
		t.Fatalf("non-primary pose forwarded (%d messages)", n)
	}
	// Equivalent address value (fresh allocation) still matches the primary.
	r.RouteFeedback(pose, &net.UDPAddr{IP: primary.IP, Port: primary.Port})
	if n := rec.count(sender); n != 1 {
		t.Fatalf("primary pose not forwarded (%d messages)", n)
	}
	// Primary departs; the repointed primary's poses pass.
	r.Unsubscribe(primary)
	r.RouteFeedback(pose, other)
	if n := rec.count(sender); n != 2 {
		t.Fatalf("repointed primary's pose not forwarded (%d messages)", n)
	}
}

// TestPLIBurst64: a simultaneous PLI burst from 64 subscribers reaches the
// sender as at most 2 messages per refresh window (acceptance criterion).
func TestPLIBurst64(t *testing.T) {
	rec := newRecWriter()
	sender := senderAddr()
	clk := &fakeClock{}
	cfg := testConfig()
	cfg.Now = clk.Now
	r := NewRouter(rec, sender, cfg)
	defer r.Close()

	subs := make([]*net.UDPAddr, 64)
	for i := range subs {
		subs[i] = udp(i + 1)
		r.Subscribe(subs[i])
	}
	pli := []byte{transport.FBPLI}
	burst := func() {
		for _, a := range subs {
			r.RouteFeedback(pli, a)
			clk.Advance(10 * time.Microsecond) // bursts are near- not exactly simultaneous
		}
	}
	burst()
	if n := rec.count(sender); n != 1 {
		t.Fatalf("first burst forwarded %d PLIs, want 1", n)
	}
	// Still inside the window: another full burst adds nothing.
	clk.Advance(100 * time.Millisecond)
	burst()
	if n := rec.count(sender); n != 1 {
		t.Fatalf("in-window burst forwarded %d total PLIs, want 1", n)
	}
	// Window expires (sender still hasn't refreshed): one more escapes.
	clk.Advance(250 * time.Millisecond)
	burst()
	if n := rec.count(sender); n != 2 {
		t.Fatalf("post-window burst forwarded %d total PLIs, want 2", n)
	}
	st := r.Stats()
	if st.PLIForwarded != 2 || st.PLISuppressed != 64*3-2 {
		t.Fatalf("PLI stats fwd=%d sup=%d, want 2/%d", st.PLIForwarded, st.PLISuppressed, 64*3-2)
	}
	// A key frame re-arms the gate: the next loss reports immediately.
	clk.Advance(time.Millisecond)
	r.RouteMedia(r.Pool().Load(mediaWire(1, 9, 0, 1, true, nil)))
	r.RouteFeedback(pli, subs[0])
	if n := rec.count(sender); n != 3 {
		t.Fatalf("post-keyframe PLI suppressed (%d total)", n)
	}
}

// TestNACKCoalesceAcrossSubscribers: the same lost fragment NACKed by many
// subscribers leaves once; distinct fragments all pass.
func TestNACKCoalesceAcrossSubscribers(t *testing.T) {
	rec := newRecWriter()
	sender := senderAddr()
	clk := &fakeClock{}
	cfg := testConfig()
	cfg.Now = clk.Now
	r := NewRouter(rec, sender, cfg)
	defer r.Close()

	subs := make([]*net.UDPAddr, 16)
	for i := range subs {
		subs[i] = udp(i + 1)
		r.Subscribe(subs[i])
	}
	for _, a := range subs {
		r.RouteFeedback(transport.MarshalNACK(1, 42, 3), a)
	}
	if n := rec.count(sender); n != 1 {
		t.Fatalf("same-fragment NACKs forwarded %d times, want 1", n)
	}
	r.RouteFeedback(transport.MarshalNACK(1, 42, 4), subs[0])
	r.RouteFeedback(transport.MarshalNACK(2, 42, 3), subs[1])
	if n := rec.count(sender); n != 3 {
		t.Fatalf("distinct-fragment NACKs: %d forwarded, want 3", n)
	}
	st := r.Stats()
	if st.NACKForwarded != 3 || st.NACKCoalesced != 15 {
		t.Fatalf("NACK stats fwd=%d coal=%d, want 3/15", st.NACKForwarded, st.NACKCoalesced)
	}
}

// TestSubscribeUnsubscribeConcurrentWithRoute exercises membership churn
// against a hot routing loop; run under -race.
func TestSubscribeUnsubscribeConcurrentWithRoute(t *testing.T) {
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), testConfig())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // membership churn
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := udp(1 + i%32)
			r.Subscribe(a)
			if i%3 == 0 {
				r.Unsubscribe(a)
			}
			i++
		}
	}()
	pool := r.Pool()
	for f := uint32(0); f < 500; f++ {
		for g := uint16(0); g < 4; g++ {
			r.RouteMedia(pool.Load(mediaWire(1, f, g, 4, false, nil)))
		}
		if f%10 == 0 {
			r.RouteFeedback(transport.AppendREMB(nil, float64(1e6+f)), udp(1+int(f)%32))
		}
	}
	close(stop)
	wg.Wait()
	r.WaitIdle(2 * time.Second)
	r.Close()
}

// TestRouterChaos64: 64 subscribers under bursty loss and reordering on the
// inbound path, with one shard and with several. Asserts the
// drop-accounting invariant on every queue, full drain, zero leaked pool
// buffers, and no goroutine leak after Close.
func TestRouterChaos64(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			rec := newRecWriter()
			cfg := testConfig()
			cfg.QueueDepth = 256
			cfg.Shards = shards
			r := NewRouter(rec, senderAddr(), cfg)

			const nSubs = 64
			for i := 0; i < nSubs; i++ {
				r.Subscribe(udp(i + 1))
			}

			chaos := netem.NewChaos(netem.ChaosConfig{
				Seed:        7,
				PEnterBurst: 0.02, PExitBurst: 0.10,
				LossGood: 0.01, LossBad: 0.5,
				ReorderProb: 0.05, ReorderDelay: 0.03,
				DupProb: 0.01,
			})

			packets := 3000
			if testing.Short() {
				packets = 600
			}
			pool := r.Pool()
			routed := 0
			for i := 0; i < packets; i++ {
				wire := mediaWire(1, uint32(i/8), uint16(i%8), 8, i%480 == 0, []byte(fmt.Sprintf("p%d", i)))
				for _, d := range chaos.Apply(wire) {
					r.RouteMedia(pool.Load(d.Payload))
					routed++
				}
				if i%100 == 0 { // interleave feedback churn from random subscribers
					r.RouteFeedback([]byte{transport.FBPLI}, udp(1+i%nSubs))
					r.RouteFeedback(transport.MarshalNACK(1, uint32(i/8), uint16(i%8)), udp(1+(i+3)%nSubs))
					r.RouteFeedback(transport.AppendREMB(nil, float64(1e6*(1+i%5))), udp(1+(i+7)%nSubs))
				}
			}
			if chaos.Dropped() == 0 || chaos.Reordered() == 0 {
				t.Fatalf("chaos injected no faults (dropped=%d reordered=%d)", chaos.Dropped(), chaos.Reordered())
			}
			if !r.WaitIdle(5 * time.Second) {
				t.Fatal("router did not drain under chaos")
			}
			st := r.Stats()
			if st.MediaPackets != int64(routed) {
				t.Fatalf("media packets = %d, want %d", st.MediaPackets, routed)
			}
			for _, ss := range st.Subs {
				if ss.Depth != 0 {
					t.Fatalf("sub %s depth = %d after WaitIdle", ss.Addr, ss.Depth)
				}
				if ss.Enqueued != ss.Sent+ss.Dropped {
					t.Fatalf("sub %s accounting: enqueued %d != sent %d + dropped %d",
						ss.Addr, ss.Enqueued, ss.Sent, ss.Dropped)
				}
				// Cache-served retransmissions (the NACK churn above can hit
				// the retx cache) are extra enqueues on the requesting queue.
				if ss.Sent != int64(routed)+ss.Retx-ss.Dropped {
					t.Fatalf("sub %s delivered %d of %d routed + %d retx (dropped %d)",
						ss.Addr, ss.Sent, routed, ss.Retx, ss.Dropped)
				}
			}
			if len(st.Shards) != shards {
				t.Fatalf("shard stats: %d entries, want %d", len(st.Shards), shards)
			}
			gotSubs := 0
			for _, sh := range st.Shards {
				gotSubs += sh.Subscribers
			}
			if gotSubs != nSubs {
				t.Fatalf("shard partitions hold %d subscribers total, want %d", gotSubs, nSubs)
			}
			r.Close()

			// Every pooled buffer is back: fan-out refs, queue backlogs, and
			// in-flight writer batches all released exactly once.
			for i := 0; i < r.Shards(); i++ {
				if live := r.ShardPool(i).Live(); live != 0 {
					t.Fatalf("shard %d pool leaks %d buffers after Close", i, live)
				}
			}

			// All ingest and writer goroutines must exit.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > baseline+2 {
				if time.Now().After(deadline) {
					t.Fatalf("goroutine leak after Close: %d, baseline %d", runtime.NumGoroutine(), baseline)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestUnsubscribeMidFrameReleasesBuffers: a subscriber removed while a
// writer worker is parked mid-frame inside WriteTo (holding a popped batch
// of refcounted buffers) must have its ring backlog released, and the
// worker's in-flight batch released after the write returns — pool
// get == put across every shard at shutdown, no leaked PacketBufs.
func TestUnsubscribeMidFrameReleasesBuffers(t *testing.T) {
	leaving := udp(99)
	w := &stallWriter{rec: newRecWriter(), stalled: leaving.String(), release: make(chan struct{})}
	cfg := testConfig()
	cfg.QueueDepth = 64
	cfg.Shards = 4
	r := NewRouter(w, senderAddr(), cfg)

	healthy := make([]*net.UDPAddr, 7)
	for i := range healthy {
		healthy[i] = udp(i + 1)
		r.Subscribe(healthy[i])
	}
	r.Subscribe(leaving)

	// One 16-fragment frame: the leaving subscriber's worker parks on the
	// first fragment with the rest of its batch popped, and more fragments
	// still queued in the ring behind it.
	const frags = 16
	pool := r.Pool()
	for g := uint16(0); g < frags; g++ {
		r.RouteMedia(pool.Load(mediaWire(1, 7, g, frags, true, []byte{byte(g)})))
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.blocked.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never entered the stalled WriteTo")
		}
		time.Sleep(time.Millisecond)
	}

	// Remove the subscriber mid-frame: Close drains and releases the ring
	// backlog; the parked worker still owns its popped batch.
	if !r.Unsubscribe(leaving) {
		t.Fatal("Unsubscribe(leaving) = false, want true")
	}
	close(w.release) // the parked write completes; worker releases its batch

	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	for i, a := range healthy {
		if n := w.rec.count(a); n != frags {
			t.Fatalf("healthy sub %d delivered %d/%d fragments", i, n, frags)
		}
	}
	r.Close()
	for i := 0; i < r.Shards(); i++ {
		if live := r.ShardPool(i).Live(); live != 0 {
			t.Fatalf("shard %d pool leaks %d buffers after mid-frame unsubscribe", i, live)
		}
	}
}

// TestRouterShardedAccounting64: concurrent producers (one per shard pool,
// distinct streams, modeling SO_REUSEPORT multi-socket ingest) against 64
// subscribers on shallow queues with REMB churn. After drain, every queue
// satisfies enqueued == sent + dropped + depth (depth 0 once idle) and no
// shard leaks buffers; run under -race.
func TestRouterShardedAccounting64(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 32 // shallow: force the drop policy to engage
	cfg.Shards = 4
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), cfg)

	const nSubs = 64
	for i := 0; i < nSubs; i++ {
		r.Subscribe(udp(i + 1))
	}

	const producers, frames, frags = 4, 120, 8
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			pool := r.ShardPool(p)
			stream := uint8(p + 1)
			for f := uint32(0); f < frames; f++ {
				for g := uint16(0); g < frags; g++ {
					r.RouteMedia(pool.Load(mediaWire(stream, f, g, frags, f%30 == 0, []byte{byte(p)})))
				}
				if f%10 == uint32(p) { // REMB churn swings adaptive depth
					r.RouteFeedback(transport.AppendREMB(nil, float64(5e5*(1+f%8))), udp(1+int(f)%nSubs))
				}
			}
		}(p)
	}
	wg.Wait()
	if !r.WaitIdle(5 * time.Second) {
		t.Fatal("router did not drain")
	}

	const routed = producers * frames * frags
	st := r.Stats()
	if st.MediaPackets != routed {
		t.Fatalf("media packets = %d, want %d", st.MediaPackets, routed)
	}
	var shardRouted int64
	for _, sh := range st.Shards {
		shardRouted += sh.Routed
	}
	if shardRouted != routed*int64(len(st.Shards)) {
		t.Fatalf("shards routed %d packet descriptors, want %d (every packet visits every shard)",
			shardRouted, routed*int64(len(st.Shards)))
	}
	for _, ss := range st.Subs {
		if ss.Depth != 0 {
			t.Fatalf("sub %s depth = %d after WaitIdle", ss.Addr, ss.Depth)
		}
		if ss.Enqueued != ss.Sent+ss.Dropped {
			t.Fatalf("sub %s accounting: enqueued %d != sent %d + dropped %d",
				ss.Addr, ss.Enqueued, ss.Sent, ss.Dropped)
		}
		if ss.Sent+ss.Dropped != routed {
			t.Fatalf("sub %s saw %d of %d routed packets", ss.Addr, ss.Sent+ss.Dropped, routed)
		}
	}
	r.Close()
	for i := 0; i < r.Shards(); i++ {
		if live := r.ShardPool(i).Live(); live != 0 {
			t.Fatalf("shard %d pool leaks %d buffers", i, live)
		}
	}
}

// TestRouterBatchWriterPath: a conn implementing BatchWriter receives ring
// drains as WriteBatch calls (sendmmsg-shaped), with identical delivery.
func TestRouterBatchWriterPath(t *testing.T) {
	bw := newBatchRecWriter()
	cfg := testConfig()
	cfg.Shards = 2
	r := NewRouter(bw, senderAddr(), cfg)
	defer r.Close()

	subs := []*net.UDPAddr{udp(1), udp(2), udp(3)}
	for _, a := range subs {
		r.Subscribe(a)
	}
	const frames, frags = 20, 8
	pool := r.Pool()
	for f := uint32(0); f < frames; f++ {
		for g := uint16(0); g < frags; g++ {
			r.RouteMedia(pool.Load(mediaWire(1, f, g, frags, false, []byte{byte(f)})))
		}
	}
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	for i, a := range subs {
		got := bw.payloads(a)
		if len(got) != frames*frags {
			t.Fatalf("sub %d received %d packets via batch path, want %d", i, len(got), frames*frags)
		}
		for j, b := range got {
			f, g := uint32(j/frags), uint16(j%frags)
			if binary.BigEndian.Uint32(b[2:6]) != f || binary.BigEndian.Uint16(b[6:8]) != g {
				t.Fatalf("sub %d batch delivery %d out of order", i, j)
			}
		}
	}
	calls, pkts := bw.batches()
	if calls == 0 || pkts != frames*frags*len(subs) {
		t.Fatalf("batch path: %d calls / %d packets, want all %d packets batched",
			calls, pkts, frames*frags*len(subs))
	}
}

// TestREMBAdaptsQueueDepth: a subscriber's REMB flows through RouteFeedback
// into its queue's adaptive limit (SubStats.Limit tracks the BDP estimate).
func TestREMBAdaptsQueueDepth(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1024
	cfg.MinQueueDepth = 16
	cfg.DepthWindow = 250 * time.Millisecond
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	sub := udp(1)
	r.Subscribe(sub)

	limitOf := func() int64 {
		for _, ss := range r.Stats().Subs {
			if ss.Addr == sub.String() {
				return ss.Limit
			}
		}
		t.Fatal("subscriber missing from stats")
		return 0
	}
	if got := limitOf(); got != 1024 {
		t.Fatalf("initial limit = %d, want full depth 1024", got)
	}
	// Starve the estimate: at 1 Mbps over a 250 ms window and MTU-sized
	// packets (the initial size EMA) the BDP is ~26 packets.
	r.RouteFeedback(transport.AppendREMB(nil, 1e6), sub)
	lo := limitOf()
	if lo >= 1024 || lo < 16 {
		t.Fatalf("limit after 1 Mbps REMB = %d, want shrunk within [16, 1024)", lo)
	}
	// Bandwidth recovers: the window re-opens.
	r.RouteFeedback(transport.AppendREMB(nil, 100e6), sub)
	if hi := limitOf(); hi <= lo {
		t.Fatalf("limit after recovery = %d, want > %d", hi, lo)
	}
}

// TestRouterSequentialMode: the legacy A/B path still delivers to everyone.
func TestRouterSequentialMode(t *testing.T) {
	rec := newRecWriter()
	cfg := testConfig()
	cfg.Sequential = true
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	subs := make([]*net.UDPAddr, 4)
	for i := range subs {
		subs[i] = udp(i + 1)
		r.Subscribe(subs[i])
	}
	pool := r.Pool()
	for f := uint32(0); f < 10; f++ {
		r.RouteMedia(pool.Load(mediaWire(1, f, 0, 1, false, nil)))
	}
	for i, a := range subs {
		if n := rec.count(a); n != 10 {
			t.Fatalf("sequential sub %d received %d packets, want 10", i, n)
		}
	}
}
