package relaycore

import (
	"sync"
	"sync/atomic"

	"livo/internal/frametrace"
	"livo/internal/telemetry"
)

// shard is one core's slice of the data plane, SO_REUSEPORT-style: it owns
// a partition of the subscriber registry, its own packet-buffer pool (so
// ingest loads never contend across cores), a bounded ingest ring fed by
// RouteMedia, and a ready list of subscriber queues with pending packets.
// One ingest goroutine fans ring descriptors into the partition's queues;
// the router's writer workers (writersPerShard per shard) drain ready
// queues in WriteBatch-sized pops, stealing from other shards' ready lists
// when their home shard has nothing — one slow partition cannot idle other
// cores.
type shard struct {
	id   int
	pool *BufPool

	// Partition snapshot (copy-on-write under the router's membership
	// mutex); the ingest goroutine reads it with one atomic load.
	subs atomic.Pointer[[]*Subscriber]

	// Ingest ring: descriptors {buf, fid} pushed by RouteMedia (possibly
	// many producers — one per reuseport socket), popped in batches by the
	// single ingest goroutine. A full ring backpressures the producer.
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	ring     []ingestEntry
	mask     int
	head     int
	size     int
	closed   bool

	// pending counts descriptors pushed but not yet fanned out, so WaitIdle
	// cannot report idle while a popped batch is mid-fan-out.
	pending atomic.Int64

	// Ready list: FIFO of queues with packets to write. notify (cap 1)
	// wakes this shard's parked writer workers.
	readyMu   sync.Mutex
	ready     []*SubQueue
	readyHead int
	notify    chan struct{}

	routed atomic.Int64 // packets fanned out by this shard's ingest worker
	stolen atomic.Int64 // queues this shard's workers stole from other shards

	// Retransmission cache owned by this shard (nil when disabled). The
	// ingest goroutine inserts cache-flagged descriptors; the router's
	// feedback path looks up NACKs. now is the router's clock.
	retx *retxCache
	now  func() int64

	// trace, when non-nil, receives shard_route and sub_enqueue stamps for
	// each frame's first fragment (cfg.Trace; nil disables tracing).
	trace *frametrace.Ledger

	// Quality-ladder hooks (router-owned): events receives rung-switch
	// events (nil-safe), rungSwitches and telRungSwitch count commits. The
	// commit itself runs here because each subscriber is fanned out by
	// exactly one ingest goroutine, so its curRung never races a delivery
	// decision.
	events        *frametrace.EventRing
	rungSwitches  *atomic.Int64
	telRungSwitch *telemetry.Counter
	ladderSeen    *atomic.Bool

	telRouted, telStolen *telemetry.Counter
}

type ingestEntry struct {
	buf   *PacketBuf
	fid   frameID
	rk    nackKey // retransmission-cache key (valid when cache is set)
	cache bool    // this shard owns caching this packet
	first bool    // frame's first fragment — the one trace stamp sites fire on
	frag0 bool    // first data fragment of a media frame (rung-switch commit point)
}

// ingestRingCap bounds per-shard ingest backlog (power of two). At 2048
// descriptors it absorbs a multi-frame burst before backpressuring the
// read loop.
const ingestRingCap = 2048

// ingestBatch bounds how many descriptors the ingest worker pops per lock
// acquisition.
const ingestBatch = 64

func newShard(id int, pool *BufPool, telRouted, telStolen *telemetry.Counter) *shard {
	s := &shard{
		id:        id,
		pool:      pool,
		ring:      make([]ingestEntry, ingestRingCap),
		mask:      ingestRingCap - 1,
		notify:    make(chan struct{}, 1),
		telRouted: telRouted,
		telStolen: telStolen,
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	empty := []*Subscriber{}
	s.subs.Store(&empty)
	return s
}

// subCount returns the partition size with one atomic load (RouteMedia
// skips shards with no subscribers).
func (s *shard) subCount() int { return len(*s.subs.Load()) }

// push hands one packet descriptor to the shard, taking ownership of the
// caller's reference on success. It blocks while the ring is full
// (backpressure) and returns false once the shard is closed.
func (s *shard) push(e ingestEntry) bool {
	s.mu.Lock()
	for s.size == len(s.ring) && !s.closed {
		s.notFull.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.ring[(s.head+s.size)&s.mask] = e
	s.size++
	s.pending.Add(1)
	wake := s.size == 1
	s.mu.Unlock()
	if wake {
		s.notEmpty.Signal()
	}
	return true
}

// popIngest fills batch with queued descriptors, blocking until at least
// one arrives. On close it releases any remaining backlog and reports
// done=false.
func (s *shard) popIngest(batch []ingestEntry) (n int, ok bool) {
	s.mu.Lock()
	for s.size == 0 && !s.closed {
		s.notEmpty.Wait()
	}
	if s.closed {
		for s.size > 0 {
			e := &s.ring[s.head]
			e.buf.Release()
			*e = ingestEntry{}
			s.head = (s.head + 1) & s.mask
			s.size--
			s.pending.Add(-1)
		}
		s.mu.Unlock()
		return 0, false
	}
	n = s.size
	if n > len(batch) {
		n = len(batch)
	}
	for i := 0; i < n; i++ {
		batch[i] = s.ring[(s.head+i)&s.mask]
		s.ring[(s.head+i)&s.mask] = ingestEntry{}
	}
	s.head = (s.head + n) & s.mask
	s.size -= n
	s.mu.Unlock()
	s.notFull.Broadcast()
	return n, true
}

// runIngest is the shard's ingest goroutine: it pops descriptor batches and
// enqueues a reference onto every queue in the shard's partition. This is
// the per-packet fan-out work the sharding spreads across cores.
func (s *shard) runIngest(wg *sync.WaitGroup) {
	defer wg.Done()
	batch := make([]ingestEntry, ingestBatch)
	for {
		n, ok := s.popIngest(batch)
		if !ok {
			return
		}
		subs := *s.subs.Load()
		for i := 0; i < n; i++ {
			e := batch[i]
			batch[i] = ingestEntry{}
			if e.cache && s.retx != nil {
				s.retx.Insert(e.rk, e.buf, s.now())
			}
			for _, sub := range subs {
				// shard_route is stamped per subscriber (not once per
				// shard with NoSub): a NoSub stamp from another shard —
				// or from the retx-cache owner's subscriber-less visit —
				// can land after this shard's sub_enqueue, and the
				// collector's max-wins merge would then show the frame
				// leaving the shard after it entered the queue.
				if e.first {
					s.trace.StampNow(frametrace.HopShardRoute, e.fid.stream, e.fid.seq, sub.q.sub)
				}
				if !s.admitRung(sub, &e) {
					continue
				}
				e.buf.Retain()
				if !sub.q.Enqueue(e.buf, e.fid) {
					e.buf.Release()
				} else if e.first {
					s.trace.StampNow(frametrace.HopSubEnqueue, e.fid.stream, e.fid.seq, sub.q.sub)
				}
			}
			e.buf.Release()
			s.pending.Add(-1)
		}
		s.routed.Add(int64(n))
		s.telRouted.Add(int64(n))
	}
}

// admitRung reports whether a packet passes the subscriber's quality-rung
// filter, committing a pending rung switch first when the packet opens a
// key frame. The commit point is the first data fragment of a key frame —
// regardless of which rung's copy arrives first — so the old rung's stream
// ends cleanly at the previous frame and the new rung starts at a key:
// exactly the boundary a stateful decoder can cross. Non-media packets
// (pongs, pings) always pass. Legacy single-rung streams carry rung 0
// everywhere and every subscriber starts at rung 0, so the filter admits
// everything until a ladder and a reassignment exist.
func (s *shard) admitRung(sub *Subscriber, e *ingestEntry) bool {
	// Until a ladder is observed every packet is rung 0 and every
	// subscriber sits at rung 0 with no pending reassignment
	// (selectRungLocked only runs once ladderSeen latches), so the filter
	// is a guaranteed admit — skip its per-subscriber atomic loads.
	if !s.ladderSeen.Load() {
		return true
	}
	return commitAndFilterRung(sub, e.fid, e.frag0, s.events, s.rungSwitches, s.telRungSwitch)
}

// close wakes everything parked on the ingest ring; the ingest goroutine
// releases the remaining backlog on its way out.
func (s *shard) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

// pushReady appends a queue to the shard's ready list and wakes one parked
// worker. A queue is in at most one ready list at a time (queue state
// machine), so the list is bounded by the partition size.
func (s *shard) pushReady(q *SubQueue) {
	s.readyMu.Lock()
	s.ready = append(s.ready, q)
	s.readyMu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// popReady removes the oldest ready queue (FIFO — a hot queue re-pushed
// after each batch cannot starve its shard-mates), or nil.
func (s *shard) popReady() *SubQueue {
	s.readyMu.Lock()
	if s.readyHead == len(s.ready) {
		if s.readyHead > 0 {
			s.ready = s.ready[:0]
			s.readyHead = 0
		}
		s.readyMu.Unlock()
		return nil
	}
	q := s.ready[s.readyHead]
	s.ready[s.readyHead] = nil
	s.readyHead++
	if s.readyHead == len(s.ready) {
		s.ready = s.ready[:0]
		s.readyHead = 0
	}
	s.readyMu.Unlock()
	return q
}

// idle reports whether the shard has no queued or in-flight ingest work.
func (s *shard) idle() bool { return s.pending.Load() == 0 }
