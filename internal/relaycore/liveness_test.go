package relaycore

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"livo/internal/transport"
)

// TestLivenessEviction: a subscriber whose reverse path goes silent past
// the window is evicted in full — queue torn down with every pooled buffer
// released (gets == puts across all shards), primary repointed, REMB entry
// evicted so the forwarded minimum rises — and the OnEvict hook and
// LivenessEvicted counter both fire. Runs at shards=1 and shards=4 (under
// -race via the tier-1 relaycore race list).
func TestLivenessEviction(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clk := &fakeClock{}
			rec := newRecWriter()
			silent, live := udp(1), udp(2)
			// The silent subscriber's socket also stalls, so its queue holds
			// a backlog of pooled buffers at eviction time — the teardown
			// must release them all.
			stall := &stallWriter{rec: rec, stalled: silent.String(), release: make(chan struct{})}

			var evictMu sync.Mutex
			var evicted []string
			cfg := testConfig()
			cfg.Shards = shards
			cfg.QueueDepth = 256
			cfg.SilenceWindow = 500 * time.Millisecond
			cfg.Now = clk.Now
			cfg.OnEvict = func(a net.Addr) {
				evictMu.Lock()
				evicted = append(evicted, a.String())
				evictMu.Unlock()
			}
			r := NewRouter(stall, senderAddr(), cfg)

			r.Subscribe(silent)
			r.Subscribe(live)
			if r.Primary().String() != silent.String() {
				t.Fatalf("primary = %v, want the first subscriber %v", r.Primary(), silent)
			}

			// The soon-to-vanish subscriber reports the lowest estimate: it
			// pins the forwarded REMB minimum until evicted.
			r.RouteFeedback(transport.AppendREMB(nil, 1e6), silent)
			r.RouteFeedback(transport.AppendREMB(nil, 8e6), live)
			if min, ok := lastREMB(t, rec); !ok || min != 1e6 {
				t.Fatalf("forwarded REMB min = %v (%v), want 1e6", min, ok)
			}

			pool := r.Pool()
			for i := 0; i < 128; i++ {
				r.RouteMedia(pool.Load(mediaWire(1, uint32(i/8), uint16(i%8), 8, false, []byte{byte(i)})))
			}

			// The live subscriber stays active inside the window; the other
			// goes quiet.
			clk.Advance(400 * time.Millisecond)
			r.RouteFeedback(transport.AppendREMB(nil, 8e6), live)
			clk.Advance(200 * time.Millisecond) // silent: 600 ms quiet; live: 200 ms

			r.EvictStale()
			if got := r.Subscribers(); got != 1 {
				t.Fatalf("subscribers = %d after eviction, want 1", got)
			}
			if r.Primary().String() != live.String() {
				t.Fatalf("primary = %v after eviction, want %v", r.Primary(), live)
			}
			evictMu.Lock()
			hooks := append([]string(nil), evicted...)
			evictMu.Unlock()
			if len(hooks) != 1 || hooks[0] != silent.String() {
				t.Fatalf("OnEvict calls = %v, want [%s]", hooks, silent)
			}
			if st := r.Stats(); st.LivenessEvicted != 1 {
				t.Fatalf("LivenessEvicted = %d, want 1", st.LivenessEvicted)
			}

			// With the slow subscriber's REMB entry gone, the forwarded
			// minimum rises to the surviving subscriber's estimate.
			clk.Advance(50 * time.Millisecond)
			r.RouteFeedback(transport.AppendREMB(nil, 8e6), live)
			if min, ok := lastREMB(t, rec); !ok || min != 8e6 {
				t.Fatalf("forwarded REMB min = %v (%v) after eviction, want 8e6", min, ok)
			}

			// Unblock the parked writer, drain, close: every pooled buffer —
			// the evicted queue's backlog included — must be back.
			close(stall.release)
			if !r.WaitIdle(5 * time.Second) {
				t.Fatal("router did not drain after eviction")
			}
			r.Close()
			if st := r.Stats(); st.PoolLive != 0 {
				t.Fatalf("PoolLive = %d after close, want 0 (gets == puts)", st.PoolLive)
			}
		})
	}
}

// TestLivenessSweepBackground: the background sweep (real ticker) evicts a
// silent subscriber without an explicit EvictStale call.
func TestLivenessSweepBackground(t *testing.T) {
	rec := newRecWriter()
	cfg := testConfig()
	cfg.Shards = 1
	cfg.SilenceWindow = 60 * time.Millisecond
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	silent, live := udp(1), udp(2)
	r.Subscribe(silent)
	r.Subscribe(live)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.RouteFeedback(transport.AppendREMB(nil, 5e6), live)
		if r.Subscribers() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Subscribers(); got != 1 {
		t.Fatalf("background sweep left %d subscribers, want 1", got)
	}
	if r.Primary().String() != live.String() {
		t.Fatalf("primary = %v, want %v", r.Primary(), live)
	}
}

// TestLivenessDisabledByDefault: the zero config never evicts — benchmark
// and test subscribers send no feedback at all.
func TestLivenessDisabledByDefault(t *testing.T) {
	clk := &fakeClock{}
	cfg := testConfig()
	cfg.Shards = 1
	cfg.Now = clk.Now
	r := NewRouter(newRecWriter(), senderAddr(), cfg)
	defer r.Close()
	r.Subscribe(udp(1))
	clk.Advance(time.Hour)
	if n := r.EvictStale(); n != 0 {
		t.Fatalf("EvictStale evicted %d with liveness disabled, want 0", n)
	}
	if got := r.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}
}

// lastREMB parses the most recent REMB the router forwarded to the sender.
func lastREMB(t *testing.T, rec *recWriter) (float64, bool) {
	t.Helper()
	var min float64
	found := false
	for _, p := range rec.payloads(senderAddr()) {
		if len(p) > 0 && p[0] == transport.FBREMB {
			v, err := transport.UnmarshalREMB(p)
			if err != nil {
				t.Fatalf("bad forwarded REMB: %v", err)
			}
			min, found = v, true
		}
	}
	return min, found
}
