package relaycore

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"livo/internal/frametrace"
	"livo/internal/telemetry"
	"livo/internal/transport"
)

// frameID groups the fragments of one media frame so the drop policy can
// discard whole frames. Non-media packets (pongs, sender pings) each get a
// unique control id: they are individually droppable. key marks key-frame
// media — the drop policy spends delta frames before touching it. rung is
// the quality-ladder rung: the same (stream, seq) encoded at two rungs is
// two distinct frames for eviction and in-flight tracking.
type frameID struct {
	ctl    uint64
	seq    uint32
	stream uint8
	rung   uint8
	media  bool
	key    bool
}

type entry struct {
	buf *PacketBuf
	fid frameID
}

// writerBatch bounds how many entries a writer worker pops per drain — the
// sendmmsg-shaped WriteBatch unit.
const writerBatch = 32

// queueState is the scheduling state of a SubQueue within its shard.
type queueState uint8

const (
	// qIdle: empty (or unscheduled); the next Enqueue pushes it ready.
	qIdle queueState = iota
	// qReady: sitting in a shard ready list awaiting a writer worker.
	qReady
	// qDraining: owned by one writer worker (at most one at a time — a
	// stalled WriteBatch parks exactly one worker per stalled subscriber).
	qDraining
)

// SubQueue is one subscriber's bounded send queue: a ring of refcounted
// packet buffers drained in batches by the router's writer workers. A
// stalled subscriber fills its own ring and triggers the drop policy; it
// never blocks the router or other subscribers.
//
// Drop policy (slow subscriber): drop-oldest at media-frame granularity,
// preferring delta frames. When the ring is over its limit the oldest whole
// *delta* frame is discarded first; key frames are spent only to admit an
// incoming key frame (an incoming delta never evicts a queued key frame —
// the key frame is what every later delta depends on). A fragment run is
// never split: eviction removes every queued fragment of the victim frame,
// and the run currently being written (whose earlier fragments already left
// the queue) is immune. If nothing is droppable the incoming packet is
// rejected instead.
//
// Adaptive depth: the effective limit tracks the subscriber's REMB-estimated
// bandwidth-delay product (UpdateBandwidth) between a configured floor and
// the allocated ring capacity, so a slow subscriber queues what it can
// actually drain inside the depth window instead of a fixed second of media.
type SubQueue struct {
	addr  net.Addr
	shard *shard // owning shard; nil when unscheduled (sequential mode, tests)
	sub   int32  // subscriber id for trace stamps and events (Subscribe assigns)

	// events, when non-nil, receives a frame-drop event for every frame
	// the drop policy discards or rejects (frametrace.EvFrameDrop).
	events *frametrace.EventRing

	mu          sync.Mutex
	ring        []entry
	mask        int
	head        int // ring index of the oldest entry
	size        int
	limit       int     // adaptive effective depth (≤ len(ring))
	minLimit    int     // adaptive floor
	window      float64 // seconds of traffic the limit targets (BDP window)
	avgBytes    int     // EMA of enqueued packet size
	inFlight    frameID // frame of the most recently popped entry
	hasInFlight bool
	state       queueState
	closed      bool

	enqueued atomic.Int64
	sent     atomic.Int64
	dropped  atomic.Int64
	depth    atomic.Int64
	limitA   atomic.Int64
	retx     atomic.Int64  // cache-served retransmissions enqueued here
	rembBps  atomic.Uint64 // float64 bits of the last REMB estimate (0 = none yet)

	telDrops *telemetry.Counter
}

func newSubQueue(addr net.Addr, depth, minDepth int, window time.Duration, telDrops *telemetry.Counter) *SubQueue {
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	if minDepth <= 0 || minDepth > cap {
		minDepth = cap
	}
	q := &SubQueue{
		addr:     addr,
		sub:      frametrace.NoSub, // Subscribe assigns the real id
		ring:     make([]entry, cap),
		mask:     cap - 1,
		limit:    cap,
		minLimit: minDepth,
		window:   window.Seconds(),
		avgBytes: transport.MTU,
		telDrops: telDrops,
	}
	q.limitA.Store(int64(cap))
	return q
}

// Enqueue appends one packet, taking ownership of one reference on success.
// Over the adaptive limit it runs the drop policy first. It returns false —
// and the caller keeps its reference — when the queue is closed or the
// incoming packet itself was rejected.
func (q *SubQueue) Enqueue(buf *PacketBuf, fid frameID) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	for q.size >= q.limit {
		if !q.dropFrameLocked(fid.key) {
			// Nothing droppable (in-flight tail, or only key frames and the
			// incoming packet is a delta). Reject the incoming packet. It
			// still counts as enqueued-then-dropped so the accounting
			// invariant (enqueued == sent + dropped + depth) holds.
			q.mu.Unlock()
			q.enqueued.Add(1)
			q.dropped.Add(1)
			q.telDrops.Add(1)
			q.events.Add(frametrace.EvFrameDrop, fid.stream, fid.seq, q.sub, int64(frametrace.DropReject))
			return false
		}
	}
	q.ring[(q.head+q.size)&q.mask] = entry{buf: buf, fid: fid}
	q.size++
	q.depth.Store(int64(q.size))
	q.avgBytes += (buf.n - q.avgBytes) >> 3
	schedule := q.state == qIdle && q.shard != nil
	if schedule {
		q.state = qReady
	}
	q.mu.Unlock()
	if schedule {
		q.shard.pushReady(q)
	}
	q.enqueued.Add(1)
	return true
}

// dropFrameLocked evicts one whole frame to make room, preferring the
// oldest droppable delta frame; a queued key frame is spent only for an
// incoming key frame. Every queued fragment of the victim is removed (runs
// interleaved across streams are evicted in full, never split), and the
// in-flight frame's remaining fragments are immune. Reports whether
// anything was dropped.
func (q *SubQueue) dropFrameLocked(incomingKey bool) bool {
	var deltaVictim, anyVictim frameID
	haveDelta, haveAny := false, false
	for i := 0; i < q.size; i++ {
		e := &q.ring[(q.head+i)&q.mask]
		if q.hasInFlight && e.fid == q.inFlight {
			continue
		}
		if !haveAny {
			anyVictim, haveAny = e.fid, true
		}
		if !e.fid.key {
			deltaVictim, haveDelta = e.fid, true
			break
		}
	}
	var victim frameID
	switch {
	case haveDelta:
		victim = deltaVictim
	case haveAny && incomingKey:
		victim = anyVictim
	default:
		return false
	}
	w, dropped := 0, int64(0)
	for i := 0; i < q.size; i++ {
		e := q.ring[(q.head+i)&q.mask]
		if e.fid == victim {
			e.buf.Release()
			dropped++
			continue
		}
		q.ring[(q.head+w)&q.mask] = e
		w++
	}
	for i := w; i < q.size; i++ {
		q.ring[(q.head+i)&q.mask] = entry{}
	}
	q.size = w
	q.depth.Store(int64(w))
	q.dropped.Add(dropped)
	q.telDrops.Add(dropped)
	reason := frametrace.DropDelta
	if victim.key {
		reason = frametrace.DropKey
	}
	q.events.Add(frametrace.EvFrameDrop, victim.stream, victim.seq, q.sub, int64(reason))
	return true
}

// UpdateBandwidth retargets the effective ring depth to the subscriber's
// bandwidth-delay product: window seconds of traffic at bps, in packets of
// the observed average size, clamped to [minLimit, capacity]. Shrinking
// does not discard queued packets; the next over-limit Enqueue runs the
// drop policy down to the new bound.
func (q *SubQueue) UpdateBandwidth(bps float64) {
	q.mu.Lock()
	avg := q.avgBytes
	if avg <= 0 {
		avg = transport.MTU
	}
	pkts := int(bps * q.window / 8 / float64(avg))
	if pkts < q.minLimit {
		pkts = q.minLimit
	}
	if pkts > len(q.ring) {
		pkts = len(q.ring)
	}
	q.limit = pkts
	q.limitA.Store(int64(pkts))
	q.mu.Unlock()
	q.rembBps.Store(math.Float64bits(bps))
}

// popBatch moves up to len(bufs) entries out of the ring for writing and
// marks the queue draining. The popped frame becomes in-flight: the drop
// policy will not split the run still queued behind it. Returns 0 when the
// queue is closed or empty (the caller must still call finishDrain).
func (q *SubQueue) popBatch(bufs []*PacketBuf, pkts [][]byte) int {
	q.mu.Lock()
	q.state = qDraining
	if q.closed || q.size == 0 {
		q.mu.Unlock()
		return 0
	}
	n := q.size
	if n > len(bufs) {
		n = len(bufs)
	}
	for i := 0; i < n; i++ {
		e := &q.ring[(q.head+i)&q.mask]
		bufs[i] = e.buf
		pkts[i] = e.buf.Bytes()
		if i == n-1 {
			q.inFlight = e.fid
			q.hasInFlight = true
		}
		*e = entry{}
	}
	q.head = (q.head + n) & q.mask
	q.size -= n
	q.depth.Store(int64(q.size))
	q.mu.Unlock()
	return n
}

// finishDrain returns a drained queue to the scheduler: back onto the ready
// list when more packets arrived during the write, idle otherwise.
func (q *SubQueue) finishDrain() {
	q.mu.Lock()
	if q.closed || q.size == 0 || q.shard == nil {
		q.state = qIdle
		q.mu.Unlock()
		return
	}
	q.state = qReady
	q.mu.Unlock()
	q.shard.pushReady(q)
}

// drainOnce pops one batch and writes it through out, releasing the popped
// references. Unit tests drive queues with it; writer workers inline the
// same sequence with the router's batch-capable conn.
func (q *SubQueue) drainOnce(out Writer) int {
	var bufs [writerBatch]*PacketBuf
	var pkts [writerBatch][]byte
	n := q.popBatch(bufs[:], pkts[:])
	for i := 0; i < n; i++ {
		_, _ = out.WriteTo(pkts[i], q.addr)
		bufs[i].Release()
	}
	if n > 0 {
		q.sent.Add(int64(n))
	}
	q.finishDrain()
	return n
}

// Close rejects further enqueues and releases the backlog. A worker mid-
// WriteBatch holds its popped references separately and releases them when
// the write returns; everything still in the ring is released here, exactly
// once.
func (q *SubQueue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	for q.size > 0 {
		e := &q.ring[q.head]
		e.buf.Release()
		*e = entry{}
		q.head = (q.head + 1) & q.mask
		q.size--
	}
	q.depth.Store(0)
	q.mu.Unlock()
}

// Idle reports whether the queue is empty with no drain in progress.
func (q *SubQueue) Idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size == 0 && q.state == qIdle
}

// SubStats is a point-in-time snapshot of one subscriber queue, shaped
// for the /debugz/subscribers JSON endpoint.
type SubStats struct {
	ID       int32   `json:"id"` // subscriber id (trace stamps and events use it)
	Addr     string  `json:"addr"`
	Enqueued int64   `json:"enqueued"`
	Sent     int64   `json:"sent"`
	Dropped  int64   `json:"dropped"`
	Depth    int64   `json:"depth"`
	Limit    int64   `json:"limit"`    // current adaptive depth limit
	Retx     int64   `json:"retx"`     // retransmissions served into this queue from the relay cache
	REMBBps  float64 `json:"remb_bps"` // last REMB bandwidth estimate (0 = none yet)
	// Rung and RungSwitches are the subscriber's current quality-ladder
	// rung and how many rung switches have committed for it; Router.Stats
	// fills them (the queue doesn't track rungs).
	Rung         uint8 `json:"rung"`
	RungSwitches int64 `json:"rung_switches"`
	// LastActiveAgeMs is how long the subscriber's reverse path has been
	// silent; Router.Stats fills it (the queue has no clock).
	LastActiveAgeMs float64 `json:"last_active_age_ms"`
}

func (q *SubQueue) stats() SubStats {
	return SubStats{
		ID:       q.sub,
		Addr:     q.addr.String(),
		Enqueued: q.enqueued.Load(),
		Sent:     q.sent.Load(),
		Dropped:  q.dropped.Load(),
		Depth:    q.depth.Load(),
		Limit:    q.limitA.Load(),
		Retx:     q.retx.Load(),
		REMBBps:  math.Float64frombits(q.rembBps.Load()),
	}
}
