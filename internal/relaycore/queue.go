package relaycore

import (
	"net"
	"sync"
	"sync/atomic"

	"livo/internal/telemetry"
)

// frameID groups the fragments of one media frame so the drop policy can
// discard whole frames. Non-media packets (pongs, sender pings) each get a
// unique control id: they are individually droppable.
type frameID struct {
	ctl    uint64
	seq    uint32
	stream uint8
	media  bool
}

type entry struct {
	buf *PacketBuf
	fid frameID
}

// writerBatch bounds how many entries a writer pops per lock acquisition.
const writerBatch = 16

// SubQueue is one subscriber's bounded send queue: a ring of refcounted
// packet buffers drained by a dedicated writer goroutine. A stalled
// subscriber fills its own ring and triggers the drop policy; it never
// blocks the router or other subscribers.
//
// Drop policy (slow subscriber): drop-oldest at media-frame granularity.
// When the ring is full the oldest *whole* queued frame is discarded —
// never a strict subset of a fragment run whose earlier fragments already
// left the queue (a split run forces the receiver to NACK every remaining
// fragment; a cleanly dropped frame costs one jitter-buffer skip). If the
// entire ring is the tail of the frame currently being written, the
// incoming packet is rejected instead.
type SubQueue struct {
	addr net.Addr
	out  Writer

	mu          sync.Mutex
	cond        *sync.Cond
	ring        []entry
	mask        int
	head        int // ring index of the oldest entry
	size        int
	inFlight    frameID // frame of the most recently popped entry
	hasInFlight bool
	closed      bool

	enqueued atomic.Int64
	sent     atomic.Int64
	dropped  atomic.Int64
	depth    atomic.Int64
	writing  atomic.Bool

	telDrops *telemetry.Counter
}

func newSubQueue(out Writer, addr net.Addr, depth int, telDrops *telemetry.Counter) *SubQueue {
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	q := &SubQueue{
		addr:     addr,
		out:      out,
		ring:     make([]entry, cap),
		mask:     cap - 1,
		telDrops: telDrops,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends one packet, taking ownership of one reference on success.
// On a full ring it runs the drop policy first. It returns false — and the
// caller keeps its reference — when the queue is closed or the incoming
// packet itself was rejected.
func (q *SubQueue) Enqueue(buf *PacketBuf, fid frameID) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.size == len(q.ring) {
		q.dropOldestFrameLocked()
	}
	if q.size == len(q.ring) {
		// Nothing droppable: the ring is one partially-sent fragment run.
		// Reject the incoming packet rather than splitting the queued run.
		// It still counts as enqueued-then-dropped so the accounting
		// invariant (enqueued == sent + dropped + depth) holds.
		q.mu.Unlock()
		q.enqueued.Add(1)
		q.dropped.Add(1)
		q.telDrops.Add(1)
		return false
	}
	q.ring[(q.head+q.size)&q.mask] = entry{buf: buf, fid: fid}
	q.size++
	q.depth.Store(int64(q.size))
	wake := q.size == 1
	q.mu.Unlock()
	if wake {
		q.cond.Signal()
	}
	q.enqueued.Add(1)
	return true
}

// dropOldestFrameLocked discards the full fragment run of the oldest frame
// that has not started transmission. The head prefix belonging to the
// in-flight frame is skipped (its earlier fragments already left the
// queue) and shifted forward over the freed slots.
func (q *SubQueue) dropOldestFrameLocked() {
	skip := 0
	if q.hasInFlight {
		for skip < q.size && q.ring[(q.head+skip)&q.mask].fid == q.inFlight {
			skip++
		}
	}
	if skip == q.size {
		return
	}
	victim := q.ring[(q.head+skip)&q.mask].fid
	run := 0
	for skip+run < q.size && q.ring[(q.head+skip+run)&q.mask].fid == victim {
		run++
	}
	for i := 0; i < run; i++ {
		e := &q.ring[(q.head+skip+i)&q.mask]
		e.buf.Release()
		*e = entry{}
	}
	// Shift the skipped prefix forward by run slots, newest first, so no
	// slot is read after being overwritten.
	for i := skip - 1; i >= 0; i-- {
		q.ring[(q.head+i+run)&q.mask] = q.ring[(q.head+i)&q.mask]
		q.ring[(q.head+i)&q.mask] = entry{}
	}
	q.head = (q.head + run) & q.mask
	q.size -= run
	q.depth.Store(int64(q.size))
	q.dropped.Add(int64(run))
	q.telDrops.Add(int64(run))
}

// run is the writer worker: it pops batches and writes them to the
// subscriber. A blocking WriteTo (stalled receiver) parks only this
// goroutine — the ring keeps absorbing and dropping behind it.
func (q *SubQueue) run(wg *sync.WaitGroup) {
	defer wg.Done()
	var batch [writerBatch]entry
	for {
		q.mu.Lock()
		for q.size == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			// Prompt shutdown: release the backlog unwritten.
			for q.size > 0 {
				e := &q.ring[q.head]
				e.buf.Release()
				*e = entry{}
				q.head = (q.head + 1) & q.mask
				q.size--
			}
			q.depth.Store(0)
			q.mu.Unlock()
			return
		}
		n := q.size
		if n > writerBatch {
			n = writerBatch
		}
		for i := 0; i < n; i++ {
			batch[i] = q.ring[(q.head+i)&q.mask]
			q.ring[(q.head+i)&q.mask] = entry{}
		}
		q.head = (q.head + n) & q.mask
		q.size -= n
		q.depth.Store(int64(q.size))
		// Everything popped will be written; the drop policy must not split
		// the run still queued behind the last popped fragment.
		q.inFlight = batch[n-1].fid
		q.hasInFlight = true
		q.writing.Store(true)
		q.mu.Unlock()
		for i := 0; i < n; i++ {
			_, _ = q.out.WriteTo(batch[i].buf.Bytes(), q.addr)
			batch[i].buf.Release()
			batch[i] = entry{}
		}
		q.sent.Add(int64(n))
		q.writing.Store(false)
	}
}

// Close marks the queue closed and wakes the writer to release its backlog.
func (q *SubQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Idle reports whether the queue is empty with no write in progress.
func (q *SubQueue) Idle() bool { return q.depth.Load() == 0 && !q.writing.Load() }

// SubStats is a point-in-time snapshot of one subscriber queue.
type SubStats struct {
	Addr     string
	Enqueued int64
	Sent     int64
	Dropped  int64
	Depth    int64
}

func (q *SubQueue) stats() SubStats {
	return SubStats{
		Addr:     q.addr.String(),
		Enqueued: q.enqueued.Load(),
		Sent:     q.sent.Load(),
		Dropped:  q.dropped.Load(),
		Depth:    q.depth.Load(),
	}
}
