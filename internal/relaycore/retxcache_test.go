package relaycore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"livo/internal/telemetry"
	"livo/internal/transport"
)

func testRetxCache(capacity int, age time.Duration) *retxCache {
	return newRetxCache(capacity, age.Nanoseconds(), telemetry.NewRegistry(0).Counter("evict"))
}

// TestRetxCacheRefcounts walks the cache through insert, hit, size and age
// eviction, duplicate overwrite, and close, asserting the pool's Live()
// leak invariant at every step.
func TestRetxCacheRefcounts(t *testing.T) {
	pool := NewBufPool(0)
	c := testRetxCache(4, time.Second)

	key := func(i int) nackKey { return nackKey{seq: uint32(i), frag: 0, stream: 1} }
	for i := 0; i < 4; i++ {
		buf := pool.Load([]byte{byte(i)})
		c.Insert(key(i), buf, int64(i))
		buf.Release() // cache holds the only remaining reference
	}
	if live := pool.Live(); live != 4 {
		t.Fatalf("Live = %d after 4 cached inserts, want 4", live)
	}

	// Hit: the returned buffer carries a caller-owned reference.
	got := c.Lookup(key(2), 100)
	if got == nil || !bytes.Equal(got.Bytes(), []byte{2}) {
		t.Fatalf("Lookup(2) = %v, want payload [2]", got)
	}
	got.Release()
	if live := pool.Live(); live != 4 {
		t.Fatalf("Live = %d after hit+release, want 4", live)
	}

	// Size eviction: a 5th insert evicts the oldest (key 0).
	buf := pool.Load([]byte{4})
	c.Insert(key(4), buf, 100)
	buf.Release()
	if live := pool.Live(); live != 4 {
		t.Fatalf("Live = %d after size eviction, want 4", live)
	}
	if c.Lookup(key(0), 100) != nil {
		t.Fatal("evicted key 0 still served")
	}
	if _, _, ev := c.retxStats(); ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}

	// Duplicate insert overwrites in place: occupancy and Live unchanged,
	// the newer payload wins.
	dup := pool.Load([]byte{42})
	c.Insert(key(3), dup, 200)
	dup.Release()
	if live := pool.Live(); live != 4 {
		t.Fatalf("Live = %d after duplicate insert, want 4", live)
	}
	if got := c.Lookup(key(3), 200); got == nil || !bytes.Equal(got.Bytes(), []byte{42}) {
		t.Fatalf("duplicate overwrite: Lookup(3) = %v, want [42]", got)
	} else {
		got.Release()
	}
	if size, _, _ := c.retxStats(); size != 4 {
		t.Fatalf("size = %d after duplicate insert, want 4", size)
	}

	// Age: entries expire for lookups, and a later insert sweeps them.
	old := time.Second.Nanoseconds()
	if c.Lookup(key(1), 1+old) != nil {
		t.Fatal("expired entry still served")
	}
	fresh := pool.Load([]byte{9})
	c.Insert(nackKey{seq: 9}, fresh, 300+old)
	fresh.Release()
	if size, _, _ := c.retxStats(); size != 1 {
		t.Fatalf("size = %d after age sweep, want 1 (only the fresh entry)", size)
	}

	c.close()
	if live := pool.Live(); live != 0 {
		t.Fatalf("Live = %d after close, want 0", live)
	}
	if c.Lookup(nackKey{seq: 9}, 300+old) != nil {
		t.Fatal("closed cache served a lookup")
	}
	post := pool.Load([]byte{1})
	c.Insert(nackKey{seq: 10}, post, 400+old)
	post.Release()
	if live := pool.Live(); live != 0 {
		t.Fatalf("Live = %d after insert-into-closed, want 0", live)
	}
}

func TestRetxKeyOf(t *testing.T) {
	wire := mediaWire(2, 7, 3, 8, false, []byte("x"))
	k, ok := retxKeyOf(wire)
	if !ok || k != (nackKey{seq: 7, frag: 3, stream: 2}) {
		t.Fatalf("retxKeyOf(media) = %+v, %v", k, ok)
	}
	// Parity packets share the fragment index space with data fragments:
	// caching them would answer a data NACK with a parity payload.
	parity := transport.Packet{
		Stream: 2, FrameSeq: 7, FragIndex: 0, FragCount: 8, Parity: true, Payload: []byte("p"),
	}
	if _, ok := retxKeyOf(append([]byte{transport.MediaMagic}, parity.Marshal()...)); ok {
		t.Fatal("parity packet reported cacheable")
	}
	if _, ok := retxKeyOf([]byte{transport.FBNACK, 1, 2}); ok {
		t.Fatal("feedback packet reported cacheable")
	}
}

// TestNACKServedFromCache: a NACK for a routed fragment is answered from
// the relay cache — retransmitted to the requester only, with the sender
// seeing nothing — while a miss escalates through the coalescer.
func TestNACKServedFromCache(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rec := newRecWriter()
			cfg := testConfig()
			cfg.Shards = shards
			r := NewRouter(rec, senderAddr(), cfg)
			defer r.Close()

			sub1, sub2 := udp(1), udp(2)
			r.Subscribe(sub1)
			r.Subscribe(sub2)

			const frags = 4
			pool := r.Pool()
			for g := uint16(0); g < frags; g++ {
				r.RouteMedia(pool.Load(mediaWire(1, 5, g, frags, false, []byte{byte(g)})))
			}
			if !r.WaitIdle(2 * time.Second) {
				t.Fatal("router did not drain")
			}
			base1, base2 := rec.count(sub1), rec.count(sub2)

			r.RouteFeedback(transport.MarshalNACK(1, 5, 2), sub2)
			if !r.WaitIdle(2 * time.Second) {
				t.Fatal("router did not drain the retransmission")
			}
			if got := rec.count(sub2); got != base2+1 {
				t.Fatalf("requester received %d packets, want %d", got, base2+1)
			}
			ps := rec.payloads(sub2)
			if want := mediaWire(1, 5, 2, frags, false, []byte{2}); !bytes.Equal(ps[len(ps)-1], want) {
				t.Fatalf("retransmission mismatch: got %x", ps[len(ps)-1])
			}
			if got := rec.count(sub1); got != base1 {
				t.Fatalf("non-requesting subscriber received %d extra packets", got-base1)
			}
			if got := rec.count(senderAddr()); got != 0 {
				t.Fatalf("sender observed %d packets for a cache hit, want 0", got)
			}
			st := r.Stats()
			if st.RetxHits != 1 || st.RetxMisses != 0 {
				t.Fatalf("retx hits/misses = %d/%d, want 1/0", st.RetxHits, st.RetxMisses)
			}
			for _, ss := range st.Subs {
				want := int64(0)
				if ss.Addr == sub2.String() {
					want = 1
				}
				if ss.Retx != want {
					t.Fatalf("sub %s Retx = %d, want %d", ss.Addr, ss.Retx, want)
				}
			}

			// Miss: an uncached fragment escalates to the sender.
			r.RouteFeedback(transport.MarshalNACK(1, 99, 0), sub2)
			if got := rec.count(senderAddr()); got != 1 {
				t.Fatalf("sender observed %d packets for a cache miss, want 1", got)
			}
			st = r.Stats()
			if st.RetxMisses != 1 || st.NACKForwarded != 1 {
				t.Fatalf("misses/forwarded = %d/%d, want 1/1", st.RetxMisses, st.NACKForwarded)
			}
			if st.RetxCached == 0 {
				t.Fatal("RetxCached = 0, want > 0")
			}
		})
	}
}

// TestNACKCacheExpiry: cached packets past the age bound no longer serve
// NACKs — the receiver has long skipped the frame.
func TestNACKCacheExpiry(t *testing.T) {
	clk := &fakeClock{}
	rec := newRecWriter()
	cfg := testConfig()
	cfg.Shards = 1
	cfg.Now = clk.Now
	cfg.RetxCacheAge = 500 * time.Millisecond
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	sub := udp(1)
	r.Subscribe(sub)
	r.RouteMedia(r.Pool().Load(mediaWire(1, 1, 0, 1, false, []byte("a"))))
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	clk.Advance(time.Second)
	r.RouteFeedback(transport.MarshalNACK(1, 1, 0), sub)
	if got := rec.count(senderAddr()); got != 1 {
		t.Fatalf("expired entry should escalate to the sender, got %d sender packets", got)
	}
	if st := r.Stats(); st.RetxHits != 0 || st.RetxMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", st.RetxHits, st.RetxMisses)
	}
}

// TestNACKCacheDisabled: with DisableRetxCache every NACK goes to the
// sender (the pre-cache A/B behavior) and no buffers are cached.
func TestNACKCacheDisabled(t *testing.T) {
	rec := newRecWriter()
	cfg := testConfig()
	cfg.Shards = 2
	cfg.DisableRetxCache = true
	r := NewRouter(rec, senderAddr(), cfg)

	sub := udp(1)
	r.Subscribe(sub)
	r.RouteMedia(r.Pool().Load(mediaWire(1, 1, 0, 1, false, []byte("a"))))
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	r.RouteFeedback(transport.MarshalNACK(1, 1, 0), sub)
	if got := rec.count(senderAddr()); got != 1 {
		t.Fatalf("sender observed %d NACKs with the cache disabled, want 1", got)
	}
	st := r.Stats()
	if st.RetxHits != 0 || st.RetxMisses != 0 || st.RetxCached != 0 {
		t.Fatalf("retx stats nonzero with cache disabled: %+v", st)
	}
	r.Close()
	if st := r.Stats(); st.PoolLive != 0 {
		t.Fatalf("PoolLive = %d after close, want 0", st.PoolLive)
	}
}

// TestNACKServedFromCacheSequential: the legacy sequential plane serves
// hits with a direct write to the requester.
func TestNACKServedFromCacheSequential(t *testing.T) {
	rec := newRecWriter()
	cfg := testConfig()
	cfg.Sequential = true
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	sub := udp(1)
	r.Subscribe(sub)
	r.RouteMedia(r.Pool().Load(mediaWire(1, 3, 1, 2, false, []byte("b"))))
	base := rec.count(sub)

	r.RouteFeedback(transport.MarshalNACK(1, 3, 1), sub)
	if got := rec.count(sub); got != base+1 {
		t.Fatalf("requester received %d packets, want %d", got, base+1)
	}
	if got := rec.count(senderAddr()); got != 0 {
		t.Fatalf("sender observed %d packets, want 0", got)
	}
	if st := r.Stats(); st.RetxHits != 1 {
		t.Fatalf("RetxHits = %d, want 1", st.RetxHits)
	}
}

// TestRetxCacheReleasedOnClose: buffers held only by the caches are
// released at Close — the Live() invariant includes cached references.
func TestRetxCacheReleasedOnClose(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	r := NewRouter(newRecWriter(), senderAddr(), cfg)
	// No subscribers: packets are still cached by their owner shard.
	pool := r.Pool()
	for i := 0; i < 200; i++ {
		r.RouteMedia(pool.Load(mediaWire(1, uint32(i/8), uint16(i%8), 8, false, []byte{byte(i)})))
	}
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}
	if st := r.Stats(); st.RetxCached != 200 {
		t.Fatalf("RetxCached = %d, want 200", st.RetxCached)
	}
	r.Close()
	if st := r.Stats(); st.PoolLive != 0 {
		t.Fatalf("PoolLive = %d after close, want 0", st.PoolLive)
	}
}
