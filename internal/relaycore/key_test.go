package relaycore

import (
	"net"
	"testing"
)

func TestKeyOfUDPCanonical(t *testing.T) {
	v4 := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7).To4(), Port: 5000}
	v4in16 := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 5000} // 16-byte form
	if KeyOf(v4) != KeyOf(v4in16) {
		t.Fatalf("4-byte and 16-byte forms of the same IPv4 address produced different keys")
	}
	other := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 8), Port: 5000}
	if KeyOf(v4) == KeyOf(other) {
		t.Fatalf("distinct IPs produced equal keys")
	}
	port := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 5001}
	if KeyOf(v4) == KeyOf(port) {
		t.Fatalf("distinct ports produced equal keys")
	}
	v6 := &net.UDPAddr{IP: net.ParseIP("2001:db8::1"), Port: 5000}
	if KeyOf(v6) == KeyOf(v4) {
		t.Fatalf("v6 address collided with v4 key")
	}
	if KeyOf(v6) != KeyOf(&net.UDPAddr{IP: net.ParseIP("2001:db8::1"), Port: 5000}) {
		t.Fatalf("equal v6 addresses produced different keys")
	}
}

type strAddr struct{ net, s string }

func (a strAddr) Network() string { return a.net }
func (a strAddr) String() string  { return a.s }

func TestKeyOfFallback(t *testing.T) {
	a := strAddr{"mem", "node-1"}
	b := strAddr{"mem", "node-1"}
	c := strAddr{"mem", "node-2"}
	if KeyOf(a) != KeyOf(b) {
		t.Fatalf("equal non-UDP addresses produced different keys")
	}
	if KeyOf(a) == KeyOf(c) {
		t.Fatalf("distinct non-UDP addresses produced equal keys")
	}
}

func TestKeyHashExported(t *testing.T) {
	u := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 5000}
	if KeyOf(u).Hash() != KeyOf(u).hash() {
		t.Fatalf("exported Hash disagrees with the internal shard hash")
	}
	allocs := testing.AllocsPerRun(200, func() { _ = KeyOf(u).Hash() })
	if allocs != 0 {
		t.Fatalf("KeyOf().Hash() allocates %.1f per op, want 0", allocs)
	}
}

func TestKeyOfUDPZeroAlloc(t *testing.T) {
	u := &net.UDPAddr{IP: net.IPv4(192, 168, 1, 1), Port: 9000}
	allocs := testing.AllocsPerRun(200, func() { _ = KeyOf(u) })
	if allocs != 0 {
		t.Fatalf("KeyOf(*net.UDPAddr) allocates %.1f per op, want 0", allocs)
	}
}
