// Package relaycore is the relay's data plane, factored out of the public
// Relay so it is unit-testable and benchmarkable without UDP sockets
// (livo-bench -relaybench drives it with an in-memory conn).
//
// Design (SFU-style fan-out; cf. DESIGN.md §7):
//
//   - Media packets from the sender are loaded once into a pooled,
//     refcounted PacketBuf and a reference is enqueued onto every
//     subscriber's bounded SubQueue; a dedicated writer per subscriber
//     drains it. One stalled receiver fills only its own ring (drop-oldest
//     per whole media frame) and never head-of-line-blocks the rest.
//   - The subscriber set is an immutable snapshot behind an atomic pointer
//     (copy-on-write on Subscribe/Unsubscribe), so the per-packet fan-out
//     takes no lock and allocates nothing.
//   - Reverse-path feedback is aggregated, not mirrored: PLIs are deduped
//     to one per refresh window, NACKs for the same fragment are coalesced
//     across subscribers, and REMB forwards the running minimum (O(1)
//     amortized) — at 1000 subscribers one lost key frame becomes one
//     forwarded PLI instead of a 1000-message storm.
package relaycore

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"livo/internal/telemetry"
	"livo/internal/transport"
)

// Writer is the outbound half of a net.PacketConn — all the router needs,
// so benchmarks and tests can substitute in-memory conns.
type Writer interface {
	WriteTo(p []byte, addr net.Addr) (n int, err error)
}

// Config parameterizes a Router. The zero value picks production defaults.
type Config struct {
	// QueueDepth is the per-subscriber ring capacity in packets (rounded
	// up to a power of two; default 1024 ≈ a second of 4K media).
	QueueDepth int
	// BufClass is the pooled packet-buffer size (default 2048 bytes).
	BufClass int
	// PLIWindow is the PLI dedup window (default 250 ms, matching
	// transport.PLITracker's resend interval — the sender-side storm guard
	// admits one refresh per window anyway).
	PLIWindow time.Duration
	// NACKWindow coalesces duplicate fragment requests (default 50 ms,
	// about one retransmission RTT).
	NACKWindow time.Duration
	// REMBInterval rate-limits forwarding of an unchanged REMB minimum
	// (default 33 ms, the receivers' own feedback cadence).
	REMBInterval time.Duration
	// Sequential selects the pre-queue data plane — a mutex-guarded
	// snapshot copy and serial WriteTo per packet — kept for A/B
	// measurement (livo-bench -relaybench benchmarks both).
	Sequential bool
	// Telemetry receives the livo_relay_* series (default
	// telemetry.Default).
	Telemetry *telemetry.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BufClass <= 0 {
		c.BufClass = DefaultBufClass
	}
	if c.PLIWindow <= 0 {
		c.PLIWindow = 250 * time.Millisecond
	}
	if c.NACKWindow <= 0 {
		c.NACKWindow = 50 * time.Millisecond
	}
	if c.REMBInterval <= 0 {
		c.REMBInterval = 33 * time.Millisecond
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default
	}
}

// Subscriber is one receiver: its address, canonical key (cached at
// subscribe time — no String() comparisons on the packet path), and queue.
type Subscriber struct {
	addr net.Addr
	key  Key
	q    *SubQueue
}

// Addr returns the subscriber's address.
func (s *Subscriber) Addr() net.Addr { return s.addr }

// subSnapshot is the immutable subscriber set; the hot path reads it with
// one atomic load.
type subSnapshot struct {
	subs    []*Subscriber
	primary *Subscriber
}

// Router fans one sender's media out to subscribers and aggregates their
// feedback. RouteMedia and RouteFeedback must be called from a single
// routing goroutine (the relay's read loop); membership and Stats are safe
// from any goroutine.
type Router struct {
	cfg    Config
	out    Writer
	sender net.Addr
	pool   *BufPool

	snap atomic.Pointer[subSnapshot]
	mu   sync.Mutex // membership changes (copy-on-write)
	wg   sync.WaitGroup

	// Feedback aggregation state; fbMu serializes the routing goroutine
	// with Unsubscribe's REMB eviction.
	fbMu        sync.Mutex
	remb        *rembMin
	nacks       *nackCoalescer
	pli         pliGate
	lastREMBFwd int64
	lastREMBMin float64
	rembSent    bool
	rembScratch [9]byte
	ctlSeq      uint64 // routing-goroutine only

	mediaPkts     atomic.Int64
	fanoutPkts    atomic.Int64
	pliFwd        atomic.Int64
	pliSuppressed atomic.Int64
	nackFwd       atomic.Int64
	nackCoalesced atomic.Int64
	rembFwd       atomic.Int64
	poseFwd       atomic.Int64

	telMedia, telFanout, telDrops     *telemetry.Counter
	telPLIFwd, telPLISup              *telemetry.Counter
	telNACKFwd, telNACKSup, telREMB   *telemetry.Counter
	telSubs, telDepthMax              *telemetry.Gauge
}

// NewRouter builds a router writing through out toward the given sender.
func NewRouter(out Writer, sender net.Addr, cfg Config) *Router {
	cfg.fill()
	r := &Router{
		cfg:    cfg,
		out:    out,
		sender: sender,
		pool:   NewBufPool(cfg.BufClass),
		remb:   newREMBMin(),
		nacks:  newNACKCoalescer(cfg.NACKWindow.Nanoseconds()),
	}
	r.pli.window = cfg.PLIWindow.Nanoseconds()
	r.snap.Store(&subSnapshot{})
	reg := cfg.Telemetry
	r.telMedia = reg.Counter("livo_relay_media_packets_total")
	r.telFanout = reg.Counter("livo_relay_fanout_packets_total")
	r.telDrops = reg.Counter("livo_relay_drops_total")
	r.telPLIFwd = reg.Counter("livo_relay_pli_forwarded_total")
	r.telPLISup = reg.Counter("livo_relay_pli_suppressed_total")
	r.telNACKFwd = reg.Counter("livo_relay_nack_forwarded_total")
	r.telNACKSup = reg.Counter("livo_relay_nack_coalesced_total")
	r.telREMB = reg.Counter("livo_relay_remb_forwarded_total")
	r.telSubs = reg.Gauge("livo_relay_subscribers")
	r.telDepthMax = reg.Gauge("livo_relay_queue_depth_max")
	return r
}

// Pool returns the router's packet-buffer pool (the relay read loop loads
// inbound datagrams through it).
func (r *Router) Pool() *BufPool { return r.pool }

// Sender returns the sender address the router forwards feedback to.
func (r *Router) Sender() net.Addr { return r.sender }

func (r *Router) now() int64 {
	if r.cfg.Now != nil {
		return r.cfg.Now().UnixNano()
	}
	return time.Now().UnixNano()
}

// Subscribe adds a receiver (idempotent by canonical address key). The
// first subscriber becomes the primary viewer whose poses drive culling.
func (r *Router) Subscribe(addr net.Addr) {
	k := KeyOf(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	for _, s := range cur.subs {
		if s.key == k {
			return
		}
	}
	sub := &Subscriber{addr: addr, key: k, q: newSubQueue(r.out, addr, r.cfg.QueueDepth, r.telDrops)}
	next := &subSnapshot{subs: make([]*Subscriber, 0, len(cur.subs)+1), primary: cur.primary}
	next.subs = append(append(next.subs, cur.subs...), sub)
	if next.primary == nil {
		next.primary = sub
	}
	r.snap.Store(next)
	r.telSubs.SetInt(int64(len(next.subs)))
	if !r.cfg.Sequential {
		r.wg.Add(1)
		go sub.q.run(&r.wg)
	}
}

// Unsubscribe removes a receiver: its writer stops, its queued buffers are
// released, its REMB entry is evicted (the forwarded minimum may rise),
// and — if it was the primary viewer — the oldest remaining subscriber
// becomes primary. Reports whether the address was subscribed.
func (r *Router) Unsubscribe(addr net.Addr) bool {
	k := KeyOf(addr)
	r.mu.Lock()
	cur := r.snap.Load()
	idx := -1
	for i, s := range cur.subs {
		if s.key == k {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.mu.Unlock()
		return false
	}
	removed := cur.subs[idx]
	next := &subSnapshot{subs: make([]*Subscriber, 0, len(cur.subs)-1), primary: cur.primary}
	next.subs = append(append(next.subs, cur.subs[:idx]...), cur.subs[idx+1:]...)
	if cur.primary == removed {
		next.primary = nil
		if len(next.subs) > 0 {
			next.primary = next.subs[0]
		}
	}
	r.snap.Store(next)
	r.telSubs.SetInt(int64(len(next.subs)))
	r.mu.Unlock()

	removed.q.Close()
	r.fbMu.Lock()
	r.remb.Remove(k)
	r.fbMu.Unlock()
	return true
}

// Subscribers returns the current subscriber count.
func (r *Router) Subscribers() int { return len(r.snap.Load().subs) }

// Primary returns the current primary viewer's address, or nil.
func (r *Router) Primary() net.Addr {
	if p := r.snap.Load().primary; p != nil {
		return p.addr
	}
	return nil
}

// FromSender reports whether addr is the media sender (allocation-free for
// UDP addresses).
func (r *Router) FromSender(addr net.Addr) bool { return KeyOf(addr) == KeyOf(r.sender) }

// frameIDOf classifies a wire packet for the drop policy. Media packets
// (magic-prefixed transport header) group by stream+sequence; anything
// else is its own droppable unit.
func (r *Router) frameIDOf(b []byte) frameID {
	if len(b) >= 11 && b[0] == transport.MediaMagic {
		return frameID{media: true, stream: b[1], seq: binary.BigEndian.Uint32(b[2:6])}
	}
	r.ctlSeq++
	return frameID{ctl: r.ctlSeq}
}

// mediaKeyFlag reports whether a wire packet is a key-frame media packet
// (flags byte at magic+9, low bit — see transport.Packet.Marshal).
func mediaKeyFlag(b []byte) bool {
	return len(b) >= 11 && b[0] == transport.MediaMagic && b[10]&1 != 0
}

// RouteMedia fans one sender packet out to every subscriber. It takes
// ownership of the caller's buffer reference.
func (r *Router) RouteMedia(buf *PacketBuf) {
	r.mediaPkts.Add(1)
	r.telMedia.Inc()
	b := buf.Bytes()
	if mediaKeyFlag(b) {
		// A key frame is on its way to everyone: the PLI refresh cycle is
		// complete, mirror the receivers' PLITracker.OnKeyFrame.
		r.fbMu.Lock()
		r.pli.OnKeyFrame()
		r.fbMu.Unlock()
	}
	if r.cfg.Sequential {
		r.routeSequential(b)
		buf.Release()
		return
	}
	snap := r.snap.Load()
	fid := r.frameIDOf(b)
	for _, s := range snap.subs {
		buf.Retain()
		if !s.q.Enqueue(buf, fid) {
			buf.Release()
		}
	}
	r.fanoutPkts.Add(int64(len(snap.subs)))
	r.telFanout.Add(int64(len(snap.subs)))
	buf.Release()
}

// routeSequential is the pre-change data plane, preserved verbatim for the
// A/B benchmark: snapshot the subscriber list with a fresh allocation,
// then write to each subscriber in turn, blocking the whole relay on the
// slowest one.
func (r *Router) routeSequential(b []byte) {
	r.mu.Lock()
	snap := r.snap.Load()
	subs := make([]net.Addr, 0, len(snap.subs))
	for _, s := range snap.subs {
		subs = append(subs, s.addr)
	}
	r.mu.Unlock()
	for _, a := range subs {
		_, _ = r.out.WriteTo(b, a)
	}
	r.fanoutPkts.Add(int64(len(subs)))
	r.telFanout.Add(int64(len(subs)))
}

// RouteFeedback aggregates one reverse-path message from a subscriber.
func (r *Router) RouteFeedback(b []byte, from net.Addr) {
	if len(b) == 0 {
		return
	}
	switch b[0] {
	case transport.FBREMB:
		bps, err := transport.UnmarshalREMB(b)
		if err != nil {
			return
		}
		now := r.now()
		r.fbMu.Lock()
		min := r.remb.Update(KeyOf(from), bps)
		fwd := !r.rembSent || min != r.lastREMBMin || now-r.lastREMBFwd >= r.cfg.REMBInterval.Nanoseconds()
		var wire []byte
		if fwd {
			r.rembSent = true
			r.lastREMBMin = min
			r.lastREMBFwd = now
			wire = transport.AppendREMB(r.rembScratch[:0], min)
		}
		r.fbMu.Unlock()
		if fwd {
			r.rembFwd.Add(1)
			r.telREMB.Inc()
			_, _ = r.out.WriteTo(wire, r.sender)
		}
	case transport.FBPose:
		// Only the primary viewer's poses reach the sender: culling is
		// per-viewer state, so the sender culls for the primary and the
		// other subscribers get the same (conservatively larger) view.
		p := r.snap.Load().primary
		if p != nil && KeyOf(from) == p.key {
			r.poseFwd.Add(1)
			_, _ = r.out.WriteTo(b, r.sender)
		}
	case transport.FBNACK:
		stream, seq, frag, err := transport.UnmarshalNACK(b)
		if err != nil {
			return
		}
		now := r.now()
		r.fbMu.Lock()
		fwd := r.nacks.ShouldForward(nackKey{seq: seq, frag: frag, stream: stream}, now)
		r.fbMu.Unlock()
		if !fwd {
			r.nackCoalesced.Add(1)
			r.telNACKSup.Inc()
			return
		}
		r.nackFwd.Add(1)
		r.telNACKFwd.Inc()
		_, _ = r.out.WriteTo(b, r.sender)
	case transport.FBPLI:
		now := r.now()
		r.fbMu.Lock()
		fwd := r.pli.ShouldForward(now)
		r.fbMu.Unlock()
		if !fwd {
			r.pliSuppressed.Add(1)
			r.telPLISup.Inc()
			return
		}
		r.pliFwd.Add(1)
		r.telPLIFwd.Inc()
		_, _ = r.out.WriteTo(b, r.sender)
	default:
		// Pings, pongs, unknown types: forward to the sender.
		_, _ = r.out.WriteTo(b, r.sender)
	}
}

// Close stops every subscriber writer and releases queued buffers. Media
// routed after Close is dropped at the (closed) queues.
func (r *Router) Close() {
	r.mu.Lock()
	snap := r.snap.Load()
	r.snap.Store(&subSnapshot{})
	r.telSubs.SetInt(0)
	r.mu.Unlock()
	for _, s := range snap.subs {
		s.q.Close()
	}
	r.wg.Wait()
}

// WaitIdle blocks until every subscriber queue is drained (or the timeout
// elapses), returning whether it drained. Benchmarks use it to charge
// queued-mode wall time with delivery, not just enqueue.
func (r *Router) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, s := range r.snap.Load().subs {
			if !s.q.Idle() {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of the router.
type Stats struct {
	Subscribers   int
	MediaPackets  int64
	FanoutPackets int64
	Drops         int64
	MaxDepth      int64
	PLIForwarded  int64
	PLISuppressed int64
	NACKForwarded int64
	NACKCoalesced int64
	REMBForwarded int64
	PoseForwarded int64
	Subs          []SubStats
}

// Stats snapshots the router and its per-subscriber queues, and refreshes
// the livo_relay_queue_depth_max gauge (the hot path never touches it).
func (r *Router) Stats() Stats {
	snap := r.snap.Load()
	st := Stats{
		Subscribers:   len(snap.subs),
		MediaPackets:  r.mediaPkts.Load(),
		FanoutPackets: r.fanoutPkts.Load(),
		PLIForwarded:  r.pliFwd.Load(),
		PLISuppressed: r.pliSuppressed.Load(),
		NACKForwarded: r.nackFwd.Load(),
		NACKCoalesced: r.nackCoalesced.Load(),
		REMBForwarded: r.rembFwd.Load(),
		PoseForwarded: r.poseFwd.Load(),
		Subs:          make([]SubStats, 0, len(snap.subs)),
	}
	for _, s := range snap.subs {
		ss := s.q.stats()
		st.Drops += ss.Dropped
		if ss.Depth > st.MaxDepth {
			st.MaxDepth = ss.Depth
		}
		st.Subs = append(st.Subs, ss)
	}
	r.telDepthMax.SetInt(st.MaxDepth)
	return st
}
