// Package relaycore is the relay's data plane, factored out of the public
// Relay so it is unit-testable and benchmarkable without UDP sockets
// (livo-bench -relaybench drives it with an in-memory conn).
//
// Design (SFU-style fan-out, sharded across cores; cf. DESIGN.md §7):
//
//   - The subscriber registry is partitioned across N shards
//     (SO_REUSEPORT-style, N defaults to GOMAXPROCS). Media packets are
//     loaded once into a pooled, refcounted PacketBuf; RouteMedia hands one
//     descriptor to each populated shard's ingest ring, and each shard's
//     ingest goroutine enqueues a reference onto its own partition's
//     bounded SubQueues — the per-packet fan-out work runs on N cores, not
//     one, and stays lock-free and 0 allocs/pkt (per-shard buffer pools).
//   - Writer workers (a small pool per shard) drain ready queues in
//     WriteBatch-sized pops — one sendmmsg-shaped call per batch instead of
//     one syscall-shaped op per packet — and steal from other shards' ready
//     lists when their home shard is empty, so one slow partition cannot
//     idle other cores. A stalled receiver parks at most one worker and
//     fills only its own ring (drop policy: whole delta frames first).
//   - Reverse-path feedback is aggregated, not mirrored: PLIs are deduped
//     to one per refresh window, NACKs for the same fragment are coalesced
//     across subscribers, and REMB forwards the running minimum (O(1)
//     amortized) — at 1000 subscribers one lost key frame becomes one
//     forwarded PLI instead of a 1000-message storm. Each subscriber's REMB
//     additionally retargets its queue's adaptive depth (BDP tracking).
package relaycore

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"livo/internal/frametrace"
	"livo/internal/telemetry"
	"livo/internal/transport"
)

// Writer is the outbound half of a net.PacketConn — all the router needs,
// so benchmarks and tests can substitute in-memory conns.
type Writer interface {
	WriteTo(p []byte, addr net.Addr) (n int, err error)
}

// BatchWriter is the sendmmsg-shaped extension of Writer: write every
// packet in ps to one destination with a single call. Conns that implement
// it (the relay's UDP shell, the bench conn) amortize per-op cost across a
// writer batch; the router falls back to per-packet WriteTo otherwise.
type BatchWriter interface {
	Writer
	WriteBatch(ps [][]byte, addr net.Addr) (n int, err error)
}

// Config parameterizes a Router. The zero value picks production defaults.
type Config struct {
	// Shards is the number of data-plane shards — subscriber-registry
	// partitions with their own ingest goroutine, buffer pool, and writer
	// workers (default GOMAXPROCS).
	Shards int
	// WritersPerShard sizes each shard's writer-worker pool (default 4).
	// Workers steal across shards, so the pool is a per-core drain budget,
	// not a per-subscriber one.
	WritersPerShard int
	// QueueDepth is the per-subscriber ring capacity in packets (rounded
	// up to a power of two; default 1024 ≈ a second of 4K media). It is the
	// ceiling of the adaptive depth limit.
	QueueDepth int
	// MinQueueDepth floors the adaptive depth limit (default 64 — a few
	// frames of headroom however slow the subscriber's REMB).
	MinQueueDepth int
	// DepthWindow is the bandwidth-delay window the adaptive limit targets:
	// a subscriber's queue holds about DepthWindow seconds of traffic at
	// its REMB-estimated rate (default 250 ms).
	DepthWindow time.Duration
	// BufClass is the pooled packet-buffer size (default 2048 bytes).
	BufClass int
	// PLIWindow is the PLI dedup window (default 250 ms, matching
	// transport.PLITracker's resend interval — the sender-side storm guard
	// admits one refresh per window anyway).
	PLIWindow time.Duration
	// NACKWindow coalesces duplicate fragment requests (default 50 ms,
	// about one retransmission RTT).
	NACKWindow time.Duration
	// REMBInterval rate-limits forwarding of an unchanged REMB minimum
	// (default 33 ms, the receivers' own feedback cadence).
	REMBInterval time.Duration
	// RetxCachePackets bounds the relay-wide retransmission cache (default
	// 1024 packets ≈ one GOP of 4K media — the window a receiver's NACK can
	// still usefully arrive in). The budget is split evenly across shards,
	// floored at 64 packets per shard.
	RetxCachePackets int
	// RetxCacheAge bounds how old a cached packet may be and still serve a
	// NACK (default 1 s — past that the receiver has skipped the frame).
	RetxCacheAge time.Duration
	// DisableRetxCache turns the relay-side retransmission cache off, so
	// every NACK escalates to the sender (A/B measurement).
	DisableRetxCache bool
	// SilenceWindow evicts a subscriber whose reverse path has been silent
	// (no feedback of any kind) for this long: its queue is torn down, its
	// REMB entry leaves the forwarded minimum, and the primary is
	// repointed. Zero disables liveness eviction (the default — receivers
	// send feedback every 33 ms, so even one second is generous in
	// production, but benchmarks and tests drive media with no reverse
	// path at all).
	SilenceWindow time.Duration
	// OnEvict, when set, is called off the hot path with the address of
	// each liveness-evicted subscriber.
	OnEvict func(addr net.Addr)
	// Sequential selects the pre-queue data plane — a mutex-guarded
	// snapshot copy and serial WriteTo per packet — kept for A/B
	// measurement (livo-bench -relaybench benchmarks both).
	Sequential bool
	// Telemetry receives the livo_relay_* series (default
	// telemetry.Default).
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives a frame-lifecycle stamp at each relay
	// hop — relay_ingest, shard_route, and per-subscriber sub_enqueue /
	// sub_drain — for the first fragment of every media frame. Nil (the
	// default) disables tracing with a single branch per packet; enabled,
	// a stamp is a handful of atomic stores and the hot path stays
	// allocation-free.
	Trace *frametrace.Ledger
	// Events, when non-nil, receives structured data-plane events: frame
	// drops with reason, PLI forwards, retransmission-cache hits/misses,
	// REMB minimum changes, and liveness evictions.
	Events *frametrace.EventRing
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.WritersPerShard <= 0 {
		c.WritersPerShard = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MinQueueDepth <= 0 {
		c.MinQueueDepth = 64
	}
	if c.DepthWindow <= 0 {
		c.DepthWindow = 250 * time.Millisecond
	}
	if c.BufClass <= 0 {
		c.BufClass = DefaultBufClass
	}
	if c.PLIWindow <= 0 {
		c.PLIWindow = 250 * time.Millisecond
	}
	if c.NACKWindow <= 0 {
		c.NACKWindow = 50 * time.Millisecond
	}
	if c.REMBInterval <= 0 {
		c.REMBInterval = 33 * time.Millisecond
	}
	if c.RetxCachePackets <= 0 {
		c.RetxCachePackets = 1024
	}
	if c.RetxCacheAge <= 0 {
		c.RetxCacheAge = time.Second
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default
	}
}

// Subscriber is one receiver: its address, canonical key (cached at
// subscribe time — no String() comparisons on the packet path), queue, and
// owning shard.
type Subscriber struct {
	addr  net.Addr
	key   Key
	id    int32 // stable per-router id; trace stamps and events carry it
	q     *SubQueue
	shard int

	// lastActive is the ns timestamp of the newest reverse-path packet from
	// this subscriber (stamped at subscribe and on every RouteFeedback);
	// the liveness sweep evicts subscribers silent past the window.
	lastActive atomic.Int64

	// Quality-ladder state. curRung is the rung currently delivered (written
	// only by the owning shard's ingest goroutine, at key-frame boundaries);
	// targetRung is the REMB-selected assignment (written by the feedback
	// goroutine); prevRung/switchSeq remember the last switch so NACKs for
	// pre-switch frames are served from the rung that was actually sent.
	// selREMB is the estimate (bps) that drove the current target, carried
	// into the rung-switch event; switches counts committed switches.
	curRung    atomic.Uint32
	targetRung atomic.Uint32
	prevRung   atomic.Uint32
	switchSeq  atomic.Uint32
	selREMB    atomic.Int64
	switches   atomic.Int64
}

// Addr returns the subscriber's address.
func (s *Subscriber) Addr() net.Addr { return s.addr }

// ID returns the subscriber's stable per-router id, the key that links
// it to frametrace stamps and events.
func (s *Subscriber) ID() int32 { return s.id }

// Rung returns the quality-ladder rung currently delivered to this
// subscriber (0 until a ladder stream and a reassignment exist).
func (s *Subscriber) Rung() uint8 { return uint8(s.curRung.Load()) }

// rungForSeq returns the rung frame seq was delivered at: the current rung
// for frames at or past the last switch boundary, the previous rung before
// it. NACKs carry no rung, so retransmission lookups key through this.
func (s *Subscriber) rungForSeq(seq uint32) uint8 {
	if seq >= s.switchSeq.Load() {
		return uint8(s.curRung.Load())
	}
	return uint8(s.prevRung.Load())
}

// subID is the event-friendly id of a possibly-nil subscriber.
func subID(s *Subscriber) int32 {
	if s == nil {
		return frametrace.NoSub
	}
	return s.id
}

// commitAndFilterRung is the per-subscriber rung state machine, shared by
// the sharded and sequential planes. A packet passes when its rung matches
// the subscriber's current rung; a pending reassignment (target != current)
// commits at the first data fragment of a key frame — whichever rung's copy
// arrives first — so the old rung's stream ends cleanly at the previous
// frame and the new rung starts at a key, the only boundary a stateful
// decoder can cross. Non-media packets always pass.
func commitAndFilterRung(sub *Subscriber, fid frameID, frag0 bool,
	events *frametrace.EventRing, switches *atomic.Int64, tel *telemetry.Counter) bool {
	if !fid.media {
		return true
	}
	cur := sub.curRung.Load()
	if tgt := sub.targetRung.Load(); tgt != cur && fid.key && frag0 {
		sub.prevRung.Store(cur)
		sub.switchSeq.Store(fid.seq)
		sub.curRung.Store(tgt)
		sub.switches.Add(1)
		switches.Add(1)
		tel.Inc()
		events.Add(frametrace.EvRungSwitch, fid.stream, fid.seq, sub.id,
			frametrace.RungSwitchVal(uint8(cur), uint8(tgt), sub.selREMB.Load()))
		cur = tgt
	}
	return uint32(fid.rung) == cur
}

// subSnapshot is the immutable subscriber set; the hot path reads it with
// one atomic load. byKey serves the feedback path's per-subscriber lookups
// (pose gating, REMB depth retargeting) without a scan.
type subSnapshot struct {
	subs    []*Subscriber
	byKey   map[Key]*Subscriber
	primary *Subscriber
}

// stealPoll bounds how long an idle writer worker waits before re-scanning
// other shards' ready lists (its own shard wakes it immediately via the
// shard notify channel; stealing is the backstop).
const stealPoll = 500 * time.Microsecond

// Router fans one sender's media out to subscribers and aggregates their
// feedback. RouteMedia may be called concurrently from multiple ingest
// loops (one per reuseport socket); RouteFeedback must be called from a
// single routing goroutine. Membership and Stats are safe from any
// goroutine.
type Router struct {
	cfg      Config
	out      Writer
	batchOut BatchWriter // non-nil when out implements BatchWriter
	sender   net.Addr

	shards []*shard
	pools  []*BufPool

	snap      atomic.Pointer[subSnapshot]
	mu        sync.Mutex // membership changes (copy-on-write)
	ingestWg  sync.WaitGroup
	writerWg  sync.WaitGroup
	liveWg    sync.WaitGroup
	closedCh  chan struct{}
	closeOnce sync.Once

	// Retransmission caches: one per shard (owned by shard.retx, filled by
	// its ingest goroutine) or a single router-held cache in Sequential
	// mode. retxSeq is nil when the cache is disabled or the plane is
	// sharded.
	retxSeq *retxCache
	retxOn  bool

	// Feedback aggregation state; fbMu serializes the routing goroutine
	// with Unsubscribe's REMB eviction.
	fbMu        sync.Mutex
	remb        *rembMin
	nacks       *nackCoalescer
	pli         pliGate
	lastREMBFwd int64
	lastREMBMin float64
	rembSent    bool
	rembScratch [9]byte
	ctlSeq      atomic.Uint64
	subSeq      atomic.Int32 // next subscriber id

	// Quality-ladder state. rungBytes accumulates wire bytes per rung on
	// the media hot path (one atomic add per packet); the fbMu-guarded rate
	// estimator folds the deltas into per-rung EWMA bitrates at REMB cadence
	// and the selector assigns each subscriber the best rung its estimate
	// affords. ladderSeen latches once any rung > 0 is observed — until
	// then the stream is single-rung and every path behaves as before.
	ladderSeen   atomic.Bool
	rungSwitches atomic.Int64
	rungBytes    [transport.MaxRungs]atomic.Int64
	rungRate     [transport.MaxRungs]float64 // fbMu
	rungLastByte [transport.MaxRungs]int64   // fbMu
	rungRateNs   int64                       // fbMu

	mediaPkts     atomic.Int64
	fanoutPkts    atomic.Int64
	pliFwd        atomic.Int64
	pliSuppressed atomic.Int64
	nackFwd       atomic.Int64
	nackCoalesced atomic.Int64
	rembFwd       atomic.Int64
	poseFwd       atomic.Int64
	retxHits      atomic.Int64
	retxMisses    atomic.Int64
	liveEvicted   atomic.Int64

	telMedia, telFanout, telDrops      *telemetry.Counter
	telPLIFwd, telPLISup               *telemetry.Counter
	telNACKFwd, telNACKSup, telREMB    *telemetry.Counter
	telRetxHit, telRetxMiss            *telemetry.Counter
	telRetxEvict, telLiveEvict         *telemetry.Counter
	telSubs, telDepthMax, telRetxCache *telemetry.Gauge
	telBatch                           *telemetry.Histogram
	telRungSwitch                      *telemetry.Counter
	telRungSubs                        [transport.MaxRungs]*telemetry.Gauge
}

// Rung-selection policy. A rung is affordable when its measured bitrate
// fits inside the subscriber's REMB with rungDownHeadroom to spare; moving
// back up to a more expensive rung additionally requires rungUpHeadroom
// (hysteresis, so an estimate hovering at a rung's cost does not flap).
// Rates refresh at most every rungRateMinInterval and blend with
// rungRateAlpha.
const (
	rungDownHeadroom    = 0.9
	rungUpHeadroom      = 0.75
	rungRateMinInterval = 50 * time.Millisecond
	rungRateAlpha       = 0.5
)

// pliWire is the one-byte PLI the router originates when a subscriber is
// reassigned to a cheaper rung mid-GOP: the switch commits at the next key
// frame, so the downswitch rides the existing PLI path to get one quickly.
var pliWire = []byte{transport.FBPLI}

// NewRouter builds a router writing through out toward the given sender.
// The sharded plane's ingest and writer goroutines start immediately (none
// in Sequential mode) and stop at Close.
func NewRouter(out Writer, sender net.Addr, cfg Config) *Router {
	cfg.fill()
	r := &Router{
		cfg:      cfg,
		out:      out,
		sender:   sender,
		remb:     newREMBMin(),
		nacks:    newNACKCoalescer(cfg.NACKWindow.Nanoseconds()),
		closedCh: make(chan struct{}),
	}
	r.batchOut, _ = out.(BatchWriter)
	r.pli.window = cfg.PLIWindow.Nanoseconds()
	r.snap.Store(&subSnapshot{byKey: map[Key]*Subscriber{}})
	reg := cfg.Telemetry
	r.telMedia = reg.Counter("livo_relay_media_packets_total")
	r.telFanout = reg.Counter("livo_relay_fanout_packets_total")
	r.telDrops = reg.Counter("livo_relay_drops_total")
	r.telPLIFwd = reg.Counter("livo_relay_pli_forwarded_total")
	r.telPLISup = reg.Counter("livo_relay_pli_suppressed_total")
	r.telNACKFwd = reg.Counter("livo_relay_nack_forwarded_total")
	r.telNACKSup = reg.Counter("livo_relay_nack_coalesced_total")
	r.telREMB = reg.Counter("livo_relay_remb_forwarded_total")
	r.telRetxHit = reg.Counter("livo_relay_retx_hits_total")
	r.telRetxMiss = reg.Counter("livo_relay_retx_misses_total")
	r.telRetxEvict = reg.Counter("livo_relay_retx_evicted_total")
	r.telLiveEvict = reg.Counter("livo_relay_liveness_evictions_total")
	r.telSubs = reg.Gauge("livo_relay_subscribers")
	r.telDepthMax = reg.Gauge("livo_relay_queue_depth_max")
	r.telRetxCache = reg.Gauge("livo_relay_retx_cached")
	r.telBatch = reg.Histogram("livo_relay_shard_batch_size", []float64{1, 2, 4, 8, 16, 32})
	r.telRungSwitch = reg.Counter("livo_relay_rung_switches_total")
	for i := range r.telRungSubs {
		r.telRungSubs[i] = reg.Gauge(fmt.Sprintf(`livo_relay_rung_subscribers{rung="%d"}`, i))
	}
	r.retxOn = !cfg.DisableRetxCache

	if cfg.Sequential {
		r.pools = []*BufPool{NewBufPool(cfg.BufClass)}
		if r.retxOn {
			r.retxSeq = newRetxCache(cfg.RetxCachePackets, cfg.RetxCacheAge.Nanoseconds(), r.telRetxEvict)
		}
		r.startLiveness()
		return r
	}
	// Each shard's cache share; floored so a many-shard router still holds
	// a useful window per shard.
	retxPerShard := cfg.RetxCachePackets / cfg.Shards
	if retxPerShard < 64 {
		retxPerShard = 64
	}
	r.shards = make([]*shard, cfg.Shards)
	r.pools = make([]*BufPool, cfg.Shards)
	for i := range r.shards {
		r.pools[i] = NewBufPool(cfg.BufClass)
		r.shards[i] = newShard(i, r.pools[i],
			reg.Counter(fmt.Sprintf("livo_relay_shard_%d_routed_total", i)),
			reg.Counter(fmt.Sprintf("livo_relay_shard_%d_stolen_total", i)))
		r.shards[i].trace = cfg.Trace
		r.shards[i].events = cfg.Events
		r.shards[i].rungSwitches = &r.rungSwitches
		r.shards[i].telRungSwitch = r.telRungSwitch
		r.shards[i].ladderSeen = &r.ladderSeen
		if r.retxOn {
			r.shards[i].retx = newRetxCache(retxPerShard, cfg.RetxCacheAge.Nanoseconds(), r.telRetxEvict)
			r.shards[i].now = r.now
		}
	}
	r.ingestWg.Add(len(r.shards))
	for _, s := range r.shards {
		go s.runIngest(&r.ingestWg)
	}
	for i := range r.shards {
		r.writerWg.Add(cfg.WritersPerShard)
		for w := 0; w < cfg.WritersPerShard; w++ {
			go r.runWriter(i)
		}
	}
	r.startLiveness()
	return r
}

// startLiveness launches the liveness sweep when a silence window is
// configured.
func (r *Router) startLiveness() {
	if r.cfg.SilenceWindow <= 0 {
		return
	}
	r.liveWg.Add(1)
	go r.runLiveness()
}

// Pool returns the shard-0 packet-buffer pool (a single relay read loop
// loads inbound datagrams through it); multi-socket ingest loops should
// spread across ShardPool.
func (r *Router) Pool() *BufPool { return r.pools[0] }

// ShardPool returns shard i's buffer pool (reuseport-style ingest: each
// socket's read loop loads through its own shard's pool, so pool locks
// never contend across cores).
func (r *Router) ShardPool(i int) *BufPool { return r.pools[i%len(r.pools)] }

// Shards returns the shard count (1 in Sequential mode).
func (r *Router) Shards() int {
	if r.cfg.Sequential {
		return 1
	}
	return len(r.shards)
}

// Sender returns the sender address the router forwards feedback to.
func (r *Router) Sender() net.Addr { return r.sender }

func (r *Router) now() int64 {
	if r.cfg.Now != nil {
		return r.cfg.Now().UnixNano()
	}
	return time.Now().UnixNano()
}

// Subscribe adds a receiver (idempotent by canonical address key). The
// first subscriber becomes the primary viewer whose poses drive culling.
// The subscriber lands on the shard its address hashes to.
func (r *Router) Subscribe(addr net.Addr) {
	k := KeyOf(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	if _, ok := cur.byKey[k]; ok {
		return
	}
	shardIdx := 0
	if len(r.shards) > 0 {
		shardIdx = int(k.hash() % uint64(len(r.shards)))
	}
	sub := &Subscriber{
		addr:  addr,
		key:   k,
		id:    r.subSeq.Add(1) - 1,
		shard: shardIdx,
		q:     newSubQueue(addr, r.cfg.QueueDepth, r.cfg.MinQueueDepth, r.cfg.DepthWindow, r.telDrops),
	}
	sub.q.sub = sub.id
	sub.q.events = r.cfg.Events
	sub.lastActive.Store(r.now())
	if len(r.shards) > 0 {
		sub.q.shard = r.shards[shardIdx]
	}
	next := &subSnapshot{
		subs:    make([]*Subscriber, 0, len(cur.subs)+1),
		byKey:   make(map[Key]*Subscriber, len(cur.subs)+1),
		primary: cur.primary,
	}
	next.subs = append(append(next.subs, cur.subs...), sub)
	for _, s := range next.subs {
		next.byKey[s.key] = s
	}
	if next.primary == nil {
		next.primary = sub
	}
	r.snap.Store(next)
	r.telSubs.SetInt(int64(len(next.subs)))
	r.storePartitionLocked(shardIdx, next)
}

// storePartitionLocked rebuilds shard shardIdx's partition snapshot from
// the global snapshot (r.mu held).
func (r *Router) storePartitionLocked(shardIdx int, snap *subSnapshot) {
	if len(r.shards) == 0 {
		return
	}
	part := make([]*Subscriber, 0, 1+len(snap.subs)/len(r.shards))
	for _, s := range snap.subs {
		if s.shard == shardIdx {
			part = append(part, s)
		}
	}
	r.shards[shardIdx].subs.Store(&part)
}

// Unsubscribe removes a receiver: it leaves its shard's partition, its
// queued buffers are released (a batch already popped by a writer finishes
// its write, then the queue idles), its REMB entry is evicted (the
// forwarded minimum may rise), and — if it was the primary viewer — the
// oldest remaining subscriber becomes primary. Reports whether the address
// was subscribed.
func (r *Router) Unsubscribe(addr net.Addr) bool {
	k := KeyOf(addr)
	r.mu.Lock()
	cur := r.snap.Load()
	removed, ok := cur.byKey[k]
	if !ok {
		r.mu.Unlock()
		return false
	}
	next := &subSnapshot{
		subs:    make([]*Subscriber, 0, len(cur.subs)-1),
		byKey:   make(map[Key]*Subscriber, len(cur.subs)-1),
		primary: cur.primary,
	}
	for _, s := range cur.subs {
		if s != removed {
			next.subs = append(next.subs, s)
			next.byKey[s.key] = s
		}
	}
	if cur.primary == removed {
		next.primary = nil
		if len(next.subs) > 0 {
			next.primary = next.subs[0]
		}
	}
	r.snap.Store(next)
	r.telSubs.SetInt(int64(len(next.subs)))
	r.storePartitionLocked(removed.shard, next)
	r.mu.Unlock()

	removed.q.Close()
	r.fbMu.Lock()
	r.remb.Remove(k)
	r.fbMu.Unlock()
	return true
}

// Subscribers returns the current subscriber count.
func (r *Router) Subscribers() int { return len(r.snap.Load().subs) }

// Primary returns the current primary viewer's address, or nil.
func (r *Router) Primary() net.Addr {
	if p := r.snap.Load().primary; p != nil {
		return p.addr
	}
	return nil
}

// FromSender reports whether addr is the media sender (allocation-free for
// UDP addresses).
func (r *Router) FromSender(addr net.Addr) bool { return KeyOf(addr) == KeyOf(r.sender) }

// frameIDOf classifies a wire packet for the drop policy. Media packets
// (magic-prefixed transport header) group by stream+sequence and carry the
// key-frame flag; anything else is its own droppable unit.
func (r *Router) frameIDOf(b []byte) frameID {
	if len(b) >= 11 && b[0] == transport.MediaMagic {
		return frameID{
			media:  true,
			stream: b[1],
			seq:    binary.BigEndian.Uint32(b[2:6]),
			rung:   (b[10] & transport.FlagRungMask) >> transport.FlagRungShift,
			key:    b[10]&1 != 0,
		}
	}
	return frameID{ctl: r.ctlSeq.Add(1)}
}

// mediaKeyFlag reports whether a wire packet is a key-frame media packet
// (flags byte at magic+9, low bit — see transport.Packet.Marshal).
func mediaKeyFlag(b []byte) bool {
	return len(b) >= 11 && b[0] == transport.MediaMagic && b[10]&1 != 0
}

// RouteMedia fans one sender packet out to every subscriber: one descriptor
// per populated shard, each shard enqueuing references onto its own
// partition's queues. It takes ownership of the caller's buffer reference
// and is safe to call concurrently from multiple ingest loops.
func (r *Router) RouteMedia(buf *PacketBuf) {
	r.mediaPkts.Add(1)
	r.telMedia.Inc()
	b := buf.Bytes()
	fid := r.frameIDOf(b)
	// frag0 marks a frame's first data fragment: the trace stamp site and
	// the rung-switch commit point.
	_, _, frag0 := transport.FirstFragment(b)
	if fid.media && (fid.rung > 0 || r.ladderSeen.Load()) {
		// Per-rung byte accounting for the REMB rung selector; one atomic
		// add per packet, folded into EWMA bitrates off the hot path.
		// Legacy rung-0-only traffic skips the add (a shared-cacheline
		// write) for the cost of one read-only load; the estimator warms
		// up from live traffic within an EWMA interval once a ladder
		// appears.
		if !r.ladderSeen.Load() {
			r.ladderSeen.Store(true)
		}
		r.rungBytes[fid.rung].Add(int64(len(b)))
	}
	// One branch per packet when tracing is off; when on, each frame's
	// first fragment is stamped at ingest and flagged so the shard and
	// queue hops stamp the same fragment downstream.
	first := false
	if r.cfg.Trace != nil && frag0 {
		first = true
		r.cfg.Trace.StampNow(frametrace.HopRelayIngest, fid.stream, fid.seq, frametrace.NoSub)
	}
	if mediaKeyFlag(b) {
		// A key frame is on its way to everyone: the PLI refresh cycle is
		// complete, mirror the receivers' PLITracker.OnKeyFrame.
		r.fbMu.Lock()
		r.pli.OnKeyFrame()
		r.fbMu.Unlock()
	}
	if r.cfg.Sequential {
		if r.retxSeq != nil {
			if rk, ok := retxKeyOf(b); ok {
				r.retxSeq.Insert(rk, buf, r.now())
			}
		}
		r.routeSequential(b, fid, frag0)
		buf.Release()
		return
	}
	// A cacheable packet is assigned an owner shard whose ingest goroutine
	// inserts it into that shard's retransmission cache — cache bookkeeping
	// rides the existing fan-out hop instead of the producer hot path. The
	// owner gets the descriptor even when its subscriber partition is empty.
	owner := -1
	var rk nackKey
	if r.retxOn && fid.media {
		if k, ok := retxKeyOf(b); ok {
			rk = k
			owner = retxShard(k, len(r.shards))
		}
	}
	snap := r.snap.Load()
	if len(snap.subs) == 0 && owner < 0 {
		buf.Release()
		return
	}
	for i, s := range r.shards {
		if s.subCount() == 0 && i != owner {
			continue
		}
		buf.Retain()
		if !s.push(ingestEntry{buf: buf, fid: fid, rk: rk, cache: i == owner, first: first, frag0: frag0}) {
			buf.Release()
		}
	}
	r.fanoutPkts.Add(int64(len(snap.subs)))
	r.telFanout.Add(int64(len(snap.subs)))
	buf.Release()
}

// runWriter is one writer worker homed on shard home: it drains ready
// queues in WriteBatch-sized pops, preferring its own shard and stealing
// from the others when idle. A stalled subscriber parks exactly one worker
// (the queue is owned while draining); the rest keep the healthy queues
// flowing.
func (r *Router) runWriter(home int) {
	defer r.writerWg.Done()
	var bufs [writerBatch]*PacketBuf
	var pkts [writerBatch][]byte
	hs := r.shards[home]
	timer := time.NewTimer(stealPoll)
	defer timer.Stop()
	for {
		q := hs.popReady()
		if q == nil {
			for i := 1; i < len(r.shards); i++ {
				if q = r.shards[(home+i)%len(r.shards)].popReady(); q != nil {
					hs.stolen.Add(1)
					hs.telStolen.Inc()
					break
				}
			}
		}
		if q == nil {
			select {
			case <-r.closedCh:
				return
			default:
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(stealPoll)
			select {
			case <-hs.notify:
			case <-timer.C:
			case <-r.closedCh:
				return
			}
			continue
		}
		n := q.popBatch(bufs[:], pkts[:])
		if n > 0 {
			if tr := r.cfg.Trace; tr != nil {
				// Stamp queue exit before the write so queue_wait measures
				// ring residency alone, not the batch syscall.
				for i := 0; i < n; i++ {
					if stream, seq, ok := transport.FirstFragment(pkts[i]); ok {
						tr.StampNow(frametrace.HopSubDrain, stream, seq, q.sub)
					}
				}
			}
			r.writeBatch(pkts[:n], q.addr)
			for i := 0; i < n; i++ {
				bufs[i].Release()
				bufs[i] = nil
				pkts[i] = nil
			}
			q.sent.Add(int64(n))
			r.telBatch.Observe(float64(n))
		}
		q.finishDrain()
	}
}

// writeBatch sends one drained batch to a subscriber: a single
// sendmmsg-shaped call when the conn supports it, per-packet WriteTo
// otherwise.
func (r *Router) writeBatch(pkts [][]byte, addr net.Addr) {
	if r.batchOut != nil {
		_, _ = r.batchOut.WriteBatch(pkts, addr)
		return
	}
	for _, p := range pkts {
		_, _ = r.out.WriteTo(p, addr)
	}
}

// routeSequential is the pre-change data plane, preserved for the A/B
// benchmark: snapshot the subscriber list with a fresh allocation, then
// write to each subscriber in turn, blocking the whole relay on the
// slowest one. The rung filter applies here too, so ladder behavior is
// identical across planes.
func (r *Router) routeSequential(b []byte, fid frameID, frag0 bool) {
	r.mu.Lock()
	snap := r.snap.Load()
	subs := make([]*Subscriber, 0, len(snap.subs))
	subs = append(subs, snap.subs...)
	r.mu.Unlock()
	ladder := r.ladderSeen.Load()
	for _, s := range subs {
		if ladder && !commitAndFilterRung(s, fid, frag0, r.cfg.Events, &r.rungSwitches, r.telRungSwitch) {
			continue
		}
		_, _ = r.out.WriteTo(b, s.addr)
	}
	r.fanoutPkts.Add(int64(len(subs)))
	r.telFanout.Add(int64(len(subs)))
}

// RouteFeedback aggregates one reverse-path message from a subscriber.
func (r *Router) RouteFeedback(b []byte, from net.Addr) {
	if len(b) == 0 {
		return
	}
	k := KeyOf(from)
	snap := r.snap.Load()
	sub := snap.byKey[k]
	if sub != nil {
		// Any reverse-path packet proves the subscriber alive.
		sub.lastActive.Store(r.now())
	}
	switch b[0] {
	case transport.FBREMB:
		bps, err := transport.UnmarshalREMB(b)
		if err != nil {
			return
		}
		// The subscriber's own queue tracks its bandwidth-delay product:
		// ring depth follows the REMB estimate instead of a fixed 1024.
		if sub != nil {
			sub.q.UpdateBandwidth(bps)
		}
		now := r.now()
		ladder := r.ladderSeen.Load()
		r.fbMu.Lock()
		min := r.remb.Update(k, bps)
		target := min
		var downswitch bool
		if ladder {
			r.updateRungRatesLocked(now)
			downswitch = r.selectRungLocked(sub, bps)
			// With a ladder the sender budget follows the *fastest* class:
			// rung 0 must stay worth watching for it, while slower classes
			// ride the cheaper rungs instead of dragging everyone down.
			target = r.remb.Max()
		}
		fwd := !r.rembSent || target != r.lastREMBMin || now-r.lastREMBFwd >= r.cfg.REMBInterval.Nanoseconds()
		var wire []byte
		if fwd {
			r.rembSent = true
			r.lastREMBMin = target
			r.lastREMBFwd = now
			wire = transport.AppendREMB(r.rembScratch[:0], target)
		}
		r.fbMu.Unlock()
		if fwd {
			r.rembFwd.Add(1)
			r.telREMB.Inc()
			r.cfg.Events.Add(frametrace.EvREMB, 0, 0, subID(sub), int64(target))
			_, _ = r.out.WriteTo(wire, r.sender)
		}
		if downswitch {
			// The subscriber can no longer afford its rung: the switch only
			// commits at a key frame, so ride the PLI path to pull one
			// forward instead of waiting out the GOP.
			r.fbMu.Lock()
			pliFwd := r.pli.ShouldForward(now)
			r.fbMu.Unlock()
			if pliFwd {
				r.pliFwd.Add(1)
				r.telPLIFwd.Inc()
				r.cfg.Events.Add(frametrace.EvPLI, 0, 0, subID(sub), 0)
				_, _ = r.out.WriteTo(pliWire, r.sender)
			} else {
				r.pliSuppressed.Add(1)
				r.telPLISup.Inc()
			}
		}
	case transport.FBPose:
		// Only the primary viewer's poses reach the sender: culling is
		// per-viewer state, so the sender culls for the primary and the
		// other subscribers get the same (conservatively larger) view.
		if sub != nil && sub == snap.primary {
			r.poseFwd.Add(1)
			_, _ = r.out.WriteTo(b, r.sender)
		}
	case transport.FBNACK:
		stream, seq, frag, err := transport.UnmarshalNACK(b)
		if err != nil {
			return
		}
		// The wire NACK has no rung field; the requester's loss is in
		// whichever rung it was being served for that sequence.
		var rung uint8
		if sub != nil {
			rung = sub.rungForSeq(seq)
		}
		nk := nackKey{seq: seq, frag: frag, stream: stream, rung: rung}
		// Self-healing path: a cache hit retransmits to the requester only
		// and the sender never sees the loss. Misses (expired, evicted, or
		// never routed here) escalate through the coalescer as before.
		if r.serveRetx(nk, sub, from) {
			r.retxHits.Add(1)
			r.telRetxHit.Inc()
			r.cfg.Events.Add(frametrace.EvRetxHit, stream, seq, subID(sub), int64(frag))
			return
		}
		if r.retxOn {
			r.retxMisses.Add(1)
			r.telRetxMiss.Inc()
			r.cfg.Events.Add(frametrace.EvRetxMiss, stream, seq, subID(sub), int64(frag))
		}
		now := r.now()
		r.fbMu.Lock()
		fwd := r.nacks.ShouldForward(nk, now)
		r.fbMu.Unlock()
		if !fwd {
			r.nackCoalesced.Add(1)
			r.telNACKSup.Inc()
			return
		}
		r.nackFwd.Add(1)
		r.telNACKFwd.Inc()
		_, _ = r.out.WriteTo(b, r.sender)
	case transport.FBPLI:
		now := r.now()
		r.fbMu.Lock()
		fwd := r.pli.ShouldForward(now)
		r.fbMu.Unlock()
		if !fwd {
			r.pliSuppressed.Add(1)
			r.telPLISup.Inc()
			return
		}
		r.pliFwd.Add(1)
		r.telPLIFwd.Inc()
		r.cfg.Events.Add(frametrace.EvPLI, 0, 0, subID(sub), 0)
		_, _ = r.out.WriteTo(b, r.sender)
	default:
		// Pings, pongs, unknown types: forward to the sender.
		_, _ = r.out.WriteTo(b, r.sender)
	}
}

// updateRungRatesLocked folds the hot path's per-rung byte counters into
// EWMA bitrate estimates (fbMu held). Called at REMB cadence; refreshes at
// most every rungRateMinInterval so a REMB burst cannot alias the rates.
func (r *Router) updateRungRatesLocked(now int64) {
	if r.rungRateNs == 0 {
		r.rungRateNs = now
		for i := range r.rungLastByte {
			r.rungLastByte[i] = r.rungBytes[i].Load()
		}
		return
	}
	dt := now - r.rungRateNs
	if dt < rungRateMinInterval.Nanoseconds() {
		return
	}
	sec := float64(dt) / 1e9
	for i := range r.rungRate {
		total := r.rungBytes[i].Load()
		inst := float64(total-r.rungLastByte[i]) * 8 / sec
		r.rungLastByte[i] = total
		if r.rungRate[i] == 0 {
			r.rungRate[i] = inst
		} else {
			r.rungRate[i] += rungRateAlpha * (inst - r.rungRate[i])
		}
	}
	r.rungRateNs = now
}

// selectRungLocked assigns sub the best rung its REMB estimate affords
// (fbMu held): the lowest rung id — rungs are ordered best-first — whose
// measured bitrate fits inside bps with headroom, falling back to the
// cheapest rung ever observed when nothing fits. Moving back up to a more
// expensive rung demands extra headroom (hysteresis). The return value
// reports a *downswitch* — a reassignment to a cheaper rung, which the
// caller accelerates with a PLI; upswitches wait for the GOP's next
// periodic key frame. The assignment itself commits in the subscriber's
// shard at a key-frame boundary (commitAndFilterRung).
func (r *Router) selectRungLocked(sub *Subscriber, bps float64) (downswitch bool) {
	if sub == nil {
		return false
	}
	cur := sub.targetRung.Load()
	best, cheapest := -1, -1
	for i := 0; i < transport.MaxRungs; i++ {
		if r.rungBytes[i].Load() == 0 {
			continue
		}
		cheapest = i
		if best < 0 && r.rungRate[i] <= bps*rungDownHeadroom {
			best = i
		}
	}
	if best < 0 {
		best = cheapest
	}
	if best < 0 || uint32(best) == cur {
		return false
	}
	if uint32(best) < cur && r.rungRate[best] > bps*rungUpHeadroom {
		return false // not comfortably affordable yet: hold the cheaper rung
	}
	sub.selREMB.Store(int64(bps))
	sub.targetRung.Store(uint32(best))
	return uint32(best) > cur
}

// serveRetx answers one NACK from the retransmission cache, reporting
// whether it was served locally. A hit is retransmitted to the requester
// only — through its queue on the sharded plane (so the drop policy and
// pacing still apply), or a direct write in Sequential mode / for a
// requester that is not a subscriber.
func (r *Router) serveRetx(k nackKey, sub *Subscriber, from net.Addr) bool {
	if !r.retxOn {
		return false
	}
	now := r.now()
	var buf *PacketBuf
	if r.retxSeq != nil {
		buf = r.retxSeq.Lookup(k, now)
	} else if len(r.shards) > 0 {
		buf = r.shards[retxShard(k, len(r.shards))].retx.Lookup(k, now)
	}
	if buf == nil {
		return false
	}
	if sub != nil && !r.cfg.Sequential {
		// Classify before Enqueue: on success the queue owns our reference
		// and a writer may release it at any moment.
		fid := r.frameIDOf(buf.Bytes())
		if sub.q.Enqueue(buf, fid) {
			sub.q.retx.Add(1)
		} else {
			buf.Release()
		}
	} else {
		_, _ = r.out.WriteTo(buf.Bytes(), from)
		buf.Release()
	}
	return true
}

// EvictStale removes every subscriber whose reverse path has been silent
// for at least the configured SilenceWindow, returning how many were
// evicted. Each eviction is a full Unsubscribe — queue teardown, REMB
// entry release (a vanished receiver's stale estimate no longer pins the
// forwarded minimum), primary repoint — plus the OnEvict hook. The
// background sweep calls this on a SilenceWindow/4 cadence; tests with a
// fake clock may call it directly.
func (r *Router) EvictStale() int {
	if r.cfg.SilenceWindow <= 0 {
		return 0
	}
	now := r.now()
	cutoff := now - r.cfg.SilenceWindow.Nanoseconds()
	var stale []*Subscriber
	for _, s := range r.snap.Load().subs {
		if s.lastActive.Load() < cutoff {
			stale = append(stale, s)
		}
	}
	n := 0
	for _, s := range stale {
		if r.Unsubscribe(s.addr) {
			n++
			r.liveEvicted.Add(1)
			r.telLiveEvict.Inc()
			r.cfg.Events.Add(frametrace.EvLivenessEvict, 0, 0, s.id, now-s.lastActive.Load())
			if r.cfg.OnEvict != nil {
				r.cfg.OnEvict(s.addr)
			}
		}
	}
	return n
}

// runLiveness is the background liveness sweep (SilenceWindow > 0).
func (r *Router) runLiveness() {
	defer r.liveWg.Done()
	tick := time.NewTicker(r.cfg.SilenceWindow / 4)
	defer tick.Stop()
	for {
		select {
		case <-r.closedCh:
			return
		case <-tick.C:
			r.EvictStale()
		}
	}
}

// Close stops the shard ingest goroutines and writer workers and releases
// queued buffers. Media routed after Close is dropped at the (closed)
// shards and queues.
func (r *Router) Close() { r.closeOnce.Do(r.doClose) }

func (r *Router) doClose() {
	r.mu.Lock()
	snap := r.snap.Load()
	r.snap.Store(&subSnapshot{byKey: map[Key]*Subscriber{}})
	for i := range r.shards {
		empty := []*Subscriber{}
		r.shards[i].subs.Store(&empty)
	}
	r.telSubs.SetInt(0)
	r.mu.Unlock()

	// Stop ingest first (no new queue enqueues or cache inserts), then
	// release the retransmission caches and queue backlogs, then let the
	// writers and the liveness sweep run dry and exit.
	for _, s := range r.shards {
		s.close()
	}
	r.ingestWg.Wait()
	for _, s := range r.shards {
		if s.retx != nil {
			s.retx.close()
		}
	}
	if r.retxSeq != nil {
		r.retxSeq.close()
	}
	for _, s := range snap.subs {
		s.q.Close()
	}
	close(r.closedCh)
	r.writerWg.Wait()
	r.liveWg.Wait()
}

// WaitIdle blocks until every shard ring and subscriber queue is drained
// (or the timeout elapses), returning whether it drained. Benchmarks use it
// to charge queued-mode wall time with delivery, not just enqueue.
func (r *Router) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, s := range r.shards {
			if !s.idle() {
				idle = false
				break
			}
		}
		if idle {
			for _, s := range r.snap.Load().subs {
				if !s.q.Idle() {
					idle = false
					break
				}
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ShardStats is a point-in-time snapshot of one shard.
type ShardStats struct {
	ID          int
	Subscribers int
	Routed      int64 // packets fanned out by this shard's ingest worker
	Stolen      int64 // ready queues this shard's workers stole from peers
}

// Stats is a point-in-time snapshot of the router.
type Stats struct {
	Subscribers   int
	MediaPackets  int64
	FanoutPackets int64
	Drops         int64
	MaxDepth      int64
	PLIForwarded  int64
	PLISuppressed int64
	NACKForwarded int64
	NACKCoalesced int64
	REMBForwarded int64
	PoseForwarded int64

	// Self-healing layer: NACKs served from the relay's retransmission
	// cache vs escalated (RetxMisses feeds the coalescer path), cache
	// occupancy/lifetime eviction counts, and liveness evictions.
	RetxHits        int64
	RetxMisses      int64
	RetxCached      int64
	RetxEvicted     int64
	LivenessEvicted int64
	// RungSwitches counts committed per-subscriber rung switches;
	// RungSubscribers is how many subscribers currently sit on each rung.
	RungSwitches    int64
	RungSubscribers [transport.MaxRungs]int
	// PoolLive sums Live() over every shard pool — the leak invariant
	// (0 once every buffer reference, cached ones included, is released).
	PoolLive int64

	Subs   []SubStats
	Shards []ShardStats
}

// Stats snapshots the router, its shards, and per-subscriber queues, and
// refreshes the livo_relay_queue_depth_max gauge (the hot path never
// touches it).
func (r *Router) Stats() Stats {
	snap := r.snap.Load()
	st := Stats{
		Subscribers:   len(snap.subs),
		MediaPackets:  r.mediaPkts.Load(),
		FanoutPackets: r.fanoutPkts.Load(),
		PLIForwarded:  r.pliFwd.Load(),
		PLISuppressed: r.pliSuppressed.Load(),
		NACKForwarded: r.nackFwd.Load(),
		NACKCoalesced: r.nackCoalesced.Load(),
		REMBForwarded: r.rembFwd.Load(),
		PoseForwarded: r.poseFwd.Load(),

		RetxHits:        r.retxHits.Load(),
		RetxMisses:      r.retxMisses.Load(),
		LivenessEvicted: r.liveEvicted.Load(),
		RungSwitches:    r.rungSwitches.Load(),

		Subs:   make([]SubStats, 0, len(snap.subs)),
		Shards: make([]ShardStats, 0, len(r.shards)),
	}
	for _, p := range r.pools {
		st.PoolLive += p.Live()
	}
	if r.retxSeq != nil {
		size, _, ev := r.retxSeq.retxStats()
		st.RetxCached += int64(size)
		st.RetxEvicted += ev
	}
	for _, s := range r.shards {
		if s.retx != nil {
			size, _, ev := s.retx.retxStats()
			st.RetxCached += int64(size)
			st.RetxEvicted += ev
		}
	}
	r.telRetxCache.SetInt(st.RetxCached)
	now := r.now()
	for _, s := range snap.subs {
		ss := s.q.stats()
		ss.LastActiveAgeMs = float64(now-s.lastActive.Load()) / 1e6
		ss.Rung = s.Rung()
		ss.RungSwitches = s.switches.Load()
		if int(ss.Rung) < len(st.RungSubscribers) {
			st.RungSubscribers[ss.Rung]++
		}
		st.Drops += ss.Dropped
		if ss.Depth > st.MaxDepth {
			st.MaxDepth = ss.Depth
		}
		st.Subs = append(st.Subs, ss)
	}
	for i, g := range r.telRungSubs {
		g.SetInt(int64(st.RungSubscribers[i]))
	}
	for _, s := range r.shards {
		st.Shards = append(st.Shards, ShardStats{
			ID:          s.id,
			Subscribers: s.subCount(),
			Routed:      s.routed.Load(),
			Stolen:      s.stolen.Load(),
		})
	}
	r.telDepthMax.SetInt(st.MaxDepth)
	return st
}
