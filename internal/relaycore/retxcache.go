package relaycore

import (
	"sync"

	"livo/internal/telemetry"
	"livo/internal/transport"
)

// retxCache is a bounded FIFO of recently routed media packets, keyed by
// (stream, frameSeq, frag) — the same triple a NACK names — so the relay
// can serve retransmissions locally instead of escalating every loss to
// the sender (a full extra RTT plus sender load proportional to receiver
// loss). Each shard owns one cache, filled by its ingest goroutine, so
// inserts stay off the producer hot path and the cache needs only its own
// mutex (lookups come from the feedback goroutine).
//
// Entries hold a retained PacketBuf reference: Insert retains, eviction
// and close release, and Lookup retains once more on behalf of the
// caller — the pool's Live() leak invariant keeps holding through any
// interleaving of route, NACK, eviction, and shutdown.
//
// Sizing: capacity is packets, age is wall time; with the defaults
// (1024 packets / 1 s) the cache holds about one GOP of 4K media — the
// window inside which a receiver's NACK (NackAfter 15 ms, re-request
// 250 ms) can still arrive. Duplicate keys (a rare sender retransmission
// passing through) overwrite in place: the newer copy wins and the older
// slot is released immediately.
type retxCache struct {
	mu     sync.Mutex
	closed bool
	ageNs  int64

	// FIFO ring indexed by absolute insert position; idx maps a key to the
	// absolute position of its live slot, so eviction of an overwritten
	// slot never deletes a newer entry's index.
	ring    []retxSlot
	absHead int64 // absolute position of the oldest live slot
	size    int

	idx map[nackKey]int64

	inserted int64
	evicted  int64

	telEvicted *telemetry.Counter
}

type retxSlot struct {
	key   nackKey
	buf   *PacketBuf
	stamp int64 // insert time, ns
}

func newRetxCache(capacity int, ageNs int64, telEvicted *telemetry.Counter) *retxCache {
	if capacity < 1 {
		capacity = 1
	}
	return &retxCache{
		ageNs:      ageNs,
		ring:       make([]retxSlot, capacity),
		idx:        make(map[nackKey]int64, capacity),
		telEvicted: telEvicted,
	}
}

// Insert caches one media packet, retaining a reference for the cache.
// Packets older than the age bound are evicted first, then the oldest
// entry if the ring is full. No-op after close.
func (c *retxCache) Insert(k nackKey, buf *PacketBuf, now int64) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.evictLocked(now)
	if pos, ok := c.idx[k]; ok {
		// Overwrite in place: a retransmitted copy of a cached packet
		// replaces the original without consuming capacity.
		s := &c.ring[pos%int64(len(c.ring))]
		s.buf.Release()
		s.buf = buf.Retain()
		s.stamp = now
		c.mu.Unlock()
		return
	}
	if c.size == len(c.ring) {
		c.evictOldestLocked()
	}
	pos := c.absHead + int64(c.size)
	c.ring[pos%int64(len(c.ring))] = retxSlot{key: k, buf: buf.Retain(), stamp: now}
	c.idx[k] = pos
	c.size++
	c.inserted++
	c.mu.Unlock()
}

// Lookup returns the cached packet for k with a reference retained for the
// caller (who must Release it), or nil on miss / expiry / closed cache.
func (c *retxCache) Lookup(k nackKey, now int64) *PacketBuf {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	pos, ok := c.idx[k]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	s := &c.ring[pos%int64(len(c.ring))]
	if c.ageNs > 0 && now-s.stamp >= c.ageNs {
		c.mu.Unlock()
		return nil
	}
	buf := s.buf.Retain()
	c.mu.Unlock()
	return buf
}

// evictLocked releases entries older than the age bound, oldest first.
func (c *retxCache) evictLocked(now int64) {
	if c.ageNs <= 0 {
		return
	}
	for c.size > 0 {
		s := &c.ring[c.absHead%int64(len(c.ring))]
		if now-s.stamp < c.ageNs {
			return
		}
		c.evictOldestLocked()
	}
}

// evictOldestLocked releases the oldest slot. The index entry is removed
// only if it still points at this slot (an overwritten duplicate's index
// already points at the newer position).
func (c *retxCache) evictOldestLocked() {
	s := &c.ring[c.absHead%int64(len(c.ring))]
	if pos, ok := c.idx[s.key]; ok && pos == c.absHead {
		delete(c.idx, s.key)
	}
	s.buf.Release()
	*s = retxSlot{}
	c.absHead++
	c.size--
	c.evicted++
	c.telEvicted.Inc()
}

// close releases every cached reference; Insert and Lookup become no-ops.
func (c *retxCache) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for c.size > 0 {
		s := &c.ring[c.absHead%int64(len(c.ring))]
		s.buf.Release()
		*s = retxSlot{}
		c.absHead++
		c.size--
	}
	c.idx = nil
	c.mu.Unlock()
}

// retxStats is a point-in-time (size, inserted, evicted) snapshot.
func (c *retxCache) retxStats() (size int, inserted, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, c.inserted, c.evicted
}

// retxKeyOf extracts the retransmission-cache key from a wire packet.
// Only media packets are cacheable, and parity packets are excluded: they
// share the fragment index space with data fragments (see transport/fec.go),
// so caching them could answer a data NACK with a parity payload.
func retxKeyOf(b []byte) (nackKey, bool) {
	if len(b) < 11 || b[0] != transport.MediaMagic || b[10]&transport.FlagParity != 0 {
		return nackKey{}, false
	}
	return nackKey{
		seq:    uint32(b[2])<<24 | uint32(b[3])<<16 | uint32(b[4])<<8 | uint32(b[5]),
		frag:   uint16(b[6])<<8 | uint16(b[7]),
		stream: b[1],
		rung:   (b[10] & transport.FlagRungMask) >> transport.FlagRungShift,
	}, true
}

// retxShard maps a cache key to its owner shard, spreading cache memory
// and insert work across shards regardless of where subscribers hash.
func retxShard(k nackKey, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(k.seq)<<24 | uint64(k.frag)<<8 | uint64(k.stream) | uint64(k.rung)<<56
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}
