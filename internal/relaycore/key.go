package relaycore

import "net"

// Key identifies a peer address as a comparable value. The relay
// classifies every inbound packet by source address; net.Addr.String
// allocates per call, so the hot path builds a Key instead — for UDP
// addresses (the live deployment) this is allocation-free.
type Key struct {
	ip   [16]byte
	port int
	zone string
	str  string // fallback for non-UDP address types
}

// v4InV6Prefix maps 4-byte IPs into the 16-byte slot the way net.IP.To16
// does, without its allocation.
var v4InV6Prefix = [12]byte{10: 0xff, 11: 0xff}

// KeyOf builds the canonical key for an address. Two addresses that
// compare equal by String() produce equal Keys.
func KeyOf(a net.Addr) Key {
	switch u := a.(type) {
	case *net.UDPAddr:
		var k Key
		if len(u.IP) == 4 {
			copy(k.ip[:12], v4InV6Prefix[:])
			copy(k.ip[12:], u.IP)
		} else {
			copy(k.ip[:], u.IP)
		}
		k.port = u.Port
		k.zone = u.Zone
		return k
	case nil:
		return Key{}
	default:
		return Key{str: a.Network() + "|" + a.String()}
	}
}
