package relaycore

import "net"

// Key identifies a peer address as a comparable value. The relay
// classifies every inbound packet by source address; net.Addr.String
// allocates per call, so the hot path builds a Key instead — for UDP
// addresses (the live deployment) this is allocation-free.
type Key struct {
	ip   [16]byte
	port int
	zone string
	str  string // fallback for non-UDP address types
}

// v4InV6Prefix maps 4-byte IPs into the 16-byte slot the way net.IP.To16
// does, without its allocation.
var v4InV6Prefix = [12]byte{10: 0xff, 11: 0xff}

// hash folds the key FNV-1a style for shard assignment: equal Keys land on
// the same shard, and real subscriber populations (distinct ports/IPs)
// spread evenly across partitions. Raw FNV-1a is weak in its low bits
// (shard index is hash mod N, typically a small power of two, and
// consecutive ports otherwise alias onto a few shards), so a final
// avalanche step mixes the high bits down. Allocation-free.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k.ip {
		h = (h ^ uint64(b)) * prime64
	}
	h = (h ^ uint64(k.port)) * prime64
	for i := 0; i < len(k.zone); i++ {
		h = (h ^ uint64(k.zone[i])) * prime64
	}
	for i := 0; i < len(k.str); i++ {
		h = (h ^ uint64(k.str[i])) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Hash exposes the shard-steering hash: multi-socket wire shells pick a
// per-destination socket with the same avalanche mix (and the same zero
// allocations) the router uses for its subscriber partitions, so one
// subscriber's packets always leave through one socket, in order.
func (k Key) Hash() uint64 { return k.hash() }

// KeyOf builds the canonical key for an address. Two addresses that
// compare equal by String() produce equal Keys.
func KeyOf(a net.Addr) Key {
	switch u := a.(type) {
	case *net.UDPAddr:
		var k Key
		if len(u.IP) == 4 {
			copy(k.ip[:12], v4InV6Prefix[:])
			copy(k.ip[12:], u.IP)
		} else {
			copy(k.ip[:], u.IP)
		}
		k.port = u.Port
		k.zone = u.Zone
		return k
	case nil:
		return Key{}
	default:
		return Key{str: a.Network() + "|" + a.String()}
	}
}
