package relaycore

import (
	"net"
	"testing"
	"time"

	"livo/internal/frametrace"
)

// TestRouterTraceStamps routes frames through a traced sharded router and
// checks every relay hop lands in the ledger: one relay_ingest stamp per
// frame, and one shard_route stamp plus a sub_enqueue/sub_drain pair per
// frame per subscriber, in monotone order on a merged timeline.
func TestRouterTraceStamps(t *testing.T) {
	led := frametrace.NewLedger("relay", 4096)
	events := frametrace.NewEventRing(256)
	cfg := testConfig()
	cfg.Shards = 2
	cfg.Trace = led
	cfg.Events = events
	rec := newRecWriter()
	r := NewRouter(rec, senderAddr(), cfg)
	defer r.Close()

	subA, subB := udp(1), udp(2)
	r.Subscribe(subA)
	r.Subscribe(subB)

	const frames, frags = 5, 4
	pool := r.Pool()
	for f := uint32(0); f < frames; f++ {
		for g := uint16(0); g < frags; g++ {
			r.RouteMedia(pool.Load(mediaWire(1, f, g, frags, g == 0 && f == 0, []byte{byte(f)})))
		}
	}
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("router did not drain")
	}

	perHop := map[frametrace.Hop]int{}
	for _, st := range led.Recent(led.Cap()) {
		perHop[st.Hop]++
		if st.Stream != 1 {
			t.Fatalf("stamp with stream %d, want 1: %+v", st.Stream, st)
		}
	}
	// shard_route is stamped per subscriber so each merged timeline only
	// sees its own shard's stamp (the retx-cache owner's subscriber-less
	// visit stamps nothing). ingest is exact — one stamp per first
	// fragment.
	if perHop[frametrace.HopRelayIngest] != frames || perHop[frametrace.HopShardRoute] != 2*frames {
		t.Fatalf("ingest/shard stamps = %d/%d, want %d/%d",
			perHop[frametrace.HopRelayIngest], perHop[frametrace.HopShardRoute], frames, 2*frames)
	}
	if perHop[frametrace.HopSubEnqueue] != 2*frames || perHop[frametrace.HopSubDrain] != 2*frames {
		t.Fatalf("enqueue/drain stamps = %d/%d, want %d each",
			perHop[frametrace.HopSubEnqueue], perHop[frametrace.HopSubDrain], 2*frames)
	}

	// Merged per-subscriber timelines must be monotone through the relay.
	for _, sub := range []int32{0, 1} {
		c := frametrace.NewCollector()
		c.Add(led, 0)
		tls := c.Merge(sub)
		if len(tls) != frames {
			t.Fatalf("sub %d: merged %d timelines, want %d", sub, len(tls), frames)
		}
		for _, tl := range tls {
			chain := []frametrace.Hop{frametrace.HopRelayIngest, frametrace.HopShardRoute,
				frametrace.HopSubEnqueue, frametrace.HopSubDrain}
			prev := int64(-1 << 62)
			for _, h := range chain {
				ts, ok := tl.Get(h)
				if !ok {
					t.Fatalf("sub %d frame %d: hop %s missing", sub, tl.Seq, h)
				}
				if ts < prev {
					t.Fatalf("sub %d frame %d: hop %s went backwards", sub, tl.Seq, h)
				}
				prev = ts
			}
		}
	}

	// Subscriber ids surface through Stats for the /debugz/subscribers view.
	st := r.Stats()
	ids := map[int32]bool{}
	for _, ss := range st.Subs {
		ids[ss.ID] = true
		if ss.LastActiveAgeMs < 0 {
			t.Fatalf("negative last-active age: %+v", ss)
		}
	}
	if !ids[0] || !ids[1] {
		t.Fatalf("subscriber ids not assigned: %+v", st.Subs)
	}
	if events.Recorded() != 0 {
		t.Fatalf("clean run recorded %d events", events.Recorded())
	}
}

// TestQueueDropEvents forces the drop policy through all three reasons
// and checks each lands in the event ring with the right classification.
func TestQueueDropEvents(t *testing.T) {
	events := frametrace.NewEventRing(64)
	pool := NewBufPool(64)
	mk := func(seq uint32, key bool) (*PacketBuf, frameID) {
		return pool.Load([]byte{1}), frameID{media: true, stream: 1, seq: seq, key: key}
	}
	newQ := func() *SubQueue {
		q := newSubQueue(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 1}, 4, 4, 250*time.Millisecond, testCounter())
		q.sub = 7
		q.events = events
		return q
	}

	// Delta eviction: fill with deltas, the 5th enqueue evicts the oldest.
	q := newQ()
	for i := uint32(0); i < 5; i++ {
		buf, fid := mk(i, false)
		if !q.Enqueue(buf, fid) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	evs := events.Recent(10)
	if len(evs) != 1 || evs[0].Kind != frametrace.EvFrameDrop ||
		frametrace.DropReason(evs[0].Val) != frametrace.DropDelta || evs[0].Seq != 0 || evs[0].Sub != 7 {
		t.Fatalf("delta eviction event: %+v", evs)
	}
	q.Close()

	// Key-for-key eviction and delta rejection against an all-key backlog.
	q = newQ()
	for i := uint32(10); i < 14; i++ {
		buf, fid := mk(i, true)
		q.Enqueue(buf, fid)
	}
	if buf, fid := mk(20, false); q.Enqueue(buf, fid) {
		t.Fatal("delta admitted over an all-key backlog")
	} else {
		buf.Release()
	}
	if buf, fid := mk(21, true); !q.Enqueue(buf, fid) {
		t.Fatal("incoming key rejected")
	}
	evs = events.Recent(10)
	last, prev := evs[len(evs)-1], evs[len(evs)-2]
	if frametrace.DropReason(prev.Val) != frametrace.DropReject || prev.Seq != 20 {
		t.Fatalf("reject event: %+v", prev)
	}
	if frametrace.DropReason(last.Val) != frametrace.DropKey || last.Seq != 10 {
		t.Fatalf("key eviction event: %+v", last)
	}
	q.Close()
	if live := pool.Live(); live != 0 {
		t.Fatalf("pool leak: %d live buffers", live)
	}
}
