package relaycore

import (
	"net"
	"sync"
)

// recWriter records writes per destination (thread-safe). It implements
// only Writer, so routers built over it exercise the per-packet WriteBatch
// fallback.
type recWriter struct {
	mu     sync.Mutex
	writes map[string][][]byte
}

func newRecWriter() *recWriter { return &recWriter{writes: make(map[string][][]byte)} }

func (w *recWriter) WriteTo(p []byte, a net.Addr) (int, error) {
	cp := append([]byte(nil), p...)
	w.mu.Lock()
	w.writes[a.String()] = append(w.writes[a.String()], cp)
	w.mu.Unlock()
	return len(p), nil
}

func (w *recWriter) count(a net.Addr) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.writes[a.String()])
}

func (w *recWriter) payloads(a net.Addr) [][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([][]byte(nil), w.writes[a.String()]...)
}

// batchRecWriter is a recWriter that also implements BatchWriter, counting
// batch calls so tests can assert the batched path is taken.
type batchRecWriter struct {
	recWriter
	batchCalls  int
	batchedPkts int
}

func newBatchRecWriter() *batchRecWriter {
	return &batchRecWriter{recWriter: recWriter{writes: make(map[string][][]byte)}}
}

func (w *batchRecWriter) WriteBatch(ps [][]byte, a net.Addr) (int, error) {
	w.mu.Lock()
	w.batchCalls++
	w.batchedPkts += len(ps)
	for _, p := range ps {
		cp := append([]byte(nil), p...)
		w.writes[a.String()] = append(w.writes[a.String()], cp)
	}
	w.mu.Unlock()
	return len(ps), nil
}

func (w *batchRecWriter) batches() (calls, pkts int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batchCalls, w.batchedPkts
}

// gateWriter hands control of each WriteTo to the test: the call parks on
// entered until the test sends on proceed.
type gateWriter struct {
	rec     *recWriter
	entered chan []byte
	proceed chan struct{}
}

func newGateWriter() *gateWriter {
	return &gateWriter{rec: newRecWriter(), entered: make(chan []byte), proceed: make(chan struct{})}
}

func (w *gateWriter) WriteTo(p []byte, a net.Addr) (int, error) {
	cp := append([]byte(nil), p...)
	w.entered <- cp
	<-w.proceed
	return w.rec.WriteTo(cp, a)
}
