package relaycore

import (
	"sync"
	"sync/atomic"
)

// PacketBuf is a pooled, refcounted packet buffer. One buffer carries one
// wire packet through the fan-out: the router loads it once and hands a
// reference to every subscriber queue, so a 1000-subscriber fan-out copies
// the payload zero times.
//
// Ownership contract (mirrors the arena contract of DESIGN.md §5): every
// holder of a reference may read Bytes() until it calls Release exactly
// once; the last Release recycles the buffer, after which any access is a
// use-after-free. Retain before handing the buffer to another goroutine.
type PacketBuf struct {
	pool *BufPool
	b    []byte
	n    int
	refs atomic.Int32
}

// Bytes returns the packet's wire bytes. Valid only while the caller holds
// an unreleased reference.
func (p *PacketBuf) Bytes() []byte { return p.b[:p.n] }

// Retain adds a reference and returns p for chaining.
func (p *PacketBuf) Retain() *PacketBuf {
	p.refs.Add(1)
	return p
}

// Release drops one reference; the last one returns the buffer to its pool.
func (p *PacketBuf) Release() {
	if p.refs.Add(-1) == 0 && p.pool != nil {
		p.pool.put(p)
	}
}

// BufPool recycles PacketBufs of one class size — large enough for any
// media packet (MTU + headers). Requests beyond the class size are served
// by a one-off allocation that is garbage-collected instead of recycled
// (rare: our wire format never exceeds ~1.3 KB, but a relay must not
// corrupt oversized datagrams).
type BufPool struct {
	class int

	mu   sync.Mutex
	free []*PacketBuf

	misses   atomic.Int64
	oversize atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
}

// DefaultBufClass comfortably holds a media packet: MTU (1200) plus the
// transport header and media magic, rounded up to a power of two.
const DefaultBufClass = 2048

// NewBufPool creates a pool with the given class size (0 picks the default).
func NewBufPool(class int) *BufPool {
	if class <= 0 {
		class = DefaultBufClass
	}
	return &BufPool{class: class}
}

// Get returns a buffer sized for n bytes with one reference held.
func (bp *BufPool) Get(n int) *PacketBuf {
	if n > bp.class {
		bp.oversize.Add(1)
		p := &PacketBuf{b: make([]byte, n), n: n}
		p.refs.Store(1)
		return p
	}
	var p *PacketBuf
	bp.mu.Lock()
	if k := len(bp.free); k > 0 {
		p = bp.free[k-1]
		bp.free[k-1] = nil
		bp.free = bp.free[:k-1]
	}
	bp.mu.Unlock()
	if p == nil {
		bp.misses.Add(1)
		p = &PacketBuf{pool: bp, b: make([]byte, bp.class)}
	}
	p.n = n
	p.refs.Store(1)
	bp.gets.Add(1)
	return p
}

// Class returns the pooled buffer size — the largest packet a blank
// buffer can receive in place.
func (bp *BufPool) Class() int { return bp.class }

// GetBlank returns a class-size buffer (one reference held) for batch
// ingest to fill in place: recvmmsg reads the wire directly into Raw and
// SetLen records the datagram length, eliminating even the single Load
// copy on the batched path.
func (bp *BufPool) GetBlank() *PacketBuf { return bp.Get(bp.class) }

// Raw exposes the full backing array for an in-place fill. Valid under
// the same ownership contract as Bytes.
func (p *PacketBuf) Raw() []byte { return p.b }

// SetLen records the packet length after an in-place fill of Raw.
func (p *PacketBuf) SetLen(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(p.b) {
		n = len(p.b)
	}
	p.n = n
}

// Load copies b into a pooled buffer (the only copy on the fan-out path).
func (bp *BufPool) Load(b []byte) *PacketBuf {
	p := bp.Get(len(b))
	copy(p.b, b)
	return p
}

func (bp *BufPool) put(p *PacketBuf) {
	bp.puts.Add(1)
	bp.mu.Lock()
	bp.free = append(bp.free, p)
	bp.mu.Unlock()
}

// Misses returns how many buffers were newly allocated (pool cold or
// growing); steady state adds none.
func (bp *BufPool) Misses() int64 { return bp.misses.Load() }

// Live returns how many pooled buffers are checked out (get minus put).
// After every reference is released it must read 0 — the leak invariant the
// unsubscribe-mid-frame regression test asserts across all shards.
func (bp *BufPool) Live() int64 { return bp.gets.Load() - bp.puts.Load() }
