package relaycore

import (
	"math/rand"
	"testing"
)

// TestREMBMinTracker cross-checks the O(1)-amortized minimum against a
// brute-force rescan over a randomized update/remove schedule.
func TestREMBMinTracker(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := newREMBMin()
	ref := make(map[Key]float64)
	keys := make([]Key, 16)
	for i := range keys {
		keys[i] = Key{port: i + 1}
	}
	bruteMin := func() (float64, bool) {
		min, ok := 0.0, false
		for _, v := range ref {
			if !ok || v < min {
				min, ok = v, true
			}
		}
		return min, ok
	}
	for op := 0; op < 5000; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Float64() < 0.2 {
			gotMin, gotOK := m.Remove(k)
			delete(ref, k)
			wantMin, wantOK := bruteMin()
			if gotOK != wantOK || (wantOK && gotMin != wantMin) {
				t.Fatalf("op %d: Remove → (%g,%v), brute force (%g,%v)", op, gotMin, gotOK, wantMin, wantOK)
			}
			continue
		}
		v := float64(rng.Intn(1000)) * 1e4
		got := m.Update(k, v)
		ref[k] = v
		want, _ := bruteMin()
		if got != want {
			t.Fatalf("op %d: Update(%v,%g) → min %g, brute force %g", op, k.port, v, got, want)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
}

func TestNACKCoalesceWindow(t *testing.T) {
	const window = int64(50e6) // 50 ms
	c := newNACKCoalescer(window)
	k := nackKey{seq: 7, frag: 3, stream: 1}
	if !c.ShouldForward(k, 0) {
		t.Fatal("first NACK suppressed")
	}
	if c.ShouldForward(k, window-1) {
		t.Fatal("duplicate NACK inside window forwarded")
	}
	if !c.ShouldForward(nackKey{seq: 7, frag: 4, stream: 1}, 1) {
		t.Fatal("NACK for a different fragment suppressed")
	}
	if !c.ShouldForward(nackKey{seq: 7, frag: 3, stream: 2}, 1) {
		t.Fatal("NACK for a different stream suppressed")
	}
	if !c.ShouldForward(k, window+1) {
		t.Fatal("NACK after window expiry suppressed")
	}
}

// TestNACKCoalesceSweep: a moving sequence window must not grow the stamp
// map without bound — stale entries are swept opportunistically.
func TestNACKCoalesceSweep(t *testing.T) {
	const window = int64(50e6)
	c := newNACKCoalescer(window)
	// Old generation: enough inserts to arm the sweep counter.
	for i := 0; i < nackSweepEvery; i++ {
		c.ShouldForward(nackKey{seq: uint32(i), frag: 0, stream: 1}, 0)
	}
	// New generation, two windows later: sweeping should evict the old one.
	now := 2 * window
	for i := 0; i < nackSweepEvery; i++ {
		c.ShouldForward(nackKey{seq: uint32(i), frag: 1, stream: 1}, now)
	}
	if len(c.last) > nackSweepEvery+1 {
		t.Fatalf("stamp map holds %d entries after sweep, want <= %d", len(c.last), nackSweepEvery+1)
	}
}

func TestPLIGateWindow(t *testing.T) {
	const window = int64(250e6) // matches transport.ResendInterval
	g := pliGate{window: window}
	if !g.ShouldForward(0) {
		t.Fatal("first PLI suppressed")
	}
	for _, now := range []int64{1, window / 2, window - 1} {
		if g.ShouldForward(now) {
			t.Fatalf("PLI at %dns forwarded inside the window", now)
		}
	}
	if !g.ShouldForward(window) {
		t.Fatal("PLI at window boundary suppressed")
	}
	// A key frame re-arms the gate immediately.
	g.OnKeyFrame()
	if !g.ShouldForward(window + 1) {
		t.Fatal("PLI after key frame suppressed")
	}
}
