package relaycore

import (
	"math/rand"
	"testing"
)

// TestREMBMinTracker cross-checks the O(1)-amortized minimum against a
// brute-force rescan over a randomized update/remove schedule.
func TestREMBMinTracker(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := newREMBMin()
	ref := make(map[Key]float64)
	keys := make([]Key, 16)
	for i := range keys {
		keys[i] = Key{port: i + 1}
	}
	bruteMin := func() (float64, bool) {
		min, ok := 0.0, false
		for _, v := range ref {
			if !ok || v < min {
				min, ok = v, true
			}
		}
		return min, ok
	}
	for op := 0; op < 5000; op++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Float64() < 0.2 {
			gotMin, gotOK := m.Remove(k)
			delete(ref, k)
			wantMin, wantOK := bruteMin()
			if gotOK != wantOK || (wantOK && gotMin != wantMin) {
				t.Fatalf("op %d: Remove → (%g,%v), brute force (%g,%v)", op, gotMin, gotOK, wantMin, wantOK)
			}
			continue
		}
		v := float64(rng.Intn(1000)) * 1e4
		got := m.Update(k, v)
		ref[k] = v
		want, _ := bruteMin()
		if got != want {
			t.Fatalf("op %d: Update(%v,%g) → min %g, brute force %g", op, k.port, v, got, want)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
}

func TestNACKCoalesceWindow(t *testing.T) {
	const window = int64(50e6) // 50 ms
	c := newNACKCoalescer(window)
	k := nackKey{seq: 7, frag: 3, stream: 1}
	if !c.ShouldForward(k, 0) {
		t.Fatal("first NACK suppressed")
	}
	if c.ShouldForward(k, window-1) {
		t.Fatal("duplicate NACK inside window forwarded")
	}
	if !c.ShouldForward(nackKey{seq: 7, frag: 4, stream: 1}, 1) {
		t.Fatal("NACK for a different fragment suppressed")
	}
	if !c.ShouldForward(nackKey{seq: 7, frag: 3, stream: 2}, 1) {
		t.Fatal("NACK for a different stream suppressed")
	}
	if !c.ShouldForward(k, window+1) {
		t.Fatal("NACK after window expiry suppressed")
	}
}

// TestNACKCoalesceWindowBoundary: the window is half-open — a repeat
// exactly one window after the stamp forwards (now-t < window suppresses,
// now-t == window does not), and forwarding restamps the entry so the
// next window measures from the forwarded request.
func TestNACKCoalesceWindowBoundary(t *testing.T) {
	const window = int64(50e6)
	c := newNACKCoalescer(window)
	k := nackKey{seq: 1, frag: 0, stream: 1}
	if !c.ShouldForward(k, 100) {
		t.Fatal("first NACK suppressed")
	}
	if c.ShouldForward(k, 100+window-1) {
		t.Fatal("NACK one tick inside the window forwarded")
	}
	if !c.ShouldForward(k, 100+window) {
		t.Fatal("NACK exactly at the window boundary suppressed")
	}
	// Restamped at 100+window: the next boundary is one full window later.
	if c.ShouldForward(k, 100+2*window-1) {
		t.Fatal("NACK inside the restamped window forwarded")
	}
	if !c.ShouldForward(k, 100+2*window) {
		t.Fatal("NACK at the restamped boundary suppressed")
	}
}

// TestNACKCoalesceMapMaxForcedSweep: when the stamp map outgrows
// nackMapMax the next insert sweeps regardless of the insert cadence
// counter, and a swept-out fragment is forwarded again on re-request.
func TestNACKCoalesceMapMaxForcedSweep(t *testing.T) {
	const window = int64(50e6)
	c := newNACKCoalescer(window)
	// Overfill with in-window entries: they survive sweeps (not stale yet),
	// so the map really does exceed the cap.
	for i := 0; i <= nackMapMax; i++ {
		c.ShouldForward(nackKey{seq: uint32(i), frag: 0, stream: 1}, 0)
	}
	if len(c.last) <= nackMapMax {
		t.Fatalf("precondition: map holds %d entries, want > %d", len(c.last), nackMapMax)
	}
	// One window later everything above is stale; the very next insert must
	// trip the size-forced sweep even though the cadence counter was just
	// reset by the insert at i == nackMapMax... so force a non-cadence
	// position by a single insert.
	if !c.ShouldForward(nackKey{seq: 1 << 30, frag: 0, stream: 1}, window) {
		t.Fatal("fresh NACK suppressed")
	}
	if len(c.last) > 2 {
		t.Fatalf("forced sweep left %d entries, want <= 2", len(c.last))
	}
	// The old generation was swept: re-requesting one of those fragments
	// forwards again instead of being treated as a duplicate.
	if !c.ShouldForward(nackKey{seq: 3, frag: 0, stream: 1}, window+1) {
		t.Fatal("re-request after sweep suppressed")
	}
}

// TestNACKCoalesceSweep: a moving sequence window must not grow the stamp
// map without bound — stale entries are swept opportunistically.
func TestNACKCoalesceSweep(t *testing.T) {
	const window = int64(50e6)
	c := newNACKCoalescer(window)
	// Old generation: enough inserts to arm the sweep counter.
	for i := 0; i < nackSweepEvery; i++ {
		c.ShouldForward(nackKey{seq: uint32(i), frag: 0, stream: 1}, 0)
	}
	// New generation, two windows later: sweeping should evict the old one.
	now := 2 * window
	for i := 0; i < nackSweepEvery; i++ {
		c.ShouldForward(nackKey{seq: uint32(i), frag: 1, stream: 1}, now)
	}
	if len(c.last) > nackSweepEvery+1 {
		t.Fatalf("stamp map holds %d entries after sweep, want <= %d", len(c.last), nackSweepEvery+1)
	}
}

func TestPLIGateWindow(t *testing.T) {
	const window = int64(250e6) // matches transport.ResendInterval
	g := pliGate{window: window}
	if !g.ShouldForward(0) {
		t.Fatal("first PLI suppressed")
	}
	for _, now := range []int64{1, window / 2, window - 1} {
		if g.ShouldForward(now) {
			t.Fatalf("PLI at %dns forwarded inside the window", now)
		}
	}
	if !g.ShouldForward(window) {
		t.Fatal("PLI at window boundary suppressed")
	}
	// A key frame re-arms the gate immediately.
	g.OnKeyFrame()
	if !g.ShouldForward(window + 1) {
		t.Fatal("PLI after key frame suppressed")
	}
}

// TestPLIGateRearmNearExpiry: a key frame passing just before the window
// expires re-opens the gate immediately — and the forwarded PLI starts a
// fresh window from its own timestamp, not the old one's remainder.
func TestPLIGateRearmNearExpiry(t *testing.T) {
	const window = int64(250e6)
	g := pliGate{window: window}
	if !g.ShouldForward(0) {
		t.Fatal("first PLI suppressed")
	}
	// Key frame lands one tick before the window would have expired.
	g.OnKeyFrame()
	if !g.ShouldForward(window - 1) {
		t.Fatal("PLI after key-frame re-arm suppressed inside the old window")
	}
	// The forward restarted the window at window-1: the old boundary
	// (2*window-2 measured from 0) must still be suppressed...
	if g.ShouldForward(2*window - 2) {
		t.Fatal("PLI inside the restarted window forwarded")
	}
	// ...and the new boundary forwards.
	if !g.ShouldForward(2*window - 1) {
		t.Fatal("PLI at the restarted window boundary suppressed")
	}
	// Re-arm racing a same-instant PLI burst: exactly one forwards.
	g.OnKeyFrame()
	if !g.ShouldForward(2 * window) {
		t.Fatal("PLI after second re-arm suppressed")
	}
	if g.ShouldForward(2 * window) {
		t.Fatal("duplicate PLI at the same instant forwarded twice")
	}
}
