package relaycore

// Feedback aggregation state. Unlike the media path, which is sharded
// across cores, the reverse path stays centralized: its job is global
// deduplication (one PLI per window, one NACK per fragment, one REMB
// minimum across every subscriber), so it is serialized under the
// router's feedback mutex — RouteFeedback callers, Unsubscribe, and the
// key-frame re-arm all take it. None of the three structures is safe for
// unguarded concurrent use on its own. REMB messages additionally fan
// *in* to the reporting subscriber's queue (SubQueue.UpdateBandwidth)
// before min-tracking, driving the adaptive ring depth.

// rembMin maintains the minimum and maximum REMB across subscribers
// without a full map scan per message: the scan happens only when an
// extremum's owner moves its estimate past it or departs. The sender
// budget forwards the minimum on a single-rung stream (everyone receives
// the one encoding) and the maximum when the quality ladder is active
// (rung 0 serves the fastest class; slower classes ride cheaper rungs).
type rembMin struct {
	by     map[Key]float64
	minKey Key
	minVal float64
	maxKey Key
	maxVal float64
	valid  bool
}

func newREMBMin() *rembMin { return &rembMin{by: make(map[Key]float64)} }

// Update records subscriber k's estimate and returns the new minimum.
func (m *rembMin) Update(k Key, v float64) float64 {
	_, had := m.by[k]
	m.by[k] = v
	if !m.valid {
		m.minKey, m.minVal = k, v
		m.maxKey, m.maxVal = k, v
		m.valid = true
		return m.minVal
	}
	switch {
	case v <= m.minVal:
		m.minKey, m.minVal = k, v
	case had && k == m.minKey:
		// The slowest subscriber sped up: only now is a rescan needed.
		m.recompute()
	}
	switch {
	case v >= m.maxVal:
		m.maxKey, m.maxVal = k, v
	case had && k == m.maxKey:
		m.recompute()
	}
	return m.minVal
}

// Remove evicts a departed subscriber's entry. It returns the new minimum
// and whether any entries remain.
func (m *rembMin) Remove(k Key) (float64, bool) {
	if _, had := m.by[k]; !had {
		return m.minVal, m.valid
	}
	delete(m.by, k)
	if m.valid && (k == m.minKey || k == m.maxKey) {
		m.recompute()
	}
	return m.minVal, m.valid
}

// Max returns the maximum estimate (0 before any report).
func (m *rembMin) Max() float64 {
	if !m.valid {
		return 0
	}
	return m.maxVal
}

func (m *rembMin) recompute() {
	m.valid = false
	for k, v := range m.by {
		if !m.valid || v < m.minVal {
			m.minKey, m.minVal = k, v
		}
		if !m.valid || v > m.maxVal {
			m.maxKey, m.maxVal = k, v
		}
		m.valid = true
	}
}

// Len returns how many subscribers have reported an estimate.
func (m *rembMin) Len() int { return len(m.by) }

// nackKey identifies one media fragment: the (stream, seq, frag) triple a
// NACK names plus the quality rung the copy was encoded at. The wire NACK
// carries no rung — receivers don't know the ladder exists — so the router
// stamps in the requester's rung for that sequence (Subscriber.rungForSeq)
// before cache lookup. The retransmission cache (retxcache.go) indexes by
// the same key, so a cache miss escalates through the coalescer with no
// re-keying.
type nackKey struct {
	seq    uint32
	frag   uint16
	stream uint8
	rung   uint8
}

// nackCoalescer deduplicates NACKs for the same fragment across
// subscribers within a window: the first request is forwarded (and the
// retransmission fans out to everyone), repeats inside the window are
// dropped. The stamped map is swept opportunistically so a moving sequence
// window cannot grow it without bound.
type nackCoalescer struct {
	window  int64 // nanoseconds
	last    map[nackKey]int64
	inserts int
}

// nackSweepEvery bounds staleness-sweep frequency; nackMapMax forces a
// sweep when the map outgrows the plausible in-window working set.
const (
	nackSweepEvery = 512
	nackMapMax     = 8192
)

func newNACKCoalescer(windowNs int64) *nackCoalescer {
	return &nackCoalescer{window: windowNs, last: make(map[nackKey]int64)}
}

// ShouldForward reports whether this fragment request leaves for the
// sender, stamping it when so.
func (c *nackCoalescer) ShouldForward(k nackKey, now int64) bool {
	if t, ok := c.last[k]; ok && now-t < c.window {
		return false
	}
	c.last[k] = now
	c.inserts++
	if c.inserts >= nackSweepEvery || len(c.last) > nackMapMax {
		c.inserts = 0
		for k2, t := range c.last {
			if now-t >= c.window {
				delete(c.last, k2)
			}
		}
	}
	return true
}

// pliGate forwards at most one PLI per refresh window — the relay-side
// mirror of Sender.RequestKeyFrame's refresh-in-flight guard. A
// simultaneous PLI burst from every subscriber reaches the sender as one
// message (two across a window boundary).
type pliGate struct {
	window int64 // nanoseconds
	lastNs int64
	armed  bool
}

// ShouldForward reports whether a PLI at time now passes the gate.
func (g *pliGate) ShouldForward(now int64) bool {
	if g.armed && now-g.lastNs < g.window {
		return false
	}
	g.armed = true
	g.lastNs = now
	return true
}

// OnKeyFrame re-opens the gate: the refresh completed, so the next PLI
// starts a new cycle immediately.
func (g *pliGate) OnKeyFrame() { g.armed = false }
