package relaycore

import (
	"fmt"
	"testing"
	"time"

	"livo/internal/transport"
)

// mediaWireRung builds one on-the-wire media packet carrying a quality-rung
// id in its flags byte.
func mediaWireRung(stream uint8, seq uint32, frag, count uint16, key bool, rung uint8, payload []byte) []byte {
	p := transport.Packet{
		Stream: stream, FrameSeq: seq, FragIndex: frag, FragCount: count,
		Key: key, Rung: rung, Payload: payload,
	}
	return append([]byte{transport.MediaMagic}, p.Marshal()...)
}

// ladderHarness streams a 3-rung ladder into a router frame by frame and
// records what one subscriber received. Fragment counts shrink up the
// ladder (4/2/1 × 300 B) so the per-rung rate estimator sees distinct
// bitrates: at the 33 ms frame cadence rung 0 ≈ 300 kb/s, rung 1 ≈ 150,
// rung 2 ≈ 75.
type ladderHarness struct {
	t   *testing.T
	r   *Router
	clk *fakeClock
	seq uint32
}

var ladderFrags = [3]uint16{4, 2, 1}

// frame routes one frame at every rung and advances the clock one tick.
func (h *ladderHarness) frame(key bool) {
	pool := h.r.Pool()
	payload := make([]byte, 300)
	for rung := uint8(0); rung < 3; rung++ {
		n := ladderFrags[rung]
		for f := uint16(0); f < n; f++ {
			h.r.RouteMedia(pool.Load(mediaWireRung(1, h.seq, f, n, key, rung, payload)))
		}
	}
	h.seq++
	h.clk.Advance(33 * time.Millisecond)
}

// deliveredRungs reassembles the subscriber's delivery log into the ordered
// per-frame view (seq, rung, key), failing the test if any frame mixed
// fragments from two rungs — the exact corruption a stateful decoder
// cannot survive.
type frameRung struct {
	seq  uint32
	rung uint8
	key  bool
}

func deliveredRungs(t *testing.T, rec *recWriter, sub *recSub) []frameRung {
	t.Helper()
	var out []frameRung
	for _, b := range rec.payloads(sub.addr) {
		if len(b) < 2 || b[0] != transport.MediaMagic {
			continue
		}
		p, err := transport.Unmarshal(b[1:])
		if err != nil {
			t.Fatalf("undeliverable wire packet: %v", err)
		}
		if p.Stream != 1 || p.Parity {
			continue
		}
		if n := len(out); n > 0 && out[n-1].seq == p.FrameSeq {
			if out[n-1].rung != p.Rung {
				t.Fatalf("frame %d delivered with mixed rungs %d and %d",
					p.FrameSeq, out[n-1].rung, p.Rung)
			}
			continue
		}
		out = append(out, frameRung{seq: p.FrameSeq, rung: p.Rung, key: p.Key})
	}
	return out
}

type recSub struct{ addr *fakeAddr }

type fakeAddr struct{ s string }

func (a *fakeAddr) Network() string { return "udp" }
func (a *fakeAddr) String() string  { return a.s }

// TestLadderSwitchAtKeyBoundary drives one subscriber through a full
// down/up cycle: REMB collapse selects the quarter rung and the delivered
// stream switches exactly at a key frame (after the relay pulled one
// forward via PLI); REMB recovery switches back up at the next periodic
// key, within one GOP. Every delivered frame is single-rung and every rung
// transition lands on a key frame, so a stateful decoder crosses each
// switch without error. Runs at shards=1 and 4 (tier-1 repeats this under
// -race), and checks the pool drains to zero at close with all three rungs
// in flight.
func TestLadderSwitchAtKeyBoundary(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clk := &fakeClock{}
			rec := newRecWriter()
			cfg := testConfig()
			cfg.Shards = shards
			cfg.Now = clk.Now
			r := NewRouter(rec, senderAddr(), cfg)
			h := &ladderHarness{t: t, r: r, clk: clk}

			subAddr := udp(1)
			r.Subscribe(subAddr)
			sub := &recSub{addr: &fakeAddr{s: subAddr.String()}}

			const gop = 10
			remb := func(bps float64) { r.RouteFeedback(transport.AppendREMB(nil, bps), subAddr) }

			// Phase A: plenty of bandwidth. Two GOPs warm up the per-rung
			// rate estimator (first REMB only records baselines).
			for i := 0; i < 2*gop; i++ {
				h.frame(h.seq%gop == 0)
				remb(1e6)
			}
			if !r.WaitIdle(2 * time.Second) {
				t.Fatal("router did not drain phase A")
			}
			for _, fr := range deliveredRungs(t, rec, sub) {
				if fr.rung != 0 {
					t.Fatalf("frame %d on rung %d before any downswitch, want 0", fr.seq, fr.rung)
				}
			}

			// Phase B: collapse to 120 kb/s — only the 75 kb/s quarter rung
			// fits under the 0.9 headroom. The downswitch must ride the PLI
			// path; the "sender" responds with an immediate key frame.
			remb(120e3)
			pliSeen := false
			for _, p := range rec.payloads(senderAddr()) {
				if len(p) > 0 && p[0] == transport.FBPLI {
					pliSeen = true
				}
			}
			if !pliSeen {
				t.Fatal("downswitch did not forward a PLI to the sender")
			}
			h.frame(true) // the PLI-pulled key: switch commits here
			for i := 0; i < gop-1; i++ {
				h.frame(false)
				remb(120e3)
			}
			if !r.WaitIdle(2 * time.Second) {
				t.Fatal("router did not drain phase B")
			}

			// Phase C: recovery. No PLI this direction — the upswitch waits
			// for the next periodic key, i.e. commits within one GOP.
			remb(1e6)
			upReq := h.seq // frame index when the upswitch was requested
			for i := 0; i < 2*gop; i++ {
				h.frame(h.seq%gop == 0)
				remb(1e6)
			}
			if !r.WaitIdle(2 * time.Second) {
				t.Fatal("router did not drain phase C")
			}

			frames := deliveredRungs(t, rec, sub)
			if len(frames) == 0 {
				t.Fatal("no frames delivered")
			}
			sawDown, sawUp := false, false
			for i := 1; i < len(frames); i++ {
				prev, cur := frames[i-1], frames[i]
				if cur.rung != prev.rung {
					if !cur.key {
						t.Fatalf("rung switch %d→%d at frame %d which is not a key frame",
							prev.rung, cur.rung, cur.seq)
					}
					if cur.rung > prev.rung {
						sawDown = true
					} else {
						sawUp = true
						if cur.seq-upReq > gop {
							t.Fatalf("upswitch took %d frames (> one GOP of %d)", cur.seq-upReq, gop)
						}
					}
				}
			}
			if !sawDown || !sawUp {
				t.Fatalf("switch coverage: down=%v up=%v, want both", sawDown, sawUp)
			}
			last := frames[len(frames)-1]
			if last.rung != 0 {
				t.Fatalf("final rung = %d after recovery, want 0", last.rung)
			}

			st := r.Stats()
			if st.RungSwitches != 2 {
				t.Fatalf("RungSwitches = %d, want 2 (one down, one up)", st.RungSwitches)
			}
			if len(st.Subs) != 1 || st.Subs[0].Rung != 0 || st.Subs[0].RungSwitches != 2 {
				t.Fatalf("per-sub rung stats = %+v, want rung 0 with 2 switches", st.Subs)
			}
			if st.RungSubscribers[0] != 1 {
				t.Fatalf("RungSubscribers = %v, want subscriber counted on rung 0", st.RungSubscribers)
			}

			r.Close()
			if st := r.Stats(); st.PoolLive != 0 {
				t.Fatalf("PoolLive = %d after close with rungs active, want 0", st.PoolLive)
			}
		})
	}
}
