package relaycore

import (
	"fmt"
	"net"
	"testing"
	"time"

	"livo/internal/telemetry"
)

func testCounter() *telemetry.Counter {
	return telemetry.NewRegistry(0).Counter("test_drops_total")
}

func udp(i int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(10, 0, byte(i>>8), byte(i)), Port: 40000 + i%1000}
}

func mediaFID(seq uint32) frameID { return frameID{media: true, stream: 1, seq: seq} }

func streamFID(stream uint8, seq uint32, key bool) frameID {
	return frameID{media: true, stream: stream, seq: seq, key: key}
}

func tag(frame, frag int) []byte { return []byte(fmt.Sprintf("f%d.%d", frame, frag)) }

// testQueue builds an unscheduled queue (no shard): tests drive drains with
// drainOnce, exactly the pop/write/release sequence writer workers run.
func testQueue(addr net.Addr, depth int) *SubQueue {
	return newSubQueue(addr, depth, 0, 250*time.Millisecond, testCounter())
}

// drainAll pumps drainOnce until the queue idles.
func drainAll(t *testing.T, q *SubQueue, out Writer) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !q.Idle() {
		if q.drainOnce(out) == 0 && time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %+v", q.stats())
		}
	}
}

// TestQueueDropWholeFrames: a full ring drops the oldest frame's entire
// fragment run, leaving later frames intact.
func TestQueueDropWholeFrames(t *testing.T) {
	rec := newRecWriter()
	addr := udp(1)
	q := testQueue(addr, 8)
	bp := NewBufPool(64)

	// Frames 1 and 2 (4 fragments each) fill the ring of 8.
	for frame := 1; frame <= 2; frame++ {
		for frag := 0; frag < 4; frag++ {
			if !q.Enqueue(bp.Load(tag(frame, frag)), mediaFID(uint32(frame))) {
				t.Fatalf("enqueue f%d.%d rejected", frame, frag)
			}
		}
	}
	// Frame 3 fragment 0 forces the drop policy: all of frame 1 goes.
	if !q.Enqueue(bp.Load(tag(3, 0)), mediaFID(3)) {
		t.Fatalf("enqueue f3.0 rejected, want accepted after dropping frame 1")
	}
	st := q.stats()
	if st.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (whole frame 1)", st.Dropped)
	}
	if st.Depth != 5 {
		t.Fatalf("depth = %d, want 5 (frame 2 + f3.0)", st.Depth)
	}

	drainAll(t, q, rec)
	q.Close()

	want := [][]byte{tag(2, 0), tag(2, 1), tag(2, 2), tag(2, 3), tag(3, 0)}
	got := rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("delivery[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if e, s, d := q.enqueued.Load(), q.sent.Load(), q.dropped.Load(); e != s+d {
		t.Fatalf("accounting: enqueued %d != sent %d + dropped %d", e, s, d)
	}
	if bp.Live() != 0 {
		t.Fatalf("pool live = %d after drain+close, want 0", bp.Live())
	}
}

// TestQueueDropSkipsInFlightRun: when the oldest queued entries belong to
// the frame currently being written, the drop policy skips them and drops
// the next whole frame instead — a partially-sent run is never split.
func TestQueueDropSkipsInFlightRun(t *testing.T) {
	gw := newGateWriter()
	addr := udp(2)
	q := testQueue(addr, 4)
	bp := NewBufPool(64)

	// A drain pops f1.0 and parks inside WriteTo; frame 1 is now in flight.
	if !q.Enqueue(bp.Load(tag(1, 0)), mediaFID(1)) {
		t.Fatal("enqueue f1.0 rejected")
	}
	firstDrain := make(chan struct{})
	go func() { defer close(firstDrain); q.drainOnce(gw) }()
	<-gw.entered

	// Ring: the in-flight frame's tail, then frame 2.
	for _, e := range []struct{ frame, frag int }{{1, 1}, {1, 2}, {2, 0}, {2, 1}} {
		if !q.Enqueue(bp.Load(tag(e.frame, e.frag)), mediaFID(uint32(e.frame))) {
			t.Fatalf("enqueue f%d.%d rejected", e.frame, e.frag)
		}
	}
	// Full. Frame 3 must evict frame 2 — not frame 1's tail.
	if !q.Enqueue(bp.Load(tag(3, 0)), mediaFID(3)) {
		t.Fatal("enqueue f3.0 rejected, want accepted after dropping frame 2")
	}
	if d := q.dropped.Load(); d != 2 {
		t.Fatalf("dropped = %d, want 2 (frame 2's run)", d)
	}

	// Release the gated writes and drain the rest.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-gw.entered:
			case <-time.After(500 * time.Millisecond):
				return
			}
			gw.proceed <- struct{}{}
		}
	}()
	gw.proceed <- struct{}{} // f1.0
	<-firstDrain             // it must record before the remainder drains
	drainAll(t, q, gw)
	<-done
	q.Close()

	want := []string{"f1.0", "f1.1", "f1.2", "f3.0"}
	got := gw.rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets %q, want %v", len(got), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (in-flight run split?)", i, got[i], want[i])
		}
	}
}

// TestQueueRejectsIncomingWhenRingIsInFlight: a ring consisting entirely of
// the in-flight frame's tail has nothing droppable — the incoming packet is
// rejected instead.
func TestQueueRejectsIncomingWhenRingIsInFlight(t *testing.T) {
	gw := newGateWriter()
	addr := udp(3)
	q := testQueue(addr, 4)
	bp := NewBufPool(64)

	if !q.Enqueue(bp.Load(tag(1, 0)), mediaFID(1)) {
		t.Fatal("enqueue f1.0 rejected")
	}
	firstDrain := make(chan struct{})
	go func() { defer close(firstDrain); q.drainOnce(gw) }()
	<-gw.entered // drain parked, frame 1 in flight

	for frag := 1; frag <= 4; frag++ {
		if !q.Enqueue(bp.Load(tag(1, frag)), mediaFID(1)) {
			t.Fatalf("enqueue f1.%d rejected", frag)
		}
	}
	buf := bp.Load(tag(2, 0))
	if q.Enqueue(buf, mediaFID(2)) {
		t.Fatal("enqueue f2.0 accepted, want rejected (ring is one in-flight run)")
	}
	buf.Release() // caller keeps its reference on rejection
	if d := q.dropped.Load(); d != 1 {
		t.Fatalf("dropped = %d, want 1 (the rejected incoming packet)", d)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-gw.entered:
			case <-time.After(500 * time.Millisecond):
				return
			}
			gw.proceed <- struct{}{}
		}
	}()
	gw.proceed <- struct{}{}
	<-firstDrain
	drainAll(t, q, gw)
	<-done
	q.Close()

	if n := gw.rec.count(addr); n != 5 {
		t.Fatalf("delivered %d packets, want 5 (f1.0..f1.4)", n)
	}
	if bp.Live() != 0 {
		t.Fatalf("pool live = %d, want 0", bp.Live())
	}
}

// TestQueueDropPrefersDelta: with both a key frame and a later delta frame
// queued, overflow spends the delta frame and the key frame survives.
func TestQueueDropPrefersDelta(t *testing.T) {
	rec := newRecWriter()
	addr := udp(5)
	q := testQueue(addr, 8)
	bp := NewBufPool(64)

	for frag := 0; frag < 4; frag++ { // key frame 1 (oldest)
		if !q.Enqueue(bp.Load(tag(1, frag)), streamFID(1, 1, true)) {
			t.Fatalf("enqueue key f1.%d rejected", frag)
		}
	}
	for frag := 0; frag < 4; frag++ { // delta frame 2
		if !q.Enqueue(bp.Load(tag(2, frag)), streamFID(1, 2, false)) {
			t.Fatalf("enqueue delta f2.%d rejected", frag)
		}
	}
	// Overflow with a delta: frame 2 (the delta) goes, NOT the older key.
	if !q.Enqueue(bp.Load(tag(3, 0)), streamFID(1, 3, false)) {
		t.Fatal("enqueue f3.0 rejected, want accepted after dropping delta frame 2")
	}
	if d := q.dropped.Load(); d != 4 {
		t.Fatalf("dropped = %d, want 4 (delta frame 2)", d)
	}

	drainAll(t, q, rec)
	q.Close()
	want := []string{"f1.0", "f1.1", "f1.2", "f1.3", "f3.0"}
	got := rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %q, want %v", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (key frame not preserved?)", i, got[i], want[i])
		}
	}
}

// TestQueueIncomingDeltaNeverEvictsKey: a ring of key frames rejects an
// incoming delta rather than dropping the key frames later deltas depend on.
func TestQueueIncomingDeltaNeverEvictsKey(t *testing.T) {
	addr := udp(6)
	q := testQueue(addr, 8)
	bp := NewBufPool(64)

	for frame := 1; frame <= 2; frame++ {
		for frag := 0; frag < 4; frag++ {
			if !q.Enqueue(bp.Load(tag(frame, frag)), streamFID(1, uint32(frame), true)) {
				t.Fatalf("enqueue key f%d.%d rejected", frame, frag)
			}
		}
	}
	buf := bp.Load(tag(3, 0))
	if q.Enqueue(buf, streamFID(1, 3, false)) {
		t.Fatal("incoming delta evicted a queued key frame")
	}
	buf.Release()
	if st := q.stats(); st.Depth != 8 || st.Dropped != 1 {
		t.Fatalf("depth=%d dropped=%d, want 8/1 (only the rejected delta)", st.Depth, st.Dropped)
	}

	// An incoming KEY frame, by contrast, may spend the oldest key frame.
	if !q.Enqueue(bp.Load(tag(4, 0)), streamFID(1, 4, true)) {
		t.Fatal("incoming key frame rejected, want accepted after dropping oldest key")
	}
	if st := q.stats(); st.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5 (rejected delta + key frame 1's run)", st.Dropped)
	}
	q.Close()
	if bp.Live() != 0 {
		t.Fatalf("pool live = %d, want 0", bp.Live())
	}
}

// TestQueueInterleavedRunNeverSplit: fragment runs interleaved across
// streams are evicted in full — every fragment of the victim frame goes,
// even non-contiguous ones, and the survivors keep their order.
func TestQueueInterleavedRunNeverSplit(t *testing.T) {
	rec := newRecWriter()
	addr := udp(7)
	q := testQueue(addr, 8)
	bp := NewBufPool(64)

	// Color frame 1 and depth frame 7 interleaved fragment by fragment.
	for frag := 0; frag < 4; frag++ {
		if !q.Enqueue(bp.Load([]byte(fmt.Sprintf("c1.%d", frag))), streamFID(1, 1, false)) {
			t.Fatalf("enqueue c1.%d rejected", frag)
		}
		if !q.Enqueue(bp.Load([]byte(fmt.Sprintf("d7.%d", frag))), streamFID(2, 7, false)) {
			t.Fatalf("enqueue d7.%d rejected", frag)
		}
	}
	// Overflow: the oldest delta (color frame 1) is evicted in full — all
	// four interleaved fragments — never a prefix.
	if !q.Enqueue(bp.Load([]byte("c2.0")), streamFID(1, 2, false)) {
		t.Fatal("enqueue c2.0 rejected")
	}
	if d := q.dropped.Load(); d != 4 {
		t.Fatalf("dropped = %d, want 4 (color frame 1, interleaved)", d)
	}

	drainAll(t, q, rec)
	q.Close()
	want := []string{"d7.0", "d7.1", "d7.2", "d7.3", "c2.0"}
	got := rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %q, want %v", got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (run split or reordered)", i, got[i], want[i])
		}
	}
}

// TestQueueAdaptiveDepth: the effective ring limit follows REMB swings —
// growing toward capacity on high estimates, shrinking toward the floor on
// low ones — and enqueues beyond the shrunken limit trigger the drop policy.
func TestQueueAdaptiveDepth(t *testing.T) {
	addr := udp(8)
	q := newSubQueue(addr, 1024, 16, 250*time.Millisecond, testCounter())
	bp := NewBufPool(2048)

	if st := q.stats(); st.Limit != 1024 {
		t.Fatalf("initial limit = %d, want full capacity 1024", st.Limit)
	}
	// 1 Mbps × 250 ms / 8 / 1200 B ≈ 26 packets.
	q.UpdateBandwidth(1e6)
	if st := q.stats(); st.Limit != 26 {
		t.Fatalf("limit at 1 Mbps = %d, want 26", st.Limit)
	}
	// A high estimate grows the limit back to capacity (clamped).
	q.UpdateBandwidth(64e6)
	if st := q.stats(); st.Limit != 1024 {
		t.Fatalf("limit at 64 Mbps = %d, want capacity 1024", st.Limit)
	}
	// A collapse clamps at the floor.
	q.UpdateBandwidth(1000)
	if st := q.stats(); st.Limit != 16 {
		t.Fatalf("limit at 1 kbps = %d, want floor 16", st.Limit)
	}

	// Enqueues past the shrunken limit shed whole frames: 30 one-fragment
	// delta frames against a limit of 16 keeps depth at the limit.
	payload := make([]byte, 1200)
	for f := uint32(0); f < 30; f++ {
		q.Enqueue(bp.Load(payload), mediaFID(f))
	}
	st := q.stats()
	if st.Depth != 16 {
		t.Fatalf("depth = %d, want the adaptive limit 16", st.Depth)
	}
	if st.Enqueued != st.Sent+st.Dropped+st.Depth {
		t.Fatalf("accounting: enqueued %d != sent %d + dropped %d + depth %d",
			st.Enqueued, st.Sent, st.Dropped, st.Depth)
	}
	q.Close()
	if bp.Live() != 0 {
		t.Fatalf("pool live = %d, want 0", bp.Live())
	}
}

// TestQueueCloseReleasesBacklog: closing with queued entries releases every
// buffer back to the pool (no leak) without writing them.
func TestQueueCloseReleasesBacklog(t *testing.T) {
	rec := newRecWriter()
	addr := udp(4)
	q := testQueue(addr, 16)
	bp := NewBufPool(64)

	bufs := make([]*PacketBuf, 8)
	for i := range bufs {
		bufs[i] = bp.Load(tag(1, i))
		if !q.Enqueue(bufs[i], mediaFID(1)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	q.Close()

	for i, b := range bufs {
		if b.refs.Load() != 0 {
			t.Fatalf("buffer %d has %d refs after close, want 0", i, b.refs.Load())
		}
	}
	if n := rec.count(addr); n != 0 {
		t.Fatalf("closed queue wrote %d packets, want 0", n)
	}
	if bp.Live() != 0 {
		t.Fatalf("pool live = %d after close, want 0", bp.Live())
	}
	// Rejected after close: caller keeps its reference.
	b := bp.Load(tag(2, 0))
	if q.Enqueue(b, mediaFID(2)) {
		t.Fatal("enqueue on closed queue accepted")
	}
	if b.refs.Load() != 1 {
		t.Fatalf("refs = %d after rejected enqueue, want 1", b.refs.Load())
	}
	b.Release()
}
