package relaycore

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"livo/internal/telemetry"
)

// recWriter records writes per destination (thread-safe).
type recWriter struct {
	mu     sync.Mutex
	writes map[string][][]byte
}

func newRecWriter() *recWriter { return &recWriter{writes: make(map[string][][]byte)} }

func (w *recWriter) WriteTo(p []byte, a net.Addr) (int, error) {
	cp := append([]byte(nil), p...)
	w.mu.Lock()
	w.writes[a.String()] = append(w.writes[a.String()], cp)
	w.mu.Unlock()
	return len(p), nil
}

func (w *recWriter) count(a net.Addr) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.writes[a.String()])
}

func (w *recWriter) payloads(a net.Addr) [][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([][]byte(nil), w.writes[a.String()]...)
}

// gateWriter hands control of each WriteTo to the test: the call parks on
// entered until the test sends on proceed.
type gateWriter struct {
	rec     *recWriter
	entered chan []byte
	proceed chan struct{}
}

func newGateWriter() *gateWriter {
	return &gateWriter{rec: newRecWriter(), entered: make(chan []byte), proceed: make(chan struct{})}
}

func (w *gateWriter) WriteTo(p []byte, a net.Addr) (int, error) {
	cp := append([]byte(nil), p...)
	w.entered <- cp
	<-w.proceed
	return w.rec.WriteTo(cp, a)
}

func testCounter() *telemetry.Counter {
	return telemetry.NewRegistry(0).Counter("test_drops_total")
}

func udp(i int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(10, 0, byte(i>>8), byte(i)), Port: 40000 + i%1000}
}

func mediaFID(seq uint32) frameID { return frameID{media: true, stream: 1, seq: seq} }

func tag(frame, frag int) []byte { return []byte(fmt.Sprintf("f%d.%d", frame, frag)) }

func waitIdleQueue(t *testing.T, q *SubQueue) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !q.Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %+v", q.stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestQueueDropWholeFrames: a full ring drops the oldest frame's entire
// fragment run, leaving later frames intact.
func TestQueueDropWholeFrames(t *testing.T) {
	rec := newRecWriter()
	addr := udp(1)
	q := newSubQueue(rec, addr, 8, testCounter())
	bp := NewBufPool(64)

	// Frames 1 and 2 (4 fragments each) fill the ring of 8; no writer runs.
	for frame := 1; frame <= 2; frame++ {
		for frag := 0; frag < 4; frag++ {
			if !q.Enqueue(bp.Load(tag(frame, frag)), mediaFID(uint32(frame))) {
				t.Fatalf("enqueue f%d.%d rejected", frame, frag)
			}
		}
	}
	// Frame 3 fragment 0 forces the drop policy: all of frame 1 goes.
	if !q.Enqueue(bp.Load(tag(3, 0)), mediaFID(3)) {
		t.Fatalf("enqueue f3.0 rejected, want accepted after dropping frame 1")
	}
	st := q.stats()
	if st.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (whole frame 1)", st.Dropped)
	}
	if st.Depth != 5 {
		t.Fatalf("depth = %d, want 5 (frame 2 + f3.0)", st.Depth)
	}

	// Drain and verify order: frame 2's run intact, then frame 3.
	var wg sync.WaitGroup
	wg.Add(1)
	go q.run(&wg)
	waitIdleQueue(t, q)
	q.Close()
	wg.Wait()

	want := [][]byte{tag(2, 0), tag(2, 1), tag(2, 2), tag(2, 3), tag(3, 0)}
	got := rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("delivery[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if e, s, d := q.enqueued.Load(), q.sent.Load(), q.dropped.Load(); e != s+d {
		t.Fatalf("accounting: enqueued %d != sent %d + dropped %d", e, s, d)
	}
}

// TestQueueDropSkipsInFlightRun: when the oldest queued entries belong to
// the frame currently being written, the drop policy skips them and drops
// the next whole frame instead — a partially-sent run is never split.
func TestQueueDropSkipsInFlightRun(t *testing.T) {
	gw := newGateWriter()
	addr := udp(2)
	q := newSubQueue(gw, addr, 4, testCounter())
	bp := NewBufPool(64)

	var wg sync.WaitGroup
	wg.Add(1)
	go q.run(&wg)

	// Writer pops f1.0 and parks inside WriteTo; frame 1 is now in flight.
	if !q.Enqueue(bp.Load(tag(1, 0)), mediaFID(1)) {
		t.Fatal("enqueue f1.0 rejected")
	}
	<-gw.entered

	// Ring: the in-flight frame's tail, then frame 2.
	for _, e := range []struct{ frame, frag int }{{1, 1}, {1, 2}, {2, 0}, {2, 1}} {
		if !q.Enqueue(bp.Load(tag(e.frame, e.frag)), mediaFID(uint32(e.frame))) {
			t.Fatalf("enqueue f%d.%d rejected", e.frame, e.frag)
		}
	}
	// Full. Frame 3 must evict frame 2 — not frame 1's tail.
	if !q.Enqueue(bp.Load(tag(3, 0)), mediaFID(3)) {
		t.Fatal("enqueue f3.0 rejected, want accepted after dropping frame 2")
	}
	if d := q.dropped.Load(); d != 2 {
		t.Fatalf("dropped = %d, want 2 (frame 2's run)", d)
	}

	// Release the writer and pump the remaining gated writes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-gw.entered:
			case <-time.After(500 * time.Millisecond):
				return
			}
			gw.proceed <- struct{}{}
		}
	}()
	gw.proceed <- struct{}{} // f1.0
	<-done
	waitIdleQueue(t, q)
	q.Close()
	wg.Wait()

	want := []string{"f1.0", "f1.1", "f1.2", "f3.0"}
	got := gw.rec.payloads(addr)
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets %q, want %v", len(got), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (in-flight run split?)", i, got[i], want[i])
		}
	}
}

// TestQueueRejectsIncomingWhenRingIsInFlight: a ring consisting entirely of
// the in-flight frame's tail has nothing droppable — the incoming packet is
// rejected instead.
func TestQueueRejectsIncomingWhenRingIsInFlight(t *testing.T) {
	gw := newGateWriter()
	addr := udp(3)
	q := newSubQueue(gw, addr, 4, testCounter())
	bp := NewBufPool(64)

	var wg sync.WaitGroup
	wg.Add(1)
	go q.run(&wg)

	if !q.Enqueue(bp.Load(tag(1, 0)), mediaFID(1)) {
		t.Fatal("enqueue f1.0 rejected")
	}
	<-gw.entered // writer parked, frame 1 in flight

	for frag := 1; frag <= 4; frag++ {
		if !q.Enqueue(bp.Load(tag(1, frag)), mediaFID(1)) {
			t.Fatalf("enqueue f1.%d rejected", frag)
		}
	}
	buf := bp.Load(tag(2, 0))
	if q.Enqueue(buf, mediaFID(2)) {
		t.Fatal("enqueue f2.0 accepted, want rejected (ring is one in-flight run)")
	}
	buf.Release() // caller keeps its reference on rejection
	if d := q.dropped.Load(); d != 1 {
		t.Fatalf("dropped = %d, want 1 (the rejected incoming packet)", d)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-gw.entered:
			case <-time.After(500 * time.Millisecond):
				return
			}
			gw.proceed <- struct{}{}
		}
	}()
	gw.proceed <- struct{}{}
	<-done
	waitIdleQueue(t, q)
	q.Close()
	wg.Wait()

	if n := gw.rec.count(addr); n != 5 {
		t.Fatalf("delivered %d packets, want 5 (f1.0..f1.4)", n)
	}
}

// TestQueueCloseReleasesBacklog: closing with queued entries releases every
// buffer back to the pool (no leak) without writing them.
func TestQueueCloseReleasesBacklog(t *testing.T) {
	rec := newRecWriter()
	addr := udp(4)
	q := newSubQueue(rec, addr, 16, testCounter())
	bp := NewBufPool(64)

	bufs := make([]*PacketBuf, 8)
	for i := range bufs {
		bufs[i] = bp.Load(tag(1, i))
		if !q.Enqueue(bufs[i], mediaFID(1)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	q.Close()
	go q.run(&wg)
	wg.Wait()

	for i, b := range bufs {
		if b.refs.Load() != 0 {
			t.Fatalf("buffer %d has %d refs after close, want 0", i, b.refs.Load())
		}
	}
	if n := rec.count(addr); n != 0 {
		t.Fatalf("closed queue wrote %d packets, want 0", n)
	}
	// Rejected after close: caller keeps its reference.
	b := bp.Load(tag(2, 0))
	if q.Enqueue(b, mediaFID(2)) {
		t.Fatal("enqueue on closed queue accepted")
	}
	if b.refs.Load() != 1 {
		t.Fatalf("refs = %d after rejected enqueue, want 1", b.refs.Load())
	}
	b.Release()
}
