package relaycore

import (
	"bytes"
	"testing"
)

func TestBufPoolRecycles(t *testing.T) {
	bp := NewBufPool(64)
	p1 := bp.Get(10)
	if bp.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", bp.Misses())
	}
	p1.Release()
	p2 := bp.Get(20)
	if p2 != p1 {
		t.Fatalf("pool did not recycle the released buffer")
	}
	if bp.Misses() != 1 {
		t.Fatalf("misses = %d after recycle, want 1", bp.Misses())
	}
	if len(p2.Bytes()) != 20 {
		t.Fatalf("len(Bytes()) = %d, want 20", len(p2.Bytes()))
	}
}

func TestBufRefcount(t *testing.T) {
	bp := NewBufPool(64)
	p := bp.Get(8)
	p.Retain() // two references
	p.Release()
	// Still one reference out: the pool must not hand it back.
	q := bp.Get(8)
	if q == p {
		t.Fatalf("buffer recycled while a reference was outstanding")
	}
	p.Release()
	r := bp.Get(8)
	if r != p {
		t.Fatalf("buffer not recycled after final release")
	}
}

func TestBufPoolOversize(t *testing.T) {
	bp := NewBufPool(64)
	p := bp.Get(1000)
	if len(p.Bytes()) != 1000 {
		t.Fatalf("oversize len = %d, want 1000", len(p.Bytes()))
	}
	p.Release() // must not enter the pool (one-off allocation)
	q := bp.Get(8)
	if q == p {
		t.Fatalf("oversize buffer entered the pool")
	}
}

func TestBufPoolLoadCopies(t *testing.T) {
	bp := NewBufPool(64)
	src := []byte{1, 2, 3, 4}
	p := bp.Load(src)
	src[0] = 99
	if !bytes.Equal(p.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("Load aliased the caller's buffer: %v", p.Bytes())
	}
	p.Release()
}

func TestBufPoolBlankInPlaceFill(t *testing.T) {
	bp := NewBufPool(64)
	p := bp.GetBlank()
	if len(p.Raw()) != bp.Class() || bp.Class() != 64 {
		t.Fatalf("blank Raw len = %d, class = %d, want 64", len(p.Raw()), bp.Class())
	}
	// recvmmsg-style in-place fill: write into Raw, record the length.
	copy(p.Raw(), []byte{7, 8, 9})
	p.SetLen(3)
	if !bytes.Equal(p.Bytes(), []byte{7, 8, 9}) {
		t.Fatalf("Bytes after SetLen = %v", p.Bytes())
	}
	p.SetLen(1000) // clamped to the backing array
	if len(p.Bytes()) != 64 {
		t.Fatalf("SetLen past class: len = %d, want 64", len(p.Bytes()))
	}
	p.Release()
	if bp.Live() != 0 {
		t.Fatalf("Live = %d after release, want 0", bp.Live())
	}
	// The blank path recycles like any other get.
	if q := bp.GetBlank(); q != p {
		t.Fatalf("blank buffer not recycled")
	}
}

func TestBufPoolSteadyStateZeroAlloc(t *testing.T) {
	bp := NewBufPool(DefaultBufClass)
	payload := make([]byte, 1200)
	// Warm the pool.
	bp.Load(payload).Release()
	allocs := testing.AllocsPerRun(200, func() {
		bp.Load(payload).Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Load/Release allocates %.1f per op, want 0", allocs)
	}
}
