package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"livo/internal/codec/depth"
	"livo/internal/codec/vcodec"
	"livo/internal/core"
	"livo/internal/cull"
	"livo/internal/frame"
	"livo/internal/geom"
	"livo/internal/metrics"
	"livo/internal/pointcloud"
	"livo/internal/predict"
	"livo/internal/qoe"
	"livo/internal/scene"
	"livo/internal/trace"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(q Quality, out io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Throughput and utilization, LiVo vs MeshReduce", Table1},
		{"table3", "Dataset summary", Table3},
		{"table4", "Bandwidth trace statistics", Table4},
		{"fig4", "Color/depth RMSE vs split at 80 Mbps (band2)", Fig4},
		{"fig5", "Aggregated opinion scores (4 schemes)", Fig5},
		{"fig6", "Opinion scores across videos", Fig6},
		{"fig7fig8", "Opinion scores per network trace", Fig7Fig8},
		{"table5", "Comment category percentages", Table5},
		{"fig9fig10", "PSSIM geometry and color across videos", Fig9Fig10},
		{"fig11", "Stall rates across videos", Fig11},
		{"fig12", "Culling effect on PSSIM (no stalls)", Fig12},
		{"fig13fig14", "Achieved FPS per trace", Fig13Fig14},
		{"fig15", "Culling accuracy vs guard band and window", Fig15},
		{"fig16", "Kalman vs MLP pose prediction", Fig16},
		{"fig17", "Depth encoding schemes", Fig17},
		{"table6", "Per-component latency", Table6},
		{"fig18fig19", "Static vs dynamic bandwidth split", Fig18Fig19},
		{"fig20fig21", "LiVo-NoAdapt vs LiVo", Fig20Fig21},
		{"figa2", "Depth vs color bitrate sensitivity", FigA2},
		{"figa3", "Bandwidth trace variability", FigA3},
		{"ablation-tiling", "Tiled vs per-camera stream composition", AblationTiling},
		{"ablation-guard", "Guard band replay sweep", AblationGuardBand},
		{"chaos", "Loss/corruption chaos run vs clean (PLI recovery)", ChaosReport},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared matrix -------------------------------------------------------

// matrix caches the full <video,user,net,scheme> replay grid per Quality.
var (
	matrixMu    sync.Mutex
	matrixCache = map[string][]*Result{}
	workloadMu  sync.Mutex
	workloads   = map[string]*Workload{}
)

func qualityKey(q Quality) string {
	return fmt.Sprintf("%d-%dx%d-%d-%d-%d-%d-%g",
		q.Cameras, q.Width, q.Height, q.Frames, q.MetricEvery, q.MetricPoints, q.Users, q.CodecEfficiency)
}

// workload loads (and caches) one video's replay input.
func workload(name string, q Quality) (*Workload, error) {
	key := name + "/" + qualityKey(q)
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloads[key]; ok {
		return w, nil
	}
	w, err := LoadWorkload(name, q)
	if err != nil {
		return nil, err
	}
	// Keep at most a few workloads resident.
	if len(workloads) > 2 {
		for k := range workloads {
			delete(workloads, k)
			break
		}
	}
	workloads[key] = w
	return w, nil
}

// matrixSchemes are the four systems of the user study (§4.2).
var matrixSchemes = []Scheme{SchemeLiVo, SchemeNoCull, SchemeMeshReduce, SchemeDracoOracle}

// runMatrix replays every <video, user, net, scheme> combination once.
func runMatrix(q Quality) ([]*Result, error) {
	key := qualityKey(q)
	matrixMu.Lock()
	defer matrixMu.Unlock()
	if res, ok := matrixCache[key]; ok {
		return res, nil
	}
	nets := []*trace.Bandwidth{trace.Trace1(), trace.Trace2()}
	var out []*Result
	for _, video := range scene.VideoNames() {
		w, err := workload(video, q)
		if err != nil {
			return nil, err
		}
		for ui, user := range w.Users {
			for _, net := range nets {
				for _, sch := range matrixSchemes {
					res, err := Run(RunConfig{
						Workload: w, User: user, Net: net, Scheme: sch,
						Seed: int64(ui)*100 + 7,
					})
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s/%v: %w", video, user.Name, net.Name, sch, err)
					}
					out = append(out, res)
				}
			}
		}
	}
	matrixCache[key] = out
	return out, nil
}

// filter selects matrix rows.
func filter(rs []*Result, keep func(*Result) bool) []*Result {
	var out []*Result
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// mosOf scores one run with the QoE model.
func mosOf(r *Result) float64 {
	target := 30.0
	return qoe.Score(qoe.Measurement{
		PSSIMGeometry: r.GeomMean(),
		PSSIMColor:    r.ColorMean(),
		StallRate:     r.StallRate,
		FPS:           r.MeanFPS,
		TargetFPS:     target,
	})
}

func meanMOS(rs []*Result) float64 {
	var xs []float64
	for _, r := range rs {
		xs = append(xs, mosOf(r))
	}
	return metrics.Mean(xs)
}

// --- experiments ---------------------------------------------------------

// Table1 reproduces Table 1: mean throughput and utilization for
// MeshReduce vs LiVo on both traces.
func Table1(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Table 1: throughput (full-scale-equivalent Mbps) and utilization\n")
	fmt.Fprintf(out, "%-9s %-14s %-12s %-14s %-12s %-14s\n",
		"trace", "capacity", "Mesh TPS", "Mesh Util%", "LiVo TPS", "LiVo Util%")
	for _, net := range []string{"trace-1", "trace-2"} {
		cap := trace.Traces()[net].Stats().Mean
		mesh := filter(rs, func(r *Result) bool { return r.Net == net && r.Scheme == SchemeMeshReduce })
		livo := filter(rs, func(r *Result) bool { return r.Net == net && r.Scheme == SchemeLiVo })
		var mTPS, mU, lTPS, lU []float64
		for _, r := range mesh {
			mTPS = append(mTPS, r.TPSMbps)
			mU = append(mU, r.UtilPct)
		}
		for _, r := range livo {
			lTPS = append(lTPS, r.TPSMbps)
			lU = append(lU, r.UtilPct)
		}
		fmt.Fprintf(out, "%-9s %-14.2f %-12.2f %-14.2f %-12.2f %-14.2f\n",
			net, cap, metrics.Mean(mTPS), metrics.Mean(mU), metrics.Mean(lTPS), metrics.Mean(lU))
	}
	return nil
}

// Table3 reproduces Table 3: the dataset summary with measured raw frame
// sizes (converted to full-scale MB via the pixel ratio).
func Table3(q Quality, out io.Writer) error {
	fmt.Fprintf(out, "Table 3: dataset summary\n")
	fmt.Fprintf(out, "%-10s %-28s %-10s %-8s %-14s\n", "video", "description", "dur (s)", "objects", "frame MB (fs)")
	for _, spec := range scene.Dataset() {
		v, err := scene.OpenVideo(spec.Name, q.capture())
		if err != nil {
			return err
		}
		views := v.Frame(0)
		bytes := 0
		for _, view := range views {
			valid := view.Depth.ValidCount()
			bytes += valid * 15 // point cloud bytes (xyz float32 + rgb)
		}
		fullScale := float64(bytes) / q.PixelRatio() / 1e6
		fmt.Fprintf(out, "%-10s %-28s %-10.0f %-8d %-14.1f\n",
			spec.Name, spec.Desc, spec.Duration, spec.Objects, fullScale)
	}
	return nil
}

// Table4 reproduces Table 4: bandwidth trace statistics.
func Table4(_ Quality, out io.Writer) error {
	fmt.Fprintf(out, "Table 4: bandwidth trace statistics (Mbps)\n")
	fmt.Fprintf(out, "%-9s %-9s %-9s %-9s %-9s %-9s\n", "trace", "mean", "max", "min", "p90", "p10")
	for _, name := range []string{"trace-2", "trace-1"} {
		s := trace.Traces()[name].Stats()
		fmt.Fprintf(out, "%-9s %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f\n",
			name, s.Mean, s.Max, s.Min, s.P90, s.P10)
	}
	return nil
}

// Fig4 reproduces Fig 4: sender-side color and depth RMSE across static
// splits at a fixed 80 Mbps target on band2.
func Fig4(q Quality, out io.Writer) error {
	w, err := workload("band2", q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fig 4: RMSE vs split at 80 Mbps (band2)\n")
	fmt.Fprintf(out, "%-7s %-14s %-14s\n", "split", "colorRMSE", "depthRMSE(mm)")
	budget := 80 * q.BandwidthScale() * 1e6
	nFrames := q.Frames
	if nFrames > 18 {
		nFrames = 18
	}
	for split := 0.50; split <= 0.951; split += 0.05 {
		s, err := core.NewSender(core.SenderConfig{
			Variant: core.LiVoStaticSplit, Array: w.Array(),
			ViewParams: geom.DefaultViewParams(), StaticSplit: split, ProbeRMSE: true,
		})
		if err != nil {
			return err
		}
		// Static-split clamping is part of LiVo (0.5..0.9); for the sweep
		// we want raw splits, so widen the clamp via config: the sender
		// clamps internally, so emulate >0.9 with 0.9 (figure flattens).
		var cSum, dSum float64
		n := 0
		for i := 0; i < nFrames; i++ {
			enc, err := s.ProcessFrame(w.Views[i], budget)
			if err != nil {
				return err
			}
			if enc.ColorRMSE >= 0 && !enc.Color.Key {
				cSum += enc.ColorRMSE
				dSum += enc.DepthRMSEmm
				n++
			}
		}
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(out, "%-7.2f %-14.3f %-14.3f\n", split, cSum/float64(n), dSum/float64(n))
	}
	return nil
}

// Fig5 reproduces Fig 5: aggregated opinion scores per scheme.
func Fig5(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fig 5: aggregated opinion scores (QoE model)\n")
	fmt.Fprintf(out, "%-14s %-7s %-7s %-7s\n", "scheme", "MOS", "p25", "p75")
	for _, sch := range []Scheme{SchemeDracoOracle, SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
		sub := filter(rs, func(r *Result) bool { return r.Scheme == sch })
		var xs []float64
		for _, r := range sub {
			xs = append(xs, mosOf(r))
		}
		fmt.Fprintf(out, "%-14v %-7.2f %-7.2f %-7.2f\n",
			sch, metrics.Mean(xs), metrics.Percentile(xs, 25), metrics.Percentile(xs, 75))
	}
	return nil
}

// Fig6 reproduces Fig 6: opinion scores per video.
func Fig6(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fig 6: opinion scores per video\n")
	fmt.Fprintf(out, "%-10s %-13s %-12s %-12s %-8s\n", "video", "DracoOracle", "MeshReduce", "NoCull", "LiVo")
	for _, video := range scene.VideoNames() {
		row := []float64{}
		for _, sch := range []Scheme{SchemeDracoOracle, SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
			sub := filter(rs, func(r *Result) bool { return r.Video == video && r.Scheme == sch })
			row = append(row, meanMOS(sub))
		}
		fmt.Fprintf(out, "%-10s %-13.2f %-12.2f %-12.2f %-8.2f\n", video, row[0], row[1], row[2], row[3])
	}
	return nil
}

// Fig7Fig8 reproduces Figs 7-8: opinion scores per network trace.
func Fig7Fig8(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figs 7/8: opinion scores per trace\n")
	fmt.Fprintf(out, "%-9s %-13s %-12s %-12s %-8s\n", "trace", "DracoOracle", "MeshReduce", "NoCull", "LiVo")
	for _, net := range []string{"trace-1", "trace-2"} {
		row := []float64{}
		for _, sch := range []Scheme{SchemeDracoOracle, SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
			sub := filter(rs, func(r *Result) bool { return r.Net == net && r.Scheme == sch })
			row = append(row, meanMOS(sub))
		}
		fmt.Fprintf(out, "%-9s %-13.2f %-12.2f %-12.2f %-8.2f\n", net, row[0], row[1], row[2], row[3])
	}
	return nil
}

// Table5 reproduces Table 5: Low/Medium/High comment category percentages.
func Table5(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Table 5: comment category percentages (L/M/H)\n")
	fmt.Fprintf(out, "%-14s %-21s %-21s %-21s\n", "scheme", "framerate L/M/H", "stalls L/M/H", "quality L/M/H")
	for _, sch := range []Scheme{SchemeDracoOracle, SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
		sub := filter(rs, func(r *Result) bool { return r.Scheme == sch })
		var fr, st, qu [3]int
		for _, r := range sub {
			c := qoe.Categorize(qoe.Measurement{
				PSSIMGeometry: r.GeomMean(), PSSIMColor: r.ColorMean(),
				StallRate: r.StallRate, FPS: r.MeanFPS, TargetFPS: 30,
			})
			fr[int(c.FrameRate)]++
			st[int(c.Stalls)]++
			qu[int(c.Quality)]++
		}
		n := float64(len(sub))
		pct := func(a [3]int) string {
			return fmt.Sprintf("%5.1f/%5.1f/%5.1f", 100*float64(a[0])/n, 100*float64(a[1])/n, 100*float64(a[2])/n)
		}
		fmt.Fprintf(out, "%-14v %-21s %-21s %-21s\n", sch, pct(fr), pct(st), pct(qu))
	}
	return nil
}

// Fig9Fig10 reproduces Figs 9-10: PSSIM geometry and color per video and
// scheme (stalled frames scored 0, §4.3).
func Fig9Fig10(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	for _, metric := range []string{"geometry", "color"} {
		fmt.Fprintf(out, "Fig %s: PSSIM %s per video (mean±std)\n",
			map[string]string{"geometry": "9", "color": "10"}[metric], metric)
		fmt.Fprintf(out, "%-10s %-16s %-16s %-16s %-16s\n", "video", "DracoOracle", "MeshReduce", "NoCull", "LiVo")
		for _, video := range scene.VideoNames() {
			fmt.Fprintf(out, "%-10s", video)
			for _, sch := range []Scheme{SchemeDracoOracle, SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
				sub := filter(rs, func(r *Result) bool { return r.Video == video && r.Scheme == sch })
				var xs []float64
				for _, r := range sub {
					if metric == "geometry" {
						xs = append(xs, r.GeomPSSIM...)
					} else {
						xs = append(xs, r.ColorPSSIM...)
					}
				}
				fmt.Fprintf(out, " %7.1f (±%4.1f)", metrics.Mean(xs), metrics.Std(xs))
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}

// Fig11 reproduces Fig 11: stall rates per video for the three schemes
// that can stall (MeshReduce trades frame rate instead, §4.3).
func Fig11(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fig 11: stall rate (%%) per video\n")
	fmt.Fprintf(out, "%-10s %-13s %-12s %-8s\n", "video", "DracoOracle", "NoCull", "LiVo")
	for _, video := range scene.VideoNames() {
		fmt.Fprintf(out, "%-10s", video)
		for _, sch := range []Scheme{SchemeDracoOracle, SchemeNoCull, SchemeLiVo} {
			sub := filter(rs, func(r *Result) bool { return r.Video == video && r.Scheme == sch })
			var xs []float64
			for _, r := range sub {
				xs = append(xs, 100*r.StallRate)
			}
			fmt.Fprintf(out, " %-12.1f", metrics.Mean(xs))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Fig12 reproduces Fig 12: culling's quality effect with stalls excluded.
func Fig12(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Fig 12: PSSIM geometry, stall-free frames only\n")
	fmt.Fprintf(out, "%-10s %-12s %-8s\n", "video", "NoCull", "LiVo")
	nonZeroMean := func(xs []float64) float64 {
		var ys []float64
		for _, x := range xs {
			if x > 0 {
				ys = append(ys, x)
			}
		}
		return metrics.Mean(ys)
	}
	for _, video := range scene.VideoNames() {
		fmt.Fprintf(out, "%-10s", video)
		for _, sch := range []Scheme{SchemeNoCull, SchemeLiVo} {
			sub := filter(rs, func(r *Result) bool { return r.Video == video && r.Scheme == sch })
			var xs []float64
			for _, r := range sub {
				xs = append(xs, r.GeomPSSIM...)
			}
			fmt.Fprintf(out, " %-11.1f", nonZeroMean(xs))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Fig13Fig14 reproduces Figs 13-14: achieved frame rate per trace.
func Fig13Fig14(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figs 13/14: achieved FPS (mean±std across videos)\n")
	fmt.Fprintf(out, "%-9s %-14s %-14s %-14s\n", "trace", "MeshReduce", "NoCull", "LiVo")
	for _, net := range []string{"trace-1", "trace-2"} {
		fmt.Fprintf(out, "%-9s", net)
		for _, sch := range []Scheme{SchemeMeshReduce, SchemeNoCull, SchemeLiVo} {
			sub := filter(rs, func(r *Result) bool { return r.Net == net && r.Scheme == sch })
			var xs []float64
			for _, r := range sub {
				xs = append(xs, r.MeanFPS)
			}
			fmt.Fprintf(out, " %5.1f (±%4.1f)", metrics.Mean(xs), metrics.Std(xs))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Fig15 reproduces Fig 15: culling accuracy (recall %) and sent fraction
// for guard bands x prediction windows on band2.
func Fig15(q Quality, out io.Writer) error {
	// The W=30 window needs poses one second past each sampled frame: use
	// a longer workload than the replay default.
	if q.Frames < 75 {
		q.Frames = 75
	}
	w, err := workload("band2", q)
	if err != nil {
		return err
	}
	user := w.Users[0]
	fmt.Fprintf(out, "Fig 15: culling accuracy %% (sent fraction) on band2\n")
	fmt.Fprintf(out, "%-10s", "guard(cm)")
	windows := []int{5, 10, 20, 30}
	for _, wd := range windows {
		fmt.Fprintf(out, " %-16s", fmt.Sprintf("W=%d", wd))
	}
	fmt.Fprintln(out)
	for _, guardCM := range []float64{10, 20, 30, 50} {
		fmt.Fprintf(out, "%-10.0f", guardCM)
		for _, wd := range windows {
			horizon := float64(wd) / 30
			pred := cull.NewFrustumPredictor(geom.DefaultViewParams())
			pred.Guard = guardCM / 100
			pred.SetHorizon(horizon)
			var recalls, sents []float64
			for i := 0; i < q.Frames; i++ {
				t := float64(i) / 30
				pred.ObservePose(t, user.At(t))
				j := i + wd
				if i < 10 || j >= q.Frames {
					continue
				}
				actual := geom.NewFrustum(user.At(float64(j)/30), geom.DefaultViewParams())
				acc, err := cull.MeasureAccuracy(w.Array(), w.Views[i], pred.PredictFrustum(), actual)
				if err != nil {
					return err
				}
				recalls = append(recalls, 100*acc.Recall)
				sents = append(sents, acc.SentFraction)
			}
			fmt.Fprintf(out, " %6.2f (%.2f)  ", metrics.Mean(recalls), metrics.Mean(sents))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Fig16 reproduces Fig 16: Kalman vs MLP pose prediction errors.
func Fig16(q Quality, out io.Writer) error {
	fmt.Fprintf(out, "Fig 16: pose prediction errors (~167 ms horizon)\n")
	fmt.Fprintf(out, "%-16s %-14s %-16s\n", "method", "position (m)", "rotation (deg)")
	// Train on a few traces, test on a held-out one — the small-data
	// regime of conferencing (§3.4).
	var train [][]geom.Pose
	for seed := int64(40); seed < 44; seed++ {
		u := trace.SynthUserTrace("train", seed, 25, 30)
		var poses []geom.Pose
		for _, s := range u.Samples {
			poses = append(poses, s.Pose)
		}
		train = append(train, poses)
	}
	test := trace.SynthUserTrace("test", 99, 25, 30)
	const horizonSamples = 5
	horizon := float64(horizonSamples) / 30

	evalErrors := func(observe func(float64, geom.Pose), predictPose func() geom.Pose) (float64, float64) {
		var posErr, rotErr []float64
		for i, s := range test.Samples {
			observe(s.T, s.Pose)
			j := i + horizonSamples
			if i < 10 || j >= len(test.Samples) {
				continue
			}
			p := predictPose()
			truth := test.Samples[j].Pose
			posErr = append(posErr, p.Position.Dist(truth.Position))
			rotErr = append(rotErr, p.Rotation.AngleTo(truth.Rotation)*180/math.Pi)
		}
		return metrics.Mean(posErr), metrics.Mean(rotErr)
	}

	for _, hidden := range []int{3, 32, 64} {
		rng := rand.New(rand.NewSource(int64(hidden)))
		mlp, err := predict.NewMLPPredictor([]int{hidden, hidden, hidden}, rng)
		if err != nil {
			return err
		}
		epochs := 40
		if _, err := mlp.TrainOnTraces(train, horizonSamples, epochs, 0.01, rng); err != nil {
			return err
		}
		p, r := evalErrors(mlp.Observe, func() geom.Pose { return mlp.Predict(horizon) })
		fmt.Fprintf(out, "MLP-%-12d %-14.3f %-16.2f\n", hidden, p, r)
	}
	k := predict.NewKalman()
	p, r := evalErrors(k.Observe, func() geom.Pose { return k.Predict(horizon) })
	fmt.Fprintf(out, "%-16s %-14.3f %-16.2f\n", "Kalman", p, r)
	return nil
}

// Fig17 reproduces Fig 17 (and quantifies Fig A.1): depth encoding schemes
// compared at equal bitrate on band2's tiled depth stream.
func Fig17(q Quality, out io.Writer) error {
	w, err := workload("band2", q)
	if err != nil {
		return err
	}
	tiler, err := frame.NewTiler(q.Cameras, q.Width, q.Height)
	if err != nil {
		return err
	}
	tw, th := tiler.FrameSize()
	// Depth budget: the depth share of an 80 Mbps session.
	budget := int(0.8 * 80 * q.BandwidthScale() * 1e6 / 8 / 30)
	nFrames := q.Frames
	if nFrames > 15 {
		nFrames = 15
	}
	fmt.Fprintf(out, "Fig 17: depth encodings at equal bitrate (%d B/frame)\n", budget)
	fmt.Fprintf(out, "%-12s %-16s %-16s\n", "scheme", "depthRMSE (mm)", "PSSIM geometry")
	for _, sch := range []depth.Scheme{depth.Scaled16, depth.Unscaled16, depth.RGBPacked} {
		enc, err := depth.NewEncoder(depth.Config{Scheme: sch, Width: tw, Height: th})
		if err != nil {
			return err
		}
		dec, err := depth.NewDecoder(depth.Config{Scheme: sch, Width: tw, Height: th})
		if err != nil {
			return err
		}
		var rmse []float64
		var pssim []float64
		for i := 0; i < nFrames; i++ {
			depthViews := make([]*frame.DepthImage, q.Cameras)
			colorViews := make([]*frame.ColorImage, q.Cameras)
			for c, view := range w.Views[i] {
				depthViews[c] = view.Depth
				colorViews[c] = view.Color
			}
			tiled, err := tiler.ComposeDepth(depthViews)
			if err != nil {
				return err
			}
			pkt, err := enc.Encode(tiled, budget)
			if err != nil {
				return err
			}
			got, err := dec.Decode(pkt)
			if err != nil {
				return err
			}
			if i < 2 {
				continue // rate-model warmup
			}
			rmse = append(rmse, metrics.DepthRMSE(tiled, got))
			if i%q.MetricEvery == 0 {
				// Reconstruct with decoded depth + original color and
				// compare geometry.
				views := make([]frame.RGBDFrame, q.Cameras)
				for c := 0; c < q.Cameras; c++ {
					d, err := tiler.ExtractDepth(got, c)
					if err != nil {
						return err
					}
					views[c] = frame.RGBDFrame{Color: colorViews[c], Depth: d}
				}
				pos, cols, err := w.Array().PointsFromViews(views)
				if err != nil {
					return err
				}
				cloud, _ := pointcloud.FromSlices(pos, cols)
				ps := metrics.PointSSIM(w.GT[i], cloud, metrics.PSSIMOptions{MaxPoints: q.MetricPoints, K: 8, Seed: 5})
				pssim = append(pssim, ps.Geometry)
			}
		}
		fmt.Fprintf(out, "%-12v %-16.2f %-16.1f\n", sch, metrics.Mean(rmse), metrics.Mean(pssim))
	}
	return nil
}

// Table6 reproduces Table 6: per-component latency for LiVo and NoCull.
func Table6(q Quality, out io.Writer) error {
	rs, err := runMatrix(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Table 6: per-component latency (ms)\n")
	fmt.Fprintf(out, "%-14s %-9s %-9s %-9s %-9s %-9s\n", "scheme", "sender", "network", "jitter", "receiver", "e2e")
	for _, sch := range []Scheme{SchemeLiVo, SchemeNoCull} {
		sub := filter(rs, func(r *Result) bool { return r.Scheme == sch })
		agg := map[string][]float64{}
		for _, r := range sub {
			for k, v := range r.Latency {
				agg[k] = append(agg[k], v*1000)
			}
		}
		fmt.Fprintf(out, "%-14v %-9.1f %-9.1f %-9.1f %-9.1f %-9.1f\n", sch,
			metrics.Mean(agg["sender"]), metrics.Mean(agg["network"]),
			metrics.Mean(agg["jitter"]), metrics.Mean(agg["receiver"]), metrics.Mean(agg["e2e"]))
	}
	return nil
}

// Fig18Fig19 reproduces Figs 18-19: static splits vs LiVo's dynamic split
// on office1 at fixed bitrates.
func Fig18Fig19(q Quality, out io.Writer) error {
	w, err := workload("office1", q)
	if err != nil {
		return err
	}
	user := w.Users[0]
	splits := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	rates := []float64{60, 80, 100, 120}
	for _, metric := range []string{"geometry", "color"} {
		fmt.Fprintf(out, "Fig %s: PSSIM %s, static splits vs dynamic (office1)\n",
			map[string]string{"geometry": "18", "color": "19"}[metric], metric)
		fmt.Fprintf(out, "%-10s", "Mbps")
		for _, sp := range splits {
			fmt.Fprintf(out, " s=%-6.1f", sp)
		}
		fmt.Fprintf(out, " %-8s\n", "dynamic")
		for _, rate := range rates {
			fmt.Fprintf(out, "%-10.0f", rate)
			runOne := func(sch Scheme, sp float64) (*Result, error) {
				return Run(RunConfig{
					Workload: w, User: user, Scheme: sch,
					StaticSplit: sp, FixedBandwidthMbps: rate, Seed: 11,
				})
			}
			for _, sp := range splits {
				r, err := runOne(SchemeStaticSplit, sp)
				if err != nil {
					return err
				}
				if metric == "geometry" {
					fmt.Fprintf(out, " %-8.1f", r.GeomMean())
				} else {
					fmt.Fprintf(out, " %-8.1f", r.ColorMean())
				}
			}
			r, err := runOne(SchemeLiVo, 0)
			if err != nil {
				return err
			}
			if metric == "geometry" {
				fmt.Fprintf(out, " %-8.1f\n", r.GeomMean())
			} else {
				fmt.Fprintf(out, " %-8.1f\n", r.ColorMean())
			}
		}
	}
	return nil
}

// Fig20Fig21 reproduces Figs 20-21: fixed-QP (Starline settings) vs LiVo.
func Fig20Fig21(q Quality, out io.Writer) error {
	fmt.Fprintf(out, "Figs 20/21: LiVo-NoAdapt (QP 22/14) vs LiVo, PSSIM mean\n")
	fmt.Fprintf(out, "%-9s %-16s %-16s %-16s %-16s\n",
		"trace", "NoAdapt geom", "LiVo geom", "NoAdapt color", "LiVo color")
	for _, netName := range []string{"trace-1", "trace-2"} {
		net := trace.Traces()[netName]
		var row [4][]float64
		for _, video := range []string{"office1", "band2"} {
			w, err := workload(video, q)
			if err != nil {
				return err
			}
			for i, sch := range []Scheme{SchemeNoAdapt, SchemeLiVo} {
				r, err := Run(RunConfig{Workload: w, User: w.Users[0], Net: net, Scheme: sch, Seed: 21})
				if err != nil {
					return err
				}
				row[i] = append(row[i], r.GeomMean())
				row[i+2] = append(row[i+2], r.ColorMean())
			}
		}
		fmt.Fprintf(out, "%-9s %-16.1f %-16.1f %-16.1f %-16.1f\n", netName,
			metrics.Mean(row[0]), metrics.Mean(row[1]), metrics.Mean(row[2]), metrics.Mean(row[3]))
	}
	return nil
}

// FigA2 reproduces Fig A.2: quality sensitivity to depth vs color bitrate.
func FigA2(q Quality, out io.Writer) error {
	w, err := workload("band2", q)
	if err != nil {
		return err
	}
	user := w.Users[0]
	fmt.Fprintf(out, "Fig A.2: PSSIM vs per-stream bitrate (band2)\n")
	fmt.Fprintf(out, "%-22s %-12s %-12s\n", "config", "geomPSSIM", "colorPSSIM")
	// Vary the depth share by pinning static splits at a fixed total rate:
	// low splits starve depth, high splits starve color (equivalent to the
	// paper's fix-one-vary-other sweep at session level).
	for _, sp := range []float64{0.5, 0.65, 0.8, 0.9} {
		r, err := Run(RunConfig{
			Workload: w, User: user, Scheme: SchemeStaticSplit,
			StaticSplit: sp, FixedBandwidthMbps: 70, Seed: 31,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "depth-share=%-10.2f %-12.1f %-12.1f\n", sp, r.GeomMean(), r.ColorMean())
	}
	return nil
}

// FigA3 reproduces Fig A.3: trace variability over time.
func FigA3(_ Quality, out io.Writer) error {
	fmt.Fprintf(out, "Fig A.3: bandwidth over time (30 s windows, Mbps)\n")
	fmt.Fprintf(out, "%-9s", "window")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(out, " %6d", i*30)
	}
	fmt.Fprintln(out)
	for _, name := range []string{"trace-1", "trace-2"} {
		tr := trace.Traces()[name]
		fmt.Fprintf(out, "%-9s", name)
		for wdw := 0; wdw < 10; wdw++ {
			var sum float64
			n := 0
			for s := wdw * 30; s < (wdw+1)*30 && s < len(tr.Mbps); s++ {
				sum += tr.Mbps[s]
				n++
			}
			if n == 0 {
				break
			}
			fmt.Fprintf(out, " %6.1f", sum/float64(n))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// AblationTiling quantifies the §3.2 stream-composition choice: encoding
// the N camera views as ONE tiled frame per modality versus N independent
// per-camera streams, at the same total byte budget. Consistent tile
// placement preserves macroblock locality, so tiling should cost little
// compression efficiency while using 2 encoder instances instead of 2N
// (hardware codecs cap concurrent encoders, §3.2).
func AblationTiling(q Quality, out io.Writer) error {
	w, err := workload("band2", q)
	if err != nil {
		return err
	}
	tiler, err := frame.NewTiler(q.Cameras, q.Width, q.Height)
	if err != nil {
		return err
	}
	tw, th := tiler.FrameSize()
	budget := int(60 * q.BandwidthScale() * 1e6 / 8 / 30) // color share of 60 Mbps
	nFrames := q.Frames
	if nFrames > 15 {
		nFrames = 15
	}

	// Tiled: one encoder for all cameras.
	tiledCfg := vcodec.ColorConfig(tw, th)
	tiledEnc, err := vcodec.NewEncoder(tiledCfg)
	if err != nil {
		return err
	}
	tiledDec, err := vcodec.NewDecoder(tiledCfg)
	if err != nil {
		return err
	}
	// Separate: one encoder per camera, each with budget/N.
	sepCfg := vcodec.ColorConfig(q.Width, q.Height)
	sepEncs := make([]*vcodec.Encoder, q.Cameras)
	sepDecs := make([]*vcodec.Decoder, q.Cameras)
	for i := range sepEncs {
		if sepEncs[i], err = vcodec.NewEncoder(sepCfg); err != nil {
			return err
		}
		if sepDecs[i], err = vcodec.NewDecoder(sepCfg); err != nil {
			return err
		}
	}

	var tiledBytes, sepBytes int
	var tiledRMSE, sepRMSE []float64
	for i := 0; i < nFrames; i++ {
		colorViews := make([]*frame.ColorImage, q.Cameras)
		for c, view := range w.Views[i] {
			colorViews[c] = view.Color
		}
		tiled, err := tiler.ComposeColor(colorViews)
		if err != nil {
			return err
		}
		src := vcodec.FromColor(tiled)
		pkt, err := tiledEnc.Encode(src, budget)
		if err != nil {
			return err
		}
		got, err := tiledDec.Decode(pkt)
		if err != nil {
			return err
		}
		if i >= 2 {
			tiledBytes += pkt.SizeBytes()
			tiledRMSE = append(tiledRMSE, vcodec.PlaneRMSE(src, got))
		}
		for c := 0; c < q.Cameras; c++ {
			srcC := vcodec.FromColor(colorViews[c])
			pktC, err := sepEncs[c].Encode(srcC, budget/q.Cameras)
			if err != nil {
				return err
			}
			gotC, err := sepDecs[c].Decode(pktC)
			if err != nil {
				return err
			}
			if i >= 2 {
				sepBytes += pktC.SizeBytes()
				sepRMSE = append(sepRMSE, vcodec.PlaneRMSE(srcC, gotC))
			}
		}
	}
	fmt.Fprintf(out, "Ablation: stream composition (band2 color, equal total budget)\n")
	fmt.Fprintf(out, "%-22s %-10s %-12s %-10s\n", "composition", "encoders", "bytes/frame", "RMSE")
	fmt.Fprintf(out, "%-22s %-10d %-12d %-10.2f\n", "tiled (LiVo)", 2, tiledBytes/(nFrames-2), metrics.Mean(tiledRMSE))
	fmt.Fprintf(out, "%-22s %-10d %-12d %-10.2f\n", "per-camera streams", 2*q.Cameras, sepBytes/(nFrames-2), metrics.Mean(sepRMSE))
	return nil
}

// AblationGuardBand sweeps the guard band's quality/bandwidth trade-off in
// full replay (the §4.5 design-choice validation behind the fixed 20 cm).
func AblationGuardBand(q Quality, out io.Writer) error {
	w, err := workload("pizza1", q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ablation: guard band in replay (pizza1, trace-2)\n")
	fmt.Fprintf(out, "%-10s %-12s %-12s %-10s\n", "guard(cm)", "geomPSSIM", "colorPSSIM", "TPS Mbps")
	for _, guard := range []float64{0.05, 0.10, 0.20, 0.40} {
		r, err := Run(RunConfig{
			Workload: w, User: w.Users[0], Net: trace.Trace2(),
			Scheme: SchemeLiVo, GuardBand: guard, Seed: 17,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10.0f %-12.1f %-12.1f %-10.1f\n",
			guard*100, r.GeomMean(), r.ColorMean(), r.TPSMbps)
	}
	return nil
}
