package experiments

import (
	"fmt"
	"io"

	"livo/internal/codec/vcodec"
	"livo/internal/core"
	"livo/internal/frametrace"
	"livo/internal/geom"
	"livo/internal/metrics"
	"livo/internal/netem"
	"livo/internal/telemetry"
	"livo/internal/transport"
)

// Chaos replay: unlike the bandwidth-replay experiments (harness.go), which
// model loss as NACK-plus-one-RTT, this harness runs the actual packet
// path — packetize, XOR parity, marshal — through a netem.Chaos fault
// injector and the receiver's real reassembly and recovery machinery:
// jitter buffers, FEC repair, frame skipping, the reference-generation
// check in the decoders, last-good-frame concealment, and the PLI→IDR
// state machine. It validates the §A.1 recovery story end to end: faults
// must never panic, an outage must end within a bounded number of frames
// after the PLI, and decoded quality must return to the clean run's level.

// ChaosRunConfig configures one chaos replay.
type ChaosRunConfig struct {
	Workload *Workload
	// Chaos parameterizes the fault injector; the zero value is a clean run.
	Chaos netem.ChaosConfig
	// FEC enables XOR parity packets (transport.BuildParity).
	FEC bool
	// GOP is the encoder key-frame interval (default 15).
	GOP int
	// LinkMbps is the working-scale (not full-scale) link capacity
	// (default 2.0 — several fragments per frame at chaos-test resolutions).
	LinkMbps float64
	// Seed drives metric subsampling.
	Seed int64
	// Trace, when non-nil, receives per-frame hop stamps in *simulated*
	// replay time (nanoseconds since replay start), so a chaos run exports
	// deterministic capture→reconstruct timelines (-trace-dump). Sender-side
	// hops share the capture instant (the replay has no wall-clock encode
	// cost); wire and jitter hops carry the fault injector's real delays.
	Trace *frametrace.Ledger
}

func (cc ChaosRunConfig) withDefaults() ChaosRunConfig {
	if cc.GOP <= 0 {
		cc.GOP = 15
	}
	if cc.LinkMbps == 0 {
		cc.LinkMbps = 2.0
	}
	return cc
}

// ChaosSample is the decoded quality of one successfully paired frame.
type ChaosSample struct {
	Seq             uint32
	Geometry, Color float64
}

// ChaosResult aggregates one chaos replay.
type ChaosResult struct {
	Frames    int // frames sent
	Paired    int // frames decoded and paired at the receiver
	Concealed int // decode failures covered by the last good frame
	// CorruptPackets counts packets rejected at transport parse time
	// (bit flips caught by Unmarshal).
	CorruptPackets int
	PLISent        int // PLIs emitted by the receiver
	Refreshes      int // recovery IDRs armed at the sender
	Outages        int // distinct undecodable periods
	// MaxRecoveryFrames is the longest outage, in frames, from the first
	// decode failure to the next successfully paired frame.
	MaxRecoveryFrames          int
	SkippedColor, SkippedDepth int // jitter-buffer frame skips
	FECRecovered               int // fragments repaired by parity
	// Samples holds per-frame decoded quality on the metric cadence.
	Samples []ChaosSample
	// Telemetry is the run's private registry: the same events counted by
	// the result fields, observed through the instrumented components
	// (chaos injector, sender, receiver). Tests cross-check the two views.
	Telemetry *telemetry.Registry
}

// arrival is one packet copy in flight between the link and a jitter buffer.
type arrival struct {
	t   float64
	buf []byte
}

// RunChaos replays one workload through the packet-level pipeline with
// fault injection. It uses the LiVoNoCull variant (culling is orthogonal to
// loss recovery and needs no pose feedback loop here).
func RunChaos(cc ChaosRunConfig) (*ChaosResult, error) {
	cc = cc.withDefaults()
	w := cc.Workload
	q := w.Quality
	const fps = 30.0
	dt := 1 / fps

	// A private registry isolates this run's counters from telemetry.Default
	// (several chaos runs execute per test binary).
	reg := telemetry.NewRegistry(256)
	sender, err := core.NewSender(core.SenderConfig{
		Variant:    core.LiVoNoCull,
		Array:      w.Array(),
		ViewParams: geom.DefaultViewParams(),
		GOP:        cc.GOP,
		Telemetry:  reg,
	})
	if err != nil {
		return nil, err
	}
	receiver, err := core.NewReceiver(core.ReceiverConfig{Array: w.Array(), GOP: cc.GOP, Telemetry: reg})
	if err != nil {
		return nil, err
	}

	link := netem.NewFixedLink(cc.LinkMbps)
	chaos := netem.NewChaos(cc.Chaos)
	chaos.Instrument(reg)
	mCorrupt := reg.Counter("livo_transport_corrupt_packets_total")
	mPLI := reg.Counter("livo_pli_sent_total")
	mConcealed := reg.Counter("livo_concealed_frames_total")
	mFEC := reg.Counter("livo_fec_recovered_total")
	jb := map[uint8]*transport.JitterBuffer{
		transport.StreamColor: transport.NewJitterBuffer(),
		transport.StreamDepth: transport.NewJitterBuffer(),
	}
	pli := transport.NewPLITracker()

	res := &ChaosResult{Frames: q.Frames, Telemetry: reg}
	var inflight []arrival
	pliPending := false
	outageStart := -1 // frame seq of the first failure of the current outage
	budget := 0.85 * cc.LinkMbps * 1e6
	tr := cc.Trace // nil-safe: every Stamp below is a no-op when disabled
	simNs := func(t float64) int64 { return int64(t * 1e9) }

	// deliver moves due arrivals into the jitter buffers.
	deliver := func(now float64) {
		kept := inflight[:0]
		for _, a := range inflight {
			if a.t > now {
				kept = append(kept, a)
				continue
			}
			p, err := transport.Unmarshal(a.buf)
			if err != nil {
				res.CorruptPackets++
				mCorrupt.Inc()
				continue
			}
			if p.FragIndex == 0 && !p.Parity {
				tr.Stamp(frametrace.HopWire, p.Stream, p.FrameSeq, frametrace.NoSub, simNs(a.t))
			}
			if b := jb[p.Stream]; b != nil {
				b.Push(p, a.t)
			}
		}
		inflight = kept
	}

	// pop drains both jitter buffers through the receiver's decode/pair/
	// conceal/PLI path.
	pop := func(now float64) error {
		for _, stream := range []uint8{transport.StreamColor, transport.StreamDepth} {
			for _, af := range jb[stream].Pop(now) {
				tr.Stamp(frametrace.HopJitter, stream, af.FrameSeq, frametrace.NoSub, simNs(now))
				pkt := &vcodec.Packet{Data: af.Data, Key: af.Key, Seq: af.FrameSeq}
				var pf *core.PairedFrame
				var err error
				if stream == transport.StreamColor {
					pf, err = receiver.PushColor(pkt)
					tr.Stamp(frametrace.HopDecodeColor, 0, af.FrameSeq, frametrace.NoSub, simNs(now))
				} else {
					pf, err = receiver.PushDepth(pkt)
					tr.Stamp(frametrace.HopDecodeDepth, 0, af.FrameSeq, frametrace.NoSub, simNs(now))
				}
				if err != nil {
					// Undecodable: conceal with the last good pair and run
					// the PLI schedule. Malformed data must surface as an
					// error here, never as a panic.
					res.Concealed++
					mConcealed.Inc()
					if outageStart < 0 {
						outageStart = int(af.FrameSeq)
						res.Outages++
					}
					if pli.Request(now) {
						res.PLISent++
						mPLI.Inc()
						pliPending = true
					}
					continue
				}
				if pf == nil {
					continue
				}
				// A paired frame ends any outage: both streams are decodable
				// again. The pair instant stands in for reconstruction in the
				// trace (the replay only reconstructs on the metric cadence).
				tr.Stamp(frametrace.HopReconstruct, 0, pf.Seq, frametrace.NoSub, simNs(now))
				pli.OnKeyFrame()
				res.Paired++
				if outageStart >= 0 {
					if rec := int(pf.Seq) - outageStart; rec > res.MaxRecoveryFrames {
						res.MaxRecoveryFrames = rec
					}
					outageStart = -1
				}
				if int(pf.Seq) < len(w.GT) && int(pf.Seq)%q.MetricEvery == 0 {
					got, err := receiver.Reconstruct(pf, nil)
					if err != nil {
						return err
					}
					ps := metrics.PointSSIM(w.GT[pf.Seq], got, metrics.PSSIMOptions{
						MaxPoints: q.MetricPoints, K: 8, Seed: cc.Seed + int64(pf.Seq),
					})
					res.Samples = append(res.Samples, ChaosSample{
						Seq: pf.Seq, Geometry: ps.Geometry, Color: ps.Color,
					})
				}
			}
		}
		return nil
	}

	for i := 0; i < q.Frames; i++ {
		now := float64(i) * dt
		// Feedback applied at the next capture instant (the PLI rides the
		// lightly-loaded reverse path; one frame of delay models its RTT).
		if pliPending {
			if sender.RequestKeyFrame() {
				res.Refreshes++
			}
			pliPending = false
		}
		enc, err := sender.ProcessFrame(w.Views[i], budget)
		if err != nil {
			return nil, err
		}
		// Sender-side hops all share the capture instant: the replay models
		// transport time, not encode time, so these stages are zero-width.
		tr.Stamp(frametrace.HopCapture, 0, enc.Seq, frametrace.NoSub, simNs(now))
		tr.Stamp(frametrace.HopEncodeColor, 0, enc.Seq, frametrace.NoSub, simNs(now))
		tr.Stamp(frametrace.HopEncodeDepth, 0, enc.Seq, frametrace.NoSub, simNs(now))
		tr.Stamp(frametrace.HopPacketize, 0, enc.Seq, frametrace.NoSub, simNs(now))
		var pkts []transport.Packet
		for _, s := range []struct {
			stream uint8
			pkt    *vcodec.Packet
		}{{transport.StreamColor, enc.Color}, {transport.StreamDepth, enc.Depth}} {
			media := transport.Packetize(s.stream, enc.Seq, s.pkt.Key, uint64(now*1e6), s.pkt.Data)
			pkts = append(pkts, media...)
			if cc.FEC {
				pkts = append(pkts, transport.BuildParity(media)...)
			}
		}
		// Pace across the frame interval, then link → chaos → receiver.
		gap := dt / float64(len(pkts)+1)
		for pi := range pkts {
			sendT := now + gap*float64(pi)
			buf := pkts[pi].Marshal()
			for _, d := range chaos.Apply(buf) {
				arr, dropped := link.Send(sendT, len(d.Payload)+20)
				if dropped {
					continue
				}
				inflight = append(inflight, arrival{t: arr + d.ExtraDelay, buf: d.Payload})
			}
		}
		deliver(now)
		if err := pop(now); err != nil {
			return nil, err
		}
	}
	// Drain: keep ticking past the last capture so queued and
	// jitter-buffered frames finish delivery.
	for j := 0; j < 30; j++ {
		now := (float64(q.Frames) + float64(j)) * dt
		deliver(now)
		if err := pop(now); err != nil {
			return nil, err
		}
	}
	// An outage still open at the end of the drain never recovered: charge
	// it the full remaining window so the recovery bound cannot be gamed by
	// ending the run mid-outage.
	if outageStart >= 0 {
		if rec := q.Frames - outageStart; rec > res.MaxRecoveryFrames {
			res.MaxRecoveryFrames = rec
		}
	}
	res.SkippedColor = jb[transport.StreamColor].Skipped()
	res.SkippedDepth = jb[transport.StreamDepth].Skipped()
	res.FECRecovered = jb[transport.StreamColor].FECRecovered() + jb[transport.StreamDepth].FECRecovered()
	mFEC.Add(int64(res.FECRecovered))
	return res, nil
}

// GeomBySeq indexes the geometry samples by frame sequence (for comparing
// a chaos run against its clean twin frame by frame).
func (r *ChaosResult) GeomBySeq() map[uint32]float64 {
	m := make(map[uint32]float64, len(r.Samples))
	for _, s := range r.Samples {
		m[s.Seq] = s.Geometry
	}
	return m
}

// ChaosReport is the `chaos` experiment entry point: a clean replay and a
// fault-injected replay of office1 side by side (EXPERIMENTS.md).
func ChaosReport(q Quality, out io.Writer) error {
	w, err := workload("office1", q)
	if err != nil {
		return err
	}
	clean, err := RunChaos(ChaosRunConfig{Workload: w, FEC: true, Seed: 1})
	if err != nil {
		return err
	}
	faulty, err := RunChaos(ChaosRunConfig{
		Workload: w, Chaos: netem.DefaultChaosConfig(42), FEC: true, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Chaos: burst loss + corruption vs clean (office1, GOP 15)\n")
	fmt.Fprintf(out, "%-22s %-10s %-10s\n", "metric", "clean", "chaos")
	row := func(name string, c, f interface{}) { fmt.Fprintf(out, "%-22s %-10v %-10v\n", name, c, f) }
	row("frames paired", clean.Paired, faulty.Paired)
	row("concealed", clean.Concealed, faulty.Concealed)
	row("corrupt packets", clean.CorruptPackets, faulty.CorruptPackets)
	row("PLIs sent", clean.PLISent, faulty.PLISent)
	row("recovery IDRs", clean.Refreshes, faulty.Refreshes)
	row("outages", clean.Outages, faulty.Outages)
	row("max recovery (frames)", clean.MaxRecoveryFrames, faulty.MaxRecoveryFrames)
	row("jitter skips", clean.SkippedColor+clean.SkippedDepth, faulty.SkippedColor+faulty.SkippedDepth)
	row("FEC recovered", clean.FECRecovered, faulty.FECRecovered)
	var cg, fg []float64
	for _, s := range clean.Samples {
		cg = append(cg, s.Geometry)
	}
	for _, s := range faulty.Samples {
		fg = append(fg, s.Geometry)
	}
	fmt.Fprintf(out, "%-22s %-10.1f %-10.1f\n", "geom PSSIM (decoded)", metrics.Mean(cg), metrics.Mean(fg))
	return nil
}
