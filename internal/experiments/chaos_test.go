package experiments

import (
	"testing"

	"livo/internal/metrics"
	"livo/internal/netem"
)

// chaosQuality keeps the chaos integration runs fast: a small rig, enough
// frames for several GOPs at GOP 15.
func chaosQuality() Quality {
	return Quality{Cameras: 4, Width: 64, Height: 48, Frames: 90, MetricEvery: 3, MetricPoints: 400, Users: 1}
}

func chaosWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := LoadWorkload("office1", chaosQuality())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestChaosRecovery is the acceptance scenario of the robustness work:
// ~5% burst loss plus bit flips, duplication, and reordering through the
// real packet path. The run must not panic, every outage must recover
// within 2xGOP frames of its detection (PLI -> IDR -> decode), and decoded
// frames must match the clean run's quality.
func TestChaosRecovery(t *testing.T) {
	w := chaosWorkload(t)
	clean, err := RunChaos(ChaosRunConfig{Workload: w, FEC: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Paired != clean.Frames {
		t.Fatalf("clean run paired %d/%d frames", clean.Paired, clean.Frames)
	}
	if clean.Concealed != 0 || clean.PLISent != 0 {
		t.Fatalf("clean run saw faults: concealed=%d pli=%d", clean.Concealed, clean.PLISent)
	}

	faulty, err := RunChaos(ChaosRunConfig{
		Workload: w, Chaos: netem.DefaultChaosConfig(42), FEC: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: paired=%d concealed=%d corrupt=%d pli=%d idr=%d outages=%d maxRecovery=%d fec=%d",
		faulty.Paired, faulty.Concealed, faulty.CorruptPackets, faulty.PLISent,
		faulty.Refreshes, faulty.Outages, faulty.MaxRecoveryFrames, faulty.FECRecovered)

	if faulty.Paired == 0 {
		t.Fatal("chaos run delivered nothing")
	}
	// The schedule at this seed must actually exercise the recovery path.
	if faulty.Outages == 0 || faulty.PLISent == 0 || faulty.Refreshes == 0 {
		t.Errorf("chaos schedule did not trigger PLI recovery: outages=%d pli=%d idr=%d",
			faulty.Outages, faulty.PLISent, faulty.Refreshes)
	}
	// Bounded recovery: 2xGOP frames from detection to the next good pair.
	if limit := 2 * 15; faulty.MaxRecoveryFrames > limit {
		t.Errorf("recovery took %d frames, limit %d", faulty.MaxRecoveryFrames, limit)
	}
	// Post-recovery quality: frames that decoded under chaos must score
	// within 5%% of the same frames in the clean run.
	cleanBySeq := clean.GeomBySeq()
	var got, want []float64
	for _, s := range faulty.Samples {
		if cg, ok := cleanBySeq[s.Seq]; ok {
			got = append(got, s.Geometry)
			want = append(want, cg)
		}
	}
	if len(got) < 5 {
		t.Fatalf("only %d comparable quality samples", len(got))
	}
	gm, wm := metrics.Mean(got), metrics.Mean(want)
	if gm < 0.95*wm {
		t.Errorf("decoded quality degraded: chaos %.2f vs clean %.2f", gm, wm)
	}

	// Telemetry cross-check: the run's registry must have seen the same
	// events the harness counted — injected faults were really injected,
	// and the recovery machinery really fired.
	reg := faulty.Telemetry
	if reg == nil {
		t.Fatal("chaos result carries no telemetry registry")
	}
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	if counter("livo_chaos_dropped_total") == 0 {
		t.Error("telemetry saw no injected packet drops")
	}
	if counter("livo_chaos_flipped_total") == 0 {
		t.Error("telemetry saw no injected bit flips")
	}
	if got := counter("livo_transport_corrupt_packets_total"); got != int64(faulty.CorruptPackets) {
		t.Errorf("corrupt-packet counter = %d, result says %d", got, faulty.CorruptPackets)
	}
	if got := counter("livo_concealed_frames_total"); got != int64(faulty.Concealed) {
		t.Errorf("concealed counter = %d, result says %d", got, faulty.Concealed)
	}
	if got := counter("livo_pli_sent_total"); got != int64(faulty.PLISent) {
		t.Errorf("PLI counter = %d, result says %d", got, faulty.PLISent)
	}
	if got := counter("livo_fec_recovered_total"); got != int64(faulty.FECRecovered) {
		t.Errorf("FEC counter = %d, result says %d", got, faulty.FECRecovered)
	}
	if got := counter("livo_frames_paired_total"); got != int64(faulty.Paired) {
		t.Errorf("paired counter = %d, result says %d", got, faulty.Paired)
	}
	if counter("livo_frames_encoded_total") != int64(faulty.Frames) {
		t.Errorf("encoded counter = %d, want %d", counter("livo_frames_encoded_total"), faulty.Frames)
	}
	// Undecodable frames surface as decode errors before concealment; with
	// faults injected there must be at least one per outage.
	if counter("livo_decode_errors_total") < int64(faulty.Outages) {
		t.Errorf("decode-error counter %d < outages %d",
			counter("livo_decode_errors_total"), faulty.Outages)
	}
	// The clean twin must be telemetry-quiet on the fault counters.
	cleanReg := clean.Telemetry
	for _, name := range []string{
		"livo_transport_corrupt_packets_total", "livo_concealed_frames_total",
		"livo_pli_sent_total", "livo_decode_errors_total",
	} {
		if v := cleanReg.Counter(name).Value(); v != 0 {
			t.Errorf("clean run counter %s = %d, want 0", name, v)
		}
	}
}

// TestChaosRecoveryNoFEC runs the same schedule without parity packets:
// recovery then leans entirely on frame skipping and PLI, and must still be
// bounded and panic-free.
func TestChaosRecoveryNoFEC(t *testing.T) {
	w := chaosWorkload(t)
	faulty, err := RunChaos(ChaosRunConfig{
		Workload: w, Chaos: netem.DefaultChaosConfig(42), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FECRecovered != 0 {
		t.Errorf("FEC disabled but recovered %d fragments", faulty.FECRecovered)
	}
	if faulty.Paired == 0 {
		t.Fatal("chaos run without FEC delivered nothing")
	}
	if limit := 2 * 15; faulty.MaxRecoveryFrames > limit {
		t.Errorf("recovery took %d frames, limit %d", faulty.MaxRecoveryFrames, limit)
	}
}

// TestChaosHeavyCorruption cranks the bit-flip rate two orders of magnitude
// above the default: most packets are corrupt, and the assertion is purely
// "no panic, errors surface as errors" (decoded output may be almost
// nothing).
func TestChaosHeavyCorruption(t *testing.T) {
	w := chaosWorkload(t)
	cfg := netem.DefaultChaosConfig(7)
	cfg.BitFlipProb = 0.25
	res, err := RunChaos(ChaosRunConfig{Workload: w, Chaos: cfg, FEC: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptPackets == 0 && res.Concealed == 0 {
		t.Error("heavy corruption schedule produced no observable faults")
	}
}
