package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"livo/internal/relaycore"
	"livo/internal/telemetry"
	"livo/internal/transport"
	"livo/internal/udpio"
)

// Wire-path benchmark (`livo-bench -netbench`): drives the relay data plane
// over real loopback UDP sockets — one flood sender, a reuseport ingest
// group, and one sink socket per subscriber — and A/Bs the kernel-batched
// wire path (sendmmsg fan-out, recvmmsg ingest) against the per-packet
// fallback (udpio.Config.DisableBatch, one sendto/recvfrom per datagram).
// The results land in BENCH_net.json.
//
// Where -relaybench isolates the router over an in-memory conn (routing
// cost, queue behaviour, loss recovery), -netbench puts the kernel back in
// the loop: syscall amortization is the whole measurement, so the figures
// that matter are write-syscalls/pkt (one sendmmsg drains a whole writer
// ring batch, so a flooded relay approaches 1/Batch), delivered pkts/s at
// the sinks, and allocs per wire packet (the batched path decodes source
// addresses into reusable scratch, so it stays allocation-free where the
// per-packet fallback pays net.UDPConn.ReadFrom's per-datagram address
// allocations).
//
// The A/B covers the full wire path this bench reproduces in miniature:
// the relay's sockets AND the subscriber (sink) sockets switch mode
// together, because the per-packet baseline is the pre-batching system —
// per-datagram reads on the session receive path included. Only the
// producer stays batched in both modes: it is the load generator, and its
// offered rate is admission-controlled far below its own capacity, so its
// mode cannot bottleneck either cell.

// NetBenchResult is one (mode, subscriber-count) measurement over real
// loopback sockets. Rates are per second of measured window; the syscall
// figures aggregate every socket in the relay's reuseport group.
type NetBenchResult struct {
	Mode                string  `json:"mode"` // "batched" or "perpacket"
	Subs                int     `json:"subs"`
	Shards              int     `json:"shards"`  // reuseport group size = ingest loops
	Seconds             float64 `json:"seconds"` // measured window
	KernelBatched       bool    `json:"kernel_batched"` // sendmmsg/recvmmsg actually active
	OfferedPerSec       float64 `json:"offered_per_sec"`   // producer → kernel
	IngestPerSec        float64 `json:"ingest_per_sec"`    // relay reads off the wire
	FanoutPerSec        float64 `json:"fanout_per_sec"`    // relay writes into the kernel
	DeliveredPerSec     float64 `json:"delivered_per_sec"` // sinks read off the wire
	WriteSyscallsPerPkt float64 `json:"write_syscalls_per_pkt"`
	ReadSyscallsPerPkt  float64 `json:"read_syscalls_per_pkt"`
	AvgWriteBatch       float64 `json:"avg_write_batch"` // pkts per write syscall
	AvgReadBatch        float64 `json:"avg_read_batch"`  // pkts per read syscall
	AllocsPerPacket     float64 `json:"allocs_per_packet"` // heap allocs / wire pkts (in+out)
	KernelDrops         int64   `json:"kernel_drops"` // fan-out pkts the sinks never saw
	RecvBufBytes        int     `json:"recvbuf_bytes"` // SO_RCVBUF the kernel granted
	SendBufBytes        int     `json:"sendbuf_bytes"` // SO_SNDBUF the kernel granted
}

// NetBenchConfig parameterizes a run; zero values pick defaults.
type NetBenchConfig struct {
	SubCounts []int         // subscriber (sink socket) counts to sweep
	Shards    int           // reuseport sockets = router ingest shards
	Batch     int           // packets per syscall (udpio.Config.Batch)
	SockBuf   int           // SO_RCVBUF/SO_SNDBUF request, bytes
	Duration  time.Duration // timed window per cell
	Warmup    time.Duration // untimed warmup per cell (pools grow here)
}

func (c *NetBenchConfig) fill(short bool) {
	if len(c.SubCounts) == 0 {
		c.SubCounts = []int{1, 8, 64, 256}
		if short {
			c.SubCounts = []int{1, 8, 64}
		}
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Batch <= 0 {
		c.Batch = udpio.DefaultBatch
	}
	if c.SockBuf == 0 {
		c.SockBuf = udpio.DefaultBufferBytes
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
		if short {
			c.Duration = 350 * time.Millisecond
		}
	}
	if c.Warmup <= 0 {
		// The warmup covers both pool growth and the producer's admission
		// controller converging on the relay's fan-out capacity.
		c.Warmup = 700 * time.Millisecond
		if short {
			c.Warmup = 300 * time.Millisecond
		}
	}
}

// netGroup fans router writes across the reuseport socket group by
// destination hash — the same stable per-subscriber pick the relay shell
// uses, so egress ordering per sink holds.
type netGroup struct{ socks []*udpio.Socket }

func (g netGroup) pick(addr net.Addr) *udpio.Socket {
	return g.socks[relaycore.KeyOf(addr).Hash()%uint64(len(g.socks))]
}

func (g netGroup) WriteTo(p []byte, addr net.Addr) (int, error) {
	return g.pick(addr).WriteTo(p, addr)
}

func (g netGroup) WriteBatch(ps [][]byte, addr net.Addr) (int, error) {
	return g.pick(addr).WriteBatch(ps, addr)
}

// RunNetBench sweeps subscriber counts for the per-packet and batched wire
// paths and returns the measurements (per-packet first at each count, so a
// reader scanning the output sees baseline then speedup). Each (mode,
// subs) cell runs twice with fully fresh sockets and the round with the
// higher delivered rate is kept — the same keep-the-best idiom as the
// telemetry-overhead bench, because a single-core box's scheduler can
// hand either mode a bad draw and turn the A/B ratio into noise.
func RunNetBench(cfg NetBenchConfig, short bool, progress func(string)) ([]NetBenchResult, error) {
	cfg.fill(short)
	if progress == nil {
		progress = func(string) {}
	}
	const rounds = 2
	modes := []string{"perpacket", "batched"}
	var out []NetBenchResult
	for _, subs := range cfg.SubCounts {
		best := map[string]NetBenchResult{}
		// Rounds interleave the modes (pp, b, pp, b) so slow host-load
		// drift lands on both sides of the A/B rather than on one.
		for round := 0; round < rounds; round++ {
			for _, mode := range modes {
				r, err := runNetBenchOne(mode, subs, cfg)
				if err != nil {
					return nil, err
				}
				if b, ok := best[mode]; !ok || r.DeliveredPerSec > b.DeliveredPerSec {
					best[mode] = r
				}
			}
		}
		for _, mode := range modes {
			r := best[mode]
			progress(fmt.Sprintf("%-9s subs=%-4d shards=%d kernel=%-5v %9.0f offered/s %9.0f ingest/s %10.0f fanout/s %10.0f delivered/s | %.4f wr-sys/pkt %.4f rd-sys/pkt (batch %4.1f wr / %4.1f rd) %5.2f allocs/pkt drops=%d",
				r.Mode, r.Subs, r.Shards, r.KernelBatched, r.OfferedPerSec, r.IngestPerSec,
				r.FanoutPerSec, r.DeliveredPerSec, r.WriteSyscallsPerPkt, r.ReadSyscallsPerPkt,
				r.AvgWriteBatch, r.AvgReadBatch, r.AllocsPerPacket, r.KernelDrops))
			out = append(out, r)
		}
	}
	return out, nil
}

// netSnap is one point-in-time reading of every counter the result rates
// are computed from; a cell measures the delta between two snaps so warmup
// (pool growth, socket buffer autotuning) never pollutes the window.
type netSnap struct {
	offered, delivered int64
	wire               udpio.SocketStats
	mallocs            uint64
}

func runNetBenchOne(mode string, subs int, cfg NetBenchConfig) (res NetBenchResult, err error) {
	sockCfg := udpio.Config{
		Batch:        cfg.Batch,
		RecvBuf:      cfg.SockBuf,
		SendBuf:      cfg.SockBuf,
		DisableBatch: mode == "perpacket",
	}
	socks, err := udpio.ListenGroup("udp", "127.0.0.1:0", cfg.Shards, sockCfg)
	if err != nil {
		return res, fmt.Errorf("netbench: relay sockets: %w", err)
	}
	defer func() {
		for _, s := range socks {
			s.Close()
		}
	}()

	// The producer stays batched in both modes (see package comment); the
	// sinks switch with the relay — they play the session receive path,
	// which the per-packet baseline reads one datagram at a time.
	prod, err := udpio.Listen("udp", "127.0.0.1:0",
		udpio.Config{Batch: cfg.Batch, RecvBuf: cfg.SockBuf, SendBuf: cfg.SockBuf})
	if err != nil {
		return res, fmt.Errorf("netbench: producer socket: %w", err)
	}
	defer prod.Close()

	var delivered atomic.Int64
	var sinkWG sync.WaitGroup
	sinks := make([]*udpio.Socket, subs)
	defer func() {
		for _, s := range sinks {
			if s != nil {
				s.Close()
			}
		}
		sinkWG.Wait()
	}()
	for i := range sinks {
		sinks[i], err = udpio.Listen("udp", "127.0.0.1:0", sockCfg)
		if err != nil {
			return res, fmt.Errorf("netbench: sink socket %d: %w", i, err)
		}
		sinkWG.Add(1)
		go drainNetSink(sinks[i], cfg.Batch, &delivered, &sinkWG)
	}

	router := relaycore.NewRouter(netGroup{socks}, prod.LocalAddr(), relaycore.Config{
		Shards:    cfg.Shards,
		Telemetry: telemetry.NewRegistry(0),
	})
	for _, s := range sinks {
		router.Subscribe(s.LocalAddr())
	}

	// Batch ingest loops, one per group socket — the same recvmmsg-into-
	// shard-pool idiom as the relay shell's runBatchIngest, media-only (this
	// harness generates no feedback).
	closed := make(chan struct{})
	var ingestWG sync.WaitGroup
	for i, s := range socks {
		ingestWG.Add(1)
		go func(i int, s *udpio.Socket) {
			defer ingestWG.Done()
			pool := router.ShardPool(i % cfg.Shards)
			ms := make([]udpio.Message, cfg.Batch)
			bufs := make([]*relaycore.PacketBuf, len(ms))
			for j := range ms {
				bufs[j] = pool.GetBlank()
				ms[j].Buf = bufs[j].Raw()
			}
			defer func() {
				for _, b := range bufs {
					b.Release()
				}
			}()
			for {
				got, rerr := s.ReadBatch(ms)
				if rerr != nil {
					select {
					case <-closed:
						return
					default:
					}
					if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
						continue
					}
					return
				}
				for j := 0; j < got; j++ {
					n := ms[j].N
					if n <= 0 {
						continue
					}
					pb := bufs[j]
					pb.SetLen(n)
					bufs[j] = pool.GetBlank()
					ms[j].Buf = bufs[j].Raw()
					router.RouteMedia(pb)
				}
			}
		}(i, s)
	}

	// Closed-loop producer: one sender flow (a relay serves one sender),
	// restamped media fragments in Batch-sized sendmmsg bursts, paced just
	// above the relay's measured fan-out capacity. An open-loop flood would
	// bias the A/B the wrong way: the batched ingest admits several times
	// more packets than the fan-out can carry, and the router then spends
	// the core on ring-drop bookkeeping instead of the wire — while the
	// per-packet cell is accidentally admission-controlled by its own slow
	// ingest. The controller keeps both modes saturated (admitted ≈ 1.1×
	// what the kernel accepts on the way out) with drop thrash bounded, so
	// the delivered figure measures the wire path, not the overload policy.
	var offered atomic.Int64
	stop := make(chan struct{})
	var prodWG sync.WaitGroup
	relayAddr := socks[0].LocalAddr()
	fanoutNow := func() int64 {
		var t int64
		for _, s := range socks {
			t += s.Stats().WritePackets
		}
		return t
	}
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		tmpl := mediaTemplate()
		batch := make([][]byte, cfg.Batch)
		for i := range batch {
			batch[i] = append([]byte(nil), tmpl...)
		}
		seq, frag := uint32(1), 0
		// Admitted packets/s at the producer; each admitted packet becomes
		// subs fan-out packets. Start near plausible capacity and let the
		// multiplicative controller converge within the warmup.
		rate := 300_000.0 / float64(subs)
		const ctlEvery = 50 * time.Millisecond
		lastCtl := time.Now()
		lastFan := fanoutNow()
		lastOff := offered.Load()
		next := time.Now()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range batch {
				p := batch[i]
				restampFrame(p, transport.StreamColor, seq, false)
				p[6] = byte(frag >> 8)
				p[7] = byte(frag)
				if frag++; frag == benchFragsPerFrame {
					frag = 0
					seq++
				}
			}
			n, werr := prod.WriteBatch(batch, relayAddr)
			offered.Add(int64(n))
			if werr != nil {
				select {
				case <-stop:
					return
				default:
				}
			}
			next = next.Add(time.Duration(float64(cfg.Batch) / rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			} else if d < -20*time.Millisecond {
				next = time.Now() // fell behind; don't bank a burst backlog
			} else {
				runtime.Gosched()
			}
			if elapsed := time.Since(lastCtl); elapsed >= ctlEvery {
				fan, off := fanoutNow(), offered.Load()
				fanRate := float64(fan-lastFan) / elapsed.Seconds()
				offRate := float64(off-lastOff) * float64(subs) / elapsed.Seconds()
				if offRate > 0 && fanRate >= 0.97*offRate {
					rate *= 1.05 // the relay kept up: probe for headroom
				} else if fanRate > 0 {
					rate = fanRate / float64(subs) * 1.02 // hold at capacity
				}
				if rate < 500 {
					rate = 500
				}
				lastCtl, lastFan, lastOff = time.Now(), fan, off
			}
		}
	}()

	snap := func() netSnap {
		var s netSnap
		s.offered = offered.Load()
		s.delivered = delivered.Load()
		for _, sk := range socks {
			st := sk.Stats()
			s.wire.ReadSyscalls += st.ReadSyscalls
			s.wire.ReadPackets += st.ReadPackets
			s.wire.WriteSyscalls += st.WriteSyscalls
			s.wire.WritePackets += st.WritePackets
			s.wire.RecvBufBytes = st.RecvBufBytes
			s.wire.SendBufBytes = st.SendBufBytes
			s.wire.Batched = s.wire.Batched || st.Batched
		}
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		s.mallocs = m.Mallocs
		return s
	}

	time.Sleep(cfg.Warmup)
	s0 := snap()
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	s1 := snap()
	secs := time.Since(t0).Seconds()

	// Teardown: stop the producer, then unblock and join the ingest loops
	// before closing the router (same order as the relay shell), then the
	// deferred closes reap the sockets and sink drains.
	close(stop)
	_ = prod.SetWriteDeadline(time.Now())
	prodWG.Wait()
	close(closed)
	for _, s := range socks {
		_ = s.SetReadDeadline(time.Now())
	}
	ingestWG.Wait()
	router.Close()

	ingest := s1.wire.ReadPackets - s0.wire.ReadPackets
	fanout := s1.wire.WritePackets - s0.wire.WritePackets
	readSys := s1.wire.ReadSyscalls - s0.wire.ReadSyscalls
	writeSys := s1.wire.WriteSyscalls - s0.wire.WriteSyscalls
	res = NetBenchResult{
		Mode:            mode,
		Subs:            subs,
		Shards:          len(socks),
		Seconds:         secs,
		KernelBatched:   s1.wire.Batched,
		OfferedPerSec:   float64(s1.offered-s0.offered) / secs,
		IngestPerSec:    float64(ingest) / secs,
		FanoutPerSec:    float64(fanout) / secs,
		DeliveredPerSec: float64(s1.delivered-s0.delivered) / secs,
		RecvBufBytes:    s1.wire.RecvBufBytes,
		SendBufBytes:    s1.wire.SendBufBytes,
	}
	if fanout > 0 {
		res.WriteSyscallsPerPkt = float64(writeSys) / float64(fanout)
		res.AvgWriteBatch = float64(fanout) / float64(writeSys)
	}
	if ingest > 0 {
		res.ReadSyscallsPerPkt = float64(readSys) / float64(ingest)
		if readSys > 0 {
			res.AvgReadBatch = float64(ingest) / float64(readSys)
		}
	}
	if wire := ingest + fanout; wire > 0 {
		res.AllocsPerPacket = float64(s1.mallocs-s0.mallocs) / float64(wire)
	}
	if d := fanout - (s1.delivered - s0.delivered); d > 0 {
		res.KernelDrops = d
	}
	return res, nil
}

// drainNetSink counts every datagram a subscriber socket receives; it
// exits when the socket closes under it.
func drainNetSink(s *udpio.Socket, batch int, delivered *atomic.Int64, wg *sync.WaitGroup) {
	defer wg.Done()
	ms := make([]udpio.Message, batch)
	for j := range ms {
		ms[j].Buf = make([]byte, 2048)
	}
	for {
		got, err := s.ReadBatch(ms)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		n := 0
		for j := 0; j < got; j++ {
			if ms[j].N > 0 {
				n++
			}
		}
		delivered.Add(int64(n))
	}
}
