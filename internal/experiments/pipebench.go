package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"livo/internal/core"
	"livo/internal/geom"
	"livo/internal/pointcloud"
	"livo/internal/render"
)

// Pipeline frame-path benchmark (`livo-bench -pipebench`): replays the
// full capture→render path — sender encode, receiver decode/pair,
// reconstruction, splat render — and measures per-stage wall time and
// heap allocations at each requested GOMAXPROCS. The results land in
// BENCH_pipeline.json so the receive-path trajectory is tracked across
// commits like BENCH_codec.json tracks the codec.

// PipeStageResult is one (stage, procs) measurement.
type PipeStageResult struct {
	Stage       string  `json:"stage"`
	Procs       int     `json:"procs"`
	Frames      int     `json:"frames"`
	MsMean      float64 `json:"ms_mean"`
	MsP95       float64 `json:"ms_p95"`
	AllocsFrame float64 `json:"allocs_frame"` // heap objects per frame
	BytesFrame  float64 `json:"bytes_frame"`  // heap bytes per frame
}

// pipeStages in pipeline order.
var pipeStages = []string{"sender_process", "push_color", "push_depth", "reconstruct", "render"}

// pipeSampler accumulates per-stage samples for one procs setting.
type pipeSampler struct {
	ms     map[string][]float64
	allocs map[string][]float64
	bytes  map[string][]float64
}

func newPipeSampler() *pipeSampler {
	return &pipeSampler{
		ms:     map[string][]float64{},
		allocs: map[string][]float64{},
		bytes:  map[string][]float64{},
	}
}

// measure runs fn as one stage sample: wall time plus Mallocs/TotalAlloc
// deltas from runtime.MemStats. Reading MemStats briefly stops the world,
// which is why latency is captured inside fn's own window only.
func (ps *pipeSampler) measure(stage string, fn func() error) error {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := fn()
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return err
	}
	ps.ms[stage] = append(ps.ms[stage], dt.Seconds()*1000)
	ps.allocs[stage] = append(ps.allocs[stage], float64(m1.Mallocs-m0.Mallocs))
	ps.bytes[stage] = append(ps.bytes[stage], float64(m1.TotalAlloc-m0.TotalAlloc))
	return nil
}

func (ps *pipeSampler) results(procs int) []PipeStageResult {
	var out []PipeStageResult
	for _, st := range pipeStages {
		samples := ps.ms[st]
		if len(samples) == 0 {
			continue
		}
		out = append(out, PipeStageResult{
			Stage:       st,
			Procs:       procs,
			Frames:      len(samples),
			MsMean:      mean(samples),
			MsP95:       p95(samples),
			AllocsFrame: mean(ps.allocs[st]),
			BytesFrame:  mean(ps.bytes[st]),
		})
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func p95(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(float64(len(sorted)-1)*0.95 + 0.5)
	return sorted[i]
}

// RunPipeBench replays frames of the named video through the full frame
// path at each GOMAXPROCS in procsList and returns per-stage
// measurements. The first warmup frames per setting are excluded (arena
// growth, rate-control convergence, key-frame cost).
func RunPipeBench(name string, q Quality, procsList []int, warmup int) ([]PipeStageResult, error) {
	w, err := LoadWorkload(name, q)
	if err != nil {
		return nil, err
	}
	viewer := geom.LookAt(geom.V3(0, 1.5, 2.4), geom.V3(0, 0.9, 0), geom.V3(0, 1, 0))
	vp := geom.DefaultViewParams()
	frustum := geom.NewFrustum(viewer, vp)
	bwBps := 100e6 * q.BandwidthScale()

	var out []PipeStageResult
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		sender, err := core.NewSender(core.SenderConfig{
			Variant:    core.LiVoNoCull,
			Array:      w.Array(),
			ViewParams: vp,
		})
		if err != nil {
			return nil, err
		}
		receiver, err := core.NewReceiver(core.ReceiverConfig{
			Array:     w.Array(),
			VoxelSize: 0.02,
		})
		if err != nil {
			return nil, err
		}
		ps := newPipeSampler()
		for i := 0; i < q.Frames; i++ {
			views := w.Views[i%len(w.Views)]
			warm := i < warmup
			step := func(stage string, fn func() error) error {
				if warm {
					return fn()
				}
				return ps.measure(stage, fn)
			}
			var enc *core.EncodedFrame
			if err := step("sender_process", func() error {
				var err error
				enc, err = sender.ProcessFrame(views, bwBps)
				return err
			}); err != nil {
				return nil, err
			}
			if err := step("push_color", func() error {
				_, err := receiver.PushColor(enc.Color)
				return err
			}); err != nil {
				return nil, err
			}
			var pf *core.PairedFrame
			if err := step("push_depth", func() error {
				var err error
				pf, err = receiver.PushDepth(enc.Depth)
				return err
			}); err != nil {
				return nil, err
			}
			if pf == nil {
				return nil, fmt.Errorf("pipebench: frame %d did not pair", i)
			}
			var cloud *pointcloud.Cloud
			if err := step("reconstruct", func() error {
				var err error
				cloud, err = receiver.Reconstruct(pf, &frustum)
				return err
			}); err != nil {
				return nil, err
			}
			if err := step("render", func() error {
				render.Splat(cloud, viewer, render.Options{Width: 320, Height: 240})
				return nil
			}); err != nil {
				return nil, err
			}
		}
		out = append(out, ps.results(procs)...)
	}
	return out, nil
}
